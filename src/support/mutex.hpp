// Annotated locking primitives: the only mutex vocabulary library code is
// allowed to use (tools/rsat_lint.py rule `bare-mutex`).
//
// A bare std::mutex is invisible to Clang's thread-safety analysis — a
// field "guarded" by one is guarded by convention only. These wrappers
// carry the capability attributes (support/thread_annotations.hpp), so
// under `-Wthread-safety -Werror` the compiler proves that every
// RSAT_GUARDED_BY field is only touched under its mutex and that every
// RSAT_REQUIRES / RSAT_EXCLUDES contract is honored at every call site.
//
//   Mutex      — std::mutex as a capability.
//   LockGuard  — scoped acquire/release (std::lock_guard shape).
//   UniqueLock — scoped but relockable: explicit unlock()/lock() for the
//                "publish under the lock, do I/O outside it" patterns
//                (TraceSink), and the handle CondVar waits on.
//   CondVar    — std::condition_variable over a UniqueLock. There is no
//                predicate-lambda overload on purpose: the analysis cannot
//                see that a closure runs under the caller's lock, so
//                guarded reads inside a predicate lambda are warnings.
//                Write explicit `while (!cond) cv.wait(lock);` loops — the
//                reads stay in the annotated function body where the
//                capability is provably held.
//
// The wrapper bodies manipulate the raw std::mutex the analysis cannot
// model, so they are the one sanctioned home of
// RSAT_NO_THREAD_SAFETY_ANALYSIS; their *declarations* carry the full
// acquire/release contracts callers are checked against.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "support/thread_annotations.hpp"

namespace rs::support {

class CondVar;

/// std::mutex as a Clang thread-safety capability.
class RSAT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RSAT_ACQUIRE() RSAT_NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }
  void unlock() RSAT_RELEASE() RSAT_NO_THREAD_SAFETY_ANALYSIS {
    mu_.unlock();
  }
  bool try_lock() RSAT_TRY_ACQUIRE(true) RSAT_NO_THREAD_SAFETY_ANALYSIS {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;  // waits on the raw mutex while the capability is held
  std::mutex mu_;
};

/// Scoped acquire-in-constructor / release-in-destructor (std::lock_guard
/// with the scoped-capability attributes).
class RSAT_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) RSAT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() RSAT_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped but relockable: tracks whether it currently holds the mutex, so
/// code can release around a slow section (file I/O, a flush) and
/// re-acquire — with the analysis checking that guarded state is only
/// touched while held. Also the handle CondVar waits require.
class RSAT_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) RSAT_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~UniqueLock() RSAT_RELEASE() {
    if (held_) mu_.unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() RSAT_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  void unlock() RSAT_RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  bool held() const { return held_; }

 private:
  friend class CondVar;
  Mutex& mu_;
  bool held_;
};

/// Condition variable over a UniqueLock that must be held at every wait.
/// No predicate overloads — see the header comment for why wait loops are
/// written out explicitly in annotated code.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lk`, waits, and re-acquires before returning.
  /// `lk` must be held. The analysis models the capability as held across
  /// the wait — the standard (sound) fiction for condition variables: the
  /// caller's guarded reads on either side of the wait do happen under
  /// the lock.
  void wait(UniqueLock& lk) RSAT_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> raw(lk.mu_.mu_, std::adopt_lock);
    cv_.wait(raw);
    raw.release();  // relock happened inside wait; ownership stays with lk
  }

  /// wait() with a timeout; returns std::cv_status::timeout on expiry.
  std::cv_status wait_for(UniqueLock& lk, std::chrono::nanoseconds rel)
      RSAT_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> raw(lk.mu_.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(raw, rel);
    raw.release();
    return status;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rs::support
