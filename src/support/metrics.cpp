#include "support/metrics.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <utility>
#include <vector>

namespace rs::support {

namespace {

double bits_to_double(std::uint64_t bits) { return std::bit_cast<double>(bits); }
std::uint64_t double_to_bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// fetch_add for a double carried in an atomic bit pattern.
void atomic_add_double(std::atomic<std::uint64_t>& bits, double delta) {
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t next = double_to_bits(bits_to_double(cur) + delta);
    if (bits.compare_exchange_weak(cur, next, std::memory_order_relaxed)) {
      return;
    }
  }
}

void atomic_min_double(std::atomic<std::uint64_t>& bits, double v) {
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  while (v < bits_to_double(cur)) {
    if (bits.compare_exchange_weak(cur, double_to_bits(v),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

void atomic_max_double(std::atomic<std::uint64_t>& bits, double v) {
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  while (v > bits_to_double(cur)) {
    if (bits.compare_exchange_weak(cur, double_to_bits(v),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

/// Fixed-format double for JSON / stats lines: %.6g is compact, stable, and
/// round-trips the precision the bucket math actually has.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Prometheus metric name: dots become underscores under an rsat_ prefix.
std::string prom_name(const std::string& name) {
  std::string out = "rsat_";
  for (const char c : name) out += c == '.' || c == '-' ? '_' : c;
  return out;
}

}  // namespace

Histogram::Histogram()
    : min_bits_(double_to_bits(std::numeric_limits<double>::infinity())),
      max_bits_(double_to_bits(-std::numeric_limits<double>::infinity())) {}

int Histogram::bucket_of(double v) {
  if (!(v > 0)) return 0;  // <= 0 and NaN land in the underflow bucket
  int exp = 0;
  const double mantissa = std::frexp(v, &exp);  // v = mantissa * 2^exp
  // mantissa in [0.5, 1): sub-bucket within the power of two.
  const int sub = static_cast<int>((mantissa - 0.5) * 2 * kSubBuckets);
  const long long idx =
      static_cast<long long>(exp - 1 - kMinExp) * kSubBuckets + sub + 1;
  if (idx < 1) return 0;                        // underflow
  if (idx >= kBucketCount - 1) return kBucketCount - 1;  // overflow
  return static_cast<int>(idx);
}

double Histogram::bucket_mid(int bucket) {
  if (bucket <= 0) return 0;
  const int b = bucket - 1;
  const int exp = kMinExp + b / kSubBuckets;       // value in [2^exp, 2^(exp+1))
  const int sub = b % kSubBuckets;
  return std::ldexp(1.0 + (sub + 0.5) / kSubBuckets, exp);
}

std::uint64_t Histogram::bucket_count(int bucket) const {
  return buckets_[bucket].load(std::memory_order_relaxed);
}

double Histogram::bucket_upper(int bucket) {
  if (bucket <= 0) return std::ldexp(1.0, kMinExp);  // underflow upper edge
  if (bucket >= kBucketCount - 1) {
    return std::numeric_limits<double>::infinity();  // overflow bucket
  }
  const int b = bucket - 1;
  const int exp = kMinExp + b / kSubBuckets;
  const int sub = b % kSubBuckets;
  return std::ldexp(1.0 + (sub + 1.0) / kSubBuckets, exp);
}

void Histogram::observe(double v) {
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_bits_, v);
  atomic_min_double(min_bits_, v);
  atomic_max_double(max_bits_, v);
}

double Histogram::sum() const {
  return count() == 0 ? 0.0
                      : bits_to_double(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::min() const {
  return count() == 0 ? 0.0
                      : bits_to_double(min_bits_.load(std::memory_order_relaxed));
}

double Histogram::max() const {
  return count() == 0 ? 0.0
                      : bits_to_double(max_bits_.load(std::memory_order_relaxed));
}

double Histogram::quantile(double q) const {
  // Snapshot the buckets and rank against the snapshot's own total, so a
  // quantile taken under concurrent observes is internally consistent.
  std::uint64_t counts[kBucketCount];
  std::uint64_t total = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Nearest rank: the ceil(q * total)-th smallest observation (1-based).
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  std::uint64_t seen = 0;
  int bucket = kBucketCount - 1;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      bucket = i;
      break;
    }
  }
  double v = bucket == kBucketCount - 1 ? max() : bucket_mid(bucket);
  // Clamp to the exact observed range: keeps p95 <= max and p50 >= min even
  // though bucket midpoints are approximations.
  const double lo = min();
  const double hi = max();
  if (v < lo) v = lo;
  if (v > hi) v = hi;
  return v;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  LockGuard lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  LockGuard lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  LockGuard lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counters() const {
  LockGuard lock(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  return out;
}

std::map<std::string, std::int64_t> MetricsRegistry::gauges() const {
  LockGuard lock(mu_);
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, g] : gauges_) out[name] = g->value();
  return out;
}

std::map<std::string, MetricsRegistry::HistogramView>
MetricsRegistry::histograms() const {
  LockGuard lock(mu_);
  std::map<std::string, HistogramView> out;
  for (const auto& [name, h] : histograms_) {
    HistogramView v;
    v.count = h->count();
    v.sum = h->sum();
    v.mean = h->mean();
    v.min = h->min();
    v.max = h->max();
    v.p50 = h->quantile(0.50);
    v.p95 = h->quantile(0.95);
    v.p99 = h->quantile(0.99);
    out.emplace(name, v);
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  const auto cs = counters();
  const auto gs = gauges();
  const auto hs = histograms();
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : cs) {
    os << (first ? "" : ",") << '"' << name << "\":" << v;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gs) {
    os << (first ? "" : ",") << '"' << name << "\":" << v;
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, v] : hs) {
    os << (first ? "" : ",") << '"' << name << "\":{\"count\":" << v.count
       << ",\"sum\":" << fmt_double(v.sum) << ",\"mean\":" << fmt_double(v.mean)
       << ",\"min\":" << fmt_double(v.min) << ",\"max\":" << fmt_double(v.max)
       << ",\"p50\":" << fmt_double(v.p50) << ",\"p95\":" << fmt_double(v.p95)
       << ",\"p99\":" << fmt_double(v.p99) << '}';
    first = false;
  }
  os << "}}";
  return os.str();
}

std::string MetricsRegistry::to_prometheus() const {
  const auto cs = counters();
  const auto gs = gauges();
  // Histograms need raw bucket access, not the summary view: snapshot the
  // stable metric pointers under the lock, render outside it (metrics are
  // never removed, so the pointers outlive the lock).
  std::vector<std::pair<std::string, const Histogram*>> hs;
  {
    LockGuard lock(mu_);
    hs.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) hs.emplace_back(name, h.get());
  }

  // One block per metric, keyed and emitted by mangled name so the whole
  // body is name-sorted regardless of metric kind.
  std::map<std::string, std::string> blocks;
  for (const auto& [name, v] : cs) {
    const std::string n = prom_name(name) + "_total";
    std::string b;
    b += "# TYPE " + n + " counter\n";
    b += n + ' ' + std::to_string(v) + '\n';
    blocks.emplace(n, std::move(b));
  }
  for (const auto& [name, v] : gs) {
    const std::string n = prom_name(name);
    std::string b;
    b += "# TYPE " + n + " gauge\n";
    b += n + ' ' + std::to_string(v) + '\n';
    blocks.emplace(n, std::move(b));
  }
  for (const auto& [name, h] : hs) {
    const std::string n = prom_name(name);
    std::string b;
    b += "# TYPE " + n + " histogram\n";
    // Cumulative ladder over the non-empty native buckets only: a fully
    // materialized 410-bucket ladder per histogram would dominate the
    // scrape body while adding no information (Prometheus permits sparse
    // `le` ladders as long as +Inf is present).
    std::uint64_t cum = 0;
    for (int i = 0; i < Histogram::kBucketCount - 1; ++i) {
      const std::uint64_t c = h->bucket_count(i);
      if (c == 0) continue;
      cum += c;
      b += n + "_bucket{le=\"" + fmt_double(Histogram::bucket_upper(i)) +
           "\"} " + std::to_string(cum) + '\n';
    }
    cum += h->bucket_count(Histogram::kBucketCount - 1);
    b += n + "_bucket{le=\"+Inf\"} " + std::to_string(cum) + '\n';
    b += n + "_sum " + fmt_double(h->sum()) + '\n';
    b += n + "_count " + std::to_string(h->count()) + '\n';
    blocks.emplace(n, std::move(b));
  }

  std::string out;
  for (const auto& [n, b] : blocks) out += b;
  out += "# EOF\n";
  return out;
}

SolverProfile make_solver_profile(MetricsRegistry& registry) {
  SolverProfile p;
  p.simplex_phase1_iterations =
      &registry.counter("solver.simplex.phase1_iterations");
  p.simplex_phase2_iterations =
      &registry.counter("solver.simplex.phase2_iterations");
  p.bb_nodes = &registry.counter("solver.bb.nodes");
  p.bb_bound_improvements = &registry.counter("solver.bb.bound_improvements");
  p.bb_max_depth = &registry.histogram("solver.bb.max_depth");
  p.bb_nodes_per_sec = &registry.histogram("solver.bb.nodes_per_sec");
  p.exact_expansions = &registry.counter("solver.exact.expansions");
  p.exact_max_depth = &registry.histogram("solver.exact.max_depth");
  p.greedy_refine_passes = &registry.counter("solver.greedy.refine_passes");
  p.greedy_trials = &registry.counter("solver.greedy.trials");
  p.reduce_rounds = &registry.counter("solver.reduce.rounds");
  p.reduce_candidates = &registry.counter("solver.reduce.candidates");
  p.portfolio_attempt_exact_ms =
      &registry.histogram("solver.portfolio.attempt_exact_ms");
  p.portfolio_attempt_ilp_ms =
      &registry.histogram("solver.portfolio.attempt_ilp_ms");
  p.portfolio_attempt_greedy_ms =
      &registry.histogram("solver.portfolio.attempt_greedy_ms");
  p.portfolio_attempt_bisect_ms =
      &registry.histogram("solver.portfolio.attempt_bisect_ms");
  p.portfolio_cancel_latency_ms =
      &registry.histogram("solver.portfolio.cancel_latency_ms");
  return p;
}

}  // namespace rs::support
