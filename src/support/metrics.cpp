#include "support/metrics.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace rs::support {

namespace {

double bits_to_double(std::uint64_t bits) { return std::bit_cast<double>(bits); }
std::uint64_t double_to_bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// fetch_add for a double carried in an atomic bit pattern.
void atomic_add_double(std::atomic<std::uint64_t>& bits, double delta) {
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t next = double_to_bits(bits_to_double(cur) + delta);
    if (bits.compare_exchange_weak(cur, next, std::memory_order_relaxed)) {
      return;
    }
  }
}

void atomic_min_double(std::atomic<std::uint64_t>& bits, double v) {
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  while (v < bits_to_double(cur)) {
    if (bits.compare_exchange_weak(cur, double_to_bits(v),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

void atomic_max_double(std::atomic<std::uint64_t>& bits, double v) {
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  while (v > bits_to_double(cur)) {
    if (bits.compare_exchange_weak(cur, double_to_bits(v),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

/// Fixed-format double for JSON / stats lines: %.6g is compact, stable, and
/// round-trips the precision the bucket math actually has.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

Histogram::Histogram()
    : min_bits_(double_to_bits(std::numeric_limits<double>::infinity())),
      max_bits_(double_to_bits(-std::numeric_limits<double>::infinity())) {}

int Histogram::bucket_of(double v) {
  if (!(v > 0)) return 0;  // <= 0 and NaN land in the underflow bucket
  int exp = 0;
  const double mantissa = std::frexp(v, &exp);  // v = mantissa * 2^exp
  // mantissa in [0.5, 1): sub-bucket within the power of two.
  const int sub = static_cast<int>((mantissa - 0.5) * 2 * kSubBuckets);
  const long long idx =
      static_cast<long long>(exp - 1 - kMinExp) * kSubBuckets + sub + 1;
  if (idx < 1) return 0;                        // underflow
  if (idx >= kBucketCount - 1) return kBucketCount - 1;  // overflow
  return static_cast<int>(idx);
}

double Histogram::bucket_mid(int bucket) {
  if (bucket <= 0) return 0;
  const int b = bucket - 1;
  const int exp = kMinExp + b / kSubBuckets;       // value in [2^exp, 2^(exp+1))
  const int sub = b % kSubBuckets;
  return std::ldexp(1.0 + (sub + 0.5) / kSubBuckets, exp);
}

void Histogram::observe(double v) {
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_bits_, v);
  atomic_min_double(min_bits_, v);
  atomic_max_double(max_bits_, v);
}

double Histogram::sum() const {
  return count() == 0 ? 0.0
                      : bits_to_double(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::min() const {
  return count() == 0 ? 0.0
                      : bits_to_double(min_bits_.load(std::memory_order_relaxed));
}

double Histogram::max() const {
  return count() == 0 ? 0.0
                      : bits_to_double(max_bits_.load(std::memory_order_relaxed));
}

double Histogram::quantile(double q) const {
  // Snapshot the buckets and rank against the snapshot's own total, so a
  // quantile taken under concurrent observes is internally consistent.
  std::uint64_t counts[kBucketCount];
  std::uint64_t total = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Nearest rank: the ceil(q * total)-th smallest observation (1-based).
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  std::uint64_t seen = 0;
  int bucket = kBucketCount - 1;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      bucket = i;
      break;
    }
  }
  double v = bucket == kBucketCount - 1 ? max() : bucket_mid(bucket);
  // Clamp to the exact observed range: keeps p95 <= max and p50 >= min even
  // though bucket midpoints are approximations.
  const double lo = min();
  const double hi = max();
  if (v < lo) v = lo;
  if (v > hi) v = hi;
  return v;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  LockGuard lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  LockGuard lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  LockGuard lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counters() const {
  LockGuard lock(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  return out;
}

std::map<std::string, std::int64_t> MetricsRegistry::gauges() const {
  LockGuard lock(mu_);
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, g] : gauges_) out[name] = g->value();
  return out;
}

std::map<std::string, MetricsRegistry::HistogramView>
MetricsRegistry::histograms() const {
  LockGuard lock(mu_);
  std::map<std::string, HistogramView> out;
  for (const auto& [name, h] : histograms_) {
    HistogramView v;
    v.count = h->count();
    v.sum = h->sum();
    v.mean = h->mean();
    v.min = h->min();
    v.max = h->max();
    v.p50 = h->quantile(0.50);
    v.p95 = h->quantile(0.95);
    v.p99 = h->quantile(0.99);
    out.emplace(name, v);
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  const auto cs = counters();
  const auto gs = gauges();
  const auto hs = histograms();
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : cs) {
    os << (first ? "" : ",") << '"' << name << "\":" << v;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gs) {
    os << (first ? "" : ",") << '"' << name << "\":" << v;
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, v] : hs) {
    os << (first ? "" : ",") << '"' << name << "\":{\"count\":" << v.count
       << ",\"sum\":" << fmt_double(v.sum) << ",\"mean\":" << fmt_double(v.mean)
       << ",\"min\":" << fmt_double(v.min) << ",\"max\":" << fmt_double(v.max)
       << ",\"p50\":" << fmt_double(v.p50) << ",\"p95\":" << fmt_double(v.p95)
       << ",\"p99\":" << fmt_double(v.p99) << '}';
    first = false;
  }
  os << "}}";
  return os.str();
}

}  // namespace rs::support
