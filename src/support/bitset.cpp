#include "support/bitset.hpp"

#include <algorithm>
#include <bit>

#include "support/assert.hpp"

namespace rs::support {

void DynamicBitset::clear() { std::fill(words_.begin(), words_.end(), 0); }

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  RS_REQUIRE(nbits_ == other.nbits_, "bitset size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  RS_REQUIRE(nbits_ == other.nbits_, "bitset size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

std::size_t DynamicBitset::count() const {
  std::size_t total = 0;
  for (const Word w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool DynamicBitset::none() const {
  return std::all_of(words_.begin(), words_.end(), [](Word w) { return w == 0; });
}

bool DynamicBitset::intersects(const DynamicBitset& other) const {
  RS_REQUIRE(nbits_ == other.nbits_, "bitset size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

}  // namespace rs::support
