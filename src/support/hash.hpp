// Deterministic 64-bit mixing shared by the canonical DDG fingerprint, the
// engine's request digest, and the cache's key hash. One definition so the
// scheme cannot drift between producers and consumers of the same keys.
#pragma once

#include <cstdint>

namespace rs::support {

/// splitmix64 finalizer: cheap, well-mixed, platform-independent (unlike
/// std::hash).
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent combine of a running hash with one value.
inline std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ (v * 0x9e3779b97f4a7c15ULL));
}

}  // namespace rs::support
