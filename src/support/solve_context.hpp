// SolveContext: the shared budget/cancellation/statistics spine threaded
// through every solver layer.
//
// RS and SRC are NP-complete, so every exact answer in this library is
// qualified by "proven within budget". Historically each layer carried its
// own time_limit_seconds double and hand-copied it into sub-options; this
// header replaces that plumbing with one object passed down the call chain:
//
//   * a Deadline (absolute steady_clock time point; children can only
//     tighten it, never extend it);
//   * a CancelToken (shared atomic flag flipped by another thread — the
//     analysis engine's cancel/drain verbs, or a SIGINT handler);
//   * a SolveStats sink accumulating search effort across every leaf solve
//     run under the context (branch-and-bound nodes, bound prunes, simplex
//     iterations, refinement passes).
//
// Hot-loop protocol: solvers call should_stop(tick) once per search node.
// The cancel flag is a relaxed atomic load checked on every call; the
// deadline clock is only consulted every kPollInterval ticks, keeping clock
// syscalls out of the per-node hot path.
//
// Stop-cause taxonomy (SolveStats::stop):
//   Proven    — search space exhausted; the answer is exact.
//   LimitHit  — a structural limit (node/round cap) truncated the search.
//   TimedOut  — the deadline expired.
//   Cancelled — the cancel token fired.
// merge() keeps the most severe cause in that order, so a pipeline's
// aggregate stats report the strongest reason any sub-solve stopped early.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace rs::support {

struct SolverProfile;  // support/metrics.hpp

enum class StopCause {
  Proven = 0,     // search completed; result is exact
  LimitHit = 1,   // node/round limit truncated the search
  TimedOut = 2,   // deadline expired
  Cancelled = 3,  // cancel token fired
};

/// Short lowercase token (proven|limit|timeout|cancelled), stable for the
/// service protocol and --stats output.
const char* stop_cause_token(StopCause c);

/// Severity order: Cancelled > TimedOut > LimitHit > Proven.
inline StopCause worse_cause(StopCause a, StopCause b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

/// Search-effort counters plus why the solve stopped. Every solver result
/// struct carries one; composites merge their children's.
struct SolveStats {
  long long nodes = 0;               // branch-and-bound / DFS nodes explored
  long long prunes = 0;              // subtrees cut by an admissible bound
  long long simplex_iterations = 0;  // LP pivots under branch-and-bound
  long long refine_passes = 0;       // greedy steepest-ascent passes
  long long solves = 0;              // leaf solver runs aggregated here
  StopCause stop = StopCause::Proven;

  bool interrupted() const { return stop != StopCause::Proven; }

  void merge(const SolveStats& o) {
    nodes += o.nodes;
    prunes += o.prunes;
    simplex_iterations += o.simplex_iterations;
    refine_passes += o.refine_passes;
    solves += o.solves;
    stop = worse_cause(stop, o.stop);
  }

  /// One-line human-readable rendering for --stats.
  std::string summary() const;
};

/// Shared cooperative cancellation flag. Copies observe (and flip) the same
/// flag; flipping is a one-way transition.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() const {
    flag_->store(true, std::memory_order_relaxed);
  }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

class SolveContext {
 public:
  /// Deadline clock is consulted every kPollInterval should_stop() ticks.
  static constexpr long long kPollInterval = 1024;

  /// Unlimited budget, fresh token, fresh stats sink.
  SolveContext() : SolveContext(0.0) {}

  /// budget_seconds <= 0 means "no deadline" (structural node limits still
  /// apply in every solver).
  explicit SolveContext(double budget_seconds, CancelToken token = {});

  bool cancelled() const { return token_.cancelled(); }
  bool expired() const {
    return deadline_ != Clock::time_point::max() && Clock::now() >= deadline_;
  }
  /// Full check (atomic load + clock syscall); use between coarse phases.
  bool stop_requested() const { return cancelled() || expired(); }

  /// Hot-loop check: cancel flag every call, deadline clock only when
  /// tick % kPollInterval == 0. Pass a monotonically increasing node count.
  bool should_stop(long long tick) const {
    if (cancelled()) return true;
    return (tick & (kPollInterval - 1)) == 0 && expired();
  }

  bool unlimited() const { return deadline_ == Clock::time_point::max(); }
  /// Seconds until the deadline (a large number when unlimited, <= 0 when
  /// already expired).
  double remaining_seconds() const;

  /// Why a search that stopped now stopped: Cancelled beats TimedOut beats
  /// (limit_exhausted ? LimitHit : Proven).
  StopCause cause_now(bool limit_exhausted) const {
    if (cancelled()) return StopCause::Cancelled;
    if (expired()) return StopCause::TimedOut;
    return limit_exhausted ? StopCause::LimitHit : StopCause::Proven;
  }

  /// Child context sharing this context's token and stats sink, with the
  /// deadline tightened to min(parent, now + seconds). seconds <= 0 keeps
  /// the parent deadline unchanged. Children can never outlive the parent.
  SolveContext sub_budget(double seconds) const;

  /// Even split of the remaining budget across `ways` sequential stages:
  /// sub_budget(remaining / ways). Unlimited parents stay unlimited.
  SolveContext split(int ways) const;

  /// Child context observing `child` instead of this context's token, with
  /// the same deadline and the same stats sink. The portfolio hook: each
  /// racing strategy gets a privately cancellable context while effort still
  /// aggregates at the parent. Parent cancellation does NOT propagate
  /// automatically — the racer forwards it to the child tokens it holds.
  SolveContext with_token(CancelToken child) const {
    return SolveContext(std::move(child), sink_, deadline_, profile_);
  }

  /// Child context carrying the solver-interior instrumentation bundle (see
  /// support/metrics.hpp). Attached once at the service boundary; every
  /// child context (sub_budget, split, with_token, copies) inherits it.
  /// `profile` may be null (profiling off) and must outlive every solve run
  /// under the returned context.
  SolveContext with_profile(const SolverProfile* profile) const {
    return SolveContext(token_, sink_, deadline_, profile);
  }

  /// Solver-interior metric bundle, or null when profiling is off. Solvers
  /// null-check once per solve and flush locally accumulated effort.
  const SolverProfile* profile() const { return profile_; }

  CancelToken token() const { return token_; }
  void request_cancel() const { token_.request_cancel(); }

  /// Leaf solvers record their per-run stats here exactly once; composite
  /// layers merge child *result* stats instead (never re-record), so the
  /// sink totals stay double-count-free. Two channels on purpose: result
  /// stats are *attributed* effort (what this call's answer cost, the
  /// number a caller inspecting one result wants), while the sink is
  /// *total* effort under the context — including probe solves no result
  /// owns — for whole-request accounting and cross-thread observability
  /// while a solve is still running.
  void record(const SolveStats& s) const;
  /// Snapshot of everything recorded under this context (or its children).
  SolveStats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// Shared effort accumulator: written from every thread a request fans
  /// onto (portfolio racers, per-block solves), read by observers while
  /// the solve is still running.
  struct Sink {
    Mutex mu;
    SolveStats stats RSAT_GUARDED_BY(mu);
  };

  SolveContext(CancelToken token, std::shared_ptr<Sink> sink,
               Clock::time_point deadline,
               const SolverProfile* profile = nullptr)
      : token_(std::move(token)),
        sink_(std::move(sink)),
        deadline_(deadline),
        profile_(profile) {}

  CancelToken token_;
  std::shared_ptr<Sink> sink_;
  Clock::time_point deadline_;
  const SolverProfile* profile_ = nullptr;
};

}  // namespace rs::support
