// Small filesystem helpers shared by the persistent result store and the
// socket front end: whole-file reads that report failure instead of
// throwing, and atomic whole-file writes (temp file + rename) so readers
// never observe a half-written entry.
//
// The write path is the *process*-crash-safety contract of the on-disk
// cache tier (service/store.hpp): if the writer dies mid-write, readers
// see the complete previous content (or no file), never an interleaving —
// the torn bytes stay in a stray temp file. No fsync is issued, so this
// does NOT extend to power loss / kernel crash (a journaled filesystem
// may replay the rename before the data and expose a short file); callers
// needing durability must validate content on read, as the store's
// versioned codec does by treating any undecodable entry as a miss.
#pragma once

#include <string>
#include <string_view>

namespace rs::support {

/// Reads an entire file into `out`. Returns false (leaving `out` empty)
/// when the file is missing or unreadable; never throws.
bool read_file_to_string(const std::string& path, std::string* out);

/// Writes `data` to `path` atomically: the bytes land in a unique sibling
/// temp file which is then renamed over `path`. Concurrent writers of the
/// same path each rename a complete file, so readers see one full version
/// or another, never an interleaving. Returns false on any I/O failure
/// (the temp file is cleaned up best-effort); never throws.
bool write_file_atomic(const std::string& path, std::string_view data);

/// mkdir -p. Returns false when the directory cannot be created (or exists
/// as a non-directory); never throws.
bool create_directories(const std::string& path);

}  // namespace rs::support
