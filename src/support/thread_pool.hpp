// Minimal fixed-size thread pool for embarrassingly parallel experiment
// sweeps (one task per (DAG, R) instance). Results are collected by index so
// output tables are deterministic regardless of scheduling order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rs::support {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw; wrap fallible work yourself.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  /// Runs fn(i) for i in [0, n) across the pool and blocks until done.
  /// fn must be safe to invoke concurrently for distinct i.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace rs::support
