// Minimal fixed-size thread pool for embarrassingly parallel experiment
// sweeps (one task per (DAG, R) instance). Results are collected by index so
// output tables are deterministic regardless of scheduling order.
//
// When constructed with a MetricsRegistry the pool reports:
//   pool.queue_depth (gauge)     tasks enqueued but not yet picked up
//   pool.active (gauge)          tasks currently executing
//   pool.tasks (counter)         tasks completed since construction
//   pool.queue_wait_ms (histogram)  submit -> worker pickup
//   pool.task_ms (histogram)        task execution time
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "support/timer.hpp"

namespace rs::support {

class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  /// When `metrics` is non-null the pool registers its gauges/histograms
  /// there; the registry must outlive the pool.
  explicit ThreadPool(std::size_t threads = 0,
                      MetricsRegistry* metrics = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw; wrap fallible work yourself.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  /// Runs fn(i) for i in [0, n) across the pool and blocks until done.
  /// fn must be safe to invoke concurrently for distinct i.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Task {
    std::function<void()> fn;
    Timer queued;  // started at submit; read at pickup for queue_wait_ms
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;

  // Cached registry entries (null when unmetered). Resolved once in the
  // constructor so the hot path never touches the registry mutex.
  Gauge* queue_depth_ = nullptr;
  Gauge* active_ = nullptr;
  Counter* tasks_done_ = nullptr;
  Histogram* queue_wait_ms_ = nullptr;
  Histogram* task_ms_ = nullptr;
};

}  // namespace rs::support
