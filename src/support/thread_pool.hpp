// Minimal fixed-size thread pool for embarrassingly parallel experiment
// sweeps (one task per (DAG, R) instance). Results are collected by index so
// output tables are deterministic regardless of scheduling order.
//
// Two task classes share the workers:
//
//  * submit() — top-level work (whole service requests). FIFO.
//  * submit_nested() — work fanned out from *inside* a running task (per-block
//    solves, portfolio strategies). Workers drain nested tasks before starting
//    new top-level ones, so in-flight requests finish ahead of queued ones,
//    and TaskGroup::wait() lets the submitting thread execute nested tasks
//    itself (try_run_one) instead of blocking — a pool whose every worker
//    waits on nested work it could run cannot deadlock.
//
// When constructed with a MetricsRegistry the pool reports:
//   pool.queue_depth (gauge)     tasks enqueued but not yet picked up
//   pool.active (gauge)          tasks currently executing
//   pool.tasks (counter)         tasks completed since construction
//   pool.queue_wait_ms (histogram)  submit -> worker pickup
//   pool.task_ms (histogram)        task execution time
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"
#include "support/timer.hpp"

namespace rs::support {

class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  /// When `metrics` is non-null the pool registers its gauges/histograms
  /// there; the registry must outlive the pool.
  explicit ThreadPool(std::size_t threads = 0,
                      MetricsRegistry* metrics = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw; wrap fallible work yourself.
  void submit(std::function<void()> task) RSAT_EXCLUDES(mutex_);

  /// Enqueues a task spawned from inside a running task. Nested tasks are
  /// drained ahead of top-level ones and are eligible for try_run_one(), so
  /// a worker waiting on its own fan-out always has something useful to do.
  void submit_nested(std::function<void()> task) RSAT_EXCLUDES(mutex_);

  /// Runs one queued *nested* task on the calling thread (with full metric
  /// and in-flight accounting) and returns true; returns false when no
  /// nested task is queued. Top-level tasks are never stolen here — inlining
  /// a foreign whole request under a waiter would serialize, not help.
  /// The task itself runs with mutex_ released.
  bool try_run_one() RSAT_EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished executing.
  void wait_idle() RSAT_EXCLUDES(mutex_);

  /// Runs fn(i) for i in [0, n) across the pool and blocks until done.
  /// fn must be safe to invoke concurrently for distinct i.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Task {
    std::function<void()> fn;
    Timer queued;  // started at submit; read at pickup for queue_wait_ms
  };

  void worker_loop() RSAT_EXCLUDES(mutex_);
  /// Runs one dequeued task. Deliberately unlocked while the task executes
  /// (only the final in-flight bookkeeping takes mutex_): a task may itself
  /// submit nested work or block in TaskGroup::wait.
  void run_task(Task task) RSAT_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<Task> queue_ RSAT_GUARDED_BY(mutex_);
  std::deque<Task> nested_ RSAT_GUARDED_BY(mutex_);
  CondVar cv_task_;
  CondVar cv_idle_;
  std::size_t in_flight_ RSAT_GUARDED_BY(mutex_) = 0;
  bool stopping_ RSAT_GUARDED_BY(mutex_) = false;

  // Cached registry entries (null when unmetered). Resolved once in the
  // constructor so the hot path never touches the registry mutex.
  Gauge* queue_depth_ = nullptr;
  Gauge* active_ = nullptr;
  Counter* tasks_done_ = nullptr;
  Histogram* queue_wait_ms_ = nullptr;
  Histogram* task_ms_ = nullptr;
};

/// Scoped fan-out of nested tasks with a participating wait. With a null
/// pool run() executes inline, so serial and parallel callers share one code
/// path. wait() loops {poll; try_run_one; brief sleep} instead of blocking,
/// which is what makes nested submission deadlock-free: the waiter is itself
/// a worker for the tasks it is waiting on.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  bool parallel() const { return pool_ != nullptr; }

  /// Runs `task` on the pool (inline when no pool). Tasks must not throw.
  void run(std::function<void()> task) RSAT_EXCLUDES(mu_);

  /// Blocks until every run() task has finished. `poll`, when given, is
  /// invoked between attempts to execute queued work — the hook for
  /// forwarding parent cancellation to child tokens mid-wait. Both the
  /// poll hook and stolen tasks run with mu_ released.
  void wait(const std::function<void()>& poll = {}) RSAT_EXCLUDES(mu_);

 private:
  ThreadPool* pool_;
  Mutex mu_;
  CondVar cv_;
  std::size_t pending_ RSAT_GUARDED_BY(mu_) = 0;
};

}  // namespace rs::support
