#include "support/socket.hpp"

#include <cerrno>
#include <cstring>

#include "support/assert.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define RS_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define RS_HAVE_SOCKETS 0
#endif

namespace rs::support {

#if RS_HAVE_SOCKETS

namespace {

[[noreturn]] void fail(const std::string& what) {
  RS_REQUIRE(false, what + ": " + std::strerror(errno));
  __builtin_unreachable();
}

sockaddr_in make_addr(const std::string& host, int port) {
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  RS_REQUIRE(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
             "bad IPv4 address '" + host + "'");
  return addr;
}

}  // namespace

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

ListenSocket::ListenSocket(const std::string& host, int port) {
  RS_REQUIRE(port >= 0 && port <= 65535, "port must be in [0, 65535]");
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) fail("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd_, 64) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail("getsockname");
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));
  RS_REQUIRE(set_nonblocking(fd_), "cannot set listener non-blocking");
}

ListenSocket::~ListenSocket() { close_fd(fd_); }

int ListenSocket::accept_client() {
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return -1;
    return -2;  // EMFILE and friends: pending connection cannot be cleared
  }
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return -2;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

int connect_tcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  sockaddr_in addr = make_addr(host, port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("connect " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

long send_some(int fd, std::string_view data) {
  const ssize_t n = ::send(fd, data.data(), data.size(),
#ifdef MSG_NOSIGNAL
                           MSG_NOSIGNAL
#else
                           0
#endif
  );
  if (n >= 0) return static_cast<long>(n);
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return -1;
  return -2;
}

bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const long n = send_some(fd, data.substr(off));
    if (n >= 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n == -1) {
      pollfd p = {fd, POLLOUT, 0};
      ::poll(&p, 1, 100);
      continue;
    }
    return false;
  }
  return true;
}

long recv_some(int fd, std::string* out) {
  char buf[4096];
  const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
  if (n > 0) {
    out->append(buf, static_cast<std::size_t>(n));
    return static_cast<long>(n);
  }
  if (n == 0) return 0;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return -1;
  return -2;
}

#else  // !RS_HAVE_SOCKETS

bool set_nonblocking(int) { return false; }
void close_fd(int) {}

ListenSocket::ListenSocket(const std::string&, int) {
  RS_REQUIRE(false, "TCP sockets are not supported on this platform");
}
ListenSocket::~ListenSocket() = default;
int ListenSocket::accept_client() { return -1; }

int connect_tcp(const std::string&, int) {
  RS_REQUIRE(false, "TCP sockets are not supported on this platform");
  return -1;
}
long send_some(int, std::string_view) { return -2; }
bool send_all(int, std::string_view) { return false; }
long recv_some(int, std::string*) { return -2; }

#endif

}  // namespace rs::support
