// Checked string -> number parsing. std::stoi and friends throw bare
// std::invalid_argument / std::out_of_range with no context; every user-facing
// parser in this library (ddg text format, batch protocol, CLI flags) wants a
// PreconditionError naming the offending field instead.
#pragma once

#include <cctype>
#include <charconv>
#include <climits>
#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "support/assert.hpp"

namespace rs::support {

/// Splits a line into whitespace-separated tokens.
inline std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    std::size_t j = i;
    while (j < line.size() && !std::isspace(static_cast<unsigned char>(line[j]))) ++j;
    if (j > i) tokens.push_back(line.substr(i, j - i));
    i = j;
  }
  return tokens;
}

/// Value of the first "key=value" token in a split_ws token list, or
/// nullopt when absent — the shared lookup of the line-oriented text
/// formats (.ddg, .prog). Callers wrap the nullopt case in their own
/// line-numbered error.
inline std::optional<std::string> token_field(
    const std::vector<std::string>& tokens, const std::string& key) {
  for (const std::string& t : tokens) {
    if (t.rfind(key + "=", 0) == 0) return t.substr(key.size() + 1);
  }
  return std::nullopt;
}

/// Parses a base-10 signed integer occupying the whole string.
inline long long parse_ll(const std::string& s, const std::string& what) {
  long long value = 0;
  const char* begin = s.data();
  const char* end = begin + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  RS_REQUIRE(ec == std::errc() && ptr == end && !s.empty(),
             what + ": expected an integer, got '" + s + "'");
  return value;
}

/// Parses an int, additionally range-checking against int bounds.
inline int parse_int(const std::string& s, const std::string& what) {
  const long long v = parse_ll(s, what);
  RS_REQUIRE(v >= INT_MIN && v <= INT_MAX, what + ": value out of range: " + s);
  return static_cast<int>(v);
}

/// Parses a floating-point number occupying the whole string.
inline double parse_double(const std::string& s, const std::string& what) {
  double value = 0;
  const char* begin = s.data();
  const char* end = begin + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  RS_REQUIRE(ec == std::errc() && ptr == end && !s.empty(),
             what + ": expected a number, got '" + s + "'");
  return value;
}

/// Parses a solver budget in seconds: finite and non-negative (0 means "no
/// deadline"). Rejects negative, NaN, infinite and non-numeric input — the
/// one rule every budget-taking CLI flag shares.
inline double parse_budget_seconds(const std::string& s,
                                   const std::string& what) {
  const double v = parse_double(s, what);
  RS_REQUIRE(std::isfinite(v), what + ": must be finite, got '" + s + "'");
  RS_REQUIRE(v >= 0, what + ": must be >= 0, got '" + s + "'");
  return v;
}

/// Parses "3,4,5" into {3, 4, 5}. Empty input yields an empty vector;
/// empty items ("3,,5" or a trailing separator) are malformed.
inline std::vector<int> parse_int_list(const std::string& s, char sep,
                                       const std::string& what) {
  std::vector<int> out;
  if (s.empty()) return out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = s.find(sep, start);
    const std::size_t len = pos == std::string::npos ? std::string::npos
                                                     : pos - start;
    out.push_back(parse_int(s.substr(start, len), what));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return out;
}

}  // namespace rs::support
