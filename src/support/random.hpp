// Deterministic, seedable PRNG for synthetic DDG generation and property
// tests. xoshiro256** (public domain, Blackman & Vigna) seeded via
// splitmix64 — identical streams across platforms, unlike std::mt19937
// paired with distribution objects whose output is implementation-defined.
#pragma once

#include <cstdint>

namespace rs::support {

/// splitmix64 step; used to expand a single seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator with explicit, portable integer/real helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform in [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform in [0, bound); bound must be > 0. Unbiased (rejection sampling).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int next_int(int lo, int hi);

  /// Uniform real in [0, 1).
  double next_real();

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool next_bool(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace rs::support
