// Checked assertions that stay on in release builds.
//
// The algorithms in this library encode non-trivial graph/ILP invariants;
// silently violating one produces *wrong experimental numbers*, which is far
// worse than an abort. RS_REQUIRE therefore throws (recoverable, used for
// user-facing precondition violations) and RS_CHECK aborts with a location
// (internal invariant corruption).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rs::support {

/// Error thrown when a documented API precondition is violated.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

}  // namespace rs::support

/// Throws rs::support::PreconditionError when `cond` is false.
#define RS_REQUIRE(cond, msg)                                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::rs::support::throw_precondition(#cond, __FILE__, __LINE__, (msg));  \
    }                                                                       \
  } while (false)

/// Internal invariant; cheap enough to keep enabled in all build types.
#define RS_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::rs::support::throw_precondition(#cond, __FILE__, __LINE__,         \
                                        "internal invariant violated");    \
    }                                                                      \
  } while (false)
