#include "support/solve_context.hpp"

#include <cmath>
#include <sstream>

namespace rs::support {

const char* stop_cause_token(StopCause c) {
  switch (c) {
    case StopCause::Proven: return "proven";
    case StopCause::LimitHit: return "limit";
    case StopCause::TimedOut: return "timeout";
    case StopCause::Cancelled: return "cancelled";
  }
  return "?";
}

std::string SolveStats::summary() const {
  std::ostringstream os;
  os << "stop=" << stop_cause_token(stop) << " solves=" << solves
     << " nodes=" << nodes << " prunes=" << prunes
     << " simplex_iters=" << simplex_iterations
     << " refine_passes=" << refine_passes;
  return os.str();
}

SolveContext::SolveContext(double budget_seconds, CancelToken token)
    : token_(std::move(token)),
      sink_(std::make_shared<Sink>()),
      deadline_(Clock::time_point::max()) {
  if (budget_seconds > 0 && std::isfinite(budget_seconds)) {
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(budget_seconds));
  }
}

double SolveContext::remaining_seconds() const {
  if (unlimited()) return 1e300;
  return std::chrono::duration<double>(deadline_ - Clock::now()).count();
}

SolveContext SolveContext::sub_budget(double seconds) const {
  Clock::time_point child = deadline_;
  if (seconds > 0 && std::isfinite(seconds)) {
    const Clock::time_point until =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
    child = std::min(child, until);
  }
  return SolveContext(token_, sink_, child, profile_);
}

SolveContext SolveContext::split(int ways) const {
  if (unlimited() || ways <= 1) return *this;
  return sub_budget(remaining_seconds() / static_cast<double>(ways));
}

void SolveContext::record(const SolveStats& s) const {
  LockGuard lock(sink_->mu);
  sink_->stats.merge(s);
}

SolveStats SolveContext::stats() const {
  LockGuard lock(sink_->mu);
  return sink_->stats;
}

}  // namespace rs::support
