// Minimal POSIX TCP helpers for the `rsat serve` front end and its tests:
// a non-blocking listener with ephemeral-port support, a blocking client
// connect (tests drive the server through it), and best-effort full writes.
//
// Everything here is deliberately poll-friendly: the listener and every
// accepted connection are O_NONBLOCK, so the serve loop multiplexes all of
// them plus a periodic future-completion sweep with a single poll(2) and
// never blocks on a slow peer. Unsupported platforms fail loudly at
// construction (RS_REQUIRE), not at first use.
#pragma once

#include <string>
#include <string_view>

namespace rs::support {

/// Non-blocking TCP listener. Binding port 0 picks an ephemeral port;
/// port() reports the actual one. Closes the socket on destruction.
class ListenSocket {
 public:
  /// Binds and listens (backlog 64), throwing support::PreconditionError
  /// with the failing syscall + errno text on any failure.
  ListenSocket(const std::string& host, int port);
  ~ListenSocket();

  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  int fd() const { return fd_; }
  int port() const { return port_; }

  /// Accepts one pending connection as a non-blocking fd. Returns -1 when
  /// none is waiting (EAGAIN), -2 on any other accept failure (e.g.
  /// EMFILE) — the listener then typically stays readable, so callers
  /// should back off instead of re-polling it immediately. Never blocks.
  int accept_client();

 private:
  int fd_ = -1;
  int port_ = 0;
};

/// Blocking client connect for tests and simple drivers. Returns the
/// connected fd; throws support::PreconditionError on failure.
int connect_tcp(const std::string& host, int port);

/// One non-blocking send attempt (SIGPIPE suppressed where supported).
/// Returns bytes written (>= 0), -1 when the fd's buffer is full (EAGAIN)
/// or the call was interrupted, -2 on a connection error (e.g. EPIPE).
long send_some(int fd, std::string_view data);

/// Writes all of `data`, retrying short writes; waits (poll) when the fd's
/// buffer is full. Returns false on a connection error (e.g. EPIPE).
bool send_all(int fd, std::string_view data);

/// Reads whatever is available into `out` (appends). Returns the byte
/// count, 0 on orderly EOF, -1 when the read would block, -2 on error.
long recv_some(int fd, std::string* out);

/// Sets O_NONBLOCK; returns false on failure.
bool set_nonblocking(int fd);

void close_fd(int fd);

}  // namespace rs::support
