#include "support/random.hpp"

#include "support/assert.hpp"

namespace rs::support {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  RS_REQUIRE(bound > 0, "next_below requires positive bound");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::next_int(int lo, int hi) {
  RS_REQUIRE(lo <= hi, "next_int requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(hi) -
                                 static_cast<std::int64_t>(lo)) + 1;
  return lo + static_cast<int>(next_below(span));
}

double Rng::next_real() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_real() < p;
}

}  // namespace rs::support
