// Portable Clang thread-safety-analysis annotations — the vocabulary the
// whole tree uses to make its locking discipline machine-checkable.
//
// Under Clang, `-Wthread-safety` turns these macros into the capability
// attributes of the static thread-safety analysis: every field annotated
// RSAT_GUARDED_BY(mu) may only be touched while `mu` is held, every
// function annotated RSAT_REQUIRES(mu) may only be called with `mu` held,
// and every RSAT_EXCLUDES(mu) function documents — and enforces — that it
// takes `mu` itself, so calling it with `mu` held would self-deadlock.
// The CI clang job builds all of src/ with `-Wthread-safety -Werror`, so a
// violation is a build break, not a review comment. Under every other
// compiler (the GCC tier-1 builds included) the macros expand to nothing.
//
// The annotated primitives that carry these attributes — support::Mutex,
// support::LockGuard, support::UniqueLock, support::CondVar — live in
// support/mutex.hpp. Library code never uses std::mutex directly
// (tools/rsat_lint.py rule `bare-mutex`): a bare std::mutex is invisible
// to the analysis, so every guarded field would silently lose its check.
//
// Naming follows the current Clang capability spellings (acquire/release/
// requires) rather than the legacy lockable ones; see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for semantics.
#pragma once

#if defined(__clang__)
#define RSAT_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define RSAT_THREAD_ANNOTATION__(x)  // no-op off Clang
#endif

/// Class attribute: instances are capabilities (lockable objects). The
/// argument is the capability kind shown in diagnostics, e.g. "mutex".
#define RSAT_CAPABILITY(x) RSAT_THREAD_ANNOTATION__(capability(x))

/// Class attribute: RAII objects that acquire a capability in their
/// constructor and release it in their destructor (LockGuard, UniqueLock).
#define RSAT_SCOPED_CAPABILITY RSAT_THREAD_ANNOTATION__(scoped_lockable)

/// Field attribute: reads and writes require holding the given capability.
#define RSAT_GUARDED_BY(x) RSAT_THREAD_ANNOTATION__(guarded_by(x))

/// Field attribute for pointers: the *pointed-to* data is guarded by the
/// capability (the pointer itself may be read freely).
#define RSAT_PT_GUARDED_BY(x) RSAT_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function attribute: the caller must hold the given capabilities.
#define RSAT_REQUIRES(...) \
  RSAT_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function attribute: acquires the capabilities (held on return). On a
/// scoped-capability member function, an empty argument list means "the
/// capabilities this scoped object manages".
#define RSAT_ACQUIRE(...) \
  RSAT_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function attribute: releases the capabilities (must be held on entry;
/// empty argument list on scoped-capability members as for RSAT_ACQUIRE).
#define RSAT_RELEASE(...) \
  RSAT_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function attribute: acquires the capability iff the return value equals
/// the first argument, e.g. RSAT_TRY_ACQUIRE(true).
#define RSAT_TRY_ACQUIRE(...) \
  RSAT_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Function attribute: the caller must NOT hold the given capabilities —
/// the function acquires them internally. This is the vocabulary for the
/// repo's "work outside the lock" patterns: DiskStore file I/O, TraceSink
/// rendering/flushing, MetricsRegistry name lookup.
#define RSAT_EXCLUDES(...) RSAT_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function attribute: asserts (at runtime, by contract) that the
/// capability is held, injecting it into the analysis state.
#define RSAT_ASSERT_CAPABILITY(x) \
  RSAT_THREAD_ANNOTATION__(assert_capability(x))

/// Function attribute: the returned reference IS the given capability
/// (accessor pattern).
#define RSAT_RETURN_CAPABILITY(x) RSAT_THREAD_ANNOTATION__(lock_returned(x))

/// Declares a fixed acquisition order between capabilities (deadlock
/// prevention; checked under -Wthread-safety-beta).
#define RSAT_ACQUIRED_BEFORE(...) \
  RSAT_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define RSAT_ACQUIRED_AFTER(...) \
  RSAT_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Escape hatch: turns the analysis off inside one function body while its
/// declaration attributes still inform callers. Reserved for the primitive
/// wrappers themselves (support/mutex.hpp), where the body manipulates the
/// raw std::mutex the analysis cannot see.
#define RSAT_NO_THREAD_SAFETY_ANALYSIS \
  RSAT_THREAD_ANNOTATION__(no_thread_safety_analysis)
