// Wall-clock stopwatch (latency measurement). Solver budgets and deadlines
// live in support/solve_context.hpp.
#pragma once

#include <chrono>

namespace rs::support {

/// Monotonic stopwatch started at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or last reset().
  double millis() const { return seconds() * 1e3; }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rs::support
