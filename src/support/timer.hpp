// Wall-clock stopwatch (latency measurement). Solver budgets and deadlines
// live in support/solve_context.hpp.
//
// This header (with solve_context.hpp) is where the process reads clocks:
// library code outside src/support/ never calls *_clock::now() directly
// (tools/rsat_lint.py rule `raw-clock`), so time stays mockable and every
// latency number is measured the same way.
#pragma once

#include <chrono>

namespace rs::support {

/// Fractional Unix seconds (wall clock) — event timestamps for trace
/// sinks and log lines. Not monotonic; never use for latency math.
inline double unix_now_seconds() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

/// Monotonic stopwatch started at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or last reset().
  double millis() const { return seconds() * 1e3; }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rs::support
