// Wall-clock timing and deadline helpers for solver budgets.
#pragma once

#include <chrono>

namespace rs::support {

/// Monotonic stopwatch started at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or last reset().
  double millis() const { return seconds() * 1e3; }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Soft deadline used by the exact solvers. `expired()` is cheap enough to
/// poll once per branch-and-bound node.
class Deadline {
 public:
  /// budget_seconds <= 0 means "no limit".
  explicit Deadline(double budget_seconds) : budget_(budget_seconds) {}

  bool expired() const {
    return budget_ > 0.0 && timer_.seconds() >= budget_;
  }
  double remaining() const {
    return budget_ <= 0.0 ? 1e300 : budget_ - timer_.seconds();
  }

 private:
  Timer timer_;
  double budget_;
};

}  // namespace rs::support
