// ASCII table and CSV rendering for benchmark harness output. The bench
// binaries regenerate the paper's tables; this keeps their formatting in one
// place so every experiment prints comparable rows.
#pragma once

#include <string>
#include <vector>

namespace rs::support {

/// Column-aligned text table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with aligned columns, `|` separators and a rule under the header.
  std::string to_string() const;

  /// Renders as RFC-4180-ish CSV (cells containing commas are quoted).
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` places (fixed notation).
std::string fmt_double(double v, int digits = 2);

/// Formats `num/den` as a percentage string, "n/a" when den == 0.
std::string fmt_percent(std::size_t num, std::size_t den, int digits = 2);

}  // namespace rs::support
