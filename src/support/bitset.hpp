// Dynamic bitset tuned for transitive-closure style workloads: word-level
// OR-assign is the hot operation when propagating reachability over a DAG.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rs::support {

/// Fixed-size-at-construction bitset with word-granular set operations.
///
/// std::vector<bool> lacks word-level |=, and std::bitset needs a
/// compile-time size; graph sizes here are runtime values.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t nbits)
      : nbits_(nbits), words_((nbits + kWordBits - 1) / kWordBits, 0) {}

  std::size_t size() const { return nbits_; }

  bool test(std::size_t i) const {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }
  void set(std::size_t i) { words_[i / kWordBits] |= (Word{1} << (i % kWordBits)); }
  void reset(std::size_t i) { words_[i / kWordBits] &= ~(Word{1} << (i % kWordBits)); }
  void clear();

  /// Word-parallel union; both operands must have identical size.
  DynamicBitset& operator|=(const DynamicBitset& other);
  /// Word-parallel intersection; both operands must have identical size.
  DynamicBitset& operator&=(const DynamicBitset& other);

  bool operator==(const DynamicBitset& other) const = default;

  /// Number of set bits.
  std::size_t count() const;
  /// True when no bit is set.
  bool none() const;
  /// True when this and other share at least one set bit.
  bool intersects(const DynamicBitset& other) const;

  /// Invokes `fn(index)` for every set bit in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      Word word = words_[w];
      while (word != 0) {
        const unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
        fn(w * kWordBits + bit);
        word &= word - 1;
      }
    }
  }

 private:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  std::size_t nbits_ = 0;
  std::vector<Word> words_;
};

}  // namespace rs::support
