// Process-wide telemetry primitives: cheap atomic counters, gauges, and
// log-bucketed histograms behind a named registry.
//
// Design constraints, in order:
//
//  * Hot-path cost is one relaxed atomic RMW. Counter::inc, Gauge::add and
//    Histogram::observe never take a lock, never allocate, and never touch
//    the clock; instrumented code paths (engine workers, store shards, the
//    serve network thread) pay nanoseconds, not microseconds. The registry
//    mutex guards *name lookup only* — instrumentation sites resolve their
//    metrics once and cache the returned reference (registered metrics are
//    never deleted, so the references are stable for the registry's
//    lifetime).
//
//  * Histograms answer p50/p95/p99 without storing samples. Values land in
//    log-spaced buckets (kSubBuckets per power of two), so a histogram is a
//    fixed ~3 KiB of atomics regardless of how many observations it has
//    seen, and quantile(q) walks the bucket counts to the q-th rank. The
//    answer is the bucket midpoint clamped to the exact observed [min, max]
//    — relative error is bounded by the bucket width (≤ ~9% with the
//    default 8 sub-buckets), which is exact enough for latency SLO
//    reporting while staying O(1) memory and wait-free on the write side.
//
//  * Snapshots are machine-readable. MetricsRegistry::to_json() renders
//    every metric (name-sorted, so byte-stable for a given set of values)
//    for the `--metrics-json` exit artifact; counters()/gauges()/
//    histograms() serve programmatic consumers (EngineStats, the `stats`
//    protocol verb).
//
// Concurrent readers see each atomic individually; a snapshot taken while
// writers are active is a per-metric-consistent (not globally consistent)
// view, which is the usual contract for live telemetry.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace rs::support {

/// Monotonic event count. Wait-free, relaxed ordering.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level (queue depth, open connections, resident bytes).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log-bucketed distribution of non-negative doubles (latencies, sizes).
/// Fixed memory, wait-free observe, quantiles exact to within one bucket
/// (≤ ~9% relative error) and clamped to the exact observed min/max.
class Histogram {
 public:
  /// Buckets per power of two. 8 keeps relative quantile error under ~9%.
  static constexpr int kSubBuckets = 8;
  /// Covered value range: [2^kMinExp, 2^kMaxExp). Values below land in the
  /// underflow bucket (reported as 0), values above in the overflow bucket
  /// (reported as the exact observed max).
  static constexpr int kMinExp = -20;  // ~1e-6: sub-microsecond ms values
  static constexpr int kMaxExp = 31;   // ~2e9: > three weeks in ms
  static constexpr int kBucketCount =
      (kMaxExp - kMinExp) * kSubBuckets + 2;  // + underflow + overflow

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double mean() const;
  /// Exact smallest/largest observed value; 0 when empty.
  double min() const;
  double max() const;
  /// Nearest-rank quantile over the bucket counts, q in [0, 1]. Returns the
  /// matched bucket's midpoint clamped to [min(), max()]; 0 when empty.
  double quantile(double q) const;

  /// Per-bucket observation count (relaxed snapshot). `bucket` must be in
  /// [0, kBucketCount): 0 is the underflow bucket, kBucketCount-1 overflow.
  std::uint64_t bucket_count(int bucket) const;
  /// Exclusive upper edge of a bucket's value range: 2^kMinExp for the
  /// underflow bucket, +infinity for the overflow bucket. Strictly
  /// increasing in `bucket` — the cumulative `le` ladder used by the
  /// Prometheus text exposition renderer.
  static double bucket_upper(int bucket);

 private:
  static int bucket_of(double v);
  static double bucket_mid(int bucket);

  std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
  std::atomic<std::uint64_t> count_{0};
  // Double-valued accumulators as CAS'd bit patterns (no std::atomic<double>
  // fetch_add before C++20 libstdc++ support everywhere).
  std::atomic<std::uint64_t> sum_bits_{0};
  std::atomic<std::uint64_t> min_bits_;
  std::atomic<std::uint64_t> max_bits_;

 public:
  Histogram();
};

/// Named metric registry. Lookup is mutex-guarded and intended to run once
/// per instrumentation site (cache the returned reference); the metrics
/// themselves are lock-free. Names are dot-separated paths by convention
/// (e.g. "engine.misses", "store.disk.read_ms", "op.analyze.ms"); the three
/// metric kinds have independent namespaces.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates. The returned reference is stable until the registry
  /// is destroyed (metrics are never removed). The mutex guards this name
  /// lookup only — incrementing through a returned reference is lock-free,
  /// which is why instrumentation sites resolve once and cache. RSAT_EXCLUDES
  /// makes the other half of that contract compile-checked: lookups must
  /// never run under the registry mutex (no re-entrant registration).
  Counter& counter(const std::string& name) RSAT_EXCLUDES(mu_);
  Gauge& gauge(const std::string& name) RSAT_EXCLUDES(mu_);
  Histogram& histogram(const std::string& name) RSAT_EXCLUDES(mu_);

  /// Point-in-time summary of one histogram.
  struct HistogramView {
    std::uint64_t count = 0;
    double sum = 0, mean = 0, min = 0, max = 0;
    double p50 = 0, p95 = 0, p99 = 0;
  };

  /// Name-sorted snapshots (per-metric consistent; see header comment).
  std::map<std::string, std::uint64_t> counters() const RSAT_EXCLUDES(mu_);
  std::map<std::string, std::int64_t> gauges() const RSAT_EXCLUDES(mu_);
  std::map<std::string, HistogramView> histograms() const RSAT_EXCLUDES(mu_);

  /// The whole registry as one JSON object:
  ///   {"counters":{...},"gauges":{...},"histograms":{"x":{"count":...}}}
  /// Keys are sorted, numeric formats fixed — byte-stable for given values.
  std::string to_json() const RSAT_EXCLUDES(mu_);

  /// The whole registry in Prometheus text exposition format: one `# TYPE`
  /// line per metric, counters suffixed `_total`, histograms rendered as a
  /// cumulative `_bucket{le="..."}` ladder over the non-empty native buckets
  /// plus `+Inf`, `_sum` and `_count`. Metric names are prefixed `rsat_`
  /// with dots mapped to underscores; blocks are name-sorted and the body
  /// ends with a `# EOF` line so line-oriented protocol clients can frame
  /// the multi-line response. Byte-stable for a given set of values.
  std::string to_prometheus() const RSAT_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;  // guards the name->metric maps, never the metrics
  std::map<std::string, std::unique_ptr<Counter>> counters_
      RSAT_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ RSAT_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      RSAT_GUARDED_BY(mu_);
};

/// Solver-interior instrumentation bundle: one pre-resolved metric pointer
/// per solver-layer counter/histogram, attached once at the service boundary
/// and threaded down the call chain via SolveContext::with_profile(). A null
/// profile (or default-constructed bundle) means profiling is off. Solvers
/// accumulate effort in stack locals and flush once per solve next to their
/// SolveContext::record() call, so the per-node hot path pays nothing and a
/// whole solve pays a handful of relaxed RMWs. The `solver.*` name literals
/// live only in metrics.cpp (make_solver_profile), preserving the
/// metric-literal lint invariant of one registration site per prefix.
struct SolverProfile {
  // lp/simplex.cpp (flushed by the branch-and-bound driver)
  Counter* simplex_phase1_iterations = nullptr;
  Counter* simplex_phase2_iterations = nullptr;
  // lp/branch_bound.cpp
  Counter* bb_nodes = nullptr;
  Counter* bb_bound_improvements = nullptr;
  Histogram* bb_max_depth = nullptr;
  Histogram* bb_nodes_per_sec = nullptr;
  // core/rs_exact.cpp
  Counter* exact_expansions = nullptr;
  Histogram* exact_max_depth = nullptr;
  // core/greedy_k.cpp
  Counter* greedy_refine_passes = nullptr;
  Counter* greedy_trials = nullptr;
  // core/reduce.cpp
  Counter* reduce_rounds = nullptr;
  Counter* reduce_candidates = nullptr;
  // core/portfolio.cpp (per-strategy race duration + loser-cancel latency)
  Histogram* portfolio_attempt_exact_ms = nullptr;
  Histogram* portfolio_attempt_ilp_ms = nullptr;
  Histogram* portfolio_attempt_greedy_ms = nullptr;
  Histogram* portfolio_attempt_bisect_ms = nullptr;
  Histogram* portfolio_cancel_latency_ms = nullptr;
};

/// Resolves the full `solver.*` metric family in `registry` once. The
/// returned bundle's pointers stay valid for the registry's lifetime
/// (metrics are never removed); callers resolve at construction and attach
/// the bundle to each request's SolveContext.
SolverProfile make_solver_profile(MetricsRegistry& registry);

}  // namespace rs::support
