#include "support/fs.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace rs::support {

namespace {

/// Process-unique suffix for temp files: pid + a monotonic counter, so two
/// writers in this process (or two processes sharing a cache dir) never
/// collide on the temp name.
std::string temp_suffix() {
  static std::atomic<std::uint64_t> counter{0};
#if defined(__unix__) || defined(__APPLE__)
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  return "." + std::to_string(pid) + "." +
         std::to_string(counter.fetch_add(1)) + ".tmp";
}

}  // namespace

bool read_file_to_string(const std::string& path, std::string* out) {
  out->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return false;
  *out = ss.str();
  return true;
}

bool write_file_atomic(const std::string& path, std::string_view data) {
  const std::string tmp = path + temp_suffix();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) return false;
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool create_directories(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) return false;
  return std::filesystem::is_directory(path, ec);
}

}  // namespace rs::support
