#include "support/thread_pool.hpp"

#include <atomic>
#include <chrono>

#include "support/metrics.hpp"

namespace rs::support {

ThreadPool::ThreadPool(std::size_t threads, MetricsRegistry* metrics) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (metrics != nullptr) {
    queue_depth_ = &metrics->gauge("pool.queue_depth");
    active_ = &metrics->gauge("pool.active");
    tasks_done_ = &metrics->counter("pool.tasks");
    queue_wait_ms_ = &metrics->histogram("pool.queue_wait_ms");
    task_ms_ = &metrics->histogram("pool.task_ms");
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    LockGuard lock(mutex_);
    queue_.push(Task{std::move(task), Timer{}});
    ++in_flight_;
  }
  if (queue_depth_ != nullptr) queue_depth_->add(1);
  cv_task_.notify_one();
}

void ThreadPool::submit_nested(std::function<void()> task) {
  {
    LockGuard lock(mutex_);
    nested_.push_back(Task{std::move(task), Timer{}});
    ++in_flight_;
  }
  if (queue_depth_ != nullptr) queue_depth_->add(1);
  cv_task_.notify_one();
}

bool ThreadPool::try_run_one() {
  Task task;
  {
    LockGuard lock(mutex_);
    if (nested_.empty()) return false;
    task = std::move(nested_.front());
    nested_.pop_front();
  }
  run_task(std::move(task));
  return true;
}

void ThreadPool::wait_idle() {
  // Explicit wait loop (not a predicate lambda): the in_flight_ read must
  // sit in this annotated body, where the analysis can see the lock held.
  UniqueLock lock(mutex_);
  while (in_flight_ != 0) cv_idle_.wait(lock);
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Chunk-free dynamic scheduling: individual tasks here are coarse
  // (an exact ILP solve each), so per-index dispatch overhead is noise.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t workers = thread_count();
  const std::size_t tasks = std::min(n, workers);
  for (std::size_t t = 0; t < tasks; ++t) {
    submit([next, n, &fn] {
      for (;;) {
        const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      UniqueLock lock(mutex_);
      while (!stopping_ && queue_.empty() && nested_.empty()) {
        cv_task_.wait(lock);
      }
      // Nested tasks first: finish fan-out of in-flight requests before
      // starting new top-level ones.
      if (!nested_.empty()) {
        task = std::move(nested_.front());
        nested_.pop_front();
      } else if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop();
      } else {
        return;  // stopping_ and drained
      }
    }
    run_task(std::move(task));
  }
}

void ThreadPool::run_task(Task task) {
  if (queue_depth_ != nullptr) queue_depth_->sub(1);
  if (queue_wait_ms_ != nullptr) queue_wait_ms_->observe(task.queued.millis());
  if (active_ != nullptr) active_->add(1);
  Timer run;
  task.fn();
  if (active_ != nullptr) active_->sub(1);
  if (task_ms_ != nullptr) task_ms_->observe(run.millis());
  if (tasks_done_ != nullptr) tasks_done_->inc();
  {
    LockGuard lock(mutex_);
    --in_flight_;
    if (in_flight_ == 0) cv_idle_.notify_all();
  }
}

void TaskGroup::run(std::function<void()> task) {
  if (pool_ == nullptr) {
    task();
    return;
  }
  {
    LockGuard lock(mu_);
    ++pending_;
  }
  pool_->submit_nested([this, task = std::move(task)] {
    task();
    LockGuard lock(mu_);
    if (--pending_ == 0) cv_.notify_all();
  });
}

void TaskGroup::wait(const std::function<void()>& poll) {
  if (pool_ == nullptr) return;  // everything ran inline
  for (;;) {
    {
      LockGuard lock(mu_);
      if (pending_ == 0) return;
    }
    if (poll) poll();
    // Prefer doing the group's own (or a sibling's) nested work over
    // sleeping; the 1 ms nap only triggers while all nested tasks are
    // already being executed by other threads.
    if (pool_->try_run_one()) continue;
    UniqueLock lock(mu_);
    if (pending_ == 0) return;
    cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

}  // namespace rs::support
