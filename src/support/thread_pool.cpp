#include "support/thread_pool.hpp"

#include <atomic>

namespace rs::support {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Chunk-free dynamic scheduling: individual tasks here are coarse
  // (an exact ILP solve each), so per-index dispatch overhead is noise.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t workers = thread_count();
  const std::size_t tasks = std::min(n, workers);
  for (std::size_t t = 0; t < tasks; ++t) {
    submit([next, n, &fn] {
      for (;;) {
        const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace rs::support
