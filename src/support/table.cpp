#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/assert.hpp"

namespace rs::support {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  RS_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  RS_REQUIRE(row.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " ") << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    }
    os << '\n';
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::string& cell = row[c];
      if (c) os << ',';
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt_double(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string fmt_percent(std::size_t num, std::size_t den, int digits) {
  if (den == 0) return "n/a";
  return fmt_double(100.0 * static_cast<double>(num) / static_cast<double>(den),
                    digits) + "%";
}

}  // namespace rs::support
