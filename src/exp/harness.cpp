#include "exp/harness.hpp"

#include <algorithm>

#include "core/greedy_k.hpp"
#include "core/rs_exact.hpp"
#include "ddg/generators.hpp"
#include "ddg/kernels.hpp"
#include "graph/paths.hpp"
#include "support/random.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace rs::exp {

std::vector<Instance> standard_corpus(const CorpusOptions& opts) {
  std::vector<Instance> corpus;
  if (opts.superscalar_kernels) {
    const ddg::MachineModel model = ddg::superscalar_model();
    for (auto& k : ddg::kernel_corpus(model)) {
      corpus.push_back(Instance{k.name + "/ss", std::move(k.ddg)});
    }
  }
  if (opts.vliw_kernels) {
    const ddg::MachineModel model = ddg::vliw_model();
    for (auto& k : ddg::kernel_corpus(model)) {
      corpus.push_back(Instance{k.name + "/vliw", std::move(k.ddg)});
    }
  }
  const ddg::MachineModel model = ddg::superscalar_model();
  support::Rng rng(opts.seed);
  for (const int size : opts.random_sizes) {
    for (int i = 0; i < opts.random_count; ++i) {
      ddg::RandomDagParams params;
      params.n_ops = size;
      ddg::Ddg dag = ddg::random_dag(rng, model, params);
      dag.set_name("rand" + std::to_string(size) + "-" + std::to_string(i));
      corpus.push_back(Instance{dag.name(), std::move(dag)});
    }
  }
  return corpus;
}

std::vector<RsComparison> compare_rs(const std::vector<Instance>& corpus,
                                     const RsSweepOptions& opts) {
  std::vector<RsComparison> rows(corpus.size());
  support::ThreadPool pool(opts.threads);
  pool.parallel_for(corpus.size(), [&](std::size_t idx) {
    const Instance& inst = corpus[idx];
    RsComparison row;
    row.name = inst.name;
    row.n_ops = inst.ddg.op_count();
    row.n_arcs = inst.ddg.graph().edge_count();
    const core::TypeContext ctx(inst.ddg, opts.type);
    row.n_values = ctx.value_count();

    support::Timer t1;
    const core::RsEstimate heur = core::greedy_k(ctx);
    row.heuristic_ms = t1.millis();
    row.rs_heuristic = heur.rs;

    support::Timer t2;
    const core::RsExactResult exact =
        core::rs_exact(ctx, core::RsExactOptions{},
                       support::SolveContext(opts.exact_time_limit));
    row.exact_ms = t2.millis();
    row.rs_exact = exact.rs;
    row.proven = exact.proven;
    row.exact_nodes = exact.nodes;
    rows[idx] = std::move(row);
  });
  return rows;
}

const char* category_label(ReductionCategory c) {
  switch (c) {
    case ReductionCategory::OptimalRsOptimalIlp: return "(i)(a)  RS=RS* ILP=ILP*";
    case ReductionCategory::OptimalRsSubIlp: return "(i)(b)  RS=RS* ILP<ILP*";
    case ReductionCategory::OptimalRsSuperIlp: return "(i)(c)  RS=RS* ILP>ILP*";
    case ReductionCategory::SubRsOptimalIlp: return "(ii)(a) RS>RS* ILP=ILP*";
    case ReductionCategory::SubRsSubIlp: return "(ii)(b) RS>RS* ILP<ILP*";
    case ReductionCategory::SubRsSuperIlp: return "(ii)(c) RS>RS* ILP>ILP*";
    case ReductionCategory::HeuristicAboveOptimal: return "(iii)   RS<RS*";
  }
  return "?";
}

namespace {

ReductionCategory classify(int rs_opt, int rs_heur, sched::Time ilp_opt,
                           sched::Time ilp_heur) {
  if (rs_opt < rs_heur) return ReductionCategory::HeuristicAboveOptimal;
  if (rs_opt == rs_heur) {
    if (ilp_opt == ilp_heur) return ReductionCategory::OptimalRsOptimalIlp;
    if (ilp_opt < ilp_heur) return ReductionCategory::OptimalRsSubIlp;
    return ReductionCategory::OptimalRsSuperIlp;
  }
  if (ilp_opt == ilp_heur) return ReductionCategory::SubRsOptimalIlp;
  if (ilp_opt < ilp_heur) return ReductionCategory::SubRsSubIlp;
  return ReductionCategory::SubRsSuperIlp;
}

}  // namespace

std::vector<ReductionComparison> compare_reduction(
    const std::vector<Instance>& corpus, const ReductionSweepOptions& opts) {
  // Expand to (instance, R) pairs; RS is computed per instance first.
  struct Task {
    const Instance* inst;
    int rs_exact;
    int R;
  };
  std::vector<Task> tasks;
  {
    std::vector<int> rs_values(corpus.size(), -1);
    support::ThreadPool pool(opts.threads);
    pool.parallel_for(corpus.size(), [&](std::size_t idx) {
      const core::TypeContext ctx(corpus[idx].ddg, opts.type);
      const core::RsExactResult r =
          core::rs_exact(ctx, core::RsExactOptions{},
                         support::SolveContext(opts.time_limit));
      rs_values[idx] = r.proven ? r.rs : -1;
    });
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      if (rs_values[i] < 0) continue;
      for (const int off : opts.r_offsets) {
        const int R = rs_values[i] - off;
        if (R >= opts.min_r && R < rs_values[i]) {
          tasks.push_back(Task{&corpus[i], rs_values[i], R});
        }
      }
    }
  }

  std::vector<ReductionComparison> rows(tasks.size());
  support::ThreadPool pool(opts.threads);
  pool.parallel_for(tasks.size(), [&](std::size_t idx) {
    const Task& task = tasks[idx];
    ReductionComparison row;
    row.name = task.inst->name;
    row.R = task.R;
    const core::TypeContext ctx(task.inst->ddg, opts.type);

    core::ReduceOptions ropts;
    ropts.rs_upper = task.rs_exact;

    // The paper's two optimal intLP programs (section 5 uses both): the
    // decrement loop maximizing the reduced saturation, and the minimum
    // critical path over valid extended DDGs. For the latter we take the
    // best *certified* reduction (minimum over the DAG-guarded witness and
    // both produced graphs); the unguarded minimum makespan is a proven
    // lower bound used to flag optimality.
    const core::ReduceResult opt = core::reduce_optimal(
        ctx, task.R, ropts, support::SolveContext(opts.time_limit));
    core::SrcOptions msopts = ropts.src;
    const core::ArcLatencyMode mode = ropts.arc_mode;
    msopts.leaf_filter = [&ctx, mode](const sched::Schedule& s) {
      return core::extend_by_schedule(ctx, s, mode).is_dag;
    };
    const core::SrcResult ms = core::SrcSolver(ctx, task.R).minimize_makespan(
        msopts, support::SolveContext(opts.time_limit));
    const core::ReduceResult heur = core::reduce_greedy(
        ctx, task.R, ropts, support::SolveContext(opts.time_limit));

    if (opt.status == core::ReduceStatus::LimitHit ||
        ms.status == core::SrcStatus::LimitHit) {
      row.skip_reason = "optimal: budget";
    } else if (heur.status == core::ReduceStatus::LimitHit) {
      row.skip_reason = "heuristic: budget";
    } else if (opt.status == core::ReduceStatus::SpillNeeded &&
               heur.status == core::ReduceStatus::SpillNeeded) {
      row.skip_reason = "spill unavoidable";
    } else if (heur.status == core::ReduceStatus::SpillNeeded) {
      row.skip_reason = "heuristic: spill (optimal reduced)";
    } else if (opt.status == core::ReduceStatus::SpillNeeded) {
      row.skip_reason = "optimal: spill (heuristic reduced!)";
    } else {
      // Both produced extended DDGs. For fairness, RS* is the exact RS of
      // the heuristic's output (its own estimate is a lower bound).
      const core::TypeContext hctx(*heur.extended, opts.type);
      const core::RsExactResult heur_rs =
          core::rs_exact(hctx, core::RsExactOptions{},
                         support::SolveContext(opts.time_limit));
      if (!heur_rs.proven) {
        row.skip_reason = "verify: budget";
      } else if (heur_rs.rs > task.R) {
        row.skip_reason = "heuristic: under-reduced (RS above limit)";
      } else if (!ms.feasible) {
        row.skip_reason = "optimal: spill (min-makespan)";
      } else {
        const sched::Time cp_original =
            graph::critical_path(task.inst->ddg.graph());
        row.usable = true;
        row.rs_optimal = opt.achieved_rs;
        row.rs_heuristic = heur_rs.rs;
        // Best certified reduction CP; ms.makespan bounds it from above
        // (its witness extension is a DAG) and every produced graph
        // certifies its own critical path.
        row.ilp_optimal =
            std::min({ms.makespan - cp_original, opt.ilp_loss(),
                      heur.ilp_loss()});
        row.ilp_heuristic = heur.ilp_loss();
        row.arcs_optimal = opt.arcs_added;
        row.arcs_heuristic = heur.arcs_added;
        row.category = classify(row.rs_optimal, row.rs_heuristic,
                                row.ilp_optimal, row.ilp_heuristic);
      }
    }
    rows[idx] = std::move(row);
  });
  return rows;
}

CategoryBreakdown summarize(const std::vector<ReductionComparison>& rows) {
  CategoryBreakdown b;
  for (const ReductionComparison& row : rows) {
    if (!row.usable) {
      ++b.skipped;
      continue;
    }
    ++b.usable;
    ++b.count[static_cast<int>(row.category)];
  }
  return b;
}

}  // namespace rs::exp
