// Experiment harness: corpora, optimal-vs-heuristic sweeps, and the
// section-5 category taxonomy. Bench binaries print tables from these
// results; tests assert the paper's structural claims on them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/reduce.hpp"
#include "ddg/ddg.hpp"
#include "ddg/machine.hpp"

namespace rs::exp {

struct Instance {
  std::string name;
  ddg::Ddg ddg;
};

struct CorpusOptions {
  bool superscalar_kernels = true;
  bool vliw_kernels = true;
  int random_count = 24;       // random DAGs per size bucket
  std::uint64_t seed = 20040815;  // ICPP 2004 vintage
  std::vector<int> random_sizes = {8, 10, 12};
};

/// The evaluation corpus: reconstructed benchmark kernels under both
/// machine models plus seeded random DAGs (see DESIGN.md substitution 2).
std::vector<Instance> standard_corpus(const CorpusOptions& opts = {});

// ---------------------------------------------------------------- EXP-1 --

struct RsComparison {
  std::string name;
  int n_ops = 0;
  int n_arcs = 0;
  int n_values = 0;
  int rs_heuristic = 0;
  int rs_exact = 0;
  bool proven = false;
  double heuristic_ms = 0.0;
  double exact_ms = 0.0;
  long exact_nodes = 0;

  int error() const { return rs_exact - rs_heuristic; }
};

struct RsSweepOptions {
  ddg::RegType type = ddg::kFloatReg;
  double exact_time_limit = 30.0;
  std::size_t threads = 0;  // 0: hardware concurrency
};

/// Heuristic vs exact RS over a corpus (section 5, "RS computation").
std::vector<RsComparison> compare_rs(const std::vector<Instance>& corpus,
                                     const RsSweepOptions& opts = {});

// ---------------------------------------------------------------- EXP-2 --

/// The six cells of the paper's section-5 reduction taxonomy.
enum class ReductionCategory {
  OptimalRsOptimalIlp,     // (i)(a):  RS == RS*, ILP == ILP*
  OptimalRsSubIlp,         // (i)(b):  RS == RS*, ILP <  ILP*
  OptimalRsSuperIlp,       // (i)(c):  RS == RS*, ILP >  ILP*  (paper: impossible)
  SubRsOptimalIlp,         // (ii)(a): RS >  RS*, ILP == ILP*
  SubRsSubIlp,             // (ii)(b): RS >  RS*, ILP <  ILP*
  SubRsSuperIlp,           // (ii)(c): RS >  RS*, ILP >  ILP*
  HeuristicAboveOptimal,   // (iii):   RS <  RS*  (paper: impossible)
};

const char* category_label(ReductionCategory c);

struct ReductionComparison {
  std::string name;
  int R = 0;
  bool usable = false;       // both solvers finished with proven answers
  std::string skip_reason;   // when !usable
  int rs_optimal = 0;        // reduced RS from the exact method
  int rs_heuristic = 0;      // exact RS of the heuristically reduced DDG
  sched::Time ilp_optimal = 0;   // critical-path loss, exact method
  sched::Time ilp_heuristic = 0; // critical-path loss, heuristic
  int arcs_optimal = 0;
  int arcs_heuristic = 0;
  ReductionCategory category = ReductionCategory::OptimalRsOptimalIlp;
};

struct ReductionSweepOptions {
  ddg::RegType type = ddg::kFloatReg;
  /// Register limits tried per instance, expressed as offsets below the
  /// exact RS (an instance with RS=7 and offsets {1,2} runs R=6 and R=5).
  std::vector<int> r_offsets = {1, 2};
  int min_r = 2;
  double time_limit = 20.0;
  std::size_t threads = 0;
};

/// Optimal vs heuristic reduction over (instance, R) pairs (section 5).
std::vector<ReductionComparison> compare_reduction(
    const std::vector<Instance>& corpus,
    const ReductionSweepOptions& opts = {});

/// Aggregates category percentages over usable rows (the paper's list).
struct CategoryBreakdown {
  std::size_t usable = 0;
  std::size_t skipped = 0;
  std::size_t count[7] = {0, 0, 0, 0, 0, 0, 0};

  double percent(ReductionCategory c) const {
    return usable == 0 ? 0.0
                       : 100.0 * static_cast<double>(count[static_cast<int>(c)]) /
                             static_cast<double>(usable);
  }
};
CategoryBreakdown summarize(const std::vector<ReductionComparison>& rows);

}  // namespace rs::exp
