#include "cfg/generators.hpp"

#include "support/assert.hpp"

namespace rs::cfg {

namespace {

using ddg::kFloatReg;
using ddg::kIntReg;
using ddg::OpClass;

struct Val {
  std::string name;
  ddg::RegType type = kIntReg;
};

/// Fills block `b` with params.ops value-producing statements whose
/// operands come from earlier statements of the block, from `inherited`
/// (cross-block values, taken with params.cross_prob), or from fresh
/// program inputs. Returns the values the block defined.
std::vector<Val> fill_block(Program& p, support::Rng& rng, int b,
                            const std::string& prefix,
                            const std::vector<Val>& inherited,
                            const BlockParams& params) {
  std::vector<Val> local;
  int inputs = 0;
  const auto operand = [&](ddg::RegType want) -> std::string {
    if (!inherited.empty() && rng.next_bool(params.cross_prob)) {
      // Prefer a cross-block value of the wanted type when one exists.
      const std::size_t start = rng.next_below(inherited.size());
      for (std::size_t k = 0; k < inherited.size(); ++k) {
        const Val& v = inherited[(start + k) % inherited.size()];
        if (v.type == want) return v.name;
      }
    }
    if (!local.empty() && rng.next_bool(0.6)) {
      const std::size_t start = rng.next_below(local.size());
      for (std::size_t k = 0; k < local.size(); ++k) {
        const Val& v = local[(start + k) % local.size()];
        if (v.type == want) return v.name;
      }
    }
    // Fresh program input; float inputs are first consumed by a float
    // class below, so first-consumption typing agrees with `want`.
    return prefix + ".in" + std::to_string(inputs++);
  };

  for (int i = 0; i < params.ops; ++i) {
    const std::string name = prefix + ".v" + std::to_string(i);
    if (rng.next_bool(params.float_prob)) {
      const int pick = rng.next_int(0, 3);
      if (pick == 0) {
        p.def(b, name, OpClass::Load, kFloatReg, {operand(kIntReg)});
      } else {
        const OpClass cls = pick == 1   ? OpClass::FpAdd
                            : pick == 2 ? OpClass::FpMul
                                        : OpClass::FpDiv;
        p.def(b, name, cls, kFloatReg,
              {operand(kFloatReg), operand(kFloatReg)});
      }
      local.push_back(Val{name, kFloatReg});
    } else {
      p.def(b, name, OpClass::IntAlu, kIntReg,
            {operand(kIntReg), operand(kIntReg)});
      local.push_back(Val{name, kIntReg});
    }
  }
  // Store the last value so every block has an architecturally visible
  // effect (and a serial-ordering sink, like the hand-written kernels).
  p.use(b, OpClass::Store, {local.back().name, operand(kIntReg)});
  return local;
}

void append(std::vector<Val>& pool, const std::vector<Val>& vals) {
  pool.insert(pool.end(), vals.begin(), vals.end());
}

/// The join of a branchy shape: combines one value from each arm (so each
/// arm's result is live into the join), then does its own local work.
void fill_join(Program& p, support::Rng& rng, int join,
               const std::vector<std::vector<Val>>& arms,
               const std::vector<Val>& entry_vals, const BlockParams& params) {
  std::vector<Val> inherited = entry_vals;
  int merged = 0;
  for (std::size_t a = 0; a + 1 < arms.size(); a += 2) {
    const Val& x = arms[a].back();
    const Val& y = arms[a + 1].back();
    if (x.type == y.type) {
      const std::string name = "join.m" + std::to_string(merged++);
      p.def(join, name,
            x.type == kFloatReg ? OpClass::FpAdd : OpClass::IntAlu, x.type,
            {x.name, y.name});
      inherited.push_back(Val{name, x.type});
      continue;
    }
    p.use(join, OpClass::Store, {x.name, y.name});
  }
  if (arms.size() % 2 == 1) append(inherited, {arms.back().back()});
  fill_block(p, rng, join, "join", inherited, params);
}

}  // namespace

Cfg random_chain(support::Rng& rng, const ddg::MachineModel& model, int blocks,
                 const BlockParams& params) {
  RS_REQUIRE(blocks >= 1, "chain needs at least one block");
  RS_REQUIRE(params.ops >= 1, "blocks need at least one statement");
  Program p(model, "chain" + std::to_string(blocks));
  std::vector<Val> pool;
  int prev = -1;
  for (int i = 0; i < blocks; ++i) {
    const int b = p.add_block("b" + std::to_string(i));
    if (prev >= 0) p.add_edge(prev, b);
    append(pool, fill_block(p, rng, b, "b" + std::to_string(i), pool, params));
    prev = b;
  }
  return p.build();
}

Cfg random_diamond(support::Rng& rng, const ddg::MachineModel& model,
                   const BlockParams& params) {
  return random_switch(rng, model, 2, params);
}

Cfg random_switch(support::Rng& rng, const ddg::MachineModel& model, int cases,
                  const BlockParams& params) {
  RS_REQUIRE(cases >= 2, "switch needs at least two cases");
  RS_REQUIRE(params.ops >= 1, "blocks need at least one statement");
  Program p(model, cases == 2 ? std::string("branch2")
                              : "switch" + std::to_string(cases));
  const int entry = p.add_block("entry");
  const std::vector<Val> entry_vals =
      fill_block(p, rng, entry, "entry", {}, params);
  const int join = p.add_block("join");
  std::vector<std::vector<Val>> arms;
  for (int c = 0; c < cases; ++c) {
    const std::string name = "case" + std::to_string(c);
    const int b = p.add_block(name);
    p.add_edge(entry, b);
    p.add_edge(b, join);
    arms.push_back(fill_block(p, rng, b, name, entry_vals, params));
  }
  fill_join(p, rng, join, arms, entry_vals, params);
  return p.build();
}

namespace {

/// The hand-written corpus programs. `diamond`: the section-6 running
/// shape (a dot-product head, two arms transforming its result, a join
/// keeping the head's value live across both). `dotcond` is its larger
/// sibling from examples/global_scheduling.
Cfg diamond_kernel(const ddg::MachineModel& model) {
  Program p(model, "diamond");
  const int entry = p.add_block("entry");
  const int left = p.add_block("left");
  const int right = p.add_block("right");
  const int join = p.add_block("join");
  p.add_edge(entry, left);
  p.add_edge(entry, right);
  p.add_edge(left, join);
  p.add_edge(right, join);
  p.def(entry, "x", OpClass::Load, kFloatReg, {"p"});
  p.def(entry, "y", OpClass::FpMul, kFloatReg, {"x", "x"});
  p.def(left, "a", OpClass::FpAdd, kFloatReg, {"y", "x"});
  p.def(right, "b", OpClass::FpMul, kFloatReg, {"y", "y"});
  p.def(join, "r", OpClass::FpAdd, kFloatReg, {"a", "b"});
  p.use(join, OpClass::Store, {"r", "p"});
  return p.build();
}

Cfg dotcond_kernel(const ddg::MachineModel& model) {
  Program p(model, "dotcond");
  const int head = p.add_block("head");
  const int hot = p.add_block("hot");
  const int cold = p.add_block("cold");
  const int tail = p.add_block("tail");
  p.add_edge(head, hot);
  p.add_edge(head, cold);
  p.add_edge(hot, tail);
  p.add_edge(cold, tail);
  p.def(head, "a0", OpClass::Load, kFloatReg, {"ap"});
  p.def(head, "b0", OpClass::Load, kFloatReg, {"bp"});
  p.def(head, "a1", OpClass::Load, kFloatReg, {"ap"});
  p.def(head, "b1", OpClass::Load, kFloatReg, {"bp"});
  p.def(head, "m0", OpClass::FpMul, kFloatReg, {"a0", "b0"});
  p.def(head, "m1", OpClass::FpMul, kFloatReg, {"a1", "b1"});
  p.def(head, "r", OpClass::FpAdd, kFloatReg, {"m0", "m1"});
  p.def(head, "s", OpClass::Load, kFloatReg, {"sp"});
  p.use(head, OpClass::Branchy, {"r", "s"});
  p.def(hot, "rh", OpClass::FpMul, kFloatReg, {"r", "s"});
  p.use(hot, OpClass::Store, {"rh", "ap"});
  p.def(cold, "rc", OpClass::FpAdd, kFloatReg, {"r", "s"});
  p.use(cold, OpClass::Store, {"rc", "ap"});
  p.use(tail, OpClass::Store, {"r", "bp"});
  return p.build();
}

}  // namespace

std::vector<std::string> program_names() {
  return {"diamond", "dotcond", "chain4", "switch3"};
}

Cfg build_program(const std::string& name, const ddg::MachineModel& model) {
  if (name == "diamond") return diamond_kernel(model);
  if (name == "dotcond") return dotcond_kernel(model);
  if (name == "chain4") {
    support::Rng rng(0xC4A14ULL);
    return random_chain(rng, model, 4);
  }
  if (name == "switch3") {
    support::Rng rng(0x535733ULL);
    return random_switch(rng, model, 3);
  }
  std::string known;
  for (const std::string& n : program_names()) {
    known += (known.empty() ? "" : "|") + n;
  }
  RS_REQUIRE(false, "unknown program '" + name + "' (" + known + ")");
  return diamond_kernel(model);
}

}  // namespace rs::cfg
