// Canonical structural fingerprint of a program (acyclic CFG) — the cache
// key of program-level service operations (globalrs/globalreduce), the
// CFG companion of ddg/canon.hpp.
//
// Two programs that differ only by block insertion order, block/value
// renaming, or statement reordering that preserves dependences describe
// the same global-RS problem and must hash identically; programs whose
// expanded blocks or control-flow shape differ must not.
//
// Implementation: each block's initial label is the ddg::canon fingerprint
// of its *expanded* DAG (entry/exit values included, so liveness structure
// is part of the label — names never are). Weisfeiler-Leman refinement
// over the CFG then absorbs the sorted multisets of predecessor/successor
// labels, and the final fingerprint hashes the sorted multiset of block
// labels plus global counts — order-invariant by construction, with the
// same two-seed 128-bit scheme (and the same theoretical WL-collision
// caveat) as the DDG fingerprint.
#pragma once

#include "cfg/cfg.hpp"
#include "ddg/canon.hpp"

namespace rs::cfg {

/// Per-block fingerprints: ddg::fingerprint of every expanded block, in
/// block order. The shared first pass of fingerprint() and of the service
/// operations' canonical block ordering — one expansion + hash per block
/// instead of one per consumer.
std::vector<ddg::Fingerprint> block_fingerprints(const Cfg& cfg);

/// 128-bit order/rename-invariant structural hash of a program. Shares
/// ddg::Fingerprint so program keys flow through the engine's CacheKey
/// machinery unchanged.
ddg::Fingerprint fingerprint(const Cfg& cfg);

}  // namespace rs::cfg
