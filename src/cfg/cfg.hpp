// Acyclic control-flow graphs of basic blocks (section 6, "In the case of
// a global scheduler", and the conclusion: "global RS of an acyclic CFG is
// brought back to RS in DAGs by inserting entry and exit values with the
// corresponding flow arcs").
//
// A Program is built from named SSA-ish values: each block defines values
// by name and may read names defined earlier in the block, in another
// block, or nowhere (program inputs). A name may be defined at most once
// per block; definitions in several blocks (the classic diamond merge
// where both arms produce the same name) are allowed as long as every
// definition agrees on the register type, which keeps entry-value typing
// unambiguous. Liveness analysis determines per-block entry/exit values;
// expansion materializes each block as a standalone DDG with latency-0
// entry definitions and exit consumers, ready for the per-DAG RS
// machinery.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ddg/builder.hpp"
#include "ddg/ddg.hpp"
#include "ddg/machine.hpp"

namespace rs::cfg {

/// One recorded statement of a block.
struct Statement {
  std::string result;   // empty for pure sinks (stores, compares)
  ddg::OpClass cls = ddg::OpClass::IntAlu;
  ddg::RegType type = 0;  // type of the result value
  std::vector<std::string> operands;
};

struct Block {
  std::string name;
  std::vector<Statement> statements;
  std::vector<int> successors;
  // Filled by liveness():
  std::vector<std::string> live_in;   // sorted
  std::vector<std::string> live_out;  // sorted
};

class Program;

/// An analyzed CFG: blocks with liveness, ready for expansion.
class Cfg {
 public:
  const std::string& name() const { return name_; }
  int block_count() const { return static_cast<int>(blocks_.size()); }
  const Block& block(int b) const { return blocks_[b]; }
  const ddg::MachineModel& machine() const { return machine_; }
  int type_count() const { return ddg::kRegTypeCount; }

  /// The register type of a named value (defined anywhere in the program
  /// or appearing as a program input). Inputs take the type they are first
  /// consumed as, in program order: an operand of a float-class statement
  /// (fadd/fmul/fdiv/flong) reads float, every other class reads int.
  ddg::RegType type_of(const std::string& value) const;

  /// Materializes block b as a standalone, normalized DDG: entry values
  /// become latency-0 definitions, exit values gain an explicit
  /// end-of-block consumer (so they stay live through the block).
  ddg::Ddg expand_block(int b) const;

 private:
  friend class Program;
  Cfg(ddg::MachineModel machine, std::string name)
      : name_(std::move(name)), machine_(std::move(machine)) {}

  std::string name_;
  ddg::MachineModel machine_;
  std::vector<Block> blocks_;
  std::map<std::string, ddg::RegType> value_types_;
};

/// Builder for Cfg. Usage:
///   Program p(superscalar_model());
///   int entry = p.add_block("entry"); ...
///   p.def(entry, "x", OpClass::Load, kFloatReg, {"ptr"});
///   p.add_edge(entry, then_block); ...
///   Cfg cfg = p.build();
class Program {
 public:
  explicit Program(const ddg::MachineModel& machine, std::string name = "prog")
      : machine_(machine), name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  int add_block(std::string name);
  /// CFG arc; the final graph must be acyclic (checked in build()).
  void add_edge(int from, int to);

  /// Value-producing statement. Operand names must be defined earlier in
  /// the block, in some other block, or become program inputs. A name may
  /// be defined in several blocks (one def per block, consistent type).
  void def(int block, std::string result, ddg::OpClass cls, ddg::RegType type,
           std::vector<std::string> operands);
  /// Pure consumer (store/branch-style).
  void use(int block, ddg::OpClass cls, std::vector<std::string> operands);

  /// Runs liveness, validates acyclicity and name consistency (unique,
  /// token-safe block names; per-block unique defs with cross-block type
  /// agreement), and returns the analyzed CFG. Throws PreconditionError on
  /// violations.
  Cfg build() const;

 private:
  ddg::MachineModel machine_;
  std::string name_;
  std::vector<Block> blocks_;
};

}  // namespace rs::cfg
