#include "cfg/canon.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "support/hash.hpp"

namespace rs::cfg {

namespace {

using support::hash_combine;

// Seeds distinct from ddg/canon.cpp so a one-block program never collides
// with its own expanded DAG's fingerprint.
constexpr std::uint64_t kSeed[2] = {0x50726f6743616e31ULL,
                                    0x4366674670723032ULL};
constexpr std::uint64_t kPredTag = 0x1d;
constexpr std::uint64_t kSuccTag = 0x2e;

}  // namespace

std::vector<ddg::Fingerprint> block_fingerprints(const Cfg& cfg) {
  std::vector<ddg::Fingerprint> fps;
  fps.reserve(cfg.block_count());
  for (int b = 0; b < cfg.block_count(); ++b) {
    fps.push_back(ddg::fingerprint(cfg.expand_block(b)));
  }
  return fps;
}

ddg::Fingerprint fingerprint(const Cfg& cfg) {
  const int n = cfg.block_count();
  using Labels = std::vector<std::array<std::uint64_t, 2>>;
  Labels labels(n);
  std::vector<std::vector<int>> preds(n);
  const std::vector<ddg::Fingerprint> block_fps = block_fingerprints(cfg);
  for (int b = 0; b < n; ++b) {
    labels[b] = {hash_combine(kSeed[0], block_fps[b].hi),
                 hash_combine(kSeed[1], block_fps[b].lo)};
    for (const int s : cfg.block(b).successors) preds[s].push_back(b);
  }

  // WL refinement over the CFG; an acyclic graph's partition stabilizes
  // within diameter rounds, so n rounds always suffice (and blocks are
  // few, so no early-exit bookkeeping is needed).
  Labels next(n);
  std::vector<std::uint64_t> sigs;
  long long edges = 0;
  for (int round = 0; round < n; ++round) {
    for (int b = 0; b < n; ++b) {
      for (int s = 0; s < 2; ++s) {
        std::uint64_t h = labels[b][s];
        sigs.clear();
        for (const int p : preds[b]) sigs.push_back(labels[p][s]);
        std::sort(sigs.begin(), sigs.end());
        h = hash_combine(h, kPredTag);
        for (const std::uint64_t v : sigs) h = hash_combine(h, v);
        sigs.clear();
        for (const int q : cfg.block(b).successors) {
          sigs.push_back(labels[q][s]);
        }
        std::sort(sigs.begin(), sigs.end());
        h = hash_combine(h, kSuccTag);
        for (const std::uint64_t v : sigs) h = hash_combine(h, v);
        next[b][s] = h;
      }
    }
    labels.swap(next);
  }
  for (int b = 0; b < n; ++b) {
    edges += static_cast<long long>(cfg.block(b).successors.size());
  }

  ddg::Fingerprint fp;
  std::uint64_t* out[2] = {&fp.hi, &fp.lo};
  std::vector<std::uint64_t> finals(n);
  for (int s = 0; s < 2; ++s) {
    for (int b = 0; b < n; ++b) finals[b] = labels[b][s];
    std::sort(finals.begin(), finals.end());
    std::uint64_t h = hash_combine(kSeed[s], static_cast<std::uint64_t>(n));
    h = hash_combine(h, static_cast<std::uint64_t>(edges));
    for (const std::uint64_t v : finals) h = hash_combine(h, v);
    *out[s] = h;
  }
  return fp;
}

}  // namespace rs::cfg
