// Synthetic acyclic-CFG generators — the program-level companions of the
// DDG generators (ddg/generators.hpp) — plus a small corpus of named
// program kernels for prog=<name> service payloads. All generators are
// deterministic in the supplied Rng; the named kernels are deterministic
// full stop (fixed seeds), so prog= payloads fingerprint identically
// across processes and platforms.
#pragma once

#include <string>
#include <vector>

#include "cfg/cfg.hpp"
#include "support/random.hpp"

namespace rs::cfg {

/// Knobs shared by the CFG shapes: how much work each block carries and
/// how often operands reach across block boundaries (what drives entry/
/// exit values and hence global-vs-local RS divergence).
struct BlockParams {
  /// Value-producing statements per block.
  int ops = 5;
  /// Probability a statement is float-class (fadd/fmul/fdiv vs ialu).
  double float_prob = 0.7;
  /// Probability an operand is drawn from a predecessor block's values
  /// instead of this block's (when any are available).
  double cross_prob = 0.5;
};

/// Unrolled-chain shape: B0 -> B1 -> ... -> B{blocks-1}, every block able
/// to consume values from all earlier blocks.
Cfg random_chain(support::Rng& rng, const ddg::MachineModel& model, int blocks,
                 const BlockParams& params = {});

/// Diamond shape: entry -> {then, else} -> join; the join combines one
/// value from each arm, so both arms' results cross into it.
Cfg random_diamond(support::Rng& rng, const ddg::MachineModel& model,
                   const BlockParams& params = {});

/// Switch shape: entry -> {case0..case{cases-1}} -> join, each case
/// consuming entry values and the join combining one value per case.
Cfg random_switch(support::Rng& rng, const ddg::MachineModel& model, int cases,
                  const BlockParams& params = {});

/// Names of the built-in program kernels (stable order, for docs/usage).
std::vector<std::string> program_names();

/// Builds one named program kernel; throws PreconditionError for unknown
/// names (message lists the known ones).
Cfg build_program(const std::string& name, const ddg::MachineModel& model);

}  // namespace rs::cfg
