#include "cfg/global_rs.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace rs::cfg {

GlobalReport analyze(const Cfg& cfg, const core::AnalyzeOptions& opts,
                     const support::SolveContext& solve) {
  GlobalReport report;
  report.global_rs.assign(cfg.type_count(), 0);
  for (int b = 0; b < cfg.block_count(); ++b) {
    const ddg::Ddg dag = cfg.expand_block(b);
    BlockSaturation bs;
    bs.block = cfg.block(b).name;
    if (solve.stop_requested()) {
      // Budget exhausted (or cancelled) before this block: report the stop
      // cause per type instead of running every remaining block's solver
      // stack against a dead deadline. Value counts are still real (they
      // cost one expansion, no search); rs stays the trivial 0 bound.
      for (int t = 0; t < cfg.type_count(); ++t) {
        core::TypeSaturation ts;
        ts.type = t;
        ts.value_count = static_cast<int>(dag.values_of_type(t).size());
        ts.stats.stop = solve.cause_now(false);
        bs.stats.merge(ts.stats);
        report.all_proven = false;
        bs.per_type.push_back(std::move(ts));
      }
      report.stats.merge(bs.stats);
      report.blocks.push_back(std::move(bs));
      continue;
    }
    // Even split of the budget *remaining now* over the blocks still to
    // analyze (this one included): fast blocks donate their unused slack
    // to the later ones, because each split re-reads the clock.
    const core::SaturationReport block_report =
        core::analyze(dag, opts, solve.split(cfg.block_count() - b));
    bs.per_type = block_report.per_type;
    bs.stats = block_report.stats;
    for (int t = 0; t < cfg.type_count(); ++t) {
      report.global_rs[t] = std::max(report.global_rs[t],
                                     block_report.per_type[t].rs);
      report.all_proven = report.all_proven && block_report.per_type[t].proven;
    }
    report.stats.merge(bs.stats);
    report.blocks.push_back(std::move(bs));
  }
  return report;
}

GlobalReduceResult ensure_limits(const Cfg& cfg, const std::vector<int>& limits,
                                 int move_margin,
                                 const core::PipelineOptions& opts,
                                 const support::SolveContext& solve) {
  RS_REQUIRE(static_cast<int>(limits.size()) == cfg.type_count(),
             "one limit per register type");
  RS_REQUIRE(move_margin >= 0, "negative move margin");
  std::vector<int> effective(limits.size());
  for (std::size_t t = 0; t < limits.size(); ++t) {
    effective[t] = limits[t] - move_margin;
    RS_REQUIRE(effective[t] >= 1,
               "register file too small for the move margin");
  }
  GlobalReduceResult result;
  for (int b = 0; b < cfg.block_count(); ++b) {
    const ddg::Ddg dag = cfg.expand_block(b);
    core::PipelineResult block_result = core::ensure_limits(
        dag, effective, opts, solve.split(cfg.block_count() - b));
    if (!block_result.success) {
      result.success = false;
      result.note += "block " + cfg.block(b).name + ": " + block_result.note;
    }
    result.blocks.push_back(block_result.out);
    result.details.push_back(std::move(block_result));
  }
  return result;
}

}  // namespace rs::cfg
