#include "cfg/global_rs.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace rs::cfg {

namespace {

// Fan-out geometry shared by both entry points: at most `jobs` blocks run
// concurrently, so a run is ceil(n / jobs) waves deep and each block's fair
// budget share is remaining / waves (measured when the block starts — the
// shared-deadline even split).
struct Fanout {
  support::ThreadPool* pool = nullptr;
  int waves = 1;
  int parallel_blocks = 0;
};

Fanout plan_fanout(int blocks, const core::Exec& exec) {
  Fanout f;
  if (blocks <= 0) return f;
  const int jobs = std::min(exec.effective_jobs(), blocks);
  f.waves = (blocks + jobs - 1) / jobs;
  if (jobs >= 2) {
    f.pool = exec.fanout_pool();
    if (f.pool != nullptr) f.parallel_blocks = blocks;
  }
  return f;
}

}  // namespace

GlobalReport analyze(const Cfg& cfg, const core::AnalyzeOptions& opts,
                     const support::SolveContext& solve,
                     const core::Exec& exec) {
  GlobalReport report;
  const int n = cfg.block_count();
  report.global_rs.assign(cfg.type_count(), 0);
  report.blocks.resize(n);
  const Fanout fan = plan_fanout(n, exec);
  report.blocks_parallel = fan.parallel_blocks;
  std::vector<core::PortfolioTally> tallies(n);

  support::TaskGroup group(fan.pool);
  for (int b = 0; b < n; ++b) {
    group.run([&, b] {
      const ddg::Ddg dag = cfg.expand_block(b);
      BlockSaturation bs;
      bs.block = cfg.block(b).name;
      if (solve.stop_requested()) {
        // Budget exhausted (or cancelled) before this block started: report
        // the stop cause per type instead of running the solver stack
        // against a dead deadline. Value counts are still real (they cost
        // one expansion, no search); rs stays the trivial 0 bound.
        for (int t = 0; t < cfg.type_count(); ++t) {
          core::TypeSaturation ts;
          ts.type = t;
          ts.value_count = static_cast<int>(dag.values_of_type(t).size());
          ts.stats.stop = solve.cause_now(false);
          bs.stats.merge(ts.stats);
          bs.per_type.push_back(std::move(ts));
        }
      } else {
        const core::SaturationReport block_report =
            core::analyze(dag, opts, solve.split(fan.waves), exec);
        bs.per_type = block_report.per_type;
        bs.stats = block_report.stats;
        tallies[b] = block_report.portfolio;
      }
      report.blocks[b] = std::move(bs);
    });
  }
  group.wait();

  // Aggregate in block order regardless of completion order.
  for (int b = 0; b < n; ++b) {
    const BlockSaturation& bs = report.blocks[b];
    for (int t = 0; t < cfg.type_count(); ++t) {
      report.global_rs[t] = std::max(report.global_rs[t], bs.per_type[t].rs);
      report.all_proven = report.all_proven && bs.per_type[t].proven;
    }
    report.stats.merge(bs.stats);
    report.portfolio.merge(tallies[b]);
  }
  return report;
}

GlobalReduceResult ensure_limits(const Cfg& cfg, const std::vector<int>& limits,
                                 int move_margin,
                                 const core::PipelineOptions& opts,
                                 const support::SolveContext& solve,
                                 const core::Exec& exec) {
  RS_REQUIRE(static_cast<int>(limits.size()) == cfg.type_count(),
             "one limit per register type");
  RS_REQUIRE(move_margin >= 0, "negative move margin");
  std::vector<int> effective(limits.size());
  for (std::size_t t = 0; t < limits.size(); ++t) {
    effective[t] = limits[t] - move_margin;
    RS_REQUIRE(effective[t] >= 1,
               "register file too small for the move margin");
  }
  GlobalReduceResult result;
  const int n = cfg.block_count();
  result.details.resize(n);
  const Fanout fan = plan_fanout(n, exec);
  result.blocks_parallel = fan.parallel_blocks;

  support::TaskGroup group(fan.pool);
  for (int b = 0; b < n; ++b) {
    group.run([&, b] {
      const ddg::Ddg dag = cfg.expand_block(b);
      result.details[b] = core::ensure_limits(dag, effective, opts,
                                              solve.split(fan.waves), exec);
    });
  }
  group.wait();

  // Aggregate in block order regardless of completion order.
  for (int b = 0; b < n; ++b) {
    core::PipelineResult& block_result = result.details[b];
    if (!block_result.success) {
      result.success = false;
      result.note += "block " + cfg.block(b).name + ": " + block_result.note;
    }
    result.blocks.push_back(block_result.out);
    result.portfolio.merge(block_result.portfolio);
  }
  return result;
}

}  // namespace rs::cfg
