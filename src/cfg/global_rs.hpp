// Global register saturation over an acyclic CFG (section 6).
//
// Each block, expanded with its entry/exit values, is an independent DAG;
// global RS per type is the maximum over blocks. Because a *global*
// allocation may need one register above MAXLIVE for cross-block moves
// (the de Werra et al. bound the paper invokes), the reduction entry point
// takes a `move_margin` subtracted from every limit — the paper's
// suggestion of "decrementing R so the final allocation cannot exceed R
// even if move operations have been inserted".
//
// Blocks are independent, so both entry points fan per-block solves onto
// the Exec's thread pool (TaskGroup, nested-task submission — engine
// workers participating in their own fan-out cannot deadlock the pool).
// Results are collected by block index and aggregated in block order, so
// rows, maxima, stats, and notes are byte-identical whether the blocks ran
// serially or in parallel.
#pragma once

#include "cfg/cfg.hpp"
#include "core/saturation.hpp"

namespace rs::cfg {

struct BlockSaturation {
  std::string block;
  std::vector<core::TypeSaturation> per_type;
  /// Aggregate solve effort and stop cause for this block (merged over its
  /// types); a block skipped because the budget was already exhausted
  /// reports TimedOut/Cancelled here with zero nodes.
  support::SolveStats stats;
};

struct GlobalReport {
  std::vector<BlockSaturation> blocks;
  /// max over blocks, per type.
  std::vector<int> global_rs;
  bool all_proven = true;
  /// Aggregate over all blocks.
  support::SolveStats stats;
  /// Race outcomes over all blocks (Portfolio engine only).
  core::PortfolioTally portfolio;
  /// Blocks fanned onto the pool (0 when the request ran serially).
  int blocks_parallel = 0;
};

/// Computes RS of every expanded block and the global per-type maxima.
/// Budget policy: the remaining budget is split evenly under the shared
/// deadline — every block gets remaining / ceil(blocks / jobs) seconds
/// measured when it starts, so concurrent blocks hold equal shares and a
/// serial run gives each wave of one the same fraction. Once the budget is
/// exhausted (or the context is cancelled) the remaining blocks are not
/// solved at all — they report their stop cause per block instead of each
/// burning solver setup against an expired deadline — so the report always
/// carries one row per block, with per-block stop causes.
GlobalReport analyze(const Cfg& cfg, const core::AnalyzeOptions& opts = {},
                     const support::SolveContext& solve = {},
                     const core::Exec& exec = {});

struct GlobalReduceResult {
  /// Per-block register-safe DDGs (ready for per-block scheduling).
  std::vector<ddg::Ddg> blocks;
  std::vector<core::PipelineResult> details;
  bool success = true;
  std::string note;
  /// Race outcomes over all blocks (Portfolio engine only).
  core::PortfolioTally portfolio;
  /// Blocks fanned onto the pool (0 when the request ran serially).
  int blocks_parallel = 0;
};

/// Runs the figure-1 pipeline on every block against limits[t]-move_margin.
/// Same budget split and fan-out policy as analyze().
GlobalReduceResult ensure_limits(const Cfg& cfg, const std::vector<int>& limits,
                                 int move_margin = 1,
                                 const core::PipelineOptions& opts = {},
                                 const support::SolveContext& solve = {},
                                 const core::Exec& exec = {});

}  // namespace rs::cfg
