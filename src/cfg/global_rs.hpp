// Global register saturation over an acyclic CFG (section 6).
//
// Each block, expanded with its entry/exit values, is an independent DAG;
// global RS per type is the maximum over blocks. Because a *global*
// allocation may need one register above MAXLIVE for cross-block moves
// (the de Werra et al. bound the paper invokes), the reduction entry point
// takes a `move_margin` subtracted from every limit — the paper's
// suggestion of "decrementing R so the final allocation cannot exceed R
// even if move operations have been inserted".
#pragma once

#include "cfg/cfg.hpp"
#include "core/saturation.hpp"

namespace rs::cfg {

struct BlockSaturation {
  std::string block;
  std::vector<core::TypeSaturation> per_type;
  /// Aggregate solve effort and stop cause for this block (merged over its
  /// types); a block skipped because the budget was already exhausted
  /// reports TimedOut/Cancelled here with zero nodes.
  support::SolveStats stats;
};

struct GlobalReport {
  std::vector<BlockSaturation> blocks;
  /// max over blocks, per type.
  std::vector<int> global_rs;
  bool all_proven = true;
  /// Aggregate over all blocks.
  support::SolveStats stats;
};

/// Computes RS of every expanded block and the global per-type maxima.
/// Budget policy: each block gets an even share of the budget *remaining
/// when it starts* (remaining / blocks-left), so a fast block's unused
/// slack automatically flows to the later ones. Once the budget is
/// exhausted (or the context is cancelled) the remaining blocks are not
/// solved at all — they report their stop cause per block instead of each
/// burning solver setup against an expired deadline — so the report always
/// carries one row per block, with per-block stop causes.
GlobalReport analyze(const Cfg& cfg, const core::AnalyzeOptions& opts = {},
                     const support::SolveContext& solve = {});

struct GlobalReduceResult {
  /// Per-block register-safe DDGs (ready for per-block scheduling).
  std::vector<ddg::Ddg> blocks;
  std::vector<core::PipelineResult> details;
  bool success = true;
  std::string note;
};

/// Runs the figure-1 pipeline on every block against limits[t]-move_margin.
GlobalReduceResult ensure_limits(const Cfg& cfg, const std::vector<int>& limits,
                                 int move_margin = 1,
                                 const core::PipelineOptions& opts = {},
                                 const support::SolveContext& solve = {});

}  // namespace rs::cfg
