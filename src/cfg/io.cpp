#include "cfg/io.hpp"

#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "support/assert.hpp"
#include "support/parse.hpp"

namespace rs::cfg {

namespace {

std::string where(int line, const std::string& what) {
  return "line " + std::to_string(line) + ": " + what;
}

ddg::OpClass class_from_name(const std::string& s, int line) {
  for (int c = 0; c <= static_cast<int>(ddg::OpClass::Nop); ++c) {
    if (s == ddg::op_class_name(static_cast<ddg::OpClass>(c))) {
      return static_cast<ddg::OpClass>(c);
    }
  }
  RS_REQUIRE(false, where(line, "unknown op class " + s));
  return ddg::OpClass::Nop;
}

/// key=value lookup inside one line's tokens (support::token_field with
/// the .prog line-numbered error).
std::string field(const std::vector<std::string>& tokens,
                  const std::string& key, int line) {
  const auto value = support::token_field(tokens, key);
  RS_REQUIRE(value.has_value(), where(line, "missing " + key + "="));
  return *value;
}

/// Names must survive the whitespace-token key=value format unchanged:
/// no separators, no comment marker, and no '=' (a name like "uses=a"
/// would be indistinguishable from an option token when read back).
void require_token_safe(const std::string& name, const std::string& what) {
  RS_REQUIRE(!name.empty(), what + " must not be empty");
  for (const char c : name) {
    RS_REQUIRE(c != ' ' && c != '\t' && c != '\r' && c != '\n' && c != '#' &&
                   c != ',' && c != '=',
               what + " '" + name + "' contains a character the .prog "
               "format cannot carry");
  }
}

/// Parser-side twin of require_token_safe: a declared name containing '='
/// would round-trip ambiguously, so reject it with the line number.
void check_name(const std::string& name, int line) {
  RS_REQUIRE(name.find('=') == std::string::npos,
             where(line, "name '" + name + "' must not contain '='"));
}

std::vector<std::string> parse_uses(const std::vector<std::string>& tokens,
                                    int line) {
  std::vector<std::string> uses;
  const auto list = support::token_field(tokens, "uses");
  if (!list.has_value()) return uses;
  std::string item;
  std::istringstream is(*list);
  while (std::getline(is, item, ',')) {
    RS_REQUIRE(!item.empty(), where(line, "empty name in uses="));
    check_name(item, line);
    uses.push_back(item);
  }
  return uses;
}

}  // namespace

std::string to_text(const Cfg& cfg) {
  std::ostringstream os;
  require_token_safe(cfg.name(), "program name");
  os << "prog " << cfg.name() << '\n';
  for (int b = 0; b < cfg.block_count(); ++b) {
    const Block& blk = cfg.block(b);
    require_token_safe(blk.name, "block name");
    os << "block " << blk.name << '\n';
    for (const Statement& st : blk.statements) {
      if (st.result.empty()) {
        os << "use class=" << ddg::op_class_name(st.cls);
      } else {
        require_token_safe(st.result, "value name");
        os << "def " << st.result << " class=" << ddg::op_class_name(st.cls)
           << " type=" << st.type;
      }
      if (!st.operands.empty()) {
        os << " uses=";
        for (std::size_t i = 0; i < st.operands.size(); ++i) {
          require_token_safe(st.operands[i], "value name");
          os << (i ? "," : "") << st.operands[i];
        }
      }
      os << '\n';
    }
  }
  for (int b = 0; b < cfg.block_count(); ++b) {
    for (const int s : cfg.block(b).successors) {
      os << "edge " << cfg.block(b).name << ' ' << cfg.block(s).name << '\n';
    }
  }
  return os.str();
}

Cfg from_text(const std::string& text, const ddg::MachineModel& model) {
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  std::optional<Program> prog;
  std::map<std::string, int> block_ids;
  int current = -1;
  // Edges are resolved after the whole file is read so a block may be
  // referenced before its `block` line.
  struct PendingEdge {
    std::string from, to;
    int line = 0;
  };
  std::vector<PendingEdge> edges;

  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const std::vector<std::string> tokens = support::split_ws(line);
    if (tokens.empty()) continue;
    const std::string& kind = tokens[0];

    if (kind == "prog") {
      RS_REQUIRE(!prog.has_value(), where(lineno, "duplicate prog header"));
      RS_REQUIRE(tokens.size() == 2, where(lineno, "expected 'prog <name>'"));
      prog.emplace(model, tokens[1]);
      continue;
    }
    RS_REQUIRE(prog.has_value(), where(lineno, "'prog' header missing"));

    if (kind == "block") {
      RS_REQUIRE(tokens.size() == 2, where(lineno, "expected 'block <name>'"));
      check_name(tokens[1], lineno);
      RS_REQUIRE(!block_ids.count(tokens[1]),
                 where(lineno, "duplicate block " + tokens[1]));
      current = prog->add_block(tokens[1]);
      block_ids[tokens[1]] = current;
    } else if (kind == "def") {
      RS_REQUIRE(current >= 0, where(lineno, "def before any block"));
      RS_REQUIRE(tokens.size() >= 2, where(lineno, "def needs a value name"));
      check_name(tokens[1], lineno);
      const ddg::RegType t = support::parse_int(field(tokens, "type", lineno),
                                                where(lineno, "type"));
      RS_REQUIRE(t >= 0 && t < ddg::kRegTypeCount,
                 where(lineno, "type= out of range"));
      prog->def(current, tokens[1],
                class_from_name(field(tokens, "class", lineno), lineno), t,
                parse_uses(tokens, lineno));
    } else if (kind == "use") {
      RS_REQUIRE(current >= 0, where(lineno, "use before any block"));
      prog->use(current, class_from_name(field(tokens, "class", lineno), lineno),
                parse_uses(tokens, lineno));
    } else if (kind == "edge") {
      RS_REQUIRE(tokens.size() == 3,
                 where(lineno, "expected 'edge <from> <to>'"));
      edges.push_back(PendingEdge{tokens[1], tokens[2], lineno});
    } else {
      RS_REQUIRE(false, where(lineno, "unknown directive " + kind));
    }
  }
  RS_REQUIRE(prog.has_value(), "empty program text");
  for (const PendingEdge& e : edges) {
    const auto from = block_ids.find(e.from);
    const auto to = block_ids.find(e.to);
    RS_REQUIRE(from != block_ids.end(),
               where(e.line, "edge references unknown block " + e.from));
    RS_REQUIRE(to != block_ids.end(),
               where(e.line, "edge references unknown block " + e.to));
    prog->add_edge(from->second, to->second);
  }
  return prog->build();
}

}  // namespace rs::cfg
