// Plain-text program (acyclic CFG) serialization — the `.prog` companion
// of the `.ddg` format (ddg/io.hpp), so whole-program workloads can be
// saved, diffed and fed to the service without recompiling. Format (one
// item per line):
//
//   prog <name>
//   block <name>
//   def <val> class=<cls> type=<t> [uses=<v>[,<v>...]]
//   use class=<cls> [uses=<v>[,<v>...]]
//   edge <from-block> <to-block>
//
// `prog` opens the file (exactly once); each `block` starts a new basic
// block; `def`/`use` append statements to the most recent block (`def`
// writes a value of register type <t>, `use` is a pure consumer — store/
// branch style); `edge` adds a CFG arc by block name and may appear
// anywhere (names are resolved at end of parse, so forward references are
// fine). Operand lists are comma-separated value names; class tokens are
// the .ddg op classes (ialu|load|store|fadd|fmul|fdiv|flong|br|nop).
// '#' starts a comment; blank lines are ignored.
//
// A `.prog` file carries no latencies: statement timing comes from the
// machine model supplied at parse time (like kernel= payloads), which is
// why from_text takes one. Names must be single whitespace-free tokens.
#pragma once

#include <string>

#include "cfg/cfg.hpp"

namespace rs::cfg {

/// Serializes an analyzed CFG to the text format above (blocks first,
/// then every edge). Round-trips: from_text(to_text(cfg), model) builds
/// an equivalent program.
std::string to_text(const Cfg& cfg);

/// Parses the text format and builds the program (liveness, acyclicity
/// and name checks included). Throws rs::support::PreconditionError with
/// a line-numbered message on malformed input; Program::build() failures
/// (cyclic CFG, conflicting types) propagate with their own messages.
Cfg from_text(const std::string& text, const ddg::MachineModel& model);

}  // namespace rs::cfg
