#include "cfg/cfg.hpp"

#include <algorithm>
#include <set>

#include "graph/digraph.hpp"
#include "graph/topo.hpp"
#include "support/assert.hpp"

namespace rs::cfg {

namespace {

/// Backward liveness over an acyclic CFG: one reverse-topological pass
/// reaches the fixpoint (no loops by construction).
void compute_liveness(std::vector<Block>& blocks) {
  const int n = static_cast<int>(blocks.size());
  graph::Digraph g(n);
  for (int b = 0; b < n; ++b) {
    for (const int s : blocks[b].successors) g.add_edge(b, s, 0);
  }
  const auto order = graph::topo_order(g);
  RS_REQUIRE(order.has_value(), "control-flow graph must be acyclic");

  // Per block: upward-exposed uses and definitions.
  std::vector<std::set<std::string>> uses(n), defs(n);
  for (int b = 0; b < n; ++b) {
    std::set<std::string> defined;
    for (const Statement& st : blocks[b].statements) {
      for (const std::string& op : st.operands) {
        if (!defined.count(op)) uses[b].insert(op);
      }
      if (!st.result.empty()) defined.insert(st.result);
    }
    defs[b] = std::move(defined);
  }

  std::vector<std::set<std::string>> live_out(n), live_in(n);
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const int b = *it;
    for (const int s : blocks[b].successors) {
      live_out[b].insert(live_in[s].begin(), live_in[s].end());
    }
    live_in[b] = uses[b];
    for (const std::string& v : live_out[b]) {
      if (!defs[b].count(v)) live_in[b].insert(v);
    }
  }
  for (int b = 0; b < n; ++b) {
    blocks[b].live_in.assign(live_in[b].begin(), live_in[b].end());
    blocks[b].live_out.assign(live_out[b].begin(), live_out[b].end());
  }
}

}  // namespace

int Program::add_block(std::string name) {
  Block b;
  b.name = std::move(name);
  blocks_.push_back(std::move(b));
  return static_cast<int>(blocks_.size()) - 1;
}

void Program::add_edge(int from, int to) {
  RS_REQUIRE(from >= 0 && from < static_cast<int>(blocks_.size()) &&
                 to >= 0 && to < static_cast<int>(blocks_.size()),
             "CFG edge endpoint out of range");
  blocks_[from].successors.push_back(to);
}

void Program::def(int block, std::string result, ddg::OpClass cls,
                  ddg::RegType type, std::vector<std::string> operands) {
  RS_REQUIRE(block >= 0 && block < static_cast<int>(blocks_.size()),
             "unknown block");
  RS_REQUIRE(!result.empty(), "definition needs a result name");
  blocks_[block].statements.push_back(
      Statement{std::move(result), cls, type, std::move(operands)});
}

void Program::use(int block, ddg::OpClass cls,
                  std::vector<std::string> operands) {
  RS_REQUIRE(block >= 0 && block < static_cast<int>(blocks_.size()),
             "unknown block");
  blocks_[block].statements.push_back(Statement{"", cls, 0, std::move(operands)});
}

namespace {

/// The register type a statement reads its operands as: float-class
/// consumers read float, everything else (loads, stores, integer ALU,
/// branches) reads int. Only used to type program inputs — defined values
/// carry their definition's type.
ddg::RegType consumption_type(ddg::OpClass cls) {
  switch (cls) {
    case ddg::OpClass::FpAdd:
    case ddg::OpClass::FpMul:
    case ddg::OpClass::FpDiv:
    case ddg::OpClass::FpLong:
      return ddg::kFloatReg;
    default:
      return ddg::kIntReg;
  }
}

}  // namespace

Cfg Program::build() const {
  Cfg cfg(machine_, name_);
  cfg.blocks_ = blocks_;

  // Value type registry. SSA-ish: a name may be defined at most once per
  // block; definitions in several blocks (diamond merges) are allowed as
  // long as every definition agrees on the type, which keeps entry-value
  // typing unambiguous.
  std::set<std::string> block_names;
  for (const Block& b : cfg.blocks_) {
    RS_REQUIRE(!b.name.empty(), "block name must not be empty");
    RS_REQUIRE(block_names.insert(b.name).second,
               "duplicate block name: " + b.name);
    std::set<std::string> defined;
    for (const Statement& st : b.statements) {
      if (st.result.empty()) continue;
      RS_REQUIRE(defined.insert(st.result).second,
                 "value defined twice in block " + b.name + ": " + st.result);
      const auto [it, fresh] = cfg.value_types_.emplace(st.result, st.type);
      RS_REQUIRE(fresh || it->second == st.type,
                 "value defined with conflicting types: " + st.result);
    }
  }
  compute_liveness(cfg.blocks_);
  // Program inputs (live-in at some block, defined nowhere) take the type
  // they are first consumed as, in program order (block order, statement
  // order): float-class consumers type them float, everything else int.
  // An input read with inconsistent classes across blocks keeps the
  // program-order first consumer's type.
  for (const Block& b : cfg.blocks_) {
    for (const Statement& st : b.statements) {
      for (const std::string& v : st.operands) {
        if (!cfg.value_types_.count(v)) {
          cfg.value_types_[v] = consumption_type(st.cls);
        }
      }
    }
  }
  return cfg;
}

ddg::RegType Cfg::type_of(const std::string& value) const {
  const auto it = value_types_.find(value);
  RS_REQUIRE(it != value_types_.end(), "unknown value: " + value);
  return it->second;
}

ddg::Ddg Cfg::expand_block(int b) const {
  RS_REQUIRE(b >= 0 && b < block_count(), "block index out of range");
  const Block& blk = blocks_[b];
  ddg::KernelBuilder kb(machine_, blk.name);
  std::map<std::string, ddg::NodeId> def_node;

  // Entry values: latency-0 definitions (the paper's inserted entry
  // values), one per live-in name.
  for (const std::string& v : blk.live_in) {
    def_node[v] = kb.live_in(type_of(v), "in." + v);
  }
  // Body statements in program order.
  int sink_id = 0;
  for (const Statement& st : blk.statements) {
    std::vector<ddg::NodeId> ops;
    for (const std::string& name : st.operands) {
      const auto it = def_node.find(name);
      RS_REQUIRE(it != def_node.end(),
                 "operand not available in block: " + name);
      ops.push_back(it->second);
    }
    if (st.result.empty()) {
      const ddg::NodeId v =
          kb.sink_n(st.cls, "sink." + std::to_string(sink_id++), ops);
      (void)v;
    } else {
      def_node[st.result] = kb.op_n(st.cls, st.type, st.result, ops);
    }
  }
  // Exit values: an explicit end-of-block consumer per live-out name (the
  // paper's inserted exit values), keeping them alive through the block.
  for (const std::string& v : blk.live_out) {
    const auto it = def_node.find(v);
    RS_REQUIRE(it != def_node.end(), "live-out value not defined: " + v);
    kb.sink_n(ddg::OpClass::Nop, "out." + v, {it->second});
  }
  return kb.build();
}

}  // namespace rs::cfg
