// Branch-and-bound MIP solver over the simplex LP relaxation.
//
// Plays the role CPLEX played for the paper's authors: an exact solver for
// the section-3 and section-4 intLP formulations. Depth-first with
// round-toward-LP child ordering, most-fractional branching, and integral
// objective rounding for tighter pruning (every objective in this library is
// a sum of binaries or an integer schedule time).
#pragma once

#include <vector>

#include "lp/model.hpp"
#include "support/solve_context.hpp"

namespace rs::lp {

enum class MipStatus {
  Optimal,         // incumbent proven optimal
  Feasible,        // incumbent found, search truncated by limits
  Infeasible,      // proven infeasible
  Unknown,         // limits hit before any conclusion
};

struct MipOptions {
  long node_limit = 500000;  // <= 0 means unlimited
  /// When true, LP bounds round to the nearest integer before pruning.
  bool objective_integral = true;
  int lp_iteration_limit = 200000;
};

struct MipResult {
  MipStatus status = MipStatus::Unknown;
  double objective = 0.0;      // incumbent objective (valid unless Unknown/Infeasible)
  std::vector<double> x;       // incumbent point
  double best_bound = 0.0;     // proven dual bound
  long nodes = 0;
  support::SolveStats stats;   // nodes/prunes/simplex iterations, stop cause
  bool has_solution() const {
    return status == MipStatus::Optimal || status == MipStatus::Feasible;
  }
};

/// Solves the model exactly (subject to limits and the context's deadline /
/// cancel token; the token is polled every node, the clock coarsely). All
/// integer variables must have finite bounds.
MipResult solve_mip(const Model& model, const MipOptions& options = {},
                    const support::SolveContext& solve = {});

}  // namespace rs::lp
