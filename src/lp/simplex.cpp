#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace rs::lp {

namespace {

constexpr double kEpsCost = 1e-7;     // reduced-cost optimality tolerance
constexpr double kEpsPivot = 1e-9;    // minimum acceptable pivot magnitude
constexpr double kEpsRatio = 1e-9;    // ratio-test tie window
constexpr double kEpsFeas = 1e-7;     // primal feasibility tolerance
constexpr double kInfStep = 1e100;    // "effectively infinite" step
constexpr int kBlandTrigger = 60;     // degenerate pivots before Bland's rule
constexpr int kRefactorPeriod = 256;  // pivots between refactorizations

enum class ColStatus : unsigned char { Basic, AtLower, AtUpper, FreeAtZero };

struct Entry {
  int row;
  double coef;
};

enum class IterOutcome { Optimal, Unbounded, IterLimit };

/// One solve's mutable state. Columns: structural | slacks | artificials.
struct Tableau {
  int m = 0;
  std::vector<std::vector<Entry>> cols;
  std::vector<double> lo, hi;
  std::vector<double> rhs;

  std::vector<ColStatus> status;   // per column
  std::vector<int> basis;          // row -> column
  std::vector<double> binv;        // m*m dense row-major
  std::vector<double> xb;          // basic values, per row
  std::vector<double> phase_cost;  // active cost vector

  double nb_value(int j) const {
    switch (status[j]) {
      case ColStatus::AtLower: return lo[j];
      case ColStatus::AtUpper: return hi[j];
      case ColStatus::FreeAtZero: return 0.0;
      case ColStatus::Basic: break;
    }
    RS_CHECK(false);
    return 0.0;
  }

  /// xb = Binv * (rhs - sum over nonbasic columns of A_j * value_j).
  void recompute_xb() {
    std::vector<double> r = rhs;
    for (int j = 0; j < static_cast<int>(cols.size()); ++j) {
      if (status[j] == ColStatus::Basic) continue;
      const double v = nb_value(j);
      if (v == 0.0) continue;
      for (const Entry& e : cols[j]) r[e.row] -= e.coef * v;
    }
    for (int i = 0; i < m; ++i) {
      double acc = 0.0;
      const double* row = &binv[static_cast<std::size_t>(i) * m];
      for (int k = 0; k < m; ++k) acc += row[k] * r[k];
      xb[i] = acc;
    }
  }

  /// Rebuilds Binv from the basis by Gauss-Jordan with partial pivoting.
  /// Returns false if the basis matrix is numerically singular.
  bool refactorize() {
    std::vector<double> a(static_cast<std::size_t>(m) * m, 0.0);
    std::vector<double> inv(static_cast<std::size_t>(m) * m, 0.0);
    for (int i = 0; i < m; ++i) inv[static_cast<std::size_t>(i) * m + i] = 1.0;
    for (int col = 0; col < m; ++col) {
      for (const Entry& e : cols[basis[col]]) {
        a[static_cast<std::size_t>(e.row) * m + col] = e.coef;
      }
    }
    for (int piv = 0; piv < m; ++piv) {
      int best = -1;
      double best_mag = kEpsPivot;
      for (int i = piv; i < m; ++i) {
        const double mag = std::abs(a[static_cast<std::size_t>(i) * m + piv]);
        if (mag > best_mag) {
          best_mag = mag;
          best = i;
        }
      }
      if (best < 0) return false;
      if (best != piv) {
        for (int k = 0; k < m; ++k) {
          std::swap(a[static_cast<std::size_t>(best) * m + k],
                    a[static_cast<std::size_t>(piv) * m + k]);
          std::swap(inv[static_cast<std::size_t>(best) * m + k],
                    inv[static_cast<std::size_t>(piv) * m + k]);
        }
        // Row swap in the elimination corresponds to swapping equations;
        // Binv's rows must track basis order, handled by using `inv` rows
        // aligned with `a` rows throughout.
      }
      const double d = a[static_cast<std::size_t>(piv) * m + piv];
      for (int k = 0; k < m; ++k) {
        a[static_cast<std::size_t>(piv) * m + k] /= d;
        inv[static_cast<std::size_t>(piv) * m + k] /= d;
      }
      for (int i = 0; i < m; ++i) {
        if (i == piv) continue;
        const double f = a[static_cast<std::size_t>(i) * m + piv];
        if (f == 0.0) continue;
        for (int k = 0; k < m; ++k) {
          a[static_cast<std::size_t>(i) * m + k] -=
              f * a[static_cast<std::size_t>(piv) * m + k];
          inv[static_cast<std::size_t>(i) * m + k] -=
              f * inv[static_cast<std::size_t>(piv) * m + k];
        }
      }
    }
    binv = std::move(inv);
    recompute_xb();
    return true;
  }
};

/// Primal simplex loop under `phase_cost` (minimization).
IterOutcome iterate(Tableau& t, int& iter_budget,
                    const std::function<bool()>& stop) {
  const int ncols = static_cast<int>(t.cols.size());
  std::vector<double> y(t.m), w(t.m);
  int degenerate_run = 0;
  int since_refactor = 0;

  while (iter_budget > 0) {
    // Every pivot is O(m^2) dense work, so a 64-pivot poll cadence makes
    // the check (atomic load + clock) invisible while keeping cancellation
    // latency far below one branch-and-bound node.
    if ((iter_budget & 63) == 0 && stop && stop()) return IterOutcome::IterLimit;
    --iter_budget;
    // y = c_B Binv (skip zero basic costs).
    std::fill(y.begin(), y.end(), 0.0);
    for (int k = 0; k < t.m; ++k) {
      const double cb = t.phase_cost[t.basis[k]];
      if (cb == 0.0) continue;
      const double* row = &t.binv[static_cast<std::size_t>(k) * t.m];
      for (int i = 0; i < t.m; ++i) y[i] += cb * row[i];
    }

    // Pricing: Dantzig normally, Bland when cycling is suspected.
    const bool bland = degenerate_run >= kBlandTrigger;
    int q = -1;
    double best_merit = kEpsCost;
    bool q_increase = true;
    for (int j = 0; j < ncols; ++j) {
      if (t.status[j] == ColStatus::Basic) continue;
      if (t.lo[j] == t.hi[j]) continue;  // fixed column can never improve
      double dj = t.phase_cost[j];
      for (const Entry& e : t.cols[j]) dj -= y[e.row] * e.coef;
      bool inc = false, dec = false;
      switch (t.status[j]) {
        case ColStatus::AtLower: inc = dj < -kEpsCost; break;
        case ColStatus::AtUpper: dec = dj > kEpsCost; break;
        case ColStatus::FreeAtZero:
          inc = dj < -kEpsCost;
          dec = dj > kEpsCost;
          break;
        case ColStatus::Basic: break;
      }
      if (!inc && !dec) continue;
      if (bland) {
        q = j;
        q_increase = inc;
        break;
      }
      const double merit = std::abs(dj);
      if (merit > best_merit) {
        best_merit = merit;
        q = j;
        q_increase = inc;
      }
    }
    if (q < 0) return IterOutcome::Optimal;

    // w = Binv * A_q.
    std::fill(w.begin(), w.end(), 0.0);
    for (const Entry& e : t.cols[q]) {
      const double c = e.coef;
      const int r = e.row;
      for (int i = 0; i < t.m; ++i) {
        w[i] += t.binv[static_cast<std::size_t>(i) * t.m + r] * c;
      }
    }

    const double dir = q_increase ? 1.0 : -1.0;
    double step = kInfStep;
    int leave_row = -1;
    bool leave_at_lower = true;
    if (t.lo[q] > -kInfStep && t.hi[q] < kInfStep) {
      step = t.hi[q] - t.lo[q];  // bound-flip candidate
    }
    double best_pivot_mag = 0.0;
    for (int i = 0; i < t.m; ++i) {
      const double coef = w[i] * dir;  // xb_i changes by -coef * step
      const int bj = t.basis[i];
      double limit = kInfStep;
      bool hits_lower = true;
      if (coef > kEpsPivot) {
        if (t.lo[bj] <= -kInfStep) continue;
        limit = (t.xb[i] - t.lo[bj]) / coef;
        hits_lower = true;
      } else if (coef < -kEpsPivot) {
        if (t.hi[bj] >= kInfStep) continue;
        limit = (t.hi[bj] - t.xb[i]) / (-coef);
        hits_lower = false;
      } else {
        continue;
      }
      limit = std::max(limit, 0.0);
      const bool strictly_better = limit < step - kEpsRatio;
      const bool tie_better = limit < step + kEpsRatio &&
                              std::abs(w[i]) > best_pivot_mag;
      if (strictly_better || (tie_better && leave_row >= 0) ||
          (limit < step && leave_row < 0)) {
        step = limit;
        leave_row = i;
        leave_at_lower = hits_lower;
        best_pivot_mag = std::abs(w[i]);
      }
    }
    if (step >= kInfStep) return IterOutcome::Unbounded;
    degenerate_run = (step <= kEpsRatio) ? degenerate_run + 1 : 0;

    if (leave_row < 0) {
      // Bound flip: the entering variable crosses to its opposite bound.
      for (int i = 0; i < t.m; ++i) t.xb[i] -= w[i] * dir * step;
      t.status[q] = q_increase ? ColStatus::AtUpper : ColStatus::AtLower;
      continue;
    }

    // Basis change: q enters at leave_row.
    const double entering_value = t.nb_value(q) + dir * step;
    const int leaving_col = t.basis[leave_row];
    for (int i = 0; i < t.m; ++i) {
      if (i != leave_row) t.xb[i] -= w[i] * dir * step;
    }
    const double piv = w[leave_row];
    RS_CHECK(std::abs(piv) > kEpsPivot);
    double* prow = &t.binv[static_cast<std::size_t>(leave_row) * t.m];
    for (int k = 0; k < t.m; ++k) prow[k] /= piv;
    for (int i = 0; i < t.m; ++i) {
      if (i == leave_row || w[i] == 0.0) continue;
      const double f = w[i];
      double* row = &t.binv[static_cast<std::size_t>(i) * t.m];
      for (int k = 0; k < t.m; ++k) row[k] -= f * prow[k];
    }
    t.basis[leave_row] = q;
    t.status[q] = ColStatus::Basic;
    t.xb[leave_row] = entering_value;
    t.status[leaving_col] =
        leave_at_lower ? ColStatus::AtLower : ColStatus::AtUpper;

    if (++since_refactor >= kRefactorPeriod) {
      since_refactor = 0;
      RS_CHECK(t.refactorize());
    }
  }
  return IterOutcome::IterLimit;
}

}  // namespace

SimplexSolver::SimplexSolver(const Model& model)
    : n_(model.var_count()),
      m_(model.constraint_count()),
      maximize_(model.maximize()) {
  cols_.resize(n_);
  for (int r = 0; r < m_; ++r) {
    const ConstraintInfo& c = model.constraints()[r];
    for (std::size_t i = 0; i < c.expr.vars().size(); ++i) {
      cols_[c.expr.vars()[i]].push_back(ColEntry{r, c.expr.coefs()[i]});
    }
    rhs_.push_back(c.rhs);
    switch (c.sense) {
      case Sense::LE:
        slack_lo_.push_back(0.0);
        slack_hi_.push_back(kInf);
        break;
      case Sense::GE:
        slack_lo_.push_back(-kInf);
        slack_hi_.push_back(0.0);
        break;
      case Sense::EQ:
        slack_lo_.push_back(0.0);
        slack_hi_.push_back(0.0);
        break;
    }
  }
  cost_.assign(n_, 0.0);
  const LinExpr& obj = model.objective();
  const double sign = maximize_ ? -1.0 : 1.0;  // internal sense: minimize
  for (std::size_t i = 0; i < obj.vars().size(); ++i) {
    cost_[obj.vars()[i]] += sign * obj.coefs()[i];
  }
  cost_const_ = sign * obj.constant();
  lo_default_.resize(n_);
  hi_default_.resize(n_);
  for (int j = 0; j < n_; ++j) {
    lo_default_[j] = model.var(j).lo;
    hi_default_[j] = model.var(j).hi;
  }
}

LpResult SimplexSolver::solve(int max_iterations,
                              const std::function<bool()>& stop) const {
  return solve_with_bounds(lo_default_, hi_default_, max_iterations, stop);
}

LpResult SimplexSolver::solve_with_bounds(const std::vector<double>& lo,
                                          const std::vector<double>& hi,
                                          int max_iterations,
                                          const std::function<bool()>& stop)
    const {
  RS_REQUIRE(static_cast<int>(lo.size()) == n_ &&
                 static_cast<int>(hi.size()) == n_,
             "bound override size mismatch");
  Tableau t;
  t.m = m_;
  t.rhs = rhs_;
  const int base_cols = n_ + m_;
  t.cols.resize(base_cols);
  t.lo.resize(base_cols);
  t.hi.resize(base_cols);
  for (int j = 0; j < n_; ++j) {
    for (const ColEntry& e : cols_[j]) t.cols[j].push_back(Entry{e.row, e.coef});
    t.lo[j] = lo[j];
    t.hi[j] = hi[j];
    if (t.lo[j] > t.hi[j]) {  // empty domain: trivially infeasible node
      LpResult res;
      res.status = LpStatus::Infeasible;
      return res;
    }
  }
  for (int r = 0; r < m_; ++r) {
    const int j = n_ + r;
    t.cols[j].push_back(Entry{r, 1.0});
    t.lo[j] = slack_lo_[r];
    t.hi[j] = slack_hi_[r];
  }

  // Initial point: structural nonbasic at a finite bound, slacks basic.
  t.status.assign(base_cols, ColStatus::AtLower);
  for (int j = 0; j < n_; ++j) {
    if (t.lo[j] > -kInfStep) {
      t.status[j] = ColStatus::AtLower;
    } else if (t.hi[j] < kInfStep) {
      t.status[j] = ColStatus::AtUpper;
    } else {
      t.status[j] = ColStatus::FreeAtZero;
    }
  }
  t.basis.resize(m_);
  t.binv.assign(static_cast<std::size_t>(m_) * m_, 0.0);
  t.xb.assign(m_, 0.0);
  for (int r = 0; r < m_; ++r) {
    t.basis[r] = n_ + r;
    t.status[n_ + r] = ColStatus::Basic;
    t.binv[static_cast<std::size_t>(r) * m_ + r] = 1.0;
  }
  t.recompute_xb();

  // Phase 1: cover infeasible basic slacks with artificials.
  bool need_phase1 = false;
  for (int r = 0; r < m_; ++r) {
    const int sj = n_ + r;
    const double v = t.xb[r];
    if (v >= t.lo[sj] - kEpsFeas && v <= t.hi[sj] + kEpsFeas) continue;
    need_phase1 = true;
    // Park the slack at the violated bound; a fresh artificial column takes
    // its basic slot carrying the (nonnegative) residual.
    const bool below = v < t.lo[sj];
    const double target = below ? t.lo[sj] : t.hi[sj];
    const double resid = v - target;
    const int aj = static_cast<int>(t.cols.size());
    t.cols.push_back({Entry{r, resid >= 0 ? 1.0 : -1.0}});
    t.lo.push_back(0.0);
    t.hi.push_back(kInf);
    t.status.push_back(ColStatus::Basic);
    t.status[sj] = below ? ColStatus::AtLower : ColStatus::AtUpper;
    t.basis[r] = aj;
  }
  int phase1_used = 0;
  if (need_phase1) {
    // Basis changed structurally; rebuild the inverse and values.
    if (!t.refactorize()) {
      LpResult res;
      res.status = LpStatus::IterLimit;
      return res;
    }
    t.phase_cost.assign(t.cols.size(), 0.0);
    for (int j = base_cols; j < static_cast<int>(t.cols.size()); ++j) {
      t.phase_cost[j] = 1.0;
    }
    int budget = max_iterations;
    const IterOutcome outcome = iterate(t, budget, stop);
    phase1_used = max_iterations - budget;
    if (outcome == IterOutcome::IterLimit) {
      LpResult res;
      res.status = LpStatus::IterLimit;
      res.phase1_iterations = phase1_used;
      return res;
    }
    RS_CHECK(outcome != IterOutcome::Unbounded);  // phase-1 cost bounded below
    double infeas = 0.0;
    for (int r = 0; r < m_; ++r) {
      if (t.basis[r] >= base_cols) infeas += std::abs(t.xb[r]);
    }
    if (infeas > 1e-6) {
      LpResult res;
      res.status = LpStatus::Infeasible;
      res.phase1_iterations = phase1_used;
      return res;
    }
    // Freeze artificials at zero for phase 2.
    for (int j = base_cols; j < static_cast<int>(t.cols.size()); ++j) {
      t.hi[j] = 0.0;
    }
  }

  // Phase 2.
  t.phase_cost.assign(t.cols.size(), 0.0);
  for (int j = 0; j < n_; ++j) t.phase_cost[j] = cost_[j];
  int budget = max_iterations;
  const IterOutcome outcome = iterate(t, budget, stop);
  LpResult res;
  res.iterations = max_iterations - budget;
  res.phase1_iterations = phase1_used;
  switch (outcome) {
    case IterOutcome::Unbounded:
      res.status = LpStatus::Unbounded;
      return res;
    case IterOutcome::IterLimit:
      res.status = LpStatus::IterLimit;
      return res;
    case IterOutcome::Optimal:
      break;
  }
  res.status = LpStatus::Optimal;
  res.x.assign(n_, 0.0);
  for (int j = 0; j < n_; ++j) {
    if (t.status[j] != ColStatus::Basic) res.x[j] = t.nb_value(j);
  }
  for (int r = 0; r < m_; ++r) {
    if (t.basis[r] < n_) res.x[t.basis[r]] = t.xb[r];
  }
  double obj = cost_const_;
  for (int j = 0; j < n_; ++j) obj += cost_[j] * res.x[j];
  res.objective = maximize_ ? -obj : obj;
  return res;
}

}  // namespace rs::lp
