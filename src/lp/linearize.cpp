#include "lp/linearize.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace rs::lp {

void add_iff_ge(Model& m, Var z, const LinExpr& expr, double c,
                const std::string& name_prefix) {
  const auto [lo, hi] = m.expr_bounds(expr);
  RS_REQUIRE(std::isfinite(lo) && std::isfinite(hi),
             "add_iff_ge needs finite expression bounds");
  if (c <= lo) {  // always true
    m.add_constraint(LinExpr(z), Sense::EQ, 1.0, name_prefix + ".fix1");
    return;
  }
  if (c > hi) {  // never true
    m.add_constraint(LinExpr(z), Sense::EQ, 0.0, name_prefix + ".fix0");
    return;
  }
  // z = 1 ==> expr >= c       :  expr - (c - lo) z >= lo
  LinExpr ge = expr;
  ge.add(z, -(c - lo));
  m.add_constraint(ge, Sense::GE, lo, name_prefix + ".onlyif");
  // z = 0 ==> expr <= c - 1   :  expr - (hi - c + 1) z <= c - 1
  LinExpr le = expr;
  le.add(z, -(hi - (c - 1.0)));
  m.add_constraint(le, Sense::LE, c - 1.0, name_prefix + ".if");
}

void add_and(Model& m, Var z, Var a, Var b, const std::string& name_prefix) {
  m.add_constraint(LinExpr(z) - LinExpr(a), Sense::LE, 0.0, name_prefix + ".le_a");
  m.add_constraint(LinExpr(z) - LinExpr(b), Sense::LE, 0.0, name_prefix + ".le_b");
  LinExpr ge = LinExpr(z);
  ge.add(a, -1.0);
  ge.add(b, -1.0);
  m.add_constraint(ge, Sense::GE, -1.0, name_prefix + ".ge_ab");
}

void add_or(Model& m, Var z, Var a, Var b, const std::string& name_prefix) {
  m.add_constraint(LinExpr(z) - LinExpr(a), Sense::GE, 0.0, name_prefix + ".ge_a");
  m.add_constraint(LinExpr(z) - LinExpr(b), Sense::GE, 0.0, name_prefix + ".ge_b");
  LinExpr le = LinExpr(z);
  le.add(a, -1.0);
  le.add(b, -1.0);
  m.add_constraint(le, Sense::LE, 0.0, name_prefix + ".le_ab");
}

void add_unless(Model& m, Var guard, const LinExpr& expr, double rhs,
                const std::string& name_prefix) {
  const auto [lo, hi] = m.expr_bounds(expr);
  RS_REQUIRE(std::isfinite(hi) && std::isfinite(lo),
             "add_unless needs finite expression bounds");
  // guard = 0 ==> expr <= rhs :  expr - (hi - rhs) * guard <= rhs
  LinExpr e = expr;
  e.add(guard, -(hi - rhs));
  m.add_constraint(e, Sense::LE, rhs, name_prefix + ".unless");
}

Var add_max(Model& m, const std::vector<LinExpr>& exprs,
            const std::string& name_prefix) {
  RS_REQUIRE(!exprs.empty(), "max over empty set");
  double klo = -kInf, khi = -kInf;
  std::vector<std::pair<double, double>> bounds;
  bounds.reserve(exprs.size());
  for (const LinExpr& e : exprs) {
    const auto [lo, hi] = m.expr_bounds(e);
    RS_REQUIRE(std::isfinite(lo) && std::isfinite(hi),
               "add_max needs finite expression bounds");
    bounds.emplace_back(lo, hi);
    klo = std::max(klo, lo);
    khi = std::max(khi, hi);
  }
  const Var k = m.add_int(klo, khi, name_prefix + ".max");
  // k >= expr_i always; k <= expr_i when the selector y_i is on; some
  // selector must be on, so k equals the (a) maximal expression.
  LinExpr sum_y;
  for (std::size_t i = 0; i < exprs.size(); ++i) {
    LinExpr ge = LinExpr(k) - exprs[i];
    m.add_constraint(ge, Sense::GE, 0.0,
                     name_prefix + ".ge" + std::to_string(i));
    const Var y = m.add_binary(name_prefix + ".y" + std::to_string(i));
    sum_y.add(y, 1.0);
    // k <= expr_i + (khi - lo_i)(1 - y_i)
    LinExpr le = LinExpr(k) - exprs[i];
    le.add(y, khi - bounds[i].first);
    m.add_constraint(le, Sense::LE, khi - bounds[i].first,
                     name_prefix + ".le" + std::to_string(i));
  }
  m.add_constraint(sum_y, Sense::EQ, 1.0, name_prefix + ".pick");
  return k;
}

}  // namespace rs::lp
