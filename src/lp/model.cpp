#include "lp/model.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "support/assert.hpp"

namespace rs::lp {

LinExpr& LinExpr::add(Var v, double coef) {
  RS_REQUIRE(v.valid(), "expression uses an invalid variable");
  vars_.push_back(v.id);
  coefs_.push_back(coef);
  return *this;
}

LinExpr& LinExpr::operator+=(const LinExpr& other) {
  vars_.insert(vars_.end(), other.vars_.begin(), other.vars_.end());
  coefs_.insert(coefs_.end(), other.coefs_.begin(), other.coefs_.end());
  constant_ += other.constant_;
  return *this;
}

LinExpr operator-(LinExpr a, const LinExpr& b) {
  for (std::size_t i = 0; i < b.vars_.size(); ++i) {
    a.vars_.push_back(b.vars_[i]);
    a.coefs_.push_back(-b.coefs_[i]);
  }
  a.constant_ -= b.constant_;
  return a;
}

LinExpr operator*(double s, LinExpr e) {
  for (double& c : e.coefs_) c *= s;
  e.constant_ *= s;
  return e;
}

LinExpr LinExpr::normalized() const {
  std::map<int, double> acc;
  for (std::size_t i = 0; i < vars_.size(); ++i) acc[vars_[i]] += coefs_[i];
  LinExpr out;
  out.constant_ = constant_;
  for (const auto& [v, c] : acc) {
    if (c != 0.0) {
      out.vars_.push_back(v);
      out.coefs_.push_back(c);
    }
  }
  return out;
}

Var Model::add_var(VarKind kind, double lo, double hi, std::string name) {
  RS_REQUIRE(lo <= hi, "variable with empty domain: " + name);
  vars_.push_back(VarInfo{std::move(name), kind, lo, hi});
  return Var{static_cast<int>(vars_.size()) - 1};
}

void Model::add_constraint(const LinExpr& expr, Sense sense, double rhs,
                           std::string name) {
  ConstraintInfo c;
  c.expr = expr.normalized();
  c.rhs = rhs - c.expr.constant();
  c.expr.add_constant(-c.expr.constant());
  c.sense = sense;
  c.name = std::move(name);
  for (const int v : c.expr.vars()) {
    RS_REQUIRE(v >= 0 && v < var_count(), "constraint uses unknown variable");
  }
  constraints_.push_back(std::move(c));
}

void Model::set_objective(const LinExpr& expr, bool maximize) {
  objective_ = expr.normalized();
  maximize_ = maximize;
}

int Model::integer_var_count() const {
  return static_cast<int>(
      std::count_if(vars_.begin(), vars_.end(), [](const VarInfo& v) {
        return v.kind != VarKind::Continuous;
      }));
}

std::pair<double, double> Model::expr_bounds(const LinExpr& expr) const {
  double lo = expr.constant();
  double hi = expr.constant();
  for (std::size_t i = 0; i < expr.vars().size(); ++i) {
    const VarInfo& v = vars_[expr.vars()[i]];
    const double c = expr.coefs()[i];
    if (c >= 0) {
      lo += c * v.lo;
      hi += c * v.hi;
    } else {
      lo += c * v.hi;
      hi += c * v.lo;
    }
  }
  return {lo, hi};
}

bool Model::is_feasible(const std::vector<double>& x, double tol) const {
  if (static_cast<int>(x.size()) != var_count()) return false;
  for (int i = 0; i < var_count(); ++i) {
    const VarInfo& v = vars_[i];
    if (x[i] < v.lo - tol || x[i] > v.hi + tol) return false;
    if (v.kind != VarKind::Continuous &&
        std::abs(x[i] - std::round(x[i])) > tol) {
      return false;
    }
  }
  for (const ConstraintInfo& c : constraints_) {
    double lhs = 0.0;
    for (std::size_t i = 0; i < c.expr.vars().size(); ++i) {
      lhs += c.expr.coefs()[i] * x[c.expr.vars()[i]];
    }
    switch (c.sense) {
      case Sense::LE:
        if (lhs > c.rhs + tol) return false;
        break;
      case Sense::GE:
        if (lhs < c.rhs - tol) return false;
        break;
      case Sense::EQ:
        if (std::abs(lhs - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

double Model::objective_value(const std::vector<double>& x) const {
  double obj = objective_.constant();
  for (std::size_t i = 0; i < objective_.vars().size(); ++i) {
    obj += objective_.coefs()[i] * x[objective_.vars()[i]];
  }
  return obj;
}

std::string Model::to_string() const {
  std::ostringstream os;
  os << (maximize_ ? "maximize" : "minimize") << '\n' << "  ";
  for (std::size_t i = 0; i < objective_.vars().size(); ++i) {
    const double c = objective_.coefs()[i];
    os << (c >= 0 && i ? "+ " : "") << c << ' ' << vars_[objective_.vars()[i]].name
       << ' ';
  }
  os << '\n' << "subject to\n";
  for (const ConstraintInfo& c : constraints_) {
    os << "  ";
    if (!c.name.empty()) os << c.name << ": ";
    for (std::size_t i = 0; i < c.expr.vars().size(); ++i) {
      const double coef = c.expr.coefs()[i];
      os << (coef >= 0 && i ? "+ " : "") << coef << ' '
         << vars_[c.expr.vars()[i]].name << ' ';
    }
    switch (c.sense) {
      case Sense::LE: os << "<= "; break;
      case Sense::GE: os << ">= "; break;
      case Sense::EQ: os << "= "; break;
    }
    os << c.rhs << '\n';
  }
  os << "bounds\n";
  for (const VarInfo& v : vars_) {
    os << "  " << v.lo << " <= " << v.name << " <= " << v.hi;
    if (v.kind == VarKind::Binary) os << " (bin)";
    if (v.kind == VarKind::Integer) os << " (int)";
    os << '\n';
  }
  return os.str();
}

std::string Model::to_lp_format() const {
  // LP-format identifiers must avoid characters CPLEX reserves; our var
  // names use dots, which are legal, but sanitize anything else.
  auto clean = [](std::string s) {
    for (char& c : s) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '.' &&
          c != '_') {
        c = '_';
      }
    }
    if (s.empty()) s = "v";
    return s;
  };
  std::ostringstream os;
  os << (maximize_ ? "Maximize" : "Minimize") << "\n obj:";
  for (std::size_t i = 0; i < objective_.vars().size(); ++i) {
    const double c = objective_.coefs()[i];
    os << (c >= 0 ? " +" : " ") << c << ' '
       << clean(vars_[objective_.vars()[i]].name);
  }
  if (objective_.vars().empty()) os << " 0 " << clean(vars_.empty() ? "x" : vars_[0].name);
  os << "\nSubject To\n";
  for (std::size_t r = 0; r < constraints_.size(); ++r) {
    const ConstraintInfo& c = constraints_[r];
    os << " c" << r << ":";
    for (std::size_t i = 0; i < c.expr.vars().size(); ++i) {
      const double coef = c.expr.coefs()[i];
      os << (coef >= 0 ? " +" : " ") << coef << ' '
         << clean(vars_[c.expr.vars()[i]].name);
    }
    switch (c.sense) {
      case Sense::LE: os << " <= "; break;
      case Sense::GE: os << " >= "; break;
      case Sense::EQ: os << " = "; break;
    }
    os << c.rhs << '\n';
  }
  os << "Bounds\n";
  for (const VarInfo& v : vars_) {
    os << ' ';
    if (std::isinf(v.lo)) os << "-inf";
    else os << v.lo;
    os << " <= " << clean(v.name) << " <= ";
    if (std::isinf(v.hi)) os << "+inf";
    else os << v.hi;
    os << '\n';
  }
  bool have_int = false;
  for (const VarInfo& v : vars_) {
    if (v.kind != VarKind::Continuous) {
      if (!have_int) {
        os << "Generals\n";
        have_int = true;
      }
      os << ' ' << clean(v.name) << '\n';
    }
  }
  os << "End\n";
  return os.str();
}

}  // namespace rs::lp
