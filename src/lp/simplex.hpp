// Bounded-variable revised primal simplex.
//
// Solves the LP relaxation of a Model (integrality ignored). Two phases:
// phase 1 drives artificial infeasibility columns to zero, phase 2 optimizes
// the real objective. Dense explicit basis inverse with periodic
// refactorization; Dantzig pricing with a Bland fallback after a run of
// degenerate pivots (anti-cycling).
//
// Problem sizes in this library (the paper's intLP models for loop-body
// DAGs) are a few hundred to a few thousand columns, where a dense inverse
// is simple and fast enough; sparsity is still exploited in pricing via
// column-compressed storage.
#pragma once

#include <functional>
#include <vector>

#include "lp/model.hpp"

namespace rs::lp {

enum class LpStatus { Optimal, Infeasible, Unbounded, IterLimit };

struct LpResult {
  LpStatus status = LpStatus::IterLimit;
  /// Objective in the *model's* sense (max stays max).
  double objective = 0.0;
  /// Structural variable values (model var order); empty unless Optimal.
  std::vector<double> x;
  /// Phase-2 pivots (the optimizing pass; what callers budget against).
  int iterations = 0;
  /// Phase-1 pivots spent driving artificial infeasibility to zero; 0 when
  /// the initial basis was already feasible.
  int phase1_iterations = 0;
};

/// Reusable solver: the constraint matrix is extracted from the model once;
/// each solve takes per-variable bound overrides, which is how
/// branch-and-bound tightens nodes without rebuilding the model.
class SimplexSolver {
 public:
  explicit SimplexSolver(const Model& model);

  /// Solves with the model's own bounds. `stop` (when set) is polled every
  /// few dozen pivots; firing aborts the solve with LpStatus::IterLimit —
  /// the hook that lets a cancelled portfolio loser or an expired deadline
  /// interrupt a long relaxation mid-solve instead of at the next
  /// branch-and-bound node.
  LpResult solve(int max_iterations = 50000,
                 const std::function<bool()>& stop = {}) const;

  /// Solves with overridden structural bounds (size == var_count()).
  LpResult solve_with_bounds(const std::vector<double>& lo,
                             const std::vector<double>& hi,
                             int max_iterations = 50000,
                             const std::function<bool()>& stop = {}) const;

 private:
  struct ColEntry {
    int row;
    double coef;
  };
  friend struct SimplexRun;

  int n_ = 0;  // structural columns
  int m_ = 0;  // rows
  bool maximize_ = false;
  std::vector<std::vector<ColEntry>> cols_;  // structural sparse columns
  std::vector<double> cost_;                 // minimization costs, structural
  double cost_const_ = 0.0;
  std::vector<double> rhs_;
  std::vector<double> slack_lo_, slack_hi_;  // slack bounds encoding sense
  std::vector<double> lo_default_, hi_default_;
};

}  // namespace rs::lp
