// Linear encodings of logical operators and max(), following the recipe the
// paper inherits from Touati's thesis [15]: every big-M constant is derived
// from the *finite bounds* of the participating integer expressions, never a
// global magic number. All expressions are assumed integral.
#pragma once

#include <string>
#include <vector>

#include "lp/model.hpp"

namespace rs::lp {

/// Adds constraints making binary z equivalent to (expr >= c):
///   z = 1 <=> expr >= c      (expr integral; c integral)
/// Degenerate cases (c below/above expr's range) pin z instead.
void add_iff_ge(Model& m, Var z, const LinExpr& expr, double c,
                const std::string& name_prefix = {});

/// z = a AND b for binaries.
void add_and(Model& m, Var z, Var a, Var b, const std::string& name_prefix = {});

/// z = a OR b for binaries.
void add_or(Model& m, Var z, Var a, Var b, const std::string& name_prefix = {});

/// If `guard` (binary) is 0 then `expr <= rhs` must hold; no constraint
/// when guard is 1. (Implements "s = 0 ==> x_u + x_v <= 1" from section 3.)
void add_unless(Model& m, Var guard, const LinExpr& expr, double rhs,
                const std::string& name_prefix = {});

/// Returns a fresh integer variable k constrained to equal max_i exprs[i].
/// Introduces one binary per alternative with sum 1 (thesis [15] encoding).
Var add_max(Model& m, const std::vector<LinExpr>& exprs,
            const std::string& name_prefix);

}  // namespace rs::lp
