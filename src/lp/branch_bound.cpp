#include "lp/branch_bound.hpp"

#include <algorithm>
#include <cmath>

#include "lp/simplex.hpp"
#include "support/assert.hpp"
#include "support/metrics.hpp"
#include "support/timer.hpp"

namespace rs::lp {

namespace {

constexpr double kIntTol = 1e-6;

struct Search {
  const Model& model;
  const MipOptions& opts;
  const support::SolveContext& solve;
  SimplexSolver simplex;

  std::vector<double> lo, hi;
  std::vector<double> best_x;
  double best_obj = 0.0;
  bool have_incumbent = false;
  bool complete = true;  // no limit hit, no LP failure
  bool node_limit_hit = false;
  long nodes = 0;
  long long prunes = 0;
  long long simplex_iterations = 0;
  long long simplex_phase1_iterations = 0;
  long long bound_improvements = 0;
  int max_depth = 0;
  bool maximize;
  /// Mid-LP interruption (portfolio cancel, deadline): without it a long
  /// relaxation pins the search until the next per-node limits_hit check.
  std::function<bool()> lp_stop;

  Search(const Model& m, const MipOptions& o, const support::SolveContext& s)
      : model(m), opts(o), solve(s), simplex(m), maximize(m.maximize()) {
    lp_stop = [this] { return this->solve.stop_requested(); };
    lo.resize(m.var_count());
    hi.resize(m.var_count());
    for (int j = 0; j < m.var_count(); ++j) {
      lo[j] = m.var(j).lo;
      hi[j] = m.var(j).hi;
      if (m.var(j).kind != VarKind::Continuous) {
        RS_REQUIRE(std::isfinite(lo[j]) && std::isfinite(hi[j]),
                   "integer variable needs finite bounds: " + m.var(j).name);
        // Round bounds inward to integers once, up front.
        lo[j] = std::ceil(lo[j] - kIntTol);
        hi[j] = std::floor(hi[j] + kIntTol);
      }
    }
  }

  bool limits_hit() {
    // Cancel flag every node, deadline clock every kPollInterval nodes:
    // no clock syscall in the per-node hot path.
    if (solve.should_stop(nodes)) return true;
    if (opts.node_limit > 0 && nodes >= opts.node_limit) {
      node_limit_hit = true;
      return true;
    }
    return false;
  }

  /// True when `candidate` improves on the incumbent.
  bool improves(double candidate) const {
    if (!have_incumbent) return true;
    return maximize ? candidate > best_obj + 1e-9
                    : candidate < best_obj - 1e-9;
  }

  /// Can a node with the given LP bound still beat the incumbent?
  bool bound_can_improve(double lp_bound) const {
    if (!have_incumbent) return true;
    double b = lp_bound;
    if (opts.objective_integral) {
      b = maximize ? std::floor(b + kIntTol) : std::ceil(b - kIntTol);
    }
    return maximize ? b > best_obj + 1e-9 : b < best_obj - 1e-9;
  }

  void dfs(int depth) {
    if (limits_hit()) {
      complete = false;
      return;
    }
    ++nodes;
    max_depth = std::max(max_depth, depth);
    const LpResult lp =
        simplex.solve_with_bounds(lo, hi, opts.lp_iteration_limit, lp_stop);
    simplex_iterations += lp.iterations;
    simplex_phase1_iterations += lp.phase1_iterations;
    if (lp.status == LpStatus::Infeasible) return;
    if (lp.status != LpStatus::Optimal) {
      // Unbounded relaxations cannot be pruned soundly; our models are
      // always bounded, so treat any non-optimal outcome as a failure that
      // forfeits the optimality proof for this subtree.
      complete = false;
      return;
    }
    if (!bound_can_improve(lp.objective)) {
      ++prunes;
      return;
    }

    // Most-fractional integer variable.
    int branch_var = -1;
    double branch_val = 0.0;
    double best_frac_dist = kIntTol;
    for (int j = 0; j < model.var_count(); ++j) {
      if (model.var(j).kind == VarKind::Continuous) continue;
      const double v = lp.x[j];
      const double frac = v - std::floor(v);
      const double dist = std::min(frac, 1.0 - frac);
      if (dist > best_frac_dist) {
        best_frac_dist = dist;
        branch_var = j;
        branch_val = v;
      }
    }

    if (branch_var < 0) {
      // Integral LP optimum: candidate incumbent. Snap and verify.
      std::vector<double> x = lp.x;
      for (int j = 0; j < model.var_count(); ++j) {
        if (model.var(j).kind != VarKind::Continuous) x[j] = std::round(x[j]);
      }
      if (model.is_feasible(x, 1e-5)) {
        const double obj = model.objective_value(x);
        if (improves(obj)) {
          best_obj = obj;
          best_x = std::move(x);
          have_incumbent = true;
          ++bound_improvements;
        }
      } else {
        // Rounding broke feasibility (numerically marginal basic solution);
        // losing this candidate only costs bound quality, not soundness,
        // because the subtree is explored via branching anyway.
        complete = complete && true;
      }
      return;
    }

    const double floor_v = std::floor(branch_val);
    const double save_lo = lo[branch_var];
    const double save_hi = hi[branch_var];
    const bool down_first = (branch_val - floor_v) < 0.5;

    auto down = [&] {
      hi[branch_var] = floor_v;
      if (lo[branch_var] <= hi[branch_var]) dfs(depth + 1);
      hi[branch_var] = save_hi;
    };
    auto up = [&] {
      lo[branch_var] = floor_v + 1.0;
      if (lo[branch_var] <= hi[branch_var]) dfs(depth + 1);
      lo[branch_var] = save_lo;
    };
    if (down_first) {
      down();
      up();
    } else {
      up();
      down();
    }
  }
};

}  // namespace

MipResult solve_mip(const Model& model, const MipOptions& options,
                    const support::SolveContext& solve) {
  Search search(model, options, solve);
  support::Timer timer;
  search.dfs(0);
  const double elapsed = timer.seconds();

  if (const support::SolverProfile* prof = solve.profile()) {
    prof->bb_nodes->inc(static_cast<std::uint64_t>(search.nodes));
    prof->bb_bound_improvements->inc(
        static_cast<std::uint64_t>(search.bound_improvements));
    prof->bb_max_depth->observe(static_cast<double>(search.max_depth));
    if (elapsed > 0 && search.nodes > 0) {
      prof->bb_nodes_per_sec->observe(static_cast<double>(search.nodes) /
                                      elapsed);
    }
    prof->simplex_phase1_iterations->inc(
        static_cast<std::uint64_t>(search.simplex_phase1_iterations));
    prof->simplex_phase2_iterations->inc(
        static_cast<std::uint64_t>(search.simplex_iterations));
  }

  MipResult result;
  result.nodes = search.nodes;
  result.stats.nodes = search.nodes;
  result.stats.prunes = search.prunes;
  result.stats.simplex_iterations = search.simplex_iterations;
  result.stats.solves = 1;
  if (search.complete) {
    result.stats.stop = support::StopCause::Proven;
  } else {
    result.stats.stop = solve.cause_now(search.node_limit_hit);
    if (result.stats.stop == support::StopCause::Proven) {
      // Neither deadline, token, nor node cap fired: an LP-level failure
      // (iteration limit / unbounded relaxation) forfeited the proof.
      result.stats.stop = support::StopCause::LimitHit;
    }
  }
  solve.record(result.stats);
  if (search.have_incumbent) {
    result.objective = search.best_obj;
    result.x = std::move(search.best_x);
    result.status = search.complete ? MipStatus::Optimal : MipStatus::Feasible;
    result.best_bound = search.complete ? search.best_obj : result.objective;
  } else {
    result.status = search.complete ? MipStatus::Infeasible : MipStatus::Unknown;
  }
  return result;
}

}  // namespace rs::lp
