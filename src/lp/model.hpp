// Mixed-integer linear program builder.
//
// The paper's headline contribution is a *model* (an intLP for register
// saturation with O(n^2) variables and O(m+n^2) constraints); this class is
// the substrate those formulations are written against, playing the role
// CPLEX's API played for the authors. Solvers live in simplex.hpp /
// branch_bound.hpp.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace rs::lp {

/// +infinity bound sentinel for variables.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class VarKind { Continuous, Integer, Binary };

enum class Sense { LE, GE, EQ };

/// Opaque variable handle.
struct Var {
  int id = -1;
  bool valid() const { return id >= 0; }
};

/// Sparse linear expression: sum(coef_i * var_i) + constant.
class LinExpr {
 public:
  LinExpr() = default;
  /*implicit*/ LinExpr(double constant) : constant_(constant) {}
  /*implicit*/ LinExpr(Var v) { add(v, 1.0); }

  LinExpr& add(Var v, double coef);
  LinExpr& add_constant(double c) {
    constant_ += c;
    return *this;
  }

  LinExpr& operator+=(const LinExpr& other);
  friend LinExpr operator+(LinExpr a, const LinExpr& b) { return a += b; }
  friend LinExpr operator-(LinExpr a, const LinExpr& b);
  friend LinExpr operator*(double s, LinExpr e);

  double constant() const { return constant_; }
  const std::vector<int>& vars() const { return vars_; }
  const std::vector<double>& coefs() const { return coefs_; }

  /// Merges duplicate variables and drops zero coefficients.
  LinExpr normalized() const;

 private:
  std::vector<int> vars_;
  std::vector<double> coefs_;
  double constant_ = 0.0;
};

struct VarInfo {
  std::string name;
  VarKind kind = VarKind::Continuous;
  double lo = 0.0;
  double hi = kInf;
};

struct ConstraintInfo {
  LinExpr expr;  // expr (sense) rhs, with expr's constant folded into rhs
  Sense sense = Sense::LE;
  double rhs = 0.0;
  std::string name;
};

/// A MIP: variables with bounds/kinds, linear constraints, linear objective.
class Model {
 public:
  Var add_var(VarKind kind, double lo, double hi, std::string name);
  Var add_binary(std::string name) { return add_var(VarKind::Binary, 0, 1, std::move(name)); }
  Var add_int(double lo, double hi, std::string name) {
    return add_var(VarKind::Integer, lo, hi, std::move(name));
  }

  /// Adds `expr sense rhs`; expression constants fold into the rhs.
  void add_constraint(const LinExpr& expr, Sense sense, double rhs,
                      std::string name = {});

  /// Sets the objective. `maximize` true for maximization.
  void set_objective(const LinExpr& expr, bool maximize);

  int var_count() const { return static_cast<int>(vars_.size()); }
  int constraint_count() const { return static_cast<int>(constraints_.size()); }
  int integer_var_count() const;

  const VarInfo& var(int id) const { return vars_[id]; }
  VarInfo& var_mutable(int id) { return vars_[id]; }
  const std::vector<ConstraintInfo>& constraints() const { return constraints_; }
  const LinExpr& objective() const { return objective_; }
  bool maximize() const { return maximize_; }

  /// Worst-case finite bounds of an expression under current var bounds.
  /// Returns {lo, hi}; infinite when some involved bound is infinite.
  std::pair<double, double> expr_bounds(const LinExpr& expr) const;

  /// Checks a point against every constraint / bound / integrality with
  /// tolerance; used by tests and by the MIP solver's acceptance check.
  bool is_feasible(const std::vector<double>& x, double tol = 1e-6) const;

  /// Objective value at x.
  double objective_value(const std::vector<double>& x) const;

  /// Human-readable LP-format-ish dump (debugging aid).
  std::string to_string() const;

  /// CPLEX LP file format (the solver the paper used); lets the generated
  /// intLP models be fed to external MIP solvers for cross-validation.
  std::string to_lp_format() const;

 private:
  std::vector<VarInfo> vars_;
  std::vector<ConstraintInfo> constraints_;
  LinExpr objective_;
  bool maximize_ = false;
};

}  // namespace rs::lp
