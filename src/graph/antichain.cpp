#include "graph/antichain.hpp"

#include <numeric>

#include "graph/matching.hpp"
#include "graph/transitive.hpp"
#include "support/assert.hpp"

namespace rs::graph {

AntichainResult maximum_antichain(int k,
                                  const std::function<bool(int, int)>& before) {
  RS_REQUIRE(k >= 0, "negative element count");
  // Fulkerson: min chain partition of the order = k - max matching in the
  // split bipartite graph with an edge (i_L, j_R) per comparable pair i<j.
  // By Dilworth, the max antichain has exactly that size; König's theorem
  // recovers one as the elements with both split copies uncovered.
  BipartiteMatching matching(k, k);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      if (i != j && before(i, j)) matching.add_edge(i, j);
    }
  }
  const int matched = matching.solve();
  const auto cover = matching.min_vertex_cover();

  AntichainResult result;
  for (int i = 0; i < k; ++i) {
    if (!cover.left[i] && !cover.right[i]) result.members.push_back(i);
  }
  result.size = static_cast<int>(result.members.size());
  RS_CHECK(result.size >= k - matched);
  return result;
}

AntichainResult maximum_antichain_of_dag(const Digraph& g,
                                         const std::vector<NodeId>& elements) {
  TransitiveClosure tc(g);
  auto result = maximum_antichain(
      static_cast<int>(elements.size()),
      [&](int i, int j) { return tc.reaches(elements[i], elements[j]); });
  // Translate element indices back to node ids.
  for (int& m : result.members) m = elements[m];
  return result;
}

AntichainResult maximum_antichain_of_dag(const Digraph& g) {
  std::vector<NodeId> all(g.node_count());
  std::iota(all.begin(), all.end(), 0);
  return maximum_antichain_of_dag(g, all);
}

}  // namespace rs::graph
