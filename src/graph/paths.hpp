// Longest-path computations. lp(u,v) is central to the paper: it prunes
// redundant scheduling arcs, defines potential killers, and decides when two
// values can never be simultaneously alive (section 3 optimizations).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/digraph.hpp"

namespace rs::graph {

/// Sentinel for "no path".
inline constexpr std::int64_t kNoPath = std::numeric_limits<std::int64_t>::min() / 4;

/// All-pairs longest paths over a graph without positive circuits.
/// Entry (u,v) is the maximum total latency over paths u->v, kNoPath if v is
/// unreachable from u, and 0 on the diagonal.
class LongestPaths {
 public:
  /// Requires: !has_positive_circuit(g). DAGs run in O(V*(V+E)) via one
  /// relaxation sweep per source in topological order; graphs with
  /// non-positive circuits fall back to Bellman-Ford per source.
  explicit LongestPaths(const Digraph& g);

  std::int64_t lp(NodeId u, NodeId v) const { return d_[u * n_ + v]; }
  bool reaches(NodeId u, NodeId v) const { return lp(u, v) != kNoPath; }

  int node_count() const { return n_; }

 private:
  int n_;
  std::vector<std::int64_t> d_;
};

/// Longest path from any source (node with indegree zero) to each node,
/// taking max(0, ...) so isolated nodes sit at time 0. This is the paper's
/// "as soon as possible" time sigma-underbar(u) = LongestPathTo(u).
std::vector<std::int64_t> longest_path_to(const Digraph& g);

/// Longest path from each node to any sink. sigma-overbar(u) =
/// T - LongestPathFrom(u) is the "as late as possible" time (section 3).
std::vector<std::int64_t> longest_path_from(const Digraph& g);

/// Critical path length: max over nodes of longest_path_to (equivalently
/// longest_path_from). Zero for empty graphs.
std::int64_t critical_path(const Digraph& g);

}  // namespace rs::graph
