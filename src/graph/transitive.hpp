// Transitive closure / reduction over DAGs, bitset-based.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "support/bitset.hpp"

namespace rs::graph {

/// Reachability closure of a DAG. reach(u, v) answers "is there a path
/// u -> v (u != v) ?" in O(1) after O(V*E/64) construction.
class TransitiveClosure {
 public:
  explicit TransitiveClosure(const Digraph& g);

  bool reaches(NodeId u, NodeId v) const { return rows_[u].test(static_cast<std::size_t>(v)); }
  /// Bitset of nodes reachable from u via at least one arc.
  const support::DynamicBitset& row(NodeId u) const { return rows_[u]; }

  int node_count() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<support::DynamicBitset> rows_;
};

/// Arcs of g whose removal keeps reachability intact (unique arcs implied by
/// transitivity). Used to report "how many serial arcs were really added"
/// when comparing reduction strategies (section 6 / figure 2).
std::vector<EdgeId> transitively_redundant_edges(const Digraph& g);

}  // namespace rs::graph
