#include "graph/transitive.hpp"

#include "graph/topo.hpp"
#include "support/assert.hpp"

namespace rs::graph {

TransitiveClosure::TransitiveClosure(const Digraph& g) {
  const int n = g.node_count();
  const auto order = topo_order(g);
  RS_REQUIRE(order.has_value(), "transitive closure requires a DAG");
  rows_.assign(n, support::DynamicBitset(static_cast<std::size_t>(n)));
  // Reverse topological order: successors' rows are complete when merged.
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId u = *it;
    for (const EdgeId e : g.out_edges(u)) {
      const NodeId v = g.edge(e).dst;
      rows_[u].set(static_cast<std::size_t>(v));
      rows_[u] |= rows_[v];
    }
  }
}

std::vector<EdgeId> transitively_redundant_edges(const Digraph& g) {
  TransitiveClosure tc(g);
  std::vector<EdgeId> redundant;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& ed = g.edge(e);
    if (ed.src == ed.dst) continue;
    // Redundant if some other out-neighbour of src reaches dst.
    for (const EdgeId f : g.out_edges(ed.src)) {
      if (f == e) continue;
      const NodeId w = g.edge(f).dst;
      if (w == ed.dst || tc.reaches(w, ed.dst)) {
        redundant.push_back(e);
        break;
      }
    }
  }
  return redundant;
}

}  // namespace rs::graph
