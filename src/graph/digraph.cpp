#include "graph/digraph.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace rs::graph {

Digraph::Digraph(int node_count) {
  RS_REQUIRE(node_count >= 0, "negative node count");
  out_.resize(node_count);
  in_.resize(node_count);
}

NodeId Digraph::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  return node_count() - 1;
}

EdgeId Digraph::add_edge(NodeId src, NodeId dst, std::int64_t latency) {
  RS_REQUIRE(src >= 0 && src < node_count(), "edge source out of range");
  RS_REQUIRE(dst >= 0 && dst < node_count(), "edge target out of range");
  const EdgeId id = edge_count();
  edges_.push_back(Edge{src, dst, latency});
  out_[src].push_back(id);
  in_[dst].push_back(id);
  return id;
}

bool Digraph::has_edge(NodeId src, NodeId dst) const {
  return std::any_of(out_[src].begin(), out_[src].end(),
                     [&](EdgeId e) { return edges_[e].dst == dst; });
}

std::int64_t Digraph::max_latency(NodeId src, NodeId dst) const {
  bool found = false;
  std::int64_t best = 0;
  for (const EdgeId e : out_[src]) {
    if (edges_[e].dst == dst) {
      best = found ? std::max(best, edges_[e].latency) : edges_[e].latency;
      found = true;
    }
  }
  RS_REQUIRE(found, "max_latency: no such arc");
  return best;
}

}  // namespace rs::graph
