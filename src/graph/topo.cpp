#include "graph/topo.hpp"

namespace rs::graph {

std::optional<std::vector<NodeId>> topo_order(const Digraph& g) {
  const int n = g.node_count();
  std::vector<int> indeg(n, 0);
  for (const Edge& e : g.edges()) ++indeg[e.dst];

  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<NodeId> ready;
  for (NodeId v = 0; v < n; ++v) {
    if (indeg[v] == 0) ready.push_back(v);
  }
  while (!ready.empty()) {
    const NodeId v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (const EdgeId e : g.out_edges(v)) {
      if (--indeg[g.edge(e).dst] == 0) ready.push_back(g.edge(e).dst);
    }
  }
  if (static_cast<int>(order.size()) != n) return std::nullopt;
  return order;
}

bool is_dag(const Digraph& g) { return topo_order(g).has_value(); }

bool has_positive_circuit(const Digraph& g) {
  const int n = g.node_count();
  if (n == 0) return false;
  // Longest-path Bellman-Ford from all nodes at distance 0. A relaxation
  // still possible after n-1 rounds certifies a positive circuit.
  std::vector<std::int64_t> dist(n, 0);
  for (int round = 0; round < n; ++round) {
    bool changed = false;
    for (const Edge& e : g.edges()) {
      if (dist[e.src] + e.latency > dist[e.dst]) {
        dist[e.dst] = dist[e.src] + e.latency;
        changed = true;
      }
    }
    if (!changed) return false;
  }
  return true;
}

}  // namespace rs::graph
