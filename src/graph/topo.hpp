// Topological ordering, acyclicity, and positive-circuit detection.
//
// Two distinct notions matter in this library (paper, end of section 4):
//  * a DAG proper has no circuits at all;
//  * an *extended DDG* produced by RS reduction on VLIW targets may contain
//    circuits, which are harmless iff every circuit has non-positive total
//    latency — but such graphs still "violate the DAG property" and the
//    paper eliminates them by requiring a topological sort to exist.
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace rs::graph {

/// Kahn topological order, or nullopt when the graph has a circuit.
std::optional<std::vector<NodeId>> topo_order(const Digraph& g);

/// True when the graph has no circuit (i.e. a topological sort exists).
bool is_dag(const Digraph& g);

/// True when the graph contains a circuit of strictly positive total
/// latency, which makes it unschedulable (sigma(v) >= sigma(v) + c, c > 0).
/// Bellman-Ford on a virtual super-source; O(V * E).
bool has_positive_circuit(const Digraph& g);

}  // namespace rs::graph
