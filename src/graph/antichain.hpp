// Maximum antichain of a finite strict partial order (Dilworth via
// Fulkerson's bipartite reduction + König cover).
//
// The register saturation of a fixed killing function equals the maximum
// antichain of the disjoint-value DAG's reachability order [Touati CC'01,
// recalled in section 1 of the paper]; this module provides that primitive.
#pragma once

#include <functional>
#include <vector>

#include "graph/digraph.hpp"

namespace rs::graph {

struct AntichainResult {
  /// Indices of a maximum antichain (ascending).
  std::vector<int> members;
  /// == members.size(); kept for call sites that only need the size.
  int size = 0;
};

/// Maximum antichain of the strict partial order `before` over k elements.
/// `before` MUST be irreflexive and transitive (pass a reachability
/// relation, not raw arcs) — Dilworth's reduction is unsound otherwise.
AntichainResult maximum_antichain(int k,
                                  const std::function<bool(int, int)>& before);

/// Maximum antichain among `elements` of DAG g under reachability order.
/// Paths through non-element nodes count as comparability.
AntichainResult maximum_antichain_of_dag(const Digraph& g,
                                         const std::vector<NodeId>& elements);

/// Maximum antichain over all nodes of DAG g.
AntichainResult maximum_antichain_of_dag(const Digraph& g);

}  // namespace rs::graph
