// Directed multigraph with integer edge weights (latencies, possibly zero or
// negative — extended DDGs for VLIW targets legally carry non-positive arcs).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace rs::graph {

using NodeId = int;
using EdgeId = int;

/// One weighted arc. `latency` follows the paper's semantics:
/// a valid schedule satisfies sigma(dst) - sigma(src) >= latency.
struct Edge {
  NodeId src = -1;
  NodeId dst = -1;
  std::int64_t latency = 0;
};

/// Append-only directed multigraph. Node ids are dense [0, node_count()).
///
/// Append-only is deliberate: every algorithm in this library treats graphs
/// as immutable inputs, and "reduction" passes produce *extended* copies
/// rather than mutating in place (the paper's G-bar = G \ E-script).
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(int node_count);

  int node_count() const { return static_cast<int>(out_.size()); }
  int edge_count() const { return static_cast<int>(edges_.size()); }

  /// Adds a fresh node and returns its id.
  NodeId add_node();

  /// Adds an arc src->dst with the given latency; returns its edge id.
  /// Parallel arcs are allowed (the max-latency one dominates scheduling).
  EdgeId add_edge(NodeId src, NodeId dst, std::int64_t latency);

  const Edge& edge(EdgeId e) const { return edges_[e]; }
  std::span<const Edge> edges() const { return edges_; }

  /// Edge ids leaving / entering a node.
  std::span<const EdgeId> out_edges(NodeId v) const { return out_[v]; }
  std::span<const EdgeId> in_edges(NodeId v) const { return in_[v]; }

  /// True if some arc src->dst exists (any latency).
  bool has_edge(NodeId src, NodeId dst) const;

  /// Maximum latency among arcs src->dst; requires at least one such arc.
  std::int64_t max_latency(NodeId src, NodeId dst) const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace rs::graph
