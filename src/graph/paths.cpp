#include "graph/paths.hpp"

#include <algorithm>

#include "graph/topo.hpp"
#include "support/assert.hpp"

namespace rs::graph {

LongestPaths::LongestPaths(const Digraph& g) : n_(g.node_count()) {
  RS_REQUIRE(!has_positive_circuit(g), "longest paths need positive-circuit-free graph");
  d_.assign(static_cast<std::size_t>(n_) * n_, kNoPath);

  const auto order = topo_order(g);
  for (NodeId s = 0; s < n_; ++s) {
    std::int64_t* row = &d_[static_cast<std::size_t>(s) * n_];
    row[s] = 0;
    if (order) {
      // Single sweep in topological order relaxes every path once.
      for (const NodeId u : *order) {
        if (row[u] == kNoPath) continue;
        for (const EdgeId e : g.out_edges(u)) {
          const Edge& ed = g.edge(e);
          row[ed.dst] = std::max(row[ed.dst], row[u] + ed.latency);
        }
      }
    } else {
      // Non-positive circuits: Bellman-Ford fixpoint (converges since no
      // positive circuit exists).
      for (int round = 0; round < n_; ++round) {
        bool changed = false;
        for (const Edge& ed : g.edges()) {
          if (row[ed.src] == kNoPath) continue;
          if (row[ed.src] + ed.latency > row[ed.dst]) {
            row[ed.dst] = row[ed.src] + ed.latency;
            changed = true;
          }
        }
        if (!changed) break;
      }
      // A circuit through s can relax row[s] above 0; clamp is invalid, so
      // instead assert it stayed <= 0 and restore the diagonal convention.
      RS_CHECK(row[s] <= 0 || row[s] == kNoPath || row[s] >= 0);
      row[s] = std::max<std::int64_t>(row[s], 0);
    }
  }
}

std::vector<std::int64_t> longest_path_to(const Digraph& g) {
  const int n = g.node_count();
  std::vector<std::int64_t> dist(n, 0);
  const auto order = topo_order(g);
  if (order) {
    for (const NodeId u : *order) {
      for (const EdgeId e : g.out_edges(u)) {
        const Edge& ed = g.edge(e);
        dist[ed.dst] = std::max(dist[ed.dst], dist[u] + ed.latency);
      }
    }
    return dist;
  }
  RS_REQUIRE(!has_positive_circuit(g), "unschedulable graph (positive circuit)");
  for (int round = 0; round < n; ++round) {
    bool changed = false;
    for (const Edge& ed : g.edges()) {
      if (dist[ed.src] + ed.latency > dist[ed.dst]) {
        dist[ed.dst] = dist[ed.src] + ed.latency;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

std::vector<std::int64_t> longest_path_from(const Digraph& g) {
  const int n = g.node_count();
  std::vector<std::int64_t> dist(n, 0);
  const auto order = topo_order(g);
  if (order) {
    for (auto it = order->rbegin(); it != order->rend(); ++it) {
      const NodeId u = *it;
      for (const EdgeId e : g.out_edges(u)) {
        const Edge& ed = g.edge(e);
        dist[u] = std::max(dist[u], ed.latency + dist[ed.dst]);
      }
    }
    return dist;
  }
  RS_REQUIRE(!has_positive_circuit(g), "unschedulable graph (positive circuit)");
  for (int round = 0; round < n; ++round) {
    bool changed = false;
    for (const Edge& ed : g.edges()) {
      if (ed.latency + dist[ed.dst] > dist[ed.src]) {
        dist[ed.src] = ed.latency + dist[ed.dst];
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

std::int64_t critical_path(const Digraph& g) {
  const auto dist = longest_path_to(g);
  std::int64_t cp = 0;
  for (const std::int64_t d : dist) cp = std::max(cp, d);
  return cp;
}

}  // namespace rs::graph
