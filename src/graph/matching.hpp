// Hopcroft-Karp maximum bipartite matching with König minimum-vertex-cover
// extraction — the engine behind Dilworth maximum-antichain computation.
#pragma once

#include <vector>

namespace rs::graph {

/// Maximum matching in a bipartite graph with explicit left/right parts.
class BipartiteMatching {
 public:
  BipartiteMatching(int n_left, int n_right);

  void add_edge(int left, int right);

  /// Runs Hopcroft-Karp; returns matching cardinality. Idempotent.
  int solve();

  /// Partner of a left / right vertex after solve(), -1 when unmatched.
  int match_of_left(int left) const { return match_l_[left]; }
  int match_of_right(int right) const { return match_r_[right]; }

  /// König cover after solve(): (left_in_cover, right_in_cover) with
  /// |cover| == matching size and every edge covered.
  struct VertexCover {
    std::vector<bool> left;
    std::vector<bool> right;
  };
  VertexCover min_vertex_cover() const;

 private:
  bool bfs_layers();
  bool dfs_augment(int left);

  int nl_, nr_;
  std::vector<std::vector<int>> adj_;  // left -> rights
  std::vector<int> match_l_, match_r_;
  std::vector<int> layer_;
  bool solved_ = false;
};

}  // namespace rs::graph
