#include "graph/matching.hpp"

#include <limits>
#include <queue>

#include "support/assert.hpp"

namespace rs::graph {

namespace {
constexpr int kInf = std::numeric_limits<int>::max();
}

BipartiteMatching::BipartiteMatching(int n_left, int n_right)
    : nl_(n_left), nr_(n_right), adj_(n_left),
      match_l_(n_left, -1), match_r_(n_right, -1) {
  RS_REQUIRE(n_left >= 0 && n_right >= 0, "negative partition size");
}

void BipartiteMatching::add_edge(int left, int right) {
  RS_REQUIRE(left >= 0 && left < nl_, "left vertex out of range");
  RS_REQUIRE(right >= 0 && right < nr_, "right vertex out of range");
  adj_[left].push_back(right);
  solved_ = false;
}

bool BipartiteMatching::bfs_layers() {
  layer_.assign(nl_, kInf);
  std::queue<int> q;
  for (int l = 0; l < nl_; ++l) {
    if (match_l_[l] == -1) {
      layer_[l] = 0;
      q.push(l);
    }
  }
  bool found_free_right = false;
  while (!q.empty()) {
    const int l = q.front();
    q.pop();
    for (const int r : adj_[l]) {
      const int l2 = match_r_[r];
      if (l2 == -1) {
        found_free_right = true;
      } else if (layer_[l2] == kInf) {
        layer_[l2] = layer_[l] + 1;
        q.push(l2);
      }
    }
  }
  return found_free_right;
}

bool BipartiteMatching::dfs_augment(int left) {
  for (const int r : adj_[left]) {
    const int l2 = match_r_[r];
    if (l2 == -1 || (layer_[l2] == layer_[left] + 1 && dfs_augment(l2))) {
      match_l_[left] = r;
      match_r_[r] = left;
      return true;
    }
  }
  layer_[left] = kInf;  // dead end; prune for this phase
  return false;
}

int BipartiteMatching::solve() {
  if (!solved_) {
    while (bfs_layers()) {
      for (int l = 0; l < nl_; ++l) {
        if (match_l_[l] == -1) dfs_augment(l);
      }
    }
    solved_ = true;
  }
  int size = 0;
  for (int l = 0; l < nl_; ++l) {
    if (match_l_[l] != -1) ++size;
  }
  return size;
}

BipartiteMatching::VertexCover BipartiteMatching::min_vertex_cover() const {
  RS_REQUIRE(solved_, "call solve() before min_vertex_cover()");
  // Z = vertices reachable from unmatched left vertices along alternating
  // paths (non-matching edges left->right, matching edges right->left).
  std::vector<bool> visited_l(nl_, false), visited_r(nr_, false);
  std::queue<int> q;
  for (int l = 0; l < nl_; ++l) {
    if (match_l_[l] == -1) {
      visited_l[l] = true;
      q.push(l);
    }
  }
  while (!q.empty()) {
    const int l = q.front();
    q.pop();
    for (const int r : adj_[l]) {
      if (r == match_l_[l] || visited_r[r]) continue;
      visited_r[r] = true;
      const int l2 = match_r_[r];
      if (l2 != -1 && !visited_l[l2]) {
        visited_l[l2] = true;
        q.push(l2);
      }
    }
  }
  // König: cover = (L \ Z) union (R intersect Z).
  VertexCover cover;
  cover.left.resize(nl_);
  cover.right.resize(nr_);
  for (int l = 0; l < nl_; ++l) cover.left[l] = !visited_l[l];
  for (int r = 0; r < nr_; ++r) cover.right[r] = visited_r[r];
  return cover;
}

}  // namespace rs::graph
