// Per-request trace spans and the JSONL trace sink — the request-lifecycle
// half of the telemetry spine (the aggregate half is support/metrics.hpp).
//
// A TraceSpan records one request's full lifecycle as fixed phase slots
// (parse, queue wait, fingerprint, store lookup, solve, encode) plus the
// delivery metadata a latency investigation needs: operation, display
// name, fingerprint, cache disposition (cached flag + serving tier), stop
// cause and search-node count. The engine fills the phases it owns while
// processing (EngineConfig::trace enables span collection; the span rides
// back on Response::trace); the front end that renders the result line
// fills encode_ms/bytes and hands the span to the sink. Exactly one JSONL
// event is therefore emitted per request, by the layer that delivered it.
//
// TraceSink is a bounded, lock-light JSONL writer: write() renders the
// event *outside* the lock, appends it to an in-memory buffer under a
// short critical section, and flushes the buffer to the file outside the
// lock when it passes flush_threshold (only one thread flushes at a time;
// others keep appending). If the buffer hits max_buffer while a flush is
// stalled on a slow disk, events are dropped and counted — tracing
// degrades, it never backpressures the serving path.
//
// Event schema (one JSON object per line; see README "Observability" for
// the field table). Keys always present:
//   ev ts id op name fp ok cached tier stop nodes total_ms
// Phase keys (parse_ms queue_ms fp_ms lookup_ms solve_ms encode_ms) and
// bytes/err appear when measured: a phase a request never entered (e.g.
// solve_ms on a cache hit) is omitted rather than written as 0, so
// consumers can tell "skipped" from "fast". tier is mem|disk|none; a
// coalesced request reports cached=1 tier=none. Conditional solve keys:
// winner (modal portfolio strategy, engine=portfolio solves only) and
// blocks_parallel (blocks fanned onto the pool, program ops only).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace rs::service {

/// One request's lifecycle. Phase slots are -1 until measured (negative
/// slots are omitted from the rendered event).
struct TraceSpan {
  std::uint64_t id = 0;
  std::string op;    // operation name; "" when it never resolved
  std::string name;  // display name
  std::string fp;    // hex fingerprint; "" when fingerprinting failed
  bool ok = true;
  bool cached = false;
  const char* tier = "none";    // store_tier_token of the serving tier
  const char* stop = "proven";  // stop_cause_token of the solve
  long long nodes = 0;
  /// Modal winning strategy when the solve raced a portfolio
  /// (exact|ilp|greedy|bisect); "" — and omitted from the event — when the
  /// request raced nothing (fixed engine, cache hit).
  const char* winner = "";
  /// Blocks fanned onto the pool by a program op; 0 (omitted) otherwise.
  long long blocks_parallel = 0;
  double parse_ms = -1;   // protocol parse (front end)
  double queue_ms = -1;   // submit -> worker pickup
  double fp_ms = -1;      // normalize + fingerprint
  double lookup_ms = -1;  // store probe (memory + disk tiers)
  double solve_ms = -1;   // compute under the SolveContext (owners only)
  double encode_ms = -1;  // result-line render (front end)
  double total_ms = -1;   // submit -> payload resolved
  std::uint64_t bytes = 0;  // rendered result-line length
  std::string error;        // error payload message, when !ok
};

/// Renders the span as one JSON object (no trailing newline). `ts` is the
/// event timestamp in fractional Unix seconds (the sink stamps write time).
std::string render_trace_json(const TraceSpan& span, double ts);

/// One request's solve-log record (--solve-log): cheap canonical input
/// features plus the solve outcome — the training corpus for the ROADMAP's
/// adaptive strategy prediction. Schema-versioned ("v":1) and
/// byte-stable-keyed like trace events; exactly one JSONL record is emitted
/// per completed request by the front end that delivered it.
///
/// Feature semantics by payload kind: DDG operations report the normalized
/// DAG (op/arc counts, critical path, peak unit-depth level width, per-type
/// value counts); program operations report block-level aggregates
/// (statement/operand counts, width = block count, cp = 0 — not computed).
struct SolveLogRecord {
  std::uint64_t id = 0;
  std::string op;   // operation name; "" when it never resolved
  std::string fp;   // hex fingerprint of the canonical input
  // Input features (the ddg_* keys of the record).
  long long ddg_ops = 0;    // operations (or program statements)
  long long ddg_arcs = 0;   // arcs (or program operand references)
  long long ddg_cp = 0;     // critical path of the normalized DAG
  long long ddg_width = 0;  // peak ops per unit-depth level (or block count)
  std::string ddg_types;    // per-type value counts, comma-joined by type
  // Outcome.
  bool ok = true;
  bool cached = false;
  const char* tier = "none";    // store_tier_token of the serving tier
  const char* stop = "proven";  // stop_cause_token of the solve
  long long nodes = 0;
  /// Modal winning strategy for portfolio solves; "" (omitted) otherwise.
  const char* winner = "";
  double parse_ms = -1;  // omitted when unmeasured (< 0), like trace phases
  double solve_ms = -1;
  double total_ms = -1;  // always rendered (0 when unmeasured)
};

/// Renders the record as one JSON object (no trailing newline); `ts` as in
/// render_trace_json. Key order is fixed and byte-stable.
std::string render_solve_log_json(const SolveLogRecord& rec, double ts);

/// Bounded, lock-light JSONL writer (see header comment).
class TraceSink {
 public:
  struct Config {
    std::string path;
    /// Buffer size that triggers an (out-of-lock) flush to the file.
    std::size_t flush_threshold = std::size_t{64} << 10;
    /// Hard buffer cap: events arriving while the buffer is this full are
    /// dropped (and counted) instead of blocking the caller.
    std::size_t max_buffer = std::size_t{8} << 20;
  };

  /// Opens (truncates) the file; throws support::PreconditionError when it
  /// cannot be created.
  explicit TraceSink(const std::string& path) : TraceSink(Config{path}) {}
  explicit TraceSink(const Config& cfg);
  ~TraceSink();  // flushes

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Renders and enqueues one event. Thread-safe; never blocks on file I/O
  /// unless this thread is the one elected to flush. RSAT_EXCLUDES encodes
  /// the render-outside-lock discipline: write() acquires mu_ itself (for
  /// the short buffer append only), so no caller may already hold it.
  void write(const TraceSpan& span) RSAT_EXCLUDES(mu_);

  /// Enqueues one pre-rendered JSONL line (no trailing newline — the sink
  /// appends it). The write() path renders a TraceSpan and lands here; the
  /// solve-log path (--solve-log) renders a SolveLogRecord and shares the
  /// same bounded buffer/flush/drop machinery through a second sink
  /// instance. Same locking contract as write().
  void write_line(std::string line) RSAT_EXCLUDES(mu_);

  /// Drains the buffer to the file and flushes the stream.
  void flush() RSAT_EXCLUDES(mu_);

  std::uint64_t written() const RSAT_EXCLUDES(mu_);
  std::uint64_t dropped() const RSAT_EXCLUDES(mu_);
  const std::string& path() const { return cfg_.path; }

 private:
  Config cfg_;
  /// Deliberately NOT guarded by mu_: the flusher-election protocol
  /// (flushing_ flag) guarantees at most one thread touches out_ at a
  /// time, and it does so with mu_ released so file I/O never serializes
  /// writers. Single-owner-by-protocol, not by lock.
  std::ofstream out_;
  mutable support::Mutex mu_;
  support::CondVar flushed_;
  std::string buf_ RSAT_GUARDED_BY(mu_);
  bool flushing_ RSAT_GUARDED_BY(mu_) = false;
  std::uint64_t written_ RSAT_GUARDED_BY(mu_) = 0;
  std::uint64_t dropped_ RSAT_GUARDED_BY(mu_) = 0;
};

}  // namespace rs::service
