// ResultStore: the pluggable, tiered result-storage spine of the analysis
// service. Replaces the engine's hard-wired in-memory LRU (the former
// service/cache.hpp) with one interface and three implementations:
//
//  * MemoryStore — the sharded LRU, unchanged semantics: each key maps to
//    one of `shards` independently locked LRU lists so concurrent engine
//    workers rarely contend; capacity (bytes and entries) is split evenly
//    across shards; values are immutable shared payloads, so eviction
//    drops a reference but never invalidates a payload an in-flight
//    response still holds.
//
//  * DiskStore — a fingerprint-sharded persistent tier: entries live at
//    <dir>/<first two hex chars of the key>/<32-hex-key>.rsres, encoded
//    with the versioned codec (service/codec.hpp). Writes are atomic
//    (temp file + rename, support/fs.hpp), so a crash mid-write leaves a
//    stray temp file, never a torn entry. A missing, truncated,
//    version-mismatched or otherwise corrupt entry reads as a miss. Writes
//    are best-effort: a full or read-only disk degrades the tier to
//    read-only (counted in stats().write_errors), it never takes the
//    service down.
//
//  * TieredStore — memory over an optional disk tier. get() probes memory
//    first, then disk, promoting a disk hit into memory so the next lookup
//    is an in-memory hit. put() writes through to both, except that
//    payloads whose solve was cut short by a *wall-clock* artifact
//    (stop == timeout; cancelled payloads never reach a store) are kept
//    memory-only: persisting them would serve a machine-dependent
//    best-effort bound to every future process.
//
// Keys are canonical DDG fingerprints extended with a request digest
// (ddg/canon.hpp, service::request_key), so structurally identical
// requests — including renumbered or renamed copies of the same DAG, in
// any process, on any day — address the same entry across all tiers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ddg/canon.hpp"
#include "support/hash.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace rs::support {
class Counter;
class Histogram;
class MetricsRegistry;
}  // namespace rs::support

namespace rs::service {

struct ResultPayload;  // defined in service/engine.hpp

using CacheKey = ddg::Fingerprint;

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    return static_cast<std::size_t>(support::hash_combine(k.hi, k.lo));
  }
};

/// Which tier satisfied a lookup. None means miss.
enum class StoreTier { None = 0, Memory = 1, Disk = 2 };

const char* store_tier_token(StoreTier t);

struct StoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;     // memory tier only
  std::uint64_t corrupt = 0;       // disk entries rejected by the codec
  std::uint64_t write_errors = 0;  // disk writes that failed (best-effort)
  std::size_t entries = 0;         // disk: entries written this process
  std::size_t bytes = 0;           // disk: bytes written this process
};

/// A lookup result: the payload (nullptr = miss) and the tier it came from.
struct StoreHit {
  std::shared_ptr<const ResultPayload> payload;
  StoreTier tier = StoreTier::None;
};

/// The storage interface the engine speaks. Implementations must be safe
/// for concurrent get/put from many engine workers.
class ResultStore {
 public:
  virtual ~ResultStore() = default;

  /// Returns the payload (refreshing recency where that applies) or a miss.
  virtual StoreHit get(const CacheKey& key) = 0;

  /// Inserts (or refreshes) an entry costing `bytes`. Implementations may
  /// decline (capacity, persistence policy); put never fails loudly.
  virtual void put(const CacheKey& key,
                   std::shared_ptr<const ResultPayload> value,
                   std::size_t bytes) = 0;

  /// Cumulative counters since construction.
  virtual StoreStats stats() const = 0;

  virtual void clear() = 0;
};

/// Sharded in-memory LRU (the former service::ResultCache).
class MemoryStore : public ResultStore {
 public:
  struct Config {
    std::size_t max_bytes = std::size_t{64} << 20;
    std::size_t max_entries = std::size_t{1} << 16;
    int shards = 8;
  };

  MemoryStore() : MemoryStore(Config{}) {}
  /// When `metrics` is non-null, mirrors hit/miss/insert/evict counters to
  /// store.mem.* in the registry (which must outlive the store).
  explicit MemoryStore(const Config& cfg,
                       support::MetricsRegistry* metrics = nullptr);

  /// False when configured with zero capacity; get() then always misses
  /// and put() is a no-op.
  bool enabled() const { return enabled_; }

  StoreHit get(const CacheKey& key) override;
  void put(const CacheKey& key, std::shared_ptr<const ResultPayload> value,
           std::size_t bytes) override;
  StoreStats stats() const override;
  void clear() override;

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const ResultPayload> value;
    std::size_t bytes = 0;
  };
  /// One independently locked LRU slice. Everything mutable in a shard is
  /// guarded by its own mutex; concurrent workers only contend when their
  /// keys land on the same shard.
  struct Shard {
    mutable support::Mutex mu;
    std::list<Entry> lru RSAT_GUARDED_BY(mu);  // front = most recently used
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
        index RSAT_GUARDED_BY(mu);
    std::size_t bytes RSAT_GUARDED_BY(mu) = 0;
    std::uint64_t hits RSAT_GUARDED_BY(mu) = 0;
    std::uint64_t misses RSAT_GUARDED_BY(mu) = 0;
    std::uint64_t insertions RSAT_GUARDED_BY(mu) = 0;
    std::uint64_t evictions RSAT_GUARDED_BY(mu) = 0;
  };

  /// Key->shard routing reads only construction-time-immutable state
  /// (shards_ never changes size after the constructor), so it takes no
  /// lock.
  Shard& shard_of(const CacheKey& key);
  void evict_locked(Shard& shard) RSAT_REQUIRES(shard.mu);

  bool enabled_;
  std::size_t shard_max_bytes_;
  std::size_t shard_max_entries_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Cached registry entries (null when unmetered): store.mem.*.
  support::Counter* m_hits_ = nullptr;
  support::Counter* m_misses_ = nullptr;
  support::Counter* m_insertions_ = nullptr;
  support::Counter* m_evictions_ = nullptr;
};

/// Fingerprint-sharded on-disk tier speaking the versioned payload codec.
class DiskStore : public ResultStore {
 public:
  struct Config {
    /// Root directory; created, along with all 256 fan-out
    /// subdirectories, by the constructor (the write path counts on them
    /// existing — one temp-write + rename, no mkdir probe per entry).
    /// Must be creatable — the constructor throws
    /// support::PreconditionError otherwise, since a requested-but-broken
    /// cache dir is an operator error worth failing loudly on.
    std::string dir;
  };

  /// When `metrics` is non-null, mirrors counters to store.disk.* and times
  /// entry reads/writes into store.disk.{read,write}_ms histograms.
  explicit DiskStore(const Config& cfg,
                     support::MetricsRegistry* metrics = nullptr);

  /// Counters-only mutex, I/O unlocked: get/put read and write entry files
  /// with no lock held — disk latency is paid in parallel across workers —
  /// and take mu_ only for the final counter updates. RSAT_EXCLUDES is that
  /// pattern in the annotation vocabulary: callers provably cannot enter
  /// the I/O path while holding the counters mutex, so the mutex can never
  /// be held across a file operation.
  StoreHit get(const CacheKey& key) override RSAT_EXCLUDES(mu_);
  void put(const CacheKey& key, std::shared_ptr<const ResultPayload> value,
           std::size_t bytes) override RSAT_EXCLUDES(mu_);
  StoreStats stats() const override RSAT_EXCLUDES(mu_);
  /// Removes every entry file under the root (fan-out dirs stay). Pure
  /// file I/O: touches no counter, takes no lock.
  void clear() override;

  const std::string& dir() const { return cfg_.dir; }

  /// The entry path for a key: <dir>/<hex[0..1]>/<hex>.rsres. Exposed for
  /// tests that corrupt/truncate entries on purpose.
  std::string entry_path(const CacheKey& key) const;

 private:
  Config cfg_;
  mutable support::Mutex mu_;  // counters only; file I/O runs unlocked
  std::uint64_t hits_ RSAT_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ RSAT_GUARDED_BY(mu_) = 0;
  std::uint64_t insertions_ RSAT_GUARDED_BY(mu_) = 0;
  std::uint64_t corrupt_ RSAT_GUARDED_BY(mu_) = 0;
  std::uint64_t write_errors_ RSAT_GUARDED_BY(mu_) = 0;
  std::size_t bytes_written_ RSAT_GUARDED_BY(mu_) = 0;

  // Cached registry entries (null when unmetered): store.disk.*.
  support::Counter* d_hits_ = nullptr;
  support::Counter* d_misses_ = nullptr;
  support::Counter* d_insertions_ = nullptr;
  support::Counter* d_corrupt_ = nullptr;
  support::Counter* d_write_errors_ = nullptr;
  support::Counter* d_bytes_ = nullptr;
  support::Histogram* d_read_ms_ = nullptr;
  support::Histogram* d_write_ms_ = nullptr;
};

/// Memory over optional disk, promote on hit, write-through on put (with
/// the timeout-payload persistence exception documented above).
class TieredStore : public ResultStore {
 public:
  /// `disk` may be null (memory-only deployment). When `metrics` is
  /// non-null, disk->memory promotions are counted as store.promotions.
  TieredStore(std::unique_ptr<MemoryStore> memory,
              std::unique_ptr<DiskStore> disk,
              support::MetricsRegistry* metrics = nullptr);

  StoreHit get(const CacheKey& key) override;
  void put(const CacheKey& key, std::shared_ptr<const ResultPayload> value,
           std::size_t bytes) override;
  /// Memory-tier counters (the engine's historical "cache" numbers).
  StoreStats stats() const override;
  void clear() override;

  bool has_disk() const { return disk_ != nullptr; }

  /// Memory-tier-only probe: no disk I/O. For callers holding a lock that
  /// must not wait on the filesystem (the engine's single-flight re-check;
  /// the owner publishes to memory first, so missing a disk-only entry
  /// here merely recomputes).
  StoreHit probe_memory(const CacheKey& key) { return memory_->get(key); }

  StoreStats memory_stats() const { return memory_->stats(); }
  /// Zero-valued when there is no disk tier.
  StoreStats disk_stats() const;
  const DiskStore* disk() const { return disk_.get(); }

 private:
  std::unique_ptr<MemoryStore> memory_;
  std::unique_ptr<DiskStore> disk_;
  support::Counter* promotions_ = nullptr;
};

}  // namespace rs::service
