#include "service/engine.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

#include "ddg/io.hpp"
#include "support/assert.hpp"
#include "support/hash.hpp"

namespace rs::service {

namespace {

constexpr std::size_t kLatencyWindow = 1 << 16;

struct Digest {
  std::uint64_t h = 0x524571446967ULL;
  void add(std::uint64_t v) { h = support::hash_combine(h, v); }
  void add_double(double v) { add(std::bit_cast<std::uint64_t>(v)); }
};

void digest_analyze(Digest& d, const core::AnalyzeOptions& o) {
  d.add(static_cast<std::uint64_t>(o.engine));
  d.add(static_cast<std::uint64_t>(o.greedy.refine_passes));
}

void digest_reduce(Digest& d, const core::ReduceOptions& o) {
  d.add(static_cast<std::uint64_t>(o.src.node_limit));
  d.add(static_cast<std::uint64_t>(o.src.slack_limit));
  d.add(static_cast<std::uint64_t>(o.greedy.refine_passes));
  d.add(static_cast<std::uint64_t>(o.arc_mode));
  d.add(static_cast<std::uint64_t>(o.rs_upper));
  d.add(static_cast<std::uint64_t>(o.max_rounds));
}

}  // namespace

std::size_t ResultPayload::bytes() const {
  return sizeof(ResultPayload) + error.size() + out_ddg.size() +
         analyze.capacity() * sizeof(TypeAnalysis) +
         reduce.capacity() * sizeof(TypeReduce);
}

CacheKey request_key(const Request& req, const ddg::Fingerprint& fp) {
  Digest d;
  d.add(static_cast<std::uint64_t>(req.kind));
  d.add_double(req.budget_seconds);
  if (req.kind == RequestKind::Analyze) {
    digest_analyze(d, req.analyze);
  } else {
    digest_analyze(d, req.pipeline.analyze);
    digest_reduce(d, req.pipeline.reduce);
    d.add(req.pipeline.exact_reduction ? 1 : 0);
    d.add(req.pipeline.verify ? 1 : 0);
    d.add(req.limits.size());
    for (const int l : req.limits) d.add(static_cast<std::uint64_t>(l) + 1);
  }
  return ddg::extend(fp, d.h);
}

AnalysisEngine::AnalysisEngine(const EngineConfig& cfg)
    : cfg_(cfg),
      store_(std::make_unique<MemoryStore>(cfg.cache),
             cfg.cache_dir.empty()
                 ? std::unique_ptr<DiskStore>()
                 : std::make_unique<DiskStore>(
                       DiskStore::Config{cfg.cache_dir})),
      pool_(cfg.threads) {
  latencies_.reserve(1024);
}

AnalysisEngine::~AnalysisEngine() { pool_.wait_idle(); }

support::CancelToken AnalysisEngine::register_flight(std::uint64_t seq,
                                                     std::uint64_t id) {
  Flight flight;
  flight.id = id;
  std::lock_guard<std::mutex> lock(flights_mu_);
  support::CancelToken token = flight.token;
  flights_.emplace(seq, std::move(flight));
  return token;
}

void AnalysisEngine::mark_started(std::uint64_t seq) {
  std::lock_guard<std::mutex> lock(flights_mu_);
  const auto it = flights_.find(seq);
  if (it != flights_.end()) it->second.started = true;
}

void AnalysisEngine::forget_flight(std::uint64_t seq) {
  std::lock_guard<std::mutex> lock(flights_mu_);
  flights_.erase(seq);
}

bool AnalysisEngine::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(flights_mu_);
  bool found = false;
  for (auto& [seq, flight] : flights_) {
    static_cast<void>(seq);
    if (flight.id == id) {
      flight.token.request_cancel();
      found = true;
    }
  }
  return found;
}

std::size_t AnalysisEngine::cancel_all() {
  std::lock_guard<std::mutex> lock(flights_mu_);
  for (auto& [seq, flight] : flights_) {
    static_cast<void>(seq);
    flight.token.request_cancel();
  }
  return flights_.size();
}

void AnalysisEngine::drain() {
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    for (auto& [seq, flight] : flights_) {
      static_cast<void>(seq);
      if (!flight.started) flight.token.request_cancel();
    }
  }
  pool_.wait_idle();
}

std::future<Response> AnalysisEngine::submit(Request req) {
  ++submitted_;
  const std::uint64_t seq = next_seq_++;
  support::CancelToken token = register_flight(seq, req.id);
  auto prom = std::make_shared<std::promise<Response>>();
  std::future<Response> fut = prom->get_future();
  support::Timer started;
  pool_.submit([this, prom, started, seq, token,
                req = std::move(req)]() mutable {
    mark_started(seq);
    prom->set_value(process(std::move(req), started, token));
    forget_flight(seq);
  });
  return fut;
}

Response AnalysisEngine::run(Request req) {
  ++submitted_;
  const std::uint64_t seq = next_seq_++;
  support::CancelToken token = register_flight(seq, req.id);
  mark_started(seq);
  Response resp = process(std::move(req), support::Timer(), token);
  forget_flight(seq);
  return resp;
}

void AnalysisEngine::wait_idle() { pool_.wait_idle(); }

Response AnalysisEngine::process(Request req, support::Timer started,
                                 support::CancelToken token) {
  // Normalize before the cache key is computed: an explicit budget=30 and
  // an unset budget are the same bounded solve, so they must share a cache
  // entry and coalesce with each other.
  if (req.budget_seconds <= 0) req.budget_seconds = kDefaultBudgetSeconds;

  Response resp;
  resp.id = req.id;
  resp.name = req.name.empty() ? req.ddg.name() : req.name;
  resp.include_ddg = req.want_ddg;

  SharedPayload payload;
  bool owner = false;
  std::promise<SharedPayload> own_promise;
  std::shared_future<SharedPayload> flight;
  CacheKey key;

  try {
    const ddg::Ddg normalized = req.ddg.normalized();
    resp.fingerprint = ddg::fingerprint(normalized);
    key = request_key(req, resp.fingerprint);

    // Fast path: probe the store (sharded memory LRU, then the disk tier)
    // without touching the global single-flight mutex, so concurrent hits
    // only contend per shard.
    StoreHit hit = store_.get(key);
    payload = hit.payload;
    if (payload != nullptr) {
      (hit.tier == StoreTier::Disk ? disk_hits_ : memory_hits_)++;
      resp.cache_hit = true;
      resp.tier = hit.tier;
    } else {
      std::lock_guard<std::mutex> lock(flight_mu_);
      // Re-check under the lock: the owner publishes to the store *before*
      // erasing its in-flight entry, so a request that misses both here
      // raced nothing and can safely become the owner. Memory tier only —
      // this runs on every cold miss while holding the engine-wide
      // single-flight mutex, so file I/O is off-limits; a disk-only entry
      // missed here just recomputes (and the disk probe above already ran
      // outside the lock).
      hit = store_.probe_memory(key);
      payload = hit.payload;
      if (payload != nullptr) {
        ++memory_hits_;  // probe_memory never reports the disk tier
        resp.cache_hit = true;
        resp.tier = StoreTier::Memory;
      } else {
        const auto it = inflight_.find(key);
        if (it != inflight_.end()) {
          flight = it->second;
        } else {
          owner = true;
          inflight_[key] = own_promise.get_future().share();
        }
      }
    }

    if (payload == nullptr && !owner) {
      // An identical request is computing right now; ride its result. The
      // computing task never waits on another, so this cannot deadlock.
      // The owner's solve never polls *our* token, so keep observing it
      // here: a cancelled waiter detaches with a Cancelled payload instead
      // of blocking until the owner finishes.
      for (;;) {
        if (flight.wait_for(std::chrono::milliseconds(20)) ==
            std::future_status::ready) {
          payload = flight.get();
          ++coalesced_;
          resp.cache_hit = true;
          break;
        }
        if (token.cancelled()) {
          auto aborted = std::make_shared<ResultPayload>();
          aborted->kind = req.kind;
          aborted->success = false;
          aborted->stats.stop = support::StopCause::Cancelled;
          payload = std::move(aborted);
          ++cancelled_;
          break;
        }
      }
    }

    if (owner) {
      payload = compute(req, normalized, token);
      // Cancelled results are never stored: a cancel is an explicit "this
      // answer is unwanted", so the next identical request must recompute.
      // Timed-out results ARE cached in memory: the budget is part of the
      // cache key, and re-running the same hopeless solve on every lookup
      // would burn the whole budget each time for a (modestly
      // wall-clock-dependent) re-derivation of the same best-effort bound.
      // The store keeps them off the *disk* tier, which outlives this
      // process (TieredStore::put).
      if (payload->ok && !payload->cancelled()) {
        store_.put(key, payload, payload->bytes());
      }
      ++misses_;
      if (payload->ok) {
        if (payload->cancelled()) ++cancelled_;
        if (payload->stats.stop == support::StopCause::TimedOut) ++timed_out_;
      }
      own_promise.set_value(payload);
      std::lock_guard<std::mutex> lock(flight_mu_);
      inflight_.erase(key);
    }
  } catch (...) {
    auto failed = std::make_shared<ResultPayload>();
    failed->ok = false;
    failed->kind = req.kind;
    try {
      throw;
    } catch (const std::exception& e) {
      failed->error = e.what();
    } catch (...) {
      failed->error = "unknown error";
    }
    payload = std::move(failed);
    if (owner) {
      try {
        own_promise.set_value(payload);
      } catch (const std::future_error&) {
        // Already resolved before the failure; waiters are fine.
      }
      std::lock_guard<std::mutex> lock(flight_mu_);
      inflight_.erase(key);
    }
  }

  resp.payload = std::move(payload);
  if (!resp.payload->ok) ++errors_;
  resp.millis = started.millis();
  record_latency(resp.millis);
  ++completed_;
  return resp;
}

AnalysisEngine::SharedPayload AnalysisEngine::compute(
    const Request& req, const ddg::Ddg& normalized,
    const support::CancelToken& token) {
  auto payload = std::make_shared<ResultPayload>();
  payload->kind = req.kind;
  // One context for the whole request: the deadline and the cancel token
  // thread through every solver layer below. process() has already
  // normalized an unset budget to the engine default, so no request can
  // pin a worker past the structural node limits' worst case.
  const support::SolveContext solve(req.budget_seconds, token);
  try {
    if (req.kind == RequestKind::Analyze) {
      const core::SaturationReport report =
          core::analyze(normalized, req.analyze, solve);
      payload->stats = report.stats;
      for (const core::TypeSaturation& t : report.per_type) {
        payload->analyze.push_back(
            TypeAnalysis{t.type, t.value_count, t.rs, t.proven});
      }
    } else {
      RS_REQUIRE(static_cast<int>(req.limits.size()) == normalized.type_count(),
                 "need " + std::to_string(normalized.type_count()) +
                     " register limits, got " +
                     std::to_string(req.limits.size()));
      const core::PipelineResult result =
          core::ensure_limits(normalized, req.limits, req.pipeline, solve);
      payload->stats = result.stats;
      payload->success = result.success;
      if (!result.success) payload->error = result.note;
      for (ddg::RegType t = 0; t < normalized.type_count(); ++t) {
        const core::ReduceResult& r = result.per_type[t];
        payload->reduce.push_back(TypeReduce{
            t, r.status, r.achieved_rs, r.arcs_added,
            static_cast<long long>(r.ilp_loss())});
      }
      payload->out_ddg = ddg::to_text(result.out);
    }
  } catch (const std::exception& e) {
    payload->ok = false;
    payload->error = e.what();
    payload->analyze.clear();
    payload->reduce.clear();
    payload->out_ddg.clear();
  }
  return payload;
}

void AnalysisEngine::record_latency(double ms) {
  std::lock_guard<std::mutex> lock(latency_mu_);
  max_ms_ = std::max(max_ms_, ms);
  if (latencies_.size() < kLatencyWindow) {
    latencies_.push_back(ms);
  } else {
    latencies_[latency_next_] = ms;
    latency_next_ = (latency_next_ + 1) % kLatencyWindow;
  }
}

EngineStats AnalysisEngine::stats() const {
  EngineStats out;
  out.submitted = submitted_.load();
  out.completed = completed_.load();
  out.errors = errors_.load();
  out.memory_hits = memory_hits_.load();
  out.disk_hits = disk_hits_.load();
  out.cache_hits = out.memory_hits + out.disk_hits;
  out.coalesced = coalesced_.load();
  out.misses = misses_.load();
  out.cancelled = cancelled_.load();
  out.timed_out = timed_out_.load();
  out.queue_depth =
      static_cast<std::size_t>(out.submitted - std::min(out.submitted, out.completed));
  const StoreStats cs = store_.stats();
  out.cache_entries = cs.entries;
  out.cache_bytes = cs.bytes;
  out.disk_enabled = store_.has_disk();
  out.disk = store_.disk_stats();
  {
    std::lock_guard<std::mutex> lock(latency_mu_);
    if (!latencies_.empty()) {
      std::vector<double> sorted = latencies_;
      std::sort(sorted.begin(), sorted.end());
      out.p50_ms = sorted[sorted.size() / 2];
      // Nearest-rank p95: ceil(0.95 * n) - 1.
      out.p95_ms = sorted[(sorted.size() * 95 + 99) / 100 - 1];
      out.max_ms = max_ms_;
    }
  }
  return out;
}

}  // namespace rs::service
