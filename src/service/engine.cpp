#include "service/engine.hpp"

#include <algorithm>
#include <chrono>

#include "cfg/canon.hpp"
#include "cfg/cfg.hpp"
#include "core/portfolio.hpp"
#include "graph/paths.hpp"
#include "graph/topo.hpp"
#include "service/trace.hpp"
#include "support/assert.hpp"

namespace rs::service {

namespace {

/// Modal winning strategy across a request's races (most types/blocks won;
/// ties to the higher-priority strategy). "" when nothing raced.
const char* modal_winner(const ResultPayload::RaceTelemetry& race) {
  if (race.races <= 0) return "";
  int best = 0;
  for (int i = 1; i < core::kStrategyCount; ++i) {
    if (race.wins[i] > race.wins[best]) best = i;
  }
  return core::strategy_token(static_cast<core::Strategy>(best));
}

/// Critical path (latency-weighted, as graph::critical_path) and peak
/// level width (most operations sharing one unit-depth level) in a single
/// topological sweep — this runs per request on the solve-log path, so the
/// graph is walked once, not once per feature.
void shape_features(const graph::Digraph& g, long long* cp, long long* width) {
  *cp = 0;
  *width = 0;
  const auto order = graph::topo_order(g);
  if (!order.has_value()) {  // circuit: cp still defined, depth levels not
    *cp = graph::critical_path(g);
    return;
  }
  const auto n = static_cast<std::size_t>(g.node_count());
  if (n == 0) return;
  std::vector<std::int64_t> dist(n, 0);
  std::vector<int> level(n, 0);
  int max_level = 0;
  for (const graph::NodeId v : *order) {
    for (const graph::EdgeId e : g.in_edges(v)) {
      const graph::Edge& ed = g.edge(e);
      dist[v] = std::max(dist[v], dist[ed.src] + ed.latency);
      level[v] = std::max(level[v], level[ed.src] + 1);
    }
    *cp = std::max<long long>(*cp, dist[v]);
    max_level = std::max(max_level, level[v]);
  }
  std::vector<long long> per_level(static_cast<std::size_t>(max_level) + 1, 0);
  for (std::size_t v = 0; v < n; ++v) ++per_level[level[v]];
  *width = *std::max_element(per_level.begin(), per_level.end());
}

/// DDG operations report the normalized DAG: op/arc counts, critical path,
/// peak level width, and per-type value counts.
void fill_ddg_features(const ddg::Ddg& normalized, SolveLogRecord* rec) {
  rec->ddg_ops = normalized.op_count();
  rec->ddg_arcs = normalized.graph().edge_count();
  shape_features(normalized.graph(), &rec->ddg_cp, &rec->ddg_width);
  std::string types;
  for (int t = 0; t < normalized.type_count(); ++t) {
    if (t > 0) types += ',';
    types += std::to_string(normalized.values_of_type(t).size());
  }
  rec->ddg_types = std::move(types);
}

/// Program operations report block-level aggregates: statement/operand
/// counts, width = block count, cp = 0 (not computed across blocks), and
/// per-type result counts.
void fill_program_features(const cfg::Cfg& program, SolveLogRecord* rec) {
  long long statements = 0;
  long long operand_refs = 0;
  std::vector<long long> per_type(
      static_cast<std::size_t>(program.type_count()), 0);
  for (int b = 0; b < program.block_count(); ++b) {
    for (const cfg::Statement& s : program.block(b).statements) {
      ++statements;
      operand_refs += static_cast<long long>(s.operands.size());
      if (!s.result.empty()) ++per_type[static_cast<std::size_t>(s.type)];
    }
  }
  rec->ddg_ops = statements;
  rec->ddg_arcs = operand_refs;
  rec->ddg_cp = 0;
  rec->ddg_width = program.block_count();
  std::string types;
  for (std::size_t t = 0; t < per_type.size(); ++t) {
    if (t > 0) types += ',';
    types += std::to_string(per_type[t]);
  }
  rec->ddg_types = std::move(types);
}

}  // namespace

std::size_t ResultPayload::bytes() const {
  return sizeof(ResultPayload) + error.size() + out_ddg.size() +
         (data != nullptr ? data->bytes() : 0);
}

CacheKey request_key(const Request& req, const ddg::Fingerprint& fp) {
  RS_REQUIRE(req.op != nullptr, "request names no operation");
  OptionDigest d;
  d.add(req.op->digest_tag());
  d.add_double(req.budget_seconds);
  req.op->digest_options(req, &d);
  return ddg::extend(fp, d.value());
}

AnalysisEngine::AnalysisEngine(const EngineConfig& cfg)
    : cfg_(cfg),
      store_(std::make_unique<MemoryStore>(cfg.cache, &metrics_),
             cfg.cache_dir.empty()
                 ? std::unique_ptr<DiskStore>()
                 : std::make_unique<DiskStore>(
                       DiskStore::Config{cfg.cache_dir}, &metrics_),
             &metrics_),
      pool_(cfg.threads, &metrics_),
      submitted_(metrics_.counter("engine.submitted")),
      completed_(metrics_.counter("engine.completed")),
      errors_(metrics_.counter("engine.errors")),
      memory_hits_(metrics_.counter("engine.memory_hits")),
      disk_hits_(metrics_.counter("engine.disk_hits")),
      coalesced_(metrics_.counter("engine.coalesced")),
      misses_(metrics_.counter("engine.misses")),
      cancelled_(metrics_.counter("engine.cancelled")),
      timed_out_(metrics_.counter("engine.timed_out")),
      latency_ms_(metrics_.histogram("engine.latency_ms")),
      profile_(support::make_solver_profile(metrics_)) {}

AnalysisEngine::~AnalysisEngine() { pool_.wait_idle(); }

support::CancelToken AnalysisEngine::register_flight(std::uint64_t seq,
                                                     std::uint64_t id) {
  Flight flight;
  flight.id = id;
  support::LockGuard lock(flights_mu_);
  support::CancelToken token = flight.token;
  flights_.emplace(seq, std::move(flight));
  return token;
}

void AnalysisEngine::mark_started(std::uint64_t seq) {
  support::LockGuard lock(flights_mu_);
  const auto it = flights_.find(seq);
  if (it != flights_.end()) it->second.started = true;
}

void AnalysisEngine::forget_flight(std::uint64_t seq) {
  support::LockGuard lock(flights_mu_);
  flights_.erase(seq);
}

bool AnalysisEngine::cancel(std::uint64_t id) {
  support::LockGuard lock(flights_mu_);
  bool found = false;
  for (auto& [seq, flight] : flights_) {
    static_cast<void>(seq);
    if (flight.id == id) {
      flight.token.request_cancel();
      found = true;
    }
  }
  return found;
}

std::size_t AnalysisEngine::cancel_all() {
  support::LockGuard lock(flights_mu_);
  for (auto& [seq, flight] : flights_) {
    static_cast<void>(seq);
    flight.token.request_cancel();
  }
  return flights_.size();
}

void AnalysisEngine::drain() {
  {
    support::LockGuard lock(flights_mu_);
    for (auto& [seq, flight] : flights_) {
      static_cast<void>(seq);
      if (!flight.started) flight.token.request_cancel();
    }
  }
  pool_.wait_idle();
}

std::future<Response> AnalysisEngine::submit(Request req) {
  submitted_.inc();
  const std::uint64_t seq = next_seq_++;
  support::CancelToken token = register_flight(seq, req.id);
  auto prom = std::make_shared<std::promise<Response>>();
  std::future<Response> fut = prom->get_future();
  support::Timer started;
  pool_.submit([this, prom, started, seq, token,
                req = std::move(req)]() mutable {
    mark_started(seq);
    prom->set_value(process(std::move(req), started, token));
    forget_flight(seq);
  });
  return fut;
}

Response AnalysisEngine::run(Request req) {
  submitted_.inc();
  const std::uint64_t seq = next_seq_++;
  support::CancelToken token = register_flight(seq, req.id);
  mark_started(seq);
  Response resp = process(std::move(req), support::Timer(), token);
  forget_flight(seq);
  return resp;
}

void AnalysisEngine::wait_idle() { pool_.wait_idle(); }

Response AnalysisEngine::process(Request req, support::Timer started,
                                 support::CancelToken token) {
  // Normalize before the cache key is computed: an explicit budget=30 and
  // an unset budget are the same bounded solve, so they must share a cache
  // entry and coalesce with each other.
  if (req.budget_seconds <= 0) req.budget_seconds = kDefaultBudgetSeconds;

  Response resp;
  resp.id = req.id;
  resp.name = req.name.empty()
                  ? (req.program != nullptr ? req.program->name()
                                            : req.ddg.name())
                  : req.name;
  resp.include_ddg = req.want_ddg;

  // Span collection is opt-in (EngineConfig::trace): one allocation and a
  // handful of Timer reads per request when on, nothing when off.
  std::shared_ptr<TraceSpan> span;
  if (cfg_.trace) {
    span = std::make_shared<TraceSpan>();
    span->id = req.id;
    span->name = resp.name;
    if (req.op != nullptr) span->op = req.op->name();
    span->parse_ms = req.parse_ms;
    // `started` began at submit(); process() entry is worker pickup.
    span->queue_ms = started.millis();
  }

  // Solve-log collection is opt-in (EngineConfig::solve_log), independent
  // of tracing: one allocation plus a single walk of the normalized input
  // per request when on.
  std::shared_ptr<SolveLogRecord> slog;

  SharedPayload payload;
  bool owner = false;
  bool counted_hit = false;   // mirrors the hit/coalesce counters (per-op)
  bool counted_miss = false;  // mirrors misses_ for the per-op slice
  double solve_ms = -1;       // owner solves only (< 0 = no solve ran)
  std::promise<SharedPayload> own_promise;
  std::shared_future<SharedPayload> flight;
  CacheKey key;

  try {
    RS_REQUIRE(req.op != nullptr, "request names no operation");
    // Program payloads are fingerprinted over the whole CFG (cfg/canon);
    // DDG payloads keep the normalized-DAG fingerprint. Either way the
    // fingerprint is order/rename-invariant, so isomorphic inputs share a
    // cache entry.
    support::Timer phase;
    ddg::Ddg normalized;
    if (req.program != nullptr) {
      resp.fingerprint = cfg::fingerprint(*req.program);
    } else {
      normalized = req.ddg.normalized();
      resp.fingerprint = ddg::fingerprint(normalized);
    }
    key = request_key(req, resp.fingerprint);
    if (span != nullptr) {
      span->fp_ms = phase.millis();
      span->fp = resp.fingerprint.hex();
    }
    if (cfg_.solve_log) {
      slog = std::make_shared<SolveLogRecord>();
      slog->id = req.id;
      slog->op = req.op->name();
      slog->fp = resp.fingerprint.hex();
      if (req.program != nullptr) {
        fill_program_features(*req.program, slog.get());
      } else {
        fill_ddg_features(normalized, slog.get());
      }
    }

    // Fast path: probe the store (sharded memory LRU, then the disk tier)
    // without touching the global single-flight mutex, so concurrent hits
    // only contend per shard.
    phase.reset();
    StoreHit hit = store_.get(key);
    if (span != nullptr) span->lookup_ms = phase.millis();
    payload = hit.payload;
    if (payload != nullptr) {
      (hit.tier == StoreTier::Disk ? disk_hits_ : memory_hits_).inc();
      counted_hit = true;
      resp.cache_hit = true;
      resp.tier = hit.tier;
    } else {
      support::LockGuard lock(flight_mu_);
      // Re-check under the lock: the owner publishes to the store *before*
      // erasing its in-flight entry, so a request that misses both here
      // raced nothing and can safely become the owner. Memory tier only —
      // this runs on every cold miss while holding the engine-wide
      // single-flight mutex, so file I/O is off-limits; a disk-only entry
      // missed here just recomputes (and the disk probe above already ran
      // outside the lock).
      hit = store_.probe_memory(key);
      payload = hit.payload;
      if (payload != nullptr) {
        memory_hits_.inc();  // probe_memory never reports the disk tier
        counted_hit = true;
        resp.cache_hit = true;
        resp.tier = StoreTier::Memory;
      } else {
        const auto it = inflight_.find(key);
        if (it != inflight_.end()) {
          flight = it->second;
        } else {
          owner = true;
          inflight_[key] = own_promise.get_future().share();
        }
      }
    }

    if (payload == nullptr && !owner) {
      // An identical request is computing right now; ride its result. The
      // computing task never waits on another, so this cannot deadlock.
      // The owner's solve never polls *our* token, so keep observing it
      // here: a cancelled waiter detaches with a Cancelled payload instead
      // of blocking until the owner finishes.
      for (;;) {
        if (flight.wait_for(std::chrono::milliseconds(20)) ==
            std::future_status::ready) {
          payload = flight.get();
          coalesced_.inc();
          counted_hit = true;
          resp.cache_hit = true;
          break;
        }
        if (token.cancelled()) {
          auto aborted = std::make_shared<ResultPayload>();
          aborted->op = req.op;
          aborted->success = false;
          aborted->stats.stop = support::StopCause::Cancelled;
          payload = std::move(aborted);
          // A detached waiter still *was* coalesced onto the in-flight
          // solve — count it there too, so the hit/coalesce/miss buckets
          // tile completed responses (EngineStats::counters_tile). The
          // response itself stays cache_hit == false: nothing was served
          // from a cache.
          cancelled_.inc();
          coalesced_.inc();
          counted_hit = true;
          break;
        }
      }
    }

    if (owner) {
      phase.reset();
      payload = compute(req, normalized, token);
      solve_ms = phase.millis();
      if (span != nullptr) span->solve_ms = solve_ms;
      // Cancelled results are never stored: a cancel is an explicit "this
      // answer is unwanted", so the next identical request must recompute.
      // Timed-out results ARE cached in memory: the budget is part of the
      // cache key, and re-running the same hopeless solve on every lookup
      // would burn the whole budget each time for a (modestly
      // wall-clock-dependent) re-derivation of the same best-effort bound.
      // The store keeps them off the *disk* tier, which outlives this
      // process (TieredStore::put).
      if (payload->ok && !payload->cancelled()) {
        store_.put(key, payload, payload->bytes());
      }
      misses_.inc();
      counted_miss = true;
      if (payload->ok) {
        if (payload->cancelled()) cancelled_.inc();
        if (payload->stats.stop == support::StopCause::TimedOut) {
          timed_out_.inc();
        }
      }
      // Portfolio/fan-out observability: only computed solves race (cache
      // hits carry an all-zero telemetry block).
      if (payload->race.any()) record_race(req.op, payload->race);
      own_promise.set_value(payload);
      support::LockGuard lock(flight_mu_);
      inflight_.erase(key);
    }
  } catch (...) {
    auto failed = std::make_shared<ResultPayload>();
    failed->ok = false;
    failed->op = req.op;
    try {
      throw;
    } catch (const std::exception& e) {
      failed->error = e.what();
    } catch (...) {
      failed->error = "unknown error";
    }
    payload = std::move(failed);
    // A failure before any bucket was counted (bad operation, fingerprint
    // or option error) is still a completed response that computed nothing
    // from a cache: count it as a miss so the buckets keep tiling
    // `completed` (EngineStats::counters_tile).
    if (!counted_hit && !counted_miss) {
      misses_.inc();
      counted_miss = true;
    }
    if (owner) {
      try {
        own_promise.set_value(payload);
      } catch (const std::future_error&) {
        // Already resolved before the failure; waiters are fine.
      }
      support::LockGuard lock(flight_mu_);
      inflight_.erase(key);
    }
  }

  resp.payload = std::move(payload);
  if (!resp.payload->ok) errors_.inc();
  resp.millis = started.millis();
  latency_ms_.observe(resp.millis);
  record_op(req.op, resp, counted_hit, counted_miss);
  completed_.inc();
  if (span != nullptr) {
    span->ok = resp.payload->ok;
    span->error = resp.payload->error;
    span->cached = resp.cache_hit;
    span->tier = store_tier_token(resp.tier);
    span->stop = support::stop_cause_token(resp.payload->stats.stop);
    span->nodes = resp.payload->stats.nodes;
    span->winner = modal_winner(resp.payload->race);
    span->blocks_parallel = resp.payload->race.blocks_parallel;
    span->total_ms = resp.millis;
    resp.trace = std::move(span);
  }
  if (slog != nullptr) {
    slog->ok = resp.payload->ok;
    slog->cached = resp.cache_hit;
    slog->tier = store_tier_token(resp.tier);
    slog->stop = support::stop_cause_token(resp.payload->stats.stop);
    slog->nodes = resp.payload->stats.nodes;
    slog->winner = modal_winner(resp.payload->race);
    slog->parse_ms = req.parse_ms;
    slog->solve_ms = solve_ms;
    slog->total_ms = resp.millis;
    resp.solve_log = std::move(slog);
  }
  return resp;
}

AnalysisEngine::SharedPayload AnalysisEngine::compute(
    const Request& req, const ddg::Ddg& normalized,
    const support::CancelToken& token) {
  auto payload = std::make_shared<ResultPayload>();
  payload->op = req.op;
  // One context for the whole request: the deadline and the cancel token
  // thread through every solver layer below. process() has already
  // normalized an unset budget to the engine default, so no request can
  // pin a worker past the structural node limits' worst case.
  const support::SolveContext solve =
      support::SolveContext(req.budget_seconds, token).with_profile(&profile_);
  // Operations that fan out (portfolio races, per-block solves) borrow the
  // engine's own pool via nested-task submission; this worker participates
  // through TaskGroup::wait, so handing it our pool cannot deadlock.
  const RunEnv env{&pool_, req.jobs};
  try {
    req.op->run(req, normalized, env, solve, payload.get());
  } catch (const std::exception& e) {
    payload->ok = false;
    payload->error = e.what();
    payload->data.reset();
    payload->out_ddg.clear();
  }
  return payload;
}

void AnalysisEngine::record_race(const Operation* op,
                                 const ResultPayload::RaceTelemetry& race) {
  // Lazy registry lookups (name-hashed, under the registry mutex) are fine
  // here: this only runs on computed solves that actually raced, never on
  // the cache-hit fast path.
  const std::string prefix = "op." + std::string(op->name()) + ".";
  if (race.races > 0) {
    metrics_.counter(prefix + "portfolio.races")
        .inc(static_cast<std::uint64_t>(race.races));
    for (int i = 0; i < core::kStrategyCount; ++i) {
      if (race.wins[i] > 0) {
        metrics_
            .counter(prefix + "portfolio.wins." +
                     core::strategy_token(static_cast<core::Strategy>(i)))
            .inc(static_cast<std::uint64_t>(race.wins[i]));
      }
    }
    if (race.losers_cancelled > 0) {
      metrics_.counter(prefix + "portfolio.cancelled")
          .inc(static_cast<std::uint64_t>(race.losers_cancelled));
    }
  }
  if (race.blocks_parallel > 0) {
    metrics_.counter(prefix + "parallel_blocks")
        .inc(static_cast<std::uint64_t>(race.blocks_parallel));
  }
}

void AnalysisEngine::record_op(const Operation* op, const Response& resp,
                               bool counted_hit, bool counted_miss) {
  if (op == nullptr) return;  // failed before an operation was resolved
  PerOpMetrics m;
  {
    support::LockGuard lock(op_mu_);
    auto it = per_op_.find(op);
    if (it == per_op_.end()) {
      const std::string prefix = "op." + std::string(op->name()) + ".";
      PerOpMetrics fresh;
      fresh.submitted = &metrics_.counter(prefix + "submitted");
      fresh.hits = &metrics_.counter(prefix + "hits");
      fresh.misses = &metrics_.counter(prefix + "misses");
      fresh.ms = &metrics_.histogram(prefix + "ms");
      it = per_op_.emplace(op, fresh).first;
    }
    m = it->second;
  }
  m.submitted->inc();
  // Exactly mirror the aggregate counters (hits wherever a tier-hit or
  // coalesce counter fired — detached waiters included; misses wherever
  // misses_ was incremented, error payloads included), so the per-op
  // slices always tile the cache summary.
  if (counted_hit) {
    m.hits->inc();
  } else if (counted_miss) {
    m.misses->inc();
  }
  m.ms->observe(resp.millis);
}

EngineStats AnalysisEngine::stats() const {
  EngineStats out;
  out.submitted = submitted_.value();
  out.completed = completed_.value();
  out.errors = errors_.value();
  out.memory_hits = memory_hits_.value();
  out.disk_hits = disk_hits_.value();
  out.cache_hits = out.memory_hits + out.disk_hits;
  out.coalesced = coalesced_.value();
  out.misses = misses_.value();
  out.cancelled = cancelled_.value();
  out.timed_out = timed_out_.value();
  out.queue_depth =
      static_cast<std::size_t>(out.submitted - std::min(out.submitted, out.completed));
  const StoreStats cs = store_.stats();
  out.cache_entries = cs.entries;
  out.cache_bytes = cs.bytes;
  out.disk_enabled = store_.has_disk();
  out.disk = store_.disk_stats();
  out.p50_ms = latency_ms_.quantile(0.50);
  out.p95_ms = latency_ms_.quantile(0.95);
  out.p99_ms = latency_ms_.quantile(0.99);
  out.max_ms = latency_ms_.max();
  {
    support::LockGuard lock(op_mu_);
    for (const auto& [op, m] : per_op_) {
      OpStats slice;
      slice.submitted = m.submitted->value();
      slice.hits = m.hits->value();
      slice.misses = m.misses->value();
      slice.p50_ms = m.ms->quantile(0.50);
      out.per_op.emplace(std::string(op->name()), slice);
    }
  }
  return out;
}

}  // namespace rs::service
