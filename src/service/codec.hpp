// Versioned, self-describing codec for service::ResultPayload — the single
// source of truth for how a payload's contents are spelled out, shared by
// the wire protocol renderer (service/protocol.cpp) and the on-disk result
// tier (service::DiskStore).
//
// Two layers:
//
//  * render_payload_fields() — the payload-derived tail of a protocol
//    result line (" stop=... nodes=..." plus the per-type fields). The
//    protocol renderer and any re-render of a decoded payload call this one
//    function, which is what makes result lines byte-identical whether the
//    payload was computed, served from memory, or read back from disk.
//
//  * encode_payload() / decode_payload() — the storage format. One line of
//    whitespace-separated key=value tokens opened by a header:
//
//      rsres v=1 ok=1 kind=analyze stop=proven nodes=8 prunes=2 simplex=0
//            refine=1 solves=3 na=2 a0=0:12:5:1 a1=1:3:2:1
//      rsres v=1 ok=1 kind=reduce success=1 stop=limit ... nr=2
//            r0=0:reduced:4:3:12 r1=1:fits:2:0:0 ddg=<escaped>
//
//    a<i> entries are <type>:<values>:<rs>:<proven>; r<i> entries are
//    <type>:<status>:<rs>:<arcs>:<loss>; na=/nr= carry the expected entry
//    counts and a final eol=2 sentinel closes the record, so truncation
//    anywhere — including inside the last variable-length value — is
//    detectable. Values that may contain whitespace (ddg=, err=) use the
//    protocol's %XX escaping.
//
//    Decoding is forward-compatible: tokens with unknown keys are skipped,
//    so a newer writer may append fields without breaking this reader.
//    Anything else — a missing/mismatched version header, a malformed or
//    missing required field, an entry-count mismatch — decodes to nullptr,
//    which the disk tier treats as a cache miss (never a crash, never a
//    poisoned payload).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "service/engine.hpp"

namespace rs::service {

/// Bump when the encoded format changes incompatibly; readers treat any
/// other version as a miss.
inline constexpr int kPayloadFormatVersion = 1;

/// Serializes a payload to the versioned keyed format (one line, trailing
/// '\n'). Round-trips every field render_payload_fields() reads, so
/// decode → render is byte-identical to rendering the original.
std::string encode_payload(const ResultPayload& p);

/// Parses an encoded payload; nullptr on version mismatch or any
/// corruption (truncation, malformed numbers, bad escapes, entry-count
/// mismatch). Unknown keys are skipped. Never throws.
std::shared_ptr<const ResultPayload> decode_payload(std::string_view text);

/// The payload-derived tail of a protocol result line, starting with a
/// leading space: " stop=<c> nodes=<n>" then per-type analyze fields, or
/// " success=0|1" + per-type reduce fields (+ " ddg=<escaped>" when
/// include_ddg and the payload carries reduced-DDG text). Error payloads
/// render as " msg=<escaped>".
std::string render_payload_fields(const ResultPayload& p, bool include_ddg);

}  // namespace rs::service
