// Versioned, self-describing codec for service::ResultPayload — the single
// source of truth for how a payload's contents are spelled out, shared by
// the wire protocol renderer (service/protocol.cpp) and the on-disk result
// tier (service::DiskStore).
//
// Two layers:
//
//  * render_payload_fields() — the payload-derived tail of a protocol
//    result line (" stop=... nodes=..." plus the operation's fields). The
//    protocol renderer and any re-render of a decoded payload call this one
//    function, which is what makes result lines byte-identical whether the
//    payload was computed, served from memory, or read back from disk.
//
//  * encode_payload() / decode_payload() — the storage format. One line of
//    whitespace-separated key=value tokens opened by a header:
//
//      rsres v=1 ok=1 kind=analyze stop=proven nodes=8 prunes=2 simplex=0
//            refine=1 solves=3 na=2 a0=0:12:5:1 a1=1:3:2:1 nr=0
//      rsres v=1 ok=1 kind=reduce success=1 stop=limit ... na=0 nr=2
//            r0=0:reduced:4:3:12 r1=1:fits:2:0:0 ddg=<escaped>
//
//    The generic header (ok/kind/success/stop/solver counters/err=) and
//    trailer (ddg= when the payload carries output-DDG text, then a final
//    eol=2 sentinel) bracket the operation's own fields, written and read
//    back by the service::Operation named in kind= — the registry
//    (service/operation.hpp) is consulted on decode, so this file knows no
//    operation specifics. Entry-count keys (na=/nr=/nm=/...) inside the op
//    fields plus the eol=2 sentinel make truncation anywhere — including
//    inside the last variable-length value — detectable. Values that may
//    contain whitespace (ddg=, err=) use the protocol's %XX escaping.
//
//    Decoding is forward-compatible: tokens with unknown keys are skipped,
//    so a newer writer may append fields without breaking this reader.
//    Anything else — a missing/mismatched version header, an unregistered
//    kind=, a malformed or missing required field, an entry-count mismatch
//    — decodes to nullptr, which the disk tier treats as a cache miss
//    (never a crash, never a poisoned payload).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "service/engine.hpp"

namespace rs::service {

/// Bump when the encoded format changes incompatibly; readers treat any
/// other version as a miss.
inline constexpr int kPayloadFormatVersion = 1;

/// Serializes a payload to the versioned keyed format (one line, trailing
/// '\n'). Round-trips every field render_payload_fields() reads, so
/// decode → render is byte-identical to rendering the original.
std::string encode_payload(const ResultPayload& p);

/// Parses an encoded payload; nullptr on version mismatch or any
/// corruption (truncation, malformed numbers, bad escapes, unregistered
/// kind=, entry-count mismatch). Unknown keys are skipped. Never throws.
std::shared_ptr<const ResultPayload> decode_payload(std::string_view text);

/// The payload-derived tail of a protocol result line, starting with a
/// leading space: " stop=<c> nodes=<n>" then the operation's result fields
/// (+ " ddg=<escaped>" when include_ddg and the payload carries output-DDG
/// text). Error payloads render as " msg=<escaped>".
std::string render_payload_fields(const ResultPayload& p, bool include_ddg);

// --------------------------------------------------------------------------
// Helpers for Operation::encode_payload_fields / decode_payload_fields
// implementations (service/ops/*.cpp). All throw support::PreconditionError
// on malformed input; decode_payload() maps that to a miss.

/// Splits "a:b:c" on ':' — entry fields never contain ':' (all numeric or
/// status tokens), so no escaping is needed inside entries.
std::vector<std::string> split_colon(const std::string& s);

/// The value of a required integer field; throws when absent or malformed.
long long require_ll(const std::map<std::string, std::string>& fields,
                     const char* key);

/// The value of a required 0|1 field; throws when absent or out of range.
bool require_flag(const std::map<std::string, std::string>& fields,
                  const char* key);

/// Writes the shared entry-list scheme: " <count_key>=N" then one
/// " <prefix><i>=" token per entry, whose colon-joined value is streamed
/// by `entry(i, os)`. The count key is what makes truncation of a
/// fixed-arity entry list detectable.
void encode_entries(std::ostream& os, const char* count_key,
                    const char* prefix, std::size_t count,
                    const std::function<void(std::size_t, std::ostream&)>&
                        entry);

/// Reads the scheme back: validates the count (0..4096), looks up each
/// " <prefix><i>=" token, splits on ':' and checks `arity`, then hands the
/// parts to `entry`. Throws support::PreconditionError on any violation
/// (decode_payload() maps that to a miss).
void decode_entries(const std::map<std::string, std::string>& fields,
                    const char* count_key, const char* prefix,
                    std::size_t arity,
                    const std::function<void(const std::vector<std::string>&)>&
                        entry);

}  // namespace rs::service
