// The `schedule` operation: the pipeline's downstream consumer — resource-
// constrained, register-blind list scheduling (sched::list_schedule) plus
// the lifetime metrics the paper reasons about: makespan and the per-type
// maximum register pressure (MAXLIVE) of the produced schedule. Useful for
// checking what pressure a register-blind scheduler actually reaches on a
// DAG before/after reduction, minimization or spilling.
#pragma once

#include <vector>

#include "sched/list_sched.hpp"
#include "service/engine.hpp"

namespace rs::service {

struct TypeSchedule {
  ddg::RegType type = 0;
  int value_count = 0;
  int max_live = 0;  // RN^t of the list schedule (MAXLIVE)
};

struct ScheduleData : OpData {
  std::vector<TypeSchedule> per_type;
  long long makespan = 0;

  std::size_t bytes() const override {
    return sizeof(ScheduleData) + per_type.capacity() * sizeof(TypeSchedule);
  }
};

struct ScheduleOpOptions : OpOptions {
  /// Issue width of the modeled machine (other per-class unit counts keep
  /// the sched::Resources defaults).
  int issue_width = 4;
};

const Operation& schedule_operation();

/// Typed view of a schedule payload's data; throws unless the payload was
/// produced by the schedule operation (data-free payloads decode as empty).
const ScheduleData& schedule_data(const ResultPayload& p);

/// Direct-construction convenience for engine callers (tests, benches).
Request make_schedule_request(ddg::Ddg ddg, int issue_width = 4);

}  // namespace rs::service
