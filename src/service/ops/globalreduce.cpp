#include "service/ops/globalreduce.hpp"

#include <algorithm>
#include <ostream>

#include "service/codec.hpp"
#include "service/ops/common.hpp"
#include "service/ops/globalrs.hpp"
#include "support/assert.hpp"
#include "support/parse.hpp"

namespace rs::service {

namespace {

const GlobalReduceOpOptions& opts_of(const Request& req) {
  return ops::typed_options<GlobalReduceOpOptions>(req, "globalreduce");
}

class GlobalReduceOperation final : public Operation {
 public:
  std::string_view name() const override { return "globalreduce"; }
  std::uint64_t digest_tag() const override { return 6; }
  PayloadKind payload_kind() const override { return PayloadKind::Program; }
  std::string_view synopsis() const override {
    return "limits=<n>[,<n>...] [margin=<n>] "
           "[engine=greedy|exact|ilp|portfolio] [exact=0|1] [verify=0|1]";
  }
  std::string_view example_options() const override { return "limits=6,6"; }

  bool accepts_option(std::string_view key) const override {
    return key == "limits" || key == "margin" || key == "engine" ||
           key == "exact" || key == "verify";
  }

  void parse_options(const std::map<std::string, std::string>& fields,
                     Request* req) const override {
    auto opts = std::make_shared<GlobalReduceOpOptions>();
    const auto it = fields.find("limits");
    RS_REQUIRE(it != fields.end(),
               "globalreduce requires limits=<n>[,<n>...]");
    opts->limits = support::parse_int_list(it->second, ',', "limits");
    RS_REQUIRE(!opts->limits.empty(), "limits= must name at least one limit");
    if (const auto m = fields.find("margin"); m != fields.end()) {
      opts->margin = support::parse_int(m->second, "margin");
      RS_REQUIRE(opts->margin >= 0, "margin= must be >= 0");
    }
    if (const auto e = fields.find("engine"); e != fields.end()) {
      opts->pipeline.analyze.engine = ops::engine_from_token(e->second);
    }
    opts->pipeline.exact_reduction = ops::flag_from(fields, "exact", false);
    opts->pipeline.verify = ops::flag_from(fields, "verify", true);
    req->options = std::move(opts);
  }

  void digest_options(const Request& req, OptionDigest* d) const override {
    const GlobalReduceOpOptions& o = opts_of(req);
    d->add(static_cast<std::uint64_t>(o.margin));
    d->add(o.pipeline.exact_reduction ? 1 : 0);
    d->add(o.pipeline.verify ? 1 : 0);
    d->add(o.limits.size());
    for (const int l : o.limits) d->add(static_cast<std::uint64_t>(l) + 1);
    // Appended conditionally so the default engine digests exactly as
    // before engine= existed — every pre-portfolio cache entry keeps its
    // key.
    if (o.pipeline.analyze.engine != core::RsEngine::ExactCombinatorial) {
      d->add(static_cast<std::uint64_t>(o.pipeline.analyze.engine) + 1);
    }
  }

  void run(const Request& req, const ddg::Ddg& normalized, const RunEnv& env,
           const support::SolveContext& solve,
           ResultPayload* out) const override {
    static_cast<void>(normalized);
    RS_REQUIRE(req.program != nullptr,
               "globalreduce request carries no program payload");
    const GlobalReduceOpOptions& o = opts_of(req);
    const cfg::Cfg& prog = *req.program;
    RS_REQUIRE(static_cast<int>(o.limits.size()) == prog.type_count(),
               "need " + std::to_string(prog.type_count()) +
                   " register limits, got " + std::to_string(o.limits.size()));
    const cfg::GlobalReduceResult result = cfg::ensure_limits(
        prog, o.limits, o.margin, o.pipeline, solve, ops::exec_from(env));
    ops::fill_race(result.portfolio, out);
    out->race.blocks_parallel = result.blocks_parallel;
    out->success = result.success;
    if (!result.success) out->error = result.note;
    auto data = std::make_shared<GlobalReduceData>();
    const std::vector<int> order = ops::canonical_block_order(prog);
    for (std::size_t i = 0; i < order.size(); ++i) {
      const core::PipelineResult& block = result.details[order[i]];
      out->stats.merge(block.stats);
      for (ddg::RegType t = 0; t < prog.type_count(); ++t) {
        const core::ReduceResult& r = block.per_type[t];
        data->rows.push_back(GlobalReduceRow{static_cast<int>(i), t, r.status,
                                             r.achieved_rs, r.arcs_added});
      }
    }
    out->data = std::move(data);
  }

  void encode_payload_fields(const ResultPayload& p,
                             std::ostream& os) const override {
    const GlobalReduceData& d = globalreduce_data(p);
    encode_entries(os, "ng", "g", d.rows.size(),
                   [&d](std::size_t i, std::ostream& out) {
                     const GlobalReduceRow& r = d.rows[i];
                     out << r.block << ':' << r.type << ':'
                         << reduce_status_token(r.status) << ':'
                         << r.achieved_rs << ':' << r.arcs_added;
                   });
  }

  bool decode_payload_fields(const std::map<std::string, std::string>& fields,
                             ResultPayload* out) const override {
    auto data = std::make_shared<GlobalReduceData>();
    decode_entries(fields, "ng", "g", 5,
                   [&data](const std::vector<std::string>& parts) {
      GlobalReduceRow r;
      r.block = support::parse_int(parts[0], "g.block");
      r.type = static_cast<ddg::RegType>(support::parse_int(parts[1], "g.type"));
      r.status = reduce_status_from_token(parts[2]);
      r.achieved_rs = support::parse_int(parts[3], "g.rs");
      r.arcs_added = support::parse_int(parts[4], "g.arcs");
      data->rows.push_back(r);
    });
    out->data = std::move(data);
    return true;
  }

  void render_result_fields(const ResultPayload& p,
                            std::ostream& os) const override {
    os << " success=" << (p.success ? 1 : 0);
    // Data-free (cancelled-waiter) payloads carry no operation fields (see
    // minreg.cpp): a fabricated blocks=0 would read as a computed result.
    if (p.data == nullptr) return;
    const GlobalReduceData& d = globalreduce_data(p);
    int blocks = 0;
    for (const GlobalReduceRow& r : d.rows) {
      blocks = std::max(blocks, r.block + 1);
    }
    os << " blocks=" << blocks;
    for (const GlobalReduceRow& r : d.rows) {
      os << " b" << r.block << ".t" << r.type
         << ".status=" << reduce_status_token(r.status) << " b" << r.block
         << ".t" << r.type << ".rs=" << r.achieved_rs << " b" << r.block
         << ".t" << r.type << ".arcs=" << r.arcs_added;
    }
  }
};

}  // namespace

const Operation& globalreduce_operation() {
  static const GlobalReduceOperation op;
  return op;
}

const GlobalReduceData& globalreduce_data(const ResultPayload& p) {
  return ops::typed_data<GlobalReduceData>(p, "globalreduce");
}

Request make_globalreduce_request(std::shared_ptr<const cfg::Cfg> program,
                                  std::vector<int> limits, int margin,
                                  core::PipelineOptions opts) {
  Request req;
  req.op = &globalreduce_operation();
  req.program = std::move(program);
  auto box = std::make_shared<GlobalReduceOpOptions>();
  box->limits = std::move(limits);
  box->margin = margin;
  box->pipeline = opts;
  req.options = std::move(box);
  return req;
}

}  // namespace rs::service
