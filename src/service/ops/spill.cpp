#include "service/ops/spill.hpp"

#include <ostream>
#include <utility>

#include "ddg/io.hpp"
#include "graph/paths.hpp"
#include "service/codec.hpp"
#include "service/ops/common.hpp"
#include "support/assert.hpp"
#include "support/parse.hpp"

namespace rs::service {

namespace {

const SpillOpOptions& opts_of(const Request& req) {
  return ops::typed_options<SpillOpOptions>(req, "spill");
}

class SpillOperation final : public Operation {
 public:
  std::string_view name() const override { return "spill"; }
  std::uint64_t digest_tag() const override { return 3; }
  std::string_view synopsis() const override {
    return "limits=<n>[,<n>...] [max_spills=<n>] [emit=0|1]";
  }
  std::string_view example_options() const override { return "limits=2,2"; }

  bool accepts_option(std::string_view key) const override {
    return key == "limits" || key == "max_spills" || key == "emit";
  }

  void parse_options(const std::map<std::string, std::string>& fields,
                     Request* req) const override {
    auto opts = std::make_shared<SpillOpOptions>();
    const auto it = fields.find("limits");
    RS_REQUIRE(it != fields.end(), "spill requires limits=<n>[,<n>...]");
    opts->limits = support::parse_int_list(it->second, ',', "limits");
    RS_REQUIRE(!opts->limits.empty(), "limits= must name at least one limit");
    if (const auto m = fields.find("max_spills"); m != fields.end()) {
      opts->max_spills = support::parse_int(m->second, "max_spills");
      RS_REQUIRE(opts->max_spills >= 0, "max_spills= must be >= 0");
    }
    req->want_ddg = ops::flag_from(fields, "emit", false);
    req->options = std::move(opts);
  }

  void digest_options(const Request& req, OptionDigest* d) const override {
    const SpillOpOptions& o = opts_of(req);
    d->add(static_cast<std::uint64_t>(o.max_spills));
    d->add(o.limits.size());
    for (const int l : o.limits) d->add(static_cast<std::uint64_t>(l) + 1);
  }

  void run(const Request& req, const ddg::Ddg& normalized, const RunEnv& env,
           const support::SolveContext& solve,
           ResultPayload* out) const override {
    static_cast<void>(env);  // single-block sequential pipeline; no fan-out
    const SpillOpOptions& o = opts_of(req);
    RS_REQUIRE(static_cast<int>(o.limits.size()) == normalized.type_count(),
               "need " + std::to_string(normalized.type_count()) +
                   " register limits, got " +
                   std::to_string(o.limits.size()));
    auto data = std::make_shared<SpillData>();
    ddg::Ddg cur = normalized;
    bool all_fit = true;
    for (ddg::RegType t = 0; t < cur.type_count(); ++t) {
      const core::TypeContext ctx(cur, t);
      core::SpillOptions sopts;
      sopts.max_spills = o.max_spills;
      core::SpillResult r =
          core::spill_and_reduce(ctx, o.limits[t], sopts, solve);
      out->stats.merge(r.stats);
      data->per_type.push_back(
          TypeSpill{t, r.status, r.spills_inserted, r.achieved_rs});
      const bool fit = r.status == core::ReduceStatus::AlreadyFits ||
                       r.status == core::ReduceStatus::Reduced;
      all_fit = all_fit && fit;
      cur = std::move(r.out);
    }
    data->critical_path =
        static_cast<long long>(graph::critical_path(cur.graph()));
    out->success = all_fit;
    if (!all_fit) out->error = "spill budget exhausted before limits held";
    out->out_ddg = ddg::to_text(cur);
    out->data = std::move(data);
  }

  void encode_payload_fields(const ResultPayload& p,
                             std::ostream& os) const override {
    const SpillData& d = spill_data(p);
    encode_entries(os, "ns", "s", d.per_type.size(),
                   [&d](std::size_t i, std::ostream& out) {
                     const TypeSpill& t = d.per_type[i];
                     out << t.type << ':' << reduce_status_token(t.status)
                         << ':' << t.spills_inserted << ':' << t.achieved_rs;
                   });
    os << " scp=" << d.critical_path;
  }

  bool decode_payload_fields(const std::map<std::string, std::string>& fields,
                             ResultPayload* out) const override {
    auto data = std::make_shared<SpillData>();
    decode_entries(fields, "ns", "s", 4,
                   [&data](const std::vector<std::string>& parts) {
      TypeSpill t;
      t.type = static_cast<ddg::RegType>(support::parse_int(parts[0], "s.type"));
      t.status = reduce_status_from_token(parts[1]);
      t.spills_inserted = support::parse_int(parts[2], "s.spills");
      t.achieved_rs = support::parse_int(parts[3], "s.rs");
      data->per_type.push_back(t);
    });
    data->critical_path = require_ll(fields, "scp");
    out->data = std::move(data);
    return true;
  }

  void render_result_fields(const ResultPayload& p,
                            std::ostream& os) const override {
    os << " success=" << (p.success ? 1 : 0);
    // Data-free (cancelled-waiter) payloads carry no operation fields: a
    // fabricated cp=0 would read as a computed result.
    if (p.data == nullptr) return;
    const SpillData& d = spill_data(p);
    for (const TypeSpill& t : d.per_type) {
      os << " t" << t.type << ".status=" << reduce_status_token(t.status)
         << " t" << t.type << ".spills=" << t.spills_inserted << " t"
         << t.type << ".rs=" << t.achieved_rs;
    }
    os << " cp=" << d.critical_path;
  }
};

}  // namespace

const Operation& spill_operation() {
  static const SpillOperation op;
  return op;
}

const SpillData& spill_data(const ResultPayload& p) {
  return ops::typed_data<SpillData>(p, "spill");
}

Request make_spill_request(ddg::Ddg ddg, std::vector<int> limits,
                           int max_spills) {
  Request req;
  req.op = &spill_operation();
  req.ddg = std::move(ddg);
  auto box = std::make_shared<SpillOpOptions>();
  box->limits = std::move(limits);
  box->max_spills = max_spills;
  req.options = std::move(box);
  return req;
}

}  // namespace rs::service
