#include "service/ops/analyze.hpp"

#include <ostream>

#include "service/codec.hpp"
#include "service/ops/common.hpp"
#include "support/assert.hpp"
#include "support/parse.hpp"

namespace rs::service {

namespace {

const AnalyzeOpOptions& opts_of(const Request& req) {
  return ops::typed_options<AnalyzeOpOptions>(req, "analyze");
}

class AnalyzeOperation final : public Operation {
 public:
  std::string_view name() const override { return "analyze"; }
  // Grandfathered from RequestKind::Analyze == 0: keeps every pre-registry
  // cache key (memory and disk) addressable.
  std::uint64_t digest_tag() const override { return 0; }
  std::string_view synopsis() const override {
    return "[engine=greedy|exact|ilp|portfolio]";
  }
  std::string_view example_options() const override { return ""; }

  bool accepts_option(std::string_view key) const override {
    return key == "engine";
  }

  void parse_options(const std::map<std::string, std::string>& fields,
                     Request* req) const override {
    auto opts = std::make_shared<AnalyzeOpOptions>();
    if (const auto it = fields.find("engine"); it != fields.end()) {
      opts->core.engine = ops::engine_from_token(it->second);
    }
    req->options = std::move(opts);
  }

  void digest_options(const Request& req, OptionDigest* d) const override {
    const core::AnalyzeOptions& o = opts_of(req).core;
    d->add(static_cast<std::uint64_t>(o.engine));
    d->add(static_cast<std::uint64_t>(o.greedy.refine_passes));
  }

  void run(const Request& req, const ddg::Ddg& normalized, const RunEnv& env,
           const support::SolveContext& solve,
           ResultPayload* out) const override {
    const core::SaturationReport report =
        core::analyze(normalized, opts_of(req).core, solve, ops::exec_from(env));
    out->stats = report.stats;
    ops::fill_race(report.portfolio, out);
    auto data = std::make_shared<AnalyzeData>();
    for (const core::TypeSaturation& t : report.per_type) {
      data->per_type.push_back(
          TypeAnalysis{t.type, t.value_count, t.rs, t.proven});
    }
    out->data = std::move(data);
  }

  void encode_payload_fields(const ResultPayload& p,
                             std::ostream& os) const override {
    const AnalyzeData& d = analyze_data(p);
    encode_entries(os, "na", "a", d.per_type.size(),
                   [&d](std::size_t i, std::ostream& out) {
                     const TypeAnalysis& t = d.per_type[i];
                     out << t.type << ':' << t.value_count << ':' << t.rs
                         << ':' << (t.proven ? 1 : 0);
                   });
    // Pre-registry records carried both entry counts for every kind;
    // keeping the empty one preserves byte-identical encodings across the
    // format transition (old and new writers produce the same file).
    os << " nr=0";
  }

  bool decode_payload_fields(const std::map<std::string, std::string>& fields,
                             ResultPayload* out) const override {
    if (require_ll(fields, "nr") != 0) return false;
    auto data = std::make_shared<AnalyzeData>();
    decode_entries(fields, "na", "a", 4,
                   [&data](const std::vector<std::string>& parts) {
      TypeAnalysis t;
      t.type = static_cast<ddg::RegType>(support::parse_int(parts[0], "a.type"));
      t.value_count = support::parse_int(parts[1], "a.vals");
      t.rs = support::parse_int(parts[2], "a.rs");
      const int proven = support::parse_int(parts[3], "a.proven");
      RS_REQUIRE(proven == 0 || proven == 1, "a.proven must be 0 or 1");
      t.proven = proven == 1;
      data->per_type.push_back(t);
    });
    out->data = std::move(data);
    return true;
  }

  void render_result_fields(const ResultPayload& p,
                            std::ostream& os) const override {
    for (const TypeAnalysis& t : analyze_data(p).per_type) {
      os << " t" << t.type << ".vals=" << t.value_count << " t" << t.type
         << ".rs=" << t.rs << " t" << t.type
         << ".proven=" << (t.proven ? 1 : 0);
    }
  }
};

}  // namespace

const Operation& analyze_operation() {
  static const AnalyzeOperation op;
  return op;
}

const AnalyzeData& analyze_data(const ResultPayload& p) {
  return ops::typed_data<AnalyzeData>(p, "analyze");
}

Request make_analyze_request(ddg::Ddg ddg, core::AnalyzeOptions opts) {
  Request req;
  req.op = &analyze_operation();
  req.ddg = std::move(ddg);
  auto box = std::make_shared<AnalyzeOpOptions>();
  box->core = opts;
  req.options = std::move(box);
  return req;
}

}  // namespace rs::service
