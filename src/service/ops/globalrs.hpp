// The `globalrs` operation: global register saturation of an acyclic CFG
// (the paper's section 6) — per-block RS on the expanded DAGs plus the
// global per-type maxima — the first PayloadKind::Program workload of the
// service spine.
#pragma once

#include <memory>
#include <vector>

#include "cfg/global_rs.hpp"
#include "service/engine.hpp"

namespace rs::service {

/// One (block, type) row of a global-RS result. Blocks are numbered in
/// *canonical* order — sorted by the expanded block's structural
/// fingerprint, not program order — so the payload stays invariant under
/// block reordering, the same way DDG payloads stay invariant under node
/// renumbering (block names, like node names, never enter a payload).
struct GlobalRsRow {
  int block = 0;
  ddg::RegType type = 0;
  int value_count = 0;
  int rs = 0;
  bool proven = false;
};

struct GlobalRsData : OpData {
  /// Grouped by block ascending, type ascending within a block.
  std::vector<GlobalRsRow> rows;

  std::size_t bytes() const override {
    return sizeof(GlobalRsData) + rows.capacity() * sizeof(GlobalRsRow);
  }
};

struct GlobalRsOpOptions : OpOptions {
  core::AnalyzeOptions core;
};

const Operation& globalrs_operation();

/// Typed view of a globalrs payload's data; empty instance for data-free
/// payloads (see ops::typed_data).
const GlobalRsData& globalrs_data(const ResultPayload& p);

/// Direct-construction convenience for engine callers (tests, benches).
Request make_globalrs_request(std::shared_ptr<const cfg::Cfg> program,
                              core::AnalyzeOptions opts = {});

namespace ops {

/// Block indices of `cfg` sorted by their expanded DAG's fingerprint (ties
/// keep program order — tied blocks are isomorphic, so their rows carry
/// identical metrics and the tie-break cannot leak input order into the
/// payload bytes). Shared by the program operations so their row order
/// agrees.
std::vector<int> canonical_block_order(const cfg::Cfg& cfg);

}  // namespace ops

}  // namespace rs::service
