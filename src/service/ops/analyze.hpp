// The `analyze` operation: per-type register saturation (the paper's RS
// computation), the original workload of the service spine.
#pragma once

#include <vector>

#include "core/saturation.hpp"
#include "service/engine.hpp"

namespace rs::service {

struct TypeAnalysis {
  ddg::RegType type = 0;
  int value_count = 0;
  int rs = 0;
  bool proven = false;
};

struct AnalyzeData : OpData {
  std::vector<TypeAnalysis> per_type;

  std::size_t bytes() const override {
    return sizeof(AnalyzeData) + per_type.capacity() * sizeof(TypeAnalysis);
  }
};

struct AnalyzeOpOptions : OpOptions {
  core::AnalyzeOptions core;
};

const Operation& analyze_operation();

/// Typed view of an analyze payload's data; throws unless the payload was
/// produced by the analyze operation (or is data-free, e.g. cancelled
/// before computing — then returns an empty instance).
const AnalyzeData& analyze_data(const ResultPayload& p);

/// Direct-construction convenience for engine callers (tests, benches).
Request make_analyze_request(ddg::Ddg ddg, core::AnalyzeOptions opts = {});

}  // namespace rs::service
