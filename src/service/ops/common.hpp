// Shared helpers for service operations (service/ops/*.cpp): option
// parsing and the typed accessors for the per-op options/data boxes.
#pragma once

#include <map>
#include <string>

#include "core/saturation.hpp"
#include "service/engine.hpp"
#include "support/assert.hpp"

namespace rs::service::ops {

/// The operation's typed view of Request::options; the operation's
/// defaults when the box is null (direct engine callers may skip
/// parse_options), a precondition failure when it holds another
/// operation's type.
template <class T>
const T& typed_options(const Request& req, const char* op_name) {
  static const T kDefaults;
  if (req.options == nullptr) return kDefaults;
  const auto* typed = dynamic_cast<const T*>(req.options.get());
  RS_REQUIRE(typed != nullptr,
             std::string(op_name) + " request carries foreign options");
  return *typed;
}

/// The operation's typed view of ResultPayload::data. Data-free payloads
/// (a waiter cancelled before anything was computed) read as an empty
/// instance; encoders/renderers must emit no fabricated scalars for those
/// (check p.data != nullptr where a zero would look like a result).
template <class T>
const T& typed_data(const ResultPayload& p, const char* op_name) {
  if (p.data == nullptr) {
    static const T kEmpty;
    return kEmpty;
  }
  const auto* typed = dynamic_cast<const T*>(p.data.get());
  RS_REQUIRE(typed != nullptr,
             std::string("payload does not carry ") + op_name + " data");
  return *typed;
}

/// Optional 0|1 flag with a fallback default; throws on any other value.
inline bool flag_from(const std::map<std::string, std::string>& fields,
                      const std::string& key, bool fallback) {
  const auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  RS_REQUIRE(it->second == "0" || it->second == "1",
             key + "= must be 0 or 1, got '" + it->second + "'");
  return it->second == "1";
}

/// engine= token to RS engine; throws on an unknown token.
inline core::RsEngine engine_from_token(const std::string& e) {
  if (e == "greedy") return core::RsEngine::Greedy;
  if (e == "exact") return core::RsEngine::ExactCombinatorial;
  if (e == "ilp") return core::RsEngine::ExactIlp;
  if (e == "portfolio") return core::RsEngine::Portfolio;
  RS_REQUIRE(false, "unknown engine '" + e + "' (greedy|exact|ilp|portfolio)");
  return core::RsEngine::Greedy;
}

/// RunEnv to the core execution descriptor (pool + jobs cap).
inline core::Exec exec_from(const RunEnv& env) {
  return core::Exec{env.pool, env.jobs};
}

/// Copies a core tally into the payload's service-side telemetry block
/// (kept as plain scalars so engine.hpp stays free of core solver types).
inline void fill_race(const core::PortfolioTally& tally, ResultPayload* out) {
  out->race.races = tally.races;
  for (int i = 0; i < core::kStrategyCount; ++i) {
    out->race.wins[i] = tally.wins[i];
  }
  out->race.losers_cancelled = tally.losers_cancelled;
}

}  // namespace rs::service::ops
