#include "service/ops/schedule.hpp"

#include <ostream>

#include "sched/lifetime.hpp"
#include "sched/schedule.hpp"
#include "service/codec.hpp"
#include "service/ops/common.hpp"
#include "support/assert.hpp"
#include "support/parse.hpp"

namespace rs::service {

namespace {

const ScheduleOpOptions& opts_of(const Request& req) {
  return ops::typed_options<ScheduleOpOptions>(req, "schedule");
}

class ScheduleOperation final : public Operation {
 public:
  std::string_view name() const override { return "schedule"; }
  std::uint64_t digest_tag() const override { return 4; }
  std::string_view synopsis() const override { return "[width=<n>]"; }
  std::string_view example_options() const override { return ""; }

  bool accepts_option(std::string_view key) const override {
    return key == "width";
  }

  void parse_options(const std::map<std::string, std::string>& fields,
                     Request* req) const override {
    auto opts = std::make_shared<ScheduleOpOptions>();
    if (const auto it = fields.find("width"); it != fields.end()) {
      opts->issue_width = support::parse_int(it->second, "width");
      RS_REQUIRE(opts->issue_width > 0, "width= must be positive");
    }
    req->options = std::move(opts);
  }

  void digest_options(const Request& req, OptionDigest* d) const override {
    d->add(static_cast<std::uint64_t>(opts_of(req).issue_width));
  }

  void run(const Request& req, const ddg::Ddg& normalized, const RunEnv& env,
           const support::SolveContext& solve,
           ResultPayload* out) const override {
    static_cast<void>(env);    // polynomial single solve; nothing to race
    static_cast<void>(solve);  // polynomial; completes within any budget
    sched::Resources res;
    res.issue_width = opts_of(req).issue_width;
    const sched::Schedule sigma = sched::list_schedule(normalized, res);
    auto data = std::make_shared<ScheduleData>();
    data->makespan =
        static_cast<long long>(sched::makespan(normalized, sigma));
    for (ddg::RegType t = 0; t < normalized.type_count(); ++t) {
      const ddg::ValueSet values(normalized, t);
      data->per_type.push_back(TypeSchedule{
          t, values.count(), sched::register_need(normalized, t, sigma)});
    }
    out->stats.solves = 1;
    out->data = std::move(data);
  }

  void encode_payload_fields(const ResultPayload& p,
                             std::ostream& os) const override {
    const ScheduleData& d = schedule_data(p);
    encode_entries(os, "nc", "c", d.per_type.size(),
                   [&d](std::size_t i, std::ostream& out) {
                     const TypeSchedule& t = d.per_type[i];
                     out << t.type << ':' << t.value_count << ':'
                         << t.max_live;
                   });
    os << " mk=" << d.makespan;
  }

  bool decode_payload_fields(const std::map<std::string, std::string>& fields,
                             ResultPayload* out) const override {
    auto data = std::make_shared<ScheduleData>();
    decode_entries(fields, "nc", "c", 3,
                   [&data](const std::vector<std::string>& parts) {
      TypeSchedule t;
      t.type = static_cast<ddg::RegType>(support::parse_int(parts[0], "c.type"));
      t.value_count = support::parse_int(parts[1], "c.vals");
      t.max_live = support::parse_int(parts[2], "c.maxlive");
      data->per_type.push_back(t);
    });
    data->makespan = require_ll(fields, "mk");
    out->data = std::move(data);
    return true;
  }

  void render_result_fields(const ResultPayload& p,
                            std::ostream& os) const override {
    // Data-free (cancelled-waiter) payloads carry no operation fields: a
    // fabricated makespan=0 would read as a computed result.
    if (p.data == nullptr) return;
    const ScheduleData& d = schedule_data(p);
    os << " makespan=" << d.makespan;
    for (const TypeSchedule& t : d.per_type) {
      os << " t" << t.type << ".vals=" << t.value_count << " t" << t.type
         << ".maxlive=" << t.max_live;
    }
  }
};

}  // namespace

const Operation& schedule_operation() {
  static const ScheduleOperation op;
  return op;
}

const ScheduleData& schedule_data(const ResultPayload& p) {
  return ops::typed_data<ScheduleData>(p, "schedule");
}

Request make_schedule_request(ddg::Ddg ddg, int issue_width) {
  Request req;
  req.op = &schedule_operation();
  req.ddg = std::move(ddg);
  auto box = std::make_shared<ScheduleOpOptions>();
  box->issue_width = issue_width;
  req.options = std::move(box);
  return req;
}

}  // namespace rs::service
