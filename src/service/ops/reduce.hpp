// The `reduce` operation: the paper's figure-1 RS reduction pipeline
// (core::ensure_limits) against per-type register limits.
#pragma once

#include <vector>

#include "core/saturation.hpp"
#include "service/engine.hpp"

namespace rs::service {

struct TypeReduce {
  ddg::RegType type = 0;
  core::ReduceStatus status = core::ReduceStatus::LimitHit;
  int achieved_rs = 0;
  int arcs_added = 0;
  long long ilp_loss = 0;
};

struct ReduceData : OpData {
  std::vector<TypeReduce> per_type;

  std::size_t bytes() const override {
    return sizeof(ReduceData) + per_type.capacity() * sizeof(TypeReduce);
  }
};

struct ReduceOpOptions : OpOptions {
  core::PipelineOptions pipeline;
  /// Per-type register limits; size must equal the DDG's type_count.
  std::vector<int> limits;
};

/// Short token for a reduce outcome (fits|reduced|spill|limit). Shared with
/// the spill operation, whose per-type statuses use the same vocabulary.
const char* reduce_status_token(core::ReduceStatus s);
/// Inverse of reduce_status_token; throws on an unknown token.
core::ReduceStatus reduce_status_from_token(const std::string& tok);

const Operation& reduce_operation();

/// Typed view of a reduce payload's data; throws unless the payload was
/// produced by the reduce operation (data-free payloads decode as empty).
const ReduceData& reduce_data(const ResultPayload& p);

/// Direct-construction convenience for engine callers (tests, benches).
Request make_reduce_request(ddg::Ddg ddg, std::vector<int> limits,
                            core::PipelineOptions opts = {});

}  // namespace rs::service
