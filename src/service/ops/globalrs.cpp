#include "service/ops/globalrs.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <ostream>
#include <utility>

#include "cfg/canon.hpp"
#include "ddg/canon.hpp"
#include "service/codec.hpp"
#include "service/ops/common.hpp"
#include "support/assert.hpp"
#include "support/parse.hpp"

namespace rs::service {

namespace ops {

std::vector<int> canonical_block_order(const cfg::Cfg& cfg) {
  std::vector<std::pair<std::array<std::uint64_t, 2>, int>> keyed;
  keyed.reserve(cfg.block_count());
  const std::vector<ddg::Fingerprint> fps = cfg::block_fingerprints(cfg);
  for (int b = 0; b < cfg.block_count(); ++b) {
    keyed.push_back({{fps[b].hi, fps[b].lo}, b});
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<int> order;
  order.reserve(keyed.size());
  for (const auto& [key, b] : keyed) {
    static_cast<void>(key);
    order.push_back(b);
  }
  return order;
}

}  // namespace ops

namespace {

const GlobalRsOpOptions& opts_of(const Request& req) {
  return ops::typed_options<GlobalRsOpOptions>(req, "globalrs");
}

class GlobalRsOperation final : public Operation {
 public:
  std::string_view name() const override { return "globalrs"; }
  std::uint64_t digest_tag() const override { return 5; }
  PayloadKind payload_kind() const override { return PayloadKind::Program; }
  std::string_view synopsis() const override {
    return "[engine=greedy|exact|ilp|portfolio]";
  }
  std::string_view example_options() const override { return ""; }

  bool accepts_option(std::string_view key) const override {
    return key == "engine";
  }

  void parse_options(const std::map<std::string, std::string>& fields,
                     Request* req) const override {
    auto opts = std::make_shared<GlobalRsOpOptions>();
    if (const auto it = fields.find("engine"); it != fields.end()) {
      opts->core.engine = ops::engine_from_token(it->second);
    }
    req->options = std::move(opts);
  }

  void digest_options(const Request& req, OptionDigest* d) const override {
    const core::AnalyzeOptions& o = opts_of(req).core;
    d->add(static_cast<std::uint64_t>(o.engine));
    d->add(static_cast<std::uint64_t>(o.greedy.refine_passes));
  }

  void run(const Request& req, const ddg::Ddg& normalized, const RunEnv& env,
           const support::SolveContext& solve,
           ResultPayload* out) const override {
    static_cast<void>(normalized);
    RS_REQUIRE(req.program != nullptr,
               "globalrs request carries no program payload");
    const cfg::Cfg& prog = *req.program;
    const cfg::GlobalReport report =
        cfg::analyze(prog, opts_of(req).core, solve, ops::exec_from(env));
    out->stats = report.stats;
    ops::fill_race(report.portfolio, out);
    out->race.blocks_parallel = report.blocks_parallel;
    auto data = std::make_shared<GlobalRsData>();
    const std::vector<int> order = ops::canonical_block_order(prog);
    for (std::size_t i = 0; i < order.size(); ++i) {
      const cfg::BlockSaturation& bs = report.blocks[order[i]];
      for (const core::TypeSaturation& t : bs.per_type) {
        data->rows.push_back(GlobalRsRow{static_cast<int>(i), t.type,
                                         t.value_count, t.rs, t.proven});
      }
    }
    out->data = std::move(data);
  }

  void encode_payload_fields(const ResultPayload& p,
                             std::ostream& os) const override {
    const GlobalRsData& d = globalrs_data(p);
    encode_entries(os, "ng", "g", d.rows.size(),
                   [&d](std::size_t i, std::ostream& out) {
                     const GlobalRsRow& r = d.rows[i];
                     out << r.block << ':' << r.type << ':' << r.value_count
                         << ':' << r.rs << ':' << (r.proven ? 1 : 0);
                   });
  }

  bool decode_payload_fields(const std::map<std::string, std::string>& fields,
                             ResultPayload* out) const override {
    auto data = std::make_shared<GlobalRsData>();
    decode_entries(fields, "ng", "g", 5,
                   [&data](const std::vector<std::string>& parts) {
      GlobalRsRow r;
      r.block = support::parse_int(parts[0], "g.block");
      r.type = static_cast<ddg::RegType>(support::parse_int(parts[1], "g.type"));
      r.value_count = support::parse_int(parts[2], "g.vals");
      r.rs = support::parse_int(parts[3], "g.rs");
      const int proven = support::parse_int(parts[4], "g.proven");
      RS_REQUIRE(proven == 0 || proven == 1, "g.proven must be 0 or 1");
      r.proven = proven == 1;
      data->rows.push_back(r);
    });
    out->data = std::move(data);
    return true;
  }

  void render_result_fields(const ResultPayload& p,
                            std::ostream& os) const override {
    // Data-free (cancelled-waiter) payloads carry no operation fields: a
    // fabricated blocks=0 / all_proven=1 would read as a computed result.
    if (p.data == nullptr) return;
    const GlobalRsData& d = globalrs_data(p);
    int blocks = 0;
    for (const GlobalRsRow& r : d.rows) blocks = std::max(blocks, r.block + 1);
    os << " blocks=" << blocks;
    // Per-block rows first, then the global per-type maxima and the
    // all-proven verdict — all derived from the rows, so decoded payloads
    // render identically by construction.
    std::map<ddg::RegType, int> global;
    bool all_proven = true;
    for (const GlobalRsRow& r : d.rows) {
      os << " b" << r.block << ".t" << r.type << ".vals=" << r.value_count
         << " b" << r.block << ".t" << r.type << ".rs=" << r.rs << " b"
         << r.block << ".t" << r.type << ".proven=" << (r.proven ? 1 : 0);
      auto [it, fresh] = global.emplace(r.type, r.rs);
      if (!fresh) it->second = std::max(it->second, r.rs);
      all_proven = all_proven && r.proven;
    }
    for (const auto& [t, rs] : global) {
      os << " t" << t << ".rs=" << rs;
    }
    os << " all_proven=" << (all_proven ? 1 : 0);
  }
};

}  // namespace

const Operation& globalrs_operation() {
  static const GlobalRsOperation op;
  return op;
}

const GlobalRsData& globalrs_data(const ResultPayload& p) {
  return ops::typed_data<GlobalRsData>(p, "globalrs");
}

Request make_globalrs_request(std::shared_ptr<const cfg::Cfg> program,
                              core::AnalyzeOptions opts) {
  Request req;
  req.op = &globalrs_operation();
  req.program = std::move(program);
  auto box = std::make_shared<GlobalRsOpOptions>();
  box->core = opts;
  req.options = std::move(box);
  return req;
}

}  // namespace rs::service
