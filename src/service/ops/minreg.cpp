#include "service/ops/minreg.hpp"

#include <ostream>
#include <utility>

#include "core/portfolio.hpp"
#include "ddg/io.hpp"
#include "graph/paths.hpp"
#include "service/codec.hpp"
#include "service/ops/common.hpp"
#include "support/assert.hpp"
#include "support/parse.hpp"

namespace rs::service {

namespace {

const MinRegOpOptions& opts_of(const Request& req) {
  return ops::typed_options<MinRegOpOptions>(req, "minreg");
}

class MinRegOperation final : public Operation {
 public:
  std::string_view name() const override { return "minreg"; }
  std::uint64_t digest_tag() const override { return 2; }
  std::string_view synopsis() const override {
    return "[cp=<n>] [engine=exact|portfolio] [emit=0|1]";
  }
  std::string_view example_options() const override { return ""; }

  bool accepts_option(std::string_view key) const override {
    return key == "cp" || key == "engine" || key == "emit";
  }

  void parse_options(const std::map<std::string, std::string>& fields,
                     Request* req) const override {
    auto opts = std::make_shared<MinRegOpOptions>();
    if (const auto it = fields.find("cp"); it != fields.end()) {
      opts->cp_budget =
          static_cast<sched::Time>(support::parse_ll(it->second, "cp"));
      // cp=0 is the documented spelling of the default (critical-path
      // budget); it digests identically to an unset cp=, as it must —
      // they name the same solve.
      RS_REQUIRE(opts->cp_budget >= 0, "cp= must be >= 0");
    }
    if (const auto it = fields.find("engine"); it != fields.end()) {
      // Minimization has no greedy/ilp engine; reject rather than silently
      // run something other than what was asked for.
      RS_REQUIRE(it->second == "exact" || it->second == "portfolio",
                 "minreg engine= must be exact or portfolio, got '" +
                     it->second + "'");
      opts->portfolio = it->second == "portfolio";
    }
    req->want_ddg = ops::flag_from(fields, "emit", false);
    req->options = std::move(opts);
  }

  void digest_options(const Request& req, OptionDigest* d) const override {
    d->add(static_cast<std::uint64_t>(opts_of(req).cp_budget));
    // Conditional so every pre-portfolio cache entry keeps its key: the
    // default engine digests exactly as before, and portfolio results are
    // byte-identical to exact ones anyway — the split only separates their
    // canonicalized (zeroed) stats counters from exact's real ones.
    if (opts_of(req).portfolio) d->add(1);
  }

  void run(const Request& req, const ddg::Ddg& normalized, const RunEnv& env,
           const support::SolveContext& solve,
           ResultPayload* out) const override {
    const MinRegOpOptions& o = opts_of(req);
    if (o.cp_budget > 0) {
      const auto cp = graph::critical_path(normalized.graph());
      RS_REQUIRE(o.cp_budget >= cp,
                 "cp=" + std::to_string(o.cp_budget) +
                     " is below the critical path (" + std::to_string(cp) +
                     "); no schedule fits");
    }
    auto data = std::make_shared<MinRegData>();
    ddg::Ddg cur = normalized;
    bool all_proven = true;
    core::PortfolioTally tally;
    for (ddg::RegType t = 0; t < cur.type_count(); ++t) {
      const core::TypeContext ctx(cur, t);
      const core::SrcOptions sopts;
      core::MinRegResult r;
      if (o.portfolio) {
        core::MinRegRaceResult raced = core::minreg_portfolio(
            ctx, o.cp_budget, sopts, core::ArcLatencyMode::General, solve,
            ops::exec_from(env));
        r = std::move(raced.result);
        tally.merge(raced.tally);
      } else {
        r = core::minimize_register_need(
            ctx, o.cp_budget, sopts, core::ArcLatencyMode::General, solve);
      }
      out->stats.merge(r.stats);
      data->per_type.push_back(
          TypeMinReg{t, r.min_need, r.proven, r.arcs_added});
      all_proven = all_proven && r.proven;
      // Later types minimize on the extended DAG, so the final DAG freezes
      // every type's minimal-need schedule simultaneously.
      if (r.extended.has_value()) cur = std::move(*r.extended);
    }
    ops::fill_race(tally, out);
    data->critical_path =
        static_cast<long long>(graph::critical_path(cur.graph()));
    out->success = all_proven;
    out->out_ddg = ddg::to_text(cur);
    out->data = std::move(data);
  }

  void encode_payload_fields(const ResultPayload& p,
                             std::ostream& os) const override {
    const MinRegData& d = minreg_data(p);
    encode_entries(os, "nm", "m", d.per_type.size(),
                   [&d](std::size_t i, std::ostream& out) {
                     const TypeMinReg& t = d.per_type[i];
                     out << t.type << ':' << t.min_need << ':'
                         << (t.proven ? 1 : 0) << ':' << t.arcs_added;
                   });
    os << " mcp=" << d.critical_path;
  }

  bool decode_payload_fields(const std::map<std::string, std::string>& fields,
                             ResultPayload* out) const override {
    auto data = std::make_shared<MinRegData>();
    decode_entries(fields, "nm", "m", 4,
                   [&data](const std::vector<std::string>& parts) {
      TypeMinReg t;
      t.type = static_cast<ddg::RegType>(support::parse_int(parts[0], "m.type"));
      t.min_need = support::parse_int(parts[1], "m.need");
      const int proven = support::parse_int(parts[2], "m.proven");
      RS_REQUIRE(proven == 0 || proven == 1, "m.proven must be 0 or 1");
      t.proven = proven == 1;
      t.arcs_added = support::parse_int(parts[3], "m.arcs");
      data->per_type.push_back(t);
    });
    data->critical_path = require_ll(fields, "mcp");
    out->data = std::move(data);
    return true;
  }

  void render_result_fields(const ResultPayload& p,
                            std::ostream& os) const override {
    os << " success=" << (p.success ? 1 : 0);
    // Data-free (cancelled-waiter) payloads carry no operation fields: a
    // fabricated cp=0 would read as a computed result.
    if (p.data == nullptr) return;
    const MinRegData& d = minreg_data(p);
    for (const TypeMinReg& t : d.per_type) {
      os << " t" << t.type << ".need=" << t.min_need << " t" << t.type
         << ".proven=" << (t.proven ? 1 : 0) << " t" << t.type
         << ".arcs=" << t.arcs_added;
    }
    os << " cp=" << d.critical_path;
  }
};

}  // namespace

const Operation& minreg_operation() {
  static const MinRegOperation op;
  return op;
}

const MinRegData& minreg_data(const ResultPayload& p) {
  return ops::typed_data<MinRegData>(p, "minreg");
}

Request make_minreg_request(ddg::Ddg ddg, sched::Time cp_budget) {
  Request req;
  req.op = &minreg_operation();
  req.ddg = std::move(ddg);
  auto box = std::make_shared<MinRegOpOptions>();
  box->cp_budget = cp_budget;
  req.options = std::move(box);
  return req;
}

}  // namespace rs::service
