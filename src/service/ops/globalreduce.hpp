// The `globalreduce` operation: the figure-1 reduction applied per block
// of an acyclic CFG against limits[t] - margin (cfg::ensure_limits), the
// paper's section-6 recipe for register-safe global scheduling — a global
// allocation may need one register above per-block MAXLIVE for cross-block
// moves, so every block targets the decremented limit.
#pragma once

#include <memory>
#include <vector>

#include "cfg/global_rs.hpp"
#include "service/engine.hpp"
#include "service/ops/reduce.hpp"

namespace rs::service {

/// One (block, type) row; blocks numbered in canonical order (see
/// GlobalRsRow — same invariance rationale, same ordering helper).
struct GlobalReduceRow {
  int block = 0;
  ddg::RegType type = 0;
  core::ReduceStatus status = core::ReduceStatus::AlreadyFits;
  int achieved_rs = 0;
  int arcs_added = 0;
};

struct GlobalReduceData : OpData {
  std::vector<GlobalReduceRow> rows;

  std::size_t bytes() const override {
    return sizeof(GlobalReduceData) +
           rows.capacity() * sizeof(GlobalReduceRow);
  }
};

struct GlobalReduceOpOptions : OpOptions {
  std::vector<int> limits;
  int margin = 1;
  core::PipelineOptions pipeline;
};

const Operation& globalreduce_operation();

const GlobalReduceData& globalreduce_data(const ResultPayload& p);

/// Direct-construction convenience for engine callers (tests, benches).
Request make_globalreduce_request(std::shared_ptr<const cfg::Cfg> program,
                                  std::vector<int> limits, int margin = 1,
                                  core::PipelineOptions opts = {});

}  // namespace rs::service
