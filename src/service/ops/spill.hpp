// The `spill` operation: graph-level spill insertion, the paper's stated
// future work (section 7) — core::spill_and_reduce per register type:
// iteratively split a saturating value's lifetime through memory
// (store/reload pair) and re-run reduction until RS fits the limit or the
// spill budget is exhausted. Types run in order on the evolving DAG.
#pragma once

#include <vector>

#include "core/spill.hpp"
#include "service/engine.hpp"
#include "service/ops/reduce.hpp"

namespace rs::service {

struct TypeSpill {
  ddg::RegType type = 0;
  core::ReduceStatus status = core::ReduceStatus::LimitHit;
  int spills_inserted = 0;  // store/reload pairs added for this type
  /// Witnessed RS after spilling + reduction; for non-fit statuses the
  /// last witnessed estimate (above the limit), 0 = interrupted unknown.
  int achieved_rs = 0;
};

struct SpillData : OpData {
  std::vector<TypeSpill> per_type;
  /// Critical path of the final rewritten DAG.
  long long critical_path = 0;

  std::size_t bytes() const override {
    return sizeof(SpillData) + per_type.capacity() * sizeof(TypeSpill);
  }
};

struct SpillOpOptions : OpOptions {
  /// Per-type register limits; size must equal the DDG's type_count.
  std::vector<int> limits;
  /// Cap on inserted store/reload pairs per type before giving up.
  int max_spills = 8;
};

const Operation& spill_operation();

/// Typed view of a spill payload's data; throws unless the payload was
/// produced by the spill operation (data-free payloads decode as empty).
const SpillData& spill_data(const ResultPayload& p);

/// Direct-construction convenience for engine callers (tests, benches).
Request make_spill_request(ddg::Ddg ddg, std::vector<int> limits,
                           int max_spills = 8);

}  // namespace rs::service
