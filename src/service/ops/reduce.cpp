#include "service/ops/reduce.hpp"

#include <ostream>

#include "ddg/io.hpp"
#include "service/codec.hpp"
#include "service/ops/common.hpp"
#include "support/assert.hpp"
#include "support/parse.hpp"

namespace rs::service {

const char* reduce_status_token(core::ReduceStatus s) {
  switch (s) {
    case core::ReduceStatus::AlreadyFits: return "fits";
    case core::ReduceStatus::Reduced: return "reduced";
    case core::ReduceStatus::SpillNeeded: return "spill";
    case core::ReduceStatus::LimitHit: return "limit";
  }
  return "?";
}

core::ReduceStatus reduce_status_from_token(const std::string& tok) {
  using core::ReduceStatus;
  if (tok == "fits") return ReduceStatus::AlreadyFits;
  if (tok == "reduced") return ReduceStatus::Reduced;
  if (tok == "spill") return ReduceStatus::SpillNeeded;
  if (tok == "limit") return ReduceStatus::LimitHit;
  RS_REQUIRE(false, "unknown reduce status '" + tok + "'");
  return ReduceStatus::LimitHit;
}

namespace {

const ReduceOpOptions& opts_of(const Request& req) {
  return ops::typed_options<ReduceOpOptions>(req, "reduce");
}

class ReduceOperation final : public Operation {
 public:
  std::string_view name() const override { return "reduce"; }
  // Grandfathered from RequestKind::Reduce == 1 (see analyze.cpp).
  std::uint64_t digest_tag() const override { return 1; }
  std::string_view synopsis() const override {
    return "limits=<n>[,<n>...] [engine=greedy|exact|ilp|portfolio] "
           "[exact=0|1] [verify=0|1] [emit=0|1]";
  }
  std::string_view example_options() const override { return "limits=6,6"; }

  bool accepts_option(std::string_view key) const override {
    return key == "limits" || key == "engine" || key == "exact" ||
           key == "verify" || key == "emit";
  }

  void parse_options(const std::map<std::string, std::string>& fields,
                     Request* req) const override {
    auto opts = std::make_shared<ReduceOpOptions>();
    const auto it = fields.find("limits");
    RS_REQUIRE(it != fields.end(), "reduce requires limits=<n>[,<n>...]");
    opts->limits = support::parse_int_list(it->second, ',', "limits");
    RS_REQUIRE(!opts->limits.empty(), "limits= must name at least one limit");
    if (const auto e = fields.find("engine"); e != fields.end()) {
      opts->pipeline.analyze.engine = ops::engine_from_token(e->second);
    }
    opts->pipeline.exact_reduction = ops::flag_from(fields, "exact", false);
    opts->pipeline.verify = ops::flag_from(fields, "verify", true);
    req->want_ddg = ops::flag_from(fields, "emit", false);
    req->options = std::move(opts);
  }

  void digest_options(const Request& req, OptionDigest* d) const override {
    // The digest sequence reproduces the pre-registry Reduce digest
    // exactly, so every existing cache entry keeps its key.
    const ReduceOpOptions& o = opts_of(req);
    d->add(static_cast<std::uint64_t>(o.pipeline.analyze.engine));
    d->add(static_cast<std::uint64_t>(o.pipeline.analyze.greedy.refine_passes));
    d->add(static_cast<std::uint64_t>(o.pipeline.reduce.src.node_limit));
    d->add(static_cast<std::uint64_t>(o.pipeline.reduce.src.slack_limit));
    d->add(static_cast<std::uint64_t>(o.pipeline.reduce.greedy.refine_passes));
    d->add(static_cast<std::uint64_t>(o.pipeline.reduce.arc_mode));
    d->add(static_cast<std::uint64_t>(o.pipeline.reduce.rs_upper));
    d->add(static_cast<std::uint64_t>(o.pipeline.reduce.max_rounds));
    d->add(o.pipeline.exact_reduction ? 1 : 0);
    d->add(o.pipeline.verify ? 1 : 0);
    d->add(o.limits.size());
    for (const int l : o.limits) d->add(static_cast<std::uint64_t>(l) + 1);
  }

  void run(const Request& req, const ddg::Ddg& normalized, const RunEnv& env,
           const support::SolveContext& solve,
           ResultPayload* out) const override {
    const ReduceOpOptions& o = opts_of(req);
    RS_REQUIRE(static_cast<int>(o.limits.size()) == normalized.type_count(),
               "need " + std::to_string(normalized.type_count()) +
                   " register limits, got " +
                   std::to_string(o.limits.size()));
    const core::PipelineResult result = core::ensure_limits(
        normalized, o.limits, o.pipeline, solve, ops::exec_from(env));
    out->stats = result.stats;
    ops::fill_race(result.portfolio, out);
    out->success = result.success;
    if (!result.success) out->error = result.note;
    auto data = std::make_shared<ReduceData>();
    for (ddg::RegType t = 0; t < normalized.type_count(); ++t) {
      const core::ReduceResult& r = result.per_type[t];
      data->per_type.push_back(TypeReduce{
          t, r.status, r.achieved_rs, r.arcs_added,
          static_cast<long long>(r.ilp_loss())});
    }
    out->data = std::move(data);
    out->out_ddg = ddg::to_text(result.out);
  }

  void encode_payload_fields(const ResultPayload& p,
                             std::ostream& os) const override {
    const ReduceData& d = reduce_data(p);
    // na=0 kept for byte-identity with pre-registry records (analyze.cpp).
    os << " na=0";
    encode_entries(os, "nr", "r", d.per_type.size(),
                   [&d](std::size_t i, std::ostream& out) {
                     const TypeReduce& t = d.per_type[i];
                     out << t.type << ':' << reduce_status_token(t.status)
                         << ':' << t.achieved_rs << ':' << t.arcs_added << ':'
                         << t.ilp_loss;
                   });
  }

  bool decode_payload_fields(const std::map<std::string, std::string>& fields,
                             ResultPayload* out) const override {
    if (require_ll(fields, "na") != 0) return false;
    auto data = std::make_shared<ReduceData>();
    decode_entries(fields, "nr", "r", 5,
                   [&data](const std::vector<std::string>& parts) {
      TypeReduce t;
      t.type = static_cast<ddg::RegType>(support::parse_int(parts[0], "r.type"));
      t.status = reduce_status_from_token(parts[1]);
      t.achieved_rs = support::parse_int(parts[2], "r.rs");
      t.arcs_added = support::parse_int(parts[3], "r.arcs");
      t.ilp_loss = support::parse_ll(parts[4], "r.loss");
      data->per_type.push_back(t);
    });
    out->data = std::move(data);
    return true;
  }

  void render_result_fields(const ResultPayload& p,
                            std::ostream& os) const override {
    os << " success=" << (p.success ? 1 : 0);
    for (const TypeReduce& t : reduce_data(p).per_type) {
      os << " t" << t.type << ".status=" << reduce_status_token(t.status)
         << " t" << t.type << ".rs=" << t.achieved_rs << " t" << t.type
         << ".arcs=" << t.arcs_added << " t" << t.type
         << ".loss=" << t.ilp_loss;
    }
  }
};

}  // namespace

const Operation& reduce_operation() {
  static const ReduceOperation op;
  return op;
}

const ReduceData& reduce_data(const ResultPayload& p) {
  return ops::typed_data<ReduceData>(p, "reduce");
}

Request make_reduce_request(ddg::Ddg ddg, std::vector<int> limits,
                            core::PipelineOptions opts) {
  Request req;
  req.op = &reduce_operation();
  req.ddg = std::move(ddg);
  auto box = std::make_shared<ReduceOpOptions>();
  box->pipeline = opts;
  box->limits = std::move(limits);
  req.options = std::move(box);
  return req;
}

}  // namespace rs::service
