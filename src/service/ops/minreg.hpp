// The `minreg` operation: the literature's register *minimization*
// baseline the paper argues against (section 6, figure 2(b)) —
// core::minimize_register_need per register type, freezing each minimal-
// need schedule into the DAG via the Theorem-4.2 arc construction. Types
// are minimized in order on the evolving DAG, so later types respect the
// arcs earlier types added (the same composition ensure_limits uses).
#pragma once

#include <vector>

#include "core/min_reg.hpp"
#include "service/engine.hpp"

namespace rs::service {

struct TypeMinReg {
  ddg::RegType type = 0;
  int min_need = 0;     // minimal register need under the makespan budget
  bool proven = false;  // search not truncated
  int arcs_added = 0;   // Theorem-4.2 arcs freezing the witness schedule
};

struct MinRegData : OpData {
  std::vector<TypeMinReg> per_type;
  /// Critical path of the final extended DAG.
  long long critical_path = 0;

  std::size_t bytes() const override {
    return sizeof(MinRegData) + per_type.capacity() * sizeof(TypeMinReg);
  }
};

struct MinRegOpOptions : OpOptions {
  /// Makespan budget in cycles; <= 0 means the current DAG's critical path
  /// (the paper's footnote-4 "under critical path constraints").
  sched::Time cp_budget = 0;
  /// Race the upward ladder against a binary search on R (engine=portfolio)
  /// instead of running the ladder alone (engine=exact, the default). The
  /// greedy/ilp RS engines do not apply to minimization and are rejected at
  /// parse time.
  bool portfolio = false;
};

const Operation& minreg_operation();

/// Typed view of a minreg payload's data; throws unless the payload was
/// produced by the minreg operation (data-free payloads decode as empty).
const MinRegData& minreg_data(const ResultPayload& p);

/// Direct-construction convenience for engine callers (tests, benches).
Request make_minreg_request(ddg::Ddg ddg, sched::Time cp_budget = 0);

}  // namespace rs::service
