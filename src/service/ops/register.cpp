// The built-in operation roster. Adding a workload to the service means
// writing its src/service/ops/<name>.{hpp,cpp} and listing it here — the
// protocol parser, engine, codec, store and socket server pick it up
// through the registry without edits.
#include "service/operation.hpp"
#include "service/ops/analyze.hpp"
#include "service/ops/globalreduce.hpp"
#include "service/ops/globalrs.hpp"
#include "service/ops/minreg.hpp"
#include "service/ops/reduce.hpp"
#include "service/ops/schedule.hpp"
#include "service/ops/spill.hpp"

namespace rs::service {

std::vector<const Operation*> builtin_operations() {
  return {
      &analyze_operation(),  &reduce_operation(),   &minreg_operation(),
      &spill_operation(),    &schedule_operation(), &globalrs_operation(),
      &globalreduce_operation(),
  };
}

}  // namespace rs::service
