// SocketServer: a poll-based TCP front end streaming the service line
// protocol (service/protocol.hpp) — the `rsat serve` subsystem.
//
// One network thread multiplexes the listener and every client connection
// with poll(2); solves run on the shared AnalysisEngine thread pool, so a
// slow peer never blocks compute and a long solve never blocks the
// network. Per connection the server keeps an ordered queue of response
// slots (a pre-rendered ack/error line, or the future of a submitted
// request) and writes result lines back in request order as each future
// resolves — an interactive client sees its result as soon as it is ready,
// not at connection close.
//
// Protocol semantics over TCP:
//  * analyze/reduce lines submit to the engine exactly as `rsat batch`
//    does; unset id= takes a server-wide sequence number (connections
//    share one engine, one store, and one id namespace — an explicit
//    cancel id= therefore reaches a matching request on any connection).
//  * cancel answers immediately with its ack.
//  * stats answers with a live telemetry line (render_stats_line); like
//    every ack it is emitted in order behind this connection's earlier
//    slots, so the snapshot reflects at least everything the connection
//    already saw answered.
//  * drain's ack is emitted in order *behind this connection's* earlier
//    requests, so when the client reads "drained" everything it submitted
//    before the drain has already been answered. Other connections are
//    not stalled (unlike batch, which quiesces its single stream).
//  * malformed lines answer with a status=error result line; the
//    connection stays up.
//  * backpressure: a connection with max_pending_per_conn unanswered
//    requests stops being read until responses flush.
//
// Shutdown (shutdown() from any thread, or the should_stop poll — wired
// to SIGINT by rsat serve): stop accepting, cooperatively cancel every
// in-flight solve, flush every pending result line (stop=cancelled), then
// close all connections and return from run(). Peers that stop reading
// are given kDrainGraceSeconds before their connection is dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "service/engine.hpp"
#include "service/protocol.hpp"
#include "service/trace.hpp"
#include "support/socket.hpp"

namespace rs::service {

struct ServeConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; SocketServer::port() reports the real one.
  int port = 0;
  EngineConfig engine;
  ProtocolOptions protocol;
  /// When non-empty, the bound port is written here (atomic write-rename)
  /// once the server is listening — scripts wait for this file instead of
  /// racing the log output.
  std::string port_file;
  /// Unanswered-request cap per connection before reads pause.
  std::size_t max_pending_per_conn = 256;
  /// When non-empty, enables engine trace spans and streams one JSONL
  /// event per request to this file (service/trace.hpp).
  std::string trace_file;
  /// When non-empty, enables engine solve-log records and streams one JSONL
  /// record per request to this file (SolveLogRecord, service/trace.hpp).
  std::string solve_log_file;
  /// > 0 logs every request slower than this (wall-clock submit->respond)
  /// to stderr and counts it as serve.slow_requests.
  double slow_ms = 0;
  /// > 0 enables per-operation latency objectives: every completed response
  /// counts as slo.<op>.ok or slo.<op>.breach (millis vs this bound), and
  /// the `stats` verb gains slo_ms/slo.<op>.* error-budget fields.
  double slo_ms = 0;
};

/// Snapshot view over the server's serve.* registry counters (the same
/// registry AnalysisEngine::metrics() exposes, so the `stats` verb, the
/// exit summary, and --metrics-json all read one source of truth).
struct ServeStats {
  std::uint64_t connections = 0;   // accepted over the server's lifetime
  std::uint64_t requests = 0;      // analyze/reduce submissions
  std::uint64_t parse_errors = 0;  // lines answered with status=error
  std::uint64_t responses = 0;     // result/ack lines written
  std::uint64_t bytes_in = 0;      // payload bytes received
  std::uint64_t bytes_out = 0;     // payload bytes sent
  std::uint64_t backpressure_stalls = 0;  // read-pause edges (slot cap hit)
  std::uint64_t slow_requests = 0;  // responses over ServeConfig::slow_ms
  std::int64_t open_conns = 0;      // currently connected peers
};

class SocketServer {
 public:
  /// Grace period for flushing pending results to unresponsive peers
  /// during shutdown.
  static constexpr double kDrainGraceSeconds = 5.0;

  /// Longest accepted request line (inline ddg= payloads included). A
  /// connection that exceeds it mid-line is answered with an error; its
  /// remaining input is read and discarded (so the error line arrives
  /// over an orderly close instead of being lost to a RST) — otherwise a
  /// newline-free byte stream would grow the input buffer without bound.
  static constexpr std::size_t kMaxLineBytes = std::size_t{8} << 20;

  /// Binds and listens immediately (throws support::PreconditionError on
  /// bind failure) and writes port_file if configured; run() starts
  /// serving.
  explicit SocketServer(const ServeConfig& cfg);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  int port() const { return listener_.port(); }
  AnalysisEngine& engine() { return engine_; }

  /// Serves until shutdown() is called or `should_stop` (polled every
  /// loop iteration, ~20 ms) returns true, then performs the
  /// cancel-drain-close sequence described above. Call from one thread.
  void run(const std::function<bool()>& should_stop = {});

  /// Thread-safe: makes run() begin its drain-and-exit sequence.
  void shutdown() { stop_.store(true); }

  ServeStats serve_stats() const;

  /// Non-null when ServeConfig::trace_file is set.
  const TraceSink* trace_sink() const { return trace_sink_.get(); }

  /// Non-null when ServeConfig::solve_log_file is set.
  const TraceSink* solve_log_sink() const { return solve_log_sink_.get(); }

 private:
  struct Conn;

  // Concurrency discipline: the server holds no mutex on purpose. All
  // connection state (conns_, each Conn's buffers and slot queue, next_id_,
  // accept_backoff_) is owned by the single thread inside run(); the only
  // cross-thread channels are stop_ (an atomic flag set by shutdown()),
  // the engine's futures (resolved on pool workers, only *read* here), and
  // the lock-free metric references below. Adding a second network thread
  // means introducing support::Mutex + RSAT_GUARDED_BY here first — do not
  // reach for a bare std::mutex (lint rule `bare-mutex`).

  void accept_new();
  void read_conn(Conn& c);
  void process_lines(Conn& c);
  void handle_line(Conn& c, const std::string& line);
  void emit_error_line(Conn& c, const std::string& msg);
  void pump_ready(Conn& c);
  void flush_conn(Conn& c);
  /// Counts one response against the --slo-ms objective (slo.<op>.*).
  void record_slo(const Response& resp);
  /// " slo_ms=... slo.<op>.ok=... slo.<op>.breach=... slo.<op>.breach_rate=..."
  /// appended to the stats verb line when --slo-ms is set (name-sorted).
  std::string render_slo_fields() const;

  ServeConfig cfg_;
  AnalysisEngine engine_;
  support::ListenSocket listener_;
  std::unique_ptr<TraceSink> trace_sink_;
  std::unique_ptr<TraceSink> solve_log_sink_;
  std::atomic<bool> stop_{false};
  std::uint64_t next_id_ = 1;
  /// Loop iterations left to skip polling the listener after an accept
  /// failure that leaves the connection queued (e.g. fd exhaustion).
  int accept_backoff_ = 0;
  std::vector<std::unique_ptr<Conn>> conns_;

  // serve.* registry entries (registered in the engine's registry so the
  // whole process shares one metrics namespace). All owned by engine_'s
  // registry; cached here once at construction.
  support::Counter& connections_;
  support::Gauge& open_conns_;
  support::Counter& requests_;
  support::Counter& responses_;
  support::Counter& parse_errors_;
  support::Counter& bytes_in_;
  support::Counter& bytes_out_;
  support::Counter& backpressure_stalls_;
  support::Counter& slow_requests_;

  /// Per-operation SLO counters (slo.<op>.ok / slo.<op>.breach), lazily
  /// registered on an op's first completed response. Owned by the single
  /// network thread like all connection state; the counters themselves live
  /// in the engine registry so stats/metrics snapshots see them.
  struct SloMetrics {
    support::Counter* ok = nullptr;
    support::Counter* breach = nullptr;
  };
  std::map<std::string, SloMetrics> slo_;
};

}  // namespace rs::service
