#include "service/trace.hpp"

#include <cinttypes>
#include <cstdio>

#include "support/assert.hpp"
#include "support/timer.hpp"

namespace rs::service {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_ms(std::string& out, const char* key, double v) {
  if (v < 0) return;  // phase never entered: omit, don't write 0
  char buf[48];
  std::snprintf(buf, sizeof buf, ",\"%s\":%.3f", key, v);
  out += buf;
}

}  // namespace

std::string render_trace_json(const TraceSpan& span, double ts) {
  std::string out;
  out.reserve(256);
  char buf[96];
  std::snprintf(buf, sizeof buf, "{\"ev\":\"request\",\"ts\":%.6f,\"id\":%" PRIu64,
                ts, span.id);
  out += buf;
  out += ",\"op\":";
  append_escaped(out, span.op);
  out += ",\"name\":";
  append_escaped(out, span.name);
  out += ",\"fp\":";
  append_escaped(out, span.fp);
  out += ",\"ok\":";
  out += span.ok ? "true" : "false";
  out += ",\"cached\":";
  out += span.cached ? "true" : "false";
  out += ",\"tier\":\"";
  out += span.tier;
  out += "\",\"stop\":\"";
  out += span.stop;
  out += "\"";
  std::snprintf(buf, sizeof buf, ",\"nodes\":%lld", span.nodes);
  out += buf;
  if (span.winner != nullptr && span.winner[0] != '\0') {
    out += ",\"winner\":\"";
    out += span.winner;
    out += "\"";
  }
  if (span.blocks_parallel > 0) {
    std::snprintf(buf, sizeof buf, ",\"blocks_parallel\":%lld",
                  span.blocks_parallel);
    out += buf;
  }
  append_ms(out, "parse_ms", span.parse_ms);
  append_ms(out, "queue_ms", span.queue_ms);
  append_ms(out, "fp_ms", span.fp_ms);
  append_ms(out, "lookup_ms", span.lookup_ms);
  append_ms(out, "solve_ms", span.solve_ms);
  append_ms(out, "encode_ms", span.encode_ms);
  // total_ms is a required key: render even when unmeasured (as 0).
  std::snprintf(buf, sizeof buf, ",\"total_ms\":%.3f",
                span.total_ms < 0 ? 0.0 : span.total_ms);
  out += buf;
  if (span.bytes > 0) {
    std::snprintf(buf, sizeof buf, ",\"bytes\":%" PRIu64, span.bytes);
    out += buf;
  }
  if (!span.error.empty()) {
    out += ",\"err\":";
    append_escaped(out, span.error);
  }
  out += '}';
  return out;
}

std::string render_solve_log_json(const SolveLogRecord& rec, double ts) {
  std::string out;
  out.reserve(256);
  char buf[96];
  std::snprintf(buf, sizeof buf, "{\"ev\":\"solve\",\"v\":1,\"ts\":%.6f,\"id\":%" PRIu64,
                ts, rec.id);
  out += buf;
  out += ",\"op\":";
  append_escaped(out, rec.op);
  out += ",\"fp\":";
  append_escaped(out, rec.fp);
  std::snprintf(buf, sizeof buf,
                ",\"ddg_ops\":%lld,\"ddg_arcs\":%lld,\"ddg_cp\":%lld"
                ",\"ddg_width\":%lld",
                rec.ddg_ops, rec.ddg_arcs, rec.ddg_cp, rec.ddg_width);
  out += buf;
  out += ",\"ddg_types\":";
  append_escaped(out, rec.ddg_types);
  out += ",\"ok\":";
  out += rec.ok ? "true" : "false";
  out += ",\"cached\":";
  out += rec.cached ? "true" : "false";
  out += ",\"tier\":\"";
  out += rec.tier;
  out += "\",\"stop\":\"";
  out += rec.stop;
  out += "\"";
  std::snprintf(buf, sizeof buf, ",\"nodes\":%lld", rec.nodes);
  out += buf;
  if (rec.winner != nullptr && rec.winner[0] != '\0') {
    out += ",\"winner\":\"";
    out += rec.winner;
    out += "\"";
  }
  append_ms(out, "parse_ms", rec.parse_ms);
  append_ms(out, "solve_ms", rec.solve_ms);
  // total_ms is a required key: render even when unmeasured (as 0).
  std::snprintf(buf, sizeof buf, ",\"total_ms\":%.3f",
                rec.total_ms < 0 ? 0.0 : rec.total_ms);
  out += buf;
  out += '}';
  return out;
}

TraceSink::TraceSink(const Config& cfg) : cfg_(cfg) {
  out_.open(cfg_.path, std::ios::out | std::ios::trunc);
  RS_REQUIRE(out_.is_open(), "trace: cannot open trace file: " + cfg_.path);
  buf_.reserve(cfg_.flush_threshold + 4096);
}

TraceSink::~TraceSink() { flush(); }

void TraceSink::write(const TraceSpan& span) {
  // Render outside the lock: string building is the expensive part.
  write_line(render_trace_json(span, support::unix_now_seconds()));
}

void TraceSink::write_line(std::string line) {
  line += '\n';

  std::string to_flush;
  {
    support::LockGuard lock(mu_);
    if (buf_.size() + line.size() > cfg_.max_buffer) {
      // Flusher is stalled (or the buffer is misconfigured tiny): drop
      // rather than block the serving path.
      ++dropped_;
      return;
    }
    buf_ += line;
    ++written_;
    if (buf_.size() < cfg_.flush_threshold || flushing_) {
      return;  // below threshold, or another thread is already flushing
    }
    flushing_ = true;
    to_flush.swap(buf_);
  }
  // File I/O outside the lock; concurrent writers keep appending to buf_.
  out_.write(to_flush.data(), static_cast<std::streamsize>(to_flush.size()));
  {
    support::LockGuard lock(mu_);
    flushing_ = false;
  }
  flushed_.notify_all();
}

void TraceSink::flush() {
  support::UniqueLock lock(mu_);
  // Wait out any in-flight threshold flush so lines stay whole and ordered.
  // Explicit loop (not a predicate lambda) so the guarded read of flushing_
  // stays visible to the thread-safety analysis.
  while (flushing_) flushed_.wait(lock);
  std::string to_flush;
  to_flush.swap(buf_);
  flushing_ = true;
  lock.unlock();
  if (!to_flush.empty()) {
    out_.write(to_flush.data(), static_cast<std::streamsize>(to_flush.size()));
  }
  out_.flush();
  lock.lock();
  flushing_ = false;
  lock.unlock();
  flushed_.notify_all();
}

std::uint64_t TraceSink::written() const {
  support::LockGuard lock(mu_);
  return written_;
}

std::uint64_t TraceSink::dropped() const {
  support::LockGuard lock(mu_);
  return dropped_;
}

}  // namespace rs::service
