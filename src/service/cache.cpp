#include "service/cache.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace rs::service {

ResultCache::ResultCache(const Config& cfg)
    : enabled_(cfg.max_bytes > 0 && cfg.max_entries > 0) {
  const int shards = std::max(1, cfg.shards);
  // Ceil-divide so the summed capacity is never below the configured one.
  shard_max_bytes_ = (cfg.max_bytes + shards - 1) / shards;
  shard_max_entries_ = std::max<std::size_t>(
      1, (cfg.max_entries + shards - 1) / shards);
  shards_.reserve(shards);
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::shard_of(const CacheKey& key) {
  return *shards_[key.lo % shards_.size()];
}

std::shared_ptr<const ResultPayload> ResultCache::get(const CacheKey& key) {
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

void ResultCache::put(const CacheKey& key,
                      std::shared_ptr<const ResultPayload> value,
                      std::size_t bytes) {
  if (!enabled_ || bytes > shard_max_bytes_) return;
  RS_REQUIRE(value != nullptr, "cannot cache a null payload");
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    it->second->value = std::move(value);
    it->second->bytes = bytes;
    shard.bytes += bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Entry{key, std::move(value), bytes});
    shard.index[key] = shard.lru.begin();
    shard.bytes += bytes;
    ++shard.insertions;
  }
  evict_locked(shard);
}

void ResultCache::evict_locked(Shard& shard) {
  while (!shard.lru.empty() && (shard.bytes > shard_max_bytes_ ||
                                shard.lru.size() > shard_max_entries_)) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

CacheStats ResultCache::stats() const {
  CacheStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.insertions += shard->insertions;
    out.evictions += shard->evictions;
    out.entries += shard->lru.size();
    out.bytes += shard->bytes;
  }
  return out;
}

void ResultCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

}  // namespace rs::service
