#include "service/codec.hpp"

#include <optional>
#include <sstream>
#include <vector>

#include "service/protocol.hpp"
#include "support/parse.hpp"

namespace rs::service {

namespace {

std::optional<support::StopCause> stop_cause_from_token(
    const std::string& tok) {
  using support::StopCause;
  if (tok == "proven") return StopCause::Proven;
  if (tok == "limit") return StopCause::LimitHit;
  if (tok == "timeout") return StopCause::TimedOut;
  if (tok == "cancelled") return StopCause::Cancelled;
  return std::nullopt;
}

std::optional<core::ReduceStatus> reduce_status_from_token(
    const std::string& tok) {
  using core::ReduceStatus;
  if (tok == "fits") return ReduceStatus::AlreadyFits;
  if (tok == "reduced") return ReduceStatus::Reduced;
  if (tok == "spill") return ReduceStatus::SpillNeeded;
  if (tok == "limit") return ReduceStatus::LimitHit;
  return std::nullopt;
}

/// Splits "a:b:c" on ':' — entry fields never contain ':' (all numeric or
/// status tokens), so no escaping is needed inside entries.
std::vector<std::string> split_colon(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = s.find(':', start);
    out.push_back(s.substr(start, pos == std::string::npos
                                      ? std::string::npos
                                      : pos - start));
    if (pos == std::string::npos) return out;
    start = pos + 1;
  }
}

long long req_ll(const std::map<std::string, std::string>& fields,
                 const char* key) {
  const auto it = fields.find(key);
  RS_REQUIRE(it != fields.end(), std::string("missing ") + key + "=");
  return support::parse_ll(it->second, key);
}

bool req_flag(const std::map<std::string, std::string>& fields,
              const char* key) {
  const long long v = req_ll(fields, key);
  RS_REQUIRE(v == 0 || v == 1, std::string(key) + "= must be 0 or 1");
  return v == 1;
}

}  // namespace

std::string render_payload_fields(const ResultPayload& p, bool include_ddg) {
  std::ostringstream os;
  if (!p.ok) {
    os << " msg=" << escape_field(p.error);
    return os.str();
  }
  os << " stop=" << support::stop_cause_token(p.stats.stop)
     << " nodes=" << p.stats.nodes;
  if (p.kind == RequestKind::Analyze) {
    for (const TypeAnalysis& t : p.analyze) {
      os << " t" << t.type << ".vals=" << t.value_count << " t" << t.type
         << ".rs=" << t.rs << " t" << t.type
         << ".proven=" << (t.proven ? 1 : 0);
    }
  } else {
    os << " success=" << (p.success ? 1 : 0);
    for (const TypeReduce& t : p.reduce) {
      os << " t" << t.type << ".status=" << reduce_status_token(t.status)
         << " t" << t.type << ".rs=" << t.achieved_rs << " t" << t.type
         << ".arcs=" << t.arcs_added << " t" << t.type
         << ".loss=" << t.ilp_loss;
    }
    if (include_ddg && !p.out_ddg.empty()) {
      os << " ddg=" << escape_field(p.out_ddg);
    }
  }
  return os.str();
}

std::string encode_payload(const ResultPayload& p) {
  std::ostringstream os;
  os << "rsres v=" << kPayloadFormatVersion << " ok=" << (p.ok ? 1 : 0)
     << " kind=" << (p.kind == RequestKind::Analyze ? "analyze" : "reduce")
     << " success=" << (p.success ? 1 : 0)
     << " stop=" << support::stop_cause_token(p.stats.stop)
     << " nodes=" << p.stats.nodes << " prunes=" << p.stats.prunes
     << " simplex=" << p.stats.simplex_iterations
     << " refine=" << p.stats.refine_passes << " solves=" << p.stats.solves;
  if (!p.error.empty()) os << " err=" << escape_field(p.error);
  os << " na=" << p.analyze.size();
  for (std::size_t i = 0; i < p.analyze.size(); ++i) {
    const TypeAnalysis& t = p.analyze[i];
    os << " a" << i << "=" << t.type << ':' << t.value_count << ':' << t.rs
       << ':' << (t.proven ? 1 : 0);
  }
  os << " nr=" << p.reduce.size();
  for (std::size_t i = 0; i < p.reduce.size(); ++i) {
    const TypeReduce& t = p.reduce[i];
    os << " r" << i << "=" << t.type << ':' << reduce_status_token(t.status)
       << ':' << t.achieved_rs << ':' << t.arcs_added << ':' << t.ilp_loss;
  }
  if (!p.out_ddg.empty()) os << " ddg=" << escape_field(p.out_ddg);
  // End-of-record sentinel: entry counts cannot detect a truncation inside
  // the *last* variable-length value (a shortened ddg= is still a
  // well-formed token), so the decoder additionally requires this final
  // token. Its value is deliberately not "1": a truncation that leaves the
  // bare word "eol" would parse as eol=1 (bare tokens default to "1") and
  // slip through.
  os << " eol=2\n";
  return os.str();
}

std::shared_ptr<const ResultPayload> decode_payload(std::string_view text) {
  try {
    // One logical line; a trailing newline is the normal case. Reject
    // embedded newlines (a torn concatenation of two entries).
    std::string line(text);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.find('\n') != std::string::npos) return nullptr;

    // Every token after the header must be key=value: the writer never
    // emits bare tokens, so one is corruption (e.g. a key truncated off a
    // concatenated record), not a skippable unknown key — parse_fields
    // would otherwise default it to <token>=1 and mask the damage.
    const std::vector<std::string> tokens = support::split_ws(line);
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      if (tokens[i].find('=') == std::string::npos) return nullptr;
    }
    const std::map<std::string, std::string> fields = parse_fields(line);
    const auto head = fields.find("");
    if (head == fields.end() || head->second != "rsres") return nullptr;
    if (req_ll(fields, "v") != kPayloadFormatVersion) return nullptr;
    const auto eol = fields.find("eol");
    if (eol == fields.end() || eol->second != "2") return nullptr;  // truncated

    auto p = std::make_shared<ResultPayload>();
    p->ok = req_flag(fields, "ok");
    const auto kind_it = fields.find("kind");
    RS_REQUIRE(kind_it != fields.end(), "missing kind=");
    if (kind_it->second == "analyze") {
      p->kind = RequestKind::Analyze;
    } else if (kind_it->second == "reduce") {
      p->kind = RequestKind::Reduce;
    } else {
      return nullptr;
    }
    p->success = req_flag(fields, "success");
    const auto stop_it = fields.find("stop");
    RS_REQUIRE(stop_it != fields.end(), "missing stop=");
    const auto stop = stop_cause_from_token(stop_it->second);
    if (!stop.has_value()) return nullptr;
    p->stats.stop = *stop;
    p->stats.nodes = req_ll(fields, "nodes");
    p->stats.prunes = req_ll(fields, "prunes");
    p->stats.simplex_iterations = req_ll(fields, "simplex");
    p->stats.refine_passes = req_ll(fields, "refine");
    p->stats.solves = req_ll(fields, "solves");
    if (const auto it = fields.find("err"); it != fields.end()) {
      p->error = it->second;
    }
    if (const auto it = fields.find("ddg"); it != fields.end()) {
      p->out_ddg = it->second;
    }

    const long long na = req_ll(fields, "na");
    RS_REQUIRE(na >= 0 && na <= 4096, "implausible na=");
    for (long long i = 0; i < na; ++i) {
      const auto it = fields.find("a" + std::to_string(i));
      RS_REQUIRE(it != fields.end(), "missing analyze entry");
      const std::vector<std::string> parts = split_colon(it->second);
      RS_REQUIRE(parts.size() == 4, "malformed analyze entry");
      TypeAnalysis t;
      t.type = static_cast<ddg::RegType>(support::parse_int(parts[0], "a.type"));
      t.value_count = support::parse_int(parts[1], "a.vals");
      t.rs = support::parse_int(parts[2], "a.rs");
      const int proven = support::parse_int(parts[3], "a.proven");
      RS_REQUIRE(proven == 0 || proven == 1, "a.proven must be 0 or 1");
      t.proven = proven == 1;
      p->analyze.push_back(t);
    }

    const long long nr = req_ll(fields, "nr");
    RS_REQUIRE(nr >= 0 && nr <= 4096, "implausible nr=");
    for (long long i = 0; i < nr; ++i) {
      const auto it = fields.find("r" + std::to_string(i));
      RS_REQUIRE(it != fields.end(), "missing reduce entry");
      const std::vector<std::string> parts = split_colon(it->second);
      RS_REQUIRE(parts.size() == 5, "malformed reduce entry");
      TypeReduce t;
      t.type = static_cast<ddg::RegType>(support::parse_int(parts[0], "r.type"));
      const auto status = reduce_status_from_token(parts[1]);
      if (!status.has_value()) return nullptr;
      t.status = *status;
      t.achieved_rs = support::parse_int(parts[2], "r.rs");
      t.arcs_added = support::parse_int(parts[3], "r.arcs");
      t.ilp_loss = support::parse_ll(parts[4], "r.loss");
      p->reduce.push_back(t);
    }
    return p;
  } catch (const std::exception&) {
    // Malformed numbers, bad %XX escapes, duplicate keys, missing required
    // fields: all corruption, all a miss.
    return nullptr;
  }
}

}  // namespace rs::service
