#include "service/codec.hpp"

#include <functional>
#include <optional>
#include <sstream>

#include "service/operation.hpp"
#include "service/protocol.hpp"
#include "support/parse.hpp"

namespace rs::service {

namespace {

std::optional<support::StopCause> stop_cause_from_token(
    const std::string& tok) {
  using support::StopCause;
  if (tok == "proven") return StopCause::Proven;
  if (tok == "limit") return StopCause::LimitHit;
  if (tok == "timeout") return StopCause::TimedOut;
  if (tok == "cancelled") return StopCause::Cancelled;
  return std::nullopt;
}

}  // namespace

std::vector<std::string> split_colon(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = s.find(':', start);
    out.push_back(s.substr(start, pos == std::string::npos
                                      ? std::string::npos
                                      : pos - start));
    if (pos == std::string::npos) return out;
    start = pos + 1;
  }
}

long long require_ll(const std::map<std::string, std::string>& fields,
                     const char* key) {
  const auto it = fields.find(key);
  RS_REQUIRE(it != fields.end(), std::string("missing ") + key + "=");
  return support::parse_ll(it->second, key);
}

bool require_flag(const std::map<std::string, std::string>& fields,
                  const char* key) {
  const long long v = require_ll(fields, key);
  RS_REQUIRE(v == 0 || v == 1, std::string(key) + "= must be 0 or 1");
  return v == 1;
}

void encode_entries(std::ostream& os, const char* count_key,
                    const char* prefix, std::size_t count,
                    const std::function<void(std::size_t, std::ostream&)>&
                        entry) {
  os << ' ' << count_key << '=' << count;
  for (std::size_t i = 0; i < count; ++i) {
    os << ' ' << prefix << i << '=';
    entry(i, os);
  }
}

void decode_entries(const std::map<std::string, std::string>& fields,
                    const char* count_key, const char* prefix,
                    std::size_t arity,
                    const std::function<void(const std::vector<std::string>&)>&
                        entry) {
  const long long n = require_ll(fields, count_key);
  RS_REQUIRE(n >= 0 && n <= 4096,
             std::string("implausible ") + count_key + "=");
  for (long long i = 0; i < n; ++i) {
    const auto it = fields.find(prefix + std::to_string(i));
    RS_REQUIRE(it != fields.end(),
               std::string("missing ") + prefix + " entry");
    const std::vector<std::string> parts = split_colon(it->second);
    RS_REQUIRE(parts.size() == arity,
               std::string("malformed ") + prefix + " entry");
    entry(parts);
  }
}

std::string render_payload_fields(const ResultPayload& p, bool include_ddg) {
  std::ostringstream os;
  if (!p.ok) {
    os << " msg=" << escape_field(p.error);
    return os.str();
  }
  RS_REQUIRE(p.op != nullptr, "payload names no operation");
  os << " stop=" << support::stop_cause_token(p.stats.stop)
     << " nodes=" << p.stats.nodes;
  p.op->render_result_fields(p, os);
  if (include_ddg && !p.out_ddg.empty()) {
    os << " ddg=" << escape_field(p.out_ddg);
  }
  return os.str();
}

std::string encode_payload(const ResultPayload& p) {
  RS_REQUIRE(p.op != nullptr, "payload names no operation");
  std::ostringstream os;
  os << "rsres v=" << kPayloadFormatVersion << " ok=" << (p.ok ? 1 : 0)
     << " kind=" << p.op->name() << " success=" << (p.success ? 1 : 0)
     << " stop=" << support::stop_cause_token(p.stats.stop)
     << " nodes=" << p.stats.nodes << " prunes=" << p.stats.prunes
     << " simplex=" << p.stats.simplex_iterations
     << " refine=" << p.stats.refine_passes << " solves=" << p.stats.solves;
  if (!p.error.empty()) os << " err=" << escape_field(p.error);
  p.op->encode_payload_fields(p, os);
  if (!p.out_ddg.empty()) os << " ddg=" << escape_field(p.out_ddg);
  // End-of-record sentinel: entry counts cannot detect a truncation inside
  // the *last* variable-length value (a shortened ddg= is still a
  // well-formed token), so the decoder additionally requires this final
  // token. Its value is deliberately not "1": a truncation that leaves the
  // bare word "eol" would parse as eol=1 (bare tokens default to "1") and
  // slip through.
  os << " eol=2\n";
  return os.str();
}

std::shared_ptr<const ResultPayload> decode_payload(std::string_view text) {
  try {
    // One logical line; a trailing newline is the normal case. Reject
    // embedded newlines (a torn concatenation of two entries).
    std::string line(text);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.find('\n') != std::string::npos) return nullptr;

    // Every token after the header must be key=value: the writer never
    // emits bare tokens, so one is corruption (e.g. a key truncated off a
    // concatenated record), not a skippable unknown key — parse_fields
    // would otherwise default it to <token>=1 and mask the damage.
    const std::vector<std::string> tokens = support::split_ws(line);
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      if (tokens[i].find('=') == std::string::npos) return nullptr;
    }
    const std::map<std::string, std::string> fields = parse_fields(line);
    const auto head = fields.find("");
    if (head == fields.end() || head->second != "rsres") return nullptr;
    if (require_ll(fields, "v") != kPayloadFormatVersion) return nullptr;
    const auto eol = fields.find("eol");
    if (eol == fields.end() || eol->second != "2") return nullptr;  // truncated

    auto p = std::make_shared<ResultPayload>();
    p->ok = require_flag(fields, "ok");
    const auto kind_it = fields.find("kind");
    RS_REQUIRE(kind_it != fields.end(), "missing kind=");
    // An unregistered kind= is a miss, not corruption: an entry written by
    // a newer build with more operations must not crash this reader.
    p->op = find_operation(kind_it->second);
    if (p->op == nullptr) return nullptr;
    p->success = require_flag(fields, "success");
    const auto stop_it = fields.find("stop");
    RS_REQUIRE(stop_it != fields.end(), "missing stop=");
    const auto stop = stop_cause_from_token(stop_it->second);
    if (!stop.has_value()) return nullptr;
    p->stats.stop = *stop;
    p->stats.nodes = require_ll(fields, "nodes");
    p->stats.prunes = require_ll(fields, "prunes");
    p->stats.simplex_iterations = require_ll(fields, "simplex");
    p->stats.refine_passes = require_ll(fields, "refine");
    p->stats.solves = require_ll(fields, "solves");
    if (const auto it = fields.find("err"); it != fields.end()) {
      p->error = it->second;
    }
    if (const auto it = fields.find("ddg"); it != fields.end()) {
      p->out_ddg = it->second;
    }
    if (!p->op->decode_payload_fields(fields, p.get())) return nullptr;
    return p;
  } catch (const std::exception&) {
    // Malformed numbers, bad %XX escapes, duplicate keys, missing required
    // fields: all corruption, all a miss.
    return nullptr;
  }
}

}  // namespace rs::service
