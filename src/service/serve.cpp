#include "service/serve.hpp"

#include <chrono>
#include <cstdio>
#include <deque>
#include <future>
#include <sstream>
#include <utility>
#include <vector>

#include "support/assert.hpp"
#include "support/fs.hpp"
#include "support/metrics.hpp"
#include "support/timer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define RS_SERVE_POSIX 1
#include <poll.h>
#else
#define RS_SERVE_POSIX 0
#endif

namespace rs::service {

/// One ordered response slot: a pre-rendered line (ack / parse error), the
/// future of a submitted request, or a deferred stats snapshot (rendered
/// at emission time, so it reflects everything answered before it).
struct Slot {
  std::string pre;
  std::future<Response> fut;
  bool stats = false;
  bool metrics = false;
};

struct SocketServer::Conn {
  int fd = -1;
  std::string in_buf;   // bytes read, split into lines as '\n' arrives
  std::string out_buf;  // rendered lines awaiting a writable socket
  /// First unsent byte of out_buf. An offset instead of erase-per-send:
  /// trimming the front of a multi-MB response on every partial send
  /// would memmove the remainder each time (quadratic on the network
  /// thread); the buffer is compacted once drained (or past 1 MiB sent).
  std::size_t out_off = 0;
  bool out_empty() const { return out_off >= out_buf.size(); }
  std::deque<Slot> slots;
  int lineno = 0;
  bool closed_read = false;  // peer EOF: finish answering, then close
  /// Rejected-line mode: keep reading and discarding the peer's bytes
  /// (closing with unread data queued would RST the connection and
  /// discard the error line before the peer could read it).
  bool discard_input = false;
  bool dead = false;         // unrecoverable socket error: drop now
  /// True while the slot cap keeps this connection out of the POLLIN set;
  /// each false->true edge counts one serve.backpressure_stalls.
  bool read_paused = false;
  /// Reset whenever bytes reach the peer; during drain, a connection is
  /// only given up on after kDrainGraceSeconds without *progress*, so a
  /// slow-but-reading peer still gets its full result lines.
  support::Timer last_progress;
};

namespace {

/// Trace spans and solve-log records are engine-produced; a configured
/// trace_file / solve_log_file turns the matching collection on.
EngineConfig with_collection_enabled(EngineConfig engine, bool trace,
                                     bool solve_log) {
  if (trace) engine.trace = true;
  if (solve_log) engine.solve_log = true;
  return engine;
}

}  // namespace

SocketServer::SocketServer(const ServeConfig& cfg)
    : cfg_(cfg),
      engine_(with_collection_enabled(cfg.engine, !cfg.trace_file.empty(),
                                      !cfg.solve_log_file.empty())),
      listener_(cfg.host, cfg.port),
      connections_(engine_.metrics().counter("serve.connections")),
      open_conns_(engine_.metrics().gauge("serve.open_conns")),
      requests_(engine_.metrics().counter("serve.requests")),
      responses_(engine_.metrics().counter("serve.responses")),
      parse_errors_(engine_.metrics().counter("serve.parse_errors")),
      bytes_in_(engine_.metrics().counter("serve.bytes_in")),
      bytes_out_(engine_.metrics().counter("serve.bytes_out")),
      backpressure_stalls_(
          engine_.metrics().counter("serve.backpressure_stalls")),
      slow_requests_(engine_.metrics().counter("serve.slow_requests")) {
  if (!cfg_.trace_file.empty()) {
    trace_sink_ = std::make_unique<TraceSink>(cfg_.trace_file);
  }
  if (!cfg_.solve_log_file.empty()) {
    solve_log_sink_ = std::make_unique<TraceSink>(cfg_.solve_log_file);
  }
  if (!cfg_.port_file.empty()) {
    RS_REQUIRE(support::write_file_atomic(cfg_.port_file,
                                          std::to_string(port()) + "\n"),
               "cannot write port file " + cfg_.port_file);
  }
}

SocketServer::~SocketServer() {
  for (auto& c : conns_) support::close_fd(c->fd);
}

ServeStats SocketServer::serve_stats() const {
  ServeStats out;
  out.connections = connections_.value();
  out.requests = requests_.value();
  out.parse_errors = parse_errors_.value();
  out.responses = responses_.value();
  out.bytes_in = bytes_in_.value();
  out.bytes_out = bytes_out_.value();
  out.backpressure_stalls = backpressure_stalls_.value();
  out.slow_requests = slow_requests_.value();
  out.open_conns = open_conns_.value();
  return out;
}

void SocketServer::accept_new() {
  for (;;) {
    const int fd = listener_.accept_client();
    if (fd == -1) return;  // nothing pending
    if (fd == -2) {
      // Accept failed but the connection stays queued (fd exhaustion and
      // the like), so the listener remains readable: stop polling it for
      // ~1 s instead of busy-spinning poll() at 100% CPU.
      accept_backoff_ = 50;
      return;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conns_.push_back(std::move(conn));
    connections_.inc();
    open_conns_.add(1);
  }
}

void SocketServer::read_conn(Conn& c) {
  // Two bounds keep one peer from starving the shared poll thread: stop
  // past the line cap (anything more stays in the kernel buffer — TCP
  // backpressure — so in_buf is bounded at kMaxLineBytes plus one recv
  // chunk and an oversized line can never slip a late newline in before
  // the guard in process_lines() sees it), and stop after a per-round
  // byte budget — a peer flooding faster than we drain (notably in
  // discard_input mode, where in_buf never grows) yields the thread at
  // the next poll, it doesn't pin it.
  long long budget = 1 << 20;
  while (budget > 0 && (c.discard_input || c.in_buf.size() <= kMaxLineBytes)) {
    const long n = support::recv_some(c.fd, &c.in_buf);
    if (c.discard_input) c.in_buf.clear();
    if (n > 0) {
      budget -= n;
      bytes_in_.inc(static_cast<std::uint64_t>(n));
      continue;
    }
    if (n == 0) c.closed_read = true;
    if (n == -2) c.dead = true;
    return;  // EOF, would-block, or error
  }
}

/// Queues a status=error result line (shared by parse failures and the
/// oversized-line guard, so the wire format cannot diverge between them).
void SocketServer::emit_error_line(Conn& c, const std::string& msg) {
  std::ostringstream os;
  os << "result id=" << next_id_++ << " status=error name=line" << c.lineno
     << " msg=" << escape_field(msg);
  Slot slot;
  slot.pre = os.str();
  c.slots.push_back(std::move(slot));
  parse_errors_.inc();
}

void SocketServer::handle_line(Conn& c, const std::string& line) {
  if (is_blank_or_comment(line)) return;
  Slot slot;
  try {
    support::Timer parse;
    Command cmd = parse_command_line(line, next_id_, cfg_.protocol);
    switch (cmd.kind) {
      case CommandKind::Submit:
        ++next_id_;
        cmd.request.parse_ms = parse.millis();
        slot.fut = engine_.submit(std::move(cmd.request));
        requests_.inc();
        break;
      case CommandKind::Cancel:
        slot.pre = render_cancel_ack(cmd.cancel_id,
                                     engine_.cancel(cmd.cancel_id));
        break;
      case CommandKind::Drain:
        // In-order emission behind this connection's earlier slots IS the
        // drain barrier: by the time this ack renders, every prior request
        // on the connection has had its result line rendered first.
        slot.pre = render_drain_ack();
        break;
      case CommandKind::Stats:
        slot.stats = true;  // snapshot taken when the slot is emitted
        break;
      case CommandKind::Metrics:
        slot.metrics = true;  // exposition rendered when the slot is emitted
        break;
    }
  } catch (const std::exception& e) {
    emit_error_line(c, e.what());
    return;
  }
  c.slots.push_back(std::move(slot));
}

void SocketServer::process_lines(Conn& c) {
  if (c.discard_input) return;  // rejected-line mode: input is drained only
  std::size_t start = 0;
  while (c.slots.size() < cfg_.max_pending_per_conn) {
    const std::size_t nl = c.in_buf.find('\n', start);
    if (nl == std::string::npos) break;
    std::string line = c.in_buf.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    start = nl + 1;
    ++c.lineno;
    handle_line(c, line);
  }
  c.in_buf.erase(0, start);
  // Peer EOF with an unterminated final line: answer it, matching `rsat
  // batch` (whose getline yields a trailing line without '\n').
  if (c.closed_read && !c.in_buf.empty() &&
      c.in_buf.find('\n') == std::string::npos &&
      c.in_buf.size() <= kMaxLineBytes &&
      c.slots.size() < cfg_.max_pending_per_conn) {
    std::string line = std::move(c.in_buf);
    c.in_buf.clear();
    if (!line.empty() && line.back() == '\r') line.pop_back();
    ++c.lineno;
    handle_line(c, line);
  }
  // The slot cap bounds *answered* lines but not a line that never ends:
  // a peer streaming newline-free bytes would otherwise grow in_buf until
  // OOM. Past the cap, answer with an error and stop reading the
  // connection (pending responses still flush). Only a genuinely
  // unterminated line counts — bytes kept back by the slot cap still
  // contain newlines and drain as responses flush.
  if (c.in_buf.size() > kMaxLineBytes &&
      c.in_buf.find('\n') == std::string::npos) {
    ++c.lineno;
    emit_error_line(c, "request line exceeds " +
                           std::to_string(kMaxLineBytes) + " bytes");
    c.in_buf.clear();
    c.in_buf.shrink_to_fit();
    // Keep reading (and discarding) the rest of the peer's stream so the
    // error line is delivered over an orderly close, not lost to a RST.
    c.discard_input = true;
  }
}

void SocketServer::pump_ready(Conn& c) {
  while (!c.slots.empty()) {
    Slot& s = c.slots.front();
    // The stall clock measures how long the peer has left bytes untaken,
    // so it starts when the write buffer goes from empty to non-empty —
    // waiting on our own solver is not the peer's stall.
    if (c.out_empty()) c.last_progress.reset();
    if (s.stats) {
      c.out_buf += render_stats_line(engine_.stats());
      if (cfg_.slo_ms > 0) c.out_buf += render_slo_fields();
      c.out_buf += '\n';
    } else if (s.metrics) {
      // Multi-line body; to_prometheus() frames it with a terminating
      // "# EOF" line (and ends newline-terminated), so nothing to append.
      c.out_buf += engine_.metrics().to_prometheus();
    } else if (s.pre.empty()) {
      if (s.fut.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        return;  // preserve request order: stop at the first unresolved
      }
      const Response resp = s.fut.get();
      support::Timer encode;
      const std::string line = render_response(resp);
      c.out_buf += line;
      c.out_buf += '\n';
      if (cfg_.slow_ms > 0 && resp.millis >= cfg_.slow_ms) {
        slow_requests_.inc();
        std::fprintf(stderr,
                     "rsat serve: slow request id=%llu name=%s ms=%.3f "
                     "cached=%d\n",
                     static_cast<unsigned long long>(resp.id),
                     resp.name.c_str(), resp.millis, resp.cache_hit ? 1 : 0);
      }
      if (resp.trace != nullptr && trace_sink_ != nullptr) {
        resp.trace->encode_ms = encode.millis();
        resp.trace->bytes = line.size() + 1;
        trace_sink_->write(*resp.trace);
      }
      if (resp.solve_log != nullptr && solve_log_sink_ != nullptr) {
        solve_log_sink_->write_line(render_solve_log_json(
            *resp.solve_log, support::unix_now_seconds()));
      }
      if (cfg_.slo_ms > 0) record_slo(resp);
    } else {
      c.out_buf += s.pre;
      c.out_buf += '\n';
    }
    c.slots.pop_front();
    responses_.inc();
  }
}

void SocketServer::record_slo(const Response& resp) {
  // Error payloads that never resolved an operation have nowhere to count.
  if (resp.payload == nullptr || resp.payload->op == nullptr) return;
  const std::string name(resp.payload->op->name());
  auto it = slo_.find(name);
  if (it == slo_.end()) {
    const std::string prefix = "slo." + name + ".";
    SloMetrics fresh;
    fresh.ok = &engine_.metrics().counter(prefix + "ok");
    fresh.breach = &engine_.metrics().counter(prefix + "breach");
    it = slo_.emplace(name, fresh).first;
  }
  (resp.millis > cfg_.slo_ms ? it->second.breach : it->second.ok)->inc();
}

std::string SocketServer::render_slo_fields() const {
  char buf[96];
  std::string out;
  std::snprintf(buf, sizeof buf, " slo_ms=%.3f", cfg_.slo_ms);
  out += buf;
  for (const auto& [name, m] : slo_) {  // std::map: name-sorted
    const std::uint64_t ok = m.ok->value();
    const std::uint64_t breach = m.breach->value();
    const double rate =
        ok + breach == 0
            ? 0.0
            : static_cast<double>(breach) / static_cast<double>(ok + breach);
    std::snprintf(buf, sizeof buf,
                  " slo.%s.ok=%llu slo.%s.breach=%llu slo.%s.breach_rate=%.3f",
                  name.c_str(), static_cast<unsigned long long>(ok),
                  name.c_str(), static_cast<unsigned long long>(breach),
                  name.c_str(), rate);
    out += buf;
  }
  return out;
}

void SocketServer::flush_conn(Conn& c) {
  while (!c.out_empty()) {
    const long n = support::send_some(
        c.fd, std::string_view(c.out_buf).substr(c.out_off));
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      bytes_out_.inc(static_cast<std::uint64_t>(n));
      c.last_progress.reset();
      continue;
    }
    if (n == -1 || n == 0) break;  // buffer full: POLLOUT will re-arm
    c.dead = true;
    return;
  }
  if (c.out_empty()) {
    c.out_buf.clear();
    c.out_off = 0;
  } else if (c.out_off > (std::size_t{1} << 20)) {
    c.out_buf.erase(0, c.out_off);
    c.out_off = 0;
  }
}

void SocketServer::run(const std::function<bool()>& should_stop) {
#if RS_SERVE_POSIX
  bool draining = false;
  for (;;) {
    if (!draining &&
        (stop_.load() || (should_stop && should_stop()))) {
      // Cancel-drain-shutdown: no new connections or lines; every
      // in-flight solve is cancelled cooperatively and still resolves its
      // future, so the pump below flushes a result line (stop=cancelled)
      // for everything already submitted.
      draining = true;
      engine_.cancel_all();
      // The stall clocks start at the drain: a connection idle since long
      // before SIGINT still deserves the full grace to consume its
      // pending results.
      for (auto& cp : conns_) cp->last_progress.reset();
    }

    std::vector<pollfd> fds;
    std::vector<Conn*> polled;
    if (accept_backoff_ > 0) --accept_backoff_;
    if (!draining && accept_backoff_ == 0) {
      fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
      polled.push_back(nullptr);
    }
    for (auto& cp : conns_) {
      Conn& c = *cp;
      short events = 0;
      if (!draining && !c.closed_read &&
          (c.discard_input ||
           c.slots.size() < cfg_.max_pending_per_conn)) {
        events |= POLLIN;
        c.read_paused = false;
      } else if (!draining && !c.closed_read && !c.read_paused) {
        // Slot cap reached: this connection leaves the POLLIN set until
        // responses flush. Count the edge, not the (per-iteration) state.
        c.read_paused = true;
        backpressure_stalls_.inc();
      }
      if (!c.out_empty()) events |= POLLOUT;
      if (events == 0) continue;
      fds.push_back(pollfd{c.fd, events, 0});
      polled.push_back(&c);
    }

    // Short timeout: the poll also doubles as the future-completion sweep,
    // so a resolved solve waits at most ~20 ms before its line goes out.
    ::poll(fds.empty() ? nullptr : fds.data(),
           static_cast<nfds_t>(fds.size()), 20);

    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (polled[i] == nullptr) {
        if (fds[i].revents & POLLIN) accept_new();
        continue;
      }
      Conn& c = *polled[i];
      if (fds[i].revents & (POLLERR | POLLNVAL)) c.dead = true;
      if (!c.dead && (fds[i].revents & (POLLIN | POLLHUP))) read_conn(c);
    }

    for (auto& cp : conns_) {
      Conn& c = *cp;
      if (c.dead) continue;
      if (!draining) process_lines(c);
      pump_ready(c);
      flush_conn(c);
    }

    // Reap: dead sockets immediately; EOF'd connections once fully
    // answered; during drain, connections whose queue has emptied — and
    // peers that made no write progress for the whole grace period.
    std::erase_if(conns_, [&](const std::unique_ptr<Conn>& cp) {
      const Conn& c = *cp;
      const bool answered = c.slots.empty() && c.out_empty();
      // Stalled = bytes are waiting and the peer has taken none for the
      // whole grace period. A connection still waiting on its own solves
      // (empty out_buf) is never "stalled" — its results are about to be
      // cancelled-and-flushed, and the clock resets when they queue.
      const bool stalled = draining && !c.out_empty() &&
                           c.last_progress.seconds() > kDrainGraceSeconds;
      if (c.dead || (c.closed_read && answered) || (draining && answered) ||
          stalled) {
        support::close_fd(c.fd);
        open_conns_.sub(1);
        return true;
      }
      return false;
    });

    if (draining && conns_.empty()) break;
  }
  // All result lines are out (or their peers gone); let solver threads
  // finish their cancelled epilogues before the engine is reused/queried.
  engine_.wait_idle();
  if (trace_sink_ != nullptr) trace_sink_->flush();
  if (solve_log_sink_ != nullptr) solve_log_sink_->flush();
#else
  static_cast<void>(should_stop);
  RS_REQUIRE(false, "rsat serve requires POSIX sockets");
#endif
}

}  // namespace rs::service
