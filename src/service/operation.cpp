#include "service/operation.hpp"

#include <bit>

#include "support/assert.hpp"
#include "support/hash.hpp"

namespace rs::service {

void OptionDigest::add(std::uint64_t v) { h_ = support::hash_combine(h_, v); }

void OptionDigest::add_double(double v) {
  add(std::bit_cast<std::uint64_t>(v));
}

namespace {

struct Registry {
  std::vector<const Operation*> ops;

  void add(const Operation* op) {
    RS_REQUIRE(op != nullptr, "cannot register a null operation");
    RS_REQUIRE(!op->name().empty(), "operation name must not be empty");
    for (const Operation* existing : ops) {
      RS_REQUIRE(existing->name() != op->name(),
                 "duplicate operation name '" + std::string(op->name()) + "'");
      RS_REQUIRE(existing->digest_tag() != op->digest_tag(),
                 "operation '" + std::string(op->name()) +
                     "' reuses digest tag of '" +
                     std::string(existing->name()) + "'");
    }
    ops.push_back(op);
  }
};

Registry& registry() {
  // Seeded once, thread-safely, with the built-in roster; extensions append
  // via register_operation() during startup.
  static Registry reg = [] {
    Registry r;
    for (const Operation* op : builtin_operations()) r.add(op);
    return r;
  }();
  return reg;
}

}  // namespace

const Operation* find_operation(std::string_view name) {
  for (const Operation* op : registry().ops) {
    if (op->name() == name) return op;
  }
  return nullptr;
}

const std::vector<const Operation*>& operations() { return registry().ops; }

std::string operation_names(std::string_view sep) {
  std::string out;
  for (const Operation* op : registry().ops) {
    if (!out.empty()) out += sep;
    out += op->name();
  }
  return out;
}

void register_operation(const Operation* op) { registry().add(op); }

}  // namespace rs::service
