#include "service/store.hpp"

#include <algorithm>
#include <filesystem>
#include <system_error>

#include "service/codec.hpp"
#include "service/engine.hpp"
#include "support/assert.hpp"
#include "support/fs.hpp"
#include "support/metrics.hpp"
#include "support/timer.hpp"

namespace rs::service {

const char* store_tier_token(StoreTier t) {
  switch (t) {
    case StoreTier::None: return "none";
    case StoreTier::Memory: return "mem";
    case StoreTier::Disk: return "disk";
  }
  return "?";
}

// ---------------------------------------------------------------- memory

MemoryStore::MemoryStore(const Config& cfg, support::MetricsRegistry* metrics)
    : enabled_(cfg.max_bytes > 0 && cfg.max_entries > 0) {
  if (metrics != nullptr) {
    m_hits_ = &metrics->counter("store.mem.hits");
    m_misses_ = &metrics->counter("store.mem.misses");
    m_insertions_ = &metrics->counter("store.mem.insertions");
    m_evictions_ = &metrics->counter("store.mem.evictions");
  }
  const int shards = std::max(1, cfg.shards);
  // Ceil-divide so the summed capacity is never below the configured one.
  shard_max_bytes_ = (cfg.max_bytes + shards - 1) / shards;
  shard_max_entries_ = std::max<std::size_t>(
      1, (cfg.max_entries + shards - 1) / shards);
  shards_.reserve(shards);
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

MemoryStore::Shard& MemoryStore::shard_of(const CacheKey& key) {
  return *shards_[key.lo % shards_.size()];
}

StoreHit MemoryStore::get(const CacheKey& key) {
  Shard& shard = shard_of(key);
  support::LockGuard lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    if (m_misses_ != nullptr) m_misses_->inc();
    return {};
  }
  ++shard.hits;
  if (m_hits_ != nullptr) m_hits_->inc();
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return {it->second->value, StoreTier::Memory};
}

void MemoryStore::put(const CacheKey& key,
                      std::shared_ptr<const ResultPayload> value,
                      std::size_t bytes) {
  // Entries larger than a shard's whole byte budget are not admitted (they
  // would evict everything for a single-use payload).
  if (!enabled_ || bytes > shard_max_bytes_) return;
  RS_REQUIRE(value != nullptr, "cannot cache a null payload");
  Shard& shard = shard_of(key);
  support::LockGuard lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    it->second->value = std::move(value);
    it->second->bytes = bytes;
    shard.bytes += bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Entry{key, std::move(value), bytes});
    shard.index[key] = shard.lru.begin();
    shard.bytes += bytes;
    ++shard.insertions;
    if (m_insertions_ != nullptr) m_insertions_->inc();
  }
  evict_locked(shard);
}

void MemoryStore::evict_locked(Shard& shard) {
  while (!shard.lru.empty() && (shard.bytes > shard_max_bytes_ ||
                                shard.lru.size() > shard_max_entries_)) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
    if (m_evictions_ != nullptr) m_evictions_->inc();
  }
}

StoreStats MemoryStore::stats() const {
  StoreStats out;
  for (const auto& shard : shards_) {
    support::LockGuard lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.insertions += shard->insertions;
    out.evictions += shard->evictions;
    out.entries += shard->lru.size();
    out.bytes += shard->bytes;
  }
  return out;
}

void MemoryStore::clear() {
  for (const auto& shard : shards_) {
    support::LockGuard lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

// ------------------------------------------------------------------ disk

DiskStore::DiskStore(const Config& cfg, support::MetricsRegistry* metrics)
    : cfg_(cfg) {
  RS_REQUIRE(!cfg_.dir.empty(), "DiskStore needs a cache directory");
  if (metrics != nullptr) {
    d_hits_ = &metrics->counter("store.disk.hits");
    d_misses_ = &metrics->counter("store.disk.misses");
    d_insertions_ = &metrics->counter("store.disk.insertions");
    d_corrupt_ = &metrics->counter("store.disk.corrupt");
    d_write_errors_ = &metrics->counter("store.disk.write_errors");
    d_bytes_ = &metrics->counter("store.disk.bytes_written");
    d_read_ms_ = &metrics->histogram("store.disk.read_ms");
    d_write_ms_ = &metrics->histogram("store.disk.write_ms");
  }
  RS_REQUIRE(support::create_directories(cfg_.dir),
             "cannot create cache directory " + cfg_.dir);
  // Create the 256 fan-out directories up front so the write path is a
  // single temp-write + rename, not a mkdir probe per entry.
  static const char* hex = "0123456789abcdef";
  for (int i = 0; i < 256; ++i) {
    const std::string shard{hex[i >> 4], hex[i & 15]};
    RS_REQUIRE(support::create_directories(cfg_.dir + "/" + shard),
               "cannot create cache shard directory " + cfg_.dir + "/" +
                   shard);
  }
}

std::string DiskStore::entry_path(const CacheKey& key) const {
  const std::string hex = key.hex();
  return cfg_.dir + "/" + hex.substr(0, 2) + "/" + hex + ".rsres";
}

StoreHit DiskStore::get(const CacheKey& key) {
  support::Timer timer;
  std::string text;
  if (!support::read_file_to_string(entry_path(key), &text)) {
    if (d_read_ms_ != nullptr) d_read_ms_->observe(timer.millis());
    if (d_misses_ != nullptr) d_misses_->inc();
    support::LockGuard lock(mu_);
    ++misses_;
    return {};
  }
  std::shared_ptr<const ResultPayload> payload = decode_payload(text);
  if (d_read_ms_ != nullptr) d_read_ms_->observe(timer.millis());
  support::LockGuard lock(mu_);
  if (payload == nullptr) {
    // Truncated, version-mismatched or corrupt entry: a miss, never a
    // crash or a poisoned payload. The entry stays on disk until the next
    // put overwrites it (atomically), so there is no delete race either.
    ++corrupt_;
    ++misses_;
    if (d_corrupt_ != nullptr) d_corrupt_->inc();
    if (d_misses_ != nullptr) d_misses_->inc();
    return {};
  }
  ++hits_;
  if (d_hits_ != nullptr) d_hits_->inc();
  return {std::move(payload), StoreTier::Disk};
}

void DiskStore::put(const CacheKey& key,
                    std::shared_ptr<const ResultPayload> value,
                    std::size_t bytes) {
  static_cast<void>(bytes);  // disk capacity is managed by the operator
  RS_REQUIRE(value != nullptr, "cannot persist a null payload");
  const std::string path = entry_path(key);
  const std::string encoded = encode_payload(*value);
  // Fan-out dirs exist since construction; a failure here (deleted dir,
  // full disk) is the documented best-effort degradation.
  support::Timer timer;
  const bool ok = support::write_file_atomic(path, encoded);
  if (d_write_ms_ != nullptr) d_write_ms_->observe(timer.millis());
  support::LockGuard lock(mu_);
  if (!ok) {
    ++write_errors_;
    if (d_write_errors_ != nullptr) d_write_errors_->inc();
    return;
  }
  ++insertions_;
  bytes_written_ += encoded.size();
  if (d_insertions_ != nullptr) d_insertions_->inc();
  if (d_bytes_ != nullptr) d_bytes_->inc(encoded.size());
}

StoreStats DiskStore::stats() const {
  support::LockGuard lock(mu_);
  StoreStats out;
  out.hits = hits_;
  out.misses = misses_;
  out.insertions = insertions_;
  out.corrupt = corrupt_;
  out.write_errors = write_errors_;
  out.entries = static_cast<std::size_t>(insertions_);
  out.bytes = bytes_written_;
  return out;
}

void DiskStore::clear() {
  std::error_code ec;
  for (const auto& shard :
       std::filesystem::directory_iterator(cfg_.dir, ec)) {
    if (!shard.is_directory(ec)) continue;
    for (const auto& entry :
         std::filesystem::directory_iterator(shard.path(), ec)) {
      if (entry.path().extension() == ".rsres") {
        std::filesystem::remove(entry.path(), ec);
      }
    }
  }
}

// ---------------------------------------------------------------- tiered

TieredStore::TieredStore(std::unique_ptr<MemoryStore> memory,
                         std::unique_ptr<DiskStore> disk,
                         support::MetricsRegistry* metrics)
    : memory_(std::move(memory)), disk_(std::move(disk)) {
  RS_REQUIRE(memory_ != nullptr, "TieredStore needs a memory tier");
  if (metrics != nullptr) promotions_ = &metrics->counter("store.promotions");
}

StoreHit TieredStore::get(const CacheKey& key) {
  StoreHit hit = memory_->get(key);
  if (hit.payload != nullptr || disk_ == nullptr) return hit;
  hit = disk_->get(key);
  if (hit.payload != nullptr) {
    // Promote: the next lookup of this key is an in-memory hit.
    memory_->put(key, hit.payload, hit.payload->bytes());
    if (promotions_ != nullptr) promotions_->inc();
  }
  return hit;
}

void TieredStore::put(const CacheKey& key,
                      std::shared_ptr<const ResultPayload> value,
                      std::size_t bytes) {
  // The persistence policy lives here, not only in the engine, so no
  // future ResultStore caller can leak a payload past it: error and
  // cancelled payloads are never stored anywhere; timed-out payloads are
  // a wall-clock-dependent best effort — valid to reuse within this
  // process (the budget is part of the key), wrong to serve to every
  // future process from disk.
  if (!value->ok || value->stats.stop == support::StopCause::Cancelled) {
    return;
  }
  memory_->put(key, value, bytes);
  if (disk_ == nullptr ||
      value->stats.stop == support::StopCause::TimedOut) {
    return;
  }
  disk_->put(key, std::move(value), bytes);
}

StoreStats TieredStore::stats() const { return memory_->stats(); }

StoreStats TieredStore::disk_stats() const {
  return disk_ == nullptr ? StoreStats{} : disk_->stats();
}

void TieredStore::clear() {
  memory_->clear();
  if (disk_ != nullptr) disk_->clear();
}

}  // namespace rs::service
