// The operation registry: the service request API's extension point.
//
// A service::Operation packages one workload end-to-end — protocol option
// parsing, cache-fingerprint digesting, execution under a SolveContext,
// payload encoding for the disk tier, and result-line rendering — behind
// one interface, registered by name in a process-wide registry. The
// protocol parser, the engine, the payload codec, and (through them) the
// batch/serve front ends consult the registry instead of switching on a
// request-kind enum, so the service spine is operation-agnostic: adding a
// workload means adding one src/service/ops/<name>.cpp and listing it in
// builtin_operations() (src/service/ops/register.cpp). engine.cpp,
// store.cpp and serve.cpp need no edits.
//
// Invariants every operation must keep:
//
//  * Payload data is renumbering-invariant: scalar metrics and emitted DDG
//    text only, never node-indexed witnesses. Cache keys are canonical DDG
//    fingerprints, so a cached payload is served to *isomorphic* inputs
//    (renumbered/renamed copies of the same DAG); a node index minted
//    against the first requester's numbering would be meaningless to them.
//  * encode_payload_fields()/decode_payload_fields() round-trip exactly:
//    decode(encode(p)) renders byte-identically to p, which is what keeps
//    result lines stable across the memory and disk store tiers.
//  * digest_tag() and name() are unique across the registry (checked at
//    registration), and digest_tag() is *stable across releases* — it is
//    mixed into persistent cache keys, so changing it orphans every disk
//    entry the operation ever wrote.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "ddg/ddg.hpp"
#include "support/solve_context.hpp"

namespace rs::support {
class ThreadPool;
}

namespace rs::service {

struct Request;        // service/engine.hpp
struct ResultPayload;  // service/engine.hpp

/// Execution resources the engine hands an operation's run(): the shared
/// worker pool (for portfolio races and per-block fan-out, via nested-task
/// submission) plus the request's jobs= concurrency cap. Null pool — the
/// default — means "run serially"; operations must produce byte-identical
/// results either way.
struct RunEnv {
  support::ThreadPool* pool = nullptr;
  int jobs = 0;  // <= 0: pool thread count
};

/// What a request must carry as its input payload. Ddg operations consume
/// one normalized DAG (kernel= | file=<x>.ddg | ddg=); Program operations
/// consume a whole acyclic CFG (prog=<name> | file=<x>.prog) and are
/// fingerprinted with cfg::canon instead of ddg::canon. The protocol
/// parser enforces the match, so an operation's run() can rely on its
/// declared payload being present.
enum class PayloadKind { Ddg, Program };

/// Base of the per-operation request-options box (Request::options).
/// Operations define a subclass holding their parsed option values; a null
/// box means "this operation's defaults".
struct OpOptions {
  virtual ~OpOptions() = default;
};

/// Base of the per-operation result-data box (ResultPayload::data).
/// Subclasses hold only renumbering-invariant data (see header comment).
struct OpData {
  virtual ~OpData() = default;
  /// Approximate heap footprint, for cache byte accounting.
  virtual std::size_t bytes() const { return 0; }
};

/// Order-sensitive option digest mixed into the cache fingerprint. The
/// digest sequence (tag, budget, then Operation::digest_options) is part of
/// the persistent cache-key format — see request_key() in engine.hpp.
class OptionDigest {
 public:
  void add(std::uint64_t v);
  void add_double(double v);
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0x524571446967ULL;  // the historical request-digest seed
};

class Operation {
 public:
  virtual ~Operation() = default;

  /// Protocol command token, `kind=` token in result lines, and `kind=`
  /// value in encoded payloads. Lowercase, no whitespace.
  virtual std::string_view name() const = 0;

  /// Stable 64-bit tag mixed into the cache fingerprint ahead of the
  /// option digest. Unique per operation, never reused, never changed
  /// (analyze=0 and reduce=1 are grandfathered from the RequestKind enum,
  /// which is what keeps pre-registry disk caches addressable).
  virtual std::uint64_t digest_tag() const = 0;

  /// The payload this operation consumes; the protocol parser rejects
  /// mismatches. Defaults to Ddg so single-DAG operations need no
  /// override.
  virtual PayloadKind payload_kind() const { return PayloadKind::Ddg; }

  /// One-line option grammar for usage()/docs, e.g.
  /// "limits=<n>[,<n>...] [exact=0|1] [verify=0|1] [emit=0|1]".
  virtual std::string_view synopsis() const = 0;

  /// Option tokens forming a valid request for any two-type corpus kernel,
  /// e.g. "limits=6,6". Empty when no option is required. Drives the
  /// registry-contract tests and doc examples, so every registered
  /// operation is exercised without per-op test plumbing.
  virtual std::string_view example_options() const = 0;

  /// True when `key` is an option this operation accepts. The generic keys
  /// (id, name, budget, and the payload sources kernel/file/ddg/model) are
  /// handled by the protocol layer and never reach this.
  virtual bool accepts_option(std::string_view key) const = 0;

  /// Parses this operation's options from the request line's key=value
  /// fields (values already unescaped) into req->options / req->want_ddg.
  /// Throws support::PreconditionError on invalid or missing options.
  virtual void parse_options(const std::map<std::string, std::string>& fields,
                             Request* req) const = 0;

  /// Mixes the parsed options into the cache-key digest. Must cover every
  /// option that changes run()'s result.
  virtual void digest_options(const Request& req, OptionDigest* d) const = 0;

  /// Executes the operation against the normalized DDG under `solve`
  /// (deadline + cancel token), with `env` supplying the pool/jobs for
  /// operations that fan out. Fills out->stats/success/out_ddg/data; a
  /// thrown exception becomes a status=error payload in the engine.
  virtual void run(const Request& req, const ddg::Ddg& normalized,
                   const RunEnv& env, const support::SolveContext& solve,
                   ResultPayload* out) const = 0;

  /// Appends this operation's payload fields to an encoded record (storage
  /// codec, service/codec.hpp): " key=value" tokens, leading space each.
  /// The generic header (ok/kind/success/stop/counters/err) and trailer
  /// (ddg=, eol=) are written by encode_payload().
  virtual void encode_payload_fields(const ResultPayload& p,
                                     std::ostream& os) const = 0;

  /// Rebuilds ResultPayload::data (and any op-interpreted fields) from a
  /// decoded record's fields. Returns false on corruption (missing or
  /// malformed op fields); may also signal corruption by throwing
  /// support::PreconditionError, which decode_payload() treats the same.
  virtual bool decode_payload_fields(
      const std::map<std::string, std::string>& fields,
      ResultPayload* out) const = 0;

  /// Appends this operation's result-line fields (" key=value" tokens)
  /// after the generic " stop=... nodes=..." prefix. The trailing
  /// " ddg=..." (when the requester asked for it) is appended by the
  /// generic renderer.
  virtual void render_result_fields(const ResultPayload& p,
                                    std::ostream& os) const = 0;
};

/// Looks up a registered operation; nullptr when unknown.
const Operation* find_operation(std::string_view name);

/// All registered operations, registration order (stable for docs/usage).
const std::vector<const Operation*>& operations();

/// Registered operation names joined with `sep` — for usage() lines and
/// unknown-command diagnostics.
std::string operation_names(std::string_view sep);

/// Registers an extension operation (built-ins are seeded automatically).
/// Throws support::PreconditionError on a duplicate name or digest tag.
/// Call during startup, before concurrent registry lookups begin.
void register_operation(const Operation* op);

/// The built-in operation list, defined in src/service/ops/register.cpp so
/// the op roster lives with the ops. Seeds the registry on first access.
std::vector<const Operation*> builtin_operations();

}  // namespace rs::service
