// Sharded LRU result cache for the batch analysis engine.
//
// Keys are canonical DDG fingerprints extended with a request digest
// (ddg/canon.hpp), so structurally identical requests — including renumbered
// or renamed copies of the same DAG — share one entry. Values are immutable
// shared payloads: eviction drops the cache's reference but never invalidates
// a payload an in-flight response still holds.
//
// Sharding: each key maps to one of `shards` independently locked LRU lists,
// so concurrent engine workers rarely contend on the same mutex. Capacity
// (bytes and entries) is split evenly across shards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "ddg/canon.hpp"
#include "support/hash.hpp"

namespace rs::service {

struct ResultPayload;  // defined in service/engine.hpp

using CacheKey = ddg::Fingerprint;

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
};

class ResultCache {
 public:
  struct Config {
    std::size_t max_bytes = std::size_t{64} << 20;
    std::size_t max_entries = std::size_t{1} << 16;
    int shards = 8;
  };

  struct KeyHash {
    std::size_t operator()(const CacheKey& k) const {
      return static_cast<std::size_t>(support::hash_combine(k.hi, k.lo));
    }
  };

  ResultCache() : ResultCache(Config{}) {}
  explicit ResultCache(const Config& cfg);

  /// False when configured with zero capacity; get() then always misses and
  /// put() is a no-op.
  bool enabled() const { return enabled_; }

  /// Returns the cached payload and refreshes its recency, or nullptr.
  std::shared_ptr<const ResultPayload> get(const CacheKey& key);

  /// Inserts (or refreshes) an entry costing `bytes`. Entries larger than a
  /// shard's whole byte budget are not admitted (they would evict everything
  /// for a single-use payload).
  void put(const CacheKey& key, std::shared_ptr<const ResultPayload> value,
           std::size_t bytes);

  /// Aggregated over all shards; counters are cumulative since construction.
  CacheStats stats() const;

  void clear();

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const ResultPayload> value;
    std::size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<CacheKey, std::list<Entry>::iterator, KeyHash> index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0, misses = 0, insertions = 0, evictions = 0;
  };

  Shard& shard_of(const CacheKey& key);
  void evict_locked(Shard& shard);

  bool enabled_;
  std::size_t shard_max_bytes_;
  std::size_t shard_max_entries_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace rs::service
