// Line-oriented text protocol for the batch analysis engine: one request per
// line in, one result line per response out. Machine-parseable, diff-able,
// and easy to generate from scripts — the `rsat batch` front end streams it
// from stdin or a manifest file.
//
// Request lines (all parameters are key=value tokens; order is free):
//
//   analyze <payload> [engine=greedy|exact|ilp] [budget=<sec>] [id=<n>]
//           [name=<str>]
//   reduce  <payload> limits=<n>[,<n>...] [engine=...] [budget=<sec>]
//           [exact=0|1] [verify=0|1] [emit=0|1] [id=<n>] [name=<str>]
//
// <payload> is exactly one of:
//   kernel=<name> [model=superscalar|vliw]   built-in corpus kernel
//   file=<path>                              .ddg file on disk
//   ddg=<escaped>                            inline .ddg text, escaped
//
// '#' starts a comment line; blank lines are ignored. `emit=1` asks for the
// reduced DDG text in the result. Unset `id` defaults to the caller-supplied
// sequence number.
//
// Result lines:
//
//   result id=<n> status=ok kind=analyze name=<str> fp=<hex32> cached=0|1
//          ms=<t> t<k>.vals=<n> t<k>.rs=<n> t<k>.proven=0|1 ...
//   result id=<n> status=ok kind=reduce name=<str> fp=<hex32> cached=0|1
//          ms=<t> success=0|1 t<k>.status=fits|reduced|spill|limit
//          t<k>.rs=<n> t<k>.arcs=<n> t<k>.loss=<n> ... [ddg=<escaped>]
//   result id=<n> status=error name=<str> msg=<escaped>
//
// Escaping: '%', space, TAB, CR and LF become %XX (uppercase hex), applied to
// values that may contain whitespace (ddg=, msg=). unescape_field() inverts
// it exactly; values never produced by escape_field() pass through unchanged.
#pragma once

#include <map>
#include <string>

#include "ddg/machine.hpp"
#include "service/engine.hpp"

namespace rs::service {

std::string escape_field(const std::string& raw);
std::string unescape_field(const std::string& escaped);

/// True for lines the protocol skips (blank or '#' comment).
bool is_blank_or_comment(const std::string& line);

struct ProtocolOptions {
  /// Machine model used to instantiate kernel= payloads without an explicit
  /// model= override.
  ddg::MachineModel default_model = ddg::superscalar_model();
};

/// Parses one request line. `default_id` is used when the line carries no
/// id=. Throws support::PreconditionError on malformed input (unknown
/// command, missing/duplicate payload, bad numbers, unreadable file=...).
Request parse_request_line(const std::string& line, std::uint64_t default_id,
                           const ProtocolOptions& opts = {});

/// Renders a response as one result line (no trailing newline).
std::string render_response(const Response& resp);

/// Splits a protocol line into its key=value fields with values unescaped.
/// The leading command token appears under the empty key "". Bare tokens map
/// to "1". Used by tests and downstream consumers of result lines.
std::map<std::string, std::string> parse_fields(const std::string& line);

/// Short token for a reduce outcome (fits|reduced|spill|limit).
const char* reduce_status_token(core::ReduceStatus s);

}  // namespace rs::service
