// Line-oriented text protocol for the analysis service: one request per
// line in, one result line per response out. Machine-parseable, diff-able,
// and easy to generate from scripts — the `rsat batch` front end streams it
// from stdin or a manifest file, `rsat serve` speaks it over TCP, and
// `rsat <op> <file.ddg>` runs a single line's worth one-shot.
//
// The command token of a request line names a registered
// service::Operation (service/operation.hpp); the option vocabulary of
// each operation lives with the operation, so this grammar never needs
// editing to add a workload. The built-in operations:
//
//   analyze  <payload> [engine=greedy|exact|ilp|portfolio] [budget=<sec>]
//            [id=<n>] [name=<str>] [jobs=<n>]
//            register saturation per type (the paper's RS computation)
//   reduce   <payload> limits=<n>[,<n>...] [engine=...] [exact=0|1]
//            [verify=0|1] [emit=0|1] [budget=<sec>] [id=<n>] [name=<str>]
//            [jobs=<n>]
//            figure-1 RS reduction against per-type register limits
//   minreg   <payload> [cp=<n>] [engine=exact|portfolio] [emit=0|1]
//            [budget=<sec>] [id=<n>] [name=<str>] [jobs=<n>]
//            the literature's register minimization under a makespan
//            budget (cp= cycles; unset/0 = the critical path, the paper's
//            figure-2(b) baseline), freezing the minimal-need schedule
//            into the DAG via the Theorem-4.2 arcs
//   spill    <payload> limits=<n>[,<n>...] [max_spills=<n>] [emit=0|1]
//            [budget=<sec>] [id=<n>] [name=<str>]
//            graph-level lifetime splitting (the paper's section-7 future
//            work): iteratively insert store/reload pairs and re-reduce
//            until RS fits the limits
//   schedule <payload> [width=<n>] [budget=<sec>] [id=<n>] [name=<str>]
//            resource-constrained list scheduling plus lifetime metrics
//            (makespan, per-type maximum register pressure)
//   globalrs <program-payload> [engine=greedy|exact|ilp|portfolio]
//            [budget=<sec>] [id=<n>] [name=<str>] [jobs=<n>]
//            global register saturation of an acyclic CFG (section 6):
//            per-block RS on the expanded DAGs + global per-type maxima
//   globalreduce <program-payload> limits=<n>[,<n>...] [margin=<n>]
//            [engine=greedy|exact|ilp|portfolio] [exact=0|1] [verify=0|1]
//            [budget=<sec>] [id=<n>] [name=<str>] [jobs=<n>]
//            per-block figure-1 reduction against limits[t]-margin (the
//            paper's cross-block move margin, default 1)
//   cancel   <id>    cooperative cancel of a pending/running request; its
//                    result line still arrives (stop=cancelled, not cached)
//   drain            block until every previously submitted request is done
//   stats            live engine telemetry as one line (see below); takes
//                    no arguments and completes no work
//   metrics          full metrics registry in Prometheus text exposition
//                    format (see below); takes no arguments and completes
//                    no work
//
// Payloads come in two kinds, matching Operation::payload_kind — the
// parser rejects a mismatch. <payload> (single-DAG operations) is exactly
// one of:
//   kernel=<name> [model=superscalar|vliw]   built-in corpus kernel
//   file=<path>                              .ddg file on disk
//   ddg=<escaped>                            inline .ddg text, escaped
// <program-payload> (CFG-level operations) is exactly one of:
//   prog=<name> [model=superscalar|vliw]     built-in program kernel
//                                            (cfg/generators.hpp)
//   file=<path>.prog [model=...]             .prog file on disk
//                                            (format: cfg/io.hpp)
// Program payloads are fingerprinted with cfg::canon (order/rename-
// invariant over blocks) and carry their timing from the machine model,
// which is why model= applies to them.
//
// '#' starts a comment line; blank lines are ignored. `emit=1` asks for the
// operation's output DDG text in the result (reduce/minreg/spill emit a
// transformed DAG). Unset `id` defaults to the caller-supplied sequence
// number; unset `budget` defaults to the engine's 30 s cap
// (service::kDefaultBudgetSeconds).
//
// `engine=portfolio` races the proving strategies (exact branch-and-bound,
// ILP, greedy; for minreg: the upward ladder vs a binary search) under one
// deadline — the first *proven* answer wins and the losers are cancelled.
// `jobs=<n>` caps how many worker threads the request may fan onto (block-
// parallel program operations and portfolio races); unset means the
// engine's full pool. Both are pure execution knobs with a hard
// determinism contract: the result line, payload encoding and cache
// contents are byte-identical regardless of race timing or thread count.
// jobs= is therefore *not* part of the request fingerprint; engine= is
// (different engines may legitimately prove different bounds). Portfolio
// payloads canonicalize their effort counters (nodes=0, zeroed
// prunes/simplex/refine) precisely because those vary with the race; the
// real effort still reaches the live telemetry:
//   op.<name>.portfolio.races        races run (compute path only)
//   op.<name>.portfolio.wins.<strat> wins per strategy
//                                    (exact|ilp|greedy|bisect)
//   op.<name>.portfolio.cancelled    losing attempts cancelled
//   op.<name>.parallel_blocks        blocks fanned onto the pool
// and trace spans gain `winner=` (modal winning strategy) and
// `blocks_parallel=` when nonzero. Cache hits report none of these — no
// race ran.
//
// Result lines (`kind=` echoes the operation name):
//
//   result id=<n> status=ok kind=analyze name=<str> fp=<hex32> cached=0|1
//          ms=<t> stop=proven|limit|timeout|cancelled nodes=<n>
//          t<k>.vals=<n> t<k>.rs=<n> t<k>.proven=0|1 ...
//   result id=<n> status=ok kind=reduce ... stop=... nodes=<n> success=0|1
//          t<k>.status=fits|reduced|spill|limit
//          t<k>.rs=<n> t<k>.arcs=<n> t<k>.loss=<n> ... [ddg=<escaped>]
//   result id=<n> status=ok kind=minreg ... stop=... nodes=<n> success=0|1
//          t<k>.need=<n> t<k>.proven=0|1 t<k>.arcs=<n> ... cp=<n>
//          [ddg=<escaped>]
//   result id=<n> status=ok kind=spill ... stop=... nodes=<n> success=0|1
//          t<k>.status=fits|reduced|spill|limit t<k>.spills=<n>
//          t<k>.rs=<n> ... cp=<n> [ddg=<escaped>]
//   result id=<n> status=ok kind=schedule ... stop=... nodes=<n>
//          makespan=<n> t<k>.vals=<n> t<k>.maxlive=<n> ...
//   result id=<n> status=ok kind=globalrs ... stop=... nodes=<n>
//          blocks=<n> b<i>.t<k>.vals=<n> b<i>.t<k>.rs=<n>
//          b<i>.t<k>.proven=0|1 ... t<k>.rs=<n> ... all_proven=0|1
//   result id=<n> status=ok kind=globalreduce ... stop=... nodes=<n>
//          success=0|1 blocks=<n> b<i>.t<k>.status=fits|reduced|spill|limit
//          b<i>.t<k>.rs=<n> b<i>.t<k>.arcs=<n> ...
//   result id=<n> status=error name=<str> msg=<escaped>
//
// Program-operation block indices b<i> are *canonical* (blocks sorted by
// their expanded DAG's structural fingerprint), not program order: like
// every payload field they must stay meaningful when a cached result is
// served to a block-reordered isomorphic program, so block names and
// program positions never appear.
//   cancelled id=<n> found=0|1               ack for a cancel line
//   drained                                   ack for a drain line
//   stats submitted=<n> completed=<n> errors=<n> memory_hits=<n>
//         disk_hits=<n> coalesced=<n> misses=<n> cancelled=<n>
//         timed_out=<n> queue_depth=<n> hit_rate=<f> entries=<n> bytes=<n>
//         disk=0|1 p50_ms=<f> p95_ms=<f> p99_ms=<f> max_ms=<f> ops=<n>
//         [op.<name>.submitted=<n> op.<name>.hits=<n> op.<name>.misses=<n>
//          op.<name>.p50_ms=<f> ...]          ack for a stats line; per-op
//         groups are name-sorted, so the key schema is deterministic for a
//         given operation mix (only the values change between snapshots),
//         and the per-op slices tile the aggregate buckets:
//         sum(op.*.submitted) == completed over resolved operations, and
//         memory_hits + disk_hits + coalesced + misses == completed on an
//         idle engine (EngineStats::counters_tile). When serve runs with
//         --slo-ms=<t>, the serve front end appends per-op latency-objective
//         fields after the op groups: slo_ms=<t> slo.<name>.ok=<n>
//         slo.<name>.breach=<n> ... (name-sorted; ok+breach counts
//         completed responses against the objective, the error budget is
//         breach/(ok+breach))
//   # TYPE rsat_<name> counter|gauge|histogram   ack for a metrics line:
//         the whole registry in Prometheus text exposition format —
//         multi-line, name-sorted, counters suffixed _total, histograms as
//         cumulative _bucket{le="..."} ladders (sparse: only non-empty
//         native buckets, +Inf always present) plus _sum/_count — and
//         terminated by a literal `# EOF` line so the line protocol can
//         frame the multi-line body. Two consecutive idle scrapes are
//         byte-identical modulo the counter values the scrape itself
//         advances (serve.requests and friends)
//
// `stop=` is the stop-cause taxonomy of support::SolveStats: proven (search
// exhausted), limit (node/round cap), timeout (budget deadline), cancelled
// (cancel token). `nodes=` is the aggregate search-node count. Consumers
// must treat `stop=cancelled` lines as potentially data-free: a cancelled
// request that had coalesced onto an identical in-flight solve detaches
// with status=ok but *no* operation fields (nothing was computed for it);
// a cancelled request that computed carries its witnessed partial bounds.
//
// Escaping: '%', space, TAB, CR and LF become %XX (uppercase hex), applied to
// every value that may contain whitespace (name=, ddg=, msg=) — a kernel or
// file name with a space must not corrupt the key=value token stream, in
// either direction. parse_fields() unescapes every value on the way in, so
// writers escape symmetrically (e.g. name=my%20loop). unescape_field()
// inverts escape_field() exactly; values never produced by escape_field()
// pass through unchanged.
#pragma once

#include <map>
#include <string>

#include "ddg/machine.hpp"
#include "service/engine.hpp"

namespace rs::service {

std::string escape_field(const std::string& raw);
std::string unescape_field(const std::string& escaped);

/// True for lines the protocol skips (blank or '#' comment).
bool is_blank_or_comment(const std::string& line);

struct ProtocolOptions {
  /// Machine model used to instantiate kernel= payloads without an explicit
  /// model= override.
  ddg::MachineModel default_model = ddg::superscalar_model();
};

/// One parsed protocol line: either an operation submission, or a control
/// verb (cancel/drain/stats/metrics) targeting the engine itself.
enum class CommandKind { Submit, Cancel, Drain, Stats, Metrics };

struct Command {
  CommandKind kind = CommandKind::Submit;
  Request request;              // valid when kind == Submit
  std::uint64_t cancel_id = 0;  // valid when kind == Cancel
};

/// Parses one protocol line (submission or control verb). `default_id` is
/// used when a submission carries no id=. Throws support::PreconditionError
/// on malformed input (unknown command, missing/duplicate payload, bad
/// numbers, unreadable file=...).
Command parse_command_line(const std::string& line, std::uint64_t default_id,
                           const ProtocolOptions& opts = {});

/// Parses one *request* line (a registered operation; control verbs are
/// rejected). Kept for callers that feed the engine directly.
Request parse_request_line(const std::string& line, std::uint64_t default_id,
                           const ProtocolOptions& opts = {});

/// Renders a response as one result line (no trailing newline).
std::string render_response(const Response& resp);

/// Ack line for a cancel verb: "cancelled id=<n> found=0|1".
std::string render_cancel_ack(std::uint64_t id, bool found);

/// Ack line for a drain verb: "drained".
std::string render_drain_ack();

/// Ack line for a stats verb: live engine telemetry rendered with the
/// deterministic key order documented above (aggregate counters, latency
/// quantiles, then name-sorted per-op groups).
std::string render_stats_line(const EngineStats& st);

/// Splits a protocol line into its key=value fields with values unescaped.
/// The leading command token appears under the empty key "". Bare tokens map
/// to "1". Used by tests and downstream consumers of result lines.
std::map<std::string, std::string> parse_fields(const std::string& line);

}  // namespace rs::service
