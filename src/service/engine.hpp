// AnalysisEngine: a long-lived, concurrent, cached front end over the
// figure-1 pipeline (core::analyze / core::ensure_limits).
//
// Callers submit batches of analysis or reduction requests; the engine runs
// them on a shared rs::support::ThreadPool and memoizes results in a
// service::TieredStore (service/store.hpp): a sharded in-memory LRU over an
// optional persistent on-disk tier (EngineConfig::cache_dir), keyed by the
// canonical DDG fingerprint (ddg/canon.hpp) extended with a digest of the
// request options. Renumbered or renamed copies of the same DAG therefore
// hit the same entry — across processes and restarts when the disk tier is
// enabled. Identical requests arriving while the first is still computing
// are coalesced onto its in-flight result (single-flight), so a burst of
// duplicates costs one solve.
//
// Results are immutable shared payloads carrying only renumbering-invariant
// data (RS values, proven flags, reduction outcomes, solver statistics, and
// the reduced DDG text), never node-indexed witnesses — which is what makes
// serving them across isomorphic inputs sound.
//
// Every request solves under a support::SolveContext: its budget_seconds
// becomes the deadline, and a per-request CancelToken enables cancel(id) /
// cancel_all() / drain() from other threads. A cancelled solve still
// resolves its future — the payload reports stop == Cancelled and is
// excluded from the cache (coalesced waiters of a cancelled owner receive
// the cancelled payload; a later identical request recomputes).
//
// Caveat: the options digest covers every numeric/enum field of
// AnalyzeOptions / PipelineOptions. A custom SrcOptions::leaf_filter is not
// hashable; callers installing one should use a dedicated engine instance.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/saturation.hpp"
#include "ddg/canon.hpp"
#include "ddg/ddg.hpp"
#include "service/store.hpp"
#include "support/solve_context.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace rs::service {

enum class RequestKind { Analyze, Reduce };

struct Request {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::Analyze;
  ddg::Ddg ddg;
  /// Display name in responses; defaults to ddg.name() when empty.
  std::string name;
  /// Engine/budget options for Analyze requests.
  core::AnalyzeOptions analyze;
  /// Pipeline options for Reduce requests.
  core::PipelineOptions pipeline;
  /// Per-type register limits (Reduce only; size must equal type_count).
  std::vector<int> limits;
  /// > 0 bounds this request's *total* solve time: one SolveContext with
  /// this deadline is threaded through every solver layer (per-type budget
  /// splitting included). <= 0 selects the engine default
  /// (kDefaultBudgetSeconds) so no request holds a worker indefinitely.
  double budget_seconds = 0;
  /// Ask the protocol renderer to include the reduced DDG's text in the
  /// result line (Reduce only). The text is always computed and cached, so
  /// this flag does not split the cache key.
  bool want_ddg = false;
};

struct TypeAnalysis {
  ddg::RegType type = 0;
  int value_count = 0;
  int rs = 0;
  bool proven = false;
};

struct TypeReduce {
  ddg::RegType type = 0;
  core::ReduceStatus status = core::ReduceStatus::LimitHit;
  int achieved_rs = 0;
  int arcs_added = 0;
  long long ilp_loss = 0;
};

/// The cacheable part of a response: everything except per-delivery state.
/// Deliberately name-free — a cache hit from a renamed isomorphic DDG must
/// not leak the first requester's display name.
struct ResultPayload {
  bool ok = true;
  std::string error;  // set when !ok
  RequestKind kind = RequestKind::Analyze;
  bool success = true;  // Reduce: every type within its limit
  std::vector<TypeAnalysis> analyze;
  std::vector<TypeReduce> reduce;
  std::string out_ddg;  // reduced DDG text (Reduce with want_ddg)
  /// Aggregate solver statistics (nodes, prunes, stop cause) for the
  /// request. stop == Cancelled payloads are never admitted to the cache.
  support::SolveStats stats;

  bool cancelled() const {
    return stats.stop == support::StopCause::Cancelled;
  }

  /// Approximate heap footprint, used for cache byte accounting.
  std::size_t bytes() const;
};

struct Response {
  std::uint64_t id = 0;
  std::string name;        // this request's display name
  bool cache_hit = false;  // served from a store tier or coalesced
  /// Which tier served a cache_hit (Memory or Disk); None for computed and
  /// coalesced responses.
  StoreTier tier = StoreTier::None;
  bool include_ddg = false;  // echo of Request::want_ddg, for the renderer
  double millis = 0;       // queue wait + compute (or lookup) time
  ddg::Fingerprint fingerprint;  // structural fingerprint of the input
  std::shared_ptr<const ResultPayload> payload;
};

struct EngineConfig {
  /// Worker threads; 0 means hardware_concurrency.
  std::size_t threads = 0;
  MemoryStore::Config cache;
  /// Non-empty enables the persistent disk tier rooted here (created if
  /// absent). Cancelled and timed-out payloads are never persisted.
  std::string cache_dir;
};

/// Wall-clock cap applied to requests that carry no budget_seconds.
inline constexpr double kDefaultBudgetSeconds = 30.0;

struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t cache_hits = 0;   // served from any store tier (mem + disk)
  std::uint64_t memory_hits = 0;  // ... from the in-memory LRU
  std::uint64_t disk_hits = 0;    // ... from the persistent tier
  std::uint64_t coalesced = 0;   // joined an identical in-flight request
  std::uint64_t misses = 0;      // actually computed
  std::uint64_t cancelled = 0;   // responses aborted by a cancel token
                                 // (computed solves + detached coalesced waiters)
  std::uint64_t timed_out = 0;   // computed solves stopped by their deadline
  std::size_t queue_depth = 0;   // submitted but not yet completed
  std::size_t cache_entries = 0;
  std::size_t cache_bytes = 0;
  bool disk_enabled = false;
  StoreStats disk;  // persistent-tier counters (zero when disabled)
  double p50_ms = 0;
  double p95_ms = 0;
  double max_ms = 0;

  /// Fraction of completed lookups served without computing.
  double hit_rate() const {
    const std::uint64_t total = cache_hits + coalesced + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits + coalesced) / total;
  }
};

class AnalysisEngine {
 public:
  explicit AnalysisEngine(const EngineConfig& cfg = {});
  ~AnalysisEngine();

  AnalysisEngine(const AnalysisEngine&) = delete;
  AnalysisEngine& operator=(const AnalysisEngine&) = delete;

  /// Enqueues a request on the pool; the future resolves to its response.
  /// Never throws through the future: failures come back as payloads with
  /// ok == false.
  std::future<Response> submit(Request req);

  /// Runs a request synchronously on the caller's thread (same cache and
  /// single-flight path as submit()).
  Response run(Request req);

  /// Blocks until every submitted request has completed.
  void wait_idle();

  /// Requests cooperative cancellation of every in-flight (pending or
  /// running) request with this id. The request still produces a response:
  /// its solvers stop at the next poll, the payload reports stop ==
  /// Cancelled, and the result is not cached. Returns false when no
  /// in-flight request carries the id (already completed, or never seen).
  bool cancel(std::uint64_t id);

  /// Cancels every in-flight request; returns how many were signalled.
  std::size_t cancel_all();

  /// Graceful drain: cancels requests that have not *started* computing,
  /// lets already-running solves finish, and blocks until the queue is
  /// empty. A cancelled-but-queued request still runs its (cheap,
  /// uncancellable) setup when a worker reaches it — cache hits are served
  /// normally, misses return at the first solver poll as Cancelled — so
  /// drain latency is the running solves plus a small per-queued-request
  /// constant, not zero.
  void drain();

  EngineStats stats() const;

  std::size_t thread_count() const { return pool_.thread_count(); }

 private:
  using SharedPayload = std::shared_ptr<const ResultPayload>;

  /// Tracks one submitted-but-not-completed request for cancel/drain.
  struct Flight {
    std::uint64_t id = 0;
    support::CancelToken token;
    bool started = false;  // a worker has begun processing it
  };

  support::CancelToken register_flight(std::uint64_t seq, std::uint64_t id);
  void mark_started(std::uint64_t seq);
  void forget_flight(std::uint64_t seq);

  Response process(Request req, support::Timer started,
                   support::CancelToken token);
  SharedPayload compute(const Request& req, const ddg::Ddg& normalized,
                        const support::CancelToken& token);
  void record_latency(double ms);

  EngineConfig cfg_;
  TieredStore store_;
  support::ThreadPool pool_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> memory_hits_{0};
  std::atomic<std::uint64_t> disk_hits_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> timed_out_{0};

  mutable std::mutex flights_mu_;
  std::atomic<std::uint64_t> next_seq_{1};
  std::unordered_map<std::uint64_t, Flight> flights_;  // keyed by seq

  mutable std::mutex flight_mu_;
  std::unordered_map<CacheKey, std::shared_future<SharedPayload>,
                     CacheKeyHash>
      inflight_;

  mutable std::mutex latency_mu_;
  std::vector<double> latencies_;  // bounded ring, see record_latency()
  std::size_t latency_next_ = 0;
  double max_ms_ = 0;
};

/// The cache key for a request: canonical fingerprint of the normalized DDG
/// extended with a digest of kind, options, limits and budget. Exposed for
/// tests and for future remote/persistent cache tiers.
CacheKey request_key(const Request& req, const ddg::Fingerprint& fp);

}  // namespace rs::service
