// AnalysisEngine: a long-lived, concurrent, cached, operation-agnostic
// front end over the registered service operations (service/operation.hpp).
//
// Callers submit batches of requests — each naming a registered
// service::Operation (analyze, reduce, minreg, spill, schedule, ...) — and
// the engine runs them on a shared rs::support::ThreadPool, memoizing
// results in a service::TieredStore (service/store.hpp): a sharded
// in-memory LRU over an optional persistent on-disk tier
// (EngineConfig::cache_dir), keyed by the canonical DDG fingerprint
// (ddg/canon.hpp) extended with the operation's tag and option digest.
// Renumbered or renamed copies of the same DAG therefore hit the same
// entry — across processes and restarts when the disk tier is enabled.
// Identical requests arriving while the first is still computing are
// coalesced onto its in-flight result (single-flight), so a burst of
// duplicates costs one solve.
//
// Results are immutable shared payloads carrying only renumbering-invariant
// data (scalar metrics, solver statistics, and emitted DDG text), never
// node-indexed witnesses — which is what makes serving them across
// isomorphic inputs sound. The engine never inspects an operation's data:
// everything op-specific lives behind the Operation interface, so a new
// workload touches only its own src/service/ops/ file.
//
// Every request solves under a support::SolveContext: its budget_seconds
// becomes the deadline, and a per-request CancelToken enables cancel(id) /
// cancel_all() / drain() from other threads. A cancelled solve still
// resolves its future — the payload reports stop == Cancelled and is
// excluded from the cache (coalesced waiters of a cancelled owner receive
// the cancelled payload; a later identical request recomputes).
//
// Caveat: Operation::digest_options must cover every option that changes
// the result. Options that cannot be hashed (e.g. a custom
// SrcOptions::leaf_filter callback) must not be reachable through a shared
// engine; callers installing one should use a dedicated engine instance.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ddg/canon.hpp"
#include "ddg/ddg.hpp"
#include "service/operation.hpp"
#include "service/store.hpp"
#include "support/metrics.hpp"
#include "support/mutex.hpp"
#include "support/solve_context.hpp"
#include "support/thread_annotations.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace rs::cfg {
// Program payloads ride Request behind a shared_ptr; only the sites that
// build or consume one (protocol.cpp, engine.cpp, the program ops) need
// the full cfg headers.
class Cfg;
}  // namespace rs::cfg

namespace rs::service {

struct TraceSpan;       // service/trace.hpp
struct SolveLogRecord;  // service/trace.hpp

struct Request {
  std::uint64_t id = 0;
  /// The operation to run — a registry pointer (service/operation.hpp).
  /// Must be non-null by the time the request reaches the engine;
  /// parse_request_line() always sets it.
  const Operation* op = nullptr;
  /// Input DAG for PayloadKind::Ddg operations; ignored when `program` is
  /// set.
  ddg::Ddg ddg;
  /// Input program for PayloadKind::Program operations (globalrs,
  /// globalreduce, ...). When set, the request is fingerprinted with
  /// cfg::fingerprint (order/rename-invariant over blocks) instead of the
  /// DDG fingerprint, and `ddg` is ignored. Shared and immutable so
  /// Requests stay cheap to copy.
  std::shared_ptr<const cfg::Cfg> program;
  /// Display name in responses; defaults to the program's or DDG's own
  /// name when empty.
  std::string name;
  /// Operation-specific options parsed by Operation::parse_options; null
  /// means the operation's defaults.
  std::shared_ptr<const OpOptions> options;
  /// > 0 bounds this request's *total* solve time: one SolveContext with
  /// this deadline is threaded through every solver layer (per-type budget
  /// splitting included). <= 0 selects the engine default
  /// (kDefaultBudgetSeconds) so no request holds a worker indefinitely.
  double budget_seconds = 0;
  /// Intra-request concurrency cap (portfolio races, per-block fan-out):
  /// <= 0 means the pool's thread count. A pure execution knob — results
  /// are byte-identical for any value, so it is *not* part of the cache
  /// key.
  int jobs = 0;
  /// Ask the protocol renderer to include the operation's output DDG text
  /// in the result line (ops that emit one). The text is always computed
  /// and cached, so this flag does not split the cache key.
  bool want_ddg = false;
  /// Time the front end spent parsing the protocol line for this request
  /// (< 0 = not measured). Copied into the request's trace span when
  /// tracing is enabled; never part of the cache key.
  double parse_ms = -1;
};

/// The cacheable part of a response: everything except per-delivery state.
/// Deliberately name-free — a cache hit from a renamed isomorphic DDG must
/// not leak the first requester's display name.
struct ResultPayload {
  bool ok = true;
  std::string error;  // set when !ok (and for diagnostics when !success)
  /// The operation that produced this payload (registry pointer; stable
  /// for the process lifetime). Null only on error payloads that failed
  /// before an operation was resolved.
  const Operation* op = nullptr;
  /// Operation-defined "achieved its objective" flag (e.g. reduce: every
  /// type within its limit; minreg: every type proven).
  bool success = true;
  /// Output DDG text for operations that emit a transformed DAG (reduce,
  /// minreg, spill); empty otherwise.
  std::string out_ddg;
  /// Operation-specific result data (see the op's header in service/ops/).
  std::shared_ptr<const OpData> data;
  /// Aggregate solver statistics (nodes, prunes, stop cause) for the
  /// request. stop == Cancelled payloads are never admitted to the cache.
  support::SolveStats stats;
  /// Portfolio/fan-out observability for the run that produced this
  /// payload: race counts, per-strategy wins, cancelled losers, and how
  /// many blocks ran in parallel. Timing-dependent by design, so it is
  /// neither encoded nor rendered — it only feeds op.*.portfolio.* /
  /// op.*.parallel_blocks counters and trace spans, and is all-zero on
  /// cache hits.
  struct RaceTelemetry {
    long long races = 0;
    long long wins[4] = {0, 0, 0, 0};  // indexed by core::Strategy
    long long losers_cancelled = 0;
    long long blocks_parallel = 0;

    bool any() const { return races != 0 || blocks_parallel != 0; }
  };
  RaceTelemetry race;

  bool cancelled() const {
    return stats.stop == support::StopCause::Cancelled;
  }

  /// Approximate heap footprint, used for cache byte accounting.
  std::size_t bytes() const;
};

struct Response {
  std::uint64_t id = 0;
  std::string name;        // this request's display name
  bool cache_hit = false;  // served from a store tier or coalesced
  /// Which tier served a cache_hit (Memory or Disk); None for computed and
  /// coalesced responses.
  StoreTier tier = StoreTier::None;
  bool include_ddg = false;  // echo of Request::want_ddg, for the renderer
  double millis = 0;       // queue wait + compute (or lookup) time
  ddg::Fingerprint fingerprint;  // structural fingerprint of the input
  std::shared_ptr<const ResultPayload> payload;
  /// Lifecycle trace span (EngineConfig::trace only). The engine fills the
  /// phases it owns (queue, fingerprint, lookup, solve); the front end
  /// delivering the response fills encode_ms/bytes and hands the span to
  /// the TraceSink.
  std::shared_ptr<TraceSpan> trace;
  /// Solve-log record (EngineConfig::solve_log only): canonical input
  /// features plus the solve outcome. The front end delivering the
  /// response renders it (render_solve_log_json) into the --solve-log sink.
  std::shared_ptr<SolveLogRecord> solve_log;
};

struct EngineConfig {
  /// Worker threads; 0 means hardware_concurrency.
  std::size_t threads = 0;
  MemoryStore::Config cache;
  /// Non-empty enables the persistent disk tier rooted here (created if
  /// absent). Cancelled and timed-out payloads are never persisted.
  std::string cache_dir;
  /// Collect a per-request TraceSpan on every Response (service/trace.hpp).
  /// Off by default: spans cost an allocation + a handful of clock reads
  /// per request, which only pays off when a --trace-file sink consumes
  /// them.
  bool trace = false;
  /// Collect a per-request SolveLogRecord on every Response — cheap
  /// canonical input features plus the outcome, the training rows for
  /// adaptive strategy prediction. Off by default: the feature pass walks
  /// the normalized graph once per request (--solve-log enables it).
  bool solve_log = false;
};

/// Wall-clock cap applied to requests that carry no budget_seconds.
inline constexpr double kDefaultBudgetSeconds = 30.0;

/// Per-operation slice of the engine counters (EngineStats::per_op, keyed
/// by Operation::name). hits counts responses served without computing
/// (store tiers + coalesced) and misses counts computed solves (error
/// payloads included) — exactly the events the aggregate cache_hits/
/// coalesced/misses count, so the per-op slices tile them. p50 is over
/// this operation's completed responses, hits included.
struct OpStats {
  std::uint64_t submitted = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  double p50_ms = 0;
};

struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t cache_hits = 0;   // served from any store tier (mem + disk)
  std::uint64_t memory_hits = 0;  // ... from the in-memory LRU
  std::uint64_t disk_hits = 0;    // ... from the persistent tier
  std::uint64_t coalesced = 0;   // joined an identical in-flight request
  std::uint64_t misses = 0;      // actually computed
  std::uint64_t cancelled = 0;   // responses aborted by a cancel token
                                 // (computed solves + detached coalesced waiters)
  std::uint64_t timed_out = 0;   // computed solves stopped by their deadline
  std::size_t queue_depth = 0;   // submitted but not yet completed
  std::size_t cache_entries = 0;
  std::size_t cache_bytes = 0;
  bool disk_enabled = false;
  StoreStats disk;  // persistent-tier counters (zero when disabled)
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
  /// Per-operation breakdown, one entry per operation that has completed
  /// at least one response on this engine (ordered by name).
  std::map<std::string, OpStats> per_op;

  /// Fraction of completed lookups served without computing.
  double hit_rate() const {
    const std::uint64_t total = cache_hits + coalesced + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits + coalesced) / total;
  }

  /// The summary-counter tiling invariant: every completed response was
  /// served from exactly one bucket — a memory hit, a disk hit, a coalesce
  /// (detached waiters included), or a computed miss (errors included).
  /// Only meaningful on an idle engine: the buckets and `completed` are
  /// updated in separate atomic steps, so a snapshot taken mid-request may
  /// transiently disagree.
  bool counters_tile() const {
    return memory_hits + disk_hits + coalesced + misses == completed;
  }
};

class AnalysisEngine {
 public:
  explicit AnalysisEngine(const EngineConfig& cfg = {});
  ~AnalysisEngine();

  AnalysisEngine(const AnalysisEngine&) = delete;
  AnalysisEngine& operator=(const AnalysisEngine&) = delete;

  /// Enqueues a request on the pool; the future resolves to its response.
  /// Never throws through the future: failures come back as payloads with
  /// ok == false.
  std::future<Response> submit(Request req) RSAT_EXCLUDES(flights_mu_);

  /// Runs a request synchronously on the caller's thread (same cache and
  /// single-flight path as submit()).
  Response run(Request req) RSAT_EXCLUDES(flights_mu_, flight_mu_);

  /// Blocks until every submitted request has completed.
  void wait_idle();

  /// Requests cooperative cancellation of every in-flight (pending or
  /// running) request with this id. The request still produces a response:
  /// its solvers stop at the next poll, the payload reports stop ==
  /// Cancelled, and the result is not cached. Returns false when no
  /// in-flight request carries the id (already completed, or never seen).
  /// RSAT_EXCLUDES: cancel verbs take the flight-table mutex themselves, so
  /// they must never be called from code already holding it (a solver
  /// callback running under register/mark/forget would self-deadlock).
  bool cancel(std::uint64_t id) RSAT_EXCLUDES(flights_mu_);

  /// Cancels every in-flight request; returns how many were signalled.
  std::size_t cancel_all() RSAT_EXCLUDES(flights_mu_);

  /// Graceful drain: cancels requests that have not *started* computing,
  /// lets already-running solves finish, and blocks until the queue is
  /// empty. A cancelled-but-queued request still runs its (cheap,
  /// uncancellable) setup when a worker reaches it — cache hits are served
  /// normally, misses return at the first solver poll as Cancelled — so
  /// drain latency is the running solves plus a small per-queued-request
  /// constant, not zero.
  void drain() RSAT_EXCLUDES(flights_mu_);

  /// Aggregate view over the metrics registry (plus store/queue state).
  EngineStats stats() const RSAT_EXCLUDES(op_mu_);

  /// The registry every engine/store/pool metric lives in — the single
  /// source of truth behind stats(), the `stats` protocol verb and the
  /// --metrics-json snapshot. Front ends may register their own metrics
  /// here (serve.* names) so one snapshot covers the whole process.
  support::MetricsRegistry& metrics() { return metrics_; }
  const support::MetricsRegistry& metrics() const { return metrics_; }

  std::size_t thread_count() const { return pool_.thread_count(); }

 private:
  using SharedPayload = std::shared_ptr<const ResultPayload>;

  /// Tracks one submitted-but-not-completed request for cancel/drain.
  struct Flight {
    std::uint64_t id = 0;
    support::CancelToken token;
    bool started = false;  // a worker has begun processing it
  };

  support::CancelToken register_flight(std::uint64_t seq, std::uint64_t id)
      RSAT_EXCLUDES(flights_mu_);
  void mark_started(std::uint64_t seq) RSAT_EXCLUDES(flights_mu_);
  void forget_flight(std::uint64_t seq) RSAT_EXCLUDES(flights_mu_);

  /// The whole request lifecycle. flight_mu_ (single-flight table) is
  /// taken in short scopes around inflight_ only; the store probe, the
  /// solve, and the payload publication all run with no engine-wide lock
  /// held — declared here so a refactor cannot silently move work under
  /// the single-flight mutex.
  Response process(Request req, support::Timer started,
                   support::CancelToken token) RSAT_EXCLUDES(flight_mu_);
  SharedPayload compute(const Request& req, const ddg::Ddg& normalized,
                        const support::CancelToken& token);
  void record_op(const Operation* op, const Response& resp, bool counted_hit,
                 bool counted_miss) RSAT_EXCLUDES(op_mu_);
  void record_race(const Operation* op,
                   const ResultPayload::RaceTelemetry& race);

  EngineConfig cfg_;
  /// Declared before store_/pool_: both register their metrics here during
  /// construction, and the registry must be destroyed last.
  support::MetricsRegistry metrics_;
  TieredStore store_;
  support::ThreadPool pool_;

  // Engine counters, registry-backed (engine.*). References are stable for
  // the registry's lifetime; Counter::inc is one relaxed atomic RMW.
  support::Counter& submitted_;
  support::Counter& completed_;
  support::Counter& errors_;
  support::Counter& memory_hits_;
  support::Counter& disk_hits_;
  support::Counter& coalesced_;
  support::Counter& misses_;
  support::Counter& cancelled_;
  support::Counter& timed_out_;
  support::Histogram& latency_ms_;  // engine.latency_ms, hits included
  /// Solver-interior instrumentation (solver.* metrics), resolved once at
  /// construction and threaded to every solve through the SolveContext.
  /// All fields are registry-backed lock-free metrics, so sharing one
  /// profile across workers is safe.
  support::SolverProfile profile_;

  mutable support::Mutex flights_mu_;
  std::atomic<std::uint64_t> next_seq_{1};
  std::unordered_map<std::uint64_t, Flight> flights_
      RSAT_GUARDED_BY(flights_mu_);  // keyed by seq

  mutable support::Mutex flight_mu_;
  std::unordered_map<CacheKey, std::shared_future<SharedPayload>,
                     CacheKeyHash>
      inflight_ RSAT_GUARDED_BY(flight_mu_);

  /// Per-operation registry entries (op.<name>.*), keyed by the operation's
  /// (process-lifetime-stable) registry pointer. The mutex guards the map;
  /// the metrics themselves are lock-free.
  struct PerOpMetrics {
    support::Counter* submitted = nullptr;
    support::Counter* hits = nullptr;
    support::Counter* misses = nullptr;
    support::Histogram* ms = nullptr;
  };
  mutable support::Mutex op_mu_;
  std::map<const Operation*, PerOpMetrics> per_op_ RSAT_GUARDED_BY(op_mu_);
};

/// The cache key for a request: canonical fingerprint of the normalized DDG
/// extended with a digest of the operation tag, budget and the operation's
/// option digest (Operation::digest_options). Exposed for tests and for
/// future remote/persistent cache tiers.
CacheKey request_key(const Request& req, const ddg::Fingerprint& fp);

}  // namespace rs::service
