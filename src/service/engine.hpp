// AnalysisEngine: a long-lived, concurrent, cached front end over the
// figure-1 pipeline (core::analyze / core::ensure_limits).
//
// Callers submit batches of analysis or reduction requests; the engine runs
// them on a shared rs::support::ThreadPool and memoizes results in a sharded
// LRU keyed by the canonical DDG fingerprint (ddg/canon.hpp) extended with a
// digest of the request options. Renumbered or renamed copies of the same DAG
// therefore hit the same cache entry. Identical requests arriving while the
// first is still computing are coalesced onto its in-flight result
// (single-flight), so a burst of duplicates costs one solve.
//
// Results are immutable shared payloads carrying only renumbering-invariant
// data (RS values, proven flags, reduction outcomes, and the reduced DDG
// text), never node-indexed witnesses — which is what makes serving them
// across isomorphic inputs sound.
//
// Caveat: the options digest covers every numeric/enum field of
// AnalyzeOptions / PipelineOptions. A custom SrcOptions::leaf_filter is not
// hashable; callers installing one should use a dedicated engine instance.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/saturation.hpp"
#include "ddg/canon.hpp"
#include "ddg/ddg.hpp"
#include "service/cache.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace rs::service {

enum class RequestKind { Analyze, Reduce };

struct Request {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::Analyze;
  ddg::Ddg ddg;
  /// Display name in responses; defaults to ddg.name() when empty.
  std::string name;
  /// Engine/budget options for Analyze requests.
  core::AnalyzeOptions analyze;
  /// Pipeline options for Reduce requests.
  core::PipelineOptions pipeline;
  /// Per-type register limits (Reduce only; size must equal type_count).
  std::vector<int> limits;
  /// > 0 overrides every solver time limit for this request.
  double budget_seconds = 0;
  /// Ask the protocol renderer to include the reduced DDG's text in the
  /// result line (Reduce only). The text is always computed and cached, so
  /// this flag does not split the cache key.
  bool want_ddg = false;
};

struct TypeAnalysis {
  ddg::RegType type = 0;
  int value_count = 0;
  int rs = 0;
  bool proven = false;
};

struct TypeReduce {
  ddg::RegType type = 0;
  core::ReduceStatus status = core::ReduceStatus::LimitHit;
  int achieved_rs = 0;
  int arcs_added = 0;
  long long ilp_loss = 0;
};

/// The cacheable part of a response: everything except per-delivery state.
/// Deliberately name-free — a cache hit from a renamed isomorphic DDG must
/// not leak the first requester's display name.
struct ResultPayload {
  bool ok = true;
  std::string error;  // set when !ok
  RequestKind kind = RequestKind::Analyze;
  bool success = true;  // Reduce: every type within its limit
  std::vector<TypeAnalysis> analyze;
  std::vector<TypeReduce> reduce;
  std::string out_ddg;  // reduced DDG text (Reduce with want_ddg)

  /// Approximate heap footprint, used for cache byte accounting.
  std::size_t bytes() const;
};

struct Response {
  std::uint64_t id = 0;
  std::string name;        // this request's display name
  bool cache_hit = false;  // served from cache or coalesced onto an in-flight
  bool include_ddg = false;  // echo of Request::want_ddg, for the renderer
  double millis = 0;       // queue wait + compute (or lookup) time
  ddg::Fingerprint fingerprint;  // structural fingerprint of the input
  std::shared_ptr<const ResultPayload> payload;
};

struct EngineConfig {
  /// Worker threads; 0 means hardware_concurrency.
  std::size_t threads = 0;
  ResultCache::Config cache;
};

struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t cache_hits = 0;  // served directly from the cache
  std::uint64_t coalesced = 0;   // joined an identical in-flight request
  std::uint64_t misses = 0;      // actually computed
  std::size_t queue_depth = 0;   // submitted but not yet completed
  std::size_t cache_entries = 0;
  std::size_t cache_bytes = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double max_ms = 0;

  /// Fraction of completed lookups served without computing.
  double hit_rate() const {
    const std::uint64_t total = cache_hits + coalesced + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits + coalesced) / total;
  }
};

class AnalysisEngine {
 public:
  explicit AnalysisEngine(const EngineConfig& cfg = {});
  ~AnalysisEngine();

  AnalysisEngine(const AnalysisEngine&) = delete;
  AnalysisEngine& operator=(const AnalysisEngine&) = delete;

  /// Enqueues a request on the pool; the future resolves to its response.
  /// Never throws through the future: failures come back as payloads with
  /// ok == false.
  std::future<Response> submit(Request req);

  /// Runs a request synchronously on the caller's thread (same cache and
  /// single-flight path as submit()).
  Response run(Request req);

  /// Blocks until every submitted request has completed.
  void wait_idle();

  EngineStats stats() const;

  std::size_t thread_count() const { return pool_.thread_count(); }

 private:
  using SharedPayload = std::shared_ptr<const ResultPayload>;

  Response process(Request req, support::Timer started);
  SharedPayload compute(const Request& req, const ddg::Ddg& normalized);
  void record_latency(double ms);

  EngineConfig cfg_;
  ResultCache cache_;
  support::ThreadPool pool_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> misses_{0};

  mutable std::mutex flight_mu_;
  std::unordered_map<CacheKey, std::shared_future<SharedPayload>,
                     ResultCache::KeyHash>
      inflight_;

  mutable std::mutex latency_mu_;
  std::vector<double> latencies_;  // bounded ring, see record_latency()
  std::size_t latency_next_ = 0;
  double max_ms_ = 0;
};

/// The cache key for a request: canonical fingerprint of the normalized DDG
/// extended with a digest of kind, options, limits and budget. Exposed for
/// tests and for future remote/persistent cache tiers.
CacheKey request_key(const Request& req, const ddg::Fingerprint& fp);

}  // namespace rs::service
