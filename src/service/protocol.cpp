#include "service/protocol.hpp"

#include <cstdio>
#include <sstream>
#include <vector>

#include "cfg/generators.hpp"
#include "cfg/io.hpp"
#include "ddg/io.hpp"
#include "ddg/kernels.hpp"
#include "service/codec.hpp"
#include "service/operation.hpp"
#include "support/assert.hpp"
#include "support/fs.hpp"
#include "support/parse.hpp"

namespace rs::service {

namespace {

bool needs_escape(char c) {
  return c == '%' || c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string read_file(const std::string& path) {
  std::string text;
  RS_REQUIRE(support::read_file_to_string(path, &text), "cannot open " + path);
  return text;
}

/// Keys the protocol layer owns for every operation: delivery metadata and
/// the payload sources. Everything else is the operation's vocabulary.
bool is_generic_key(const std::string& key) {
  return key.empty() || key == "id" || key == "name" || key == "budget" ||
         key == "jobs" || key == "kernel" || key == "file" || key == "ddg" ||
         key == "model" || key == "prog";
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::string escape_field(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (needs_escape(c)) {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%%%02X",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape_field(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '%') {
      out += escaped[i];
      continue;
    }
    RS_REQUIRE(i + 2 < escaped.size(),
               "truncated %XX escape in '" + escaped + "'");
    const int hi = hex_digit(escaped[i + 1]);
    const int lo = hex_digit(escaped[i + 2]);
    RS_REQUIRE(hi >= 0 && lo >= 0, "malformed %XX escape in '" + escaped + "'");
    out += static_cast<char>(hi * 16 + lo);
    i += 2;
  }
  return out;
}

bool is_blank_or_comment(const std::string& line) {
  for (const char c : line) {
    if (c == '#') return true;
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

std::map<std::string, std::string> parse_fields(const std::string& line) {
  std::map<std::string, std::string> out;
  const std::vector<std::string> tokens = support::split_ws(line);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    std::string key, value;
    const std::size_t eq = tokens[i].find('=');
    if (i == 0 && eq == std::string::npos) {
      value = tokens[i];  // leading command token, under the "" key
    } else if (eq == std::string::npos) {
      key = tokens[i];
      value = "1";
    } else {
      key = tokens[i].substr(0, eq);
      value = unescape_field(tokens[i].substr(eq + 1));
    }
    // A map would silently keep only the last occurrence, letting e.g.
    // 'limits=4,4 limits=16,16' slip past the strict-option validation.
    RS_REQUIRE(out.emplace(std::move(key), std::move(value)).second,
               "duplicate field '" + tokens[i].substr(0, eq) + "='");
  }
  return out;
}

Command parse_command_line(const std::string& line, std::uint64_t default_id,
                           const ProtocolOptions& opts) {
  const std::vector<std::string> tokens = support::split_ws(line);
  RS_REQUIRE(!tokens.empty(), "request line must start with a command: " + line);
  Command cmd;
  if (tokens[0] == "drain") {
    RS_REQUIRE(tokens.size() == 1, "drain takes no arguments");
    cmd.kind = CommandKind::Drain;
    return cmd;
  }
  if (tokens[0] == "stats") {
    RS_REQUIRE(tokens.size() == 1, "stats takes no arguments");
    cmd.kind = CommandKind::Stats;
    return cmd;
  }
  if (tokens[0] == "metrics") {
    RS_REQUIRE(tokens.size() == 1, "metrics takes no arguments");
    cmd.kind = CommandKind::Metrics;
    return cmd;
  }
  if (tokens[0] == "cancel") {
    RS_REQUIRE(tokens.size() == 2, "cancel needs exactly one id");
    std::string id = tokens[1];
    if (id.rfind("id=", 0) == 0) id = id.substr(3);  // allow cancel id=<n>
    cmd.kind = CommandKind::Cancel;
    cmd.cancel_id =
        static_cast<std::uint64_t>(support::parse_ll(id, "cancel id"));
    return cmd;
  }
  cmd.request = parse_request_line(line, default_id, opts);
  return cmd;
}

Request parse_request_line(const std::string& line, std::uint64_t default_id,
                           const ProtocolOptions& opts) {
  const std::map<std::string, std::string> fields = parse_fields(line);
  const auto cmd_it = fields.find("");
  RS_REQUIRE(cmd_it != fields.end(),
             "request line must start with a command: " + line);
  const std::string& cmd = cmd_it->second;
  const Operation* op = find_operation(cmd);
  RS_REQUIRE(op != nullptr, "unknown request '" + cmd + "' (" +
                                operation_names("|") +
                                "|cancel|drain|stats|metrics)");

  Request req;
  req.op = op;

  // Reject typo'd and misplaced options outright: a silently dropped
  // budget= or emit= would run with defaults and return a plausible-looking
  // result. An option some *other* registered operation accepts gets the
  // more helpful misplacement message.
  for (const auto& [key, value] : fields) {
    static_cast<void>(value);
    if (is_generic_key(key) || op->accepts_option(key)) continue;
    bool known_elsewhere = false;
    for (const Operation* other : operations()) {
      if (other->accepts_option(key)) {
        known_elsewhere = true;
        break;
      }
    }
    RS_REQUIRE(known_elsewhere, "unknown option '" + key + "='");
    RS_REQUIRE(false, "option '" + key + "=' does not apply to " + cmd +
                          " requests");
  }
  req.id = default_id;
  if (const auto it = fields.find("id"); it != fields.end()) {
    req.id = static_cast<std::uint64_t>(
        support::parse_ll(it->second, "id"));
  }

  // Exactly one payload source. file= carries either payload kind,
  // dispatched on its extension (.prog = program, anything else = DDG).
  const int sources = static_cast<int>(fields.count("kernel")) +
                      static_cast<int>(fields.count("file")) +
                      static_cast<int>(fields.count("ddg")) +
                      static_cast<int>(fields.count("prog"));
  RS_REQUIRE(sources == 1,
             "request needs exactly one of kernel= | file= | ddg= | prog=");
  const bool model_applies =
      fields.count("kernel") || fields.count("prog") ||
      (fields.count("file") && ends_with(fields.at("file"), ".prog"));
  RS_REQUIRE(!fields.count("model") || model_applies,
             "model= only applies to kernel=, prog= and file=<x>.prog "
             "payloads");
  ddg::MachineModel model = opts.default_model;
  if (const auto m = fields.find("model"); m != fields.end()) {
    if (m->second == "superscalar") {
      model = ddg::superscalar_model();
    } else if (m->second == "vliw") {
      model = ddg::vliw_model();
    } else {
      RS_REQUIRE(false, "unknown model '" + m->second +
                            "' (superscalar|vliw)");
    }
  }
  if (const auto it = fields.find("kernel"); it != fields.end()) {
    req.ddg = ddg::build_kernel(it->second, model);
  } else if (const auto it2 = fields.find("prog"); it2 != fields.end()) {
    req.program = std::make_shared<cfg::Cfg>(cfg::build_program(it2->second,
                                                                model));
  } else if (const auto it3 = fields.find("file"); it3 != fields.end()) {
    if (ends_with(it3->second, ".prog")) {
      req.program = std::make_shared<cfg::Cfg>(
          cfg::from_text(read_file(it3->second), model));
    } else {
      req.ddg = ddg::from_text(read_file(it3->second));
    }
  } else {
    req.ddg = ddg::from_text(fields.at("ddg"));
  }
  // Program operations must get a program, DDG operations a DAG — a
  // silently ignored payload would fingerprint (and cache) nonsense.
  if (op->payload_kind() == PayloadKind::Program) {
    RS_REQUIRE(req.program != nullptr,
               cmd + " requires a program payload (prog=<name> | "
               "file=<x>.prog)");
  } else {
    RS_REQUIRE(req.program == nullptr,
               cmd + " takes a DDG payload (kernel= | file=<x>.ddg | "
               "ddg=), not a program");
  }

  if (const auto it = fields.find("name"); it != fields.end()) {
    req.name = it->second;
  }
  if (const auto it = fields.find("budget"); it != fields.end()) {
    // Same finite/non-negative rule as the CLI flags: 'inf' would skip the
    // engine's default cap and create an unbounded-deadline request.
    req.budget_seconds = support::parse_budget_seconds(it->second, "budget");
    RS_REQUIRE(req.budget_seconds > 0, "budget= must be positive");
  }
  if (const auto it = fields.find("jobs"); it != fields.end()) {
    // Execution knob, not a result parameter: jobs= is deliberately outside
    // the request fingerprint, because results are byte-identical for any
    // value (see the determinism contract in protocol.hpp).
    req.jobs = support::parse_int(it->second, "jobs");
    RS_REQUIRE(req.jobs > 0, "jobs= must be positive");
  }

  op->parse_options(fields, &req);
  return req;
}

std::string render_response(const Response& resp) {
  RS_REQUIRE(resp.payload != nullptr, "response has no payload");
  const ResultPayload& p = *resp.payload;
  // The payload-derived tail comes from the shared codec
  // (render_payload_fields), the same source of truth the disk tier
  // round-trips through — which is what keeps result lines byte-identical
  // whether the payload was computed, served from memory, or re-read from
  // disk after a restart.
  std::ostringstream os;
  os << "result id=" << resp.id;
  if (!p.ok) {
    os << " status=error name=" << escape_field(resp.name)
       << render_payload_fields(p, false);
    return os.str();
  }
  os << " status=ok kind=" << p.op->name()
     << " name=" << escape_field(resp.name) << " fp=" << resp.fingerprint.hex()
     << " cached=" << (resp.cache_hit ? 1 : 0);
  char ms[32];
  std::snprintf(ms, sizeof ms, "%.3f", resp.millis);
  os << " ms=" << ms << render_payload_fields(p, resp.include_ddg);
  return os.str();
}

std::string render_cancel_ack(std::uint64_t id, bool found) {
  std::ostringstream os;
  os << "cancelled id=" << id << " found=" << (found ? 1 : 0);
  return os.str();
}

std::string render_drain_ack() { return "drained"; }

std::string render_stats_line(const EngineStats& st) {
  // Deterministic key order (see the header's spec row): the key schema of
  // two snapshots from the same operation mix is identical, only values
  // differ — consumers can diff schemas across cold/warm runs.
  const auto f = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    return std::string(buf);
  };
  std::ostringstream os;
  os << "stats submitted=" << st.submitted << " completed=" << st.completed
     << " errors=" << st.errors << " memory_hits=" << st.memory_hits
     << " disk_hits=" << st.disk_hits << " coalesced=" << st.coalesced
     << " misses=" << st.misses << " cancelled=" << st.cancelled
     << " timed_out=" << st.timed_out << " queue_depth=" << st.queue_depth
     << " hit_rate=" << f(st.hit_rate()) << " entries=" << st.cache_entries
     << " bytes=" << st.cache_bytes << " disk=" << (st.disk_enabled ? 1 : 0)
     << " p50_ms=" << f(st.p50_ms) << " p95_ms=" << f(st.p95_ms)
     << " p99_ms=" << f(st.p99_ms) << " max_ms=" << f(st.max_ms)
     << " ops=" << st.per_op.size();
  for (const auto& [name, op] : st.per_op) {  // std::map: name-sorted
    os << " op." << name << ".submitted=" << op.submitted << " op." << name
       << ".hits=" << op.hits << " op." << name << ".misses=" << op.misses
       << " op." << name << ".p50_ms=" << f(op.p50_ms);
  }
  return os.str();
}

}  // namespace rs::service
