// Register saturation reduction (section 4): add serial arcs to a DDG so
// that RS_t(G-bar) <= R while minimizing critical-path growth.
//
// * extend_by_schedule implements the Theorem-4.2 construction: given a
//   schedule sigma with RN_sigma <= R, add arcs making every non-interfering
//   lifetime precedence of sigma hold under all schedules of G-bar; then
//   RS(G-bar) = RN_sigma(G) and CP(G-bar) <= total time of sigma.
// * reduce_optimal drives the exact SRC solver through the paper's
//   decrement loop (maximize achieved RN <= R, then minimize makespan) and
//   builds G-bar from the witness.
// * reduce_greedy is the heuristic of [Touati CC'01]: repeatedly serialize
//   a pair of saturating values, choosing the candidate with minimal
//   critical-path increase (then maximal saturation drop), until RS <= R.
#pragma once

#include <optional>

#include "core/context.hpp"
#include "core/greedy_k.hpp"
#include "core/src_solver.hpp"
#include "sched/schedule.hpp"

namespace rs::core {

/// Arc-insertion policy for the Theorem-4.2 construction.
enum class ArcLatencyMode {
  /// latency = delta_r(u') - delta_w(v): the weakest arcs preserving the
  /// lifetime precedence under left-open interval semantics (default; for
  /// superscalar targets this gives latency 0).
  General,
  /// latency = max(1, delta_r - delta_w) on superscalar-style targets: the
  /// paper's literal "sequential semantics" choice. Stricter, never wrong
  /// (may cost one extra cycle of critical path on read/write ties).
  PaperStrict,
};

struct ExtensionResult {
  ddg::Ddg extended;       // G-bar
  int arcs_added = 0;      // serial arcs inserted (after dedup)
  bool is_dag = true;      // false => no topological sort (paper: reject)
};

/// Builds G-bar from sigma per the Theorem-4.2 proof. sigma must be valid.
ExtensionResult extend_by_schedule(const TypeContext& ctx,
                                   const sched::Schedule& sigma,
                                   ArcLatencyMode mode = ArcLatencyMode::General);

enum class ReduceStatus {
  AlreadyFits,   // RS(G) <= R, nothing to do (the figure-2(a) case)
  Reduced,       // extended DDG with RS <= R produced
  SpillNeeded,   // no reduction found: spilling unavoidable (within budget)
  LimitHit,      // solver budget exhausted before an answer
};

struct ReduceResult {
  ReduceStatus status = ReduceStatus::LimitHit;
  std::optional<ddg::Ddg> extended;   // present when Reduced
  int achieved_rs = 0;                // RS(G-bar) (witnessed)
  sched::Time critical_path = 0;      // CP(G-bar)
  sched::Time original_cp = 0;        // CP(G)
  int arcs_added = 0;
  long nodes = 0;                     // search effort
  support::SolveStats stats;          // aggregated over every sub-solve

  sched::Time ilp_loss() const { return critical_path - original_cp; }
};

struct ReduceOptions {
  SrcOptions src;
  GreedyOptions greedy;
  ArcLatencyMode arc_mode = ArcLatencyMode::General;
  /// Upper bound on RS(G) if already known (skips recomputation); -1 = no.
  int rs_upper = -1;
  /// Safety cap on heuristic serialization rounds.
  int max_rounds = 256;
};

/// Exact reduction via the decrement-loop SRC search (section 4's optimal
/// method, with the intLP solver swapped for the combinatorial engine; the
/// section-4 intLP itself lives in reduce_ilp.hpp and cross-checks this).
/// One context budgets the RS pre-pass and the whole decrement loop.
ReduceResult reduce_optimal(const TypeContext& ctx, int R,
                            const ReduceOptions& opts = {},
                            const support::SolveContext& solve = {});

/// Heuristic reduction by iterative value serialization [CC'01]. Observes
/// the context between serialization rounds, so it is cancellable too.
ReduceResult reduce_greedy(const TypeContext& ctx, int R,
                           const ReduceOptions& opts = {},
                           const support::SolveContext& solve = {});

}  // namespace rs::core
