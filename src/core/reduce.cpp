#include "core/reduce.hpp"

#include <algorithm>
#include <set>

#include "core/rs_exact.hpp"
#include "graph/paths.hpp"
#include "graph/topo.hpp"
#include "sched/lifetime.hpp"
#include "support/assert.hpp"
#include "support/metrics.hpp"

namespace rs::core {

namespace {

struct ArcSpec {
  ddg::NodeId src;
  ddg::NodeId dst;
  ddg::Latency latency;
};

ddg::Latency serialization_latency(const ddg::Ddg& ddg, ddg::NodeId reader,
                                   ddg::NodeId def, ArcLatencyMode mode) {
  const ddg::Latency general =
      ddg.op(reader).delta_r - ddg.op(def).delta_w;
  if (mode == ArcLatencyMode::PaperStrict &&
      ddg.op(reader).delta_r == 0 && ddg.op(def).delta_w == 0) {
    return 1;  // the paper's sequential-semantics latency for superscalar
  }
  return general;
}

/// Arcs forcing LT(value i) to precede LT(value j) in every schedule
/// (Theorem 4.2 proof): readers of i must read before j writes.
std::vector<ArcSpec> pair_serialization_arcs(const TypeContext& ctx, int i,
                                             int j, ArcLatencyMode mode) {
  const ddg::NodeId vj = ctx.value_node(j);
  std::vector<ArcSpec> arcs;
  for (const ddg::NodeId reader : ctx.cons(i)) {
    if (reader == vj) continue;  // the "v in Cons(u)" case skips v itself
    arcs.push_back(ArcSpec{reader, vj,
                           serialization_latency(ctx.ddg(), reader, vj, mode)});
  }
  return arcs;
}

/// True when the arc is already enforced by the original longest paths or
/// by an identical previously added arc (keeps reported arc counts honest).
bool arc_redundant(const TypeContext& ctx,
                   const std::set<std::pair<ddg::NodeId, ddg::NodeId>>& added,
                   const ArcSpec& a) {
  if (a.src == a.dst) return true;
  if (added.count({a.src, a.dst})) return true;
  return ctx.lp().reaches(a.src, a.dst) && ctx.lp().lp(a.src, a.dst) >= a.latency;
}

}  // namespace

ExtensionResult extend_by_schedule(const TypeContext& ctx,
                                   const sched::Schedule& sigma,
                                   ArcLatencyMode mode) {
  RS_REQUIRE(sched::is_valid(ctx.ddg(), sigma), "invalid schedule");
  const std::vector<sched::Lifetime> lts =
      sched::lifetimes(ctx.ddg(), ctx.type(), sigma);
  const int nv = ctx.value_count();

  ExtensionResult result{ctx.ddg(), 0, true};
  std::set<std::pair<ddg::NodeId, ddg::NodeId>> added;
  for (int i = 0; i < nv; ++i) {
    for (int j = 0; j < nv; ++j) {
      if (i == j) continue;
      // LT(i) before LT(j) under sigma (left-open: kill <= def suffices).
      if (lts[i].kill > lts[j].def) continue;
      // Symmetric empty-interval ties: orient one way only, by (def, index).
      if (lts[j].kill <= lts[i].def &&
          std::make_pair(lts[j].def, j) < std::make_pair(lts[i].def, i)) {
        continue;
      }
      for (const ArcSpec& a : pair_serialization_arcs(ctx, i, j, mode)) {
        if (arc_redundant(ctx, added, a)) continue;
        result.extended.add_serial(a.src, a.dst, a.latency);
        added.insert({a.src, a.dst});
        ++result.arcs_added;
      }
    }
  }
  result.is_dag = graph::is_dag(result.extended.graph());
  return result;
}

ReduceResult reduce_optimal(const TypeContext& ctx, int R,
                            const ReduceOptions& opts,
                            const support::SolveContext& solve) {
  ReduceResult result;
  result.original_cp = graph::critical_path(ctx.ddg().graph());

  int rs_upper = opts.rs_upper;
  bool rs_proven = true;
  if (rs_upper < 0) {
    const RsExactResult rs = rs_exact(ctx, RsExactOptions{}, solve);
    result.stats.merge(rs.stats);
    rs_upper = rs.rs;
    rs_proven = rs.proven;
  }
  if (rs_proven && rs_upper <= R) {
    result.status = ReduceStatus::AlreadyFits;
    result.extended = ctx.ddg();
    result.achieved_rs = rs_upper;
    result.critical_path = result.original_cp;
    return result;
  }

  SrcOptions src = opts.src;
  const ArcLatencyMode mode = opts.arc_mode;
  // Paper (end of section 4): reject schedules whose extension would lose
  // the DAG property (only reachable with visible write offsets).
  src.leaf_filter = [&ctx, mode](const sched::Schedule& s) {
    return extend_by_schedule(ctx, s, mode).is_dag;
  };

  SrcSolver solver(ctx, R);
  const SrcResult r = solver.reduce_lexicographic(rs_upper, src, solve);
  result.nodes = r.nodes;
  result.stats.merge(r.stats);
  if (!r.feasible) {
    result.status = r.status == SrcStatus::Proven ? ReduceStatus::SpillNeeded
                                                  : ReduceStatus::LimitHit;
    return result;
  }
  ExtensionResult ext = extend_by_schedule(ctx, r.sigma, mode);
  RS_CHECK(ext.is_dag);
  result.status = ReduceStatus::Reduced;
  result.achieved_rs = r.rn;
  result.critical_path = graph::critical_path(ext.extended.graph());
  result.arcs_added = ext.arcs_added;
  result.extended = std::move(ext.extended);
  return result;
}

ReduceResult reduce_greedy(const TypeContext& ctx, int R,
                           const ReduceOptions& opts,
                           const support::SolveContext& solve) {
  ReduceResult result;
  result.original_cp = graph::critical_path(ctx.ddg().graph());

  ddg::Ddg current = ctx.ddg();
  int arcs_added = 0;
  long long rounds_run = 0;
  long long candidates_evaluated = 0;
  // Flushed once on every exit path, next to the result handoff.
  const auto flush_profile = [&] {
    if (const support::SolverProfile* prof = solve.profile()) {
      prof->reduce_rounds->inc(static_cast<std::uint64_t>(rounds_run));
      prof->reduce_candidates->inc(
          static_cast<std::uint64_t>(candidates_evaluated));
    }
  };
  for (int round = 0; round < opts.max_rounds; ++round) {
    if (solve.stop_requested()) {
      // Interrupted between serialization rounds: report the partially
      // reduced graph (valid, just not yet within the limit).
      result.status = ReduceStatus::LimitHit;
      result.stats.stop = support::worse_cause(result.stats.stop,
                                               solve.cause_now(false));
      result.critical_path = graph::critical_path(current.graph());
      result.arcs_added = arcs_added;
      result.extended = std::move(current);
      flush_profile();
      return result;
    }
    ++rounds_run;
    const TypeContext cur_ctx(current, ctx.type());
    const RsEstimate est = greedy_k(cur_ctx, opts.greedy, solve);
    result.stats.merge(est.stats);
    if (est.rs <= R) {
      result.status = round == 0 ? ReduceStatus::AlreadyFits
                                 : ReduceStatus::Reduced;
      result.achieved_rs = est.rs;
      result.critical_path = graph::critical_path(current.graph());
      result.arcs_added = arcs_added;
      result.extended = std::move(current);
      flush_profile();
      return result;
    }

    // Candidate serializations between saturating values; keep those that
    // preserve the DAG property, ranked by critical-path increase.
    struct Candidate {
      int i, j;
      sched::Time cp;
      int arcs;
    };
    std::vector<Candidate> candidates;
    for (const int i : est.antichain) {
      for (const int j : est.antichain) {
        if (i == j) continue;
        const auto arcs = pair_serialization_arcs(cur_ctx, i, j, opts.arc_mode);
        graph::Digraph trial(current.graph().node_count());
        for (const graph::Edge& e : current.graph().edges()) {
          trial.add_edge(e.src, e.dst, e.latency);
        }
        int added = 0;
        std::set<std::pair<ddg::NodeId, ddg::NodeId>> dedup;
        for (const ArcSpec& a : arcs) {
          if (arc_redundant(cur_ctx, dedup, a)) continue;
          trial.add_edge(a.src, a.dst, a.latency);
          dedup.insert({a.src, a.dst});
          ++added;
        }
        if (added == 0) continue;          // pair already ordered
        if (!graph::is_dag(trial)) continue;  // would lose the DAG property
        candidates.push_back(
            Candidate{i, j, graph::critical_path(trial), added});
      }
    }
    if (candidates.empty()) {
      result.status = ReduceStatus::SpillNeeded;
      result.achieved_rs = est.rs;
      result.critical_path = graph::critical_path(current.graph());
      result.arcs_added = arcs_added;
      result.extended = std::move(current);
      flush_profile();
      return result;
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.cp != b.cp) return a.cp < b.cp;
                if (a.arcs != b.arcs) return a.arcs < b.arcs;
                return std::make_pair(a.i, a.j) < std::make_pair(b.i, b.j);
              });
    // Among the critical-path-minimal candidates, pick the one whose
    // application drops the heuristic saturation the most (evaluate a few).
    const sched::Time best_cp = candidates.front().cp;
    int evaluated = 0;
    int best_rs = -1;
    const Candidate* best = nullptr;
    for (const Candidate& c : candidates) {
      if (c.cp != best_cp || evaluated >= 8) break;
      ++evaluated;
      ddg::Ddg trial = current;
      std::set<std::pair<ddg::NodeId, ddg::NodeId>> dedup;
      for (const ArcSpec& a :
           pair_serialization_arcs(cur_ctx, c.i, c.j, opts.arc_mode)) {
        if (arc_redundant(cur_ctx, dedup, a)) continue;
        trial.add_serial(a.src, a.dst, a.latency);
        dedup.insert({a.src, a.dst});
      }
      const TypeContext trial_ctx(trial, ctx.type());
      const RsEstimate trial_est = greedy_k(trial_ctx, opts.greedy, solve);
      result.stats.merge(trial_est.stats);
      const int rs_after = trial_est.rs;
      if (best == nullptr || rs_after < best_rs) {
        best = &c;
        best_rs = rs_after;
      }
    }
    RS_CHECK(best != nullptr);
    candidates_evaluated += evaluated;
    std::set<std::pair<ddg::NodeId, ddg::NodeId>> dedup;
    for (const ArcSpec& a :
         pair_serialization_arcs(cur_ctx, best->i, best->j, opts.arc_mode)) {
      if (arc_redundant(cur_ctx, dedup, a)) continue;
      current.add_serial(a.src, a.dst, a.latency);
      dedup.insert({a.src, a.dst});
      ++arcs_added;
    }
  }
  result.status = ReduceStatus::LimitHit;
  result.stats.stop = support::worse_cause(result.stats.stop,
                                           support::StopCause::LimitHit);
  result.critical_path = graph::critical_path(current.graph());
  result.arcs_added = arcs_added;
  result.extended = std::move(current);
  flush_profile();
  return result;
}

}  // namespace rs::core
