#include "core/ilp_common.hpp"

#include <cmath>
#include <string>

#include "graph/paths.hpp"
#include "lp/linearize.hpp"
#include "support/assert.hpp"

namespace rs::core {

IlpSkeleton build_ilp_skeleton(const TypeContext& ctx,
                               const SkeletonOptions& opts) {
  const ddg::Ddg& ddg = ctx.ddg();
  const graph::Digraph& g = ddg.graph();
  const int n = g.node_count();
  const int nv = ctx.value_count();

  IlpSkeleton skel;
  skel.nv = nv;
  skel.horizon = opts.horizon > 0 ? opts.horizon : sched::worst_case_horizon(g);

  const std::vector<std::int64_t> asap = graph::longest_path_to(g);
  const std::vector<std::int64_t> lpf = graph::longest_path_from(g);

  lp::Model& m = skel.model;
  skel.sigma.resize(n);
  for (graph::NodeId u = 0; u < n; ++u) {
    const double lo = static_cast<double>(asap[u]);
    const double hi = static_cast<double>(skel.horizon - lpf[u]);
    RS_REQUIRE(lo <= hi, "horizon below critical path");
    skel.sigma[u] = m.add_int(lo, hi, "sigma." + ddg.op(u).name);
  }

  for (const graph::Edge& e : g.edges()) {
    if (opts.eliminate_redundant_arcs &&
        ctx.lp().lp(e.src, e.dst) > e.latency) {
      continue;
    }
    m.add_constraint(
        lp::LinExpr(skel.sigma[e.dst]) - lp::LinExpr(skel.sigma[e.src]),
        lp::Sense::GE, static_cast<double>(e.latency),
        "prec." + std::to_string(e.src) + "." + std::to_string(e.dst));
  }

  skel.kill.resize(nv);
  for (int i = 0; i < nv; ++i) {
    std::vector<lp::LinExpr> reads;
    for (const ddg::NodeId v : ctx.cons(i)) {
      lp::LinExpr r = lp::LinExpr(skel.sigma[v]);
      r.add_constant(static_cast<double>(ddg.op(v).delta_r));
      reads.push_back(std::move(r));
    }
    skel.kill[i] =
        lp::add_max(m, reads, "k." + ddg.op(ctx.value_node(i)).name);
  }

  skel.s.assign(nv * std::max(nv - 1, 0) / 2, lp::Var{});
  for (int i = 0; i < nv; ++i) {
    for (int j = i + 1; j < nv; ++j) {
      if (opts.eliminate_never_alive_pairs &&
          (ctx.surely_dead_before(i, j) || ctx.surely_dead_before(j, i))) {
        continue;  // s == 0 structurally
      }
      const std::string pid = std::to_string(i) + "." + std::to_string(j);
      const ddg::NodeId ui = ctx.value_node(i);
      const ddg::NodeId uj = ctx.value_node(j);
      // a <=> k_i >= def_j + 1 ; b <=> k_j >= def_i + 1 ; s = a AND b.
      const lp::Var a = m.add_binary("a." + pid);
      lp::LinExpr ki_minus_defj =
          lp::LinExpr(skel.kill[i]) - lp::LinExpr(skel.sigma[uj]);
      ki_minus_defj.add_constant(-static_cast<double>(ddg.op(uj).delta_w));
      lp::add_iff_ge(m, a, ki_minus_defj, 1.0, "a." + pid);
      const lp::Var b = m.add_binary("b." + pid);
      lp::LinExpr kj_minus_defi =
          lp::LinExpr(skel.kill[j]) - lp::LinExpr(skel.sigma[ui]);
      kj_minus_defi.add_constant(-static_cast<double>(ddg.op(ui).delta_w));
      lp::add_iff_ge(m, b, kj_minus_defi, 1.0, "b." + pid);
      const lp::Var s = m.add_binary("s." + pid);
      lp::add_and(m, s, a, b, "s." + pid);
      skel.s[skel.pair_index(i, j)] = s;
    }
  }
  return skel;
}

sched::Schedule schedule_from_solution(const IlpSkeleton& skel,
                                       const std::vector<double>& x) {
  sched::Schedule s;
  s.time.resize(skel.sigma.size());
  for (std::size_t u = 0; u < skel.sigma.size(); ++u) {
    s.time[u] = static_cast<sched::Time>(std::llround(x[skel.sigma[u].id]));
  }
  return s;
}

}  // namespace rs::core
