#include "core/greedy_k.hpp"

#include <algorithm>

#include "graph/topo.hpp"
#include "graph/transitive.hpp"
#include "support/assert.hpp"
#include "support/metrics.hpp"

namespace rs::core {

namespace {

/// Downstream value footprint of choosing `killer`: how many value
/// definitions the killer reaches in the current extended graph. Fewer
/// reachable values means fewer forced value orderings (DV arcs).
int killer_footprint(const TypeContext& ctx, const graph::TransitiveClosure& tc,
                     ddg::NodeId killer) {
  int count = 0;
  for (int j = 0; j < ctx.value_count(); ++j) {
    if (tc.reaches(killer, ctx.value_node(j))) ++count;
  }
  return count;
}

}  // namespace

RsEstimate greedy_k(const TypeContext& ctx, const GreedyOptions& opts,
                    const support::SolveContext& solve) {
  RsEstimate est;
  const int nv = ctx.value_count();
  est.killing = KillingFunction(nv);
  if (nv == 0) {
    est.witness = sched::asap(ctx.ddg());
    return est;
  }

  // Topological positions of defining ops order the greedy scan.
  const auto order = graph::topo_order(ctx.ddg().graph());
  RS_CHECK(order.has_value());
  std::vector<int> topo_pos(ctx.ddg().graph().node_count(), 0);
  for (int p = 0; p < static_cast<int>(order->size()); ++p) {
    topo_pos[(*order)[p]] = p;
  }
  std::vector<int> value_order(nv);
  for (int i = 0; i < nv; ++i) value_order[i] = i;
  std::sort(value_order.begin(), value_order.end(), [&](int a, int b) {
    return topo_pos[ctx.value_node(a)] < topo_pos[ctx.value_node(b)];
  });

  // Phase 1: greedy construction.
  for (const int i : value_order) {
    const auto& candidates = ctx.pkill(i);
    if (candidates.empty()) continue;  // exit value on a non-normalized DDG
    if (candidates.size() == 1) {
      est.killing.killer[i] = candidates[0];
      continue;
    }
    const graph::Digraph ext = killing_extended_graph(ctx, est.killing);
    const graph::TransitiveClosure tc(ext);
    ddg::NodeId best = -1;
    int best_footprint = 0;
    for (const ddg::NodeId cand : candidates) {
      // Arcs (other -> cand) may not close a cycle: reject candidates that
      // some other potential killer is reachable *from*.
      bool cyclic = false;
      for (const ddg::NodeId other : candidates) {
        if (other != cand && tc.reaches(cand, other)) {
          cyclic = true;
          break;
        }
      }
      if (cyclic) continue;
      const int fp = killer_footprint(ctx, tc, cand);
      if (best < 0 || fp < best_footprint ||
          (fp == best_footprint && topo_pos[cand] > topo_pos[best])) {
        best = cand;
        best_footprint = fp;
      }
    }
    if (best < 0) {
      // Fallback: the topologically-last candidate only adds forward arcs.
      best = *std::max_element(
          candidates.begin(), candidates.end(),
          [&](ddg::NodeId a, ddg::NodeId b) { return topo_pos[a] < topo_pos[b]; });
    }
    est.killing.killer[i] = best;
  }
  RS_CHECK(is_valid_killing(ctx, est.killing));

  auto need = killing_need(ctx, est.killing);
  RS_CHECK(need.has_value());

  // Phase 2: steepest-ascent refinement, first-improvement per value. The
  // estimate is valid after any prefix of steps, so the context is polled
  // between trials and an interrupted ascent just returns early.
  long long trials = 0;
  bool interrupted = false;
  for (int pass = 0; pass < opts.refine_passes && !interrupted; ++pass) {
    bool improved = false;
    for (int i = 0; i < nv && !interrupted; ++i) {
      const ddg::NodeId current = est.killing.killer[i];
      for (const ddg::NodeId cand : ctx.pkill(i)) {
        if (solve.should_stop(trials++)) {
          interrupted = true;
          break;
        }
        if (cand == current) continue;
        est.killing.killer[i] = cand;
        const auto trial = killing_need(ctx, est.killing);
        if (trial.has_value() && trial->need > need->need) {
          need = trial;
          improved = true;
          break;  // keep cand
        }
        est.killing.killer[i] = current;
      }
    }
    ++est.stats.refine_passes;
    if (!improved) break;
  }

  est.stats.solves = 1;
  est.stats.stop = interrupted ? solve.cause_now(false) : support::StopCause::Proven;
  if (const support::SolverProfile* prof = solve.profile()) {
    prof->greedy_refine_passes->inc(
        static_cast<std::uint64_t>(est.stats.refine_passes));
    prof->greedy_trials->inc(static_cast<std::uint64_t>(trials));
  }
  solve.record(est.stats);
  est.rs = need->need;
  est.antichain = need->antichain;
  est.witness = saturating_schedule(ctx, est.killing, est.antichain);
  return est;
}

}  // namespace rs::core
