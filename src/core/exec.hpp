// Execution resources threaded through the core solvers: an optional shared
// ThreadPool plus a jobs override. Core algorithms stay correct with the
// default (`Exec{}` — no pool, serial): every parallel code path is written
// against TaskGroup, which degrades to inline execution when the pool is
// null, so serial and parallel runs share one code path and one result.
//
// The pool is *borrowed* — the service engine owns it and its workers are
// the callers, which is why fan-out uses submit_nested/TaskGroup (see
// thread_pool.hpp) rather than submit: a worker blocked on its own fan-out
// participates instead of deadlocking.
#pragma once

#include "support/thread_pool.hpp"

namespace rs::core {

struct Exec {
  support::ThreadPool* pool = nullptr;
  /// Upper bound on concurrent tasks per fan-out; <= 0 means the pool's
  /// thread count. Ignored when pool is null.
  int jobs = 0;

  int effective_jobs() const {
    if (pool == nullptr) return 1;
    int n = jobs > 0 ? jobs : static_cast<int>(pool->thread_count());
    return n < 1 ? 1 : n;
  }

  /// Pool to fan onto, or null when fan-out would not help (no pool, or a
  /// jobs=1 request that asks for serial execution).
  support::ThreadPool* fanout_pool() const {
    return effective_jobs() >= 2 ? pool : nullptr;
  }
};

}  // namespace rs::core
