#include "core/rs_ilp.hpp"

#include <cmath>
#include <string>

#include "core/greedy_k.hpp"
#include "core/ilp_common.hpp"
#include "support/assert.hpp"

namespace rs::core {

namespace {

SkeletonOptions to_skeleton(const RsIlpOptions& opts) {
  SkeletonOptions s;
  s.horizon = opts.horizon;
  s.eliminate_redundant_arcs = opts.eliminate_redundant_arcs;
  s.eliminate_never_alive_pairs = opts.eliminate_never_alive_pairs;
  return s;
}

}  // namespace

lp::Model build_rs_model(const TypeContext& ctx, const RsIlpOptions& opts,
                         std::vector<lp::Var>* sigma_vars,
                         std::vector<lp::Var>* x_vars) {
  IlpSkeleton skel = build_ilp_skeleton(ctx, to_skeleton(opts));
  lp::Model& m = skel.model;
  const int nv = ctx.value_count();

  // Independent-set layer (section 3): x_u picks members of a maximum
  // clique of the interference graph == independent set of its complement.
  std::vector<lp::Var> x(nv);
  for (int i = 0; i < nv; ++i) {
    x[i] = m.add_binary("x." + ctx.ddg().op(ctx.value_node(i)).name);
  }
  for (int i = 0; i < nv; ++i) {
    for (int j = i + 1; j < nv; ++j) {
      const std::string pid = std::to_string(i) + "." + std::to_string(j);
      lp::LinExpr c = lp::LinExpr(x[i]) + lp::LinExpr(x[j]);
      if (!skel.pair_eliminated(i, j)) {
        // s = 0 ==> x_i + x_j <= 1 (linear form: x_i + x_j - s <= 1).
        c.add(skel.s[skel.pair_index(i, j)], -1.0);
      }
      m.add_constraint(c, lp::Sense::LE, 1.0, "is." + pid);
    }
  }

  lp::LinExpr objective;
  for (int i = 0; i < nv; ++i) objective.add(x[i], 1.0);
  m.set_objective(objective, /*maximize=*/true);

  if (sigma_vars) *sigma_vars = skel.sigma;
  if (x_vars) *x_vars = x;
  return std::move(skel.model);
}

RsIlpStats rs_model_stats(const TypeContext& ctx, const RsIlpOptions& opts) {
  const lp::Model m = build_rs_model(ctx, opts);
  RsIlpStats s;
  s.variables = m.var_count();
  s.integer_variables = m.integer_var_count();
  s.constraints = m.constraint_count();
  s.n_nodes = ctx.ddg().graph().node_count();
  s.m_arcs = ctx.ddg().graph().edge_count();
  s.n_values = ctx.value_count();
  return s;
}

RsIlpResult rs_ilp(const TypeContext& ctx, const RsIlpOptions& opts,
                   const support::SolveContext& solve) {
  RsIlpResult result;
  if (ctx.value_count() == 0) {
    result.status = lp::MipStatus::Optimal;
    result.proven = true;
    result.witness = sched::asap(ctx.ddg());
    return result;
  }
  std::vector<lp::Var> sigma;
  const lp::Model model = build_rs_model(ctx, opts, &sigma);
  result.stats.variables = model.var_count();
  result.stats.integer_variables = model.integer_var_count();
  result.stats.constraints = model.constraint_count();
  result.stats.n_nodes = ctx.ddg().graph().node_count();
  result.stats.m_arcs = ctx.ddg().graph().edge_count();
  result.stats.n_values = ctx.value_count();

  const lp::MipResult mip = lp::solve_mip(model, opts.mip, solve);
  result.status = mip.status;
  result.nodes = mip.nodes;
  result.solve_stats = mip.stats;
  result.proven = mip.status == lp::MipStatus::Optimal;
  if (mip.has_solution()) {
    result.rs = static_cast<int>(std::llround(mip.objective));
    result.witness.time.resize(ctx.ddg().op_count());
    for (graph::NodeId u = 0; u < ctx.ddg().op_count(); ++u) {
      result.witness.time[u] =
          static_cast<sched::Time>(std::llround(mip.x[sigma[u].id]));
    }
  } else if (mip.status != lp::MipStatus::Infeasible) {
    // Budget exhausted before any incumbent. Fall back to the greedy
    // witnessed certificate so the library-wide contract — an interrupted
    // solve still returns a valid witnessed lower bound — holds for the
    // ILP engine too. (The RS model is never infeasible; that arm only
    // guards against a broken caller-supplied horizon.)
    const RsEstimate est = greedy_k(ctx, GreedyOptions{}, solve);
    result.rs = est.rs;
    result.witness = est.witness;
    result.solve_stats.merge(est.stats);
  }
  return result;
}

}  // namespace rs::core
