#include "core/killing.hpp"

#include <algorithm>

#include "graph/antichain.hpp"
#include "graph/paths.hpp"
#include "graph/topo.hpp"
#include "graph/transitive.hpp"
#include "support/assert.hpp"

namespace rs::core {

graph::Digraph killing_extended_graph(const TypeContext& ctx,
                                      const KillingFunction& k) {
  RS_REQUIRE(static_cast<int>(k.killer.size()) == ctx.value_count(),
             "killing function size mismatch");
  graph::Digraph g(ctx.ddg().graph().node_count());
  for (const graph::Edge& e : ctx.ddg().graph().edges()) {
    g.add_edge(e.src, e.dst, e.latency);
  }
  for (int i = 0; i < ctx.value_count(); ++i) {
    const ddg::NodeId killer = k.killer[i];
    if (killer < 0) continue;
    for (const ddg::NodeId other : ctx.pkill(i)) {
      if (other == killer) continue;
      // Force: read(other) <= read(killer).
      g.add_edge(other, killer,
                 ctx.ddg().op(other).delta_r - ctx.ddg().op(killer).delta_r);
    }
  }
  return g;
}

bool is_valid_killing(const TypeContext& ctx, const KillingFunction& k) {
  for (int i = 0; i < ctx.value_count(); ++i) {
    const ddg::NodeId killer = k.killer[i];
    if (killer < 0) continue;
    const auto& pk = ctx.pkill(i);
    if (std::find(pk.begin(), pk.end(), killer) == pk.end()) return false;
  }
  return graph::is_dag(killing_extended_graph(ctx, k));
}

std::optional<graph::Digraph> disjoint_value_dag(const TypeContext& ctx,
                                                 const KillingFunction& k) {
  const graph::Digraph ext = killing_extended_graph(ctx, k);
  if (!graph::is_dag(ext)) return std::nullopt;
  const graph::LongestPaths lp(ext);

  const int nv = ctx.value_count();
  graph::Digraph dv(nv);
  for (int i = 0; i < nv; ++i) {
    const ddg::NodeId killer = k.killer[i];
    if (killer < 0) continue;
    const ddg::Latency dr_killer = ctx.ddg().op(killer).delta_r;
    for (int j = 0; j < nv; ++j) {
      if (j == i) continue;
      const ddg::NodeId vj = ctx.value_node(j);
      // u_i surely dead before u_j defined:
      //   sigma(v_j) + dw(v_j) >= sigma(k(u_i)) + dr(k(u_i)) always.
      if (lp.reaches(killer, vj) &&
          lp.lp(killer, vj) >= dr_killer - ctx.ddg().op(vj).delta_w) {
        dv.add_edge(i, j, 0);
      }
    }
  }
  if (!graph::is_dag(dv)) return std::nullopt;  // degenerate tie cycle
  return dv;
}

std::optional<KillingNeed> killing_need(const TypeContext& ctx,
                                        const KillingFunction& k) {
  const auto dv = disjoint_value_dag(ctx, k);
  if (!dv.has_value()) return std::nullopt;
  const graph::AntichainResult ac = graph::maximum_antichain_of_dag(*dv);
  KillingNeed need;
  need.need = ac.size;
  need.antichain = ac.members;
  return need;
}

sched::Schedule saturating_schedule(const TypeContext& ctx,
                                    const KillingFunction& k,
                                    const std::vector<int>& antichain) {
  RS_REQUIRE(k.complete(), "saturating schedule needs a complete killing function");
  graph::Digraph g = killing_extended_graph(ctx, k);
  // Pairwise liveness forcing: for every ordered pair (u, v) in the
  // antichain, v's definition must land strictly before u's kill:
  //   sigma(k(u)) + dr(k(u)) >= sigma(v) + dw(v) + 1.
  for (const int iu : antichain) {
    const ddg::NodeId killer = k.killer[iu];
    for (const int iv : antichain) {
      if (iv == iu) continue;
      const ddg::NodeId vnode = ctx.value_node(iv);
      if (vnode == killer) continue;  // self-arc; tie handled by offsets
      g.add_edge(vnode, killer,
                 ctx.ddg().op(vnode).delta_w - ctx.ddg().op(killer).delta_r + 1);
    }
  }
  RS_REQUIRE(!graph::has_positive_circuit(g),
             "antichain is not simultaneously realizable (not a DV antichain?)");
  sched::Schedule s;
  s.time = graph::longest_path_to(g);
  return s;
}

}  // namespace rs::core
