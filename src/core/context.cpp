#include "core/context.hpp"

#include "support/assert.hpp"

namespace rs::core {

TypeContext::TypeContext(const ddg::Ddg& ddg, ddg::RegType type)
    : ddg_(&ddg), type_(type), values_(ddg, type),
      lp_(std::make_shared<graph::LongestPaths>(ddg.graph())) {
  ddg.validate();
  const int k = values_.count();
  cons_.reserve(k);
  pkill_.reserve(k);
  for (int i = 0; i < k; ++i) {
    const ddg::NodeId u = values_.nodes[i];
    cons_.push_back(ddg.consumers(u, type));
    RS_REQUIRE(!cons_.back().empty(),
               "value '" + ddg.op(u).name +
                   "' has no consumer; normalize() the DDG so exit values "
                   "flow into the bottom node");
    // v is a potential killer unless another consumer v' is forced to read
    // at least as late: a path v ~> v' with lp(v, v') >= dr(v) - dr(v')
    // implies sigma(v')+dr(v') >= sigma(v)+dr(v) in every schedule.
    std::vector<ddg::NodeId> pk;
    for (const ddg::NodeId v : cons_.back()) {
      bool dominated = false;
      for (const ddg::NodeId vp : cons_.back()) {
        if (vp == v) continue;
        if (lp_->reaches(v, vp) &&
            lp_->lp(v, vp) >= ddg.op(v).delta_r - ddg.op(vp).delta_r) {
          dominated = true;
          break;
        }
      }
      if (!dominated) pk.push_back(v);
    }
    RS_CHECK(!cons_.back().empty() ? !pk.empty() : pk.empty());
    pkill_.push_back(std::move(pk));
  }
}

bool TypeContext::surely_dead_before(int i, int j) const {
  const ddg::NodeId vj = values_.nodes[j];
  for (const ddg::NodeId up : cons_[i]) {
    if (!lp_->reaches(up, vj) ||
        lp_->lp(up, vj) < ddg_->op(up).delta_r - ddg_->op(vj).delta_w) {
      return false;
    }
  }
  return true;
}

}  // namespace rs::core
