// DDG-level spill insertion — the paper's stated future work (section 7):
// "the minimal spill code insertion in data dependence graphs ... must be
// taken into account at the data dependence graph level in order to break
// this iterative problem".
//
// When RS reduction reports SpillNeeded, this pass splits a value's
// lifetime at the graph level: a store consumes the value early, a reload
// redefines it for the late consumers. Pressure drops *for every schedule*
// (the two fragments are serialized through memory), so reduction can be
// re-attempted on the rewritten DAG — no schedule-then-spill-then-
// reschedule iteration.
#pragma once

#include "core/context.hpp"
#include "core/reduce.hpp"

namespace rs::core {

struct SpillOptions {
  /// Cap on inserted store/reload pairs before giving up.
  int max_spills = 8;
  ReduceOptions reduce;
};

struct SpillResult {
  ddg::Ddg out;              // rewritten (and possibly reduced) DDG
  int spills_inserted = 0;   // store/reload pairs added
  ReduceStatus status = ReduceStatus::LimitHit;
  /// Witnessed RS of `out` for the target type. On failure this is the
  /// last reduction round's witnessed estimate (still above the limit);
  /// 0 only when the budget interrupted before any witness existed.
  int achieved_rs = 0;
  sched::Time critical_path = 0;
  support::SolveStats stats;  // aggregated over every reduction round
};

/// Splits the lifetime of value `value_index`: its consumers at or after
/// the split keep reading a fresh reload; a store consumes the original.
/// `late_consumers` must be a non-empty subset of the value's consumers.
ddg::Ddg split_value(const TypeContext& ctx, int value_index,
                     const std::vector<ddg::NodeId>& late_consumers);

/// Iteratively spills (heuristic choice: the antichain value with the
/// most consumers) and re-runs greedy reduction until RS_t <= R or the
/// spill budget is exhausted.
SpillResult spill_and_reduce(const TypeContext& ctx, int R,
                             const SpillOptions& opts = {},
                             const support::SolveContext& solve = {});

}  // namespace rs::core
