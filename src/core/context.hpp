// Per-(DDG, register type) analysis context: value indexing, consumer sets,
// longest paths and potential killers, shared by every RS algorithm.
#pragma once

#include <memory>
#include <vector>

#include "ddg/ddg.hpp"
#include "graph/paths.hpp"

namespace rs::core {

/// Immutable precomputation for analyzing one register type of one DDG.
/// Construction cost: O(V*(V+E)) longest paths + O(V*E) pkill filtering.
class TypeContext {
 public:
  TypeContext(const ddg::Ddg& ddg, ddg::RegType type);

  const ddg::Ddg& ddg() const { return *ddg_; }
  ddg::RegType type() const { return type_; }
  const ddg::ValueSet& values() const { return values_; }
  int value_count() const { return values_.count(); }
  const graph::LongestPaths& lp() const { return *lp_; }

  /// Cons(u^t) for value index i.
  const std::vector<ddg::NodeId>& cons(int value_index) const {
    return cons_[value_index];
  }
  /// pkill(u^t) for value index i: consumers not surely-read-before another
  /// consumer (the maximal elements of Cons under the forced-read order).
  const std::vector<ddg::NodeId>& pkill(int value_index) const {
    return pkill_[value_index];
  }

  ddg::NodeId value_node(int value_index) const {
    return values_.nodes[value_index];
  }
  int index_of(ddg::NodeId v) const { return values_.index_of[v]; }

  /// True when value i is dead before value j is defined in *every*
  /// schedule: each consumer of i reads no later than j's write
  /// (lp(u', node_j) >= delta_r(u') - delta_w(node_j) for all u').
  /// This is the section-3 "never simultaneously alive" test direction.
  bool surely_dead_before(int i, int j) const;

 private:
  const ddg::Ddg* ddg_;
  ddg::RegType type_;
  ddg::ValueSet values_;
  std::shared_ptr<const graph::LongestPaths> lp_;
  std::vector<std::vector<ddg::NodeId>> cons_;
  std::vector<std::vector<ddg::NodeId>> pkill_;
};

}  // namespace rs::core
