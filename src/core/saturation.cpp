#include "core/saturation.hpp"

#include "core/greedy_k.hpp"
#include "core/rs_exact.hpp"
#include "core/rs_ilp.hpp"
#include "graph/paths.hpp"
#include "support/assert.hpp"

namespace rs::core {

bool SaturationReport::fits(const std::vector<int>& limits) const {
  RS_REQUIRE(limits.size() == per_type.size(), "one limit per register type");
  for (std::size_t t = 0; t < per_type.size(); ++t) {
    if (per_type[t].rs > limits[t]) return false;
  }
  return true;
}

SaturationReport analyze(const ddg::Ddg& ddg, const AnalyzeOptions& opts) {
  SaturationReport report;
  for (ddg::RegType t = 0; t < ddg.type_count(); ++t) {
    TypeContext ctx(ddg, t);
    TypeSaturation ts;
    ts.type = t;
    ts.value_count = ctx.value_count();
    switch (opts.engine) {
      case RsEngine::Greedy: {
        const RsEstimate est = greedy_k(ctx, opts.greedy);
        ts.rs = est.rs;
        ts.proven = false;
        ts.witness = est.witness;
        break;
      }
      case RsEngine::ExactCombinatorial: {
        RsExactOptions ropts;
        ropts.time_limit_seconds = opts.time_limit_seconds;
        ropts.greedy = opts.greedy;
        const RsExactResult res = rs_exact(ctx, ropts);
        ts.rs = res.rs;
        ts.proven = res.proven;
        ts.witness = res.witness;
        break;
      }
      case RsEngine::ExactIlp: {
        RsIlpOptions iopts;
        iopts.mip.time_limit_seconds = opts.time_limit_seconds;
        const RsIlpResult res = rs_ilp(ctx, iopts);
        ts.rs = res.rs;
        ts.proven = res.proven;
        ts.witness = res.witness;
        break;
      }
    }
    report.per_type.push_back(std::move(ts));
  }
  return report;
}

PipelineResult ensure_limits(const ddg::Ddg& ddg, const std::vector<int>& limits,
                             const PipelineOptions& opts) {
  RS_REQUIRE(static_cast<int>(limits.size()) == ddg.type_count(),
             "one register limit per type");
  PipelineResult result{ddg, {}, true, {}};

  for (ddg::RegType t = 0; t < ddg.type_count(); ++t) {
    RS_REQUIRE(limits[t] >= 1, "need at least one register per type");
    // Fast path (start of section 3): |V_{R,t}| <= R_t bounds RS trivially.
    {
      const ddg::ValueSet vs(result.out, t);
      if (vs.count() <= limits[t]) {
        ReduceResult skip;
        skip.status = ReduceStatus::AlreadyFits;
        skip.achieved_rs = vs.count();
        skip.original_cp = graph::critical_path(result.out.graph());
        skip.critical_path = skip.original_cp;
        result.per_type.push_back(std::move(skip));
        continue;
      }
    }
    ReduceOptions ropts = opts.reduce;
    TypeContext ctx(result.out, t);
    ReduceResult red = opts.exact_reduction
                           ? reduce_optimal(ctx, limits[t], ropts)
                           : reduce_greedy(ctx, limits[t], ropts);

    if (opts.verify && !opts.exact_reduction &&
        red.status == ReduceStatus::Reduced) {
      // The serialization heuristic stops on its own (lower-bound) RS
      // estimate; confirm with the exact engine and tighten if needed.
      for (int extra = 0; extra < 4; ++extra) {
        TypeContext vctx(*red.extended, t);
        RsExactOptions vopts;
        vopts.time_limit_seconds = opts.analyze.time_limit_seconds;
        const RsExactResult verify = rs_exact(vctx, vopts);
        if (verify.rs <= limits[t]) {
          red.achieved_rs = verify.rs;
          break;
        }
        ReduceOptions tighter = ropts;
        tighter.rs_upper = verify.rs;
        ReduceResult again = reduce_greedy(vctx, limits[t], tighter);
        again.original_cp = red.original_cp;
        again.arcs_added += red.arcs_added;
        red = std::move(again);
        if (red.status != ReduceStatus::Reduced) break;
      }
    }

    switch (red.status) {
      case ReduceStatus::AlreadyFits:
      case ReduceStatus::Reduced:
        RS_CHECK(red.extended.has_value());
        result.out = *red.extended;
        break;
      case ReduceStatus::SpillNeeded:
        result.success = false;
        result.note += "type " + std::to_string(t) +
                       ": spilling unavoidable within limits; ";
        break;
      case ReduceStatus::LimitHit:
        result.success = false;
        result.note += "type " + std::to_string(t) +
                       ": reduction budget exhausted; ";
        break;
    }
    result.per_type.push_back(std::move(red));
  }
  return result;
}

}  // namespace rs::core
