#include "core/saturation.hpp"

#include "core/greedy_k.hpp"
#include "core/portfolio.hpp"
#include "core/rs_exact.hpp"
#include "core/rs_ilp.hpp"
#include "graph/paths.hpp"
#include "support/assert.hpp"

namespace rs::core {

bool SaturationReport::fits(const std::vector<int>& limits) const {
  RS_REQUIRE(limits.size() == per_type.size(), "one limit per register type");
  for (std::size_t t = 0; t < per_type.size(); ++t) {
    if (per_type[t].rs > limits[t]) return false;
  }
  return true;
}

SaturationReport analyze(const ddg::Ddg& ddg, const AnalyzeOptions& opts,
                         const support::SolveContext& solve, const Exec& exec) {
  SaturationReport report;
  for (ddg::RegType t = 0; t < ddg.type_count(); ++t) {
    // Even split of whatever budget is left over the types still to run.
    const support::SolveContext type_solve = solve.split(ddg.type_count() - t);
    TypeContext ctx(ddg, t);
    TypeSaturation ts;
    ts.type = t;
    ts.value_count = ctx.value_count();
    switch (opts.engine) {
      case RsEngine::Greedy: {
        const RsEstimate est = greedy_k(ctx, opts.greedy, type_solve);
        ts.rs = est.rs;
        ts.proven = false;
        ts.witness = est.witness;
        ts.stats = est.stats;
        break;
      }
      case RsEngine::ExactCombinatorial: {
        RsExactOptions ropts;
        ropts.greedy = opts.greedy;
        const RsExactResult res = rs_exact(ctx, ropts, type_solve);
        ts.rs = res.rs;
        ts.proven = res.proven;
        ts.witness = res.witness;
        ts.stats = res.stats;
        break;
      }
      case RsEngine::ExactIlp: {
        const RsIlpResult res = rs_ilp(ctx, RsIlpOptions{}, type_solve);
        ts.rs = res.rs;
        ts.proven = res.proven;
        ts.witness = res.witness;
        ts.stats = res.solve_stats;
        break;
      }
      case RsEngine::Portfolio: {
        PortfolioOptions popts;
        popts.greedy = opts.greedy;
        const PortfolioResult res = rs_portfolio(ctx, popts, type_solve, exec);
        ts.rs = res.rs;
        ts.proven = res.proven;
        ts.witness = res.witness;
        ts.stats = res.stats;  // canonical: zeroed counters, stop kept
        report.portfolio.merge(res.tally);
        break;
      }
    }
    report.stats.merge(ts.stats);
    report.per_type.push_back(std::move(ts));
  }
  return report;
}

namespace {

// Verification step of the reduce pipeline, selected by the analyze engine:
// the combinatorial branch-and-bound for Greedy and ExactCombinatorial (the
// historical behavior, byte-identical), the intLP for ExactIlp, and the
// strategy race for Portfolio. Proven engines agree on RS, so the choice
// affects latency and stats, never the reduction decision.
struct VerifyOutcome {
  int rs = 0;
  support::SolveStats stats;
  PortfolioTally tally;
};

VerifyOutcome verify_rs(const TypeContext& ctx, const PipelineOptions& opts,
                        const support::SolveContext& solve, const Exec& exec) {
  VerifyOutcome v;
  switch (opts.analyze.engine) {
    case RsEngine::Greedy:
    case RsEngine::ExactCombinatorial: {
      const RsExactResult r = rs_exact(ctx, RsExactOptions{}, solve);
      v.rs = r.rs;
      v.stats = r.stats;
      break;
    }
    case RsEngine::ExactIlp: {
      const RsIlpResult r = rs_ilp(ctx, RsIlpOptions{}, solve);
      v.rs = r.rs;
      v.stats = r.solve_stats;
      break;
    }
    case RsEngine::Portfolio: {
      PortfolioOptions popts;
      popts.greedy = opts.analyze.greedy;
      const PortfolioResult r = rs_portfolio(ctx, popts, solve, exec);
      v.rs = r.rs;
      v.stats = r.stats;  // canonical: zeroed counters, stop kept
      v.tally = r.tally;
      break;
    }
  }
  return v;
}

}  // namespace

PipelineResult ensure_limits(const ddg::Ddg& ddg, const std::vector<int>& limits,
                             const PipelineOptions& opts,
                             const support::SolveContext& solve,
                             const Exec& exec) {
  RS_REQUIRE(static_cast<int>(limits.size()) == ddg.type_count(),
             "one register limit per type");
  PipelineResult result{ddg, {}, true, {}, {}, {}};

  for (ddg::RegType t = 0; t < ddg.type_count(); ++t) {
    RS_REQUIRE(limits[t] >= 1, "need at least one register per type");
    // Fast path (start of section 3): |V_{R,t}| <= R_t bounds RS trivially
    // (free, so it runs even under an expired or cancelled context).
    {
      const ddg::ValueSet vs(result.out, t);
      if (vs.count() <= limits[t]) {
        ReduceResult skip;
        skip.status = ReduceStatus::AlreadyFits;
        skip.achieved_rs = vs.count();
        skip.original_cp = graph::critical_path(result.out.graph());
        skip.critical_path = skip.original_cp;
        result.per_type.push_back(std::move(skip));
        continue;
      }
    }
    if (solve.stop_requested()) {
      // Interrupted between types: every remaining pressured type is
      // unprocessed.
      ReduceResult skip;
      skip.status = ReduceStatus::LimitHit;
      skip.stats.stop = solve.cause_now(false);
      skip.original_cp = graph::critical_path(result.out.graph());
      skip.critical_path = skip.original_cp;
      result.success = false;
      result.note += "type " + std::to_string(t) + ": " +
                     support::stop_cause_token(skip.stats.stop) +
                     " before reduction; ";
      result.stats.merge(skip.stats);
      result.per_type.push_back(std::move(skip));
      continue;
    }
    // Even split of the remaining budget over the types still to reduce.
    const support::SolveContext type_solve = solve.split(ddg.type_count() - t);
    ReduceOptions ropts = opts.reduce;
    TypeContext ctx(result.out, t);
    ReduceResult red = opts.exact_reduction
                           ? reduce_optimal(ctx, limits[t], ropts, type_solve)
                           : reduce_greedy(ctx, limits[t], ropts, type_solve);

    if (opts.verify && !opts.exact_reduction &&
        red.status == ReduceStatus::Reduced) {
      // The serialization heuristic stops on its own (lower-bound) RS
      // estimate; confirm with a proof-capable engine and tighten if
      // needed.
      for (int extra = 0; extra < 4; ++extra) {
        TypeContext vctx(*red.extended, t);
        const VerifyOutcome verify = verify_rs(vctx, opts, type_solve, exec);
        red.stats.merge(verify.stats);
        result.portfolio.merge(verify.tally);
        if (verify.rs <= limits[t]) {
          red.achieved_rs = verify.rs;
          break;
        }
        ReduceOptions tighter = ropts;
        tighter.rs_upper = verify.rs;
        ReduceResult again = reduce_greedy(vctx, limits[t], tighter, type_solve);
        again.original_cp = red.original_cp;
        again.arcs_added += red.arcs_added;
        again.stats.merge(red.stats);
        red = std::move(again);
        if (red.status != ReduceStatus::Reduced) break;
      }
    }

    result.stats.merge(red.stats);
    switch (red.status) {
      case ReduceStatus::AlreadyFits:
      case ReduceStatus::Reduced:
        RS_CHECK(red.extended.has_value());
        result.out = *red.extended;
        break;
      case ReduceStatus::SpillNeeded:
        result.success = false;
        result.note += "type " + std::to_string(t) +
                       ": spilling unavoidable within limits; ";
        break;
      case ReduceStatus::LimitHit:
        result.success = false;
        result.note += "type " + std::to_string(t) +
                       ": reduction budget exhausted; ";
        break;
    }
    result.per_type.push_back(std::move(red));
  }
  return result;
}

}  // namespace rs::core
