#include "core/min_reg.hpp"

#include "graph/paths.hpp"
#include "support/assert.hpp"

namespace rs::core {

MinRegResult minimize_register_need(const TypeContext& ctx,
                                    sched::Time cp_budget,
                                    const SrcOptions& opts,
                                    ArcLatencyMode mode,
                                    const support::SolveContext& solve) {
  MinRegResult result;
  const sched::Time budget =
      cp_budget > 0 ? cp_budget : graph::critical_path(ctx.ddg().graph());
  if (ctx.value_count() == 0) {
    result.proven = true;
    result.sigma = sched::asap(ctx.ddg());
    result.extended = ctx.ddg();
    result.critical_path = budget;
    return result;
  }
  // Paper (end of section 4): only schedules whose Theorem-4.2 extension
  // keeps the DAG property are admissible witnesses — otherwise the
  // "minimal-need DAG" this function promises would be cyclic. Compose
  // with any caller-provided filter.
  SrcOptions filtered = opts;
  filtered.leaf_filter = [&ctx, mode, &opts](const sched::Schedule& s) {
    if (opts.leaf_filter && !opts.leaf_filter(s)) return false;
    return extend_by_schedule(ctx, s, mode).is_dag;
  };
  for (int r = 1; r <= ctx.value_count(); ++r) {
    SrcSolver solver(ctx, r);
    SrcResult feas = solver.feasible(budget, 0, filtered, solve);
    result.nodes += feas.nodes;
    result.stats.merge(feas.stats);
    if (feas.status == SrcStatus::LimitHit && !feas.feasible) {
      result.proven = false;
      result.min_need = r;  // lower bound only
      return result;
    }
    if (feas.feasible) {
      result.proven = true;
      result.min_need = feas.rn;
      result.sigma = feas.sigma;
      ExtensionResult ext = extend_by_schedule(ctx, feas.sigma, mode);
      result.arcs_added = ext.arcs_added;
      result.critical_path = graph::critical_path(ext.extended.graph());
      result.extended = std::move(ext.extended);
      return result;
    }
  }
  // Every register count was infeasible within the budget: the makespan
  // budget is below the critical path, or (with visible write offsets) no
  // schedule admits a DAG-preserving Theorem-4.2 extension. Report an
  // unproven |values| bound with no extension — the reduce path treats the
  // analogous exhaustion as SpillNeeded rather than asserting, and a
  // user-supplied cp= must not be able to trip an internal invariant.
  result.proven = false;
  result.min_need = ctx.value_count();
  return result;
}

}  // namespace rs::core
