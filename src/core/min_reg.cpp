#include "core/min_reg.hpp"

#include "graph/paths.hpp"
#include "support/assert.hpp"

namespace rs::core {

MinRegResult minimize_register_need(const TypeContext& ctx,
                                    sched::Time cp_budget,
                                    const SrcOptions& opts,
                                    ArcLatencyMode mode,
                                    const support::SolveContext& solve) {
  MinRegResult result;
  const sched::Time budget =
      cp_budget > 0 ? cp_budget : graph::critical_path(ctx.ddg().graph());
  if (ctx.value_count() == 0) {
    result.proven = true;
    result.sigma = sched::asap(ctx.ddg());
    result.extended = ctx.ddg();
    result.critical_path = budget;
    return result;
  }
  for (int r = 1; r <= ctx.value_count(); ++r) {
    SrcSolver solver(ctx, r);
    SrcResult feas = solver.feasible(budget, 0, opts, solve);
    result.nodes += feas.nodes;
    result.stats.merge(feas.stats);
    if (feas.status == SrcStatus::LimitHit && !feas.feasible) {
      result.proven = false;
      result.min_need = r;  // lower bound only
      return result;
    }
    if (feas.feasible) {
      result.proven = true;
      result.min_need = feas.rn;
      result.sigma = feas.sigma;
      ExtensionResult ext = extend_by_schedule(ctx, feas.sigma, mode);
      result.arcs_added = ext.arcs_added;
      result.critical_path = graph::critical_path(ext.extended.graph());
      result.extended = std::move(ext.extended);
      return result;
    }
  }
  RS_CHECK(false);  // r == value_count is always feasible
  return result;
}

}  // namespace rs::core
