#include "core/reduce_ilp.hpp"

#include <cmath>
#include <string>

#include "core/ilp_common.hpp"
#include "graph/paths.hpp"
#include "sched/lifetime.hpp"
#include "lp/linearize.hpp"
#include "support/assert.hpp"

namespace rs::core {

namespace {

SkeletonOptions to_skeleton(const ReduceIlpOptions& opts) {
  SkeletonOptions s;
  s.horizon = opts.horizon;
  s.eliminate_redundant_arcs = opts.eliminate_redundant_arcs;
  s.eliminate_never_alive_pairs = opts.eliminate_never_alive_pairs;
  return s;
}

}  // namespace

ReduceIlpResult reduce_ilp_fixed(const TypeContext& ctx, int R,
                                 const ReduceIlpOptions& opts,
                                 const support::SolveContext& solve) {
  RS_REQUIRE(R >= 1, "need at least one register");
  RS_REQUIRE(ctx.ddg().bottom().has_value(),
             "section-4 objective needs a normalized DDG (sigma(⊥))");
  const int nv = ctx.value_count();

  IlpSkeleton skel = build_ilp_skeleton(ctx, to_skeleton(opts));
  lp::Model& m = skel.model;

  // Register-assignment binaries: value u stored in exactly one register.
  // x[i * R + c] for value index i, color c.
  std::vector<lp::Var> x(static_cast<std::size_t>(nv) * R);
  for (int i = 0; i < nv; ++i) {
    lp::LinExpr one_reg;
    for (int c = 0; c < R; ++c) {
      x[i * R + c] = m.add_binary("x." + std::to_string(i) + "." +
                                  std::to_string(c));
      one_reg.add(x[i * R + c], 1.0);
    }
    m.add_constraint(one_reg, lp::Sense::EQ, 1.0,
                     "onereg." + std::to_string(i));
  }
  // Interfering values cannot share a register.
  for (int i = 0; i < nv; ++i) {
    for (int j = i + 1; j < nv; ++j) {
      if (skel.pair_eliminated(i, j)) continue;  // never interfere
      const lp::Var s = skel.s[skel.pair_index(i, j)];
      for (int c = 0; c < R; ++c) {
        lp::LinExpr e = lp::LinExpr(x[i * R + c]) + lp::LinExpr(x[j * R + c]);
        e.add(s, 1.0);
        m.add_constraint(e, lp::Sense::LE, 2.0,
                         "share." + std::to_string(i) + "." +
                             std::to_string(j) + "." + std::to_string(c));
      }
    }
  }
  if (opts.require_all_colors_used) {
    for (int c = 0; c < R; ++c) {
      lp::LinExpr used;
      for (int i = 0; i < nv; ++i) used.add(x[i * R + c], 1.0);
      m.add_constraint(used, lp::Sense::GE, 1.0,
                       "used." + std::to_string(c));
    }
  }

  if (opts.forbid_circuits) {
    // Topological-sort existence for the extension (end of section 4):
    // orientation binaries p_ij <=> LT(i) precedes LT(j), order potentials
    // pi_u, and conditional ordering constraints along every arc the
    // Theorem-4.2 construction would add.
    const int n = ctx.ddg().graph().node_count();
    std::vector<lp::Var> pi(n);
    for (graph::NodeId u = 0; u < n; ++u) {
      pi[u] = m.add_int(0, n - 1, "pi." + std::to_string(u));
    }
    for (const graph::Edge& e : ctx.ddg().graph().edges()) {
      m.add_constraint(lp::LinExpr(pi[e.dst]) - lp::LinExpr(pi[e.src]),
                       lp::Sense::GE, 1.0,
                       "piarc." + std::to_string(e.src) + "." +
                           std::to_string(e.dst));
    }
    for (int i = 0; i < nv; ++i) {
      for (int j = 0; j < nv; ++j) {
        if (i == j) continue;
        // Statically ordered pairs are already covered by pi along paths.
        if (ctx.surely_dead_before(i, j) || ctx.surely_dead_before(j, i)) {
          continue;
        }
        const ddg::NodeId vj = ctx.value_node(j);
        const std::string pid =
            "p." + std::to_string(i) + "." + std::to_string(j);
        // p <=> kill_i <= def_j, i.e. def_j - kill_i >= 0.
        const lp::Var p = m.add_binary(pid);
        lp::LinExpr defj_minus_killi =
            lp::LinExpr(skel.sigma[vj]) - lp::LinExpr(skel.kill[i]);
        defj_minus_killi.add_constant(
            static_cast<double>(ctx.ddg().op(vj).delta_w));
        lp::add_iff_ge(m, p, defj_minus_killi, 0.0, pid);
        // If p then every added arc (reader of i -> vj) must go forward
        // in the pi order: pi_vj >= pi_reader + 1 - n (1 - p).
        for (const ddg::NodeId reader : ctx.cons(i)) {
          if (reader == vj) continue;
          lp::LinExpr order = lp::LinExpr(pi[vj]) - lp::LinExpr(pi[reader]);
          order.add(p, -static_cast<double>(n));
          m.add_constraint(order, lp::Sense::GE, 1.0 - static_cast<double>(n),
                           pid + ".r" + std::to_string(reader));
        }
      }
    }
  }

  // Objective: minimize the total schedule time sigma(⊥).
  m.set_objective(lp::LinExpr(skel.sigma[*ctx.ddg().bottom()]),
                  /*maximize=*/false);

  ReduceIlpResult result;
  result.variables = m.var_count();
  result.constraints = m.constraint_count();
  const lp::MipResult mip = lp::solve_mip(m, opts.mip, solve);
  result.nodes = mip.nodes;
  result.stats = mip.stats;
  if (mip.status == lp::MipStatus::Infeasible) {
    result.status = ReduceStatus::SpillNeeded;  // at this R; caller decrements
    return result;
  }
  if (!mip.has_solution()) {
    result.status = ReduceStatus::LimitHit;
    return result;
  }
  result.status = ReduceStatus::Reduced;
  result.colors_used = R;
  result.sigma = schedule_from_solution(skel, mip.x);
  result.makespan = static_cast<sched::Time>(std::llround(mip.objective));
  result.achieved_rn =
      sched::register_need(ctx.ddg(), ctx.type(), result.sigma);
  ExtensionResult ext = extend_by_schedule(ctx, result.sigma, opts.arc_mode);
  if (!ext.is_dag && !opts.forbid_circuits) {
    // The witness schedule's extension lost the DAG property (read/write
    // tie circuits, or negative-latency arcs on VLIW). Re-solve with the
    // paper's O(n^3) topological-sort-existence block enabled.
    ReduceIlpOptions strict = opts;
    strict.forbid_circuits = true;
    ReduceIlpResult again = reduce_ilp_fixed(ctx, R, strict, solve);
    again.stats.merge(result.stats);
    return again;
  }
  RS_CHECK(ext.is_dag);
  result.arcs_added = ext.arcs_added;
  result.critical_path = graph::critical_path(ext.extended.graph());
  result.extended = std::move(ext.extended);
  return result;
}

ReduceIlpResult reduce_ilp(const TypeContext& ctx, int R,
                           const ReduceIlpOptions& opts,
                           const support::SolveContext& solve) {
  support::SolveStats loop;
  ReduceIlpResult last;
  for (int r = R; r >= 1; --r) {
    last = reduce_ilp_fixed(ctx, r, opts, solve);
    loop.merge(last.stats);
    last.stats = loop;
    if (last.status == ReduceStatus::Reduced ||
        last.status == ReduceStatus::LimitHit) {
      return last;
    }
  }
  // Even one register is impossible: spilling is unavoidable (section 4).
  last.status = ReduceStatus::SpillNeeded;
  return last;
}

}  // namespace rs::core
