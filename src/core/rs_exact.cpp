#include "core/rs_exact.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/metrics.hpp"

namespace rs::core {

namespace {

struct Search {
  const TypeContext& ctx;
  const RsExactOptions& opts;
  const support::SolveContext& solve;

  std::vector<int> branch_values;  // value indices with >1 candidate
  KillingFunction current;
  RsExactResult best;
  bool complete = true;
  bool node_limit_hit = false;
  long nodes = 0;
  long long prunes = 0;
  long long expansions = 0;  // killing_need evaluations (antichain solves)
  std::size_t max_depth = 0;

  Search(const TypeContext& c, const RsExactOptions& o,
         const support::SolveContext& s)
      : ctx(c), opts(o), solve(s), current(c.value_count()) {}

  bool limits_hit() {
    // Cancel flag every node, deadline clock coarsely (see SolveContext).
    if (solve.should_stop(nodes)) return true;
    if (opts.node_limit > 0 && nodes >= opts.node_limit) {
      node_limit_hit = true;
      return true;
    }
    return false;
  }

  void accept_leaf() {
    ++expansions;
    const auto need = killing_need(ctx, current);
    if (!need.has_value()) return;  // invalid completion
    if (need->need > best.rs) {
      best.rs = need->need;
      best.killing = current;
      best.antichain = need->antichain;
    }
  }

  void dfs(std::size_t depth) {
    if (limits_hit()) {
      complete = false;
      return;
    }
    ++nodes;
    max_depth = std::max(max_depth, depth);
    // Admissible bound: antichain of the partially constrained DV DAG.
    ++expansions;
    const auto bound = killing_need(ctx, current);
    if (!bound.has_value()) return;  // cyclic extension: prune subtree
    if (bound->need <= best.rs) {
      ++prunes;
      return;
    }

    if (depth == branch_values.size()) {
      accept_leaf();
      return;
    }
    const int i = branch_values[depth];
    for (const ddg::NodeId cand : ctx.pkill(i)) {
      current.killer[i] = cand;
      dfs(depth + 1);
      if (limits_hit()) {
        complete = false;
        break;
      }
    }
    current.killer[i] = -1;
  }
};

}  // namespace

RsExactResult rs_exact(const TypeContext& ctx, const RsExactOptions& opts,
                       const support::SolveContext& solve) {
  Search search(ctx, opts, solve);
  const int nv = ctx.value_count();
  if (nv == 0) {
    RsExactResult empty;
    empty.proven = true;
    empty.killing = KillingFunction(0);
    empty.witness = sched::asap(ctx.ddg());
    return empty;
  }

  // Forced assignments (single potential killer) are fixed up front;
  // branching happens only on genuinely free values, most constrained first.
  for (int i = 0; i < nv; ++i) {
    if (ctx.pkill(i).size() == 1) {
      search.current.killer[i] = ctx.pkill(i)[0];
    } else {
      search.branch_values.push_back(i);
    }
  }
  std::sort(search.branch_values.begin(), search.branch_values.end(),
            [&](int a, int b) { return ctx.pkill(a).size() < ctx.pkill(b).size(); });

  support::SolveStats greedy_stats;
  if (opts.warm_start) {
    const RsEstimate greedy = greedy_k(ctx, opts.greedy, solve);
    search.best.rs = greedy.rs;
    search.best.killing = greedy.killing;
    search.best.antichain = greedy.antichain;
    greedy_stats = greedy.stats;
  } else {
    search.best.rs = 0;
    search.best.killing = KillingFunction(nv);
  }

  search.dfs(0);

  RsExactResult result = std::move(search.best);
  result.proven = search.complete;
  result.nodes = search.nodes;
  result.stats.nodes = search.nodes;
  result.stats.prunes = search.prunes;
  result.stats.solves = 1;
  result.stats.stop = search.complete ? support::StopCause::Proven
                                      : solve.cause_now(search.node_limit_hit);
  if (const support::SolverProfile* prof = solve.profile()) {
    prof->exact_expansions->inc(static_cast<std::uint64_t>(search.expansions));
    prof->exact_max_depth->observe(static_cast<double>(search.max_depth));
  }
  solve.record(result.stats);
  result.stats.merge(greedy_stats);  // after record(): greedy recorded itself
  if (result.killing.complete()) {
    result.witness = saturating_schedule(ctx, result.killing, result.antichain);
  }
  return result;
}

}  // namespace rs::core
