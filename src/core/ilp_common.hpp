// Shared skeleton of the paper's intLP formulations (sections 3 and 4):
// scheduling variables, killing dates, and pairwise interference binaries.
// rs_ilp.hpp adds the independent-set layer (section 3); reduce_ilp.hpp adds
// the register-assignment/coloring layer (section 4).
#pragma once

#include <vector>

#include "core/context.hpp"
#include "lp/model.hpp"
#include "sched/schedule.hpp"

namespace rs::core {

struct SkeletonOptions {
  /// Horizon T; <= 0 selects the paper's T = sum of positive arc latencies.
  sched::Time horizon = 0;
  bool eliminate_redundant_arcs = true;     // section-3 optimization 1
  bool eliminate_never_alive_pairs = true;  // section-3 optimization 2
};

/// The common model fragment. For a never-alive pair the `s` handle is
/// invalid (treat s as the constant 0).
struct IlpSkeleton {
  lp::Model model;
  std::vector<lp::Var> sigma;  // per node
  std::vector<lp::Var> kill;   // per value index
  std::vector<lp::Var> s;      // per unordered pair, pair_index order
  sched::Time horizon = 0;

  int nv = 0;
  int pair_index(int i, int j) const {
    if (i > j) std::swap(i, j);
    return i * nv - i * (i + 1) / 2 + (j - i - 1);
  }
  bool pair_eliminated(int i, int j) const {
    return !s[pair_index(i, j)].valid();
  }
};

IlpSkeleton build_ilp_skeleton(const TypeContext& ctx,
                               const SkeletonOptions& opts);

/// Reads a Schedule out of a MIP solution vector.
sched::Schedule schedule_from_solution(const IlpSkeleton& skel,
                                       const std::vector<double>& x);

}  // namespace rs::core
