// Top-level API: the paper's figure-1 pipeline.
//
//   DAG -> [RS computation] -> (fits? done) -> [RS reduction] -> DAG'
//
// After this pass the DDG carries no register constraints: any schedule a
// downstream (resource-constrained, register-blind) scheduler produces is
// guaranteed allocatable within the register file.
#pragma once

#include <string>
#include <vector>

#include "core/context.hpp"
#include "core/exec.hpp"
#include "core/portfolio.hpp"
#include "core/reduce.hpp"

namespace rs::core {

enum class RsEngine {
  Greedy,            // heuristic only (witnessed lower estimate)
  ExactCombinatorial,  // branch-and-bound over killing functions
  ExactIlp,          // the section-3 intLP
  Portfolio,         // race all of the above; first proven answer wins
};

struct AnalyzeOptions {
  RsEngine engine = RsEngine::ExactCombinatorial;
  GreedyOptions greedy;
};

struct TypeSaturation {
  ddg::RegType type = 0;
  int value_count = 0;
  int rs = 0;        // register saturation (or witnessed estimate)
  bool proven = false;  // true when rs is exactly RS_t(G)
  sched::Schedule witness;  // schedule with RN == rs
  support::SolveStats stats;  // this type's solve effort + stop cause
};

struct SaturationReport {
  std::vector<TypeSaturation> per_type;
  support::SolveStats stats;  // aggregate over all types
  PortfolioTally portfolio;   // race outcomes (engine == Portfolio only)

  const TypeSaturation& of(ddg::RegType t) const { return per_type[t]; }
  /// True when rs <= limits[t] for every type (no reduction needed).
  bool fits(const std::vector<int>& limits) const;
};

/// Computes (or estimates) RS for every register type. The paper's fast
/// path applies: a type with |values| <= limit never needs analysis, but RS
/// is still reported for completeness. The context's budget is split evenly
/// across the types still to analyze (each type gets remaining / types_left
/// seconds, so an easy early type donates its slack to the later ones).
/// `exec` supplies the pool the Portfolio engine races strategies on; the
/// other engines ignore it.
SaturationReport analyze(const ddg::Ddg& ddg, const AnalyzeOptions& opts = {},
                         const support::SolveContext& solve = {},
                         const Exec& exec = {});

struct PipelineOptions {
  AnalyzeOptions analyze;
  ReduceOptions reduce;
  /// Use the exact reduction (decrement-loop SRC search) instead of the
  /// CC'01 serialization heuristic.
  bool exact_reduction = false;
  /// After a heuristic reduction, re-verify RS(G-bar) with the exact engine
  /// and keep reducing if the heuristic under-estimated (belt and braces —
  /// heuristic RS* is a lower bound, so unverified reductions could leave
  /// RS above the limit in rare cases).
  bool verify = true;
};

struct PipelineResult {
  ddg::Ddg out;                      // register-pressure-safe DDG
  std::vector<ReduceResult> per_type;
  bool success = true;               // all types within limits
  std::string note;                  // diagnostics when success is false
  support::SolveStats stats;         // aggregate over all types' sub-solves
  PortfolioTally portfolio;          // verify-race outcomes (Portfolio only)
};

/// Runs the full early-register-pressure pipeline against per-type register
/// file sizes. limits.size() must equal ddg.type_count(). The context's
/// budget is split evenly across the types still to reduce; a cancelled
/// context stops between types and reports the remaining ones as LimitHit.
/// The verification engine follows opts.analyze.engine: the exact
/// branch-and-bound for Greedy/ExactCombinatorial (the historical
/// behavior), the intLP for ExactIlp, and the strategy race — on `exec`'s
/// pool — for Portfolio.
PipelineResult ensure_limits(const ddg::Ddg& ddg, const std::vector<int>& limits,
                             const PipelineOptions& opts = {},
                             const support::SolveContext& solve = {},
                             const Exec& exec = {});

}  // namespace rs::core
