// Exact solver for the SRC problem (Definition 4.3): does a schedule exist
// with register need <= R and total time <= P? — plus the two optimization
// modes the section-4 reduction needs:
//   * minimum makespan subject to RN <= R  (the intLP's "minimize sigma_bot");
//   * the paper's decrement loop, i.e. lexicographically maximize the
//     achieved register need (<= R), then minimize makespan.
//
// Search: depth-first assignment of issue times in a fixed topological
// order within [earliest-from-predecessors, P - LongestPathFrom] windows.
// Pruning uses a monotone lower bound on the register need of any
// completion: each already-defined value certainly lives until the larger
// of its already-scheduled reads and the earliest possible issue of its
// unscheduled consumers, and those forced intervals only grow as the
// schedule completes. For VLIW targets an optional leaf filter rejects
// schedules whose Theorem-4.2 arc set would create a circuit (the paper's
// topological-sort-existence requirement).
#pragma once

#include <functional>

#include "core/context.hpp"
#include "sched/schedule.hpp"
#include "support/solve_context.hpp"

namespace rs::core {

struct SrcOptions {
  long node_limit = 5000000;  // <= 0: unlimited
  /// Extra cycles beyond the critical path explored before giving up on
  /// feasibility (bounds the makespan search).
  sched::Time slack_limit = 64;
  /// Reject leaves whose induced extension would not admit a topological
  /// sort (only meaningful when delta_w offsets are visible — VLIW/EPIC).
  std::function<bool(const sched::Schedule&)> leaf_filter;
};

enum class SrcStatus {
  Proven,     // answer is exact
  LimitHit,   // budget exhausted; result is a bound / best-so-far
};

struct SrcResult {
  bool feasible = false;
  sched::Schedule sigma;       // witness when feasible
  sched::Time makespan = 0;    // sigma(⊥) of the witness
  int rn = 0;                  // register need of the witness
  SrcStatus status = SrcStatus::Proven;
  long nodes = 0;
  support::SolveStats stats;   // per-call search effort + stop cause
};

class SrcSolver {
 public:
  /// R: available registers of ctx's type.
  SrcSolver(const TypeContext& ctx, int R);

  /// Is there sigma with RN <= R, sigma(⊥) <= P, and (if rn_target > 0)
  /// RN >= rn_target? Observes the context's deadline and cancel token
  /// (coarsely, every SolveContext::kPollInterval DFS nodes).
  SrcResult feasible(sched::Time P, int rn_target, const SrcOptions& opts,
                     const support::SolveContext& solve = {});

  /// Minimum sigma(⊥) subject to RN <= R; searches P upward from the
  /// critical path to CP + slack_limit. One context budgets the whole sweep.
  SrcResult minimize_makespan(const SrcOptions& opts,
                              const support::SolveContext& solve = {});

  /// Paper's decrement loop: largest achievable RN <= R (starting from
  /// rs_upper), then minimum makespan at that RN.
  SrcResult reduce_lexicographic(int rs_upper, const SrcOptions& opts,
                                 const support::SolveContext& solve = {});

 private:
  const TypeContext& ctx_;
  int R_;
};

}  // namespace rs::core
