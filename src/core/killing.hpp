// Killing functions and the disjoint-value DAG (Touati CC'01, recalled in
// the paper's sections 1 and 3).
//
// A killing function k maps each value u^t to one of its potential killers.
// The *killing-extended* graph G->k adds arcs (v' -> k(u)) with latency
// delta_r(v') - delta_r(k(u)) for every other potential killer v', forcing
// k(u) to be the last reader under every schedule of G->k. k is *valid*
// when G->k stays acyclic (guarantees both schedulability and a well-formed
// disjoint-value order).
//
// The disjoint-value DAG DV_k has an arc u -> v iff u's value is surely dead
// before v's is defined:  lp_{G->k}(k(u), v) >= delta_r(k(u)) - delta_w(v).
// Theorem [CC'01]: sets of values that can be simultaneously alive under
// schedules of G->k are exactly the antichains of DV_k's reachability
// order, so RN_k = maximum antichain, and RS = max over valid k of RN_k.
#pragma once

#include <optional>
#include <vector>

#include "core/context.hpp"
#include "graph/digraph.hpp"
#include "sched/schedule.hpp"

namespace rs::core {

/// killer[i] = node chosen to kill value i, or -1 while unassigned.
struct KillingFunction {
  std::vector<ddg::NodeId> killer;

  explicit KillingFunction(int value_count = 0) : killer(value_count, -1) {}
  bool complete() const {
    for (const ddg::NodeId v : killer) {
      if (v < 0) return false;
    }
    return true;
  }
};

/// G->k for the assigned prefix of k (unassigned values contribute no
/// arcs). Arcs from other *potential killers* only — consumers outside
/// pkill are already forced to read no later than some pkill member.
graph::Digraph killing_extended_graph(const TypeContext& ctx,
                                      const KillingFunction& k);

/// True iff every assigned killer is in pkill(u) and G->k is acyclic.
bool is_valid_killing(const TypeContext& ctx, const KillingFunction& k);

/// DV_k over value indices for the assigned prefix of k. Returns nullopt
/// when k is invalid (extended graph cyclic or value order degenerate).
std::optional<graph::Digraph> disjoint_value_dag(const TypeContext& ctx,
                                                 const KillingFunction& k);

/// Register need of a killing function and a witness antichain.
struct KillingNeed {
  int need = 0;
  std::vector<int> antichain;  // value indices
};

/// RN_k = maximum antichain of DV_k's reachability order. nullopt when k
/// is invalid. For partial k this is an *upper bound* on any completion
/// (more assignments only add DV arcs).
std::optional<KillingNeed> killing_need(const TypeContext& ctx,
                                        const KillingFunction& k);

/// Constructs the saturating-schedule certificate: a valid schedule of the
/// ORIGINAL DDG under which all antichain values are simultaneously alive
/// (adds pairwise arcs v -> k(u) with latency delta_w(v)-delta_r(k(u))+1 to
/// G->k, then takes ASAP). The returned schedule witnesses RN >= |antichain|.
sched::Schedule saturating_schedule(const TypeContext& ctx,
                                    const KillingFunction& k,
                                    const std::vector<int>& antichain);

}  // namespace rs::core
