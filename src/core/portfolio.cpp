#include "core/portfolio.hpp"

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "graph/paths.hpp"
#include "support/assert.hpp"
#include "support/metrics.hpp"
#include "support/timer.hpp"

namespace rs::core {

const char* strategy_token(Strategy s) {
  switch (s) {
    case Strategy::Exact:
      return "exact";
    case Strategy::Ilp:
      return "ilp";
    case Strategy::Greedy:
      return "greedy";
    case Strategy::Bisect:
      return "bisect";
  }
  return "?";
}

namespace {

using support::StopCause;

// One racing strategy's observable outcome. `score` orders the no-proof
// fallback (larger is better: both RS estimates and min-need bounds are
// lower bounds, so the largest is the tightest).
struct Attempt {
  Strategy strategy = Strategy::Exact;
  support::CancelToken token;
  bool ran = false;
  bool proven = false;
  long long score = -1;
  StopCause stop = StopCause::Cancelled;
  // Start/end offsets against the race-local timer (seconds; -1 = never
  // started). Observability only — results never depend on these.
  double start_s = -1;
  double end_s = -1;
};

// Runs body(i) for every attempt — on the pool when exec provides one,
// inline in priority order otherwise — cancelling the rest as soon as one
// attempt proves, and forwarding parent cancellation to every child token
// while waiting. Returns the winning index: first proven in array
// (priority) order; else best score, ties to the earlier strategy.
int pick_winner(const std::vector<Attempt>& attempts);

// Serial degrade: identical observable behavior to the inline TaskGroup
// path (priority order, early cancellation of the rest once one attempt
// proves), minus its per-attempt allocations — no task closures, no shared
// won flag, no wait machinery. The race setup cost is what the portfolio
// adds on top of the best fixed engine, so it is kept near zero.
int race_serial(std::vector<Attempt>* attempts,
                const std::function<void(int)>& body) {
  bool won = false;
  for (std::size_t i = 0; i < attempts->size(); ++i) {
    Attempt& a = (*attempts)[i];
    if (a.token.cancelled()) {
      a.stop = StopCause::Cancelled;  // lost before starting
      continue;
    }
    body(static_cast<int>(i));
    if (a.proven && !won) {
      won = true;
      for (std::size_t j = 0; j < attempts->size(); ++j) {
        if (j != i) (*attempts)[j].token.request_cancel();
      }
    }
  }
  return pick_winner(*attempts);
}

int race(std::vector<Attempt>* attempts, const std::function<void(int)>& body,
         const support::SolveContext& solve, const Exec& exec) {
  if (exec.fanout_pool() == nullptr) return race_serial(attempts, body);
  auto won = std::make_shared<std::atomic<bool>>(false);
  support::TaskGroup group(exec.fanout_pool());
  for (std::size_t i = 0; i < attempts->size(); ++i) {
    group.run([attempts, &body, won, i] {
      Attempt& a = (*attempts)[i];
      if (a.token.cancelled()) {
        a.stop = StopCause::Cancelled;  // lost before starting
        return;
      }
      body(static_cast<int>(i));
      if (a.proven && !won->exchange(true)) {
        for (std::size_t j = 0; j < attempts->size(); ++j) {
          if (j != i) (*attempts)[j].token.request_cancel();
        }
      }
    });
  }
  group.wait([attempts, &solve] {
    if (solve.cancelled()) {
      for (Attempt& a : *attempts) a.token.request_cancel();
    }
  });
  return pick_winner(*attempts);
}

int pick_winner(const std::vector<Attempt>& attempts) {
  int win = -1;
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    if (attempts[i].ran && attempts[i].proven) {
      win = static_cast<int>(i);
      break;
    }
  }
  if (win < 0) {
    long long best = -1;
    for (std::size_t i = 0; i < attempts.size(); ++i) {
      const Attempt& a = attempts[i];
      if (a.ran && a.score > best) {
        best = a.score;
        win = static_cast<int>(i);
      }
    }
  }
  return win < 0 ? 0 : win;
}

// Flushes per-strategy race durations and loser-cancel latencies into the
// solver profile after a race settles. Cancel latency is the gap between
// the winner returning (the instant it cancelled the rest) and a cancelled
// loser actually coming back — the responsiveness of mid-solve interruption.
void flush_race_profile(const support::SolverProfile* prof,
                        const std::vector<Attempt>& attempts, int win) {
  if (prof == nullptr) return;
  for (const Attempt& a : attempts) {
    if (!a.ran || a.start_s < 0) continue;
    support::Histogram* h = nullptr;
    switch (a.strategy) {
      case Strategy::Exact: h = prof->portfolio_attempt_exact_ms; break;
      case Strategy::Ilp: h = prof->portfolio_attempt_ilp_ms; break;
      case Strategy::Greedy: h = prof->portfolio_attempt_greedy_ms; break;
      case Strategy::Bisect: h = prof->portfolio_attempt_bisect_ms; break;
    }
    if (h != nullptr) h->observe((a.end_s - a.start_s) * 1000.0);
  }
  const Attempt& w = attempts[static_cast<std::size_t>(win)];
  if (!w.ran || !w.proven) return;  // nobody proved: no cancellation wave
  for (std::size_t j = 0; j < attempts.size(); ++j) {
    const Attempt& a = attempts[j];
    if (static_cast<int>(j) == win || !a.ran) continue;
    if (a.stop != StopCause::Cancelled) continue;
    const double latency_ms = (a.end_s - w.end_s) * 1000.0;
    if (latency_ms >= 0) prof->portfolio_cancel_latency_ms->observe(latency_ms);
  }
}

PortfolioTally tally_of(const std::vector<Attempt>& attempts, int win) {
  PortfolioTally t;
  t.races = 1;
  t.wins[static_cast<int>(attempts[win].strategy)] = 1;
  for (std::size_t j = 0; j < attempts.size(); ++j) {
    if (static_cast<int>(j) != win && attempts[j].stop == StopCause::Cancelled) {
      ++t.losers_cancelled;
    }
  }
  return t;
}

}  // namespace

PortfolioResult rs_portfolio(const TypeContext& ctx,
                             const PortfolioOptions& opts,
                             const support::SolveContext& solve,
                             const Exec& exec) {
  PortfolioResult out;
  if (ctx.value_count() == 0) {
    // Nothing to race over; RS is 0 by definition. Tally stays empty.
    const RsExactResult res = rs_exact(ctx, opts.exact, solve);
    out.rs = res.rs;
    out.proven = res.proven;
    out.witness = res.witness;
    out.stats.stop = res.stats.stop;
    return out;
  }

  struct Candidate {
    int rs = 0;
    bool proven = false;
    sched::Schedule witness;
  };
  std::vector<Attempt> attempts(3);
  std::vector<Candidate> results(3);
  attempts[0].strategy = Strategy::Exact;
  attempts[1].strategy = Strategy::Ilp;
  attempts[2].strategy = Strategy::Greedy;

  const support::Timer race_timer;
  const auto body = [&](int i) {
    Attempt& a = attempts[static_cast<std::size_t>(i)];
    Candidate& c = results[static_cast<std::size_t>(i)];
    a.start_s = race_timer.seconds();
    const support::SolveContext child = solve.with_token(a.token);
    switch (a.strategy) {
      case Strategy::Exact: {
        RsExactOptions eopts = opts.exact;
        eopts.greedy = opts.greedy;
        const RsExactResult r = rs_exact(ctx, eopts, child);
        c = Candidate{r.rs, r.proven, r.witness};
        a.stop = r.stats.stop;
        break;
      }
      case Strategy::Ilp: {
        const RsIlpResult r = rs_ilp(ctx, opts.ilp, child);
        c = Candidate{r.rs, r.proven, r.witness};
        a.stop = r.solve_stats.stop;
        break;
      }
      case Strategy::Greedy: {
        const RsEstimate r = greedy_k(ctx, opts.greedy, child);
        c = Candidate{r.rs, false, r.witness};  // witnessed, never proven
        a.stop = r.stats.stop;
        break;
      }
      case Strategy::Bisect:
        RS_CHECK(false);
        break;
    }
    a.ran = true;
    a.proven = c.proven;
    a.score = c.rs;
    a.end_s = race_timer.seconds();
  };

  const int win = race(&attempts, body, solve, exec);
  flush_race_profile(solve.profile(), attempts, win);
  const Attempt& wa = attempts[static_cast<std::size_t>(win)];
  const Candidate& wc = results[static_cast<std::size_t>(win)];
  out.rs = wc.rs;
  out.proven = wc.proven;
  out.winner = wa.strategy;
  out.witness = wc.witness;
  out.stats.stop = wa.ran ? (wc.proven ? StopCause::Proven : wa.stop)
                          : StopCause::Cancelled;
  out.tally = tally_of(attempts, win);
  return out;
}

namespace {

// Binary search on R over [1, |values|] for the smallest feasible register
// count under the makespan budget — the monotone complement of the upward
// ladder in minimize_register_need. Shares that function's trivial case,
// leaf-filter composition, and exhaustion/abort reporting so the two
// strategies are result-compatible by construction: a proven answer always
// ends in the identical feasible() call at the minimal R.
MinRegResult bisect_register_need(const TypeContext& ctx,
                                  sched::Time cp_budget, const SrcOptions& opts,
                                  ArcLatencyMode mode,
                                  const support::SolveContext& solve) {
  MinRegResult result;
  const sched::Time budget =
      cp_budget > 0 ? cp_budget : graph::critical_path(ctx.ddg().graph());
  if (ctx.value_count() == 0) {
    result.proven = true;
    result.sigma = sched::asap(ctx.ddg());
    result.extended = ctx.ddg();
    result.critical_path = budget;
    return result;
  }
  SrcOptions filtered = opts;
  filtered.leaf_filter = [&ctx, mode, &opts](const sched::Schedule& s) {
    if (opts.leaf_filter && !opts.leaf_filter(s)) return false;
    return extend_by_schedule(ctx, s, mode).is_dag;
  };
  int lo = 1;
  int hi = ctx.value_count();
  std::optional<SrcResult> best;
  int best_r = -1;
  const auto probe_at = [&](int r) {
    SrcSolver solver(ctx, r);
    SrcResult feas = solver.feasible(budget, 0, filtered, solve);
    result.nodes += feas.nodes;
    result.stats.merge(feas.stats);
    return feas;
  };
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    SrcResult feas = probe_at(mid);
    if (feas.status == SrcStatus::LimitHit && !feas.feasible) {
      // Inconclusive probe: feasibility at mid is unknown, so the search
      // cannot narrow either way. Report the proven lower bound.
      result.proven = false;
      result.min_need = lo;
      return result;
    }
    if (feas.feasible) {
      hi = mid;
      best = std::move(feas);
      best_r = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (best_r != lo) {
    SrcResult feas = probe_at(lo);
    if (feas.status == SrcStatus::LimitHit && !feas.feasible) {
      result.proven = false;
      result.min_need = lo;
      return result;
    }
    if (!feas.feasible) {
      // lo == |values| and still infeasible: same exhaustion report as the
      // ladder (budget below CP, or no DAG-preserving extension exists).
      result.proven = false;
      result.min_need = ctx.value_count();
      return result;
    }
    best = std::move(feas);
  }
  result.proven = true;
  result.min_need = best->rn;
  result.sigma = best->sigma;
  ExtensionResult ext = extend_by_schedule(ctx, best->sigma, mode);
  result.arcs_added = ext.arcs_added;
  result.critical_path = graph::critical_path(ext.extended.graph());
  result.extended = std::move(ext.extended);
  return result;
}

}  // namespace

MinRegRaceResult minreg_portfolio(const TypeContext& ctx, sched::Time cp_budget,
                                  const SrcOptions& opts, ArcLatencyMode mode,
                                  const support::SolveContext& solve,
                                  const Exec& exec) {
  MinRegRaceResult out;
  if (ctx.value_count() == 0) {
    out.result = minimize_register_need(ctx, cp_budget, opts, mode, solve);
    out.result.nodes = 0;
    const StopCause stop = out.result.stats.stop;
    out.result.stats = support::SolveStats{};
    out.result.stats.stop = stop;
    return out;
  }

  std::vector<Attempt> attempts(2);
  std::vector<MinRegResult> results(2);
  attempts[0].strategy = Strategy::Exact;   // upward ladder
  attempts[1].strategy = Strategy::Bisect;  // binary search on R

  const support::Timer race_timer;
  const auto body = [&](int i) {
    Attempt& a = attempts[static_cast<std::size_t>(i)];
    MinRegResult& r = results[static_cast<std::size_t>(i)];
    a.start_s = race_timer.seconds();
    const support::SolveContext child = solve.with_token(a.token);
    r = a.strategy == Strategy::Exact
            ? minimize_register_need(ctx, cp_budget, opts, mode, child)
            : bisect_register_need(ctx, cp_budget, opts, mode, child);
    a.ran = true;
    a.proven = r.proven;
    a.score = r.min_need;  // no-proof results are lower bounds
    a.stop = r.stats.stop;
    a.end_s = race_timer.seconds();
  };

  const int win = race(&attempts, body, solve, exec);
  flush_race_profile(solve.profile(), attempts, win);
  const Attempt& wa = attempts[static_cast<std::size_t>(win)];
  out.result = std::move(results[static_cast<std::size_t>(win)]);
  out.winner = wa.strategy;
  out.tally = tally_of(attempts, win);
  // Canonicalize: race-timing-dependent effort counters must not reach
  // result lines, payload digests, or cached bytes.
  out.result.nodes = 0;
  const StopCause stop = wa.ran ? (wa.proven ? StopCause::Proven : wa.stop)
                                : StopCause::Cancelled;
  out.result.stats = support::SolveStats{};
  out.result.stats.stop = stop;
  if (!wa.ran) {
    out.result.proven = false;
    out.result.min_need = 0;
  }
  return out;
}

}  // namespace rs::core
