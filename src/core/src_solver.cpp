#include "core/src_solver.hpp"

#include <algorithm>

#include "graph/paths.hpp"
#include "graph/topo.hpp"
#include "sched/lifetime.hpp"
#include "support/assert.hpp"

namespace rs::core {

namespace {

struct Dfs {
  const TypeContext& ctx;
  const SrcOptions& opts;
  const support::SolveContext& solve;
  int R;
  sched::Time P;
  int rn_target;

  // Only ops that define or read a type-t value get explicit issue times;
  // every other op (address arithmetic, other-typed work) is scheduled
  // as-soon-as-possible implicitly — ASAP dominates for both feasibility
  // and makespan, and such ops cannot change the type-t register need.
  std::vector<bool> relevant;
  std::vector<graph::NodeId> order;  // topological order of relevant ops
  std::vector<std::int64_t> lpf;     // longest path to sinks
  std::vector<sched::Time> earliest; // implied earliest issue per op
  std::vector<sched::Time> sigma;    // -1 = not explicitly scheduled
  long nodes = 0;
  long long prunes = 0;
  bool truncated = false;
  bool node_limit_hit = false;
  bool found = false;
  sched::Schedule witness;

  Dfs(const TypeContext& c, const SrcOptions& o,
      const support::SolveContext& s, int r, sched::Time p, int tgt)
      : ctx(c), opts(o), solve(s), R(r), P(p), rn_target(tgt) {
    const graph::Digraph& g = ctx.ddg().graph();
    const auto topo = graph::topo_order(g);
    RS_REQUIRE(topo.has_value(), "SRC needs an acyclic DDG");
    relevant.assign(g.node_count(), false);
    for (int i = 0; i < ctx.value_count(); ++i) {
      relevant[ctx.value_node(i)] = true;
      for (const ddg::NodeId v : ctx.cons(i)) relevant[v] = true;
    }
    for (const graph::NodeId v : *topo) {
      if (relevant[v]) order.push_back(v);
    }
    lpf = graph::longest_path_from(g);
    earliest.resize(g.node_count());
    const auto asap = graph::longest_path_to(g);
    for (int v = 0; v < g.node_count(); ++v) earliest[v] = asap[v];
    sigma.assign(g.node_count(), -1);
  }

  bool limits_hit() {
    // Cancel flag every node, deadline clock coarsely (see SolveContext).
    if (solve.should_stop(nodes)) return true;
    if (opts.node_limit > 0 && nodes >= opts.node_limit) {
      node_limit_hit = true;
      return true;
    }
    return false;
  }

  /// Monotone lower bound on the register need of any completion: defined
  /// values certainly live from their write until max(assigned reads,
  /// earliest possible remaining reads); these only grow as times get fixed.
  int partial_rn_lower_bound() const {
    std::vector<std::pair<sched::Time, int>> events;
    for (int i = 0; i < ctx.value_count(); ++i) {
      const ddg::NodeId u = ctx.value_node(i);
      if (sigma[u] < 0) continue;
      const sched::Time def = sigma[u] + ctx.ddg().op(u).delta_w;
      sched::Time kill = def;
      for (const ddg::NodeId v : ctx.cons(i)) {
        const sched::Time read =
            (sigma[v] >= 0 ? sigma[v] : earliest[v]) + ctx.ddg().op(v).delta_r;
        kill = std::max(kill, read);
      }
      if (kill > def) {
        events.emplace_back(def + 1, +1);
        events.emplace_back(kill + 1, -1);
      }
    }
    std::sort(events.begin(), events.end());
    int live = 0, peak = 0;
    for (const auto& [t, d] : events) {
      live += d;
      peak = std::max(peak, live);
    }
    return peak;
  }

  /// Admissible upper bound on the register need any completion can still
  /// reach: every value gets its most optimistic interval — definition as
  /// early as still possible, kill as late as any unscheduled consumer
  /// could read — and the bound is the peak overlap of those intervals.
  int rn_upper_bound() const {
    std::vector<std::pair<sched::Time, int>> events;
    for (int i = 0; i < ctx.value_count(); ++i) {
      const ddg::NodeId u = ctx.value_node(i);
      const sched::Time def =
          (sigma[u] >= 0 ? sigma[u] : earliest[u]) + ctx.ddg().op(u).delta_w;
      sched::Time kill = def;
      for (const ddg::NodeId v : ctx.cons(i)) {
        const sched::Time read =
            (sigma[v] >= 0 ? sigma[v] : P - lpf[v]) + ctx.ddg().op(v).delta_r;
        kill = std::max(kill, read);
      }
      if (kill > def) {
        events.emplace_back(def + 1, +1);
        events.emplace_back(kill + 1, -1);
      }
    }
    std::sort(events.begin(), events.end());
    int live = 0, peak = 0;
    for (const auto& [t, d] : events) {
      live += d;
      peak = std::max(peak, live);
    }
    return peak;
  }

  /// Raises earliest[] after fixing `u` at time `t`, treating irrelevant
  /// ops as issued at their earliest time (so updates flow through them
  /// transitively). Returns an undo list.
  std::vector<std::pair<graph::NodeId, sched::Time>> propagate(
      graph::NodeId u, sched::Time t) {
    const graph::Digraph& g = ctx.ddg().graph();
    std::vector<std::pair<graph::NodeId, sched::Time>> saved;
    std::vector<graph::NodeId> work;
    auto raise = [&](graph::NodeId v, sched::Time val) {
      if (val <= earliest[v]) return;
      saved.emplace_back(v, earliest[v]);
      earliest[v] = val;
      if (!relevant[v]) work.push_back(v);  // implicit schedule moved
    };
    for (const graph::EdgeId e : g.out_edges(u)) {
      raise(g.edge(e).dst, t + g.edge(e).latency);
    }
    while (!work.empty()) {
      const graph::NodeId v = work.back();
      work.pop_back();
      for (const graph::EdgeId e : g.out_edges(v)) {
        raise(g.edge(e).dst, earliest[v] + g.edge(e).latency);
      }
    }
    return saved;
  }

  bool dfs(std::size_t depth) {
    if (limits_hit()) {
      truncated = true;
      return false;
    }
    ++nodes;
    if (partial_rn_lower_bound() > R) {
      ++prunes;
      return false;
    }
    if (rn_target > 0 && rn_upper_bound() < rn_target) {
      ++prunes;
      return false;
    }
    if (depth == order.size()) {
      sched::Schedule s;
      s.time = sigma;
      for (graph::NodeId v = 0; v < ctx.ddg().op_count(); ++v) {
        if (s.time[v] < 0) s.time[v] = earliest[v];  // implicit ASAP
      }
      RS_CHECK(sched::is_valid(ctx.ddg(), s));
      const int rn = sched::register_need(ctx.ddg(), ctx.type(), s);
      if (rn > R || rn < rn_target) return false;
      if (opts.leaf_filter && !opts.leaf_filter(s)) return false;
      witness = std::move(s);
      found = true;
      return true;
    }
    const graph::NodeId u = order[depth];
    const sched::Time lo = earliest[u];
    const sched::Time hi = P - lpf[u];
    // Value definitions try early issue first; pure consumers try late
    // issue first when chasing a register-need target (late reads stretch
    // lifetimes), early first otherwise (denser schedules, smaller trees).
    const bool descending =
        rn_target > 0 && !ctx.ddg().op(u).writes_type(ctx.type());
    for (sched::Time step = 0; step <= hi - lo; ++step) {
      const sched::Time t = descending ? hi - step : lo + step;
      sigma[u] = t;
      const auto saved = propagate(u, t);
      const bool ok = dfs(depth + 1);
      for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
        earliest[it->first] = it->second;
      }
      if (ok) return true;
      if (truncated) break;
    }
    sigma[u] = -1;
    return false;
  }
};

}  // namespace

SrcSolver::SrcSolver(const TypeContext& ctx, int R) : ctx_(ctx), R_(R) {
  RS_REQUIRE(R >= 1, "need at least one register");
}

SrcResult SrcSolver::feasible(sched::Time P, int rn_target,
                              const SrcOptions& opts,
                              const support::SolveContext& solve) {
  Dfs dfs(ctx_, opts, solve, R_, P, rn_target);
  if (graph::critical_path(ctx_.ddg().graph()) <= P) {
    dfs.dfs(0);
  }
  SrcResult res;
  res.nodes = dfs.nodes;
  res.status = dfs.truncated ? SrcStatus::LimitHit : SrcStatus::Proven;
  res.feasible = dfs.found;
  res.stats.nodes = dfs.nodes;
  res.stats.prunes = dfs.prunes;
  res.stats.solves = 1;
  res.stats.stop = dfs.truncated ? solve.cause_now(dfs.node_limit_hit)
                                 : support::StopCause::Proven;
  solve.record(res.stats);
  if (dfs.found) {
    res.sigma = dfs.witness;
    res.makespan = 0;
    for (graph::NodeId v = 0; v < ctx_.ddg().op_count(); ++v) {
      res.makespan = std::max(
          res.makespan, res.sigma.time[v] + ctx_.ddg().op(v).latency);
    }
    res.rn = sched::register_need(ctx_.ddg(), ctx_.type(), res.sigma);
  }
  return res;
}

SrcResult SrcSolver::minimize_makespan(const SrcOptions& opts,
                                       const support::SolveContext& solve) {
  const sched::Time cp = graph::critical_path(ctx_.ddg().graph());
  support::SolveStats sweep;
  SrcResult last;
  for (sched::Time P = cp; P <= cp + opts.slack_limit; ++P) {
    last = feasible(P, 0, opts, solve);
    sweep.merge(last.stats);
    last.stats = sweep;
    last.nodes = sweep.nodes;
    if (last.feasible) return last;
    if (last.status == SrcStatus::LimitHit) return last;
  }
  // Exhausted the slack window without a witness: infeasible within budget.
  last.status = SrcStatus::LimitHit;
  last.feasible = false;
  last.stats.stop = support::worse_cause(last.stats.stop,
                                         support::StopCause::LimitHit);
  return last;
}

SrcResult SrcSolver::reduce_lexicographic(int rs_upper, const SrcOptions& opts,
                                          const support::SolveContext& solve) {
  const sched::Time cp = graph::critical_path(ctx_.ddg().graph());
  support::SolveStats sweep;
  for (int goal = std::min(R_, rs_upper); goal >= 1; --goal) {
    for (sched::Time P = cp; P <= cp + opts.slack_limit; ++P) {
      SrcResult r = feasible(P, goal, opts, solve);
      sweep.merge(r.stats);
      r.stats = sweep;
      r.nodes = sweep.nodes;
      if (r.feasible) return r;
      if (r.status == SrcStatus::LimitHit) return r;
    }
  }
  SrcResult res;
  res.feasible = false;
  res.status = SrcStatus::Proven;  // exhausted all goals within windows
  res.stats = sweep;
  res.nodes = sweep.nodes;
  return res;
}

}  // namespace rs::core
