// Greedy-k-style heuristic for register saturation (the heuristic family of
// [Touati CC'01] whose near-optimality the paper's section 5 evaluates).
//
// Two phases:
//  1. greedy construction: values in topological order of their definition;
//     each picks the potential killer with the smallest downstream value
//     footprint (fewest value definitions reachable from the killer), the
//     choice that adds the fewest disjoint-value arcs; candidates that
//     would make G->k cyclic are skipped (a valid choice always exists:
//     the topologically-last potential killer only adds forward arcs);
//  2. steepest-ascent refinement: re-pick killers one value at a time while
//     the maximum antichain improves, within a bounded number of passes.
//
// The result is *witnessed*: RS* equals the register need of an actual
// schedule (the saturating-schedule certificate), so RS* <= RS always.
#pragma once

#include "core/killing.hpp"
#include "support/solve_context.hpp"

namespace rs::core {

struct GreedyOptions {
  /// Maximum full refinement passes over all values.
  int refine_passes = 3;
};

struct RsEstimate {
  int rs = 0;                   // witnessed register saturation estimate
  KillingFunction killing;      // the killing function achieving it
  std::vector<int> antichain;   // saturating value indices
  sched::Schedule witness;      // schedule with RN == rs (original DDG)
  support::SolveStats stats;    // refinement effort; stop != Proven when the
                                // context interrupted the ascent
};

/// Runs the heuristic. For value-free types returns rs == 0. The greedy
/// construction phase always completes (its invariants need a full killing
/// function); the refinement phase observes the context between steps, so a
/// cancelled or expired context still yields a valid witnessed estimate.
RsEstimate greedy_k(const TypeContext& ctx, const GreedyOptions& opts = {},
                    const support::SolveContext& solve = {});

}  // namespace rs::core
