// The paper's section-3 intLP for computing register saturation exactly.
//
// Variables (n = |V| nodes, m = |E| arcs, values of the analyzed type):
//   sigma_u   integer issue times, bounded by [ASAP, T - ALAP-distance];
//   k_u       killing date of each value = max over consumers of
//             sigma_v + delta_r(v)   (linearized per thesis [15]);
//   a,b,s     three binaries per value pair: s <=> lifetimes interfere;
//   x_u       one binary per value: membership in an independent set of the
//             complement interference graph H'.
// Constraints: precedence, killing-date max, interference equivalences,
// and x_u + x_v <= 1 + s_uv;   objective: maximize sum x_u.
// Totals: O(n^2) integer variables and O(m + n^2) constraints — the size
// claim the paper makes against the literature (EXP-3 measures this).
//
// Both section-3 optimizations are implemented and switchable:
//   (1) scheduling constraints of transitively redundant arcs are dropped;
//   (2) value pairs that can never be simultaneously alive skip their
//       interference binaries entirely (s fixed to 0).
#pragma once

#include "core/context.hpp"
#include "lp/branch_bound.hpp"
#include "lp/model.hpp"
#include "sched/schedule.hpp"

namespace rs::core {

struct RsIlpOptions {
  /// Worst-case schedule horizon T; <= 0 selects the paper's default
  /// T = sum of positive arc latencies (no-ILP sequential bound).
  sched::Time horizon = 0;
  bool eliminate_redundant_arcs = true;   // section-3 optimization 1
  bool eliminate_never_alive_pairs = true;  // section-3 optimization 2
  lp::MipOptions mip;
};

/// Size accounting for EXP-3.
struct RsIlpStats {
  int variables = 0;
  int integer_variables = 0;
  int constraints = 0;
  int n_nodes = 0;  // DAG nodes n
  int m_arcs = 0;   // DAG arcs m
  int n_values = 0;
};

/// Builds the section-3 model. `sigma_vars`/`x_vars` (optional) receive the
/// variable handles for schedule extraction.
lp::Model build_rs_model(const TypeContext& ctx, const RsIlpOptions& opts,
                         std::vector<lp::Var>* sigma_vars = nullptr,
                         std::vector<lp::Var>* x_vars = nullptr);

/// Computes model size without solving (EXP-3 sweeps large DAGs).
RsIlpStats rs_model_stats(const TypeContext& ctx, const RsIlpOptions& opts = {});

struct RsIlpResult {
  lp::MipStatus status = lp::MipStatus::Unknown;
  int rs = 0;                  // objective value when solved
  bool proven = false;         // status == Optimal
  sched::Schedule witness;     // saturating schedule from sigma_u
  RsIlpStats stats;            // model size (EXP-3)
  long nodes = 0;
  support::SolveStats solve_stats;  // search effort + stop cause
};

/// Solves the section-3 intLP with the embedded branch-and-bound solver,
/// subject to the context's deadline and cancel token.
RsIlpResult rs_ilp(const TypeContext& ctx, const RsIlpOptions& opts = {},
                   const support::SolveContext& solve = {});

}  // namespace rs::core
