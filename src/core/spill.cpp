#include "core/spill.hpp"

#include <algorithm>
#include <set>

#include "core/greedy_k.hpp"
#include "graph/paths.hpp"
#include "sched/schedule.hpp"
#include "support/assert.hpp"

namespace rs::core {

ddg::Ddg split_value(const TypeContext& ctx, int value_index,
                     const std::vector<ddg::NodeId>& late_consumers) {
  RS_REQUIRE(!late_consumers.empty(), "need at least one late consumer");
  const ddg::Ddg& src = ctx.ddg();
  const ddg::NodeId u = ctx.value_node(value_index);
  const ddg::RegType t = ctx.type();
  const std::set<ddg::NodeId> late(late_consumers.begin(),
                                   late_consumers.end());
  for (const ddg::NodeId c : late) {
    const auto& cons = ctx.cons(value_index);
    RS_REQUIRE(std::find(cons.begin(), cons.end(), c) != cons.end(),
               "late consumer does not read this value");
  }

  // Rebuild: same ops, then a store and a reload; flow arcs to late
  // consumers are redirected through the reload.
  ddg::Ddg out(src.type_count(), src.name() + "+spill");
  for (ddg::NodeId v = 0; v < src.op_count(); ++v) {
    ddg::Operation op = src.op(v);
    op.writes.clear();
    const ddg::NodeId nv = out.add_op(op);
    RS_CHECK(nv == v);
    for (const ddg::RegType wt : src.op(v).writes) out.mark_writes(v, wt);
  }
  // Store and reload timing: classic memory round trip.
  ddg::Operation store;
  store.name = src.op(u).name + ".spill";
  store.cls = ddg::OpClass::Store;
  store.latency = 1;
  ddg::Operation reload;
  reload.name = src.op(u).name + ".reload";
  reload.cls = ddg::OpClass::Load;
  reload.latency = 3;
  // Match the machine style of the source op (visible offsets if any).
  reload.delta_r = 0;
  reload.delta_w = src.op(u).delta_w > 0 ? reload.latency - 1 : 0;
  const ddg::NodeId s = out.add_op(store);
  const ddg::NodeId l = out.add_op(reload);
  out.mark_writes(l, t);

  for (graph::EdgeId e = 0; e < src.graph().edge_count(); ++e) {
    const graph::Edge& ed = src.graph().edge(e);
    const ddg::EdgeAttr& attr = src.edge_attr(e);
    const bool redirect = attr.kind == ddg::EdgeKind::Flow && attr.type == t &&
                          ed.src == u && late.count(ed.dst) > 0;
    if (!redirect) {
      if (attr.kind == ddg::EdgeKind::Flow) {
        out.add_flow(ed.src, ed.dst, attr.type, ed.latency);
      } else {
        out.add_serial(ed.src, ed.dst, ed.latency);
      }
      continue;
    }
    // Late consumer now reads the reloaded value.
    out.add_flow(l, ed.dst, t,
                 std::max<ddg::Latency>(reload.latency,
                                        reload.delta_w + 1 -
                                            src.op(ed.dst).delta_r));
  }
  // The store consumes the original value; the reload follows the store.
  out.add_flow(u, s, t,
               std::max<ddg::Latency>(src.op(u).latency,
                                      src.op(u).delta_w + 1));
  out.add_serial(s, l, store.latency);
  out.validate();
  return out;
}

SpillResult spill_and_reduce(const TypeContext& ctx, int R,
                             const SpillOptions& opts,
                             const support::SolveContext& solve) {
  SpillResult result;
  result.out = ctx.ddg();
  for (int round = 0; round <= opts.max_spills; ++round) {
    const TypeContext cur(result.out, ctx.type());
    const ReduceResult red = reduce_greedy(cur, R, opts.reduce, solve);
    result.stats.merge(red.stats);
    if (red.status == ReduceStatus::AlreadyFits ||
        red.status == ReduceStatus::Reduced) {
      result.status = red.status;
      result.achieved_rs = red.achieved_rs;
      result.critical_path = red.critical_path;
      result.out = *red.extended;
      return result;
    }
    if (red.status == ReduceStatus::LimitHit || round == opts.max_spills) {
      result.status = red.status;
      // SpillNeeded carries the witnessed saturating estimate of `out`;
      // LimitHit was interrupted before a witness and reports 0 (unknown).
      result.achieved_rs = red.achieved_rs;
      result.critical_path = graph::critical_path(result.out.graph());
      return result;
    }
    // SpillNeeded: split the saturating value with the most consumers
    // (ties: smallest index, for determinism). Late set: the last half of
    // its consumers in ASAP order (at least one).
    const RsEstimate est = greedy_k(cur, opts.reduce.greedy, solve);
    result.stats.merge(est.stats);
    int chosen = -1;
    std::size_t best_consumers = 0;
    for (const int i : est.antichain) {
      const std::size_t n_cons = cur.cons(i).size();
      if (chosen < 0 || n_cons > best_consumers) {
        chosen = i;
        best_consumers = n_cons;
      }
    }
    if (chosen < 0) {  // no antichain? nothing sensible left to do
      result.status = ReduceStatus::SpillNeeded;
      result.achieved_rs = red.achieved_rs;
      result.critical_path = graph::critical_path(result.out.graph());
      return result;
    }
    std::vector<ddg::NodeId> consumers = cur.cons(chosen);
    const sched::Schedule asap = sched::asap(result.out);
    std::sort(consumers.begin(), consumers.end(),
              [&](ddg::NodeId a, ddg::NodeId b) {
                if (asap.time[a] != asap.time[b]) {
                  return asap.time[a] < asap.time[b];
                }
                return a < b;
              });
    const std::size_t split = std::max<std::size_t>(1, consumers.size() / 2);
    const std::vector<ddg::NodeId> late(consumers.begin() + split,
                                        consumers.end());
    const std::vector<ddg::NodeId> late_or_last =
        late.empty() ? std::vector<ddg::NodeId>{consumers.back()} : late;
    result.out = split_value(cur, chosen, late_or_last);
    ++result.spills_inserted;
  }
  return result;
}

}  // namespace rs::core
