// Portfolio solving: race complementary strategies for the same answer
// under one parent SolveContext, keep the first *proven* result, cancel the
// losers immediately (the algorithm-portfolio idiom from the combinatorial
// register allocation literature — see PAPERS.md, Castañeda Lozano &
// Schulte).
//
// Determinism contract — the reason this file exists instead of a ten-line
// "first future wins" helper: result values must be byte-identical
// regardless of which strategy happens to finish first on a given run.
//
//  * Winner policy. After every strategy settles, the winner is the first
//    *proven* strategy in fixed priority order (Exact < Ilp < Greedy <
//    Bisect); with no proof, the strategy with the best bound wins (ties
//    again by priority). Proven strategies agree on the answer by
//    definition, so which one raced ahead cannot change the result value.
//  * Canonical stats. A winner's effort counters (nodes, prunes, ...) are
//    race-timing-dependent — the loser was cancelled at a nondeterministic
//    point and the winner's own counters depend on when it won. Result
//    stats are therefore canonicalized: counters zeroed, stop cause kept.
//    Real effort still reaches the parent context's stats sink and the
//    metrics registry, where totals are allowed to vary run to run.
//  * Cancellation. Each strategy runs under solve.with_token(child): same
//    deadline, same stats sink, privately cancellable. The first proven
//    strategy cancels the other children; parent cancellation is forwarded
//    to all children from TaskGroup::wait's poll hook.
//
// With no pool (Exec{}) the race degrades to priority-order sequential
// execution with early exit — identical winner policy, identical bytes.
//
// Concurrency discipline: this layer is lock-free on purpose and so
// carries no RSAT_GUARDED_BY annotations (support/thread_annotations.hpp).
// Cross-strategy state is one shared atomic "first proven winner" slot plus
// CancelTokens; per-strategy results land in slots owned by exactly one
// task and are only read after TaskGroup::wait's barrier. Any future shared
// mutable state here must use support::Mutex + the annotation vocabulary.
#pragma once

#include "core/context.hpp"
#include "core/exec.hpp"
#include "core/greedy_k.hpp"
#include "core/min_reg.hpp"
#include "core/rs_exact.hpp"
#include "core/rs_ilp.hpp"

namespace rs::core {

/// Fixed priority order for deterministic tie-breaks (lower wins).
enum class Strategy {
  Exact = 0,   // branch-and-bound over killing functions / upward ladder
  Ilp = 1,     // the section-3 intLP
  Greedy = 2,  // witnessed heuristic (never proven; latency floor)
  Bisect = 3,  // binary search on R (minreg only)
};
inline constexpr int kStrategyCount = 4;

/// Short stable token for metrics / trace keys: exact|ilp|greedy|bisect.
const char* strategy_token(Strategy s);

/// Race outcome counters, mergeable up the aggregation chain (per-type ->
/// report -> per-block -> program). Timing-dependent by design: these feed
/// observability, never result bytes.
struct PortfolioTally {
  long long races = 0;
  long long wins[kStrategyCount] = {0, 0, 0, 0};
  long long losers_cancelled = 0;  // strategies observed stopping on cancel

  bool any() const { return races != 0; }

  void merge(const PortfolioTally& o) {
    races += o.races;
    for (int i = 0; i < kStrategyCount; ++i) wins[i] += o.wins[i];
    losers_cancelled += o.losers_cancelled;
  }
};

struct PortfolioOptions {
  GreedyOptions greedy;
  RsExactOptions exact;
  RsIlpOptions ilp;
};

struct PortfolioResult {
  int rs = 0;
  bool proven = false;
  Strategy winner = Strategy::Exact;
  sched::Schedule witness;    // schedule with RN == rs (winner's)
  support::SolveStats stats;  // canonical: counters zeroed, stop kept
  PortfolioTally tally;
};

/// Races greedy, exact branch-and-bound, and the intLP for RS_t(G).
PortfolioResult rs_portfolio(const TypeContext& ctx,
                             const PortfolioOptions& opts = {},
                             const support::SolveContext& solve = {},
                             const Exec& exec = {});

struct MinRegRaceResult {
  MinRegResult result;  // canonical stats: counters zeroed, stop kept
  Strategy winner = Strategy::Exact;
  PortfolioTally tally;
};

/// Races the upward ladder (minimize_register_need) against a binary search
/// on R. Both witnesses at the minimal R come from the identical
/// deterministic SrcSolver::feasible call, so the winning strategy cannot
/// change the result value, the extension, or the emitted DDG bytes.
MinRegRaceResult minreg_portfolio(const TypeContext& ctx,
                                  sched::Time cp_budget,
                                  const SrcOptions& opts,
                                  ArcLatencyMode mode = ArcLatencyMode::General,
                                  const support::SolveContext& solve = {},
                                  const Exec& exec = {});

}  // namespace rs::core
