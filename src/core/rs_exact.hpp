// Exact register saturation by combinatorial branch-and-bound over valid
// killing functions (the search space Theorem [CC'01] reduces RS to).
//
// This engine is independent of the section-3 intLP (rs_ilp.hpp); the two
// cross-validate each other in the test suite. Computing RS is NP-complete,
// so both carry explicit budgets and report whether optimality was proven.
//
// Bounding: for a partially assigned killing function, the maximum
// antichain of the partial disjoint-value DAG only shrinks as more killers
// are fixed (arcs only get added), so it is an admissible upper bound.
#pragma once

#include "core/greedy_k.hpp"
#include "core/killing.hpp"

namespace rs::core {

struct RsExactOptions {
  long node_limit = 2000000;  // <= 0: unlimited
  /// Seed the incumbent with the greedy heuristic (recommended).
  bool warm_start = true;
  GreedyOptions greedy;
};

struct RsExactResult {
  /// Best register saturation found; equal to RS(G) when proven.
  int rs = 0;
  /// True when the search space was exhausted within budget.
  bool proven = false;
  KillingFunction killing;
  std::vector<int> antichain;
  sched::Schedule witness;  // schedule with RN == rs
  long nodes = 0;
  support::SolveStats stats;  // search effort + stop cause
};

/// Computes RS_t(G) exactly, subject to the node limit and the context's
/// deadline / cancel token. Even a fully exhausted budget returns a valid
/// witnessed lower bound (the greedy warm start) with proven == false.
RsExactResult rs_exact(const TypeContext& ctx, const RsExactOptions& opts = {},
                       const support::SolveContext& solve = {});

}  // namespace rs::core
