// Register-*minimization* baseline (section 6 discussion, figure 2(b)):
// the literature's approach the paper argues against. Finds the smallest
// register need achievable under a critical-path budget, then freezes that
// minimal-need schedule into the DAG via the Theorem-4.2 arc construction —
// restricting the downstream scheduler regardless of how many registers the
// machine actually has.
#pragma once

#include "core/context.hpp"
#include "core/reduce.hpp"
#include "core/src_solver.hpp"

namespace rs::core {

struct MinRegResult {
  bool proven = false;        // search not truncated
  int min_need = 0;           // minimal RN under the budget
  sched::Schedule sigma;      // witness
  std::optional<ddg::Ddg> extended;  // minimal-register-need DAG
  int arcs_added = 0;
  sched::Time critical_path = 0;     // CP of the extended DAG
  long nodes = 0;
  support::SolveStats stats;
};

/// Minimizes RN subject to makespan <= cp_budget (<= 0: the original
/// critical path, i.e. "minimize the register requirement under critical
/// path constraints" — the paper's footnote 4).
MinRegResult minimize_register_need(const TypeContext& ctx,
                                    sched::Time cp_budget,
                                    const SrcOptions& opts,
                                    ArcLatencyMode mode = ArcLatencyMode::General,
                                    const support::SolveContext& solve = {});

}  // namespace rs::core
