// The paper's section-4 intLP for optimal RS reduction.
//
// On top of the shared skeleton (sigma, kill dates, interference s):
//   * register-assignment binaries x^i_u, one per (value, register),
//     sum_i x^i_u = 1 — a coloring of the interference graph with R colors;
//   * interference forbids color sharing: x^i_u + x^i_v + s_uv <= 2;
//   * the paper's "exactly R colors" convention: every color class is
//     non-empty (free to satisfy whenever |values| >= R, binding otherwise,
//     which is what drives the decrement loop);
//   * objective: minimize sigma(⊥);
//   * for targets with visible write offsets, optional topological-order
//     variables pi_u plus orientation binaries p_uv forbid solutions whose
//     Theorem-4.2 extension would contain a (non-positive) circuit — the
//     paper's O(n^3) constraint block at the end of section 4.
// The decrement loop retries with R-1, ..., 1 on infeasibility and reports
// spilling as unavoidable when R = 1 fails (section 4).
#pragma once

#include "core/context.hpp"
#include "core/reduce.hpp"
#include "lp/branch_bound.hpp"

namespace rs::core {

struct ReduceIlpOptions {
  sched::Time horizon = 0;  // <= 0: paper default (sum of arc latencies)
  bool eliminate_redundant_arcs = true;
  bool eliminate_never_alive_pairs = true;
  /// Require each of the R color classes to be used (paper's "exactly Rt").
  bool require_all_colors_used = true;
  /// Add the O(n^3) topological-sort-existence block (VLIW/EPIC targets).
  bool forbid_circuits = false;
  ArcLatencyMode arc_mode = ArcLatencyMode::General;
  lp::MipOptions mip;
};

struct ReduceIlpResult {
  ReduceStatus status = ReduceStatus::LimitHit;
  int colors_used = 0;           // R actually colored with (decrement loop)
  sched::Schedule sigma;         // witness schedule
  std::optional<ddg::Ddg> extended;
  int achieved_rn = 0;           // RN_sigma(G) == RS(G-bar) by Theorem 4.2
  sched::Time makespan = 0;      // sigma(⊥)
  sched::Time critical_path = 0; // CP(G-bar)
  int arcs_added = 0;
  long nodes = 0;
  support::SolveStats stats;  // aggregated branch-and-bound effort

  /// Model size of the last solved intLP (for the complexity table).
  int variables = 0;
  int constraints = 0;
};

/// Builds and solves the section-4 intLP for a fixed register count R
/// (single shot, no decrement loop).
ReduceIlpResult reduce_ilp_fixed(const TypeContext& ctx, int R,
                                 const ReduceIlpOptions& opts = {},
                                 const support::SolveContext& solve = {});

/// Full decrement loop: R, R-1, ..., 1; stops at the first feasible count.
/// One context budgets the whole loop.
ReduceIlpResult reduce_ilp(const TypeContext& ctx, int R,
                           const ReduceIlpOptions& opts = {},
                           const support::SolveContext& solve = {});

}  // namespace rs::core
