#include "sched/list_sched.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "graph/paths.hpp"
#include "graph/topo.hpp"
#include "support/assert.hpp"

namespace rs::sched {

Resources Resources::unlimited() {
  Resources r;
  r.issue_width = std::numeric_limits<int>::max() / 2;
  r.units_per_class.fill(std::numeric_limits<int>::max() / 2);
  return r;
}

Schedule list_schedule(const ddg::Ddg& ddg, const Resources& res) {
  const graph::Digraph& g = ddg.graph();
  const auto order = graph::topo_order(g);
  RS_REQUIRE(order.has_value(), "list scheduling needs an acyclic DDG");
  // Priority: longest path to any sink (classic critical-path heuristic).
  const std::vector<std::int64_t> priority = graph::longest_path_from(g);

  std::vector<int> pending(g.node_count(), 0);
  for (const graph::Edge& e : g.edges()) ++pending[e.dst];
  std::vector<Time> earliest(g.node_count(), 0);

  // ready set ordered by (priority desc, node asc) for determinism.
  auto cmp = [&](ddg::NodeId a, ddg::NodeId b) {
    if (priority[a] != priority[b]) return priority[a] > priority[b];
    return a < b;
  };
  std::vector<ddg::NodeId> ready;
  for (ddg::NodeId v = 0; v < g.node_count(); ++v) {
    if (pending[v] == 0) ready.push_back(v);
  }
  std::sort(ready.begin(), ready.end(), cmp);

  Schedule s;
  s.time.assign(g.node_count(), -1);
  std::map<Time, std::pair<int, std::array<int, 9>>> cycle_usage;

  auto fits = [&](ddg::NodeId v, Time t) {
    const ddg::OpClass cls = ddg.op(v).cls;
    if (cls == ddg::OpClass::Nop) return true;
    auto it = cycle_usage.find(t);
    if (it == cycle_usage.end()) return res.issue_width > 0 && res.units(cls) > 0;
    const auto& [issued, used] = it->second;
    return issued < res.issue_width &&
           used[static_cast<int>(cls)] < res.units(cls);
  };
  auto commit = [&](ddg::NodeId v, Time t) {
    const ddg::OpClass cls = ddg.op(v).cls;
    if (cls == ddg::OpClass::Nop) return;
    auto& [issued, used] = cycle_usage[t];
    ++issued;
    ++used[static_cast<int>(cls)];
  };

  int scheduled = 0;
  while (scheduled < g.node_count()) {
    RS_CHECK(!ready.empty());
    const ddg::NodeId v = ready.front();
    ready.erase(ready.begin());
    Time t = earliest[v];
    while (!fits(v, t)) ++t;
    s.time[v] = t;
    commit(v, t);
    ++scheduled;
    for (const graph::EdgeId e : g.out_edges(v)) {
      const graph::Edge& ed = g.edge(e);
      earliest[ed.dst] = std::max(earliest[ed.dst], t + ed.latency);
      if (--pending[ed.dst] == 0) {
        ready.insert(std::upper_bound(ready.begin(), ready.end(), ed.dst, cmp),
                     ed.dst);
      }
    }
  }
  RS_CHECK(is_valid(ddg, s));
  return s;
}

}  // namespace rs::sched
