#include "sched/schedule.hpp"

#include <algorithm>

#include "graph/paths.hpp"
#include "support/assert.hpp"

namespace rs::sched {

bool is_valid(const graph::Digraph& g, const Schedule& s) {
  if (s.op_count() != g.node_count()) return false;
  for (const graph::Edge& e : g.edges()) {
    if (s.time[e.dst] - s.time[e.src] < e.latency) return false;
  }
  return std::all_of(s.time.begin(), s.time.end(),
                     [](Time t) { return t >= 0; });
}

bool is_valid(const ddg::Ddg& ddg, const Schedule& s) {
  return is_valid(ddg.graph(), s);
}

Schedule asap(const graph::Digraph& g) {
  Schedule s;
  s.time = graph::longest_path_to(g);
  return s;
}

Schedule asap(const ddg::Ddg& ddg) { return asap(ddg.graph()); }

Schedule alap(const graph::Digraph& g, Time horizon) {
  const std::vector<std::int64_t> lpf = graph::longest_path_from(g);
  Schedule s;
  s.time.resize(g.node_count());
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    s.time[v] = horizon - lpf[v];
    RS_REQUIRE(s.time[v] >= 0, "horizon below critical path");
  }
  return s;
}

Time makespan(const ddg::Ddg& ddg, const Schedule& s) {
  RS_REQUIRE(s.op_count() == ddg.op_count(), "schedule size mismatch");
  Time end = 0;
  for (ddg::NodeId v = 0; v < ddg.op_count(); ++v) {
    end = std::max(end, s.time[v] + ddg.op(v).latency);
  }
  return end;
}

Time worst_case_horizon(const graph::Digraph& g) {
  Time total = 0;
  for (const graph::Edge& e : g.edges()) {
    total += std::max<Time>(e.latency, 0);
  }
  return std::max<Time>(total, 1);
}

}  // namespace rs::sched
