#include "sched/lifetime.hpp"

#include <algorithm>
#include <queue>

#include "support/assert.hpp"

namespace rs::sched {

Time kill_date(const ddg::Ddg& ddg, ddg::NodeId u, ddg::RegType t,
               const Schedule& sigma) {
  const std::vector<ddg::NodeId> cons = ddg.consumers(u, t);
  const Time def = sigma.at(u) + ddg.op(u).delta_w;
  Time kill = def;  // empty interval when never consumed
  for (const ddg::NodeId v : cons) {
    kill = std::max(kill, sigma.at(v) + ddg.op(v).delta_r);
  }
  return kill;
}

std::vector<Lifetime> lifetimes(const ddg::Ddg& ddg, ddg::RegType t,
                                const Schedule& sigma) {
  RS_REQUIRE(sigma.op_count() == ddg.op_count(), "schedule size mismatch");
  const ddg::ValueSet values(ddg, t);
  std::vector<Lifetime> out;
  out.reserve(values.count());
  for (const ddg::NodeId u : values.nodes) {
    Lifetime lt;
    lt.value = u;
    lt.def = sigma.at(u) + ddg.op(u).delta_w;
    lt.kill = kill_date(ddg, u, t, sigma);
    out.push_back(lt);
  }
  return out;
}

int register_need(const ddg::Ddg& ddg, ddg::RegType t, const Schedule& sigma) {
  // Sweep: value occupies integer cycles def+1 .. kill (left-open interval).
  const std::vector<Lifetime> lts = lifetimes(ddg, t, sigma);
  std::vector<std::pair<Time, int>> events;
  events.reserve(lts.size() * 2);
  for (const Lifetime& lt : lts) {
    if (lt.empty()) continue;
    events.emplace_back(lt.def + 1, +1);
    events.emplace_back(lt.kill + 1, -1);
  }
  std::sort(events.begin(), events.end());
  int live = 0, peak = 0;
  for (const auto& [time, delta] : events) {
    live += delta;
    peak = std::max(peak, live);
  }
  return peak;
}

std::vector<bool> interference_matrix(const ddg::Ddg& ddg, ddg::RegType t,
                                      const Schedule& sigma) {
  const std::vector<Lifetime> lts = lifetimes(ddg, t, sigma);
  const int k = static_cast<int>(lts.size());
  std::vector<bool> mat(static_cast<std::size_t>(k) * k, false);
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      if (lts[i].interferes(lts[j])) {
        mat[static_cast<std::size_t>(i) * k + j] = true;
        mat[static_cast<std::size_t>(j) * k + i] = true;
      }
    }
  }
  return mat;
}

Allocation allocate(const ddg::Ddg& ddg, ddg::RegType t,
                    const Schedule& sigma) {
  const std::vector<Lifetime> lts = lifetimes(ddg, t, sigma);
  const int k = static_cast<int>(lts.size());
  std::vector<int> order(k);
  for (int i = 0; i < k; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return lts[a].def < lts[b].def; });

  Allocation alloc;
  alloc.reg_of_value.assign(k, -1);
  // Free list keyed by (release time = kill of current holder).
  std::priority_queue<std::pair<Time, int>, std::vector<std::pair<Time, int>>,
                      std::greater<>> busy;  // (kill, reg)
  std::vector<int> free_regs;
  int next_reg = 0;
  for (const int i : order) {
    const Lifetime& lt = lts[i];
    if (lt.empty()) continue;
    // A register is reusable when its holder is dead no later than this
    // value's definition (left-open: kill <= def means no interference).
    while (!busy.empty() && busy.top().first <= lt.def) {
      free_regs.push_back(busy.top().second);
      busy.pop();
    }
    int reg;
    if (!free_regs.empty()) {
      reg = free_regs.back();
      free_regs.pop_back();
    } else {
      reg = next_reg++;
    }
    alloc.reg_of_value[i] = reg;
    busy.emplace(lt.kill, reg);
  }
  alloc.registers_used = next_reg;
  return alloc;
}

}  // namespace rs::sched
