// Value lifetimes, killing dates, register need (MAXLIVE), interference.
//
// Section 2 semantics: the type-t value of u under schedule sigma lives in
// the left-open interval
//   LT(u) = ] sigma(u)+delta_w(u) , max_{v in Cons(u^t)} sigma(v)+delta_r(v) ]
// so a value written at cycle c is visible from c+1, and a read concurrent
// with a write returns the previous value. The register need RN^t_sigma(G)
// is the maximum number of overlapping lifetimes (equivalently the maximum
// clique of the interval interference graph, by Helly's property).
#pragma once

#include <vector>

#include "ddg/ddg.hpp"
#include "sched/schedule.hpp"

namespace rs::sched {

/// Left-open interval ]def, kill].
struct Lifetime {
  ddg::NodeId value = -1;  // defining operation
  Time def = 0;            // sigma(u) + delta_w(u)
  Time kill = 0;           // max read; >= def for valid DDGs

  bool empty() const { return kill <= def; }
  /// Set intersection of two left-open intervals.
  bool interferes(const Lifetime& other) const {
    if (empty() || other.empty()) return false;
    return std::min(kill, other.kill) > std::max(def, other.def);
  }
};

/// Lifetimes of every type-t value under sigma, in ValueSet order.
/// Values whose consumer set is empty get an empty interval ]def, def]
/// (normalize the DDG to give exit values the ⊥ consumer instead).
std::vector<Lifetime> lifetimes(const ddg::Ddg& ddg, ddg::RegType t,
                                const Schedule& sigma);

/// Killing date of value u^t under sigma (max consumer read time).
Time kill_date(const ddg::Ddg& ddg, ddg::NodeId u, ddg::RegType t,
               const Schedule& sigma);

/// RN^t_sigma(G): maximum number of simultaneously alive type-t values.
int register_need(const ddg::Ddg& ddg, ddg::RegType t, const Schedule& sigma);

/// Pairwise interference matrix in ValueSet order (flattened k*k).
std::vector<bool> interference_matrix(const ddg::Ddg& ddg, ddg::RegType t,
                                      const Schedule& sigma);

/// Greedy linear-scan register assignment over the computed lifetimes;
/// optimal for interval graphs, so uses exactly register_need() registers.
struct Allocation {
  /// Register index per value (ValueSet order); -1 for empty lifetimes.
  std::vector<int> reg_of_value;
  int registers_used = 0;
};
Allocation allocate(const ddg::Ddg& ddg, ddg::RegType t, const Schedule& sigma);

}  // namespace rs::sched
