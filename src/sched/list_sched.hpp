// Resource-constrained list scheduler.
//
// The paper's pipeline (figure 1) runs RS analysis *before* scheduling; this
// scheduler is the downstream consumer: it schedules under functional-unit
// constraints, oblivious to registers — which is exactly the freedom RS
// analysis is meant to guarantee. Used by examples and the discussion bench.
#pragma once

#include <array>

#include "ddg/ddg.hpp"
#include "sched/schedule.hpp"

namespace rs::sched {

/// Per-cycle issue resources; 0 units means "class unavailable" except Nop,
/// which never consumes resources.
struct Resources {
  int issue_width = 4;
  std::array<int, 9> units_per_class{2, 2, 1, 2, 2, 1, 1, 2, 8};

  int units(ddg::OpClass c) const {
    return units_per_class[static_cast<int>(c)];
  }
  static Resources unlimited();
};

/// Critical-path-priority list scheduling. Returns a valid schedule
/// respecting both dependences and per-cycle resource limits.
Schedule list_schedule(const ddg::Ddg& ddg, const Resources& res);

}  // namespace rs::sched
