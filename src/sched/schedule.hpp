// Schedules of a DDG: validity, ASAP/ALAP, makespan (section 2).
#pragma once

#include <cstdint>
#include <vector>

#include "ddg/ddg.hpp"

namespace rs::sched {

using Time = std::int64_t;

/// sigma: issue time per operation.
struct Schedule {
  std::vector<Time> time;

  Time at(ddg::NodeId v) const { return time[v]; }
  int op_count() const { return static_cast<int>(time.size()); }
};

/// True iff sigma(v) - sigma(u) >= delta(e) for every arc and all times >= 0.
bool is_valid(const graph::Digraph& g, const Schedule& s);
bool is_valid(const ddg::Ddg& ddg, const Schedule& s);

/// As-soon-as-possible schedule (longest path from sources). Works on any
/// positive-circuit-free graph (extended DDGs included).
Schedule asap(const graph::Digraph& g);
Schedule asap(const ddg::Ddg& ddg);

/// As-late-as-possible schedule against horizon T: sigma(u) = T - lpf(u).
/// Requires T >= critical path.
Schedule alap(const graph::Digraph& g, Time horizon);

/// Completion time: max over ops of sigma(u) + latency(u). For normalized
/// DDGs this equals sigma(⊥) since ⊥ is forced last.
Time makespan(const ddg::Ddg& ddg, const Schedule& s);

/// The paper's worst-case horizon T = sum of arc latencies (no ILP at all);
/// every valid "interesting" schedule fits below it.
Time worst_case_horizon(const graph::Digraph& g);

}  // namespace rs::sched
