// Benchmark DDG corpus: hand-reconstructed loop bodies of the classic
// public-domain kernels the paper's evaluation samples from (Linpack BLAS-1
// bodies, Livermore loops, Whetstone modules, SpecFP-style kernels).
//
// Substitution note (see DESIGN.md section 4): the authors' extracted DDG
// files were never published; these bodies are re-derived from the original
// Fortran/C sources. Loop-carried dependences are cut (a DAG models one
// iteration); live-in values appear as latency-0 definitions.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ddg/ddg.hpp"
#include "ddg/machine.hpp"

namespace rs::ddg {

struct NamedDdg {
  std::string name;
  Ddg ddg;
};

/// All corpus kernels instantiated for the given machine model, normalized.
std::vector<NamedDdg> kernel_corpus(const MachineModel& model);

/// Names in kernel_corpus order (stable; used by experiment tables).
std::vector<std::string> kernel_names();

/// Builds one kernel by name; throws PreconditionError for unknown names.
Ddg build_kernel(const std::string& name, const MachineModel& model);

// Individual kernels (all return normalized DDGs).
Ddg lin_ddot(const MachineModel& m);      // Linpack ddot inner loop
Ddg lin_daxpy(const MachineModel& m);     // Linpack daxpy inner loop
Ddg lin_dscal(const MachineModel& m);     // Linpack dscal inner loop
Ddg liv_loop1(const MachineModel& m);     // Livermore 1: hydro fragment
Ddg liv_loop5(const MachineModel& m);     // Livermore 5: tri-diagonal elim.
Ddg liv_loop7(const MachineModel& m);     // Livermore 7: equation of state
Ddg liv_loop23(const MachineModel& m);    // Livermore 23: 2-D implicit hydro
Ddg whet_p3(const MachineModel& m);       // Whetstone module 3 (array pass)
Ddg whet_p8(const MachineModel& m);       // Whetstone module 8 (trig-heavy)
Ddg spec_spice_band(const MachineModel& m);   // SPICE-style band solve step
Ddg spec_tomcatv_stencil(const MachineModel& m);  // tomcatv-style stencil
Ddg spec_dod_fma(const MachineModel& m);  // dense FMA chain pair
Ddg matmul_unroll4(const MachineModel& m);  // dgemm micro-kernel, 4x unroll
Ddg fir8(const MachineModel& m);          // 8-tap FIR (wide adder tree)
Ddg horner8(const MachineModel& m);       // degree-8 Horner (serial chain)
Ddg estrin8(const MachineModel& m);       // degree-8 Estrin (parallel)
Ddg complex_mul2(const MachineModel& m);  // complex multiply, 2x unroll
Ddg liv_loop2(const MachineModel& m);     // Livermore 2: ICCG fragment
Ddg liv_loop4(const MachineModel& m);     // Livermore 4: banded lin. eq.
Ddg liv_loop9(const MachineModel& m);     // Livermore 9: integrate predictors
Ddg liv_loop11(const MachineModel& m);    // Livermore 11: first sum
Ddg liv_loop12(const MachineModel& m);    // Livermore 12: first difference
Ddg lin_dgefa_pivot(const MachineModel& m);  // Linpack dgefa pivot step
Ddg fft_butterfly(const MachineModel& m);    // radix-2 FFT butterfly
Ddg stencil3_unroll2(const MachineModel& m); // 1-D 3-point stencil, 2x

}  // namespace rs::ddg
