#include "ddg/builder.hpp"

#include "support/assert.hpp"

namespace rs::ddg {

KernelBuilder::KernelBuilder(const MachineModel& model, std::string kernel_name)
    : model_(model), ddg_(kRegTypeCount, std::move(kernel_name)) {}

NodeId KernelBuilder::live_in(RegType t, std::string name) {
  Operation op = model_.make_op(OpClass::Nop, std::move(name));
  // Live-ins are available immediately; they still occupy a register from
  // time 0 until their last read, which is exactly the semantics wanted.
  op.latency = 0;
  const NodeId v = ddg_.add_op(std::move(op));
  ddg_.mark_writes(v, t);
  return v;
}

RegType KernelBuilder::operand_type(NodeId v) const {
  const Operation& o = ddg_.op(v);
  if (o.writes_type(kFloatReg)) return kFloatReg;
  RS_REQUIRE(o.writes_type(kIntReg), "operand defines no value: " + o.name);
  return kIntReg;
}

ddg::Latency KernelBuilder::flow_latency(NodeId src, NodeId dst) const {
  // Producer latency, raised so the consumer's read lands strictly after
  // the write (zero-latency live-ins would otherwise read stale registers).
  return std::max<Latency>(
      ddg_.op(src).latency,
      ddg_.op(src).delta_w + 1 - ddg_.op(dst).delta_r);
}

NodeId KernelBuilder::op(OpClass cls, RegType wt, std::string name,
                         std::initializer_list<NodeId> operands) {
  return op_n(cls, wt, std::move(name), std::vector<NodeId>(operands));
}

NodeId KernelBuilder::sink(OpClass cls, std::string name,
                           std::initializer_list<NodeId> operands) {
  return sink_n(cls, std::move(name), std::vector<NodeId>(operands));
}

NodeId KernelBuilder::op_n(OpClass cls, RegType wt, std::string name,
                           const std::vector<NodeId>& operands) {
  const NodeId v = ddg_.add_op(model_.make_op(cls, std::move(name)));
  ddg_.mark_writes(v, wt);
  for (const NodeId src : operands) {
    const RegType t = operand_type(src);
    ddg_.add_flow(src, v, t, flow_latency(src, v));
  }
  return v;
}

NodeId KernelBuilder::sink_n(OpClass cls, std::string name,
                             const std::vector<NodeId>& operands) {
  const NodeId v = ddg_.add_op(model_.make_op(cls, std::move(name)));
  for (const NodeId src : operands) {
    const RegType t = operand_type(src);
    ddg_.add_flow(src, v, t, flow_latency(src, v));
  }
  return v;
}

void KernelBuilder::serial(NodeId src, NodeId dst, Latency latency) {
  ddg_.add_serial(src, dst, latency);
}

Ddg KernelBuilder::build() const {
  ddg_.validate();
  return ddg_.normalized();
}

Ddg KernelBuilder::build_raw() const {
  ddg_.validate();
  return ddg_;
}

}  // namespace rs::ddg
