// Small IR-style builder for writing loop-body DDGs by hand (the kernel
// corpus) and programmatically (generators). Flow-arc latencies default to
// the producer's latency under the active machine model.
#pragma once

#include <initializer_list>
#include <string>

#include "ddg/ddg.hpp"
#include "ddg/machine.hpp"

namespace rs::ddg {

class KernelBuilder {
 public:
  KernelBuilder(const MachineModel& model, std::string kernel_name);

  /// Live-in value of the given type (modeled as a latency-0 definition;
  /// see DESIGN.md: DAG-level analysis needs every value defined in-graph).
  NodeId live_in(RegType t, std::string name);

  /// Generic n-ary operation writing one value of type `wt`; flow arcs are
  /// added from each operand (operand type inferred from its definition:
  /// prefer float if the producer writes float, else int).
  NodeId op(OpClass cls, RegType wt, std::string name,
            std::initializer_list<NodeId> operands);

  /// Operation writing nothing (e.g. store): consumes operands only.
  NodeId sink(OpClass cls, std::string name,
              std::initializer_list<NodeId> operands);

  /// Vector-operand variants (for programmatic construction, e.g. CFG
  /// block expansion).
  NodeId op_n(OpClass cls, RegType wt, std::string name,
              const std::vector<NodeId>& operands);
  NodeId sink_n(OpClass cls, std::string name,
                const std::vector<NodeId>& operands);

  // Typed conveniences (float value producers).
  NodeId fload(std::string name, NodeId addr) {
    return op(OpClass::Load, kFloatReg, std::move(name), {addr});
  }
  NodeId fadd(std::string name, NodeId a, NodeId b) {
    return op(OpClass::FpAdd, kFloatReg, std::move(name), {a, b});
  }
  NodeId fmul(std::string name, NodeId a, NodeId b) {
    return op(OpClass::FpMul, kFloatReg, std::move(name), {a, b});
  }
  NodeId fdiv(std::string name, NodeId a, NodeId b) {
    return op(OpClass::FpDiv, kFloatReg, std::move(name), {a, b});
  }
  NodeId flong(std::string name, NodeId a) {
    return op(OpClass::FpLong, kFloatReg, std::move(name), {a});
  }
  // Integer producers.
  NodeId iadd(std::string name, NodeId a) {
    return op(OpClass::IntAlu, kIntReg, std::move(name), {a});
  }
  NodeId iadd2(std::string name, NodeId a, NodeId b) {
    return op(OpClass::IntAlu, kIntReg, std::move(name), {a, b});
  }
  NodeId store(std::string name, NodeId addr, NodeId value) {
    return sink(OpClass::Store, std::move(name), {addr, value});
  }

  /// Adds an extra serial dependence (e.g. store ordering).
  void serial(NodeId src, NodeId dst, Latency latency);

  /// Finishes: validates and returns the *normalized* DDG (with ⊥).
  Ddg build() const;

  /// Finishes without normalization (tests that exercise normalized()).
  Ddg build_raw() const;

  const MachineModel& model() const { return model_; }

 private:
  RegType operand_type(NodeId v) const;
  Latency flow_latency(NodeId src, NodeId dst) const;

  MachineModel model_;
  Ddg ddg_;
};

}  // namespace rs::ddg
