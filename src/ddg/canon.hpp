// Canonical structural fingerprint of a DDG, the cache key of the batch
// analysis engine (src/service/).
//
// Two DDGs that differ only by op renumbering (insertion order), op renaming,
// or arc reordering describe the same scheduling problem and must hash to the
// same fingerprint; DDGs differing in any register-relevant structure (op
// classes, latencies, read/write offsets, written types, arc kinds/types/
// latencies, or the dependence shape itself) should hash differently.
//
// Implementation: Weisfeiler-Leman-style iterative label refinement. Each op
// starts from a hash of its timing/class/writes attributes (names excluded),
// then repeatedly absorbs the sorted multisets of its in- and out-arc
// signatures (kind, type, latency, neighbor label). The fingerprint is a hash
// of the sorted multiset of final labels plus global counts, so it is
// independent of node and edge order by construction. Two independently
// seeded 64-bit label streams give a 128-bit key.
//
// Like any content hash this can collide — WL-equivalent non-isomorphic
// graphs exist in theory — but for attribute-labeled DAGs of this size the
// risk is negligible and on par with the 128-bit hash collision risk any
// content-addressed cache accepts.
#pragma once

#include <cstdint>
#include <string>

#include "ddg/ddg.hpp"

namespace rs::ddg {

/// 128-bit order-independent structural hash of a DDG.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;

  /// 32 lowercase hex chars (hi then lo).
  std::string hex() const;
};

/// Computes the structural fingerprint described above.
Fingerprint fingerprint(const Ddg& ddg);

/// Derives a new fingerprint by folding request-level state (option digests,
/// register limits) into an existing one. Not commutative: extend(fp, a) and
/// extend(fp, b) differ, as does the order of chained extensions.
Fingerprint extend(const Fingerprint& fp, std::uint64_t salt);

}  // namespace rs::ddg
