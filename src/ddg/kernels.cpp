#include "ddg/kernels.hpp"

#include "ddg/builder.hpp"
#include "support/assert.hpp"

namespace rs::ddg {

Ddg lin_ddot(const MachineModel& m) {
  // do i: dtemp = dtemp + dx(i)*dy(i)
  KernelBuilder b(m, "lin-ddot");
  const auto acc = b.live_in(kFloatReg, "acc.in");
  const auto xp = b.live_in(kIntReg, "xp.in");
  const auto yp = b.live_in(kIntReg, "yp.in");
  const auto lx = b.fload("ld.x", xp);
  const auto ly = b.fload("ld.y", yp);
  const auto mul = b.fmul("mul", lx, ly);
  b.fadd("acc.out", acc, mul);
  b.iadd("xp.out", xp);
  b.iadd("yp.out", yp);
  return b.build();
}

Ddg lin_daxpy(const MachineModel& m) {
  // do i: dy(i) = dy(i) + da*dx(i)
  KernelBuilder b(m, "lin-daxpy");
  const auto da = b.live_in(kFloatReg, "da.in");
  const auto xp = b.live_in(kIntReg, "xp.in");
  const auto yp = b.live_in(kIntReg, "yp.in");
  const auto lx = b.fload("ld.x", xp);
  const auto ly = b.fload("ld.y", yp);
  const auto mul = b.fmul("mul", da, lx);
  const auto sum = b.fadd("add", ly, mul);
  b.store("st.y", yp, sum);
  b.iadd("xp.out", xp);
  b.iadd("yp.out", yp);
  return b.build();
}

Ddg lin_dscal(const MachineModel& m) {
  // do i: dx(i) = da*dx(i)
  KernelBuilder b(m, "lin-dscal");
  const auto da = b.live_in(kFloatReg, "da.in");
  const auto xp = b.live_in(kIntReg, "xp.in");
  const auto lx = b.fload("ld.x", xp);
  const auto mul = b.fmul("mul", da, lx);
  b.store("st.x", xp, mul);
  b.iadd("xp.out", xp);
  return b.build();
}

Ddg liv_loop1(const MachineModel& m) {
  // x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])
  KernelBuilder b(m, "liv-loop1");
  const auto q = b.live_in(kFloatReg, "q.in");
  const auto r = b.live_in(kFloatReg, "r.in");
  const auto t = b.live_in(kFloatReg, "t.in");
  const auto xp = b.live_in(kIntReg, "xp.in");
  const auto yp = b.live_in(kIntReg, "yp.in");
  const auto zp = b.live_in(kIntReg, "zp.in");
  const auto a10 = b.iadd("addr.z10", zp);
  const auto a11 = b.iadd("addr.z11", zp);
  const auto ly = b.fload("ld.y", yp);
  const auto lz10 = b.fload("ld.z10", a10);
  const auto lz11 = b.fload("ld.z11", a11);
  const auto m1 = b.fmul("mul.rz", r, lz10);
  const auto m2 = b.fmul("mul.tz", t, lz11);
  const auto s1 = b.fadd("add.inner", m1, m2);
  const auto m3 = b.fmul("mul.y", ly, s1);
  const auto s2 = b.fadd("add.q", q, m3);
  b.store("st.x", xp, s2);
  b.iadd("xp.out", xp);
  b.iadd("yp.out", yp);
  b.iadd("zp.out", zp);
  return b.build();
}

Ddg liv_loop5(const MachineModel& m) {
  // x[i] = z[i]*(y[i] - x[i-1])   (recurrence cut: x[i-1] is live-in)
  KernelBuilder b(m, "liv-loop5");
  const auto xprev = b.live_in(kFloatReg, "xprev.in");
  const auto yp = b.live_in(kIntReg, "yp.in");
  const auto zp = b.live_in(kIntReg, "zp.in");
  const auto xp = b.live_in(kIntReg, "xp.in");
  const auto ly = b.fload("ld.y", yp);
  const auto lz = b.fload("ld.z", zp);
  const auto sub = b.fadd("sub", ly, xprev);
  const auto mul = b.fmul("mul", lz, sub);
  b.store("st.x", xp, mul);
  b.iadd("yp.out", yp);
  b.iadd("zp.out", zp);
  b.iadd("xp.out", xp);
  return b.build();
}

Ddg liv_loop7(const MachineModel& m) {
  // x[k] = u[k] + r*(z[k] + r*y[k])
  //      + t*(u[k+3] + r*(u[k+2] + r*u[k+1])
  //      + t*(u[k+6] + r*(u[k+5] + r*u[k+4])))
  KernelBuilder b(m, "liv-loop7");
  const auto r = b.live_in(kFloatReg, "r.in");
  const auto t = b.live_in(kFloatReg, "t.in");
  const auto up = b.live_in(kIntReg, "up.in");
  const auto xp = b.live_in(kIntReg, "xp.in");
  const auto yp = b.live_in(kIntReg, "yp.in");
  const auto zp = b.live_in(kIntReg, "zp.in");
  const auto lu0 = b.fload("ld.u0", up);
  const auto lz = b.fload("ld.z", zp);
  const auto ly = b.fload("ld.y", yp);
  const auto a1 = b.iadd("addr.u1", up);
  const auto a2 = b.iadd("addr.u2", up);
  const auto a3 = b.iadd("addr.u3", up);
  const auto a4 = b.iadd("addr.u4", up);
  const auto a5 = b.iadd("addr.u5", up);
  const auto a6 = b.iadd("addr.u6", up);
  const auto lu1 = b.fload("ld.u1", a1);
  const auto lu2 = b.fload("ld.u2", a2);
  const auto lu3 = b.fload("ld.u3", a3);
  const auto lu4 = b.fload("ld.u4", a4);
  const auto lu5 = b.fload("ld.u5", a5);
  const auto lu6 = b.fload("ld.u6", a6);
  // innermost triple 2: u[k+4..6]
  const auto p1 = b.fmul("mul.ru4", r, lu4);
  const auto q1 = b.fadd("add.u5", lu5, p1);
  const auto p2 = b.fmul("mul.rq1", r, q1);
  const auto q2 = b.fadd("add.u6", lu6, p2);
  // triple 1: u[k+1..3]
  const auto p3 = b.fmul("mul.ru1", r, lu1);
  const auto q3 = b.fadd("add.u2", lu2, p3);
  const auto p4 = b.fmul("mul.rq3", r, q3);
  const auto q4 = b.fadd("add.u3", lu3, p4);
  const auto p5 = b.fmul("mul.tq2", t, q2);
  const auto q5 = b.fadd("add.q4q2", q4, p5);
  const auto p6 = b.fmul("mul.tq5", t, q5);
  // head: u[k] + r*(z[k] + r*y[k])
  const auto p7 = b.fmul("mul.ry", r, ly);
  const auto q6 = b.fadd("add.z", lz, p7);
  const auto p8 = b.fmul("mul.rq6", r, q6);
  const auto q7 = b.fadd("add.u0", lu0, p8);
  const auto q8 = b.fadd("add.final", q7, p6);
  b.store("st.x", xp, q8);
  b.iadd("up.out", up);
  b.iadd("xp.out", xp);
  return b.build();
}

Ddg liv_loop23(const MachineModel& m) {
  // qa = za[j+1][k]*zr[j][k] + za[j-1][k]*zb[j][k]
  //    + za[j][k+1]*zu[j][k] + za[j][k-1]*zv[j][k] + zz[j][k]
  // za[j][k] += 0.175*(qa - za[j][k])
  KernelBuilder b(m, "liv-loop23");
  const auto c = b.live_in(kFloatReg, "c0175.in");
  const auto zap = b.live_in(kIntReg, "zap.in");
  const auto zrp = b.live_in(kIntReg, "zrp.in");
  const auto zbp = b.live_in(kIntReg, "zbp.in");
  const auto zup = b.live_in(kIntReg, "zup.in");
  const auto zvp = b.live_in(kIntReg, "zvp.in");
  const auto zzp = b.live_in(kIntReg, "zzp.in");
  const auto aj1 = b.iadd("addr.jp1", zap);
  const auto ajm = b.iadd("addr.jm1", zap);
  const auto akp = b.iadd("addr.kp1", zap);
  const auto akm = b.iadd("addr.km1", zap);
  const auto la1 = b.fload("ld.za.jp1", aj1);
  const auto la2 = b.fload("ld.za.jm1", ajm);
  const auto la3 = b.fload("ld.za.kp1", akp);
  const auto la4 = b.fload("ld.za.km1", akm);
  const auto la0 = b.fload("ld.za", zap);
  const auto lr = b.fload("ld.zr", zrp);
  const auto lb = b.fload("ld.zb", zbp);
  const auto lu = b.fload("ld.zu", zup);
  const auto lv = b.fload("ld.zv", zvp);
  const auto lz = b.fload("ld.zz", zzp);
  const auto m1 = b.fmul("mul.r", la1, lr);
  const auto m2 = b.fmul("mul.b", la2, lb);
  const auto m3 = b.fmul("mul.u", la3, lu);
  const auto m4 = b.fmul("mul.v", la4, lv);
  const auto s1 = b.fadd("add.rb", m1, m2);
  const auto s2 = b.fadd("add.uv", m3, m4);
  const auto s3 = b.fadd("add.s1s2", s1, s2);
  const auto qa = b.fadd("add.zz", s3, lz);
  const auto d = b.fadd("sub.qa", qa, la0);
  const auto md = b.fmul("mul.c", c, d);
  const auto out = b.fadd("add.za", la0, md);
  b.store("st.za", zap, out);
  b.iadd("zap.out", zap);
  return b.build();
}

Ddg whet_p3(const MachineModel& m) {
  // Whetstone PA(E1): four cross-coupled updates through T:
  //   e1 = (e1 + e2 + e3 - e4)*t ; e2 = (e1 + e2 - e3 + e4)*t ; ...
  KernelBuilder b(m, "whet-p3");
  const auto t = b.live_in(kFloatReg, "t.in");
  auto e1 = b.live_in(kFloatReg, "e1.in");
  auto e2 = b.live_in(kFloatReg, "e2.in");
  auto e3 = b.live_in(kFloatReg, "e3.in");
  auto e4 = b.live_in(kFloatReg, "e4.in");
  {
    const auto s1 = b.fadd("p3.1a", e1, e2);
    const auto s2 = b.fadd("p3.1b", s1, e3);
    const auto s3 = b.fadd("p3.1c", s2, e4);
    e1 = b.fmul("p3.e1", s3, t);
  }
  {
    const auto s1 = b.fadd("p3.2a", e1, e2);
    const auto s2 = b.fadd("p3.2b", s1, e3);
    const auto s3 = b.fadd("p3.2c", s2, e4);
    e2 = b.fmul("p3.e2", s3, t);
  }
  {
    const auto s1 = b.fadd("p3.3a", e1, e2);
    const auto s2 = b.fadd("p3.3b", s1, e3);
    const auto s3 = b.fadd("p3.3c", s2, e4);
    e3 = b.fmul("p3.e3", s3, t);
  }
  {
    const auto s1 = b.fadd("p3.4a", e1, e2);
    const auto s2 = b.fadd("p3.4b", s1, e3);
    const auto s3 = b.fadd("p3.4c", s2, e4);
    e4 = b.fmul("p3.e4", s3, t);
  }
  // e1..e4 are live-out; normalization wires them to ⊥.
  return b.build();
}

Ddg whet_p8(const MachineModel& m) {
  // Whetstone module with transcendental calls:
  //   x = t*atan(t2*sin(x)*cos(x)/(cos(x+y)+cos(x-y)-1.0))
  KernelBuilder b(m, "whet-p8");
  const auto t = b.live_in(kFloatReg, "t.in");
  const auto t2 = b.live_in(kFloatReg, "t2.in");
  const auto x = b.live_in(kFloatReg, "x.in");
  const auto y = b.live_in(kFloatReg, "y.in");
  const auto sx = b.flong("sin.x", x);
  const auto cx = b.flong("cos.x", x);
  const auto xy1 = b.fadd("add.xy", x, y);
  const auto xy2 = b.fadd("sub.xy", x, y);
  const auto c1 = b.flong("cos.xy1", xy1);
  const auto c2 = b.flong("cos.xy2", xy2);
  const auto num1 = b.fmul("mul.sc", sx, cx);
  const auto num2 = b.fmul("mul.t2", t2, num1);
  const auto den1 = b.fadd("add.cc", c1, c2);
  const auto den2 = b.fadd("sub.1", den1, den1);  // (cos+cos-1): reuse as add
  const auto div = b.fdiv("div", num2, den2);
  const auto at = b.flong("atan", div);
  b.fmul("x.out", t, at);
  return b.build();
}

Ddg spec_spice_band(const MachineModel& m) {
  // SPICE-style banded back-substitution step with a reciprocal:
  //   x = (b - l1*x1 - l2*x2) / d
  KernelBuilder b(m, "spec-spice");
  const auto bp = b.live_in(kIntReg, "bp.in");
  const auto lp = b.live_in(kIntReg, "lp.in");
  const auto x1 = b.live_in(kFloatReg, "x1.in");
  const auto x2 = b.live_in(kFloatReg, "x2.in");
  const auto d = b.live_in(kFloatReg, "d.in");
  const auto lb = b.fload("ld.b", bp);
  const auto ll1 = b.fload("ld.l1", lp);
  const auto a2 = b.iadd("addr.l2", lp);
  const auto ll2 = b.fload("ld.l2", a2);
  const auto m1 = b.fmul("mul.l1", ll1, x1);
  const auto m2 = b.fmul("mul.l2", ll2, x2);
  const auto s1 = b.fadd("sub.1", lb, m1);
  const auto s2 = b.fadd("sub.2", s1, m2);
  const auto q = b.fdiv("div.d", s2, d);
  b.store("st.x", bp, q);
  b.iadd("bp.out", bp);
  b.iadd("lp.out", lp);
  return b.build();
}

Ddg spec_tomcatv_stencil(const MachineModel& m) {
  // tomcatv-style interior update: two 3-point second differences plus a
  // cross term, applied to two fields (x and y meshes).
  KernelBuilder b(m, "spec-tomcatv");
  const auto xp = b.live_in(kIntReg, "xp.in");
  const auto yp = b.live_in(kIntReg, "yp.in");
  const auto w1 = b.live_in(kFloatReg, "aa.in");
  const auto w2 = b.live_in(kFloatReg, "dd.in");
  const auto axm = b.iadd("addr.xm", xp);
  const auto axq = b.iadd("addr.xq", xp);
  const auto aym = b.iadd("addr.ym", yp);
  const auto ayq = b.iadd("addr.yq", yp);
  const auto x0 = b.fload("ld.x0", xp);
  const auto xm = b.fload("ld.xm", axm);
  const auto xq = b.fload("ld.xq", axq);
  const auto y0 = b.fload("ld.y0", yp);
  const auto ym = b.fload("ld.ym", aym);
  const auto yq = b.fload("ld.yq", ayq);
  const auto dx1 = b.fadd("add.xm", xm, xq);
  const auto dx2 = b.fmul("mul.x2", w1, x0);
  const auto rx = b.fadd("sub.rx", dx1, dx2);
  const auto dy1 = b.fadd("add.ym", ym, yq);
  const auto dy2 = b.fmul("mul.y2", w1, y0);
  const auto ry = b.fadd("sub.ry", dy1, dy2);
  const auto cx = b.fmul("mul.cross.x", w2, ry);
  const auto cy = b.fmul("mul.cross.y", w2, rx);
  const auto ox = b.fadd("add.out.x", rx, cx);
  const auto oy = b.fadd("add.out.y", ry, cy);
  b.store("st.rx", xp, ox);
  b.store("st.ry", yp, oy);
  b.iadd("xp.out", xp);
  b.iadd("yp.out", yp);
  return b.build();
}

Ddg spec_dod_fma(const MachineModel& m) {
  // Two interleaved multiply-accumulate chains sharing loads (typical of
  // the DoD SpecFP loop bodies used in the paper's corpus family).
  KernelBuilder b(m, "spec-dod");
  const auto ap = b.live_in(kIntReg, "ap.in");
  const auto bp = b.live_in(kIntReg, "bp.in");
  auto acc1 = b.live_in(kFloatReg, "acc1.in");
  auto acc2 = b.live_in(kFloatReg, "acc2.in");
  for (int u = 0; u < 2; ++u) {
    const auto aa = u == 0 ? ap : b.iadd("addr.a" + std::to_string(u), ap);
    const auto ab = u == 0 ? bp : b.iadd("addr.b" + std::to_string(u), bp);
    const auto la = b.fload("ld.a" + std::to_string(u), aa);
    const auto lb = b.fload("ld.b" + std::to_string(u), ab);
    const auto mul = b.fmul("mul" + std::to_string(u), la, lb);
    const auto sq = b.fmul("sq" + std::to_string(u), la, la);
    acc1 = b.fadd("acc1." + std::to_string(u), acc1, mul);
    acc2 = b.fadd("acc2." + std::to_string(u), acc2, sq);
  }
  b.iadd("ap.out", ap);
  b.iadd("bp.out", bp);
  return b.build();
}

Ddg matmul_unroll4(const MachineModel& m) {
  // c += a[k]*b[k], k unrolled 4x with a reduction tree.
  KernelBuilder b(m, "matmul-u4");
  const auto ap = b.live_in(kIntReg, "ap.in");
  const auto bp = b.live_in(kIntReg, "bp.in");
  const auto acc = b.live_in(kFloatReg, "acc.in");
  std::vector<NodeId> prods;
  for (int k = 0; k < 4; ++k) {
    const auto aa = k == 0 ? ap : b.iadd("addr.a" + std::to_string(k), ap);
    const auto ab = k == 0 ? bp : b.iadd("addr.b" + std::to_string(k), bp);
    const auto la = b.fload("ld.a" + std::to_string(k), aa);
    const auto lb = b.fload("ld.b" + std::to_string(k), ab);
    prods.push_back(b.fmul("mul" + std::to_string(k), la, lb));
  }
  const auto s1 = b.fadd("red.1", prods[0], prods[1]);
  const auto s2 = b.fadd("red.2", prods[2], prods[3]);
  const auto s3 = b.fadd("red.3", s1, s2);
  b.fadd("acc.out", acc, s3);
  b.iadd("ap.out", ap);
  b.iadd("bp.out", bp);
  return b.build();
}

Ddg fir8(const MachineModel& m) {
  // y = sum_{k<8} c[k]*x[i+k]; coefficients live in registers.
  KernelBuilder b(m, "fir8");
  const auto xp = b.live_in(kIntReg, "xp.in");
  std::vector<NodeId> coef, prod;
  for (int k = 0; k < 8; ++k) {
    coef.push_back(b.live_in(kFloatReg, "c" + std::to_string(k) + ".in"));
  }
  for (int k = 0; k < 8; ++k) {
    const auto addr = k == 0 ? xp : b.iadd("addr.x" + std::to_string(k), xp);
    const auto lx = b.fload("ld.x" + std::to_string(k), addr);
    prod.push_back(b.fmul("mul" + std::to_string(k), coef[k], lx));
  }
  // Balanced adder tree.
  std::vector<NodeId> level = prod;
  int stage = 0;
  while (level.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(b.fadd("red." + std::to_string(stage) + "." +
                                std::to_string(i / 2),
                            level[i], level[i + 1]));
    }
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
    ++stage;
  }
  b.store("st.y", xp, level[0]);
  b.iadd("xp.out", xp);
  return b.build();
}

Ddg horner8(const MachineModel& m) {
  // acc = ((...(c8*x + c7)*x + ...)*x + c0): strictly serial chain.
  KernelBuilder b(m, "horner8");
  const auto x = b.live_in(kFloatReg, "x.in");
  auto acc = b.live_in(kFloatReg, "c8.in");
  for (int k = 7; k >= 0; --k) {
    const auto c = b.live_in(kFloatReg, "c" + std::to_string(k) + ".in");
    const auto mul = b.fmul("mul" + std::to_string(k), acc, x);
    acc = b.fadd("add" + std::to_string(k), mul, c);
  }
  return b.build();
}

Ddg estrin8(const MachineModel& m) {
  // Degree-7 Estrin evaluation: pairs (c1*x+c0), x2 = x*x, x4 = x2*x2, ...
  KernelBuilder b(m, "estrin8");
  const auto x = b.live_in(kFloatReg, "x.in");
  std::vector<NodeId> c;
  for (int k = 0; k < 8; ++k) {
    c.push_back(b.live_in(kFloatReg, "c" + std::to_string(k) + ".in"));
  }
  const auto x2 = b.fmul("x2", x, x);
  const auto x4 = b.fmul("x4", x2, x2);
  std::vector<NodeId> pair;
  for (int k = 0; k < 4; ++k) {
    const auto mul = b.fmul("p.mul" + std::to_string(k), c[2 * k + 1], x);
    pair.push_back(b.fadd("p.add" + std::to_string(k), mul, c[2 * k]));
  }
  const auto q0m = b.fmul("q0.mul", pair[1], x2);
  const auto q0 = b.fadd("q0.add", q0m, pair[0]);
  const auto q1m = b.fmul("q1.mul", pair[3], x2);
  const auto q1 = b.fadd("q1.add", q1m, pair[2]);
  const auto rm = b.fmul("r.mul", q1, x4);
  b.fadd("r.add", rm, q0);
  return b.build();
}

Ddg complex_mul2(const MachineModel& m) {
  // (re,im) = (ar*br - ai*bi, ar*bi + ai*br), two independent pairs.
  KernelBuilder b(m, "complex-mul2");
  for (int u = 0; u < 2; ++u) {
    const std::string s = std::to_string(u);
    const auto ar = b.live_in(kFloatReg, "ar" + s + ".in");
    const auto ai = b.live_in(kFloatReg, "ai" + s + ".in");
    const auto br = b.live_in(kFloatReg, "br" + s + ".in");
    const auto bi = b.live_in(kFloatReg, "bi" + s + ".in");
    const auto m1 = b.fmul("rr" + s, ar, br);
    const auto m2 = b.fmul("ii" + s, ai, bi);
    const auto m3 = b.fmul("ri" + s, ar, bi);
    const auto m4 = b.fmul("ir" + s, ai, br);
    b.fadd("re" + s, m1, m2);
    b.fadd("im" + s, m3, m4);
  }
  return b.build();
}

Ddg liv_loop2(const MachineModel& m) {
  // ICCG excerpt (incomplete Cholesky conjugate gradient), one ipntp step:
  //   x[i] = x[ipnt+i] - v[i]*x[i-1] - v[i+1]*x[i+1]
  KernelBuilder b(m, "liv-loop2");
  const auto xp = b.live_in(kIntReg, "xp.in");
  const auto vp = b.live_in(kIntReg, "vp.in");
  const auto a1 = b.iadd("addr.xip", xp);
  const auto a2 = b.iadd("addr.xm1", xp);
  const auto a3 = b.iadd("addr.xp1", xp);
  const auto a4 = b.iadd("addr.v1", vp);
  const auto lxip = b.fload("ld.xip", a1);
  const auto lxm = b.fload("ld.xm1", a2);
  const auto lxp1 = b.fload("ld.xp1", a3);
  const auto lv0 = b.fload("ld.v0", vp);
  const auto lv1 = b.fload("ld.v1", a4);
  const auto m1 = b.fmul("mul.vm", lv0, lxm);
  const auto m2 = b.fmul("mul.vp", lv1, lxp1);
  const auto s1 = b.fadd("sub.1", lxip, m1);
  const auto s2 = b.fadd("sub.2", s1, m2);
  b.store("st.x", xp, s2);
  b.iadd("xp.out", xp);
  b.iadd("vp.out", vp);
  return b.build();
}

Ddg liv_loop4(const MachineModel& m) {
  // Banded linear equations inner step: xz[k] -= xz[k-5]*y[k-5] (plus the
  // running sum the kernel keeps), reconstructed as a fused two-term form.
  KernelBuilder b(m, "liv-loop4");
  const auto xp = b.live_in(kIntReg, "xp.in");
  const auto yp = b.live_in(kIntReg, "yp.in");
  const auto acc = b.live_in(kFloatReg, "acc.in");
  const auto am = b.iadd("addr.xm5", xp);
  const auto lxm = b.fload("ld.xm5", am);
  const auto ly = b.fload("ld.y", yp);
  const auto lx = b.fload("ld.x", xp);
  const auto mul = b.fmul("mul", lxm, ly);
  const auto sub = b.fadd("sub", lx, mul);
  b.fadd("acc.out", acc, sub);
  b.store("st.x", xp, sub);
  b.iadd("xp.out", xp);
  b.iadd("yp.out", yp);
  return b.build();
}

Ddg liv_loop9(const MachineModel& m) {
  // Integrate predictors: px[i] = dm28*px[13] + dm27*px[12] + dm26*px[11]
  //   + dm25*px[10] + dm24*px[9] + dm23*px[8] + dm22*px[7] + c0*(px[4]
  //   + px[5]) + px[2]   — a wide multiply-accumulate fan-in.
  KernelBuilder b(m, "liv-loop9");
  const auto pp = b.live_in(kIntReg, "px.in");
  const auto c0 = b.live_in(kFloatReg, "c0.in");
  std::vector<NodeId> dm, px;
  for (int k = 0; k < 7; ++k) {
    dm.push_back(b.live_in(kFloatReg, "dm" + std::to_string(22 + k) + ".in"));
  }
  for (int k = 0; k < 10; ++k) {
    const auto addr =
        k == 0 ? pp : b.iadd("addr.px" + std::to_string(k), pp);
    px.push_back(b.fload("ld.px" + std::to_string(k), addr));
  }
  std::vector<NodeId> prods;
  for (int k = 0; k < 7; ++k) {
    prods.push_back(b.fmul("mul" + std::to_string(k), dm[k], px[k]));
  }
  const auto pair = b.fadd("add.p45", px[7], px[8]);
  prods.push_back(b.fmul("mul.c0", c0, pair));
  prods.push_back(px[9]);
  NodeId acc = prods[0];
  for (std::size_t k = 1; k < prods.size(); ++k) {
    acc = b.fadd("red" + std::to_string(k), acc, prods[k]);
  }
  b.store("st.px", pp, acc);
  b.iadd("px.out", pp);
  return b.build();
}

Ddg liv_loop11(const MachineModel& m) {
  // First sum: x[k] = x[k-1] + y[k]  (recurrence cut at the iteration edge).
  KernelBuilder b(m, "liv-loop11");
  const auto xprev = b.live_in(kFloatReg, "xprev.in");
  const auto yp = b.live_in(kIntReg, "yp.in");
  const auto xp = b.live_in(kIntReg, "xp.in");
  const auto ly = b.fload("ld.y", yp);
  const auto sum = b.fadd("add", xprev, ly);
  b.store("st.x", xp, sum);
  b.iadd("yp.out", yp);
  b.iadd("xp.out", xp);
  return b.build();
}

Ddg liv_loop12(const MachineModel& m) {
  // First difference: x[k] = y[k+1] - y[k].
  KernelBuilder b(m, "liv-loop12");
  const auto yp = b.live_in(kIntReg, "yp.in");
  const auto xp = b.live_in(kIntReg, "xp.in");
  const auto a1 = b.iadd("addr.y1", yp);
  const auto ly0 = b.fload("ld.y0", yp);
  const auto ly1 = b.fload("ld.y1", a1);
  const auto diff = b.fadd("sub", ly1, ly0);
  b.store("st.x", xp, diff);
  b.iadd("yp.out", yp);
  b.iadd("xp.out", xp);
  return b.build();
}

Ddg lin_dgefa_pivot(const MachineModel& m) {
  // dgefa column step: t = -1/a[k][k]; a[i][k] *= t — a reciprocal feeding
  // a scaled update, with the pivot value long-lived.
  KernelBuilder b(m, "lin-dgefa");
  const auto ap = b.live_in(kIntReg, "ap.in");
  const auto one = b.live_in(kFloatReg, "one.in");
  const auto piv = b.fload("ld.pivot", ap);
  const auto rcp = b.fdiv("recip", one, piv);
  for (int i = 0; i < 3; ++i) {
    const auto addr = b.iadd("addr.a" + std::to_string(i), ap);
    const auto la = b.fload("ld.a" + std::to_string(i), addr);
    const auto sc = b.fmul("scale" + std::to_string(i), la, rcp);
    b.store("st.a" + std::to_string(i), addr, sc);
  }
  b.iadd("ap.out", ap);
  return b.build();
}

Ddg fft_butterfly(const MachineModel& m) {
  // Radix-2 decimation-in-time butterfly:
  //   tr = wr*xr - wi*xi ; ti = wr*xi + wi*xr
  //   yr0 = ar + tr ; yi0 = ai + ti ; yr1 = ar - tr ; yi1 = ai - ti
  KernelBuilder b(m, "fft-bfly");
  const auto wr = b.live_in(kFloatReg, "wr.in");
  const auto wi = b.live_in(kFloatReg, "wi.in");
  const auto xp = b.live_in(kIntReg, "xp.in");
  const auto ap = b.live_in(kIntReg, "ap.in");
  const auto xr = b.fload("ld.xr", xp);
  const auto xi = b.fload("ld.xi", xp);
  const auto ar = b.fload("ld.ar", ap);
  const auto ai = b.fload("ld.ai", ap);
  const auto m1 = b.fmul("mul.wrxr", wr, xr);
  const auto m2 = b.fmul("mul.wixi", wi, xi);
  const auto m3 = b.fmul("mul.wrxi", wr, xi);
  const auto m4 = b.fmul("mul.wixr", wi, xr);
  const auto tr = b.fadd("sub.tr", m1, m2);
  const auto ti = b.fadd("add.ti", m3, m4);
  const auto yr0 = b.fadd("add.yr0", ar, tr);
  const auto yi0 = b.fadd("add.yi0", ai, ti);
  const auto yr1 = b.fadd("sub.yr1", ar, tr);
  const auto yi1 = b.fadd("sub.yi1", ai, ti);
  b.store("st.yr0", xp, yr0);
  b.store("st.yi0", xp, yi0);
  b.store("st.yr1", ap, yr1);
  b.store("st.yi1", ap, yi1);
  return b.build();
}

Ddg stencil3_unroll2(const MachineModel& m) {
  // y[i] = c0*x[i-1] + c1*x[i] + c2*x[i+1], unrolled twice with shared
  // loads between the two iterations.
  KernelBuilder b(m, "stencil3-u2");
  const auto xp = b.live_in(kIntReg, "xp.in");
  const auto yp = b.live_in(kIntReg, "yp.in");
  const auto c0 = b.live_in(kFloatReg, "c0.in");
  const auto c1 = b.live_in(kFloatReg, "c1.in");
  const auto c2 = b.live_in(kFloatReg, "c2.in");
  std::vector<NodeId> x;
  for (int k = 0; k < 4; ++k) {
    const auto addr = k == 0 ? xp : b.iadd("addr.x" + std::to_string(k), xp);
    x.push_back(b.fload("ld.x" + std::to_string(k), addr));
  }
  for (int u = 0; u < 2; ++u) {
    const std::string s = std::to_string(u);
    const auto p0 = b.fmul("mul.c0." + s, c0, x[u]);
    const auto p1 = b.fmul("mul.c1." + s, c1, x[u + 1]);
    const auto p2 = b.fmul("mul.c2." + s, c2, x[u + 2]);
    const auto s1 = b.fadd("add.1." + s, p0, p1);
    const auto s2 = b.fadd("add.2." + s, s1, p2);
    const auto ya = u == 0 ? yp : b.iadd("addr.y" + s, yp);
    b.store("st.y" + s, ya, s2);
  }
  b.iadd("xp.out", xp);
  b.iadd("yp.out", yp);
  return b.build();
}

namespace {

using KernelFn = Ddg (*)(const MachineModel&);

struct KernelEntry {
  const char* name;
  KernelFn fn;
};

constexpr KernelEntry kKernels[] = {
    {"lin-ddot", lin_ddot},
    {"lin-daxpy", lin_daxpy},
    {"lin-dscal", lin_dscal},
    {"liv-loop1", liv_loop1},
    {"liv-loop5", liv_loop5},
    {"liv-loop7", liv_loop7},
    {"liv-loop23", liv_loop23},
    {"whet-p3", whet_p3},
    {"whet-p8", whet_p8},
    {"spec-spice", spec_spice_band},
    {"spec-tomcatv", spec_tomcatv_stencil},
    {"spec-dod", spec_dod_fma},
    {"matmul-u4", matmul_unroll4},
    {"fir8", fir8},
    {"horner8", horner8},
    {"estrin8", estrin8},
    {"complex-mul2", complex_mul2},
    {"liv-loop2", liv_loop2},
    {"liv-loop4", liv_loop4},
    {"liv-loop9", liv_loop9},
    {"liv-loop11", liv_loop11},
    {"liv-loop12", liv_loop12},
    {"lin-dgefa", lin_dgefa_pivot},
    {"fft-bfly", fft_butterfly},
    {"stencil3-u2", stencil3_unroll2},
};

}  // namespace

std::vector<NamedDdg> kernel_corpus(const MachineModel& model) {
  std::vector<NamedDdg> out;
  out.reserve(std::size(kKernels));
  for (const KernelEntry& k : kKernels) {
    out.push_back(NamedDdg{k.name, k.fn(model)});
  }
  return out;
}

std::vector<std::string> kernel_names() {
  std::vector<std::string> names;
  for (const KernelEntry& k : kKernels) names.emplace_back(k.name);
  return names;
}

Ddg build_kernel(const std::string& name, const MachineModel& model) {
  for (const KernelEntry& k : kKernels) {
    if (name == k.name) return k.fn(model);
  }
  RS_REQUIRE(false, "unknown kernel: " + name);
  return Ddg{};  // unreachable
}

}  // namespace rs::ddg
