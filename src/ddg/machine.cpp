#include "ddg/machine.hpp"

#include "support/assert.hpp"

namespace rs::ddg {

MachineModel::MachineModel(std::string name, bool visible_offsets)
    : name_(std::move(name)), visible_offsets_(visible_offsets) {
  // Baseline latencies for a generic high-performance core; individual
  // models tweak below. Values chosen inside the ranges common to the
  // era's targets (Alpha 21264 / Itanium): what matters for RS behaviour
  // is the *ratios* (loads and FP ops several times an int ALU op).
  set_latency(OpClass::IntAlu, 1);
  set_latency(OpClass::Load, 3);
  set_latency(OpClass::Store, 1);
  set_latency(OpClass::FpAdd, 3);
  set_latency(OpClass::FpMul, 4);
  set_latency(OpClass::FpDiv, 17);
  set_latency(OpClass::FpLong, 25);
  set_latency(OpClass::Branchy, 1);
  set_latency(OpClass::Nop, 0);
}

void MachineModel::set_latency(OpClass c, Latency lat) {
  RS_REQUIRE(lat >= 0, "negative latency");
  latency_[idx(c)] = lat;
  dr_[idx(c)] = 0;
  dw_[idx(c)] = lat > 0 ? lat - 1 : 0;
}

Operation MachineModel::make_op(OpClass c, std::string name) const {
  Operation op;
  op.name = std::move(name);
  op.cls = c;
  op.latency = latency(c);
  op.delta_r = read_offset(c);
  op.delta_w = write_offset(c);
  return op;
}

MachineModel superscalar_model() { return MachineModel("superscalar", false); }

MachineModel vliw_model() { return MachineModel("vliw", true); }

}  // namespace rs::ddg
