// Plain-text DDG serialization, so corpora can be saved, diffed and loaded
// by downstream users without recompiling. Format (one item per line):
//
//   ddg <name> types=<k> [bottom=<op-name>]
//   op <name> class=<cls> lat=<n> dr=<n> dw=<n> [writes=<t>[,<t>...]]
//   flow <src-op-name> <dst-op-name> type=<t> lat=<n>
//   serial <src-op-name> <dst-op-name> lat=<n>
//
// '#' starts a comment; blank lines are ignored. `bottom=` records the ⊥ of
// a normalized DDG so round-tripping keeps normalized() a no-op (the marker
// may name an op declared later in the file; it is resolved at end of parse).
#pragma once

#include <string>

#include "ddg/ddg.hpp"

namespace rs::ddg {

/// Serializes a DDG to the text format above.
std::string to_text(const Ddg& ddg);

/// Parses the text format. Throws rs::support::PreconditionError with a
/// line-numbered message on malformed input.
Ddg from_text(const std::string& text);

}  // namespace rs::ddg
