#include "ddg/canon.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "support/hash.hpp"

namespace rs::ddg {

namespace {

using support::hash_combine;

std::uint64_t combine(std::uint64_t h, std::uint64_t v) {
  return hash_combine(h, v);
}

// One 64-bit label per op and hash stream; streams differ only in seed.
using Labels = std::vector<std::array<std::uint64_t, 2>>;

constexpr std::uint64_t kSeed[2] = {0x5275536174243031ULL,
                                    0x6464674672707232ULL};
constexpr std::uint64_t kInTag = 0x1d;
constexpr std::uint64_t kOutTag = 0x2e;

Labels initial_labels(const Ddg& ddg) {
  Labels labels(ddg.op_count());
  for (NodeId v = 0; v < ddg.op_count(); ++v) {
    const Operation& o = ddg.op(v);
    std::vector<RegType> writes = o.writes;
    std::sort(writes.begin(), writes.end());
    for (int s = 0; s < 2; ++s) {
      std::uint64_t h = kSeed[s];
      h = combine(h, static_cast<std::uint64_t>(o.cls));
      h = combine(h, static_cast<std::uint64_t>(o.latency));
      h = combine(h, static_cast<std::uint64_t>(o.delta_r));
      h = combine(h, static_cast<std::uint64_t>(o.delta_w));
      for (const RegType t : writes) {
        h = combine(h, static_cast<std::uint64_t>(t) + 1);
      }
      labels[v][s] = h;
    }
  }
  return labels;
}

std::uint64_t edge_signature(const Ddg& ddg, graph::EdgeId e,
                             std::uint64_t neighbor_label) {
  const graph::Edge& ed = ddg.graph().edge(e);
  const EdgeAttr& a = ddg.edge_attr(e);
  std::uint64_t h = combine(static_cast<std::uint64_t>(a.kind) + 1,
                            static_cast<std::uint64_t>(a.type) + 2);
  h = combine(h, static_cast<std::uint64_t>(ed.latency));
  return combine(h, neighbor_label);
}

// Folds the sorted multiset of signatures into h (sorting makes the fold
// independent of edge insertion order).
std::uint64_t fold_sorted(std::uint64_t h, std::vector<std::uint64_t>& sigs,
                          std::uint64_t tag) {
  std::sort(sigs.begin(), sigs.end());
  h = combine(h, tag);
  for (const std::uint64_t s : sigs) h = combine(h, s);
  return h;
}

}  // namespace

std::string Fingerprint::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = digits[(hi >> (4 * i)) & 0xf];
    out[31 - i] = digits[(lo >> (4 * i)) & 0xf];
  }
  return out;
}

Fingerprint fingerprint(const Ddg& ddg) {
  const int n = ddg.op_count();
  const graph::Digraph& g = ddg.graph();
  Labels labels = initial_labels(ddg);
  Labels next(labels.size());

  // Refine until the label partition stabilizes (WL refinement only ever
  // splits classes, so a round that fails to increase the distinct-label
  // count has converged), with a cap as a safety net. Convergence is
  // order-independent, so equal graphs always stop after the same round.
  const int max_rounds = std::min(n, 32);
  std::size_t distinct = 0;
  std::vector<std::uint64_t> sigs;
  std::vector<std::uint64_t> classes(n);
  for (int r = 0; r < max_rounds; ++r) {
    for (NodeId v = 0; v < n; ++v) {
      for (int s = 0; s < 2; ++s) {
        std::uint64_t h = labels[v][s];
        sigs.clear();
        for (const graph::EdgeId e : g.in_edges(v)) {
          sigs.push_back(edge_signature(ddg, e, labels[g.edge(e).src][s]));
        }
        h = fold_sorted(h, sigs, kInTag);
        sigs.clear();
        for (const graph::EdgeId e : g.out_edges(v)) {
          sigs.push_back(edge_signature(ddg, e, labels[g.edge(e).dst][s]));
        }
        h = fold_sorted(h, sigs, kOutTag);
        next[v][s] = h;
      }
    }
    labels.swap(next);
    for (NodeId v = 0; v < n; ++v) classes[v] = labels[v][0];
    std::sort(classes.begin(), classes.end());
    const std::size_t now =
        std::unique(classes.begin(), classes.end()) - classes.begin();
    if (now == distinct) break;
    distinct = now;
  }

  Fingerprint fp;
  std::uint64_t* out[2] = {&fp.hi, &fp.lo};
  std::vector<std::uint64_t> finals(n);
  for (int s = 0; s < 2; ++s) {
    for (NodeId v = 0; v < n; ++v) finals[v] = labels[v][s];
    std::uint64_t h = combine(kSeed[s], static_cast<std::uint64_t>(n));
    h = combine(h, static_cast<std::uint64_t>(g.edge_count()));
    h = combine(h, static_cast<std::uint64_t>(ddg.type_count()));
    *out[s] = fold_sorted(h, finals, 0x3f);
  }
  return fp;
}

Fingerprint extend(const Fingerprint& fp, std::uint64_t salt) {
  Fingerprint out;
  out.hi = combine(fp.hi, combine(kSeed[0], salt));
  out.lo = combine(fp.lo, combine(kSeed[1], salt));
  return out;
}

}  // namespace rs::ddg
