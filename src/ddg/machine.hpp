// Machine models: per-class latencies and architecturally visible
// read/write offsets (section 2). Two presets bracket the paper's targets:
//  * superscalar: delta_r = delta_w = 0 (sequential register semantics);
//  * VLIW/EPIC: operands read at issue (delta_r = 0), results written at the
//    end of the pipeline (delta_w = latency - 1), both visible to the
//    compiler.
#pragma once

#include <array>
#include <string>

#include "ddg/ddg.hpp"

namespace rs::ddg {

inline constexpr RegType kIntReg = 0;
inline constexpr RegType kFloatReg = 1;
inline constexpr int kRegTypeCount = 2;

class MachineModel {
 public:
  MachineModel(std::string name, bool visible_offsets);

  const std::string& name() const { return name_; }
  /// True for VLIW/EPIC-style targets whose delta_w may exceed zero; these
  /// require the non-positive-circuit guard during RS reduction (section 4).
  bool visible_offsets() const { return visible_offsets_; }

  Latency latency(OpClass c) const { return latency_[idx(c)]; }
  Latency read_offset(OpClass c) const { return visible_offsets_ ? dr_[idx(c)] : 0; }
  Latency write_offset(OpClass c) const {
    return visible_offsets_ ? dw_[idx(c)] : 0;
  }

  void set_latency(OpClass c, Latency lat);

  /// Fills an Operation's timing attributes from this model.
  Operation make_op(OpClass c, std::string name) const;

 private:
  static constexpr int kClasses = 9;
  static int idx(OpClass c) { return static_cast<int>(c); }

  std::string name_;
  bool visible_offsets_;
  std::array<Latency, kClasses> latency_{};
  std::array<Latency, kClasses> dr_{};
  std::array<Latency, kClasses> dw_{};
};

/// In-order/out-of-order superscalar: zero offsets, classic latencies.
MachineModel superscalar_model();

/// VLIW/EPIC with visible pipeline: delta_w = latency - 1, delta_r = 0.
MachineModel vliw_model();

}  // namespace rs::ddg
