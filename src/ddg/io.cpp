#include "ddg/io.hpp"

#include <map>
#include <sstream>
#include <vector>

#include "support/assert.hpp"

namespace rs::ddg {

namespace {

OpClass class_from_name(const std::string& s, int line) {
  for (int c = 0; c <= static_cast<int>(OpClass::Nop); ++c) {
    if (s == op_class_name(static_cast<OpClass>(c))) {
      return static_cast<OpClass>(c);
    }
  }
  RS_REQUIRE(false, "line " + std::to_string(line) + ": unknown op class " + s);
  return OpClass::Nop;
}

/// Splits "key=value" tokens; returns value for key or throws.
std::string field(const std::vector<std::string>& tokens,
                  const std::string& key, int line) {
  for (const std::string& t : tokens) {
    if (t.rfind(key + "=", 0) == 0) return t.substr(key.size() + 1);
  }
  RS_REQUIRE(false, "line " + std::to_string(line) + ": missing " + key + "=");
  return {};
}

bool has_field(const std::vector<std::string>& tokens, const std::string& key) {
  for (const std::string& t : tokens) {
    if (t.rfind(key + "=", 0) == 0) return true;
  }
  return false;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> tokens;
  std::string t;
  while (is >> t) tokens.push_back(t);
  return tokens;
}

}  // namespace

std::string to_text(const Ddg& ddg) {
  std::ostringstream os;
  os << "ddg " << ddg.name() << " types=" << ddg.type_count() << '\n';
  for (NodeId v = 0; v < ddg.op_count(); ++v) {
    const Operation& o = ddg.op(v);
    os << "op " << o.name << " class=" << op_class_name(o.cls)
       << " lat=" << o.latency << " dr=" << o.delta_r << " dw=" << o.delta_w;
    if (!o.writes.empty()) {
      os << " writes=";
      for (std::size_t i = 0; i < o.writes.size(); ++i) {
        os << (i ? "," : "") << o.writes[i];
      }
    }
    os << '\n';
  }
  const graph::Digraph& g = ddg.graph();
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    const graph::Edge& ed = g.edge(e);
    const EdgeAttr& a = ddg.edge_attr(e);
    if (a.kind == EdgeKind::Flow) {
      os << "flow " << ddg.op(ed.src).name << ' ' << ddg.op(ed.dst).name
         << " type=" << a.type << " lat=" << ed.latency << '\n';
    } else {
      os << "serial " << ddg.op(ed.src).name << ' ' << ddg.op(ed.dst).name
         << " lat=" << ed.latency << '\n';
    }
  }
  return os.str();
}

Ddg from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  std::optional<Ddg> ddg;
  std::map<std::string, NodeId> by_name;

  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& kind = tokens[0];

    if (kind == "ddg") {
      RS_REQUIRE(tokens.size() >= 3, "line " + std::to_string(lineno) +
                                         ": expected 'ddg <name> types=<k>'");
      ddg.emplace(std::stoi(field(tokens, "types", lineno)), tokens[1]);
      continue;
    }
    RS_REQUIRE(ddg.has_value(),
               "line " + std::to_string(lineno) + ": 'ddg' header missing");

    if (kind == "op") {
      RS_REQUIRE(tokens.size() >= 2,
                 "line " + std::to_string(lineno) + ": op needs a name");
      const std::string& name = tokens[1];
      RS_REQUIRE(!by_name.count(name),
                 "line " + std::to_string(lineno) + ": duplicate op " + name);
      Operation op;
      op.name = name;
      op.cls = class_from_name(field(tokens, "class", lineno), lineno);
      op.latency = std::stoll(field(tokens, "lat", lineno));
      op.delta_r = std::stoll(field(tokens, "dr", lineno));
      op.delta_w = std::stoll(field(tokens, "dw", lineno));
      const NodeId v = ddg->add_op(std::move(op));
      if (has_field(tokens, "writes")) {
        std::istringstream ws(field(tokens, "writes", lineno));
        std::string t;
        while (std::getline(ws, t, ',')) {
          ddg->mark_writes(v, std::stoi(t));
        }
      }
      by_name[name] = v;
    } else if (kind == "flow" || kind == "serial") {
      RS_REQUIRE(tokens.size() >= 3, "line " + std::to_string(lineno) +
                                         ": arc needs source and target");
      const auto src = by_name.find(tokens[1]);
      const auto dst = by_name.find(tokens[2]);
      RS_REQUIRE(src != by_name.end() && dst != by_name.end(),
                 "line " + std::to_string(lineno) + ": unknown op in arc");
      const Latency lat = std::stoll(field(tokens, "lat", lineno));
      if (kind == "flow") {
        ddg->add_flow(src->second, dst->second,
                      std::stoi(field(tokens, "type", lineno)), lat);
      } else {
        ddg->add_serial(src->second, dst->second, lat);
      }
    } else {
      RS_REQUIRE(false, "line " + std::to_string(lineno) +
                            ": unknown directive " + kind);
    }
  }
  RS_REQUIRE(ddg.has_value(), "empty DDG text");
  ddg->validate();
  return *ddg;
}

}  // namespace rs::ddg
