#include "ddg/io.hpp"

#include <map>
#include <sstream>
#include <vector>

#include "support/assert.hpp"
#include "support/parse.hpp"

namespace rs::ddg {

namespace {

OpClass class_from_name(const std::string& s, int line) {
  for (int c = 0; c <= static_cast<int>(OpClass::Nop); ++c) {
    if (s == op_class_name(static_cast<OpClass>(c))) {
      return static_cast<OpClass>(c);
    }
  }
  RS_REQUIRE(false, "line " + std::to_string(line) + ": unknown op class " + s);
  return OpClass::Nop;
}

/// Splits "key=value" tokens (support::token_field); returns value for key
/// or throws with the line number.
std::string field(const std::vector<std::string>& tokens,
                  const std::string& key, int line) {
  const auto value = support::token_field(tokens, key);
  RS_REQUIRE(value.has_value(),
             "line " + std::to_string(line) + ": missing " + key + "=");
  return *value;
}

bool has_field(const std::vector<std::string>& tokens, const std::string& key) {
  return support::token_field(tokens, key).has_value();
}

std::string where(int line, const std::string& key) {
  return "line " + std::to_string(line) + ": " + key;
}

}  // namespace

std::string to_text(const Ddg& ddg) {
  std::ostringstream os;
  os << "ddg " << ddg.name() << " types=" << ddg.type_count();
  if (ddg.bottom().has_value()) {
    os << " bottom=" << ddg.op(*ddg.bottom()).name;
  }
  os << '\n';
  for (NodeId v = 0; v < ddg.op_count(); ++v) {
    const Operation& o = ddg.op(v);
    os << "op " << o.name << " class=" << op_class_name(o.cls)
       << " lat=" << o.latency << " dr=" << o.delta_r << " dw=" << o.delta_w;
    if (!o.writes.empty()) {
      os << " writes=";
      for (std::size_t i = 0; i < o.writes.size(); ++i) {
        os << (i ? "," : "") << o.writes[i];
      }
    }
    os << '\n';
  }
  const graph::Digraph& g = ddg.graph();
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    const graph::Edge& ed = g.edge(e);
    const EdgeAttr& a = ddg.edge_attr(e);
    if (a.kind == EdgeKind::Flow) {
      os << "flow " << ddg.op(ed.src).name << ' ' << ddg.op(ed.dst).name
         << " type=" << a.type << " lat=" << ed.latency << '\n';
    } else {
      os << "serial " << ddg.op(ed.src).name << ' ' << ddg.op(ed.dst).name
         << " lat=" << ed.latency << '\n';
    }
  }
  return os.str();
}

Ddg from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  std::optional<Ddg> ddg;
  std::map<std::string, NodeId> by_name;
  std::string bottom_name;
  int bottom_line = 0;

  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const std::vector<std::string> tokens = support::split_ws(line);
    if (tokens.empty()) continue;
    const std::string& kind = tokens[0];

    if (kind == "ddg") {
      RS_REQUIRE(tokens.size() >= 3, "line " + std::to_string(lineno) +
                                         ": expected 'ddg <name> types=<k>'");
      ddg.emplace(support::parse_int(field(tokens, "types", lineno),
                                     where(lineno, "types")),
                  tokens[1]);
      if (has_field(tokens, "bottom")) {
        bottom_name = field(tokens, "bottom", lineno);
        bottom_line = lineno;
      }
      continue;
    }
    RS_REQUIRE(ddg.has_value(),
               "line " + std::to_string(lineno) + ": 'ddg' header missing");

    if (kind == "op") {
      RS_REQUIRE(tokens.size() >= 2,
                 "line " + std::to_string(lineno) + ": op needs a name");
      const std::string& name = tokens[1];
      RS_REQUIRE(!by_name.count(name),
                 "line " + std::to_string(lineno) + ": duplicate op " + name);
      Operation op;
      op.name = name;
      op.cls = class_from_name(field(tokens, "class", lineno), lineno);
      op.latency = support::parse_ll(field(tokens, "lat", lineno),
                                     where(lineno, "lat"));
      op.delta_r = support::parse_ll(field(tokens, "dr", lineno),
                                     where(lineno, "dr"));
      op.delta_w = support::parse_ll(field(tokens, "dw", lineno),
                                     where(lineno, "dw"));
      const NodeId v = ddg->add_op(std::move(op));
      if (has_field(tokens, "writes")) {
        for (const int t : support::parse_int_list(
                 field(tokens, "writes", lineno), ',', where(lineno, "writes"))) {
          ddg->mark_writes(v, t);
        }
      }
      by_name[name] = v;
    } else if (kind == "flow" || kind == "serial") {
      RS_REQUIRE(tokens.size() >= 3, "line " + std::to_string(lineno) +
                                         ": arc needs source and target");
      const auto src = by_name.find(tokens[1]);
      const auto dst = by_name.find(tokens[2]);
      RS_REQUIRE(src != by_name.end() && dst != by_name.end(),
                 "line " + std::to_string(lineno) + ": unknown op in arc");
      const Latency lat = support::parse_ll(field(tokens, "lat", lineno),
                                            where(lineno, "lat"));
      if (kind == "flow") {
        ddg->add_flow(src->second, dst->second,
                      support::parse_int(field(tokens, "type", lineno),
                                         where(lineno, "type")),
                      lat);
      } else {
        ddg->add_serial(src->second, dst->second, lat);
      }
    } else {
      RS_REQUIRE(false, "line " + std::to_string(lineno) +
                            ": unknown directive " + kind);
    }
  }
  RS_REQUIRE(ddg.has_value(), "empty DDG text");
  if (!bottom_name.empty()) {
    const auto it = by_name.find(bottom_name);
    RS_REQUIRE(it != by_name.end(),
               where(bottom_line, "bottom") + " names unknown op " + bottom_name);
    ddg->set_bottom(it->second);
  }
  ddg->validate();
  return *ddg;
}

}  // namespace rs::ddg
