// Synthetic DDG generators for property tests and scaling benches.
// All generators are deterministic in the supplied Rng.
#pragma once

#include "ddg/ddg.hpp"
#include "ddg/machine.hpp"
#include "support/random.hpp"

namespace rs::ddg {

struct RandomDagParams {
  int n_ops = 12;
  /// Probability of an arc between each forward-ordered op pair.
  double edge_prob = 0.25;
  /// Fraction of ops that define a float value (the rest are stores/flow
  /// sinks or int address arithmetic).
  double value_prob = 0.75;
  /// Probability that a forward arc from a value-writing op is a flow arc
  /// (consumption) rather than a plain serial dependence.
  double flow_prob = 0.85;
};

/// Erdos-Renyi-style DAG over a random topological order. Guarantees
/// weak connectivity by chaining otherwise-isolated ops with serial arcs.
/// Result is normalized (has ⊥).
Ddg random_dag(support::Rng& rng, const MachineModel& model,
               const RandomDagParams& params);

struct LayeredDagParams {
  int layers = 4;
  int min_width = 2;
  int max_width = 4;
  /// Probability of a flow arc from each node of layer i to each of i+1.
  double edge_prob = 0.5;
};

/// Layered DAG (values flow between adjacent layers), the classic shape of
/// unrolled arithmetic pipelines. Result is normalized.
Ddg random_layered(support::Rng& rng, const MachineModel& model,
                   const LayeredDagParams& params);

/// Random binary expression tree with `leaves` leaf loads reduced by
/// FpAdd/FpMul ops. Result is normalized.
Ddg random_expression_tree(support::Rng& rng, const MachineModel& model,
                           int leaves);

}  // namespace rs::ddg
