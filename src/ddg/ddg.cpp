#include "ddg/ddg.hpp"

#include <algorithm>
#include <sstream>

#include "graph/topo.hpp"
#include "support/assert.hpp"

namespace rs::ddg {

const char* op_class_name(OpClass c) {
  switch (c) {
    case OpClass::IntAlu: return "ialu";
    case OpClass::Load: return "load";
    case OpClass::Store: return "store";
    case OpClass::FpAdd: return "fadd";
    case OpClass::FpMul: return "fmul";
    case OpClass::FpDiv: return "fdiv";
    case OpClass::FpLong: return "flong";
    case OpClass::Branchy: return "br";
    case OpClass::Nop: return "nop";
  }
  return "?";
}

bool Operation::writes_type(RegType t) const {
  return std::find(writes.begin(), writes.end(), t) != writes.end();
}

Ddg::Ddg(int reg_type_count, std::string name)
    : name_(std::move(name)), type_count_(reg_type_count) {
  RS_REQUIRE(reg_type_count >= 1, "need at least one register type");
}

NodeId Ddg::add_op(Operation op) {
  for (const RegType t : op.writes) {
    RS_REQUIRE(t >= 0 && t < type_count_, "op writes unknown register type");
  }
  RS_REQUIRE(op.latency >= 0 && op.delta_r >= 0 && op.delta_w >= 0,
             "negative operation timing attribute");
  ops_.push_back(std::move(op));
  const NodeId v = graph_.add_node();
  RS_CHECK(v == op_count() - 1);
  return v;
}

void Ddg::mark_writes(NodeId u, RegType t) {
  RS_REQUIRE(t >= 0 && t < type_count_, "unknown register type");
  RS_REQUIRE(!ops_[u].writes_type(t),
             "operation already writes this type (one value per type)");
  ops_[u].writes.push_back(t);
}

graph::EdgeId Ddg::add_flow(NodeId src, NodeId dst, RegType t, Latency latency) {
  RS_REQUIRE(t >= 0 && t < type_count_, "unknown register type");
  RS_REQUIRE(ops_[src].writes_type(t),
             "flow arc from an operation that does not write this type");
  const graph::EdgeId e = graph_.add_edge(src, dst, latency);
  attrs_.push_back(EdgeAttr{EdgeKind::Flow, t});
  return e;
}

graph::EdgeId Ddg::add_serial(NodeId src, NodeId dst, Latency latency) {
  const graph::EdgeId e = graph_.add_edge(src, dst, latency);
  attrs_.push_back(EdgeAttr{EdgeKind::Serial, -1});
  return e;
}

std::vector<NodeId> Ddg::values_of_type(RegType t) const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < op_count(); ++v) {
    if (ops_[v].writes_type(t)) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> Ddg::consumers(NodeId u, RegType t) const {
  std::vector<NodeId> out;
  for (const graph::EdgeId e : graph_.out_edges(u)) {
    if (attrs_[e].kind == EdgeKind::Flow && attrs_[e].type == t) {
      out.push_back(graph_.edge(e).dst);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void Ddg::set_bottom(NodeId b) {
  RS_REQUIRE(b >= 0 && b < op_count(), "bottom marker names an unknown op");
  // Marking ⊥ makes normalized() a no-op, so insist the graph really has
  // the normalized shape: ⊥ is a sink and every other op has a direct arc
  // into it (exactly what normalized() constructs). Otherwise a stray
  // bottom= marker would silently disable normalization.
  RS_REQUIRE(graph_.out_edges(b).empty(), "bottom op has outgoing arcs");
  for (NodeId v = 0; v < op_count(); ++v) {
    RS_REQUIRE(v == b || graph_.has_edge(v, b),
               "op " + ops_[v].name + " has no arc into the bottom marker");
  }
  bottom_ = b;
}

Ddg Ddg::normalized() const {
  if (bottom_.has_value()) return *this;
  Ddg result = *this;
  Operation bot;
  bot.name = "_bot";
  bot.cls = OpClass::Nop;
  bot.latency = 0;
  const NodeId b = result.add_op(bot);
  result.bottom_ = b;
  // Exit values flow into ⊥ so Cons is never empty. The arc latency is the
  // source operation's latency (section 2), raised where needed so ⊥'s
  // read still lands strictly after the write (zero-latency live-ins).
  std::vector<bool> has_flow_to_bottom(result.op_count(), false);
  for (RegType t = 0; t < type_count_; ++t) {
    for (const NodeId u : values_of_type(t)) {
      if (consumers(u, t).empty()) {
        result.add_flow(u, b, t,
                        std::max<Latency>(ops_[u].latency, ops_[u].delta_w + 1));
        has_flow_to_bottom[u] = true;
      }
    }
  }
  // Serial arc from every other node, latency = source operation latency
  // (section 2). Skipped where a flow arc already orders the pair.
  for (NodeId v = 0; v < op_count(); ++v) {
    if (!has_flow_to_bottom[v]) result.add_serial(v, b, ops_[v].latency);
  }
  return result;
}

void Ddg::validate() const {
  RS_REQUIRE(graph::is_dag(graph_), "DDG must be acyclic");
  for (graph::EdgeId e = 0; e < graph_.edge_count(); ++e) {
    const EdgeAttr& a = attrs_[e];
    if (a.kind != EdgeKind::Flow) continue;
    const graph::Edge& ed = graph_.edge(e);
    RS_REQUIRE(ops_[ed.src].writes_type(a.type), "flow arc without a defined value");
    // Strict availability (section 2: a value written at cycle c is
    // readable from c+1): the consumer's read must land strictly after the
    // write, delta(e) + delta_r(dst) >= delta_w(src) + 1. Equality would
    // hand the consumer the register's *previous* content.
    RS_REQUIRE(ed.latency + ops_[ed.dst].delta_r >= ops_[ed.src].delta_w + 1,
               "flow latency lets a read see a stale register: " +
                   ops_[ed.src].name + " -> " + ops_[ed.dst].name);
  }
}

std::string Ddg::to_dot() const {
  std::ostringstream os;
  os << "digraph \"" << name_ << "\" {\n";
  for (NodeId v = 0; v < op_count(); ++v) {
    const Operation& o = ops_[v];
    os << "  n" << v << " [label=\"" << o.name;
    if (!o.writes.empty()) {
      os << "\\nw:";
      for (const RegType t : o.writes) os << ' ' << t;
    }
    os << "\"";
    if (!o.writes.empty()) os << ", style=bold";
    os << "];\n";
  }
  for (graph::EdgeId e = 0; e < graph_.edge_count(); ++e) {
    const graph::Edge& ed = graph_.edge(e);
    os << "  n" << ed.src << " -> n" << ed.dst << " [label=\"" << ed.latency
       << "\"";
    if (attrs_[e].kind == EdgeKind::Flow) os << ", style=bold";
    else os << ", style=dashed";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

ValueSet::ValueSet(const Ddg& ddg, RegType t)
    : type(t), nodes(ddg.values_of_type(t)), index_of(ddg.op_count(), -1) {
  for (int i = 0; i < count(); ++i) index_of[nodes[i]] = i;
}

}  // namespace rs::ddg
