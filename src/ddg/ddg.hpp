// Data dependence graph (DDG) model from section 2 of the paper.
//
// G = (V, E, delta): operations, arcs with latencies. Register-relevant
// structure on top of the plain digraph:
//  * a set T of register types (int, float, ...);
//  * V_{R,t}: operations writing a value of type t (at most one per type);
//  * E_{R,t}: flow arcs through a value of type t; Cons(u^t) = readers;
//  * per-operation read/write delays delta_r / delta_w (visible pipeline
//    offsets on VLIW/EPIC; both zero on superscalar).
// A DDG can be *normalized*: a bottom node (the paper's ⊥) absorbs exit
// values through flow arcs and is forced last via serial arcs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace rs::ddg {

using graph::NodeId;
using Latency = std::int64_t;

/// Register type index (the paper's t in T). Dense from 0.
using RegType = int;

/// Broad operation classes; machine models map these to latencies/offsets.
enum class OpClass {
  IntAlu,
  Load,
  Store,
  FpAdd,
  FpMul,
  FpDiv,
  FpLong,   // sqrt/exp/trig-style long-latency ops
  Branchy,  // compare/select style
  Nop,      // structural (e.g. the bottom node)
};

/// Returns a printable name for an operation class.
const char* op_class_name(OpClass c);

struct Operation {
  std::string name;
  OpClass cls = OpClass::IntAlu;
  Latency latency = 1;  // generic def-use latency, used for ⊥ serial arcs
  Latency delta_r = 0;  // read offset from issue time
  Latency delta_w = 0;  // write offset from issue time
  /// Register types this operation defines a value of (at most one each).
  std::vector<RegType> writes;

  bool writes_type(RegType t) const;
};

enum class EdgeKind { Flow, Serial };

/// Register-aware attributes of one arc of the underlying digraph.
struct EdgeAttr {
  EdgeKind kind = EdgeKind::Serial;
  RegType type = -1;  // consumed type for Flow arcs, -1 for Serial
};

/// The DDG: a weighted digraph plus register structure.
class Ddg {
 public:
  explicit Ddg(int reg_type_count = 1, std::string name = "ddg");

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  int type_count() const { return type_count_; }
  int op_count() const { return static_cast<int>(ops_.size()); }

  NodeId add_op(Operation op);
  const Operation& op(NodeId v) const { return ops_[v]; }

  /// Declares that u writes a value of type t. At most one per (op, type) —
  /// the paper's model restriction (section 2, footnote 2).
  void mark_writes(NodeId u, RegType t);

  /// Flow dependence: dst consumes the type-t value of src.
  /// Requires src to write type t.
  graph::EdgeId add_flow(NodeId src, NodeId dst, RegType t, Latency latency);

  /// Serial (non-value) precedence arc.
  graph::EdgeId add_serial(NodeId src, NodeId dst, Latency latency);

  const graph::Digraph& graph() const { return graph_; }
  const EdgeAttr& edge_attr(graph::EdgeId e) const { return attrs_[e]; }

  /// Operations defining a value of type t, in ascending node order.
  /// This ordering defines the dense "value index" every core algorithm
  /// uses; see ValueSet.
  std::vector<NodeId> values_of_type(RegType t) const;

  /// Cons(u^t): consumers of u's type-t value, deduplicated, ascending.
  std::vector<NodeId> consumers(NodeId u, RegType t) const;

  /// Bottom node if this DDG has been normalized.
  std::optional<NodeId> bottom() const { return bottom_; }

  /// Marks an existing op as the ⊥ of an already-normalized DDG. Used by
  /// deserialization: the text format records the bottom marker so that a
  /// round-tripped normalized DDG stays normalized (normalized() is a no-op
  /// on it) instead of growing a second ⊥.
  void set_bottom(NodeId b);

  /// Returns a normalized copy: adds ⊥ absorbing exit values (flow arcs
  /// from unconsumed values) and serial arcs node->⊥ with the source
  /// operation's latency, exactly as in section 2. Idempotent.
  Ddg normalized() const;

  /// Structural sanity: underlying graph is a DAG; flow arcs reference
  /// declared values; every flow latency keeps lifetimes non-degenerate
  /// (delta(e) + delta_r(dst) >= delta_w(src)). Throws on violation.
  void validate() const;

  /// Graphviz dump (debugging / documentation).
  std::string to_dot() const;

 private:
  std::string name_;
  int type_count_;
  graph::Digraph graph_;
  std::vector<Operation> ops_;
  std::vector<EdgeAttr> attrs_;
  std::optional<NodeId> bottom_;
};

/// Dense indexing of the type-t values of a DDG.
struct ValueSet {
  ValueSet(const Ddg& ddg, RegType t);

  RegType type;
  std::vector<NodeId> nodes;    // value index -> defining op
  std::vector<int> index_of;    // op -> value index, -1 when not a value

  int count() const { return static_cast<int>(nodes.size()); }
};

}  // namespace rs::ddg
