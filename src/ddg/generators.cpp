#include "ddg/generators.hpp"

#include <string>
#include <vector>

#include "support/assert.hpp"

namespace rs::ddg {

namespace {

OpClass random_value_class(support::Rng& rng) {
  switch (rng.next_int(0, 4)) {
    case 0: return OpClass::Load;
    case 1: return OpClass::FpAdd;
    case 2: return OpClass::FpMul;
    case 3: return OpClass::IntAlu;
    default: return OpClass::FpAdd;
  }
}

}  // namespace

Ddg random_dag(support::Rng& rng, const MachineModel& model,
               const RandomDagParams& params) {
  RS_REQUIRE(params.n_ops >= 1, "need at least one op");
  Ddg ddg(kRegTypeCount, "random-dag");
  std::vector<NodeId> nodes;
  std::vector<bool> is_value;
  for (int i = 0; i < params.n_ops; ++i) {
    const bool value = rng.next_bool(params.value_prob);
    const OpClass cls = value ? random_value_class(rng) : OpClass::Store;
    const NodeId v = ddg.add_op(model.make_op(cls, "n" + std::to_string(i)));
    if (value) {
      ddg.mark_writes(v, cls == OpClass::IntAlu ? kIntReg : kFloatReg);
    }
    nodes.push_back(v);
    is_value.push_back(value);
  }
  std::vector<bool> connected(params.n_ops, false);
  for (int i = 0; i < params.n_ops; ++i) {
    for (int j = i + 1; j < params.n_ops; ++j) {
      if (!rng.next_bool(params.edge_prob)) continue;
      if (is_value[i] && rng.next_bool(params.flow_prob)) {
        const RegType t =
            ddg.op(nodes[i]).writes_type(kFloatReg) ? kFloatReg : kIntReg;
        ddg.add_flow(nodes[i], nodes[j], t, ddg.op(nodes[i]).latency);
      } else {
        ddg.add_serial(nodes[i], nodes[j],
                       rng.next_int(0, static_cast<int>(ddg.op(nodes[i]).latency)));
      }
      connected[i] = connected[j] = true;
    }
  }
  // Chain isolated ops so the DAG is weakly connected (keeps instances
  // from degenerating into independent singletons).
  NodeId prev = -1;
  for (int i = 0; i < params.n_ops; ++i) {
    if (connected[i]) {
      prev = nodes[i];
      continue;
    }
    if (prev >= 0) ddg.add_serial(prev, nodes[i], 0);
    prev = nodes[i];
  }
  ddg.validate();
  return ddg.normalized();
}

Ddg random_layered(support::Rng& rng, const MachineModel& model,
                   const LayeredDagParams& params) {
  RS_REQUIRE(params.layers >= 1 && params.min_width >= 1 &&
                 params.max_width >= params.min_width,
             "bad layered parameters");
  Ddg ddg(kRegTypeCount, "random-layered");
  std::vector<std::vector<NodeId>> layers;
  for (int l = 0; l < params.layers; ++l) {
    const int width = rng.next_int(params.min_width, params.max_width);
    std::vector<NodeId> layer;
    for (int i = 0; i < width; ++i) {
      const OpClass cls = l == 0 ? OpClass::Load
                                 : (rng.next_bool(0.5) ? OpClass::FpAdd
                                                       : OpClass::FpMul);
      const NodeId v = ddg.add_op(model.make_op(
          cls, "l" + std::to_string(l) + "n" + std::to_string(i)));
      ddg.mark_writes(v, kFloatReg);
      layer.push_back(v);
    }
    layers.push_back(std::move(layer));
  }
  for (int l = 0; l + 1 < params.layers; ++l) {
    for (const NodeId u : layers[l]) {
      bool any = false;
      for (const NodeId v : layers[l + 1]) {
        if (rng.next_bool(params.edge_prob)) {
          ddg.add_flow(u, v, kFloatReg, ddg.op(u).latency);
          any = true;
        }
      }
      if (!any) {  // keep every value consumed by the next layer
        const NodeId v =
            layers[l + 1][rng.next_below(layers[l + 1].size())];
        ddg.add_flow(u, v, kFloatReg, ddg.op(u).latency);
      }
    }
  }
  ddg.validate();
  return ddg.normalized();
}

Ddg random_expression_tree(support::Rng& rng, const MachineModel& model,
                           int leaves) {
  RS_REQUIRE(leaves >= 1, "need at least one leaf");
  Ddg ddg(kRegTypeCount, "random-tree");
  std::vector<NodeId> frontier;
  for (int i = 0; i < leaves; ++i) {
    const NodeId v =
        ddg.add_op(model.make_op(OpClass::Load, "leaf" + std::to_string(i)));
    ddg.mark_writes(v, kFloatReg);
    frontier.push_back(v);
  }
  int id = 0;
  while (frontier.size() > 1) {
    // Combine two random frontier nodes.
    const std::size_t i = rng.next_below(frontier.size());
    const NodeId a = frontier[i];
    frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(i));
    const std::size_t j = rng.next_below(frontier.size());
    const NodeId b = frontier[j];
    frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(j));
    const OpClass cls = rng.next_bool(0.5) ? OpClass::FpAdd : OpClass::FpMul;
    const NodeId v =
        ddg.add_op(model.make_op(cls, "t" + std::to_string(id++)));
    ddg.mark_writes(v, kFloatReg);
    ddg.add_flow(a, v, kFloatReg, ddg.op(a).latency);
    ddg.add_flow(b, v, kFloatReg, ddg.op(b).latency);
    frontier.push_back(v);
  }
  ddg.validate();
  return ddg.normalized();
}

}  // namespace rs::ddg
