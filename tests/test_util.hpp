// Shared helpers for the service test suites.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cfg/cfg.hpp"
#include "ddg/ddg.hpp"
#include "service/operation.hpp"

namespace rs::test {

/// Rebuilds `d` with ops inserted in the order given by `order` (a
/// permutation of old node ids) and arcs inserted in reverse, optionally
/// renaming every op. The result describes the same scheduling problem —
/// the isomorphic-input fixture of the fingerprint/cache tests.
inline ddg::Ddg permuted_copy(const ddg::Ddg& d,
                              const std::vector<graph::NodeId>& order,
                              bool rename) {
  ddg::Ddg out(d.type_count(), d.name());
  std::vector<graph::NodeId> new_id(d.op_count(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    ddg::Operation op = d.op(order[i]);
    if (rename) op.name = "perm" + std::to_string(i);
    new_id[order[i]] = out.add_op(std::move(op));
  }
  const graph::Digraph& g = d.graph();
  for (graph::EdgeId e = g.edge_count() - 1; e >= 0; --e) {
    const graph::Edge& ed = g.edge(e);
    const ddg::EdgeAttr& a = d.edge_attr(e);
    if (a.kind == ddg::EdgeKind::Flow) {
      out.add_flow(new_id[ed.src], new_id[ed.dst], a.type, ed.latency);
    } else {
      out.add_serial(new_id[ed.src], new_id[ed.dst], ed.latency);
    }
  }
  if (d.bottom().has_value()) out.set_bottom(new_id[*d.bottom()]);
  return out;
}

inline std::vector<graph::NodeId> reversed_order(const ddg::Ddg& d) {
  std::vector<graph::NodeId> order(d.op_count());
  for (int i = 0; i < d.op_count(); ++i) order[i] = d.op_count() - 1 - i;
  return order;
}

/// Rebuilds `in`'s program with blocks inserted in reverse order and every
/// block and value renamed — the CFG analogue of permuted_copy, the
/// isomorphic-input fixture of the program-fingerprint/cache tests.
inline cfg::Cfg permuted_program(const cfg::Cfg& in) {
  cfg::Program out(in.machine(), in.name() + "-perm");
  const int n = in.block_count();
  std::vector<int> new_id(n);
  for (int i = n - 1; i >= 0; --i) {
    new_id[i] = out.add_block("pb" + std::to_string(n - 1 - i));
  }
  std::map<std::string, std::string> rename;
  const auto renamed = [&rename](const std::string& v) {
    return rename.emplace(v, "pv" + std::to_string(rename.size()))
        .first->second;
  };
  for (int b = 0; b < n; ++b) {
    for (const cfg::Statement& st : in.block(b).statements) {
      std::vector<std::string> operands;
      for (const std::string& o : st.operands) operands.push_back(renamed(o));
      if (st.result.empty()) {
        out.use(new_id[b], st.cls, std::move(operands));
      } else {
        out.def(new_id[b], renamed(st.result), st.cls, st.type,
                std::move(operands));
      }
    }
    for (const int s : in.block(b).successors) {
      out.add_edge(new_id[b], new_id[s]);
    }
  }
  return out.build();
}

/// A valid protocol request line for any registered operation:
/// "<op> kernel=<k> <example_options>" for DDG operations, the `diamond`
/// program kernel for program operations. The fixture every
/// registry-contract sweep (test_ops, test_serve) iterates.
inline std::string request_line(const service::Operation& op,
                                const std::string& kernel = "lin-ddot") {
  std::string line{op.name()};
  if (op.payload_kind() == service::PayloadKind::Program) {
    line += " prog=diamond";
  } else {
    line += " kernel=" + kernel;
  }
  if (!op.example_options().empty()) {
    line += " ";
    line += op.example_options();
  }
  return line;
}

/// The display name request_line's payload resolves to (assertions on the
/// rendered name= field).
inline std::string request_line_name(const service::Operation& op,
                                     const std::string& kernel = "lin-ddot") {
  return op.payload_kind() == service::PayloadKind::Program ? "diamond"
                                                            : kernel;
}

/// A rendered result line with the delivery-only fields (cached=, ms=)
/// removed, order preserved — the byte-identity comparator of the
/// cold/warm/disk acceptance criteria. Mirrors the sed expression in
/// tests/ops_cli_golden.sh; extend both together.
inline std::string strip_delivery(const std::string& line) {
  std::string out;
  std::size_t i = 0;
  while (i < line.size()) {
    std::size_t j = line.find(' ', i);
    if (j == std::string::npos) j = line.size();
    const std::string tok = line.substr(i, j - i);
    if (tok.rfind("cached=", 0) != 0 && tok.rfind("ms=", 0) != 0) {
      if (!out.empty()) out += ' ';
      out += tok;
    }
    i = j + 1;
  }
  return out;
}

}  // namespace rs::test
