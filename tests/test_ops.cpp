// The operation-registry contract, asserted for *every* registered
// operation — present and future: protocol parse → run → render
// round-trips, payload encode → decode → encode byte-identity through the
// DiskStore, cache hits across renumbered isomorphic DDGs, and the
// acceptance bar that a brand-new operation (defined entirely inside this
// test) flows through protocol, engine, store and codec with no edits to
// any service layer.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "cfg/generators.hpp"
#include "cfg/io.hpp"
#include "ddg/canon.hpp"
#include "ddg/io.hpp"
#include "ddg/kernels.hpp"
#include "service/codec.hpp"
#include "service/engine.hpp"
#include "service/operation.hpp"
#include "service/ops/analyze.hpp"
#include "service/ops/minreg.hpp"
#include "service/ops/reduce.hpp"
#include "service/ops/schedule.hpp"
#include "service/ops/spill.hpp"
#include "service/protocol.hpp"
#include "service/store.hpp"
#include "support/assert.hpp"
#include "support/fs.hpp"

#include "test_util.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace rs {
namespace {

using service::AnalysisEngine;
using service::EngineConfig;
using service::Operation;
using service::Request;
using service::Response;
using service::ResultPayload;
using service::StoreTier;

std::string fresh_dir(const std::string& name) {
#if defined(__unix__) || defined(__APPLE__)
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  const auto p = std::filesystem::temp_directory_path() /
                 ("rs_ops_" + name + "_" + std::to_string(pid));
  std::filesystem::remove_all(p);
  std::filesystem::create_directories(p);
  return p.string();
}

// ---------------------------------------------------------------------------
// registry basics

TEST(OperationRegistry, BuiltinsAreRegisteredUniquely) {
  const auto& ops = service::operations();
  ASSERT_GE(ops.size(), 7u);
  for (const char* name : {"analyze", "reduce", "minreg", "spill",
                           "schedule", "globalrs", "globalreduce"}) {
    const Operation* op = service::find_operation(name);
    ASSERT_NE(op, nullptr) << name;
    EXPECT_EQ(op->name(), name);
  }
  // Grandfathered tags keep pre-registry cache keys addressable.
  EXPECT_EQ(service::find_operation("analyze")->digest_tag(), 0u);
  EXPECT_EQ(service::find_operation("reduce")->digest_tag(), 1u);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    for (std::size_t j = i + 1; j < ops.size(); ++j) {
      EXPECT_NE(ops[i]->name(), ops[j]->name());
      EXPECT_NE(ops[i]->digest_tag(), ops[j]->digest_tag());
    }
  }
  EXPECT_EQ(service::find_operation("frobnicate"), nullptr);
  EXPECT_NE(service::operation_names("|").find("minreg"), std::string::npos);
}

TEST(OperationRegistry, DuplicateRegistrationIsRejected) {
  EXPECT_THROW(
      service::register_operation(&service::analyze_operation()),
      support::PreconditionError);
}

// ---------------------------------------------------------------------------
// the registry contract, for every registered operation

TEST(OperationContract, ParseRunRenderRoundTripsForEveryOperation) {
  for (const Operation* op : service::operations()) {
    const std::string line = test::request_line(*op);
    AnalysisEngine engine{EngineConfig{}};
    const Response resp = engine.run(service::parse_request_line(line, 7));
    ASSERT_TRUE(resp.payload->ok) << line << ": " << resp.payload->error;
    EXPECT_EQ(resp.payload->op, op);
    const std::string rendered = service::render_response(resp);
    const auto fields = service::parse_fields(rendered);
    EXPECT_EQ(fields.at(""), "result") << line;
    EXPECT_EQ(fields.at("id"), "7") << line;
    EXPECT_EQ(fields.at("status"), "ok") << line;
    EXPECT_EQ(fields.at("kind"), std::string(op->name())) << line;
    EXPECT_EQ(fields.at("name"), test::request_line_name(*op)) << line;
    EXPECT_EQ(fields.at("fp"), resp.fingerprint.hex()) << line;
    ASSERT_TRUE(fields.count("stop")) << line;
    ASSERT_TRUE(fields.count("nodes")) << line;
    // Unknown options are rejected per operation, not globally.
    EXPECT_THROW(service::parse_request_line(
                     line + " definitely_not_an_option=1", 1),
                 support::PreconditionError)
        << line;
  }
}

TEST(OperationContract, PayloadsRoundTripThroughCodecAndDiskByteIdentically) {
  for (const Operation* op : service::operations()) {
    const std::string line = test::request_line(*op);
    AnalysisEngine engine{EngineConfig{}};
    const Response resp = engine.run(service::parse_request_line(line, 1));
    ASSERT_TRUE(resp.payload->ok) << line;

    // encode -> decode -> encode is byte-identical...
    const std::string encoded = service::encode_payload(*resp.payload);
    const auto decoded = service::decode_payload(encoded);
    ASSERT_NE(decoded, nullptr) << line;
    EXPECT_EQ(service::encode_payload(*decoded), encoded) << line;
    // ...and the decoded payload renders byte-identically, ddg included.
    EXPECT_EQ(service::render_payload_fields(*decoded, true),
              service::render_payload_fields(*resp.payload, true))
        << line;

    // The same bytes ride the DiskStore: put, re-read, compare.
    service::DiskStore store(
        service::DiskStore::Config{fresh_dir(std::string(op->name()))});
    const service::CacheKey key{0x1234, 0x5678};
    store.put(key, resp.payload, resp.payload->bytes());
    const service::StoreHit hit = store.get(key);
    ASSERT_NE(hit.payload, nullptr) << line;
    EXPECT_EQ(hit.tier, StoreTier::Disk);
    EXPECT_EQ(service::encode_payload(*hit.payload), encoded) << line;
  }
}

TEST(OperationContract, ColdWarmAndDiskRestartLinesMatchForEveryOperation) {
  for (const Operation* op : service::operations()) {
    const std::string dir = fresh_dir("restart_" + std::string(op->name()));
    EngineConfig cfg;
    cfg.cache_dir = dir;
    const std::string line = test::request_line(*op) + " id=3";
    std::string cold, warm, restart;
    {
      AnalysisEngine engine(cfg);
      const Response r1 = engine.run(service::parse_request_line(line, 3));
      ASSERT_TRUE(r1.payload->ok) << line << ": " << r1.payload->error;
      EXPECT_FALSE(r1.cache_hit);
      cold = service::render_response(r1);
      const Response r2 = engine.run(service::parse_request_line(line, 3));
      EXPECT_TRUE(r2.cache_hit) << line;
      EXPECT_EQ(r2.tier, StoreTier::Memory) << line;
      warm = service::render_response(r2);
    }
    AnalysisEngine engine(cfg);  // fresh memory tier: disk must serve
    const Response r3 = engine.run(service::parse_request_line(line, 3));
    EXPECT_TRUE(r3.cache_hit) << line;
    EXPECT_EQ(r3.tier, StoreTier::Disk) << line;
    restart = service::render_response(r3);
    EXPECT_EQ(test::strip_delivery(cold), test::strip_delivery(warm)) << line;
    EXPECT_EQ(test::strip_delivery(cold), test::strip_delivery(restart)) << line;
  }
}

TEST(OperationContract, RenumberedIsomorphicInputHitsCacheForEveryOperation) {
  for (const Operation* op : service::operations()) {
    AnalysisEngine engine{EngineConfig{}};
    Request req = service::parse_request_line(test::request_line(*op), 1);
    Request perm = req;  // same operation + options...
    if (op->payload_kind() == service::PayloadKind::Program) {
      // Program payloads: blocks reordered, blocks and values renamed.
      perm.program =
          std::make_shared<cfg::Cfg>(test::permuted_program(*req.program));
    } else {
      perm.ddg = test::permuted_copy(
          req.ddg, test::reversed_order(req.ddg), /*rename=*/true);
    }
    perm.name = "permuted";
    const Response first = engine.run(std::move(req));
    ASSERT_TRUE(first.payload->ok) << op->name();
    const Response second = engine.run(std::move(perm));
    EXPECT_TRUE(second.cache_hit) << op->name();
    EXPECT_EQ(second.fingerprint, first.fingerprint) << op->name();
    EXPECT_EQ(second.payload, first.payload)
        << op->name() << ": hit must share the payload";
    // Identical result lines modulo the requester's own display name.
    auto a = service::parse_fields(service::render_response(first));
    auto b = service::parse_fields(service::render_response(second));
    for (auto* f : {&a, &b}) {
      f->erase("cached"), f->erase("ms"), f->erase("name");
    }
    EXPECT_EQ(a, b) << op->name();
  }
}

// ---------------------------------------------------------------------------
// program payloads

TEST(ProgramPayload, PayloadKindMismatchesAreRejected) {
  // A program op fed a DDG payload (and vice versa) must fail at parse
  // time, not silently fingerprint the wrong input.
  EXPECT_THROW(service::parse_request_line("globalrs kernel=fir8", 1),
               support::PreconditionError);
  EXPECT_THROW(service::parse_request_line("globalreduce kernel=fir8 "
                                           "limits=6,6", 1),
               support::PreconditionError);
  EXPECT_THROW(service::parse_request_line("analyze prog=diamond", 1),
               support::PreconditionError);
  EXPECT_THROW(service::parse_request_line("globalrs prog=nope", 1),
               support::PreconditionError);
  // model= now applies to program payloads; still not to file=<x>.ddg.
  EXPECT_NO_THROW(service::parse_request_line(
      "globalrs prog=diamond model=vliw", 1));
  EXPECT_THROW(service::parse_request_line("analyze file=x.ddg model=vliw", 1),
               support::PreconditionError);
}

TEST(ProgramPayload, MachineModelSplitsTheFingerprint) {
  // The .prog format carries no latencies — the machine model does — so
  // the same program under superscalar and VLIW models must not share a
  // cache entry.
  AnalysisEngine engine{EngineConfig{}};
  const Response ss = engine.run(
      service::parse_request_line("globalrs prog=diamond", 1));
  const Response vliw = engine.run(
      service::parse_request_line("globalrs prog=diamond model=vliw", 2));
  ASSERT_TRUE(ss.payload->ok);
  ASSERT_TRUE(vliw.payload->ok);
  EXPECT_NE(ss.fingerprint, vliw.fingerprint);
  EXPECT_FALSE(vliw.cache_hit);
}

TEST(ProgramPayload, FileProgPayloadMatchesProgKernel) {
  // file=<x>.prog goes through cfg::io and must fingerprint (and answer)
  // identically to the built-in kernel it was dumped from.
  const std::string dir = fresh_dir("progfile");
  const std::string path = dir + "/diamond.prog";
  {
    std::ofstream out(path);
    out << cfg::to_text(cfg::build_program("diamond",
                                           ddg::superscalar_model()));
  }
  AnalysisEngine engine{EngineConfig{}};
  const Response a = engine.run(
      service::parse_request_line("globalrs prog=diamond", 1));
  const Response b = engine.run(
      service::parse_request_line("globalrs file=" + path, 2));
  ASSERT_TRUE(a.payload->ok) << a.payload->error;
  ASSERT_TRUE(b.payload->ok) << b.payload->error;
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_TRUE(b.cache_hit);
  EXPECT_EQ(b.payload, a.payload);
}

// ---------------------------------------------------------------------------
// per-operation engine metrics

TEST(EngineStats, PerOperationBreakdownCountsHitsAndMisses) {
  AnalysisEngine engine{EngineConfig{}};
  engine.run(service::parse_request_line("analyze kernel=fir8", 1));
  engine.run(service::parse_request_line("analyze kernel=fir8", 2));
  engine.run(service::parse_request_line("analyze kernel=lin-ddot", 3));
  engine.run(service::parse_request_line("globalrs prog=diamond", 4));
  const service::EngineStats st = engine.stats();
  ASSERT_TRUE(st.per_op.count("analyze"));
  ASSERT_TRUE(st.per_op.count("globalrs"));
  EXPECT_FALSE(st.per_op.count("reduce"));  // never exercised
  const service::OpStats& an = st.per_op.at("analyze");
  EXPECT_EQ(an.submitted, 3u);
  EXPECT_EQ(an.hits, 1u);
  EXPECT_EQ(an.misses, 2u);
  EXPECT_GE(an.p50_ms, 0.0);
  const service::OpStats& grs = st.per_op.at("globalrs");
  EXPECT_EQ(grs.submitted, 1u);
  EXPECT_EQ(grs.misses, 1u);
  // An error-producing compute counts as a miss in both the aggregate and
  // the per-op slice (wrong limit count -> run() throws -> error payload).
  const Response err = engine.run(service::parse_request_line(
      "globalreduce prog=diamond limits=1,1,1", 5));
  ASSERT_FALSE(err.payload->ok);
  EXPECT_EQ(st.per_op.count("globalreduce"), 0u);  // pre-error snapshot
  // The per-op slices tile the aggregate counters, error payloads
  // included.
  const service::EngineStats after = engine.stats();
  EXPECT_EQ(after.per_op.at("globalreduce").misses, 1u);
  std::uint64_t submitted = 0, hits = 0, misses = 0;
  for (const auto& [name, slice] : after.per_op) {
    static_cast<void>(name);
    submitted += slice.submitted;
    hits += slice.hits;
    misses += slice.misses;
  }
  EXPECT_EQ(submitted, after.submitted);
  EXPECT_EQ(hits, after.cache_hits + after.coalesced);
  EXPECT_EQ(misses, after.misses);
}

// ---------------------------------------------------------------------------
// extensibility: a new operation defined *here* flows through every layer

/// Counts operations per op class — no solver, no options. Exists to prove
/// the acceptance criterion: a new operation needs only its own definition
/// and a register_operation() call; engine/store/serve are untouched.
struct OpCountData : service::OpData {
  int ops = 0;
  int arcs = 0;
};

class OpCountOperation final : public Operation {
 public:
  std::string_view name() const override { return "opcount"; }
  std::uint64_t digest_tag() const override { return 0x7e57; }
  std::string_view synopsis() const override { return ""; }
  std::string_view example_options() const override { return ""; }
  bool accepts_option(std::string_view) const override { return false; }
  void parse_options(const std::map<std::string, std::string>&,
                     Request*) const override {}
  void digest_options(const Request&, service::OptionDigest*) const override {}

  void run(const Request&, const ddg::Ddg& normalized, const service::RunEnv&,
           const support::SolveContext&, ResultPayload* out) const override {
    auto data = std::make_shared<OpCountData>();
    data->ops = normalized.op_count();
    data->arcs = normalized.graph().edge_count();
    out->data = std::move(data);
  }

  void encode_payload_fields(const ResultPayload& p,
                             std::ostream& os) const override {
    const auto& d = dynamic_cast<const OpCountData&>(*p.data);
    os << " oc.ops=" << d.ops << " oc.arcs=" << d.arcs;
  }

  bool decode_payload_fields(const std::map<std::string, std::string>& fields,
                             ResultPayload* out) const override {
    auto data = std::make_shared<OpCountData>();
    data->ops = static_cast<int>(service::require_ll(fields, "oc.ops"));
    data->arcs = static_cast<int>(service::require_ll(fields, "oc.arcs"));
    out->data = std::move(data);
    return true;
  }

  void render_result_fields(const ResultPayload& p,
                            std::ostream& os) const override {
    const auto& d = dynamic_cast<const OpCountData&>(*p.data);
    os << " ops=" << d.ops << " arcs=" << d.arcs;
  }
};

TEST(OperationRegistry, NewOperationServesEndToEndWithoutServiceEdits) {
  // Once registered, opcount joins the roster the OperationContract sweeps
  // iterate — so the extension is held to the same contract as the
  // built-ins for the rest of this process.
  static const OpCountOperation op;
  // Idempotent under --gtest_repeat: the registry is process-global.
  if (service::find_operation("opcount") == nullptr) {
    service::register_operation(&op);
  }
  ASSERT_EQ(service::find_operation("opcount"), &op);

  const std::string dir = fresh_dir("opcount");
  EngineConfig cfg;
  cfg.cache_dir = dir;
  std::string cold;
  {
    AnalysisEngine engine(cfg);
    const Response r = engine.run(
        service::parse_request_line("opcount kernel=fir8 id=9", 9));
    ASSERT_TRUE(r.payload->ok) << r.payload->error;
    cold = service::render_response(r);
    const auto fields = service::parse_fields(cold);
    EXPECT_EQ(fields.at("kind"), "opcount");
    const int want_ops = ddg::build_kernel("fir8", ddg::superscalar_model())
                             .normalized()
                             .op_count();
    EXPECT_EQ(fields.at("ops"), std::to_string(want_ops));
    EXPECT_TRUE(fields.count("arcs"));
  }
  // Disk restart serves the new op's payload through the shared codec.
  AnalysisEngine engine(cfg);
  const Response r = engine.run(
      service::parse_request_line("opcount kernel=fir8 id=9", 9));
  EXPECT_TRUE(r.cache_hit);
  EXPECT_EQ(r.tier, StoreTier::Disk);
  EXPECT_EQ(test::strip_delivery(cold),
            test::strip_delivery(service::render_response(r)));
}

}  // namespace
}  // namespace rs
