#!/usr/bin/env python3
"""Proves every tools/rsat_lint.py rule actually fires (and stays quiet
where it must). Runs the linter over tests/lint_fixtures/ — a miniature
repo tree of known-bad and known-clean snippets — and asserts the exact
per-file multiset of rules reported. A lint rule that silently stops
matching breaks this test, not just the invariant it guards."""

import collections
import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
LINT = os.path.join(REPO, "tools", "rsat_lint.py")
FIXTURES = os.path.join(HERE, "lint_fixtures")

# file (fixture-root-relative) -> {rule: expected finding count}. Files
# absent here must produce no findings at all.
EXPECT = {
    "src/core/bad_raw_clock.cpp": {"raw-clock": 5},
    "src/service/bad_bare_mutex.cpp": {"bare-mutex": 7},
    "src/core/bad_unseeded_rng.cpp": {"unseeded-rng": 4},
    "src/core/bad_metric_literal.cpp": {"metric-literal": 9},
    "src/service/bad_iostream.cpp": {"iostream": 1},
    "src/service/bad_suppression.cpp": {"bad-suppression": 2},
}
CLEAN = [
    "src/service/suppressed_ok.cpp",
    "src/support/clean_support.cpp",
]

LINE_RE = re.compile(r"^(?P<file>[^:]+):(?P<line>\d+): \[(?P<rule>[a-z-]+)\]")


def main():
    proc = subprocess.run(
        [sys.executable, LINT, "--root", FIXTURES],
        capture_output=True, text=True)
    if proc.returncode != 1:
        print("FAIL: expected exit 1 (findings), got %d\nstdout:\n%s\n"
              "stderr:\n%s" % (proc.returncode, proc.stdout, proc.stderr))
        return 1

    got = collections.defaultdict(collections.Counter)
    for line in proc.stdout.splitlines():
        m = LINE_RE.match(line)
        if not m:
            print("FAIL: unparseable finding line: %r" % line)
            return 1
        got[m.group("file")][m.group("rule")] += 1

    failures = []
    for path, want in EXPECT.items():
        if dict(got.get(path, {})) != want:
            failures.append("%s: expected %s, got %s"
                            % (path, want, dict(got.get(path, {}))))
    for path in CLEAN:
        if path in got:
            failures.append("%s: expected clean, got %s"
                            % (path, dict(got[path])))
        if not os.path.exists(os.path.join(FIXTURES, path)):
            failures.append("%s: clean fixture missing on disk" % path)
    for path in got:
        if path not in EXPECT:
            failures.append("%s: unexpected findings %s"
                            % (path, dict(got[path])))

    if failures:
        print("FAIL:\n  " + "\n  ".join(failures))
        print("\nfull linter output:\n" + proc.stdout)
        return 1
    total = sum(sum(c.values()) for c in got.values())
    print("OK: %d findings across %d fixture files, %d clean files quiet"
          % (total, len(EXPECT), len(CLEAN)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
