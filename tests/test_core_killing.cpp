#include <gtest/gtest.h>

#include <algorithm>

#include "core/context.hpp"
#include "core/greedy_k.hpp"
#include "core/killing.hpp"
#include "ddg/builder.hpp"
#include "ddg/generators.hpp"
#include "ddg/kernels.hpp"
#include "graph/topo.hpp"
#include "sched/lifetime.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"

namespace rs::core {
namespace {

using ddg::kFloatReg;
using ddg::kIntReg;

/// value v read by a, b, c with a -> c path: pkill = {b, c}.
ddg::Ddg pkill_fixture() {
  ddg::KernelBuilder kb(ddg::superscalar_model(), "pkill");
  const auto p = kb.live_in(kIntReg, "p");
  const auto v = kb.fload("v", p);
  const auto a = kb.op(ddg::OpClass::FpAdd, kFloatReg, "a", {v});
  kb.op(ddg::OpClass::FpAdd, kFloatReg, "b", {v});
  kb.op(ddg::OpClass::FpAdd, kFloatReg, "c", {v, a});
  return kb.build();
}

TEST(Context, PkillExcludesDominatedReaders) {
  const ddg::Ddg d = pkill_fixture();
  const TypeContext ctx(d, kFloatReg);
  ddg::NodeId v = -1, a = -1, b = -1, c = -1;
  for (ddg::NodeId n = 0; n < d.op_count(); ++n) {
    if (d.op(n).name == "v") v = n;
    if (d.op(n).name == "a") a = n;
    if (d.op(n).name == "b") b = n;
    if (d.op(n).name == "c") c = n;
  }
  const int vi = ctx.index_of(v);
  ASSERT_GE(vi, 0);
  const auto& pk = ctx.pkill(vi);
  EXPECT_EQ(pk.size(), 2u);
  EXPECT_TRUE(std::find(pk.begin(), pk.end(), b) != pk.end());
  EXPECT_TRUE(std::find(pk.begin(), pk.end(), c) != pk.end());
  EXPECT_TRUE(std::find(pk.begin(), pk.end(), a) == pk.end());  // a before c
}

TEST(Context, PkillSubsetOfConsumersEverywhere) {
  support::Rng rng(41);
  const auto model = ddg::superscalar_model();
  for (int trial = 0; trial < 20; ++trial) {
    ddg::RandomDagParams p;
    p.n_ops = 12;
    const ddg::Ddg d = ddg::random_dag(rng, model, p);
    const TypeContext ctx(d, kFloatReg);
    for (int i = 0; i < ctx.value_count(); ++i) {
      EXPECT_FALSE(ctx.pkill(i).empty());
      for (const ddg::NodeId k : ctx.pkill(i)) {
        const auto& cons = ctx.cons(i);
        EXPECT_TRUE(std::find(cons.begin(), cons.end(), k) != cons.end());
      }
    }
  }
}

TEST(Context, RequiresNormalizedValues) {
  ddg::KernelBuilder kb(ddg::superscalar_model(), "raw");
  const auto x = kb.live_in(kFloatReg, "x");
  kb.fmul("y", x, x);
  const ddg::Ddg raw = kb.build_raw();  // y unconsumed
  EXPECT_THROW(TypeContext(raw, kFloatReg), support::PreconditionError);
}

TEST(Context, SurelyDeadBeforeOnChain) {
  // load a -> use(a) -> load b (serial after use) : a dead before b defined.
  ddg::KernelBuilder kb(ddg::superscalar_model(), "chain");
  const auto p = kb.live_in(kIntReg, "p");
  const auto a = kb.fload("a", p);
  const auto use = kb.op(ddg::OpClass::FpAdd, kFloatReg, "use", {a});
  const auto b = kb.op(ddg::OpClass::FpAdd, kFloatReg, "b", {use});
  const ddg::Ddg d = kb.build();
  const TypeContext ctx(d, kFloatReg);
  const int ia = ctx.index_of(a);
  const int ib = ctx.index_of(b);
  ASSERT_GE(ia, 0);
  ASSERT_GE(ib, 0);
  EXPECT_TRUE(ctx.surely_dead_before(ia, ib));
  EXPECT_FALSE(ctx.surely_dead_before(ib, ia));
}

TEST(Killing, ExtendedGraphAddsOnlyKillerArcs) {
  const ddg::Ddg d = pkill_fixture();
  const TypeContext ctx(d, kFloatReg);
  KillingFunction k(ctx.value_count());
  const graph::Digraph base = killing_extended_graph(ctx, k);
  EXPECT_EQ(base.edge_count(), d.graph().edge_count());  // nothing assigned
  // Assign each value its last potential killer: still a DAG.
  for (int i = 0; i < ctx.value_count(); ++i) {
    k.killer[i] = ctx.pkill(i).back();
  }
  EXPECT_TRUE(is_valid_killing(ctx, k));
  const graph::Digraph ext = killing_extended_graph(ctx, k);
  EXPECT_GE(ext.edge_count(), base.edge_count());
  EXPECT_TRUE(graph::is_dag(ext));
}

TEST(Killing, InvalidKillerRejected) {
  const ddg::Ddg d = pkill_fixture();
  const TypeContext ctx(d, kFloatReg);
  KillingFunction k(ctx.value_count());
  // A node that is not even a consumer.
  k.killer[0] = 0;
  bool valid = true;
  const auto& pk = ctx.pkill(0);
  if (std::find(pk.begin(), pk.end(), 0) == pk.end()) valid = false;
  EXPECT_EQ(is_valid_killing(ctx, k), valid);
}

TEST(Killing, TopoLastKillerAlwaysValid) {
  // The fallback lemma used by greedy-k: choosing the topologically last
  // potential killer for every value keeps the extension acyclic.
  support::Rng rng(4242);
  const auto model = ddg::superscalar_model();
  for (int trial = 0; trial < 25; ++trial) {
    ddg::RandomDagParams p;
    p.n_ops = 12;
    const ddg::Ddg d = ddg::random_dag(rng, model, p);
    const TypeContext ctx(d, kFloatReg);
    const auto order = graph::topo_order(d.graph());
    ASSERT_TRUE(order.has_value());
    std::vector<int> pos(d.op_count());
    for (int i = 0; i < d.op_count(); ++i) pos[(*order)[i]] = i;
    KillingFunction k(ctx.value_count());
    for (int i = 0; i < ctx.value_count(); ++i) {
      k.killer[i] = *std::max_element(
          ctx.pkill(i).begin(), ctx.pkill(i).end(),
          [&](ddg::NodeId a, ddg::NodeId b) { return pos[a] < pos[b]; });
    }
    EXPECT_TRUE(is_valid_killing(ctx, k)) << "trial " << trial;
  }
}

TEST(Killing, DvDagArcsImplyNeverInterfereUnderExtendedGraph) {
  // If DV has arc i -> j then no schedule *of the killing-extended graph*
  // can overlap those lifetimes (the theorem quantifies over Sigma(G->k),
  // where the chosen killer really is the last reader).
  support::Rng rng(5);
  const auto model = ddg::superscalar_model();
  for (int trial = 0; trial < 10; ++trial) {
    ddg::RandomDagParams p;
    p.n_ops = 10;
    const ddg::Ddg d = ddg::random_dag(rng, model, p);
    const TypeContext ctx(d, kFloatReg);
    const RsEstimate est = greedy_k(ctx);
    const auto dv = disjoint_value_dag(ctx, est.killing);
    ASSERT_TRUE(dv.has_value());
    const graph::Digraph ext = killing_extended_graph(ctx, est.killing);
    // Check against a batch of random valid schedules of G->k.
    for (int s = 0; s < 12; ++s) {
      sched::Schedule sched;
      sched.time = graph::longest_path_to(ext);
      for (auto& t : sched.time) t += rng.next_int(0, 5);
      for (int round = 0; round < ext.node_count(); ++round) {
        for (const graph::Edge& e : ext.edges()) {
          sched.time[e.dst] =
              std::max(sched.time[e.dst], sched.time[e.src] + e.latency);
        }
      }
      ASSERT_TRUE(sched::is_valid(ext, sched));
      ASSERT_TRUE(sched::is_valid(d, sched));  // Sigma(G->k) subset Sigma(G)
      const auto lts = sched::lifetimes(d, kFloatReg, sched);
      for (const graph::Edge& e : dv->edges()) {
        EXPECT_FALSE(lts[e.src].interferes(lts[e.dst]))
            << "DV arc violated by a schedule of G->k";
      }
    }
  }
}

TEST(Killing, SaturatingScheduleRealizesAntichain) {
  support::Rng rng(6);
  const auto model = ddg::superscalar_model();
  for (int trial = 0; trial < 15; ++trial) {
    ddg::RandomDagParams p;
    p.n_ops = 11;
    const ddg::Ddg d = ddg::random_dag(rng, model, p);
    const TypeContext ctx(d, kFloatReg);
    const RsEstimate est = greedy_k(ctx);
    if (ctx.value_count() == 0) continue;
    ASSERT_TRUE(sched::is_valid(d, est.witness));
    // All antichain values simultaneously alive at some instant: the
    // witnessed register need equals the antichain size.
    EXPECT_EQ(sched::register_need(d, kFloatReg, est.witness),
              static_cast<int>(est.antichain.size()));
  }
}

TEST(Killing, NeedMonotoneUnderAssignment) {
  // Upper-bound property used by the exact search: assigning one more
  // killer never increases the partial antichain bound.
  const ddg::Ddg d = ddg::liv_loop1(ddg::superscalar_model());
  const TypeContext ctx(d, kFloatReg);
  KillingFunction k(ctx.value_count());
  auto prev = killing_need(ctx, k);
  ASSERT_TRUE(prev.has_value());
  for (int i = 0; i < ctx.value_count(); ++i) {
    k.killer[i] = ctx.pkill(i).back();
    const auto cur = killing_need(ctx, k);
    ASSERT_TRUE(cur.has_value());
    EXPECT_LE(cur->need, prev->need);
    prev = cur;
  }
}

TEST(Killing, VliwOffsetsSupported) {
  const ddg::Ddg d = ddg::lin_daxpy(ddg::vliw_model());
  const TypeContext ctx(d, kFloatReg);
  const RsEstimate est = greedy_k(ctx);
  EXPECT_GE(est.rs, 1);
  ASSERT_TRUE(sched::is_valid(d, est.witness));
  EXPECT_EQ(sched::register_need(d, kFloatReg, est.witness), est.rs);
}

}  // namespace
}  // namespace rs::core
