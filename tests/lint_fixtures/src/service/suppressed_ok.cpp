// Fixture: a justified suppression silences the rule — both same-line and
// previous-line placements. Expect NO findings from this file.
#include <ctime>

long justified_same_line() {
  return time(nullptr);  // rsat-lint: allow(raw-clock) fixture proves same-line suppression works
}

long justified_previous_line() {
  // rsat-lint: allow(raw-clock) fixture proves previous-line suppression works
  long t = time(nullptr);
  return t;
}
