// Fixture: <iostream> in library code must fire `iostream`.
#include <iostream>  // expect: iostream

void shout() { std::cout << "library code must not do this\n"; }
