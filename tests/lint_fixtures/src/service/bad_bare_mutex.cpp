// Fixture: raw std:: locking primitives outside src/support/mutex.hpp
// must fire `bare-mutex` — the analysis cannot see locks it cannot name.
#include <mutex>               // expect: bare-mutex
#include <condition_variable>  // expect: bare-mutex

struct BadServer {
  std::mutex mu;                   // expect: bare-mutex
  std::recursive_mutex rec;        // expect: bare-mutex
  std::condition_variable cv;      // expect: bare-mutex
  int guarded = 0;

  void touch() {
    std::lock_guard<std::mutex> lock(mu);  // expect: bare-mutex
    ++guarded;
  }
  void wait_for_it() {
    std::unique_lock<std::mutex> lock(mu);  // expect: bare-mutex
    cv.wait(lock);
  }
};

// In a comment, std::mutex must NOT fire.
