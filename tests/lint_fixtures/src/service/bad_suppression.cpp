// Fixture: suppressions with no justification, or naming an unknown rule,
// must fire `bad-suppression` (the finding is reported as that rule).
#include <ctime>

long unjustified() {
  return time(nullptr);  // rsat-lint: allow(raw-clock)
}
// expect: bad-suppression (empty justification) on the line above

int typod() {
  return 0;  // rsat-lint: allow(raw-clokc) typo'd rule names must not pass silently
}
// expect: bad-suppression (unknown rule) on the line above
