// Fixture: nondeterministic RNG outside src/support/random.* must fire
// `unseeded-rng` — results must be byte-identical across runs.
#include <cstdlib>
#include <random>

int bad_roll() {
  srand(42);              // expect: unseeded-rng (libc stream, platform-dependent)
  int a = rand();         // expect: unseeded-rng
  std::random_device rd;  // expect: unseeded-rng
  std::mt19937 gen(rd()); // expect: unseeded-rng
  return a + static_cast<int>(gen());
}

// std::mt19937 in a comment must NOT fire, nor "rand()" in a string:
const char* rng_prose() { return "rand() is banned"; }
