// Fixture: metric-name literals outside their registration site must fire
// `metric-literal`; this file is src/core/, which owns no metric prefix.
const char* kStrayEngineMetric = "engine.misses";        // expect: metric-literal
const char* kStrayStoreMetric = "store.mem.hits";        // expect: metric-literal
const char* kStrayPoolMetric = "pool.queue_depth";       // expect: metric-literal
const char* kStrayServeMetric = "serve.requests";        // expect: metric-literal
const char* kStrayOpMetric = "op.analyze.submitted";     // expect: metric-literal
const char* kStrayTraceKey = "solve_ms";                 // expect: metric-literal
const char* kStraySolverMetric = "solver.bb.nodes";      // expect: metric-literal
const char* kStraySloMetric = "slo.analyze.breach";      // expect: metric-literal
const char* kStraySolveLogKey = "ddg_width";             // expect: metric-literal

// Must NOT fire: non-metric dotted strings, file names, prose.
const char* kFileName = "store.cpp";
const char* kHostName = "service.example";
const char* kProse = "the engine. op counts live elsewhere";
const char* kSloPrefixAlone = "slo.";  // bare prefix is not a metric name
const char* kDdgProse = "ddg width exceeded";
