// Fixture: every variant of a raw clock read outside src/support/ must
// fire `raw-clock`. A clock call in a comment must NOT fire:
// std::chrono::steady_clock::now() is fine right here.
#include <chrono>
#include <ctime>
#include <sys/time.h>

double bad_steady() {
  auto t = std::chrono::steady_clock::now();  // expect: raw-clock
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long bad_libc() {
  long a = time(nullptr);     // expect: raw-clock
  a += clock();               // expect: raw-clock
  struct timeval tv;
  gettimeofday(&tv, nullptr);  // expect: raw-clock
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);  // expect: raw-clock
  return a;
}

const char* not_a_clock() {
  // A string literal mentioning ::now( must not fire.
  return "calls ::now( in prose";
}
