// Fixture: src/support/ is the designated home of clock reads — the same
// calls that fire raw-clock elsewhere must be clean here.
#include <chrono>

double support_owns_the_clock() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
