#!/bin/sh
# Golden byte-identity of the one-shot CLI path vs `rsat batch`: for the
# new operations (minreg, spill, schedule), `rsat <op> ...` must emit the
# *same protocol result line* as a batch run fed the equivalent request
# line, modulo the delivery fields cached= and ms= — they share the
# protocol parser and renderer, and this test keeps it that way.
RSAT="$1"
[ -x "$RSAT" ] || { echo "usage: ops_cli_golden.sh <path-to-rsat>"; exit 2; }

tmpdir=$(mktemp -d) || exit 2
trap 'rm -rf "$tmpdir"' EXIT
fail=0

strip_delivery() { sed -E 's/ (cached|ms)=[^ ]*//g'; }

# check <batch-request-line> <one-shot argv...>
check() {
  line="$1"
  shift
  oneshot=$("$RSAT" "$@" 2>/dev/null | strip_delivery)
  batch=$(printf '%s\n' "$line" | "$RSAT" batch 2>/dev/null | strip_delivery)
  if [ -z "$oneshot" ] || [ "$oneshot" != "$batch" ]; then
    echo "MISMATCH for: $line"
    echo "  one-shot: $oneshot"
    echo "  batch:    $batch"
    fail=1
  fi
}

check "minreg kernel=lin-ddot id=1" minreg kernel=lin-ddot id=1
check "minreg kernel=lin-ddot emit=1 id=1" minreg kernel=lin-ddot emit=1 id=1
check "spill kernel=lin-ddot limits=2,2 id=1" spill kernel=lin-ddot limits=2,2 id=1
check "spill kernel=lin-ddot limits=2,2 max_spills=2 emit=1 id=1" \
      spill kernel=lin-ddot limits=2,2 max_spills=2 emit=1 id=1
check "schedule kernel=lin-ddot id=1" schedule kernel=lin-ddot id=1
check "schedule kernel=lin-ddot width=2 id=1" schedule kernel=lin-ddot width=2 id=1
check "globalrs prog=diamond id=1" globalrs prog=diamond id=1
check "globalreduce prog=diamond limits=8,8 margin=2 id=1" \
      globalreduce prog=diamond limits=8,8 margin=2 id=1

# The bare-path shorthand: `rsat minreg <file.ddg>` == `minreg file=...`.
"$RSAT" dump lin-ddot > "$tmpdir/k.ddg" || fail=1
check "minreg file=$tmpdir/k.ddg id=1" minreg "$tmpdir/k.ddg" id=1

# ... and its .prog twin: `rsat globalrs <file.prog>` == `globalrs file=...`.
"$RSAT" dumpprog dotcond > "$tmpdir/p.prog" || fail=1
check "globalrs file=$tmpdir/p.prog id=1" globalrs "$tmpdir/p.prog" id=1

[ "$fail" -eq 0 ] && echo "PASS ops_cli_golden"
exit "$fail"
