// Cross-cutting property sweeps: the full invariant chain of the paper's
// theory, parameterized over machine models, generator families and seeds.
//
// For every generated DDG and register type:
//   P1  greedy RS* <= exact RS, and both are witnessed by valid schedules
//       whose measured register need equals the reported value;
//   P2  no random valid schedule ever exceeds the proven RS;
//   P3  reduction (when it succeeds) yields a DAG whose exact RS fits the
//       limit, whose original arcs are intact, and whose critical path
//       never shrinks;
//   P4  the reduced DAG's schedules are schedules of the original;
//   P5  killing-function machinery: the chosen killer is always a
//       potential killer, and the saturating antichain is pairwise
//       DV-incomparable.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/greedy_k.hpp"
#include "core/killing.hpp"
#include "core/reduce.hpp"
#include "core/rs_exact.hpp"
#include "ddg/generators.hpp"
#include "graph/paths.hpp"
#include "graph/transitive.hpp"
#include "sched/lifetime.hpp"
#include "support/random.hpp"

namespace rs::core {
namespace {

enum class Family { Random, Layered, Tree };

struct Sweep {
  Family family;
  bool vliw;
  int size;
  std::uint64_t seed;
};

ddg::Ddg generate(const Sweep& s) {
  const ddg::MachineModel model =
      s.vliw ? ddg::vliw_model() : ddg::superscalar_model();
  support::Rng rng(s.seed * 7919 + 13);
  switch (s.family) {
    case Family::Random: {
      ddg::RandomDagParams p;
      p.n_ops = s.size;
      return ddg::random_dag(rng, model, p);
    }
    case Family::Layered: {
      ddg::LayeredDagParams p;
      p.layers = std::max(2, s.size / 4);
      p.min_width = 2;
      p.max_width = 4;
      return ddg::random_layered(rng, model, p);
    }
    case Family::Tree:
      return ddg::random_expression_tree(rng, model, std::max(2, s.size / 2));
  }
  return ddg::Ddg{};
}

class PropertySweep : public ::testing::TestWithParam<Sweep> {};

TEST_P(PropertySweep, FullInvariantChain) {
  const Sweep sweep = GetParam();
  const ddg::Ddg dag = generate(sweep);
  support::Rng rng(sweep.seed * 104729 + 7);

  for (ddg::RegType t = 0; t < dag.type_count(); ++t) {
    if (dag.values_of_type(t).empty()) continue;
    const TypeContext ctx(dag, t);

    // P1: engines ordered and witnessed.
    const RsEstimate heur = greedy_k(ctx);
    const RsExactResult exact =
        rs_exact(ctx, RsExactOptions{}, support::SolveContext(20));
    if (!exact.proven) GTEST_SKIP() << "exact budget exhausted";
    ASSERT_LE(heur.rs, exact.rs);
    ASSERT_TRUE(sched::is_valid(dag, heur.witness));
    ASSERT_TRUE(sched::is_valid(dag, exact.witness));
    EXPECT_EQ(sched::register_need(dag, t, heur.witness), heur.rs);
    EXPECT_EQ(sched::register_need(dag, t, exact.witness), exact.rs);

    // P2: random schedules stay below RS.
    for (int trial = 0; trial < 10; ++trial) {
      sched::Schedule s = sched::asap(dag);
      for (auto& time : s.time) time += rng.next_int(0, 6);
      for (int round = 0; round < dag.op_count(); ++round) {
        for (const graph::Edge& e : dag.graph().edges()) {
          s.time[e.dst] = std::max(s.time[e.dst], s.time[e.src] + e.latency);
        }
      }
      ASSERT_TRUE(sched::is_valid(dag, s));
      EXPECT_LE(sched::register_need(dag, t, s), exact.rs);
    }

    // P5: killing machinery invariants.
    for (int i = 0; i < ctx.value_count(); ++i) {
      const auto& pk = ctx.pkill(i);
      ASSERT_TRUE(std::find(pk.begin(), pk.end(), heur.killing.killer[i]) !=
                  pk.end());
    }
    const auto dv = disjoint_value_dag(ctx, heur.killing);
    ASSERT_TRUE(dv.has_value());
    const graph::TransitiveClosure tc(*dv);
    for (const int a : heur.antichain) {
      for (const int b : heur.antichain) {
        if (a != b) {
          EXPECT_FALSE(tc.reaches(a, b));
        }
      }
    }

    // P3/P4: reduction invariants (only when RS leaves room).
    if (exact.rs < 3) continue;
    const int limit = exact.rs - 1;
    ReduceOptions ropts;
    ropts.rs_upper = exact.rs;
    const ReduceResult red =
        reduce_greedy(ctx, limit, ropts, support::SolveContext(10));
    if (red.status != ReduceStatus::Reduced) continue;  // spill/budget: fine
    ASSERT_TRUE(red.extended.has_value());
    const ddg::Ddg& out = *red.extended;
    // Original arcs intact, critical path monotone.
    ASSERT_GE(out.graph().edge_count(), dag.graph().edge_count());
    for (graph::EdgeId e = 0; e < dag.graph().edge_count(); ++e) {
      EXPECT_EQ(out.graph().edge(e).src, dag.graph().edge(e).src);
      EXPECT_EQ(out.graph().edge(e).dst, dag.graph().edge(e).dst);
    }
    EXPECT_GE(red.critical_path, red.original_cp);
    // The reduction's own claim, verified exactly.
    const TypeContext octx(out, t);
    const RsExactResult after =
        rs_exact(octx, RsExactOptions{}, support::SolveContext(20));
    if (after.proven) {
      EXPECT_LE(after.rs, limit);
    }
    // P4: any schedule of the reduced graph is one of the original.
    const sched::Schedule s2 = sched::asap(out);
    EXPECT_TRUE(sched::is_valid(dag, s2));
  }
}

std::vector<Sweep> make_sweeps() {
  std::vector<Sweep> sweeps;
  std::uint64_t seed = 1;
  for (const Family f : {Family::Random, Family::Layered, Family::Tree}) {
    for (const bool vliw : {false, true}) {
      for (const int size : {8, 10, 12}) {
        sweeps.push_back(Sweep{f, vliw, size, seed++});
        sweeps.push_back(Sweep{f, vliw, size, seed++});
      }
    }
  }
  return sweeps;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, PropertySweep,
                         ::testing::ValuesIn(make_sweeps()));

}  // namespace
}  // namespace rs::core
