#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "support/assert.hpp"

#include "ddg/builder.hpp"
#include "ddg/generators.hpp"
#include "ddg/kernels.hpp"
#include "graph/paths.hpp"
#include "sched/lifetime.hpp"
#include "sched/list_sched.hpp"
#include "sched/schedule.hpp"
#include "support/random.hpp"

namespace rs::sched {
namespace {

using ddg::kFloatReg;
using ddg::kIntReg;

TEST(Schedule, AsapIsValidAndTight) {
  const ddg::Ddg d = ddg::lin_ddot(ddg::superscalar_model());
  const Schedule s = asap(d);
  EXPECT_TRUE(is_valid(d, s));
  // Tightness: every op is either at 0 or has a binding predecessor arc.
  for (ddg::NodeId v = 0; v < d.op_count(); ++v) {
    if (s.time[v] == 0) continue;
    bool binding = false;
    for (const graph::EdgeId e : d.graph().in_edges(v)) {
      const graph::Edge& ed = d.graph().edge(e);
      if (s.time[ed.src] + ed.latency == s.time[v]) binding = true;
    }
    EXPECT_TRUE(binding) << "op " << d.op(v).name;
  }
}

TEST(Schedule, AlapRespectsHorizon) {
  const ddg::Ddg d = ddg::lin_ddot(ddg::superscalar_model());
  const sched::Time cp = graph::critical_path(d.graph());
  const Schedule s = alap(d.graph(), cp + 5);
  EXPECT_TRUE(is_valid(d, s));
  for (const auto t : s.time) EXPECT_LE(t, cp + 5);
  EXPECT_THROW(alap(d.graph(), cp - 1), support::PreconditionError);
}

TEST(Schedule, ValidityCatchesViolations) {
  const ddg::Ddg d = ddg::lin_dscal(ddg::superscalar_model());
  Schedule s = asap(d);
  s.time[1] = -1;
  EXPECT_FALSE(is_valid(d, s));
  Schedule zero;
  zero.time.assign(d.op_count(), 0);
  EXPECT_FALSE(is_valid(d, zero));  // latencies > 0 somewhere
}

TEST(Schedule, MakespanEqualsBottomTime) {
  const ddg::Ddg d = ddg::liv_loop1(ddg::superscalar_model());
  const Schedule s = asap(d);
  EXPECT_EQ(makespan(d, s), s.at(*d.bottom()));
}

TEST(Lifetime, LeftOpenSemantics) {
  // writer w (lat 2) read by a at +2 and b at +5: LT = ]0, 5].
  ddg::KernelBuilder b(ddg::superscalar_model(), "t");
  const auto p = b.live_in(kIntReg, "p");
  const auto w = b.fload("w", p);
  const auto r1 = b.op(ddg::OpClass::FpAdd, kFloatReg, "r1", {w});
  b.op(ddg::OpClass::FpAdd, kFloatReg, "r2", {w, r1});
  const ddg::Ddg d = b.build();
  const Schedule s = asap(d);
  const auto lts = lifetimes(d, kFloatReg, s);
  const ddg::ValueSet vs(d, kFloatReg);
  const Lifetime& lw = lts[vs.index_of[w]];
  EXPECT_EQ(lw.def, s.at(w));
  EXPECT_GT(lw.kill, lw.def);
  EXPECT_EQ(lw.kill, kill_date(d, w, kFloatReg, s));
}

TEST(Lifetime, InterferenceIsSymmetricAndIrreflexive) {
  const ddg::Ddg d = ddg::matmul_unroll4(ddg::superscalar_model());
  const Schedule s = asap(d);
  const auto mat = interference_matrix(d, kFloatReg, s);
  const int k = static_cast<int>(lifetimes(d, kFloatReg, s).size());
  for (int i = 0; i < k; ++i) {
    EXPECT_FALSE(mat[i * k + i]);
    for (int j = 0; j < k; ++j) {
      EXPECT_EQ(mat[i * k + j], mat[j * k + i]);
    }
  }
}

TEST(Lifetime, TouchingIntervalsDoNotInterfere) {
  Lifetime a{0, 0, 5};
  Lifetime b{1, 5, 9};  // starts exactly at a's kill: ]5,9] vs ]0,5]
  EXPECT_FALSE(a.interferes(b));
  Lifetime c{2, 4, 9};
  EXPECT_TRUE(a.interferes(c));
  Lifetime empty{3, 4, 4};
  EXPECT_FALSE(empty.interferes(a));
}

TEST(Lifetime, RegisterNeedMatchesCliqueOverRandomSchedules) {
  // RN computed by sweep == max clique of the interference matrix
  // (intervals have the Helly property, so max overlap == max clique).
  const ddg::MachineModel model = ddg::superscalar_model();
  support::Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    ddg::RandomDagParams p;
    p.n_ops = 10;
    const ddg::Ddg d = ddg::random_dag(rng, model, p);
    // Random valid schedule: ASAP plus random per-op slack, repaired in
    // topological order.
    Schedule s = asap(d);
    for (auto& t : s.time) t += rng.next_int(0, 6);
    for (int round = 0; round < d.op_count(); ++round) {
      for (const graph::Edge& e : d.graph().edges()) {
        s.time[e.dst] =
            std::max(s.time[e.dst], s.time[e.src] + e.latency);
      }
    }
    ASSERT_TRUE(is_valid(d, s));
    const int rn = register_need(d, kFloatReg, s);
    // Greedy interval allocation is optimal on interval graphs.
    const Allocation alloc = allocate(d, kFloatReg, s);
    EXPECT_EQ(alloc.registers_used, rn);
  }
}

TEST(Lifetime, AllocationNeverSharesInterferingRegisters) {
  const ddg::Ddg d = ddg::fir8(ddg::superscalar_model());
  const Schedule s = asap(d);
  const Allocation alloc = allocate(d, kFloatReg, s);
  const auto lts = lifetimes(d, kFloatReg, s);
  for (std::size_t i = 0; i < lts.size(); ++i) {
    for (std::size_t j = i + 1; j < lts.size(); ++j) {
      if (lts[i].interferes(lts[j])) {
        EXPECT_NE(alloc.reg_of_value[i], alloc.reg_of_value[j]);
      }
    }
  }
}

TEST(Lifetime, EmptyLifetimesGetNoRegister) {
  ddg::KernelBuilder b(ddg::superscalar_model(), "t");
  const auto x = b.live_in(kFloatReg, "x");
  b.fmul("y", x, x);
  const ddg::Ddg raw = b.build_raw();  // y has no consumer -> empty LT
  const Schedule s = asap(raw);
  const ddg::ValueSet vs(raw, kFloatReg);
  const Allocation alloc = allocate(raw, kFloatReg, s);
  const auto lts = lifetimes(raw, kFloatReg, s);
  for (int i = 0; i < vs.count(); ++i) {
    if (lts[i].empty()) {
      EXPECT_EQ(alloc.reg_of_value[i], -1);
    }
  }
}

TEST(ListSched, RespectsResourceLimits) {
  const ddg::Ddg d = ddg::fir8(ddg::superscalar_model());
  Resources res;
  res.issue_width = 2;
  res.units_per_class.fill(1);
  res.units_per_class[static_cast<int>(ddg::OpClass::Nop)] = 99;
  const Schedule s = list_schedule(d, res);
  EXPECT_TRUE(is_valid(d, s));
  // Count per-cycle usage.
  std::map<Time, int> issued;
  std::map<std::pair<Time, int>, int> per_class;
  for (ddg::NodeId v = 0; v < d.op_count(); ++v) {
    if (d.op(v).cls == ddg::OpClass::Nop) continue;
    issued[s.time[v]]++;
    per_class[{s.time[v], static_cast<int>(d.op(v).cls)}]++;
  }
  for (const auto& [t, n] : issued) EXPECT_LE(n, 2) << "cycle " << t;
  for (const auto& [key, n] : per_class) EXPECT_LE(n, 1);
}

TEST(ListSched, UnlimitedResourcesMatchAsapMakespan) {
  const ddg::Ddg d = ddg::liv_loop7(ddg::superscalar_model());
  const Schedule s = list_schedule(d, Resources::unlimited());
  EXPECT_EQ(makespan(d, s), makespan(d, asap(d)));
}

TEST(ListSched, TighterResourcesNeverBeatWiderOnes) {
  const ddg::Ddg d = ddg::liv_loop23(ddg::superscalar_model());
  Resources narrow;
  narrow.issue_width = 1;
  narrow.units_per_class.fill(1);
  Resources wide;
  wide.issue_width = 8;
  wide.units_per_class.fill(4);
  EXPECT_GE(makespan(d, list_schedule(d, narrow)),
            makespan(d, list_schedule(d, wide)));
}

}  // namespace
}  // namespace rs::sched
