// Portfolio solving (core/portfolio.hpp) and its service exposure
// (engine=portfolio, jobs=): the determinism contract under test here is
// that result values and rendered lines are byte-identical regardless of
// race timing, thread count, or cache tier. Race-timing-dependent facts
// (who won, what was cancelled) are asserted only through the telemetry
// channel (PortfolioTally / op.*.portfolio.* counters), never through
// result bytes.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "core/min_reg.hpp"
#include "core/portfolio.hpp"
#include "core/rs_exact.hpp"
#include "ddg/io.hpp"
#include "ddg/kernels.hpp"
#include "service/engine.hpp"
#include "service/protocol.hpp"
#include "support/thread_pool.hpp"

namespace rs {
namespace {

using core::Exec;
using core::PortfolioResult;
using core::Strategy;
using core::TypeContext;
using service::AnalysisEngine;
using service::EngineConfig;
using service::Response;

std::vector<std::string> fast_kernels() {
  return {"lin-ddot", "lin-dscal", "fir8", "liv-loop7"};
}

/// Rendered result line with delivery metadata (ms=, cached=) removed —
/// everything that must be byte-stable across runs, tiers and thread
/// counts.
std::map<std::string, std::string> stable_fields(const Response& resp) {
  auto f = service::parse_fields(service::render_response(resp));
  f.erase("ms");
  f.erase("cached");
  return f;
}

TEST(Portfolio, MatchesExactOnCorpusSerial) {
  for (const std::string& name : fast_kernels()) {
    const ddg::Ddg d = ddg::build_kernel(name, ddg::superscalar_model());
    for (ddg::RegType t = 0; t < d.type_count(); ++t) {
      const TypeContext ctx(d, t);
      const core::RsExactResult want = core::rs_exact(ctx);
      const PortfolioResult got = core::rs_portfolio(ctx);
      ASSERT_TRUE(want.proven) << name;
      EXPECT_EQ(got.rs, want.rs) << name << " t" << t;
      EXPECT_TRUE(got.proven) << name << " t" << t;
      // Canonical stats: effort counters zeroed, stop cause kept.
      EXPECT_EQ(got.stats.nodes, 0) << name;
      EXPECT_EQ(got.stats.stop, support::StopCause::Proven) << name;
      // Serial degradation runs strategies in priority order with early
      // exit: Exact proves first, the other two are cancelled unstarted.
      EXPECT_EQ(got.winner, Strategy::Exact) << name;
      EXPECT_EQ(got.tally.races, 1) << name;
      EXPECT_EQ(got.tally.wins[static_cast<int>(Strategy::Exact)], 1);
      EXPECT_EQ(got.tally.losers_cancelled, 2) << name;
    }
  }
}

TEST(Portfolio, ParallelRaceMatchesSerialBytes) {
  support::ThreadPool pool(4);
  const Exec exec{&pool, 4};
  for (const std::string& name : fast_kernels()) {
    const ddg::Ddg d = ddg::build_kernel(name, ddg::superscalar_model());
    for (ddg::RegType t = 0; t < d.type_count(); ++t) {
      const TypeContext ctx(d, t);
      const PortfolioResult serial = core::rs_portfolio(ctx);
      // Race timing varies run to run; the result value must not.
      for (int iter = 0; iter < 10; ++iter) {
        const PortfolioResult par =
            core::rs_portfolio(ctx, {}, support::SolveContext(), exec);
        EXPECT_EQ(par.rs, serial.rs) << name << " iter " << iter;
        EXPECT_EQ(par.proven, serial.proven) << name;
        EXPECT_EQ(par.stats.nodes, 0) << name;
        EXPECT_EQ(par.tally.races, 1) << name;
      }
    }
  }
}

TEST(Portfolio, MinregRaceMatchesLadder) {
  support::ThreadPool pool(4);
  const Exec exec{&pool, 4};
  // Minimization on the larger corpus kernels runs into the ladder's node
  // limits (tens of seconds, unproven); parity on those is covered once by
  // the bench, not per-test-run. These two prove in milliseconds.
  for (const std::string& name : {std::string("lin-ddot"),
                                  std::string("lin-dscal")}) {
    const ddg::Ddg d = ddg::build_kernel(name, ddg::superscalar_model());
    for (ddg::RegType t = 0; t < d.type_count(); ++t) {
      const TypeContext ctx(d, t);
      const core::MinRegResult want =
          core::minimize_register_need(ctx, 0, {});
      for (const Exec* e : {static_cast<const Exec*>(nullptr), &exec}) {
        const core::MinRegRaceResult got = core::minreg_portfolio(
            ctx, 0, {}, core::ArcLatencyMode::General,
            support::SolveContext(), e ? *e : Exec{});
        EXPECT_EQ(got.result.min_need, want.min_need) << name << " t" << t;
        EXPECT_EQ(got.result.proven, want.proven) << name;
        EXPECT_EQ(got.result.arcs_added, want.arcs_added) << name;
        EXPECT_EQ(got.result.critical_path, want.critical_path) << name;
        // The winning strategy must not change the emitted DAG: both
        // witness at r* via the identical deterministic feasible() call.
        ASSERT_EQ(got.result.extended.has_value(), want.extended.has_value());
        if (want.extended.has_value()) {
          EXPECT_EQ(ddg::to_text(*got.result.extended),
                    ddg::to_text(*want.extended))
              << name << " t" << t;
        }
        EXPECT_EQ(got.result.nodes, 0) << name;  // canonical
        EXPECT_EQ(got.tally.races, 1) << name;
      }
    }
  }
}

// The ISSUE's race-determinism gate: many independent cold engines, each
// racing with real threads, must render byte-identical result lines.
TEST(PortfolioRace, ColdIterationsByteIdentical) {
  const char* kLines[] = {
      "analyze kernel=fir8 engine=portfolio jobs=4 id=1",
      "minreg kernel=lin-ddot engine=portfolio id=2",
      "globalrs prog=diamond engine=portfolio id=3",
  };
  std::vector<std::map<std::string, std::string>> want;
  {
    EngineConfig cfg;
    cfg.threads = 4;
    AnalysisEngine first(cfg);
    for (const char* line : kLines) {
      want.push_back(
          stable_fields(first.run(service::parse_request_line(line, 1))));
    }
    // Losers are observable through the telemetry channel only.
    EXPECT_GE(first.metrics().counter("op.analyze.portfolio.races").value(),
              1u);
    EXPECT_GE(
        first.metrics().counter("op.analyze.portfolio.cancelled").value(), 1u);
    EXPECT_GE(first.metrics().counter("op.minreg.portfolio.races").value(),
              1u);
    EXPECT_GE(first.metrics().counter("op.globalrs.portfolio.races").value(),
              1u);
  }
  for (int iter = 0; iter < 50; ++iter) {
    EngineConfig cfg;
    cfg.threads = 4;
    AnalysisEngine engine(cfg);
    for (std::size_t i = 0; i < std::size(kLines); ++i) {
      const Response r =
          engine.run(service::parse_request_line(kLines[i], 1));
      EXPECT_EQ(stable_fields(r), want[i]) << kLines[i] << " iter " << iter;
    }
  }
}

TEST(PortfolioRace, CacheTiersServeIdenticalBytes) {
  const auto dir =
      std::filesystem::temp_directory_path() / "rs_portfolio_cache";
  std::filesystem::remove_all(dir);
  const std::string line = "analyze kernel=liv-loop7 engine=portfolio id=9";
  EngineConfig cfg;
  cfg.threads = 4;
  cfg.cache_dir = dir.string();
  std::map<std::string, std::string> cold;
  {
    AnalysisEngine engine(cfg);
    const Response miss = engine.run(service::parse_request_line(line, 9));
    EXPECT_FALSE(miss.cache_hit);
    cold = stable_fields(miss);
    // Memory tier.
    const Response mem = engine.run(service::parse_request_line(line, 9));
    EXPECT_TRUE(mem.cache_hit);
    EXPECT_EQ(stable_fields(mem), cold);
  }
  // Disk tier, across an engine restart.
  AnalysisEngine engine(cfg);
  const Response disk = engine.run(service::parse_request_line(line, 9));
  EXPECT_TRUE(disk.cache_hit);
  EXPECT_EQ(stable_fields(disk), cold);
  // A cache hit runs no race: the portfolio counters stay silent.
  EXPECT_EQ(engine.metrics().counter("op.analyze.portfolio.races").value(),
            0u);
  std::filesystem::remove_all(dir);
}

TEST(PortfolioRace, JobsIsAnExecutionKnobNotAResultParameter) {
  // Same request at different jobs= must render identically and share one
  // cache entry (jobs= is outside the fingerprint).
  EngineConfig cfg;
  cfg.threads = 4;
  AnalysisEngine serial(cfg);
  AnalysisEngine parallel(cfg);
  const std::string base = "globalrs prog=diamond engine=portfolio id=4";
  const Response r1 =
      serial.run(service::parse_request_line(base + " jobs=1", 4));
  const Response r4 =
      parallel.run(service::parse_request_line(base + " jobs=4", 4));
  EXPECT_EQ(stable_fields(r1), stable_fields(r4));
  // jobs=4 on a 4-block program fans every block onto the pool...
  EXPECT_EQ(
      parallel.metrics().counter("op.globalrs.parallel_blocks").value(), 4u);
  // ...while jobs=1 stays sequential.
  EXPECT_EQ(serial.metrics().counter("op.globalrs.parallel_blocks").value(),
            0u);
  // Cross-jobs cache hit: the second spelling is served the first's bytes.
  const Response hit =
      parallel.run(service::parse_request_line(base + " jobs=1", 4));
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(stable_fields(hit), stable_fields(r4));
}

TEST(PortfolioRace, MinregPortfolioFieldsMatchExactEngine) {
  EngineConfig cfg;
  cfg.threads = 4;
  AnalysisEngine engine(cfg);
  const Response exact = engine.run(service::parse_request_line(
      "minreg kernel=lin-ddot engine=exact id=5", 5));
  const Response raced = engine.run(service::parse_request_line(
      "minreg kernel=lin-ddot engine=portfolio id=5", 5));
  EXPECT_FALSE(raced.cache_hit);  // engine= is fingerprinted; jobs= is not
  auto a = stable_fields(exact);
  auto b = stable_fields(raced);
  // The only legitimate divergence is the canonicalized effort counter.
  EXPECT_NE(a["nodes"], b["nodes"]);
  EXPECT_EQ(b["nodes"], "0");
  a.erase("nodes");
  b.erase("nodes");
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace rs
