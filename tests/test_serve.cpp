// SocketServer: the line protocol over TCP — ordered responses, cancel and
// drain acks, per-line error recovery, cross-connection cache sharing, and
// the cancel-drain shutdown path.
#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <poll.h>
#include <sys/socket.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "ddg/generators.hpp"
#include "ddg/io.hpp"
#include "service/operation.hpp"
#include "service/protocol.hpp"
#include "service/serve.hpp"
#include "support/fs.hpp"
#include "support/parse.hpp"
#include "support/random.hpp"
#include "support/socket.hpp"
#include "support/timer.hpp"

#include "test_util.hpp"

namespace rs {
namespace {

using service::ServeConfig;
using service::SocketServer;

/// Blocking line-at-a-time protocol client over a non-blocking socket.
class LineClient {
 public:
  explicit LineClient(int port)
      : fd_(support::connect_tcp("127.0.0.1", port)) {
    EXPECT_TRUE(support::set_nonblocking(fd_));
  }
  ~LineClient() { support::close_fd(fd_); }

  void send(const std::string& data) {
    ASSERT_TRUE(support::send_all(fd_, data));
  }

  /// Half-close: no more requests, but responses can still be read.
  void close_write() { ::shutdown(fd_, SHUT_WR); }

  /// Next '\n'-terminated line (stripped), or "" after timeout_s.
  std::string next_line(double timeout_s = 30.0) {
    const support::Timer t;
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      if (t.seconds() > timeout_s) return "";
      pollfd p = {fd_, POLLIN, 0};
      ::poll(&p, 1, 100);
      if (support::recv_some(fd_, &buf_) == -2) return "";
    }
  }

 private:
  int fd_;
  std::string buf_;
};

/// Server running on a background thread; joined + shut down on scope exit.
class ServerFixture {
 public:
  explicit ServerFixture(ServeConfig cfg = {})
      : server_(std::move(cfg)), thread_([this] { server_.run(); }) {}
  ~ServerFixture() {
    server_.shutdown();
    thread_.join();
  }
  SocketServer& operator*() { return server_; }
  SocketServer* operator->() { return &server_; }

 private:
  SocketServer server_;
  std::thread thread_;
};

TEST(Serve, AnalyzeCancelDrainOverOneConnection) {
  ServeConfig cfg;
  cfg.engine.threads = 2;
  ServerFixture server(cfg);
  ASSERT_GT(server->port(), 0);

  LineClient client(server->port());
  client.send("analyze kernel=fir8\n# a comment\n\ncancel 999\ndrain\n");

  const auto result = service::parse_fields(client.next_line());
  EXPECT_EQ(result.at(""), "result");
  EXPECT_EQ(result.at("status"), "ok");
  EXPECT_EQ(result.at("kind"), "analyze");
  EXPECT_EQ(result.at("name"), "fir8");
  EXPECT_EQ(result.at("cached"), "0");
  EXPECT_TRUE(result.count("t0.rs"));

  EXPECT_EQ(client.next_line(), "cancelled id=999 found=0");
  EXPECT_EQ(client.next_line(), "drained");

  const auto ss = server->serve_stats();
  EXPECT_EQ(ss.connections, 1u);
  EXPECT_EQ(ss.requests, 1u);
  EXPECT_EQ(ss.responses, 3u);
  EXPECT_EQ(ss.parse_errors, 0u);
}

TEST(Serve, StatsVerbReturnsLiveTilingTelemetry) {
  ServeConfig cfg;
  cfg.engine.threads = 2;
  ServerFixture server(cfg);
  LineClient client(server->port());

  // stats is emitted in order behind earlier slots, so this snapshot must
  // already see the analyze answered.
  client.send("analyze kernel=lin-ddot\nstats\n");
  EXPECT_EQ(service::parse_fields(client.next_line()).at("status"), "ok");
  const std::string cold_line = client.next_line();
  const auto cold = service::parse_fields(cold_line);
  EXPECT_EQ(cold.at(""), "stats");
  EXPECT_EQ(cold.at("completed"), "1");
  EXPECT_EQ(cold.at("misses"), "1");
  EXPECT_EQ(cold.at("op.analyze.submitted"), "1");
  EXPECT_EQ(support::parse_ll(cold.at("memory_hits"), "k") +
                support::parse_ll(cold.at("disk_hits"), "k") +
                support::parse_ll(cold.at("coalesced"), "k") +
                support::parse_ll(cold.at("misses"), "k"),
            support::parse_ll(cold.at("completed"), "k"));

  // Warm run over the same connection: identical key schema, fresh values.
  client.send("analyze kernel=lin-ddot\nstats\n");
  EXPECT_EQ(service::parse_fields(client.next_line()).at("cached"), "1");
  const auto warm = service::parse_fields(client.next_line());
  std::vector<std::string> cold_keys, warm_keys;
  for (const auto& [k, v] : cold) cold_keys.push_back(k);
  for (const auto& [k, v] : warm) warm_keys.push_back(k);
  EXPECT_EQ(cold_keys, warm_keys);
  EXPECT_EQ(warm.at("completed"), "2");
  EXPECT_EQ(warm.at("memory_hits"), "1");
  EXPECT_EQ(warm.at("op.analyze.hits"), "1");

  // The ack counts as a response but not a request, and the engine stats
  // behind the verb still tile after the session.
  const auto ss = server->serve_stats();
  EXPECT_EQ(ss.requests, 2u);
  EXPECT_EQ(ss.responses, 4u);
  EXPECT_TRUE(server->engine().stats().counters_tile());
}

TEST(Serve, TraceFileCapturesOneEventPerRequest) {
  const auto path =
      std::filesystem::temp_directory_path() / "rs_serve_trace.jsonl";
  std::filesystem::remove(path);
  {
    ServeConfig cfg;
    cfg.engine.threads = 2;
    cfg.trace_file = path.string();
    ServerFixture server(cfg);
    ASSERT_NE(server->trace_sink(), nullptr);
    LineClient client(server->port());
    client.send("analyze kernel=lin-ddot\nanalyze kernel=lin-ddot\ndrain\n");
    EXPECT_EQ(service::parse_fields(client.next_line()).at("cached"), "0");
    EXPECT_EQ(service::parse_fields(client.next_line()).at("cached"), "1");
    EXPECT_EQ(client.next_line(), "drained");
    EXPECT_EQ(server->trace_sink()->written(), 2u);
    EXPECT_EQ(server->trace_sink()->dropped(), 0u);
  }  // shutdown flushes the sink
  std::string text;
  ASSERT_TRUE(support::read_file_to_string(path.string(), &text));
  // Two JSONL events: a miss with a solve phase, then a mem-tier hit
  // without one; both carry the full required-key set and the wire cost.
  std::size_t lines = 0, at = 0;
  for (std::size_t nl = text.find('\n'); nl != std::string::npos;
       nl = text.find('\n', at)) {
    const std::string line = text.substr(at, nl - at);
    at = nl + 1;
    ++lines;
    for (const char* key :
         {"\"ev\":\"request\"", "\"ts\":", "\"op\":\"analyze\"", "\"fp\":",
          "\"ok\":true", "\"tier\":", "\"stop\":\"proven\"", "\"nodes\":",
          "\"parse_ms\":", "\"queue_ms\":", "\"encode_ms\":", "\"total_ms\":",
          "\"bytes\":"}) {
      EXPECT_NE(line.find(key), std::string::npos)
          << key << " missing in " << line;
    }
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(text.find("\"cached\":false"), std::string::npos);
  EXPECT_NE(text.find("\"cached\":true"), std::string::npos);
  EXPECT_NE(text.find("\"tier\":\"mem\""), std::string::npos);
  EXPECT_NE(text.find("\"solve_ms\":"), std::string::npos);
  std::filesystem::remove(path);
}

/// Reads one full `metrics` scrape: every line through the "# EOF" frame.
std::vector<std::string> read_scrape(LineClient& client) {
  std::vector<std::string> lines;
  for (;;) {
    const std::string line = client.next_line();
    if (line.empty()) break;  // timeout — caller's EXPECTs will flag it
    lines.push_back(line);
    if (line == "# EOF") break;
  }
  return lines;
}

/// A sample line with its value dropped, comment lines verbatim — what must
/// stay byte-identical between two scrapes of one process.
std::string scrape_shape(const std::string& line) {
  if (!line.empty() && line.front() == '#') return line;
  const std::size_t sp = line.rfind(' ');
  return sp == std::string::npos ? line : line.substr(0, sp);
}

TEST(Serve, MetricsVerbRendersStablePrometheusExposition) {
  ServeConfig cfg;
  cfg.engine.threads = 2;
  ServerFixture server(cfg);
  LineClient client(server->port());

  // A cold scrape parses but is smaller: op.* families register lazily on
  // the first solve and sparse histogram ladders grow with observations.
  client.send("metrics\n");
  const std::vector<std::string> cold = read_scrape(client);
  ASSERT_FALSE(cold.empty());
  EXPECT_EQ(cold.back(), "# EOF");

  // Warm the engine, then scrape twice in a row: consecutive warm scrapes
  // are byte-identical in shape — same families, same sample lines — with
  // only values free to differ (the scrape itself counts as a request).
  client.send("analyze kernel=lin-ddot\nmetrics\nmetrics\n");
  EXPECT_EQ(service::parse_fields(client.next_line()).at("status"), "ok");
  const std::vector<std::string> warm = read_scrape(client);
  const std::vector<std::string> warm2 = read_scrape(client);
  ASSERT_EQ(warm.size(), warm2.size());
  for (std::size_t i = 0; i < warm.size(); ++i) {
    EXPECT_EQ(scrape_shape(warm[i]), scrape_shape(warm2[i])) << "line " << i;
  }
  EXPECT_GT(warm.size(), cold.size());

  // Exposition-format sanity over the warm scrape: every line is a typed
  // family header or a `name value` sample, names sorted, counters total'd.
  std::string prev_family;
  for (const std::string& line : warm) {
    if (line == "# EOF") break;
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string family = line.substr(7, line.find(' ', 7) - 7);
      EXPECT_LT(prev_family, family);  // global name sort
      prev_family = family;
      continue;
    }
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_EQ(line.find(' '), sp) << line;  // exactly `name value`
  }
  const std::string all = [&warm] {
    std::string s;
    for (const auto& l : warm) s += l + "\n";
    return s;
  }();
  EXPECT_NE(all.find("# TYPE rsat_serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(all.find("rsat_engine_completed_total 1"), std::string::npos);
  EXPECT_NE(all.find("rsat_solver_"), std::string::npos);
}

TEST(Serve, SloObjectivesCountBreachesAndExtendStats) {
  ServeConfig cfg;
  cfg.engine.threads = 2;
  cfg.slo_ms = 1e-6;  // unmeetable: every completed response is a breach
  ServerFixture server(cfg);
  LineClient client(server->port());

  client.send("analyze kernel=lin-ddot\nanalyze kernel=lin-ddot\nstats\n");
  EXPECT_EQ(service::parse_fields(client.next_line()).at("cached"), "0");
  EXPECT_EQ(service::parse_fields(client.next_line()).at("cached"), "1");
  const auto cold = service::parse_fields(client.next_line());
  EXPECT_EQ(cold.at("slo_ms"), "0.000");  // %.3f of 1e-6
  EXPECT_EQ(cold.at("slo.analyze.ok"), "0");
  EXPECT_EQ(cold.at("slo.analyze.breach"), "2");
  EXPECT_EQ(cold.at("slo.analyze.breach_rate"), "1.000");

  // Warm stats: identical key schema (the SLO fields are part of it now).
  client.send("stats\n");
  const auto warm = service::parse_fields(client.next_line());
  std::vector<std::string> cold_keys, warm_keys;
  for (const auto& [k, v] : cold) cold_keys.push_back(k);
  for (const auto& [k, v] : warm) warm_keys.push_back(k);
  EXPECT_EQ(cold_keys, warm_keys);
  EXPECT_TRUE(server->engine().stats().counters_tile());
}

TEST(Serve, SolveLogFileCapturesOneRecordPerRequest) {
  const auto path =
      std::filesystem::temp_directory_path() / "rs_serve_slog.jsonl";
  std::filesystem::remove(path);
  {
    ServeConfig cfg;
    cfg.engine.threads = 2;
    cfg.solve_log_file = path.string();
    ServerFixture server(cfg);
    ASSERT_NE(server->solve_log_sink(), nullptr);
    LineClient client(server->port());
    client.send("analyze kernel=lin-ddot\nanalyze kernel=lin-ddot\ndrain\n");
    EXPECT_EQ(service::parse_fields(client.next_line()).at("cached"), "0");
    EXPECT_EQ(service::parse_fields(client.next_line()).at("cached"), "1");
    EXPECT_EQ(client.next_line(), "drained");
    EXPECT_EQ(server->solve_log_sink()->written(), 2u);
    EXPECT_EQ(server->solve_log_sink()->dropped(), 0u);
  }  // shutdown flushes the sink
  std::string text;
  ASSERT_TRUE(support::read_file_to_string(path.string(), &text));
  std::size_t lines = 0, at = 0;
  for (std::size_t nl = text.find('\n'); nl != std::string::npos;
       nl = text.find('\n', at)) {
    const std::string line = text.substr(at, nl - at);
    at = nl + 1;
    ++lines;
    for (const char* key :
         {"\"ev\":\"solve\"", "\"v\":1", "\"ts\":", "\"op\":\"analyze\"",
          "\"fp\":", "\"ddg_ops\":", "\"ddg_arcs\":", "\"ddg_cp\":",
          "\"ddg_width\":", "\"ddg_types\":", "\"ok\":true", "\"tier\":",
          "\"stop\":\"proven\"", "\"nodes\":", "\"total_ms\":"}) {
      EXPECT_NE(line.find(key), std::string::npos)
          << key << " missing in " << line;
    }
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(text.find("\"cached\":false"), std::string::npos);
  EXPECT_NE(text.find("\"cached\":true"), std::string::npos);
  EXPECT_NE(text.find("\"tier\":\"mem\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Serve, MalformedLineAnswersErrorAndConnectionSurvives) {
  ServerFixture server;
  LineClient client(server->port());
  client.send("frobnicate kernel=fir8\nanalyze kernel=fir8\n");

  const auto err = service::parse_fields(client.next_line());
  EXPECT_EQ(err.at("status"), "error");
  EXPECT_EQ(err.at("name"), "line1");
  EXPECT_FALSE(err.at("msg").empty());

  const auto ok = service::parse_fields(client.next_line());
  EXPECT_EQ(ok.at("status"), "ok");
  EXPECT_EQ(server->serve_stats().parse_errors, 1u);
}

TEST(Serve, ConnectionsShareTheEngineCache) {
  ServerFixture server;
  std::string first, second;
  {
    LineClient a(server->port());
    a.send("analyze kernel=lin-ddot\n");
    first = a.next_line();
  }
  {
    LineClient b(server->port());
    b.send("analyze kernel=lin-ddot\n");
    second = b.next_line();
  }
  const auto f1 = service::parse_fields(first);
  const auto f2 = service::parse_fields(second);
  EXPECT_EQ(f1.at("cached"), "0");
  EXPECT_EQ(f2.at("cached"), "1");
  // Identical everything else — including the engine-assigned default ids
  // being distinct (server-wide sequence).
  EXPECT_EQ(f1.at("fp"), f2.at("fp"));
  EXPECT_EQ(f1.at("t0.rs"), f2.at("t0.rs"));
  EXPECT_NE(f1.at("id"), f2.at("id"));
  EXPECT_EQ(server->serve_stats().connections, 2u);
}

TEST(Serve, EveryRegisteredOperationServesColdWarmAndDiskHit) {
  // The registry contract over TCP: each operation answers over a socket
  // cold, then memory-hit, then — across a server restart sharing the
  // cache dir — disk-hit, with byte-identical lines modulo cached=/ms=.
  const auto dir = std::filesystem::temp_directory_path() / "rs_serve_ops";
  std::filesystem::remove_all(dir);
  std::vector<std::string> lines;
  std::size_t id = 1;
  for (const service::Operation* op : service::operations()) {
    lines.push_back(test::request_line(*op) + " id=" + std::to_string(id++));
  }
  std::vector<std::string> cold(lines.size()), warm(lines.size());
  {
    ServeConfig cfg;
    cfg.engine.cache_dir = dir.string();
    ServerFixture server(cfg);
    LineClient client(server->port());
    for (const std::string& line : lines) client.send(line + "\n");
    for (std::size_t i = 0; i < lines.size(); ++i) {
      cold[i] = client.next_line();
      ASSERT_NE(service::parse_fields(cold[i]).at("status"), "error")
          << lines[i] << " -> " << cold[i];
      EXPECT_EQ(service::parse_fields(cold[i]).at("cached"), "0") << lines[i];
    }
    for (const std::string& line : lines) client.send(line + "\n");
    for (std::size_t i = 0; i < lines.size(); ++i) {
      warm[i] = client.next_line();
      EXPECT_EQ(service::parse_fields(warm[i]).at("cached"), "1") << lines[i];
      EXPECT_EQ(test::strip_delivery(cold[i]), test::strip_delivery(warm[i])) << lines[i];
    }
  }
  // Restarted server, fresh memory tier, same disk tier.
  ServeConfig cfg;
  cfg.engine.cache_dir = dir.string();
  ServerFixture server(cfg);
  LineClient client(server->port());
  for (const std::string& line : lines) client.send(line + "\n");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string hit = client.next_line();
    EXPECT_EQ(service::parse_fields(hit).at("cached"), "1") << lines[i];
    EXPECT_EQ(test::strip_delivery(cold[i]), test::strip_delivery(hit)) << lines[i];
  }
  EXPECT_GE(server->engine().stats().disk_hits, lines.size());
  std::filesystem::remove_all(dir);
}

TEST(Serve, PortFileIsWrittenOnceListening) {
  const auto path = std::filesystem::temp_directory_path() / "rs_serve_port";
  std::filesystem::remove(path);
  ServeConfig cfg;
  cfg.port_file = path.string();
  ServerFixture server(cfg);
  std::string text;
  ASSERT_TRUE(support::read_file_to_string(path.string(), &text));
  EXPECT_EQ(text, std::to_string(server->port()) + "\n");
  std::filesystem::remove(path);
}

TEST(Serve, UnterminatedFinalLineIsAnsweredAtEof) {
  // `printf 'analyze kernel=fir8' | nc host port` — no trailing newline.
  // rsat batch answers such a line (getline semantics); serve must too.
  ServerFixture server;
  LineClient client(server->port());
  client.send("analyze kernel=fir8");
  client.close_write();
  const auto fields = service::parse_fields(client.next_line());
  EXPECT_EQ(fields.at("status"), "ok");
  EXPECT_EQ(fields.at("name"), "fir8");
}

TEST(Serve, OversizedLineIsRejectedInsteadOfBufferedForever) {
  ServerFixture server;
  LineClient client(server->port());
  // More than kMaxLineBytes with no newline: the server must answer with
  // an error and stop reading, not grow its input buffer without bound.
  client.send(std::string(SocketServer::kMaxLineBytes + 1000, 'x'));
  const auto fields = service::parse_fields(client.next_line(60));
  EXPECT_EQ(fields.at("status"), "error");
  EXPECT_NE(fields.at("msg").find("exceeds"), std::string::npos);
  EXPECT_EQ(server->serve_stats().parse_errors, 1u);
}

TEST(Serve, ShutdownCancelsInFlightAndFlushesResultLines) {
  // A dense layered DAG whose exact RS solve runs for many seconds
  // unbudgeted: shutdown must cancel it cooperatively and still deliver
  // its (stop=cancelled) result line before closing.
  support::Rng rng(11);
  ddg::LayeredDagParams p;
  p.layers = 6;
  p.min_width = 4;
  p.max_width = 6;
  p.edge_prob = 0.8;
  const ddg::Ddg slow =
      ddg::random_layered(rng, ddg::superscalar_model(), p);

  ServeConfig cfg;
  cfg.engine.threads = 1;
  ServerFixture server(cfg);
  LineClient client(server->port());
  client.send("analyze ddg=" + service::escape_field(ddg::to_text(slow)) +
              "\n");
  // Give the worker a moment to actually start the solve, then shut down.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  server->shutdown();
  const auto fields = service::parse_fields(client.next_line());
  EXPECT_EQ(fields.at("status"), "ok");
  EXPECT_EQ(fields.at("stop"), "cancelled");
}

}  // namespace
}  // namespace rs

#endif  // __unix__ || __APPLE__
