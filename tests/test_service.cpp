// Batch analysis engine: canonical fingerprints, the sharded LRU cache, the
// line protocol, and AnalysisEngine end-to-end — including the acceptance
// bar that engine results are byte-identical to the equivalent one-shot
// core::analyze / core::ensure_limits calls.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <future>
#include <set>
#include <thread>
#include <vector>

#include "core/saturation.hpp"
#include "ddg/canon.hpp"
#include "ddg/generators.hpp"
#include "ddg/io.hpp"
#include "ddg/kernels.hpp"
#include "service/engine.hpp"
#include "service/operation.hpp"
#include "service/ops/analyze.hpp"
#include "service/ops/reduce.hpp"
#include "service/protocol.hpp"
#include "service/store.hpp"
#include "support/assert.hpp"
#include "support/parse.hpp"
#include "support/random.hpp"
#include "support/solve_context.hpp"

#include "test_util.hpp"

namespace rs {
namespace {

using ddg::Ddg;
using ddg::Fingerprint;
using service::AnalysisEngine;
using service::CacheKey;
using service::EngineConfig;
using service::MemoryStore;
using service::Request;
using service::Response;
using service::ResultPayload;
using service::StoreTier;

// ---------------------------------------------------------------------------
// .ddg text round-tripping

TEST(Io, RoundTripEveryKernelBothModels) {
  for (const auto model : {ddg::superscalar_model, ddg::vliw_model}) {
    for (const std::string& name : ddg::kernel_names()) {
      const Ddg d = ddg::build_kernel(name, model());
      const std::string text = ddg::to_text(d);
      const Ddg back = ddg::from_text(text);
      EXPECT_EQ(ddg::to_text(back), text) << name;
      // The bottom marker survives, so normalization stays idempotent and
      // the fingerprint is path-independent (built vs parsed).
      ASSERT_TRUE(back.bottom().has_value()) << name;
      EXPECT_EQ(back.op_count(), d.op_count()) << name;
      EXPECT_EQ(ddg::to_text(back.normalized()), text) << name;
      EXPECT_EQ(ddg::fingerprint(back), ddg::fingerprint(d)) << name;
    }
  }
}

TEST(Io, BottomMarkerRejectsUnknownOp) {
  EXPECT_THROW(
      ddg::from_text("ddg t types=1 bottom=zz\nop a class=ialu lat=1 dr=0 dw=0\n"),
      support::PreconditionError);
}

TEST(Io, BottomMarkerRejectsNonNormalizedShape) {
  // Marked ⊥ has an outgoing arc: not a sink.
  EXPECT_THROW(
      ddg::from_text("ddg t types=1 bottom=a\n"
                     "op a class=ialu lat=1 dr=0 dw=0\n"
                     "op b class=ialu lat=1 dr=0 dw=0\n"
                     "serial a b lat=1\n"),
      support::PreconditionError);
  // An op with no arc into the marked ⊥: normalization would have added one.
  EXPECT_THROW(
      ddg::from_text("ddg t types=1 bottom=b\n"
                     "op a class=ialu lat=1 dr=0 dw=0\n"
                     "op b class=nop lat=0 dr=0 dw=0\n"),
      support::PreconditionError);
}

TEST(Io, MalformedNumbersReportPrecondition) {
  EXPECT_THROW(ddg::from_text("ddg t types=x\n"), support::PreconditionError);
  EXPECT_THROW(
      ddg::from_text("ddg t types=1\nop a class=ialu lat=zap dr=0 dw=0\n"),
      support::PreconditionError);
}

// ---------------------------------------------------------------------------
// canonical fingerprints

TEST(Canon, InvariantUnderRenumberingAndRenaming) {
  for (const std::string& name : ddg::kernel_names()) {
    const Ddg d = ddg::build_kernel(name, ddg::superscalar_model());
    const Fingerprint fp = ddg::fingerprint(d);
    const Ddg renumbered = test::permuted_copy(d, test::reversed_order(d), false);
    EXPECT_EQ(ddg::fingerprint(renumbered), fp) << name;
    const Ddg renamed = test::permuted_copy(d, test::reversed_order(d), true);
    EXPECT_EQ(ddg::fingerprint(renamed), fp) << name;
    // And the permuted copy still serializes to *different* text, so the
    // fingerprint is doing real work.
    EXPECT_NE(ddg::to_text(renumbered), ddg::to_text(d)) << name;
  }
}

TEST(Canon, DistinguishesCorpusKernels) {
  std::set<std::string> seen;
  for (const auto model : {ddg::superscalar_model, ddg::vliw_model}) {
    for (const std::string& name : ddg::kernel_names()) {
      const Ddg d = ddg::build_kernel(name, model());
      EXPECT_TRUE(seen.insert(ddg::fingerprint(d).hex()).second)
          << name << " collided";
    }
  }
}

TEST(Canon, SensitiveToAttributes) {
  Ddg a(1, "g");
  ddg::Operation op;
  op.name = "x";
  op.cls = ddg::OpClass::Load;
  op.latency = 3;
  op.writes = {0};
  const auto v = a.add_op(op);
  ddg::Operation op2;
  op2.name = "y";
  op2.cls = ddg::OpClass::IntAlu;
  const auto w = a.add_op(op2);
  a.add_flow(v, w, 0, 3);

  Ddg b = a;  // identical copy
  EXPECT_EQ(ddg::fingerprint(a), ddg::fingerprint(b));

  Ddg c(1, "g");
  op.latency = 4;  // one latency changed
  const auto cv = c.add_op(op);
  const auto cw = c.add_op(op2);
  c.add_flow(cv, cw, 0, 3);
  EXPECT_NE(ddg::fingerprint(c), ddg::fingerprint(a));
}

TEST(Canon, ExtendSeparatesSalts) {
  const Ddg d = ddg::build_kernel("fir8", ddg::superscalar_model());
  const Fingerprint fp = ddg::fingerprint(d);
  EXPECT_NE(ddg::extend(fp, 1), ddg::extend(fp, 2));
  EXPECT_NE(ddg::extend(fp, 1), fp);
}

// ---------------------------------------------------------------------------
// cache

std::shared_ptr<const ResultPayload> payload_named(const std::string& n) {
  auto p = std::make_shared<ResultPayload>();
  p->out_ddg = n;  // any field; tests only need distinct live payloads
  return p;
}

TEST(Cache, HitMissAndLruEviction) {
  MemoryStore::Config cfg;
  cfg.shards = 1;
  cfg.max_entries = 2;
  MemoryStore cache(cfg);
  const CacheKey k1{1, 10}, k2{2, 20}, k3{3, 30};
  EXPECT_EQ(cache.get(k1).payload, nullptr);
  EXPECT_EQ(cache.get(k1).tier, StoreTier::None);
  cache.put(k1, payload_named("a"), 100);
  cache.put(k2, payload_named("b"), 100);
  ASSERT_NE(cache.get(k1).payload, nullptr);  // refresh k1: k2 is now LRU
  EXPECT_EQ(cache.get(k1).tier, StoreTier::Memory);
  cache.put(k3, payload_named("c"), 100);
  EXPECT_EQ(cache.get(k2).payload, nullptr)
      << "LRU entry should have been evicted";
  EXPECT_NE(cache.get(k1).payload, nullptr);
  EXPECT_NE(cache.get(k3).payload, nullptr);
  const auto st = cache.stats();
  EXPECT_EQ(st.entries, 2u);
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.insertions, 3u);
}

TEST(Cache, ByteCapacityEvictsAndRejectsOversized) {
  MemoryStore::Config cfg;
  cfg.shards = 1;
  cfg.max_bytes = 1000;
  MemoryStore cache(cfg);
  cache.put(CacheKey{1, 1}, payload_named("a"), 600);
  cache.put(CacheKey{2, 2}, payload_named("b"), 600);  // evicts the first
  EXPECT_EQ(cache.get(CacheKey{1, 1}).payload, nullptr);
  EXPECT_NE(cache.get(CacheKey{2, 2}).payload, nullptr);
  cache.put(CacheKey{3, 3}, payload_named("c"), 5000);  // larger than budget
  EXPECT_EQ(cache.get(CacheKey{3, 3}).payload, nullptr);
  EXPECT_LE(cache.stats().bytes, 1000u);
}

TEST(Cache, ZeroCapacityDisables) {
  MemoryStore::Config cfg;
  cfg.max_bytes = 0;
  MemoryStore cache(cfg);
  EXPECT_FALSE(cache.enabled());
  cache.put(CacheKey{1, 1}, payload_named("a"), 10);
  EXPECT_EQ(cache.get(CacheKey{1, 1}).payload, nullptr);
}

// ---------------------------------------------------------------------------
// protocol

TEST(Protocol, EscapeRoundTrip) {
  const std::string raw = "a b\tc\nd%e\r=f#g";
  const std::string esc = service::escape_field(raw);
  EXPECT_EQ(esc.find(' '), std::string::npos);
  EXPECT_EQ(esc.find('\n'), std::string::npos);
  EXPECT_EQ(service::unescape_field(esc), raw);
  EXPECT_EQ(service::unescape_field("plain"), "plain");
  EXPECT_THROW(service::unescape_field("bad%zz"), support::PreconditionError);
  EXPECT_THROW(service::unescape_field("trunc%2"), support::PreconditionError);
}

TEST(Protocol, ParseAnalyzeAndReduceRequests) {
  const Request a = service::parse_request_line(
      "analyze kernel=lin-ddot engine=greedy budget=2.5 name=dd", 7);
  EXPECT_EQ(a.op, &service::analyze_operation());
  EXPECT_EQ(a.id, 7u);
  EXPECT_EQ(a.name, "dd");
  const auto& aopts =
      dynamic_cast<const service::AnalyzeOpOptions&>(*a.options);
  EXPECT_EQ(aopts.core.engine, core::RsEngine::Greedy);
  EXPECT_DOUBLE_EQ(a.budget_seconds, 2.5);

  const Request r = service::parse_request_line(
      "reduce kernel=fir8 limits=4,8 exact=1 verify=0 emit=1 id=42", 1);
  EXPECT_EQ(r.op, &service::reduce_operation());
  EXPECT_EQ(r.id, 42u);
  const auto& ropts =
      dynamic_cast<const service::ReduceOpOptions&>(*r.options);
  EXPECT_EQ(ropts.limits, (std::vector<int>{4, 8}));
  EXPECT_TRUE(ropts.pipeline.exact_reduction);
  EXPECT_FALSE(ropts.pipeline.verify);
  EXPECT_TRUE(r.want_ddg);
}

TEST(Protocol, ParseInlineDdgPayload) {
  const Ddg d = ddg::build_kernel("horner8", ddg::superscalar_model());
  const std::string line =
      "analyze ddg=" + service::escape_field(ddg::to_text(d));
  const Request req = service::parse_request_line(line, 1);
  EXPECT_EQ(ddg::fingerprint(req.ddg), ddg::fingerprint(d));
}

TEST(Protocol, RejectsMalformedRequests) {
  using support::PreconditionError;
  EXPECT_THROW(service::parse_request_line("frobnicate kernel=fir8", 1),
               PreconditionError);
  EXPECT_THROW(service::parse_request_line("analyze", 1), PreconditionError);
  EXPECT_THROW(
      service::parse_request_line("analyze kernel=fir8 file=x.ddg", 1),
      PreconditionError);
  EXPECT_THROW(service::parse_request_line("analyze kernel=nope", 1),
               PreconditionError);
  EXPECT_THROW(service::parse_request_line("reduce kernel=fir8", 1),
               PreconditionError);
  EXPECT_THROW(
      service::parse_request_line("reduce kernel=fir8 limits=4,x", 1),
      PreconditionError);
  EXPECT_THROW(
      service::parse_request_line("analyze kernel=fir8 engine=magic", 1),
      PreconditionError);
  EXPECT_THROW(
      service::parse_request_line("analyze kernel=fir8 budget=-1", 1),
      PreconditionError);
  // Typo'd or misplaced options are rejected, not silently defaulted.
  EXPECT_THROW(
      service::parse_request_line("analyze kernel=fir8 buget=5", 1),
      PreconditionError);
  EXPECT_THROW(service::parse_request_line("analyze kernel=fir8 emit=1", 1),
               PreconditionError);
  EXPECT_THROW(
      service::parse_request_line("reduce kernel=fir8 limits=4,4 emitt=1", 1),
      PreconditionError);
  EXPECT_THROW(
      service::parse_request_line("analyze file=x.ddg model=vliw", 1),
      PreconditionError);
  // Duplicate fields must not silently collapse to the last occurrence.
  EXPECT_THROW(
      service::parse_request_line("reduce kernel=fir8 limits=4,4 limits=8,8", 1),
      PreconditionError);
  EXPECT_THROW(
      service::parse_request_line("analyze kernel=fir8 kernel=horner8", 1),
      PreconditionError);
}

TEST(Protocol, RenderedResultParsesBack) {
  AnalysisEngine engine{EngineConfig{}};
  Request req = service::parse_request_line("analyze kernel=lin-ddot", 3);
  const Response resp = engine.run(std::move(req));
  const std::string line = service::render_response(resp);
  const auto fields = service::parse_fields(line);
  EXPECT_EQ(fields.at(""), "result");
  EXPECT_EQ(fields.at("id"), "3");
  EXPECT_EQ(fields.at("status"), "ok");
  EXPECT_EQ(fields.at("kind"), "analyze");
  EXPECT_EQ(fields.at("name"), "lin-ddot");
  EXPECT_EQ(fields.at("fp"), resp.fingerprint.hex());
  EXPECT_EQ(fields.at("cached"), "0");
  ASSERT_TRUE(fields.count("t1.rs"));
}

TEST(Protocol, NameWithWhitespaceRoundTrips) {
  // A kernel/file display name containing spaces (or worse) must not
  // corrupt the key=value token stream: escaped on render, unescaped on
  // parse, symmetrically.
  AnalysisEngine engine{EngineConfig{}};
  Request req = service::parse_request_line(
      "analyze kernel=fir8 name=my%20noisy%09loop", 1);
  EXPECT_EQ(req.name, "my noisy\tloop");
  const Response resp = engine.run(std::move(req));
  const std::string line = service::render_response(resp);
  // Every token still splits cleanly at whitespace into key=value form.
  for (const std::string& tok : support::split_ws(line)) {
    EXPECT_TRUE(tok == "result" || tok.find('=') != std::string::npos)
        << "corrupted token '" << tok << "' in: " << line;
  }
  const auto fields = service::parse_fields(line);
  EXPECT_EQ(fields.at("name"), "my noisy\tloop");
  EXPECT_EQ(fields.at("status"), "ok");

  // The error path escapes the echoed name the same way.
  Request bad = service::parse_request_line(
      "reduce kernel=fir8 limits=4 name=spaced%20name", 2);
  const Response err = engine.run(std::move(bad));
  ASSERT_FALSE(err.payload->ok);
  const auto efields = service::parse_fields(service::render_response(err));
  EXPECT_EQ(efields.at("name"), "spaced name");
  EXPECT_EQ(efields.at("status"), "error");
}

// ---------------------------------------------------------------------------
// engine

TEST(Engine, AnalyzeMatchesOneShotCoreCall) {
  for (const std::string& name : {std::string("lin-ddot"), std::string("horner8"),
                                  std::string("estrin8")}) {
    const Ddg d = ddg::build_kernel(name, ddg::superscalar_model());
    const core::AnalyzeOptions opts;  // defaults: exact combinatorial
    const core::SaturationReport want = core::analyze(d.normalized(), opts);

    AnalysisEngine engine{EngineConfig{}};
    const Response resp = engine.run(service::make_analyze_request(d, opts));
    ASSERT_TRUE(resp.payload->ok) << resp.payload->error;
    const auto& got = service::analyze_data(*resp.payload).per_type;
    ASSERT_EQ(got.size(), want.per_type.size()) << name;
    for (std::size_t t = 0; t < want.per_type.size(); ++t) {
      EXPECT_EQ(got[t].type, want.per_type[t].type);
      EXPECT_EQ(got[t].value_count, want.per_type[t].value_count);
      EXPECT_EQ(got[t].rs, want.per_type[t].rs) << name;
      EXPECT_EQ(got[t].proven, want.per_type[t].proven);
    }
  }
}

TEST(Engine, ReduceMatchesOneShotCoreCallByteForByte) {
  const Ddg d = ddg::build_kernel("fir8", ddg::superscalar_model());
  const std::vector<int> limits{6, 6};
  const core::PipelineOptions opts;
  const core::PipelineResult want =
      core::ensure_limits(d.normalized(), limits, opts);

  AnalysisEngine engine{EngineConfig{}};
  const Response resp =
      engine.run(service::make_reduce_request(d, limits, opts));
  ASSERT_TRUE(resp.payload->ok) << resp.payload->error;
  EXPECT_EQ(resp.payload->success, want.success);
  // Byte-identical reduced DDG.
  EXPECT_EQ(resp.payload->out_ddg, ddg::to_text(want.out));
  const auto& got = service::reduce_data(*resp.payload).per_type;
  ASSERT_EQ(got.size(), want.per_type.size());
  for (std::size_t t = 0; t < want.per_type.size(); ++t) {
    EXPECT_EQ(got[t].status, want.per_type[t].status);
    EXPECT_EQ(got[t].achieved_rs, want.per_type[t].achieved_rs);
    EXPECT_EQ(got[t].arcs_added, want.per_type[t].arcs_added);
    EXPECT_EQ(got[t].ilp_loss,
              static_cast<long long>(want.per_type[t].ilp_loss()));
  }
}

TEST(Engine, DuplicateRequestHitsCacheWithIdenticalBytes) {
  AnalysisEngine engine{EngineConfig{}};
  Request req = service::parse_request_line("analyze kernel=liv-loop7", 1);
  const Response first = engine.run(Request(req));
  const Response second = engine.run(Request(req));
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.payload, first.payload) << "hit must share the payload";
  // Rendered lines agree on everything except delivery metadata.
  auto a = service::parse_fields(service::render_response(first));
  auto b = service::parse_fields(service::render_response(second));
  a.erase("cached"), a.erase("ms");
  b.erase("cached"), b.erase("ms");
  EXPECT_EQ(a, b);
  const auto st = engine.stats();
  EXPECT_EQ(st.cache_hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_GT(st.hit_rate(), 0.0);
}

TEST(Engine, RenumberedAndRenamedInputHitsSameEntry) {
  const Ddg d = ddg::build_kernel("liv-loop5", ddg::superscalar_model());
  AnalysisEngine engine{EngineConfig{}};
  const Response first = engine.run(service::make_analyze_request(d));
  Request perm = service::make_analyze_request(
      test::permuted_copy(d, test::reversed_order(d), /*rename=*/true));
  perm.name = "permuted";
  const Response second = engine.run(std::move(perm));
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.fingerprint, first.fingerprint);
  const auto& fa = service::analyze_data(*first.payload).per_type;
  const auto& sa = service::analyze_data(*second.payload).per_type;
  ASSERT_EQ(sa.size(), fa.size());
  for (std::size_t t = 0; t < fa.size(); ++t) {
    EXPECT_EQ(sa[t].rs, fa[t].rs);
  }
}

TEST(Engine, DifferentOptionsMissSeparately) {
  AnalysisEngine engine{EngineConfig{}};
  Request exact = service::parse_request_line("analyze kernel=liv-loop1", 1);
  Request greedy =
      service::parse_request_line("analyze kernel=liv-loop1 engine=greedy", 2);
  engine.run(std::move(exact));
  const Response r = engine.run(std::move(greedy));
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ(engine.stats().misses, 2u);
}

TEST(Engine, ConcurrentDuplicatesComputeOnce) {
  EngineConfig cfg;
  cfg.threads = 4;
  AnalysisEngine engine(cfg);
  const std::vector<std::string> names{"lin-ddot", "fir8", "horner8"};
  std::vector<std::future<Response>> futures;
  for (int round = 0; round < 8; ++round) {
    for (const std::string& n : names) {
      futures.push_back(
          engine.submit(service::parse_request_line("analyze kernel=" + n, 1)));
    }
  }
  for (auto& f : futures) {
    const Response r = f.get();
    ASSERT_TRUE(r.payload->ok) << r.payload->error;
  }
  const auto st = engine.stats();
  EXPECT_EQ(st.completed, futures.size());
  EXPECT_EQ(st.misses, names.size())
      << "single-flight must collapse concurrent duplicates";
  EXPECT_EQ(st.cache_hits + st.coalesced, futures.size() - names.size());
  EXPECT_EQ(st.queue_depth, 0u);
}

TEST(Engine, ErrorsAreReportedAndNotCached) {
  AnalysisEngine engine{EngineConfig{}};
  const Request bad = service::make_reduce_request(
      ddg::build_kernel("fir8", ddg::superscalar_model()),
      {4});  // needs one limit per type (2)
  const Response r1 = engine.run(Request(bad));
  EXPECT_FALSE(r1.payload->ok);
  EXPECT_FALSE(r1.payload->error.empty());
  const Response r2 = engine.run(Request(bad));
  EXPECT_FALSE(r2.cache_hit) << "error results must not be cached";
  const auto st = engine.stats();
  EXPECT_EQ(st.errors, 2u);
  EXPECT_EQ(st.cache_entries, 0u);
  // And the error renders as a protocol error line.
  const auto fields = service::parse_fields(service::render_response(r1));
  EXPECT_EQ(fields.at("status"), "error");
  EXPECT_FALSE(fields.at("msg").empty());
}

TEST(Engine, StatsTrackLatencyPercentiles) {
  AnalysisEngine engine{EngineConfig{}};
  for (int i = 0; i < 4; ++i) {
    engine.run(service::parse_request_line("analyze kernel=lin-dscal", 1));
  }
  const auto st = engine.stats();
  EXPECT_EQ(st.completed, 4u);
  EXPECT_GE(st.p95_ms, st.p50_ms);
  EXPECT_GE(st.p99_ms, st.p95_ms);
  EXPECT_GE(st.max_ms, st.p99_ms);
  EXPECT_GT(st.max_ms, 0.0);
}

// Per-op slices of an EngineStats snapshot, summed for the tiling checks.
struct OpSums {
  std::uint64_t submitted = 0, hits = 0, misses = 0;
};
OpSums sum_per_op(const service::EngineStats& st) {
  OpSums s;
  for (const auto& [name, op] : st.per_op) {
    s.submitted += op.submitted;
    s.hits += op.hits;
    s.misses += op.misses;
  }
  return s;
}

TEST(Engine, CountersTileAcrossMixedWorkload) {
  const auto dir = std::filesystem::temp_directory_path() / "rs_tile_cache";
  std::filesystem::remove_all(dir);
  EngineConfig cfg;
  cfg.threads = 4;
  cfg.cache_dir = dir.string();
  {
    // Populate the disk tier, then restart so its hits land as disk_hits.
    AnalysisEngine warmup(cfg);
    warmup.run(service::parse_request_line("analyze kernel=lin-ddot", 1));
  }
  AnalysisEngine engine(cfg);
  // Disk hit + memory hit on the same entry.
  engine.run(service::parse_request_line("analyze kernel=lin-ddot", 1));
  engine.run(service::parse_request_line("analyze kernel=lin-ddot", 2));
  // Misses across two operations, plus concurrent duplicates (coalesces).
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 6; ++i) {
    futs.push_back(engine.submit(
        service::parse_request_line("reduce kernel=fir8 limits=16,16", 10)));
  }
  for (auto& f : futs) f.get();
  // An error response must also land in exactly one bucket (a miss).
  engine.run(service::make_reduce_request(
      ddg::build_kernel("fir8", ddg::superscalar_model()), {4}));
  engine.wait_idle();

  const auto st = engine.stats();
  EXPECT_EQ(st.completed, 9u);
  // Whether a duplicate coalesces or lands as a memory hit is a race
  // against the first solve; only the bucket *union* is deterministic.
  EXPECT_GE(st.memory_hits, 1u);
  EXPECT_EQ(st.disk_hits, 1u);
  EXPECT_EQ(st.errors, 1u);
  EXPECT_TRUE(st.counters_tile())
      << st.memory_hits << " + " << st.disk_hits << " + " << st.coalesced
      << " + " << st.misses << " != " << st.completed;
  // Per-op slices tile the aggregates (ISSUE 6 satellite): hits cover the
  // store tiers and coalesces, misses the computed solves, errors included.
  const OpSums sums = sum_per_op(st);
  EXPECT_EQ(sums.submitted, st.completed);
  EXPECT_EQ(sums.hits, st.cache_hits + st.coalesced);
  EXPECT_EQ(sums.misses, st.misses);
  std::filesystem::remove_all(dir);
}

TEST(Engine, CountersTileAfterCancellations) {
  EngineConfig cfg;
  cfg.threads = 2;
  AnalysisEngine engine(cfg);
  // A slow solve plus a coalesced duplicate, both cancelled mid-flight:
  // the owner counts as a miss, the detached waiter as a coalesce, and
  // the buckets must still tile `completed`.
  Request slow = service::parse_request_line(
      "analyze kernel=liv-loop23 engine=exact budget=30", 1);
  auto f1 = engine.submit(Request(slow));
  auto f2 = engine.submit(Request(slow));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  engine.cancel_all();
  f1.get();
  f2.get();
  engine.wait_idle();
  const auto st = engine.stats();
  EXPECT_EQ(st.completed, 2u);
  EXPECT_TRUE(st.counters_tile())
      << st.memory_hits << " + " << st.disk_hits << " + " << st.coalesced
      << " + " << st.misses << " != " << st.completed;
  const OpSums sums = sum_per_op(st);
  EXPECT_EQ(sums.submitted, st.completed);
  EXPECT_EQ(sums.hits + sums.misses, st.completed);
}

TEST(Protocol, ParsesStatsVerb) {
  const service::Command c = service::parse_command_line("stats", 1);
  EXPECT_EQ(c.kind, service::CommandKind::Stats);
  using support::PreconditionError;
  EXPECT_THROW(service::parse_command_line("stats now", 1),
               PreconditionError);
  EXPECT_THROW(service::parse_request_line("stats", 1), PreconditionError);
}

TEST(Protocol, StatsLineTilesAndKeepsSchemaStableColdVsWarm) {
  AnalysisEngine engine{EngineConfig{}};
  engine.run(service::parse_request_line("analyze kernel=lin-ddot", 1));
  engine.run(service::parse_request_line("reduce kernel=fir8 limits=16,16",
                                         2));
  const std::string cold = service::render_stats_line(engine.stats());
  const auto cf = service::parse_fields(cold);
  EXPECT_EQ(cf.at(""), "stats");
  EXPECT_EQ(cf.at("submitted"), "2");
  EXPECT_EQ(cf.at("completed"), "2");
  EXPECT_EQ(cf.at("misses"), "2");
  EXPECT_EQ(cf.at("ops"), "2");
  EXPECT_EQ(cf.at("op.analyze.submitted"), "1");
  EXPECT_EQ(cf.at("op.reduce.submitted"), "1");
  // The tiling invariant holds on the rendered line itself.
  EXPECT_EQ(support::parse_ll(cf.at("memory_hits"), "k") +
                support::parse_ll(cf.at("disk_hits"), "k") +
                support::parse_ll(cf.at("coalesced"), "k") +
                support::parse_ll(cf.at("misses"), "k"),
            support::parse_ll(cf.at("completed"), "k"));

  // Warm pass: same operation mix, so the key schema must be byte-stable —
  // identical key sets, only values differ (the acceptance bar for
  // machine consumers diffing cold vs warm snapshots).
  engine.run(service::parse_request_line("analyze kernel=lin-ddot", 3));
  engine.run(service::parse_request_line("reduce kernel=fir8 limits=16,16",
                                         4));
  const auto wf =
      service::parse_fields(service::render_stats_line(engine.stats()));
  std::vector<std::string> cold_keys, warm_keys;
  for (const auto& [k, v] : cf) cold_keys.push_back(k);
  for (const auto& [k, v] : wf) warm_keys.push_back(k);
  EXPECT_EQ(cold_keys, warm_keys);
  EXPECT_EQ(wf.at("memory_hits"), "2");
  EXPECT_EQ(wf.at("op.analyze.hits"), "1");
}

// ---------------------------------------------------------------------------
// cancellation / drain / budgets

TEST(Protocol, ParsesCancelAndDrainVerbs) {
  const service::Command c1 = service::parse_command_line("cancel 7", 1);
  EXPECT_EQ(c1.kind, service::CommandKind::Cancel);
  EXPECT_EQ(c1.cancel_id, 7u);
  const service::Command c2 = service::parse_command_line("cancel id=42", 1);
  EXPECT_EQ(c2.kind, service::CommandKind::Cancel);
  EXPECT_EQ(c2.cancel_id, 42u);
  const service::Command c3 = service::parse_command_line("drain", 1);
  EXPECT_EQ(c3.kind, service::CommandKind::Drain);
  // Submissions pass through unchanged.
  const service::Command c4 =
      service::parse_command_line("analyze kernel=lin-ddot", 9);
  EXPECT_EQ(c4.kind, service::CommandKind::Submit);
  EXPECT_EQ(c4.request.id, 9u);

  using support::PreconditionError;
  EXPECT_THROW(service::parse_command_line("cancel", 1), PreconditionError);
  EXPECT_THROW(service::parse_command_line("cancel x", 1), PreconditionError);
  EXPECT_THROW(service::parse_command_line("cancel 1 2", 1),
               PreconditionError);
  EXPECT_THROW(service::parse_command_line("drain now", 1),
               PreconditionError);
  // The request-only parser rejects control verbs outright.
  EXPECT_THROW(service::parse_request_line("cancel 7", 1), PreconditionError);
  EXPECT_THROW(service::parse_request_line("drain", 1), PreconditionError);

  EXPECT_EQ(service::render_cancel_ack(7, true), "cancelled id=7 found=1");
  EXPECT_EQ(service::render_cancel_ack(9, false), "cancelled id=9 found=0");
  EXPECT_EQ(service::render_drain_ack(), "drained");
}

TEST(Protocol, ResultLineCarriesStopCauseAndNodes) {
  AnalysisEngine engine{EngineConfig{}};
  const Response resp =
      engine.run(service::parse_request_line("analyze kernel=lin-ddot", 5));
  const auto fields = service::parse_fields(service::render_response(resp));
  EXPECT_EQ(fields.at("stop"), "proven");
  ASSERT_TRUE(fields.count("nodes"));
  EXPECT_EQ(fields.at("nodes"),
            std::to_string(resp.payload->stats.nodes));
}

// A DDG whose exact RS search reliably runs for many seconds unbudgeted
// (dense layered pipeline: huge killing-function space), so a cancel issued
// immediately after submission is guaranteed to land mid-flight.
Ddg slow_instance(std::uint64_t seed) {
  support::Rng rng(seed);
  ddg::LayeredDagParams p;
  p.layers = 6;
  p.min_width = 4;
  p.max_width = 6;
  p.edge_prob = 0.8;
  return ddg::random_layered(rng, ddg::superscalar_model(), p);
}

Request slow_analyze(std::uint64_t id, std::uint64_t seed) {
  Request req = service::make_analyze_request(slow_instance(seed));
  req.id = id;
  return req;
}

TEST(Engine, CancelAbortsInFlightSolveAndSkipsCache) {
  EngineConfig cfg;
  cfg.threads = 1;
  AnalysisEngine engine(cfg);
  auto fut = engine.submit(slow_analyze(7, 11));
  ASSERT_TRUE(engine.cancel(7));
  const Response resp = fut.get();
  ASSERT_TRUE(resp.payload->ok);
  EXPECT_FALSE(resp.cache_hit);
  EXPECT_EQ(resp.payload->stats.stop, support::StopCause::Cancelled);
  // The pressured (many-value) type cannot have been proven; value-free
  // types are trivially proven even under cancellation.
  for (const auto& t : service::analyze_data(*resp.payload).per_type) {
    if (t.value_count >= 10) {
      EXPECT_FALSE(t.proven);
    }
  }

  // Not cached: an identical request must recompute (cancel it too).
  auto fut2 = engine.submit(slow_analyze(8, 11));
  ASSERT_TRUE(engine.cancel(8));
  const Response r2 = fut2.get();
  EXPECT_FALSE(r2.cache_hit) << "cancelled results must not be cached";
  EXPECT_EQ(r2.payload->stats.stop, support::StopCause::Cancelled);

  const auto st = engine.stats();
  EXPECT_EQ(st.cancelled, 2u);
  EXPECT_EQ(st.cache_entries, 0u);
  // Completed requests are no longer cancellable.
  EXPECT_FALSE(engine.cancel(7));
}

TEST(Engine, DrainCancelsQueuedButFinishesRunning) {
  EngineConfig cfg;
  cfg.threads = 1;
  AnalysisEngine engine(cfg);
  // First request: a one-second budget, so the running solve drains as a
  // timeout. The queued ones behind it are cancelled by drain(). The sleep
  // lets the single worker actually *start* the first request (drain only
  // spares started flights); its solve runs far past one second unbudgeted,
  // so it is still in flight when drain() is called.
  Request first = slow_analyze(1, 21);
  first.budget_seconds = 1.0;
  auto f1 = engine.submit(std::move(first));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto f2 = engine.submit(slow_analyze(2, 22));
  auto f3 = engine.submit(slow_analyze(3, 23));
  engine.drain();
  const Response r1 = f1.get();
  const Response r2 = f2.get();
  const Response r3 = f3.get();
  EXPECT_EQ(r1.payload->stats.stop, support::StopCause::TimedOut);
  EXPECT_EQ(r2.payload->stats.stop, support::StopCause::Cancelled);
  EXPECT_EQ(r3.payload->stats.stop, support::StopCause::Cancelled);
  const auto st = engine.stats();
  EXPECT_EQ(st.completed, 3u);
  EXPECT_EQ(st.cancelled, 2u);
  EXPECT_EQ(st.timed_out, 1u);
}

TEST(Engine, CancelReleasesCoalescedWaiter) {
  EngineConfig cfg;
  cfg.threads = 2;
  AnalysisEngine engine(cfg);
  auto f1 = engine.submit(slow_analyze(1, 41));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Identical DDG + options: coalesces onto request 1's in-flight solve.
  auto f2 = engine.submit(slow_analyze(2, 41));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(engine.cancel(2));
  // The waiter detaches promptly with a Cancelled payload instead of
  // riding the owner's (still running) solve to completion.
  const Response r2 = f2.get();
  EXPECT_EQ(r2.payload->stats.stop, support::StopCause::Cancelled);
  ASSERT_TRUE(engine.cancel(1));
  const Response r1 = f1.get();
  EXPECT_EQ(r1.payload->stats.stop, support::StopCause::Cancelled);
  EXPECT_EQ(engine.stats().cancelled, 2u);
}

TEST(Engine, TimedOutSolveReportsTimeoutAndIsCached) {
  AnalysisEngine engine{EngineConfig{}};
  Request req = slow_analyze(1, 31);
  req.budget_seconds = 1e-9;
  const Response r1 = engine.run(Request(req));
  ASSERT_TRUE(r1.payload->ok);
  EXPECT_EQ(r1.payload->stats.stop, support::StopCause::TimedOut);
  for (const auto& t : service::analyze_data(*r1.payload).per_type) {
    if (t.value_count > 0) {
      EXPECT_FALSE(t.proven);
    }
  }
  // Same budget, same DDG: a deterministic "best effort within budget"
  // answer, so it is served from the cache.
  const Response r2 = engine.run(Request(req));
  EXPECT_TRUE(r2.cache_hit);
  const auto st = engine.stats();
  EXPECT_EQ(st.timed_out, 1u);
}

}  // namespace
}  // namespace rs
