// Experiment harness: corpora, sweeps, and the section-5 category algebra.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ddg/kernels.hpp"
#include "exp/harness.hpp"

namespace rs::exp {
namespace {

CorpusOptions small_corpus() {
  CorpusOptions o;
  o.random_count = 4;
  o.random_sizes = {8, 10};
  return o;
}

TEST(Corpus, StandardCorpusShape) {
  const auto corpus = standard_corpus(small_corpus());
  // every kernel x 2 machine models + 2 sizes x 4 random.
  EXPECT_EQ(corpus.size(), ddg::kernel_names().size() * 2 + 8);
  std::set<std::string> names;
  for (const auto& inst : corpus) {
    EXPECT_TRUE(names.insert(inst.name).second) << "duplicate " << inst.name;
    EXPECT_NO_THROW(inst.ddg.validate());
  }
}

TEST(Corpus, DeterministicAcrossCalls) {
  const auto a = standard_corpus(small_corpus());
  const auto b = standard_corpus(small_corpus());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].ddg.op_count(), b[i].ddg.op_count());
  }
}

TEST(CompareRs, HeuristicNeverAboveExact) {
  CorpusOptions copts = small_corpus();
  copts.vliw_kernels = false;  // keep runtime modest
  const auto corpus = standard_corpus(copts);
  RsSweepOptions opts;
  opts.exact_time_limit = 20;
  const auto rows = compare_rs(corpus, opts);
  ASSERT_EQ(rows.size(), corpus.size());
  int proven = 0;
  for (const auto& row : rows) {
    SCOPED_TRACE(row.name);
    EXPECT_GT(row.n_values, 0);
    if (!row.proven) continue;
    ++proven;
    EXPECT_LE(row.rs_heuristic, row.rs_exact);
    EXPECT_GE(row.error(), 0);
  }
  // The vast majority of this small corpus must prove within budget.
  EXPECT_GE(proven, static_cast<int>(rows.size()) - 2);
}

TEST(CompareRs, SingleThreadMatchesParallel) {
  CorpusOptions copts;
  copts.vliw_kernels = false;
  copts.random_count = 2;
  copts.random_sizes = {8};
  const auto corpus = standard_corpus(copts);
  RsSweepOptions seq;
  seq.threads = 1;
  RsSweepOptions par;
  par.threads = 8;
  const auto a = compare_rs(corpus, seq);
  const auto b = compare_rs(corpus, par);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rs_exact, b[i].rs_exact);
    EXPECT_EQ(a[i].rs_heuristic, b[i].rs_heuristic);
  }
}

TEST(Categories, LabelsAndAlgebra) {
  EXPECT_STREQ(category_label(ReductionCategory::OptimalRsOptimalIlp),
               "(i)(a)  RS=RS* ILP=ILP*");
  EXPECT_STREQ(category_label(ReductionCategory::HeuristicAboveOptimal),
               "(iii)   RS<RS*");
  CategoryBreakdown b;
  b.usable = 4;
  b.count[0] = 3;
  b.count[3] = 1;
  EXPECT_DOUBLE_EQ(b.percent(ReductionCategory::OptimalRsOptimalIlp), 75.0);
  EXPECT_DOUBLE_EQ(b.percent(ReductionCategory::SubRsOptimalIlp), 25.0);
  EXPECT_DOUBLE_EQ(b.percent(ReductionCategory::SubRsSubIlp), 0.0);
}

TEST(CompareReduction, PaperImpossibleCellsStayEmpty) {
  // Small but real sweep. The two cells the paper proves impossible —
  // (iii) RS < RS* and, under the lexicographic optimal, (i)(c) — must be
  // empty; every usable row must satisfy the dominance invariants.
  CorpusOptions copts;
  copts.vliw_kernels = false;
  copts.random_count = 3;
  copts.random_sizes = {8, 10};
  auto corpus = standard_corpus(copts);
  // Drop the known budget-buster so the test stays fast.
  corpus.erase(std::remove_if(corpus.begin(), corpus.end(),
                              [](const Instance& i) {
                                return i.name.find("complex-mul2") !=
                                       std::string::npos;
                              }),
               corpus.end());
  ReductionSweepOptions opts;
  opts.r_offsets = {1};
  opts.time_limit = 15;
  const auto rows = compare_reduction(corpus, opts);
  const CategoryBreakdown sum = summarize(rows);
  EXPECT_GT(sum.usable, 0u);
  EXPECT_EQ(sum.count[static_cast<int>(
                ReductionCategory::HeuristicAboveOptimal)],
            0u)
      << "heuristic reported a better reduction than the proven optimum";
  for (const auto& row : rows) {
    if (!row.usable) continue;
    SCOPED_TRACE(row.name);
    EXPECT_LE(row.rs_heuristic, row.R);
    EXPECT_LE(row.rs_optimal, row.R);
    EXPECT_GE(row.rs_optimal, row.rs_heuristic);
    EXPECT_GE(row.ilp_optimal, 0);
    EXPECT_GE(row.ilp_heuristic, 0);
  }
}

}  // namespace
}  // namespace rs::exp
