#include <gtest/gtest.h>

#include <set>

#include "ddg/builder.hpp"
#include "ddg/ddg.hpp"
#include "ddg/generators.hpp"
#include "ddg/io.hpp"
#include "ddg/kernels.hpp"
#include "ddg/machine.hpp"
#include "graph/topo.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"

namespace rs::ddg {
namespace {

TEST(Ddg, AddOpsAndArcs) {
  Ddg d(2, "t");
  Operation a;
  a.name = "a";
  a.latency = 3;
  const NodeId na = d.add_op(a);
  d.mark_writes(na, kFloatReg);
  Operation b;
  b.name = "b";
  const NodeId nb = d.add_op(b);
  d.add_flow(na, nb, kFloatReg, 3);
  d.add_serial(na, nb, 0);
  EXPECT_EQ(d.op_count(), 2);
  EXPECT_EQ(d.graph().edge_count(), 2);
  EXPECT_EQ(d.consumers(na, kFloatReg), std::vector<NodeId>{nb});
  EXPECT_TRUE(d.consumers(na, kIntReg).empty());
  EXPECT_EQ(d.values_of_type(kFloatReg), std::vector<NodeId>{na});
}

TEST(Ddg, OneValuePerTypeEnforced) {
  Ddg d(2, "t");
  const NodeId v = d.add_op(Operation{"a", OpClass::IntAlu, 1, 0, 0, {}});
  d.mark_writes(v, kIntReg);
  EXPECT_THROW(d.mark_writes(v, kIntReg), support::PreconditionError);
  d.mark_writes(v, kFloatReg);  // different type is fine (section 2)
}

TEST(Ddg, FlowFromNonWriterThrows) {
  Ddg d(2, "t");
  const NodeId a = d.add_op(Operation{"a", OpClass::IntAlu, 1, 0, 0, {}});
  const NodeId b = d.add_op(Operation{"b", OpClass::IntAlu, 1, 0, 0, {}});
  EXPECT_THROW(d.add_flow(a, b, kIntReg, 1), support::PreconditionError);
}

TEST(Ddg, ValidateRejectsCycle) {
  Ddg d(1, "t");
  const NodeId a = d.add_op(Operation{"a", OpClass::IntAlu, 1, 0, 0, {}});
  const NodeId b = d.add_op(Operation{"b", OpClass::IntAlu, 1, 0, 0, {}});
  d.add_serial(a, b, 1);
  d.add_serial(b, a, 1);
  EXPECT_THROW(d.validate(), support::PreconditionError);
}

TEST(Ddg, ValidateRejectsDegenerateFlowLatency) {
  Ddg d(1, "t");
  Operation writer{"w", OpClass::Load, 3, 0, 2, {}};  // writes at +2
  const NodeId a = d.add_op(writer);
  d.mark_writes(a, 0);
  Operation reader{"r", OpClass::IntAlu, 1, 0, 0, {}};  // reads at +0
  const NodeId b = d.add_op(reader);
  d.add_flow(a, b, 0, 1);  // read at sigma+0+1 < write at sigma+2
  EXPECT_THROW(d.validate(), support::PreconditionError);
}

TEST(Ddg, NormalizeAddsBottomOnce) {
  KernelBuilder b(superscalar_model(), "t");
  const auto x = b.live_in(kFloatReg, "x");
  b.fmul("y", x, x);  // y unconsumed
  const Ddg raw = b.build_raw();
  EXPECT_FALSE(raw.bottom().has_value());
  const Ddg norm = raw.normalized();
  ASSERT_TRUE(norm.bottom().has_value());
  EXPECT_EQ(norm.op_count(), raw.op_count() + 1);
  // Idempotent.
  const Ddg again = norm.normalized();
  EXPECT_EQ(again.op_count(), norm.op_count());
  // All values now consumed.
  for (RegType t = 0; t < norm.type_count(); ++t) {
    for (const NodeId v : norm.values_of_type(t)) {
      EXPECT_FALSE(norm.consumers(v, t).empty());
    }
  }
  // ⊥ is last in every topological order: it has no out-arcs and every
  // other node reaches it.
  const NodeId bot = *norm.bottom();
  EXPECT_TRUE(norm.graph().out_edges(bot).empty());
  EXPECT_EQ(static_cast<int>(norm.graph().in_edges(bot).size()),
            norm.op_count() - 1);
}

TEST(Machine, SuperscalarHasZeroOffsets) {
  const MachineModel m = superscalar_model();
  EXPECT_FALSE(m.visible_offsets());
  for (const OpClass c : {OpClass::Load, OpClass::FpMul, OpClass::FpDiv}) {
    EXPECT_EQ(m.read_offset(c), 0);
    EXPECT_EQ(m.write_offset(c), 0);
  }
}

TEST(Machine, VliwWritesAtEndOfPipe) {
  const MachineModel m = vliw_model();
  EXPECT_TRUE(m.visible_offsets());
  EXPECT_EQ(m.write_offset(OpClass::Load), m.latency(OpClass::Load) - 1);
  EXPECT_EQ(m.read_offset(OpClass::FpMul), 0);
}

TEST(Builder, OperandTypeInference) {
  KernelBuilder b(superscalar_model(), "t");
  const auto p = b.live_in(kIntReg, "p");
  const auto l = b.fload("l", p);  // consumes int, writes float
  const auto m = b.fmul("m", l, l);
  const Ddg d = b.build_raw();
  EXPECT_TRUE(d.op(l).writes_type(kFloatReg));
  EXPECT_EQ(d.consumers(p, kIntReg), std::vector<NodeId>{l});
  EXPECT_EQ(d.consumers(l, kFloatReg), std::vector<NodeId>{m});
}

TEST(Kernels, AllBuildValidateAndNormalize) {
  for (const auto& model : {superscalar_model(), vliw_model()}) {
    const auto corpus = kernel_corpus(model);
    EXPECT_EQ(corpus.size(), kernel_names().size());
    for (const auto& [name, dag] : corpus) {
      SCOPED_TRACE(name + "/" + model.name());
      EXPECT_NO_THROW(dag.validate());
      EXPECT_TRUE(dag.bottom().has_value());
      EXPECT_GE(dag.op_count(), 5);
      EXPECT_FALSE(dag.values_of_type(kFloatReg).empty());
      EXPECT_TRUE(graph::is_dag(dag.graph()));
    }
  }
}

TEST(Kernels, BuildByNameMatchesDirectCall) {
  const MachineModel m = superscalar_model();
  const Ddg by_name = build_kernel("lin-ddot", m);
  const Ddg direct = lin_ddot(m);
  EXPECT_EQ(by_name.op_count(), direct.op_count());
  EXPECT_EQ(by_name.graph().edge_count(), direct.graph().edge_count());
  EXPECT_THROW(build_kernel("no-such-kernel", m), support::PreconditionError);
}

TEST(Kernels, ShapesMatchSourceKernels) {
  const MachineModel m = superscalar_model();
  // ddot: 2 loads, 1 mul, 1 add; horner8: serial chain; fir8: 8 muls.
  const Ddg ddot = lin_ddot(m);
  int loads = 0, muls = 0;
  for (NodeId v = 0; v < ddot.op_count(); ++v) {
    loads += ddot.op(v).cls == OpClass::Load;
    muls += ddot.op(v).cls == OpClass::FpMul;
  }
  EXPECT_EQ(loads, 2);
  EXPECT_EQ(muls, 1);

  const Ddg fir = fir8(m);
  muls = 0;
  for (NodeId v = 0; v < fir.op_count(); ++v) {
    muls += fir.op(v).cls == OpClass::FpMul;
  }
  EXPECT_EQ(muls, 8);
}

TEST(Generators, RandomDagDeterministicInSeed) {
  const MachineModel m = superscalar_model();
  support::Rng r1(5), r2(5);
  RandomDagParams p;
  p.n_ops = 14;
  const Ddg a = random_dag(r1, m, p);
  const Ddg b = random_dag(r2, m, p);
  EXPECT_EQ(to_text(a), to_text(b));
}

TEST(Generators, RandomDagSweepIsValid) {
  const MachineModel m = superscalar_model();
  support::Rng rng(99);
  for (int i = 0; i < 30; ++i) {
    RandomDagParams p;
    p.n_ops = 4 + i % 12;
    const Ddg d = random_dag(rng, m, p);
    EXPECT_NO_THROW(d.validate());
    EXPECT_TRUE(d.bottom().has_value());
  }
}

TEST(Generators, LayeredKeepsValuesConsumed) {
  const MachineModel m = superscalar_model();
  support::Rng rng(3);
  LayeredDagParams p;
  p.layers = 4;
  const Ddg d = random_layered(rng, m, p);
  d.validate();
  // Every non-last-layer value must have a non-bottom consumer.
  int consumed_by_real_op = 0;
  for (const NodeId v : d.values_of_type(kFloatReg)) {
    for (const NodeId c : d.consumers(v, kFloatReg)) {
      if (c != *d.bottom()) ++consumed_by_real_op;
    }
  }
  EXPECT_GT(consumed_by_real_op, 0);
}

TEST(Generators, ExpressionTreeHasSingleRoot) {
  const MachineModel m = superscalar_model();
  support::Rng rng(8);
  const Ddg d = random_expression_tree(rng, m, 9);
  d.validate();
  // Exactly one value flows (only) to ⊥: the root.
  int roots = 0;
  for (const NodeId v : d.values_of_type(kFloatReg)) {
    const auto cons = d.consumers(v, kFloatReg);
    if (cons.size() == 1 && cons[0] == *d.bottom()) ++roots;
  }
  EXPECT_EQ(roots, 1);
}

TEST(Io, RoundTripPreservesStructure) {
  for (const auto& [name, dag] : kernel_corpus(vliw_model())) {
    SCOPED_TRACE(name);
    const std::string text = to_text(dag);
    const Ddg back = from_text(text);
    EXPECT_EQ(back.op_count(), dag.op_count());
    EXPECT_EQ(back.graph().edge_count(), dag.graph().edge_count());
    EXPECT_EQ(to_text(back), text);  // canonical fixed point
  }
}

TEST(Io, ParseErrorsAreLineNumbered) {
  try {
    from_text("ddg t types=1\nop a class=zap lat=1 dr=0 dw=0\n");
    FAIL();
  } catch (const support::PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(from_text(""), support::PreconditionError);
  EXPECT_THROW(from_text("op a class=ialu lat=1 dr=0 dw=0\n"),
               support::PreconditionError);
  EXPECT_THROW(from_text("ddg t types=1\nflow a b type=0 lat=1\n"),
               support::PreconditionError);
}

TEST(Io, CommentsAndBlankLines) {
  const Ddg d = from_text(
      "# comment\n"
      "ddg demo types=1\n"
      "\n"
      "op a class=load lat=3 dr=0 dw=0 writes=0\n"
      "op b class=store lat=1 dr=0 dw=0  # trailing comment\n"
      "flow a b type=0 lat=3\n");
  EXPECT_EQ(d.op_count(), 2);
  EXPECT_EQ(d.name(), "demo");
}

TEST(Io, DotExportMentionsAllOps) {
  const Ddg d = lin_dscal(superscalar_model());
  const std::string dot = d.to_dot();
  for (NodeId v = 0; v < d.op_count(); ++v) {
    EXPECT_NE(dot.find(d.op(v).name), std::string::npos);
  }
}

}  // namespace
}  // namespace rs::ddg
