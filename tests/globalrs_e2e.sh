#!/usr/bin/env bash
# Golden end-to-end exercise of the program (CFG-level) workloads on a
# committed .prog file:
#   1. the one-shot CLI, `rsat batch` and `rsat serve` answer globalrs and
#      globalreduce byte-identically (modulo the delivery fields cached=
#      and ms=) — they share the protocol parser and renderer,
#   2. a serve restart sharing --cache-dir serves the same lines from the
#      persistent disk tier (cached=1 plus a disk hit in the summary),
#   3. the per-operation summary rows name both operations.
# Usage: globalrs_e2e.sh /path/to/rsat /path/to/program.prog
set -u

RSAT="$1"
PROG="$2"
[ -x "$RSAT" ] || { echo "usage: globalrs_e2e.sh <rsat> <file.prog>"; exit 2; }
[ -f "$PROG" ] || { echo "missing .prog file $PROG"; exit 2; }

WORK="$(mktemp -d)"
SERVER_PID=""
trap 'kill "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

fail() {
  echo "FAIL: $*" >&2
  for log in "$WORK"/log*; do
    [ -f "$log" ] && { echo "--- $log" >&2; cat "$log" >&2; }
  done
  exit 1
}

strip_delivery() { sed -E 's/ (cached|ms)=[^ ]*//g'; }

REQ1="globalrs file=$PROG id=1"
REQ2="globalreduce file=$PROG limits=8,8 id=2"

# --- one-shot CLI ----------------------------------------------------------
ONE1=$("$RSAT" globalrs "file=$PROG" id=1 2>/dev/null | strip_delivery)
ONE2=$("$RSAT" globalreduce "file=$PROG" limits=8,8 id=2 2>/dev/null \
       | strip_delivery)
[ -n "$ONE1" ] || fail "one-shot globalrs produced nothing"
[ -n "$ONE2" ] || fail "one-shot globalreduce produced nothing"
case "$ONE1" in
  *"status=ok kind=globalrs"*) ;;
  *) fail "unexpected one-shot globalrs line: $ONE1" ;;
esac

# --- batch -----------------------------------------------------------------
BATCH=$(printf '%s\n%s\n' "$REQ1" "$REQ2" | "$RSAT" batch 2>"$WORK/log_batch")
B1=$(printf '%s\n' "$BATCH" | sed -n 1p | strip_delivery)
B2=$(printf '%s\n' "$BATCH" | sed -n 2p | strip_delivery)
[ "$B1" = "$ONE1" ] || fail "batch vs one-shot globalrs:
  batch:    $B1
  one-shot: $ONE1"
[ "$B2" = "$ONE2" ] || fail "batch vs one-shot globalreduce:
  batch:    $B2
  one-shot: $ONE2"
grep -q "op globalrs:" "$WORK/log_batch" \
  || fail "batch summary lacks the globalrs per-op row"
grep -q "op globalreduce:" "$WORK/log_batch" \
  || fail "batch summary lacks the globalreduce per-op row"

# --- serve -----------------------------------------------------------------
start_server() { # $1 = log path
  rm -f "$WORK/port"
  "$RSAT" serve --port 0 --port-file "$WORK/port" \
      --cache-dir "$WORK/cache" --threads 2 2>"$1" &
  SERVER_PID=$!
  for _ in $(seq 1 300); do
    [ -s "$WORK/port" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server died during startup"
    sleep 0.1
  done
  [ -s "$WORK/port" ] || fail "port file never appeared"
  PORT="$(cat "$WORK/port")"
}

stop_server() {
  kill -INT "$SERVER_PID" || fail "cannot signal server"
  wait "$SERVER_PID" || fail "server exited nonzero after SIGINT"
  SERVER_PID=""
}

request_two() { # sends both requests, fills S1/S2 (stripped) and RAW1/RAW2
  exec 3<>"/dev/tcp/127.0.0.1/$PORT" || fail "cannot connect to port $PORT"
  printf '%s\n%s\n' "$REQ1" "$REQ2" >&3
  IFS= read -r -t 60 RAW1 <&3 || fail "timed out waiting for reply 1"
  IFS= read -r -t 60 RAW2 <&3 || fail "timed out waiting for reply 2"
  exec 3<&- 3>&-
  S1=$(printf '%s' "$RAW1" | strip_delivery)
  S2=$(printf '%s' "$RAW2" | strip_delivery)
}

start_server "$WORK/log_serve1"
request_two
[ "$S1" = "$ONE1" ] || fail "serve vs one-shot globalrs:
  serve:    $S1
  one-shot: $ONE1"
[ "$S2" = "$ONE2" ] || fail "serve vs one-shot globalreduce:
  serve:    $S2
  one-shot: $ONE2"
# Same connection pattern again: the memory tier must answer identically.
request_two
case "$RAW1" in *" cached=1 "*) ;; *) fail "warm globalrs not cached" ;; esac
[ "$S1" = "$ONE1" ] || fail "memory-tier globalrs line drifted: $S1"
stop_server

# Fresh server, same cache dir: the disk tier must serve both lines.
start_server "$WORK/log_serve2"
request_two
case "$RAW1" in *" cached=1 "*) ;; *) fail "restart globalrs not a disk hit" ;; esac
case "$RAW2" in *" cached=1 "*) ;; *) fail "restart globalreduce not a disk hit" ;; esac
[ "$S1" = "$ONE1" ] || fail "disk-tier globalrs line drifted: $S1"
[ "$S2" = "$ONE2" ] || fail "disk-tier globalreduce line drifted: $S2"
stop_server
grep -Eq '\([0-9]+ mem, [1-9][0-9]* disk\)' "$WORK/log_serve2" \
  || fail "restart summary reports no disk hit"
grep -q "op globalrs:" "$WORK/log_serve2" \
  || fail "serve summary lacks the globalrs per-op row"

echo "PASS globalrs_e2e"
exit 0
