// Golden register-saturation values for the whole reconstructed kernel
// corpus under both machine models, proven by the exact engine and pinned
// here: any change to the DDG model semantics (lifetime intervals, flow
// latencies, normalization) or to the exact engine shows up as a diff in
// this table rather than as a silent shift in experiment results.
//
// The paper-level sanity encoded below: serial chains sit low (horner8's
// float RS comes from its nine coefficient live-ins), wide fan-ins sit at
// their parallelism (fir8 = 8 coefficients + 8 products), and the
// visible-offset (VLIW) model shifts lifetimes without changing these
// kernels' saturation (delta_r = 0 keeps the kill order; delta_w shifts
// every definition uniformly later).
#include <gtest/gtest.h>

#include "core/greedy_k.hpp"
#include "core/rs_exact.hpp"
#include "ddg/kernels.hpp"

namespace rs::core {
namespace {

struct Golden {
  const char* kernel;
  const char* model;
  int rs_float;
  int float_proven;
  int rs_int;
  int int_proven;
};

constexpr Golden kGolden[] = {
    {"lin-ddot", "superscalar", 3, 1, 4, 1},
    {"lin-daxpy", "superscalar", 3, 1, 4, 1},
    {"lin-dscal", "superscalar", 2, 1, 2, 1},
    {"liv-loop1", "superscalar", 6, 1, 7, 1},
    {"liv-loop5", "superscalar", 3, 1, 6, 1},
    {"liv-loop7", "superscalar", 11, 1, 12, 1},
    {"liv-loop23", "superscalar", 11, 1, 11, 1},
    {"whet-p3", "superscalar", 6, 1, 0, 1},
    {"whet-p8", "superscalar", 7, 1, 0, 1},
    {"spec-spice", "superscalar", 6, 1, 5, 1},
    {"spec-tomcatv", "superscalar", 8, 1, 8, 1},
    {"spec-dod", "superscalar", 8, 1, 6, 1},
    {"matmul-u4", "superscalar", 9, 1, 10, 1},
    {"fir8", "superscalar", 16, 1, 9, 1},
    {"horner8", "superscalar", 10, 1, 0, 1},
    {"estrin8", "superscalar", 11, 1, 0, 1},
    {"complex-mul2", "superscalar", 12, 1, 0, 1},
    {"liv-loop2", "superscalar", 5, 1, 8, 1},
    {"liv-loop4", "superscalar", 4, 1, 5, 1},
    {"liv-loop9", "superscalar", 18, 1, 11, 1},
    {"liv-loop11", "superscalar", 2, 1, 4, 1},
    {"liv-loop12", "superscalar", 2, 1, 5, 1},
    {"lin-dgefa", "superscalar", 5, 1, 5, 1},
    {"fft-bfly", "superscalar", 8, 1, 2, 1},
    {"stencil3-u2", "superscalar", 9, 1, 8, 1},
    {"lin-ddot", "vliw", 3, 1, 4, 1},
    {"lin-daxpy", "vliw", 3, 1, 4, 1},
    {"lin-dscal", "vliw", 2, 1, 2, 1},
    {"liv-loop1", "vliw", 6, 1, 7, 1},
    {"liv-loop5", "vliw", 3, 1, 6, 1},
    {"liv-loop7", "vliw", 11, 1, 12, 1},
    {"liv-loop23", "vliw", 11, 1, 11, 1},
    {"whet-p3", "vliw", 6, 1, 0, 1},
    {"whet-p8", "vliw", 7, 1, 0, 1},
    {"spec-spice", "vliw", 6, 1, 5, 1},
    {"spec-tomcatv", "vliw", 8, 1, 8, 1},
    {"spec-dod", "vliw", 8, 1, 6, 1},
    {"matmul-u4", "vliw", 9, 1, 10, 1},
    {"fir8", "vliw", 16, 1, 9, 1},
    {"horner8", "vliw", 10, 1, 0, 1},
    {"estrin8", "vliw", 11, 1, 0, 1},
    {"complex-mul2", "vliw", 12, 1, 0, 1},
    {"liv-loop2", "vliw", 5, 1, 8, 1},
    {"liv-loop4", "vliw", 4, 1, 5, 1},
    {"liv-loop9", "vliw", 18, 1, 11, 1},
    {"liv-loop11", "vliw", 2, 1, 4, 1},
    {"liv-loop12", "vliw", 2, 1, 5, 1},
    {"lin-dgefa", "vliw", 5, 1, 5, 1},
    {"fft-bfly", "vliw", 8, 1, 2, 1},
    {"stencil3-u2", "vliw", 9, 1, 8, 1},
};

class KernelGolden : public ::testing::TestWithParam<Golden> {};

TEST_P(KernelGolden, ExactSaturationMatchesPinnedValue) {
  const Golden& g = GetParam();
  const ddg::MachineModel model = std::string(g.model) == "vliw"
                                      ? ddg::vliw_model()
                                      : ddg::superscalar_model();
  const ddg::Ddg dag = ddg::build_kernel(g.kernel, model);
  const RsExactOptions opts;

  const TypeContext fctx(dag, ddg::kFloatReg);
  const RsExactResult rf =
      rs_exact(fctx, opts, support::SolveContext(60));
  EXPECT_EQ(rf.proven, g.float_proven == 1);
  EXPECT_EQ(rf.rs, g.rs_float) << g.kernel << "/" << g.model << " float";

  const TypeContext ictx(dag, ddg::kIntReg);
  const RsExactResult ri = rs_exact(ictx, opts, support::SolveContext(60));
  EXPECT_EQ(ri.proven, g.int_proven == 1);
  EXPECT_EQ(ri.rs, g.rs_int) << g.kernel << "/" << g.model << " int";

  // The heuristic stays within one register everywhere on this corpus.
  const RsEstimate heur = greedy_k(fctx);
  EXPECT_GE(heur.rs, g.rs_float - 1) << g.kernel << "/" << g.model;
  EXPECT_LE(heur.rs, g.rs_float);
}

std::string golden_name(const ::testing::TestParamInfo<Golden>& info) {
  std::string s = std::string(info.param.kernel) + "_" + info.param.model;
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(Corpus, KernelGolden, ::testing::ValuesIn(kGolden),
                         golden_name);

}  // namespace
}  // namespace rs::core
