#!/usr/bin/env bash
# End-to-end exercise of `rsat serve`:
#   1. start on an ephemeral port with a persistent --cache-dir plus the
#      telemetry artifacts (--trace-file, --metrics-json, --solve-log) and a
#      generous --slo-ms objective,
#   2. drive analyze / cancel / drain / stats through a client socket
#      (/dev/tcp), scrape the `metrics` verb twice and require the two warm
#      expositions to agree byte-for-byte modulo sample values,
#   3. SIGINT: the server drains and exits 0 with a summary, a schema-valid
#      JSONL trace and solve log (every line carries the documented required
#      keys), a metrics JSON whose counters tile, and a Prometheus
#      exposition that parses,
#   4. restart with the same --cache-dir: the same request must be served
#      from the disk tier (cached=1 with an empty memory store, and the
#      summary reports a disk hit), and the stats verb's key schema must be
#      byte-stable between the cold and warm sessions.
# Usage: serve_e2e.sh /path/to/rsat
set -u

RSAT="$1"
WORK="$(mktemp -d)"
SERVER_PID=""
trap 'kill "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

# Schema validation needs a JSON parser; the protocol exercise does not.
# Keep the e2e meaningful on minimal images by degrading, loudly.
HAVE_PY=1
command -v python3 >/dev/null 2>&1 || {
  HAVE_PY=0
  echo "WARN: python3 not found; skipping JSON/exposition schema checks" >&2
}

fail() {
  echo "FAIL: $*" >&2
  for log in "$WORK"/log*; do
    [ -f "$log" ] && { echo "--- $log" >&2; cat "$log" >&2; }
  done
  exit 1
}

start_server() { # $1 = log path
  rm -f "$WORK/port"
  "$RSAT" serve --port 0 --port-file "$WORK/port" \
      --cache-dir "$WORK/cache" --threads 2 \
      --trace-file "$1.trace.jsonl" --metrics-json "$1.metrics.json" \
      --solve-log "$1.slog.jsonl" --slo-ms 60000 \
      2>"$1" &
  SERVER_PID=$!
  for _ in $(seq 1 300); do
    [ -s "$WORK/port" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server died during startup"
    sleep 0.1
  done
  [ -s "$WORK/port" ] || fail "port file never appeared"
  PORT="$(cat "$WORK/port")"
}

stop_server() { # $1 = log path
  kill -INT "$SERVER_PID" || fail "cannot signal server"
  wait "$SERVER_PID" || fail "server exited nonzero after SIGINT"
  SERVER_PID=""
}

request() { # $1 = request lines (\n-separated), $2 = expected reply count
  exec 3<>"/dev/tcp/127.0.0.1/$PORT" || fail "cannot connect to port $PORT"
  printf '%b' "$1" >&3
  REPLY=""
  local line i
  for i in $(seq 1 "$2"); do
    IFS= read -r -t 60 line <&3 || fail "timed out waiting for reply $i"
    REPLY="$REPLY$line
"
  done
  exec 3<&- 3>&-
}

line_n() { printf '%s' "$REPLY" | sed -n "${1}p"; }

# Validates one session's telemetry artifacts: every trace and solve-log
# line is a JSON object carrying the documented required keys, the metrics
# JSON parses and its engine.* counters tile, and the expected event count
# matches in all three places.
check_telemetry() { # $1 = log path, $2 = expected trace events
  [ "$HAVE_PY" = 1 ] || return 0
  python3 - "$1.trace.jsonl" "$1.metrics.json" "$1.slog.jsonl" "$2" <<'EOF' || fail "telemetry artifacts invalid (see above)"
import json, sys
trace_path, metrics_path, slog_path = sys.argv[1], sys.argv[2], sys.argv[3]
expect = int(sys.argv[4])
required = ["ev", "ts", "id", "op", "name", "fp", "ok", "cached", "tier",
            "stop", "nodes", "total_ms"]
events = 0
with open(trace_path) as f:
    for n, line in enumerate(f, 1):
        ev = json.loads(line)  # every line must parse as one JSON object
        missing = [k for k in required if k not in ev]
        assert not missing, f"line {n} missing keys {missing}: {line!r}"
        assert ev["ev"] == "request", f"line {n} bad ev: {ev['ev']}"
        assert ev["tier"] in ("mem", "disk", "none"), ev["tier"]
        events += 1
assert events == expect, f"expected {expect} trace events, found {events}"
slog_required = ["ev", "v", "ts", "id", "op", "fp", "ddg_ops", "ddg_arcs",
                 "ddg_cp", "ddg_width", "ddg_types", "ok", "cached", "tier",
                 "stop", "nodes", "total_ms"]
records = 0
with open(slog_path) as f:
    for n, line in enumerate(f, 1):
        rec = json.loads(line)
        missing = [k for k in slog_required if k not in rec]
        assert not missing, f"slog line {n} missing keys {missing}: {line!r}"
        assert rec["ev"] == "solve" and rec["v"] == 1, line
        assert rec["ddg_ops"] > 0 and rec["ddg_width"] > 0, line
        records += 1
assert records == expect, f"expected {expect} solve records, found {records}"
m = json.load(open(metrics_path))
c = m["counters"]
tiles = (c["engine.memory_hits"] + c["engine.disk_hits"]
         + c["engine.coalesced"] + c["engine.misses"])
assert tiles == c["engine.completed"], \
    f"counters do not tile: {tiles} != {c['engine.completed']}"
assert c["serve.requests"] == events, (c["serve.requests"], events)
assert m["histograms"]["engine.latency_ms"]["count"] == events
EOF
}

# Scrapes the `metrics` verb (multi-line, framed by "# EOF") into a file.
scrape_metrics() { # $1 = output file
  exec 3<>"/dev/tcp/127.0.0.1/$PORT" || fail "cannot connect to port $PORT"
  printf 'metrics\n' >&3
  : > "$1"
  local line
  while IFS= read -r -t 60 line <&3; do
    printf '%s\n' "$line" >> "$1"
    [ "$line" = "# EOF" ] && break
  done
  exec 3<&- 3>&-
  grep -qx '# EOF' "$1" || fail "metrics scrape not terminated by # EOF"
}

# A scrape with sample values dropped: what must be byte-identical between
# two consecutive warm scrapes of one process.
scrape_shape() { awk '/^#/ { print; next } { NF--; print }' "$1"; }

# Validates Prometheus text exposition syntax: every line is a `# TYPE`
# header (counter/gauge/histogram, names sorted) or a `name[{le="..."}]
# value` sample of a previously typed family; counters end in _total;
# histogram ladders are cumulative and close at `le="+Inf"` == _count.
check_exposition() { # $1 = scrape file
  [ "$HAVE_PY" = 1 ] || return 0
  python3 - "$1" <<'EOF' || fail "metrics exposition invalid (see above)"
import re, sys
lines = open(sys.argv[1]).read().splitlines()
assert lines and lines[-1] == "# EOF", "missing # EOF frame"
name_re = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
sample_re = re.compile(
    r'([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{le="([^"]+)"\})? (\S+)\Z')
families = {}
prev_family = ""
cum = {}
for n, ln in enumerate(lines[:-1], 1):
    if ln.startswith("# TYPE "):
        parts = ln.split(" ")
        assert len(parts) == 4, f"line {n}: {ln!r}"
        _, _, fam, kind = parts
        assert name_re.match(fam), f"line {n}: bad family name {fam!r}"
        assert kind in ("counter", "gauge", "histogram"), f"line {n}: {ln!r}"
        assert prev_family < fam, f"line {n}: families not sorted: {ln!r}"
        prev_family = fam
        families[fam] = kind
        continue
    m = sample_re.match(ln)
    assert m, f"line {n}: unparseable sample: {ln!r}"
    name, le, value = m.groups()
    if le is None:
        float(value)  # must parse
    fam = None
    if name in families:
        fam = name
    else:
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in families:
                fam = name[:-len(suffix)]
                assert families[fam] == "histogram", f"line {n}: {ln!r}"
    assert fam is not None, f"line {n}: sample of untyped family: {ln!r}"
    if families[fam] == "counter":
        assert fam.endswith("_total"), f"line {n}: counter without _total"
    if le is not None:
        v = int(value)
        assert v >= cum.get(fam, 0), f"line {n}: ladder not cumulative"
        cum[fam] = v
        if le == "+Inf":
            total = v
        else:
            float(le)
assert any(k == "histogram" for k in families.values()), "no histograms"
EOF
}

# Key schema of a stats line (the sorted key set, values stripped).
stats_schema() { printf '%s' "$1" | tr ' ' '\n' | sed 's/=.*//' | sort; }

# --- first server: cold compute, cancel ack, drain ack, stats verb ---------
start_server "$WORK/log1"
request 'analyze kernel=fir8\ncancel 999\ndrain\nstats\n' 4
line_n 1 | grep -q 'status=ok kind=analyze name=fir8' ||
  fail "unexpected analyze result: $(line_n 1)"
line_n 1 | grep -q 'cached=0' || fail "first analyze should be a cold miss"
[ "$(line_n 2)" = "cancelled id=999 found=0" ] ||
  fail "unexpected cancel ack: $(line_n 2)"
[ "$(line_n 3)" = "drained" ] || fail "unexpected drain ack: $(line_n 3)"
line_n 4 | grep -q '^stats submitted=1 completed=1 .* misses=1 ' ||
  fail "unexpected stats ack: $(line_n 4)"
line_n 4 | grep -q ' op\.analyze\.submitted=1 ' ||
  fail "stats ack missing the per-op slice: $(line_n 4)"
line_n 4 | grep -q ' slo_ms=60000\.000 ' ||
  fail "stats ack missing the SLO objective: $(line_n 4)"
line_n 4 | grep -q ' slo\.analyze\.ok=1 .*slo\.analyze\.breach=0 ' ||
  fail "stats ack missing the SLO error budget: $(line_n 4)"
COLD_RESULT="$(line_n 1)"
COLD_STATS="$(line_n 4)"

# Two consecutive warm scrapes of the metrics verb: valid exposition, and
# identical shape (family set + sample lines) with only values free to move.
scrape_metrics "$WORK/scrape1"
scrape_metrics "$WORK/scrape2"
check_exposition "$WORK/scrape1"
[ "$(scrape_shape "$WORK/scrape1")" = "$(scrape_shape "$WORK/scrape2")" ] ||
  fail "consecutive metrics scrapes differ beyond sample values"
grep -q '^rsat_solver_' "$WORK/scrape1" ||
  fail "exposition missing the solver.* interior profile"
stop_server "$WORK/log1"
grep -q 'interrupted, drained' "$WORK/log1" ||
  fail "SIGINT summary missing the drain marker"
check_telemetry "$WORK/log1" 1

# --- restart with the same cache dir: must hit the disk tier ---------------
start_server "$WORK/log2"
request 'analyze kernel=fir8\nstats\n' 2
line_n 1 | grep -q 'cached=1' ||
  fail "restart did not serve from the disk tier: $(line_n 1)"
# Byte-identical modulo the delivery fields (cached=, ms=).
strip() { printf '%s\n' "$1" | tr ' ' '\n' | grep -v -e '^cached=' -e '^ms=' | tr '\n' ' '; }
[ "$(strip "$COLD_RESULT")" = "$(strip "$(line_n 1)")" ] ||
  fail "disk-served line differs beyond cached=/ms=: $COLD_RESULT vs $(line_n 1)"
# Same operation mix -> byte-stable stats key schema across cold/warm runs.
line_n 2 | grep -q ' disk_hits=1 ' ||
  fail "warm stats did not count the disk hit: $(line_n 2)"
[ "$(stats_schema "$COLD_STATS")" = "$(stats_schema "$(line_n 2)")" ] ||
  fail "stats key schema drifted between cold and warm sessions"
stop_server "$WORK/log2"
grep -q '1 disk hits' "$WORK/log2" ||
  fail "restart summary did not report the disk hit"
check_telemetry "$WORK/log2" 1
grep -q '"tier":"disk"' "$WORK/log2.trace.jsonl" ||
  fail "restart trace event did not attribute the disk tier"

echo "PASS serve_e2e"
