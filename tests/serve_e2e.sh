#!/usr/bin/env bash
# End-to-end exercise of `rsat serve`:
#   1. start on an ephemeral port with a persistent --cache-dir plus the
#      telemetry artifacts (--trace-file, --metrics-json),
#   2. drive analyze / cancel / drain / stats through a client socket
#      (/dev/tcp),
#   3. SIGINT: the server drains and exits 0 with a summary, a schema-valid
#      JSONL trace (every line carries the documented required keys), and a
#      metrics JSON whose counters tile,
#   4. restart with the same --cache-dir: the same request must be served
#      from the disk tier (cached=1 with an empty memory store, and the
#      summary reports a disk hit), and the stats verb's key schema must be
#      byte-stable between the cold and warm sessions.
# Usage: serve_e2e.sh /path/to/rsat
set -u

RSAT="$1"
WORK="$(mktemp -d)"
SERVER_PID=""
trap 'kill "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

fail() {
  echo "FAIL: $*" >&2
  for log in "$WORK"/log*; do
    [ -f "$log" ] && { echo "--- $log" >&2; cat "$log" >&2; }
  done
  exit 1
}

start_server() { # $1 = log path
  rm -f "$WORK/port"
  "$RSAT" serve --port 0 --port-file "$WORK/port" \
      --cache-dir "$WORK/cache" --threads 2 \
      --trace-file "$1.trace.jsonl" --metrics-json "$1.metrics.json" \
      2>"$1" &
  SERVER_PID=$!
  for _ in $(seq 1 300); do
    [ -s "$WORK/port" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server died during startup"
    sleep 0.1
  done
  [ -s "$WORK/port" ] || fail "port file never appeared"
  PORT="$(cat "$WORK/port")"
}

stop_server() { # $1 = log path
  kill -INT "$SERVER_PID" || fail "cannot signal server"
  wait "$SERVER_PID" || fail "server exited nonzero after SIGINT"
  SERVER_PID=""
}

request() { # $1 = request lines (\n-separated), $2 = expected reply count
  exec 3<>"/dev/tcp/127.0.0.1/$PORT" || fail "cannot connect to port $PORT"
  printf '%b' "$1" >&3
  REPLY=""
  local line i
  for i in $(seq 1 "$2"); do
    IFS= read -r -t 60 line <&3 || fail "timed out waiting for reply $i"
    REPLY="$REPLY$line
"
  done
  exec 3<&- 3>&-
}

line_n() { printf '%s' "$REPLY" | sed -n "${1}p"; }

# Validates one session's telemetry artifacts: every trace line is a JSON
# object carrying the documented required keys, the metrics JSON parses and
# its engine.* counters tile, and the expected event count matches.
check_telemetry() { # $1 = log path, $2 = expected trace events
  python3 - "$1.trace.jsonl" "$1.metrics.json" "$2" <<'EOF' || fail "telemetry artifacts invalid (see above)"
import json, sys
trace_path, metrics_path, expect = sys.argv[1], sys.argv[2], int(sys.argv[3])
required = ["ev", "ts", "id", "op", "name", "fp", "ok", "cached", "tier",
            "stop", "nodes", "total_ms"]
events = 0
with open(trace_path) as f:
    for n, line in enumerate(f, 1):
        ev = json.loads(line)  # every line must parse as one JSON object
        missing = [k for k in required if k not in ev]
        assert not missing, f"line {n} missing keys {missing}: {line!r}"
        assert ev["ev"] == "request", f"line {n} bad ev: {ev['ev']}"
        assert ev["tier"] in ("mem", "disk", "none"), ev["tier"]
        events += 1
assert events == expect, f"expected {expect} trace events, found {events}"
m = json.load(open(metrics_path))
c = m["counters"]
tiles = (c["engine.memory_hits"] + c["engine.disk_hits"]
         + c["engine.coalesced"] + c["engine.misses"])
assert tiles == c["engine.completed"], \
    f"counters do not tile: {tiles} != {c['engine.completed']}"
assert c["serve.requests"] == events, (c["serve.requests"], events)
assert m["histograms"]["engine.latency_ms"]["count"] == events
EOF
}

# Key schema of a stats line (the sorted key set, values stripped).
stats_schema() { printf '%s' "$1" | tr ' ' '\n' | sed 's/=.*//' | sort; }

# --- first server: cold compute, cancel ack, drain ack, stats verb ---------
start_server "$WORK/log1"
request 'analyze kernel=fir8\ncancel 999\ndrain\nstats\n' 4
line_n 1 | grep -q 'status=ok kind=analyze name=fir8' ||
  fail "unexpected analyze result: $(line_n 1)"
line_n 1 | grep -q 'cached=0' || fail "first analyze should be a cold miss"
[ "$(line_n 2)" = "cancelled id=999 found=0" ] ||
  fail "unexpected cancel ack: $(line_n 2)"
[ "$(line_n 3)" = "drained" ] || fail "unexpected drain ack: $(line_n 3)"
line_n 4 | grep -q '^stats submitted=1 completed=1 .* misses=1 ' ||
  fail "unexpected stats ack: $(line_n 4)"
line_n 4 | grep -q ' op\.analyze\.submitted=1 ' ||
  fail "stats ack missing the per-op slice: $(line_n 4)"
COLD_RESULT="$(line_n 1)"
COLD_STATS="$(line_n 4)"
stop_server "$WORK/log1"
grep -q 'interrupted, drained' "$WORK/log1" ||
  fail "SIGINT summary missing the drain marker"
check_telemetry "$WORK/log1" 1

# --- restart with the same cache dir: must hit the disk tier ---------------
start_server "$WORK/log2"
request 'analyze kernel=fir8\nstats\n' 2
line_n 1 | grep -q 'cached=1' ||
  fail "restart did not serve from the disk tier: $(line_n 1)"
# Byte-identical modulo the delivery fields (cached=, ms=).
strip() { printf '%s\n' "$1" | tr ' ' '\n' | grep -v -e '^cached=' -e '^ms=' | tr '\n' ' '; }
[ "$(strip "$COLD_RESULT")" = "$(strip "$(line_n 1)")" ] ||
  fail "disk-served line differs beyond cached=/ms=: $COLD_RESULT vs $(line_n 1)"
# Same operation mix -> byte-stable stats key schema across cold/warm runs.
line_n 2 | grep -q ' disk_hits=1 ' ||
  fail "warm stats did not count the disk hit: $(line_n 2)"
[ "$(stats_schema "$COLD_STATS")" = "$(stats_schema "$(line_n 2)")" ] ||
  fail "stats key schema drifted between cold and warm sessions"
stop_server "$WORK/log2"
grep -q '1 disk hits' "$WORK/log2" ||
  fail "restart summary did not report the disk hit"
check_telemetry "$WORK/log2" 1
grep -q '"tier":"disk"' "$WORK/log2.trace.jsonl" ||
  fail "restart trace event did not attribute the disk tier"

echo "PASS serve_e2e"
