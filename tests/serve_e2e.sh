#!/usr/bin/env bash
# End-to-end exercise of `rsat serve`:
#   1. start on an ephemeral port with a persistent --cache-dir,
#   2. drive analyze / cancel / drain through a client socket (/dev/tcp),
#   3. SIGINT: the server drains and exits 0 with a summary,
#   4. restart with the same --cache-dir: the same request must be served
#      from the disk tier (cached=1 with an empty memory store, and the
#      summary reports a disk hit).
# Usage: serve_e2e.sh /path/to/rsat
set -u

RSAT="$1"
WORK="$(mktemp -d)"
SERVER_PID=""
trap 'kill "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

fail() {
  echo "FAIL: $*" >&2
  for log in "$WORK"/log*; do
    [ -f "$log" ] && { echo "--- $log" >&2; cat "$log" >&2; }
  done
  exit 1
}

start_server() { # $1 = log path
  rm -f "$WORK/port"
  "$RSAT" serve --port 0 --port-file "$WORK/port" \
      --cache-dir "$WORK/cache" --threads 2 2>"$1" &
  SERVER_PID=$!
  for _ in $(seq 1 300); do
    [ -s "$WORK/port" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server died during startup"
    sleep 0.1
  done
  [ -s "$WORK/port" ] || fail "port file never appeared"
  PORT="$(cat "$WORK/port")"
}

stop_server() { # $1 = log path
  kill -INT "$SERVER_PID" || fail "cannot signal server"
  wait "$SERVER_PID" || fail "server exited nonzero after SIGINT"
  SERVER_PID=""
}

request() { # $1 = request lines (\n-separated), $2 = expected reply count
  exec 3<>"/dev/tcp/127.0.0.1/$PORT" || fail "cannot connect to port $PORT"
  printf '%b' "$1" >&3
  REPLY=""
  local line i
  for i in $(seq 1 "$2"); do
    IFS= read -r -t 60 line <&3 || fail "timed out waiting for reply $i"
    REPLY="$REPLY$line
"
  done
  exec 3<&- 3>&-
}

line_n() { printf '%s' "$REPLY" | sed -n "${1}p"; }

# --- first server: cold compute, cancel ack, drain ack ---------------------
start_server "$WORK/log1"
request 'analyze kernel=fir8\ncancel 999\ndrain\n' 3
line_n 1 | grep -q 'status=ok kind=analyze name=fir8' ||
  fail "unexpected analyze result: $(line_n 1)"
line_n 1 | grep -q 'cached=0' || fail "first analyze should be a cold miss"
[ "$(line_n 2)" = "cancelled id=999 found=0" ] ||
  fail "unexpected cancel ack: $(line_n 2)"
[ "$(line_n 3)" = "drained" ] || fail "unexpected drain ack: $(line_n 3)"
COLD_RESULT="$(line_n 1)"
stop_server "$WORK/log1"
grep -q 'interrupted, drained' "$WORK/log1" ||
  fail "SIGINT summary missing the drain marker"

# --- restart with the same cache dir: must hit the disk tier ---------------
start_server "$WORK/log2"
request 'analyze kernel=fir8\n' 1
line_n 1 | grep -q 'cached=1' ||
  fail "restart did not serve from the disk tier: $(line_n 1)"
# Byte-identical modulo the delivery fields (cached=, ms=).
strip() { printf '%s\n' "$1" | tr ' ' '\n' | grep -v -e '^cached=' -e '^ms=' | tr '\n' ' '; }
[ "$(strip "$COLD_RESULT")" = "$(strip "$(line_n 1)")" ] ||
  fail "disk-served line differs beyond cached=/ms=: $COLD_RESULT vs $(line_n 1)"
stop_server "$WORK/log2"
grep -q '1 disk hits' "$WORK/log2" ||
  fail "restart summary did not report the disk hit"

echo "PASS serve_e2e"
