// Telemetry spine: the metrics registry primitives (support/metrics.hpp)
// and the trace span / JSONL sink (service/trace.hpp), including the
// engine-integration contract (EngineConfig::trace -> Response::trace).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "ddg/kernels.hpp"
#include "service/engine.hpp"
#include "service/ops/analyze.hpp"
#include "service/trace.hpp"
#include "support/metrics.hpp"

namespace rs::support {
namespace {

TEST(Counter, ConcurrentIncrementsAreLossless) {
  MetricsRegistry reg;
  Counter& c = reg.counter("t.counter");
  constexpr int kThreads = 8;
  constexpr int kIncs = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncs; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIncs);
}

TEST(Gauge, ConcurrentAddSubBalancesToZero) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("t.gauge");
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < 50000; ++i) {
        g.add(3);
        g.sub(3);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.value(), 0);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
}

TEST(Histogram, QuantilesWithinBucketErrorOfExactRanks) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("t.hist");
  for (int v = 1; v <= 1000; ++v) h.observe(static_cast<double>(v));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
  // Bucket midpoints are within ~9% relative error of the true rank value
  // (kSubBuckets = 8); allow 15% slack for the rank falling at bucket edges.
  EXPECT_NEAR(h.quantile(0.5), 500.0, 75.0);
  EXPECT_NEAR(h.quantile(0.95), 950.0, 145.0);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 150.0);
  // Quantiles are clamped to the exact observed range and ordered.
  EXPECT_GE(h.quantile(0.0), h.min());
  EXPECT_LE(h.quantile(1.0), h.max());
  EXPECT_LE(h.quantile(0.5), h.quantile(0.95));
  EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
}

TEST(Histogram, EmptyReportsZeroes) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("t.empty");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, UnderflowAndOverflowStayWithinObservedRange) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("t.extreme");
  h.observe(1e-9);  // below 2^kMinExp: underflow bucket
  h.observe(1e12);  // above 2^kMaxExp: overflow bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-9);
  EXPECT_DOUBLE_EQ(h.max(), 1e12);
  EXPECT_GE(h.quantile(0.01), h.min());
  EXPECT_LE(h.quantile(0.99), h.max());
  // The overflow bucket reports the exact observed max, not a midpoint.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1e12);
}

TEST(Histogram, ConcurrentObserversLoseNoSamples) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("t.conc");
  constexpr int kThreads = 8;
  constexpr int kObs = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kObs; ++i) {
        h.observe(0.5 + static_cast<double>((t * kObs + i) % 100));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kObs);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 99.5);
}

TEST(Registry, ReferencesAreStableAndNamespacesIndependent) {
  MetricsRegistry reg;
  Counter& a = reg.counter("same.name");
  Counter& b = reg.counter("same.name");
  EXPECT_EQ(&a, &b);  // find-or-create returns the same object
  // The three metric kinds have independent namespaces.
  Gauge& g = reg.gauge("same.name");
  Histogram& h = reg.histogram("same.name");
  a.inc(5);
  g.set(-3);
  h.observe(1.0);
  EXPECT_EQ(reg.counters().at("same.name"), 5u);
  EXPECT_EQ(reg.gauges().at("same.name"), -3);
  EXPECT_EQ(reg.histograms().at("same.name").count, 1u);
}

TEST(Registry, ConcurrentLookupAndUseIsSafe) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 1000; ++i) {
        reg.counter("shared.c").inc();
        reg.histogram("shared.h").observe(1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counters().at("shared.c"), 8000u);
  EXPECT_EQ(reg.histograms().at("shared.h").count, 8000u);
}

TEST(Registry, ToJsonIsByteStableAndSorted) {
  MetricsRegistry reg;
  reg.counter("z.last").inc(2);
  reg.counter("a.first").inc(1);
  reg.gauge("mid").set(4);
  reg.histogram("lat").observe(2.0);
  const std::string j1 = reg.to_json();
  const std::string j2 = reg.to_json();
  EXPECT_EQ(j1, j2);  // byte-stable for fixed values
  // Name-sorted within each section.
  EXPECT_LT(j1.find("\"a.first\":1"), j1.find("\"z.last\":2"));
  EXPECT_NE(j1.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(j1.find("\"gauges\":{\"mid\":4}"), std::string::npos);
  EXPECT_NE(j1.find("\"histograms\":{\"lat\":{\"count\":1"),
            std::string::npos);
}

}  // namespace
}  // namespace rs::support

namespace rs::service {
namespace {

/// Minimal structural JSONL check without a JSON parser: balanced braces on
/// one line, and every required key present in order of first appearance.
void expect_required_keys(const std::string& line) {
  EXPECT_FALSE(line.empty());
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  std::size_t pos = 0;
  for (const char* key :
       {"\"ev\":", "\"ts\":", "\"id\":", "\"op\":", "\"name\":", "\"fp\":",
        "\"ok\":", "\"cached\":", "\"tier\":", "\"stop\":", "\"nodes\":"}) {
    const std::size_t at = line.find(key, pos);
    ASSERT_NE(at, std::string::npos) << key << " missing in " << line;
    pos = at;
  }
  EXPECT_NE(line.find("\"total_ms\":"), std::string::npos);
}

TEST(TraceRender, RequiredKeysAlwaysPresent) {
  TraceSpan span;
  span.id = 7;
  span.op = "analyze";
  span.name = "k1";
  span.fp = "abcd";
  const std::string line = render_trace_json(span, 1234.5);
  expect_required_keys(line);
  EXPECT_NE(line.find("\"ev\":\"request\""), std::string::npos);
  EXPECT_NE(line.find("\"ts\":1234.500000"), std::string::npos);
  EXPECT_NE(line.find("\"id\":7"), std::string::npos);
  // Unmeasured total_ms still renders (as 0); unmeasured phases do not.
  EXPECT_NE(line.find("\"total_ms\":0.000"), std::string::npos);
  EXPECT_EQ(line.find("\"solve_ms\":"), std::string::npos);
  EXPECT_EQ(line.find("\"bytes\":"), std::string::npos);
  EXPECT_EQ(line.find("\"err\":"), std::string::npos);
}

TEST(TraceRender, MeasuredPhasesAppearOmittedOnesDoNot) {
  TraceSpan span;
  span.queue_ms = 0.25;
  span.solve_ms = 3.5;
  span.total_ms = 4.0;
  span.bytes = 128;
  const std::string line = render_trace_json(span, 0);
  EXPECT_NE(line.find("\"queue_ms\":0.250"), std::string::npos);
  EXPECT_NE(line.find("\"solve_ms\":3.500"), std::string::npos);
  EXPECT_NE(line.find("\"total_ms\":4.000"), std::string::npos);
  EXPECT_NE(line.find("\"bytes\":128"), std::string::npos);
  EXPECT_EQ(line.find("\"parse_ms\":"), std::string::npos);
  EXPECT_EQ(line.find("\"lookup_ms\":"), std::string::npos);
  EXPECT_EQ(line.find("\"encode_ms\":"), std::string::npos);
}

TEST(TraceRender, EscapesStringsAndCarriesErrors) {
  TraceSpan span;
  span.ok = false;
  span.name = "a \"b\"\\c\nd\te";
  span.error = std::string("ctl:") + '\x01';
  const std::string line = render_trace_json(span, 0);
  EXPECT_NE(line.find("\"name\":\"a \\\"b\\\"\\\\c\\nd\\te\""),
            std::string::npos);
  EXPECT_NE(line.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(line.find("\"err\":\"ctl:\\u0001\""), std::string::npos);
}

TEST(TraceSink, WritesOneLinePerEventAcrossThreads) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rs_test_trace.jsonl")
          .string();
  constexpr int kThreads = 4;
  constexpr int kEvents = 200;
  {
    TraceSink sink(path);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&sink, t] {
        for (int i = 0; i < kEvents; ++i) {
          TraceSpan span;
          span.id = static_cast<std::uint64_t>(t * kEvents + i + 1);
          span.op = "analyze";
          span.name = "w";
          span.total_ms = 0.5;
          sink.write(span);
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(sink.written(), static_cast<std::uint64_t>(kThreads) * kEvents);
    EXPECT_EQ(sink.dropped(), 0u);
    sink.flush();
  }
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    expect_required_keys(line);
    ++lines;
  }
  EXPECT_EQ(lines, kThreads * kEvents);
  std::filesystem::remove(path);
}

TEST(TraceSink, DropsInsteadOfBlockingWhenBufferIsFull) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rs_test_trace_drop.jsonl")
          .string();
  TraceSink::Config cfg;
  cfg.path = path;
  // Threshold above the cap: nothing ever flushes, so the buffer fills and
  // the sink must start dropping (never blocking).
  cfg.flush_threshold = std::size_t{1} << 20;
  cfg.max_buffer = 512;
  std::uint64_t written = 0;
  {
    TraceSink sink(cfg);
    TraceSpan span;
    span.op = "analyze";
    span.name = "drop-me";
    for (int i = 0; i < 100; ++i) sink.write(span);
    EXPECT_GT(sink.dropped(), 0u);
    EXPECT_GT(sink.written(), 0u);
    EXPECT_EQ(sink.written() + sink.dropped(), 100u);
    written = sink.written();
  }
  // The destructor flushed exactly the accepted events.
  std::ifstream in(path);
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, written);
  EXPECT_LT(lines, 100u);
  std::filesystem::remove(path);
}

TEST(TraceEngine, SpansRideOnResponsesWhenEnabled) {
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.trace = true;
  AnalysisEngine engine(cfg);
  const auto dag = ddg::build_kernel("lin-ddot", ddg::superscalar_model());

  Request first = make_analyze_request(dag);
  first.id = 1;
  first.name = "cold";
  first.parse_ms = 0.125;
  const Response cold = engine.run(first);
  ASSERT_NE(cold.trace, nullptr);
  EXPECT_EQ(cold.trace->id, 1u);
  EXPECT_EQ(cold.trace->op, "analyze");
  EXPECT_EQ(cold.trace->name, "cold");
  EXPECT_EQ(cold.trace->fp, cold.fingerprint.hex());
  EXPECT_TRUE(cold.trace->ok);
  EXPECT_FALSE(cold.trace->cached);
  EXPECT_STREQ(cold.trace->tier, "none");
  EXPECT_DOUBLE_EQ(cold.trace->parse_ms, 0.125);
  EXPECT_GE(cold.trace->queue_ms, 0.0);
  EXPECT_GE(cold.trace->fp_ms, 0.0);
  EXPECT_GE(cold.trace->lookup_ms, 0.0);
  EXPECT_GE(cold.trace->solve_ms, 0.0);  // owners measure the solve
  EXPECT_GE(cold.trace->total_ms, 0.0);

  Request second = make_analyze_request(dag);
  second.id = 2;
  const Response warm = engine.run(second);
  ASSERT_NE(warm.trace, nullptr);
  EXPECT_TRUE(warm.trace->cached);
  EXPECT_STREQ(warm.trace->tier, "mem");
  EXPECT_LT(warm.trace->solve_ms, 0.0);  // cache hits never enter solve
}

TEST(TraceEngine, NoSpansWhenDisabled) {
  EngineConfig cfg;
  cfg.threads = 1;
  AnalysisEngine engine(cfg);
  const Response resp = engine.run(
      make_analyze_request(ddg::build_kernel("lin-ddot",
                                             ddg::superscalar_model())));
  EXPECT_EQ(resp.trace, nullptr);
}

}  // namespace
}  // namespace rs::service
