// Telemetry spine: the metrics registry primitives (support/metrics.hpp)
// and the trace span / JSONL sink (service/trace.hpp), including the
// engine-integration contract (EngineConfig::trace -> Response::trace).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "ddg/kernels.hpp"
#include "service/engine.hpp"
#include "service/ops/analyze.hpp"
#include "service/trace.hpp"
#include "support/metrics.hpp"

namespace rs::support {
namespace {

TEST(Counter, ConcurrentIncrementsAreLossless) {
  MetricsRegistry reg;
  Counter& c = reg.counter("t.counter");
  constexpr int kThreads = 8;
  constexpr int kIncs = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncs; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIncs);
}

TEST(Gauge, ConcurrentAddSubBalancesToZero) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("t.gauge");
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < 50000; ++i) {
        g.add(3);
        g.sub(3);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.value(), 0);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
}

TEST(Histogram, QuantilesWithinBucketErrorOfExactRanks) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("t.hist");
  for (int v = 1; v <= 1000; ++v) h.observe(static_cast<double>(v));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
  // Bucket midpoints are within ~9% relative error of the true rank value
  // (kSubBuckets = 8); allow 15% slack for the rank falling at bucket edges.
  EXPECT_NEAR(h.quantile(0.5), 500.0, 75.0);
  EXPECT_NEAR(h.quantile(0.95), 950.0, 145.0);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 150.0);
  // Quantiles are clamped to the exact observed range and ordered.
  EXPECT_GE(h.quantile(0.0), h.min());
  EXPECT_LE(h.quantile(1.0), h.max());
  EXPECT_LE(h.quantile(0.5), h.quantile(0.95));
  EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
}

TEST(Histogram, EmptyReportsZeroes) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("t.empty");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, UnderflowAndOverflowStayWithinObservedRange) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("t.extreme");
  h.observe(1e-9);  // below 2^kMinExp: underflow bucket
  h.observe(1e12);  // above 2^kMaxExp: overflow bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-9);
  EXPECT_DOUBLE_EQ(h.max(), 1e12);
  EXPECT_GE(h.quantile(0.01), h.min());
  EXPECT_LE(h.quantile(0.99), h.max());
  // The overflow bucket reports the exact observed max, not a midpoint.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1e12);
}

TEST(Histogram, ConcurrentObserversLoseNoSamples) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("t.conc");
  constexpr int kThreads = 8;
  constexpr int kObs = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kObs; ++i) {
        h.observe(0.5 + static_cast<double>((t * kObs + i) % 100));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kObs);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 99.5);
}

TEST(Registry, ReferencesAreStableAndNamespacesIndependent) {
  MetricsRegistry reg;
  Counter& a = reg.counter("same.name");
  Counter& b = reg.counter("same.name");
  EXPECT_EQ(&a, &b);  // find-or-create returns the same object
  // The three metric kinds have independent namespaces.
  Gauge& g = reg.gauge("same.name");
  Histogram& h = reg.histogram("same.name");
  a.inc(5);
  g.set(-3);
  h.observe(1.0);
  EXPECT_EQ(reg.counters().at("same.name"), 5u);
  EXPECT_EQ(reg.gauges().at("same.name"), -3);
  EXPECT_EQ(reg.histograms().at("same.name").count, 1u);
}

TEST(Registry, ConcurrentLookupAndUseIsSafe) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 1000; ++i) {
        reg.counter("shared.c").inc();
        reg.histogram("shared.h").observe(1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counters().at("shared.c"), 8000u);
  EXPECT_EQ(reg.histograms().at("shared.h").count, 8000u);
}

TEST(Histogram, BucketGeometryIsMonotoneAndCovering) {
  // Underflow bucket tops out at 2^kMinExp; overflow is unbounded.
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper(0),
                   std::ldexp(1.0, Histogram::kMinExp));
  EXPECT_TRUE(std::isinf(Histogram::bucket_upper(Histogram::kBucketCount - 1)));
  for (int b = 1; b + 1 < Histogram::kBucketCount; ++b) {
    const double lo = Histogram::bucket_upper(b - 1);
    const double hi = Histogram::bucket_upper(b);
    EXPECT_LT(lo, hi) << "bucket " << b;
    // Log-spaced with kSubBuckets per octave: adjacent edges never more
    // than 9/8 apart, which is what bounds the midpoint quantile error.
    EXPECT_LE(hi / lo, 9.0 / 8.0 + 1e-12) << "bucket " << b;
  }
}

TEST(Histogram, BucketCountsTileObservations) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("t.tile");
  const double values[] = {1e-9, 0.25, 1.0, 1.5, 333.0, 1e12};
  for (double v : values) h.observe(v);
  std::uint64_t total = 0;
  for (int b = 0; b < Histogram::kBucketCount; ++b) total += h.bucket_count(b);
  EXPECT_EQ(total, h.count());
  // Each observation sits in the first bucket whose upper edge covers it.
  for (double v : values) {
    int b = 0;
    while (b + 1 < Histogram::kBucketCount && v >= Histogram::bucket_upper(b)) {
      ++b;
    }
    EXPECT_GE(h.bucket_count(b), 1u) << "value " << v << " bucket " << b;
  }
}

TEST(Histogram, QuantileMidpointErrorStaysWithinDocumentedBound) {
  // Property: with kSubBuckets = 8 a bucket's midpoint is within ~9%
  // relative error of any value in the bucket (exact bound 1/17 ≈ 5.9%
  // inside an octave, smaller across octave edges). Sweep a geometric
  // range so the probe value crosses every sub-bucket phase and many
  // exponent boundaries; the flanking outliers keep the median off the
  // min/max clamp so the midpoint path is what answers the query.
  for (double v = 1e-4; v < 1e7; v *= 1.33) {
    MetricsRegistry reg;
    Histogram& h = reg.histogram("t.q");
    h.observe(v / 4);
    h.observe(v * 4);
    for (int i = 0; i < 8; ++i) h.observe(v);
    const double q = h.quantile(0.5);
    EXPECT_LE(std::abs(q - v) / v, 0.09) << "value " << v << " got " << q;
  }
}

TEST(Registry, ToPrometheusRendersSortedTypedTerminated) {
  MetricsRegistry reg;
  reg.counter("z.last").inc(2);
  reg.counter("a.first-part").inc(1);
  reg.gauge("mid.depth").set(-4);
  reg.histogram("lat.ms").observe(2.0);
  reg.histogram("lat.ms").observe(3.0);
  const std::string p1 = reg.to_prometheus();
  EXPECT_EQ(p1, reg.to_prometheus());  // byte-stable for fixed values
  // Names are mangled (prefix + [._-] -> _), counters suffixed _total,
  // every family typed.
  EXPECT_NE(p1.find("# TYPE rsat_a_first_part_total counter\n"
                    "rsat_a_first_part_total 1\n"),
            std::string::npos);
  EXPECT_NE(p1.find("# TYPE rsat_mid_depth gauge\nrsat_mid_depth -4\n"),
            std::string::npos);
  EXPECT_NE(p1.find("# TYPE rsat_lat_ms histogram\n"), std::string::npos);
  // Global name sort: a_* before lat_* before mid_* before z_*.
  EXPECT_LT(p1.find("rsat_a_first_part_total"), p1.find("rsat_lat_ms"));
  EXPECT_LT(p1.find("rsat_lat_ms"), p1.find("rsat_mid_depth"));
  EXPECT_LT(p1.find("rsat_mid_depth"), p1.find("rsat_z_last_total"));
  // Histogram ladder is cumulative and closes with +Inf == _count.
  EXPECT_NE(p1.find("rsat_lat_ms_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(p1.find("rsat_lat_ms_sum 5\n"), std::string::npos);
  EXPECT_NE(p1.find("rsat_lat_ms_count 2\n"), std::string::npos);
  // The exposition frames itself for line-oriented transports.
  EXPECT_EQ(p1.substr(p1.size() - 6), "# EOF\n");
}

TEST(Registry, ToPrometheusHistogramLadderIsCumulative) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("t.ladder");
  for (int i = 1; i <= 64; ++i) h.observe(static_cast<double>(i));
  const std::string p = reg.to_prometheus();
  // Walk every bucket sample line; cumulative counts never decrease.
  std::uint64_t prev = 0;
  std::size_t at = 0;
  int lines = 0;
  const std::string needle = "rsat_t_ladder_bucket{le=\"";
  while ((at = p.find(needle, at)) != std::string::npos) {
    const std::size_t sp = p.find(' ', at);
    ASSERT_NE(sp, std::string::npos);
    const std::uint64_t cum = std::stoull(p.substr(sp + 1));
    EXPECT_GE(cum, prev);
    prev = cum;
    ++lines;
    at = sp;
  }
  EXPECT_GT(lines, 2);  // sparse ladder: non-empty buckets plus +Inf
  EXPECT_EQ(prev, 64u);  // +Inf closes at the total count
}

TEST(Registry, ToJsonIsByteStableAndSorted) {
  MetricsRegistry reg;
  reg.counter("z.last").inc(2);
  reg.counter("a.first").inc(1);
  reg.gauge("mid").set(4);
  reg.histogram("lat").observe(2.0);
  const std::string j1 = reg.to_json();
  const std::string j2 = reg.to_json();
  EXPECT_EQ(j1, j2);  // byte-stable for fixed values
  // Name-sorted within each section.
  EXPECT_LT(j1.find("\"a.first\":1"), j1.find("\"z.last\":2"));
  EXPECT_NE(j1.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(j1.find("\"gauges\":{\"mid\":4}"), std::string::npos);
  EXPECT_NE(j1.find("\"histograms\":{\"lat\":{\"count\":1"),
            std::string::npos);
}

}  // namespace
}  // namespace rs::support

namespace rs::service {
namespace {

/// Minimal structural JSONL check without a JSON parser: balanced braces on
/// one line, and every required key present in order of first appearance.
void expect_required_keys(const std::string& line) {
  EXPECT_FALSE(line.empty());
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  std::size_t pos = 0;
  for (const char* key :
       {"\"ev\":", "\"ts\":", "\"id\":", "\"op\":", "\"name\":", "\"fp\":",
        "\"ok\":", "\"cached\":", "\"tier\":", "\"stop\":", "\"nodes\":"}) {
    const std::size_t at = line.find(key, pos);
    ASSERT_NE(at, std::string::npos) << key << " missing in " << line;
    pos = at;
  }
  EXPECT_NE(line.find("\"total_ms\":"), std::string::npos);
}

TEST(TraceRender, RequiredKeysAlwaysPresent) {
  TraceSpan span;
  span.id = 7;
  span.op = "analyze";
  span.name = "k1";
  span.fp = "abcd";
  const std::string line = render_trace_json(span, 1234.5);
  expect_required_keys(line);
  EXPECT_NE(line.find("\"ev\":\"request\""), std::string::npos);
  EXPECT_NE(line.find("\"ts\":1234.500000"), std::string::npos);
  EXPECT_NE(line.find("\"id\":7"), std::string::npos);
  // Unmeasured total_ms still renders (as 0); unmeasured phases do not.
  EXPECT_NE(line.find("\"total_ms\":0.000"), std::string::npos);
  EXPECT_EQ(line.find("\"solve_ms\":"), std::string::npos);
  EXPECT_EQ(line.find("\"bytes\":"), std::string::npos);
  EXPECT_EQ(line.find("\"err\":"), std::string::npos);
}

TEST(TraceRender, MeasuredPhasesAppearOmittedOnesDoNot) {
  TraceSpan span;
  span.queue_ms = 0.25;
  span.solve_ms = 3.5;
  span.total_ms = 4.0;
  span.bytes = 128;
  const std::string line = render_trace_json(span, 0);
  EXPECT_NE(line.find("\"queue_ms\":0.250"), std::string::npos);
  EXPECT_NE(line.find("\"solve_ms\":3.500"), std::string::npos);
  EXPECT_NE(line.find("\"total_ms\":4.000"), std::string::npos);
  EXPECT_NE(line.find("\"bytes\":128"), std::string::npos);
  EXPECT_EQ(line.find("\"parse_ms\":"), std::string::npos);
  EXPECT_EQ(line.find("\"lookup_ms\":"), std::string::npos);
  EXPECT_EQ(line.find("\"encode_ms\":"), std::string::npos);
}

TEST(TraceRender, EscapesStringsAndCarriesErrors) {
  TraceSpan span;
  span.ok = false;
  span.name = "a \"b\"\\c\nd\te";
  span.error = std::string("ctl:") + '\x01';
  const std::string line = render_trace_json(span, 0);
  EXPECT_NE(line.find("\"name\":\"a \\\"b\\\"\\\\c\\nd\\te\""),
            std::string::npos);
  EXPECT_NE(line.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(line.find("\"err\":\"ctl:\\u0001\""), std::string::npos);
}

TEST(TraceSink, WritesOneLinePerEventAcrossThreads) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rs_test_trace.jsonl")
          .string();
  constexpr int kThreads = 4;
  constexpr int kEvents = 200;
  {
    TraceSink sink(path);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&sink, t] {
        for (int i = 0; i < kEvents; ++i) {
          TraceSpan span;
          span.id = static_cast<std::uint64_t>(t * kEvents + i + 1);
          span.op = "analyze";
          span.name = "w";
          span.total_ms = 0.5;
          sink.write(span);
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(sink.written(), static_cast<std::uint64_t>(kThreads) * kEvents);
    EXPECT_EQ(sink.dropped(), 0u);
    sink.flush();
  }
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    expect_required_keys(line);
    ++lines;
  }
  EXPECT_EQ(lines, kThreads * kEvents);
  std::filesystem::remove(path);
}

TEST(TraceSink, DropsInsteadOfBlockingWhenBufferIsFull) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rs_test_trace_drop.jsonl")
          .string();
  TraceSink::Config cfg;
  cfg.path = path;
  // Threshold above the cap: nothing ever flushes, so the buffer fills and
  // the sink must start dropping (never blocking).
  cfg.flush_threshold = std::size_t{1} << 20;
  cfg.max_buffer = 512;
  std::uint64_t written = 0;
  {
    TraceSink sink(cfg);
    TraceSpan span;
    span.op = "analyze";
    span.name = "drop-me";
    for (int i = 0; i < 100; ++i) sink.write(span);
    EXPECT_GT(sink.dropped(), 0u);
    EXPECT_GT(sink.written(), 0u);
    EXPECT_EQ(sink.written() + sink.dropped(), 100u);
    written = sink.written();
  }
  // The destructor flushed exactly the accepted events.
  std::ifstream in(path);
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, written);
  EXPECT_LT(lines, 100u);
  std::filesystem::remove(path);
}

TEST(TraceEngine, SpansRideOnResponsesWhenEnabled) {
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.trace = true;
  AnalysisEngine engine(cfg);
  const auto dag = ddg::build_kernel("lin-ddot", ddg::superscalar_model());

  Request first = make_analyze_request(dag);
  first.id = 1;
  first.name = "cold";
  first.parse_ms = 0.125;
  const Response cold = engine.run(first);
  ASSERT_NE(cold.trace, nullptr);
  EXPECT_EQ(cold.trace->id, 1u);
  EXPECT_EQ(cold.trace->op, "analyze");
  EXPECT_EQ(cold.trace->name, "cold");
  EXPECT_EQ(cold.trace->fp, cold.fingerprint.hex());
  EXPECT_TRUE(cold.trace->ok);
  EXPECT_FALSE(cold.trace->cached);
  EXPECT_STREQ(cold.trace->tier, "none");
  EXPECT_DOUBLE_EQ(cold.trace->parse_ms, 0.125);
  EXPECT_GE(cold.trace->queue_ms, 0.0);
  EXPECT_GE(cold.trace->fp_ms, 0.0);
  EXPECT_GE(cold.trace->lookup_ms, 0.0);
  EXPECT_GE(cold.trace->solve_ms, 0.0);  // owners measure the solve
  EXPECT_GE(cold.trace->total_ms, 0.0);

  Request second = make_analyze_request(dag);
  second.id = 2;
  const Response warm = engine.run(second);
  ASSERT_NE(warm.trace, nullptr);
  EXPECT_TRUE(warm.trace->cached);
  EXPECT_STREQ(warm.trace->tier, "mem");
  EXPECT_LT(warm.trace->solve_ms, 0.0);  // cache hits never enter solve
}

TEST(SolveLogRender, KeyOrderIsByteStableAndSchemaVersioned) {
  SolveLogRecord rec;
  rec.id = 42;
  rec.op = "analyze";
  rec.fp = "cafe";
  rec.ddg_ops = 10;
  rec.ddg_arcs = 17;
  rec.ddg_cp = 11;
  rec.ddg_width = 4;
  rec.ddg_types = "4,5";
  rec.ok = true;
  rec.nodes = 2;
  rec.parse_ms = 0.5;
  rec.solve_ms = 1.25;
  rec.total_ms = 2.0;
  const std::string line = render_solve_log_json(rec, 1234.5);
  EXPECT_EQ(line, render_solve_log_json(rec, 1234.5));  // byte-stable
  // Keys appear in the documented order (the training-corpus contract).
  std::size_t pos = 0;
  for (const char* key :
       {"\"ev\":\"solve\"", "\"v\":1", "\"ts\":1234.500000", "\"id\":42",
        "\"op\":\"analyze\"", "\"fp\":\"cafe\"", "\"ddg_ops\":10",
        "\"ddg_arcs\":17", "\"ddg_cp\":11", "\"ddg_width\":4",
        "\"ddg_types\":\"4,5\"", "\"ok\":true", "\"cached\":false",
        "\"tier\":\"none\"", "\"stop\":\"proven\"", "\"nodes\":2",
        "\"parse_ms\":0.500", "\"solve_ms\":1.250", "\"total_ms\":2.000"}) {
    const std::size_t at = line.find(key, pos);
    ASSERT_NE(at, std::string::npos) << key << " missing in " << line;
    pos = at;
  }
  // No winner for a non-portfolio solve; unmeasured phases are omitted.
  EXPECT_EQ(line.find("\"winner\":"), std::string::npos);
  SolveLogRecord bare;
  const std::string sparse = render_solve_log_json(bare, 0);
  EXPECT_EQ(sparse.find("\"parse_ms\":"), std::string::npos);
  EXPECT_EQ(sparse.find("\"solve_ms\":"), std::string::npos);
  EXPECT_NE(sparse.find("\"total_ms\":0.000"), std::string::npos);
  SolveLogRecord won;
  won.winner = "greedy";
  EXPECT_NE(render_solve_log_json(won, 0).find("\"winner\":\"greedy\""),
            std::string::npos);
}

TEST(SolveLogEngine, RecordsRideOnResponsesWhenEnabled) {
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.solve_log = true;
  AnalysisEngine engine(cfg);
  const auto dag = ddg::build_kernel("lin-ddot", ddg::superscalar_model());

  Request first = make_analyze_request(dag);
  first.id = 9;
  const Response cold = engine.run(first);
  ASSERT_NE(cold.solve_log, nullptr);
  EXPECT_EQ(cold.solve_log->id, 9u);
  EXPECT_EQ(cold.solve_log->op, "analyze");
  EXPECT_EQ(cold.solve_log->fp, cold.fingerprint.hex());
  EXPECT_TRUE(cold.solve_log->ok);
  EXPECT_FALSE(cold.solve_log->cached);
  // Cheap canonical features match the normalized DAG.
  EXPECT_EQ(cold.solve_log->ddg_ops, static_cast<long long>(dag.op_count()));
  EXPECT_GT(cold.solve_log->ddg_arcs, 0);
  EXPECT_GT(cold.solve_log->ddg_cp, 0);
  EXPECT_GT(cold.solve_log->ddg_width, 0);
  EXPECT_FALSE(cold.solve_log->ddg_types.empty());
  EXPECT_GE(cold.solve_log->solve_ms, 0.0);

  Request second = make_analyze_request(dag);
  second.id = 10;
  const Response warm = engine.run(second);
  ASSERT_NE(warm.solve_log, nullptr);
  EXPECT_TRUE(warm.solve_log->cached);
  EXPECT_STREQ(warm.solve_log->tier, "mem");
  EXPECT_LT(warm.solve_log->solve_ms, 0.0);  // cache hits never enter solve
}

TEST(SolveLogEngine, NoRecordsWhenDisabled) {
  EngineConfig cfg;
  cfg.threads = 1;
  AnalysisEngine engine(cfg);
  const Response resp = engine.run(
      make_analyze_request(ddg::build_kernel("lin-ddot",
                                             ddg::superscalar_model())));
  EXPECT_EQ(resp.solve_log, nullptr);
}

TEST(TraceEngine, NoSpansWhenDisabled) {
  EngineConfig cfg;
  cfg.threads = 1;
  AnalysisEngine engine(cfg);
  const Response resp = engine.run(
      make_analyze_request(ddg::build_kernel("lin-ddot",
                                             ddg::superscalar_model())));
  EXPECT_EQ(resp.trace, nullptr);
}

}  // namespace
}  // namespace rs::service
