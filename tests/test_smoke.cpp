// End-to-end smoke: the full stack on a couple of kernels, cross-checking
// the three RS engines and both reduction paths against each other.
#include <gtest/gtest.h>

#include "core/greedy_k.hpp"
#include "core/reduce.hpp"
#include "core/reduce_ilp.hpp"
#include "core/rs_exact.hpp"
#include "core/rs_ilp.hpp"
#include "ddg/kernels.hpp"
#include "sched/lifetime.hpp"

namespace rs {
namespace {

TEST(Smoke, DdotSuperscalarAllEnginesAgree) {
  const ddg::Ddg dag = ddg::lin_ddot(ddg::superscalar_model());
  const core::TypeContext ctx(dag, ddg::kFloatReg);

  const core::RsEstimate heur = core::greedy_k(ctx);
  const core::RsExactResult exact = core::rs_exact(ctx);
  ASSERT_TRUE(exact.proven);
  EXPECT_LE(heur.rs, exact.rs);

  // Heuristic witness really needs rs_heuristic registers.
  ASSERT_TRUE(sched::is_valid(dag, heur.witness));
  EXPECT_EQ(sched::register_need(dag, ddg::kFloatReg, heur.witness), heur.rs);

  // Exact witness realizes the saturation.
  ASSERT_TRUE(sched::is_valid(dag, exact.witness));
  EXPECT_EQ(sched::register_need(dag, ddg::kFloatReg, exact.witness), exact.rs);

  const core::RsIlpResult ilp = core::rs_ilp(
      ctx, core::RsIlpOptions{}, support::SolveContext(60));
  ASSERT_TRUE(ilp.proven) << "intLP did not prove optimality";
  EXPECT_EQ(ilp.rs, exact.rs);
}

TEST(Smoke, DdotReductionBothPaths) {
  const ddg::Ddg dag = ddg::lin_ddot(ddg::superscalar_model());
  const core::TypeContext ctx(dag, ddg::kFloatReg);
  const core::RsExactResult exact = core::rs_exact(ctx);
  ASSERT_TRUE(exact.proven);
  ASSERT_GE(exact.rs, 3) << "corpus kernel unexpectedly tiny";

  const int R = exact.rs - 1;
  core::ReduceOptions opts;
  opts.rs_upper = exact.rs;

  const core::ReduceResult opt = core::reduce_optimal(ctx, R, opts);
  ASSERT_EQ(opt.status, core::ReduceStatus::Reduced);
  ASSERT_TRUE(opt.extended.has_value());
  const core::TypeContext octx(*opt.extended, ddg::kFloatReg);
  const core::RsExactResult opt_rs = core::rs_exact(octx);
  ASSERT_TRUE(opt_rs.proven);
  EXPECT_LE(opt_rs.rs, R);
  EXPECT_EQ(opt_rs.rs, opt.achieved_rs);

  const core::ReduceResult heur = core::reduce_greedy(ctx, R, opts);
  ASSERT_EQ(heur.status, core::ReduceStatus::Reduced);
  const core::TypeContext hctx(*heur.extended, ddg::kFloatReg);
  const core::RsExactResult heur_rs = core::rs_exact(hctx);
  ASSERT_TRUE(heur_rs.proven);
  EXPECT_LE(heur_rs.rs, R);
  // Optimal keeps at least as much saturation and never loses more ILP.
  EXPECT_GE(opt.achieved_rs, heur_rs.rs);
}

}  // namespace
}  // namespace rs
