// Global RS over acyclic CFGs (section 6): liveness, entry/exit value
// expansion, per-block saturation, and the move-margin reduction.
#include <gtest/gtest.h>

#include <algorithm>

#include "cfg/cfg.hpp"
#include "cfg/generators.hpp"
#include "cfg/global_rs.hpp"
#include "core/rs_exact.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"

namespace rs::cfg {
namespace {

using ddg::kFloatReg;
using ddg::kIntReg;
using ddg::OpClass;

/// Diamond CFG:
///   entry: x = load p ; y = x*x ;           branch
///   left : a = y + x                        (uses both)
///   right: b = y * y                        (x dead here)
///   join : r = phi-ish use of a/b via sum; store r
Program diamond_program() {
  Program p(ddg::superscalar_model());
  const int entry = p.add_block("entry");
  const int left = p.add_block("left");
  const int right = p.add_block("right");
  const int join = p.add_block("join");
  p.add_edge(entry, left);
  p.add_edge(entry, right);
  p.add_edge(left, join);
  p.add_edge(right, join);
  p.def(entry, "x", OpClass::Load, kFloatReg, {"p"});
  p.def(entry, "y", OpClass::FpMul, kFloatReg, {"x", "x"});
  p.def(left, "a", OpClass::FpAdd, kFloatReg, {"y", "x"});
  p.def(right, "b", OpClass::FpMul, kFloatReg, {"y", "y"});
  p.def(join, "r", OpClass::FpAdd, kFloatReg, {"a", "b"});
  p.use(join, OpClass::Store, {"r", "p"});
  return p;
}

TEST(Cfg, LivenessDiamond) {
  const Cfg cfg = diamond_program().build();
  const Block& entry = cfg.block(0);
  const Block& left = cfg.block(1);
  const Block& right = cfg.block(2);
  const Block& join = cfg.block(3);

  // p is a program input, live into entry.
  EXPECT_TRUE(std::count(entry.live_in.begin(), entry.live_in.end(), "p"));
  // x and y live out of entry (x still read in left).
  EXPECT_TRUE(std::count(entry.live_out.begin(), entry.live_out.end(), "x"));
  EXPECT_TRUE(std::count(entry.live_out.begin(), entry.live_out.end(), "y"));
  // left consumes x and y, defines a; a live-out.
  EXPECT_TRUE(std::count(left.live_in.begin(), left.live_in.end(), "x"));
  EXPECT_TRUE(std::count(left.live_out.begin(), left.live_out.end(), "a"));
  EXPECT_FALSE(std::count(left.live_out.begin(), left.live_out.end(), "x"));
  // right never reads x.
  EXPECT_FALSE(std::count(right.live_in.begin(), right.live_in.end(), "x"));
  // join reads a, b, p (for the store): all live-in, nothing live-out.
  EXPECT_TRUE(std::count(join.live_in.begin(), join.live_in.end(), "a"));
  EXPECT_TRUE(std::count(join.live_in.begin(), join.live_in.end(), "b"));
  EXPECT_TRUE(join.live_out.empty());
}

TEST(Cfg, PassThroughValueOccupiesRegister) {
  // v defined in A, only used in C; B is a pass-through block — v must
  // still appear in B's expanded DAG (entry + exit value) and push its RS.
  Program p(ddg::superscalar_model());
  const int a = p.add_block("A");
  const int b = p.add_block("B");
  const int c = p.add_block("C");
  p.add_edge(a, b);
  p.add_edge(b, c);
  p.def(a, "v", OpClass::Load, kFloatReg, {"p"});
  p.def(b, "w", OpClass::FpAdd, kFloatReg, {"q"});  // unrelated float work
  p.use(b, OpClass::Store, {"w"});
  p.use(c, OpClass::Store, {"v"});
  const Cfg cfg = p.build();
  EXPECT_TRUE(std::count(cfg.block(b).live_in.begin(),
                         cfg.block(b).live_in.end(), "v"));
  const ddg::Ddg expanded = cfg.expand_block(b);
  const core::TypeContext ctx(expanded, kFloatReg);
  const auto rs = core::rs_exact(ctx);
  ASSERT_TRUE(rs.proven);
  // v (pass-through) and w (local) can be simultaneously alive: RS >= 2.
  EXPECT_GE(rs.rs, 2);
}

TEST(Cfg, ExpandedBlocksAreValidNormalizedDags) {
  const Cfg cfg = diamond_program().build();
  for (int b = 0; b < cfg.block_count(); ++b) {
    const ddg::Ddg dag = cfg.expand_block(b);
    EXPECT_NO_THROW(dag.validate());
    EXPECT_TRUE(dag.bottom().has_value());
    // Entry values materialized for every live-in.
    for (const std::string& v : cfg.block(b).live_in) {
      bool found = false;
      for (ddg::NodeId n = 0; n < dag.op_count(); ++n) {
        if (dag.op(n).name == "in." + v) found = true;
      }
      EXPECT_TRUE(found) << "missing entry value " << v;
    }
  }
}

TEST(Cfg, GlobalAnalyzeTakesBlockMaximum) {
  const Cfg cfg = diamond_program().build();
  const GlobalReport rep = analyze(cfg);
  ASSERT_EQ(rep.blocks.size(), 4u);
  EXPECT_TRUE(rep.all_proven);
  for (int t = 0; t < cfg.type_count(); ++t) {
    int max_block = 0;
    for (const auto& bs : rep.blocks) {
      max_block = std::max(max_block, bs.per_type[t].rs);
    }
    EXPECT_EQ(rep.global_rs[t], max_block);
  }
  EXPECT_GE(rep.global_rs[kFloatReg], 2);
}

TEST(Cfg, EnsureLimitsAppliesMoveMargin) {
  const Cfg cfg = diamond_program().build();
  const GlobalReport rep = analyze(cfg);
  const int rs_f = rep.global_rs[kFloatReg];
  ASSERT_GE(rs_f, 2);
  // Budget exactly rs_f with margin 1: blocks must be reduced to rs_f - 1.
  const GlobalReduceResult red =
      ensure_limits(cfg, {8, rs_f}, /*move_margin=*/1);
  ASSERT_TRUE(red.success) << red.note;
  for (const auto& block : red.blocks) {
    const core::TypeContext ctx(block, kFloatReg);
    const auto rs = core::rs_exact(ctx);
    ASSERT_TRUE(rs.proven);
    EXPECT_LE(rs.rs, rs_f - 1);
  }
}

TEST(Cfg, ValueDefinedInSeveralPredecessorsMerges) {
  // Non-SSA diamond merge: both arms define v (same type), join reads it.
  // Liveness must show v flowing out of each arm into the join — and not
  // upward past its definitions into the entry.
  Program p(ddg::superscalar_model());
  const int entry = p.add_block("entry");
  const int left = p.add_block("left");
  const int right = p.add_block("right");
  const int join = p.add_block("join");
  p.add_edge(entry, left);
  p.add_edge(entry, right);
  p.add_edge(left, join);
  p.add_edge(right, join);
  p.def(entry, "x", OpClass::Load, kFloatReg, {"p"});
  p.def(left, "v", OpClass::FpAdd, kFloatReg, {"x", "x"});
  p.def(right, "v", OpClass::FpMul, kFloatReg, {"x", "x"});
  p.use(join, OpClass::Store, {"v", "p"});
  const Cfg cfg = p.build();
  EXPECT_EQ(cfg.type_of("v"), kFloatReg);
  for (const int arm : {left, right}) {
    EXPECT_TRUE(std::count(cfg.block(arm).live_out.begin(),
                           cfg.block(arm).live_out.end(), "v"));
    EXPECT_FALSE(std::count(cfg.block(arm).live_in.begin(),
                            cfg.block(arm).live_in.end(), "v"));
  }
  EXPECT_TRUE(std::count(cfg.block(join).live_in.begin(),
                         cfg.block(join).live_in.end(), "v"));
  EXPECT_FALSE(std::count(cfg.block(entry).live_in.begin(),
                          cfg.block(entry).live_in.end(), "v"));
  // Every expanded block stays a valid normalized DAG.
  for (int b = 0; b < cfg.block_count(); ++b) {
    EXPECT_NO_THROW(cfg.expand_block(b).validate());
  }
}

TEST(Cfg, ConflictingCrossBlockDefinitionTypesRejected) {
  Program p(ddg::superscalar_model());
  const int a = p.add_block("A");
  const int b = p.add_block("B");
  p.add_edge(a, b);
  p.def(a, "v", OpClass::IntAlu, kIntReg, {});
  p.def(b, "v", OpClass::FpAdd, kFloatReg, {"v"});
  EXPECT_THROW(p.build(), support::PreconditionError);
}

TEST(Cfg, ProgramInputsTypedByFirstConsumption) {
  // w is only ever an operand: its first consumer (program order) is an
  // FpMul, so it enters as a *float* value and occupies a float register;
  // p stays int (first consumed by a load).
  Program prog(ddg::superscalar_model());
  const int a = prog.add_block("A");
  prog.def(a, "x", OpClass::Load, kFloatReg, {"p"});
  prog.def(a, "m", OpClass::FpMul, kFloatReg, {"x", "w"});
  prog.use(a, OpClass::Store, {"m", "p"});
  const Cfg cfg = prog.build();
  EXPECT_EQ(cfg.type_of("w"), kFloatReg);
  EXPECT_EQ(cfg.type_of("p"), kIntReg);
  const ddg::Ddg dag = cfg.expand_block(0);
  // Entry values are typed accordingly: in.w defines a float value.
  bool found = false;
  for (ddg::NodeId n = 0; n < dag.op_count(); ++n) {
    if (dag.op(n).name == "in.w") {
      found = true;
      EXPECT_TRUE(dag.op(n).writes_type(kFloatReg));
    }
  }
  EXPECT_TRUE(found);
}

TEST(Cfg, ExitConsumerKeepsValueLiveThroughTheBlock) {
  // v passes through B untouched; its expanded DAG must carry the entry
  // definition in.v, the exit consumer out.v, and a flow arc between them
  // — that consumer is what stretches v's lifetime across the whole block.
  Program p(ddg::superscalar_model());
  const int a = p.add_block("A");
  const int b = p.add_block("B");
  const int c = p.add_block("C");
  p.add_edge(a, b);
  p.add_edge(b, c);
  p.def(a, "v", OpClass::Load, kFloatReg, {"p"});
  p.def(b, "w", OpClass::FpAdd, kFloatReg, {"q"});
  p.use(b, OpClass::Store, {"w"});
  p.use(c, OpClass::Store, {"v"});
  const Cfg cfg = p.build();
  const ddg::Ddg dag = cfg.expand_block(b);
  ddg::NodeId in_v = -1, out_v = -1;
  for (ddg::NodeId n = 0; n < dag.op_count(); ++n) {
    if (dag.op(n).name == "in.v") in_v = n;
    if (dag.op(n).name == "out.v") out_v = n;
  }
  ASSERT_GE(in_v, 0);
  ASSERT_GE(out_v, 0);
  const auto consumers = dag.consumers(in_v, kFloatReg);
  EXPECT_TRUE(std::count(consumers.begin(), consumers.end(), out_v));
}

TEST(Cfg, ExhaustedBudgetReportsPerBlockStopCauses) {
  // A many-block program under an already-exhausted budget: analyze must
  // return one row per block with the stop cause, without running the
  // solver stack on the starved tail (zero nodes there).
  support::Rng rng(11);
  const Cfg cfg = random_chain(rng, ddg::superscalar_model(), 8);
  const GlobalReport rep =
      analyze(cfg, {}, support::SolveContext(1e-9));
  ASSERT_EQ(rep.blocks.size(), 8u);
  EXPECT_FALSE(rep.all_proven);
  for (const auto& bs : rep.blocks) {
    ASSERT_EQ(static_cast<int>(bs.per_type.size()), cfg.type_count());
    EXPECT_EQ(bs.stats.stop, support::StopCause::TimedOut) << bs.block;
    for (const auto& ts : bs.per_type) {
      // Value counts stay real even for skipped blocks (they cost one
      // expansion, no search).
      EXPECT_GT(ts.value_count, 0);
    }
  }
  // The tail was skipped outright, not solved against a dead deadline.
  EXPECT_EQ(rep.blocks.back().stats.nodes, 0);
  // With no budget pressure the same program proves every block — and
  // fast blocks donating slack means the report is fully proven well
  // within one generous budget rather than one budget-slice per block.
  const GlobalReport full = analyze(cfg, {}, support::SolveContext(30.0));
  EXPECT_TRUE(full.all_proven);
}

TEST(Cfg, CyclicCfgRejected) {
  Program p(ddg::superscalar_model());
  const int a = p.add_block("A");
  const int b = p.add_block("B");
  p.add_edge(a, b);
  p.add_edge(b, a);  // loop: out of scope for acyclic global RS
  p.def(a, "x", OpClass::IntAlu, kIntReg, {});
  EXPECT_THROW(p.build(), support::PreconditionError);
}

TEST(Cfg, DoubleDefinitionRejected) {
  Program p(ddg::superscalar_model());
  const int a = p.add_block("A");
  p.def(a, "x", OpClass::IntAlu, kIntReg, {});
  p.def(a, "x", OpClass::IntAlu, kIntReg, {});
  EXPECT_THROW(p.build(), support::PreconditionError);
}

TEST(Cfg, StraightLineMatchesPlainDag) {
  // A single-block program's expanded DAG analyzes like a hand-built one.
  Program p(ddg::superscalar_model());
  const int a = p.add_block("body");
  p.def(a, "x", OpClass::Load, kFloatReg, {"ptr"});
  p.def(a, "y", OpClass::Load, kFloatReg, {"ptr"});
  p.def(a, "m", OpClass::FpMul, kFloatReg, {"x", "y"});
  p.use(a, OpClass::Store, {"m", "ptr"});
  const Cfg cfg = p.build();
  const GlobalReport rep = analyze(cfg);
  // x and y overlap at the multiply: RS(float) >= 2; m short-lived.
  EXPECT_GE(rep.global_rs[kFloatReg], 2);
  EXPECT_LE(rep.global_rs[kFloatReg], 3);
}

}  // namespace
}  // namespace rs::cfg
