// DDG-level spill insertion (the paper's section-7 future work).
#include <gtest/gtest.h>

#include "core/rs_exact.hpp"
#include "core/spill.hpp"
#include "ddg/builder.hpp"
#include "ddg/kernels.hpp"
#include "support/assert.hpp"

namespace rs::core {
namespace {

using ddg::kFloatReg;
using ddg::kIntReg;

/// k live-in values all consumed by one late op each: RS = k and no serial
/// arc can reduce it below the operand count of the combiner tree.
ddg::Ddg wide_livein_dag(int k) {
  ddg::KernelBuilder b(ddg::superscalar_model(), "wide");
  std::vector<ddg::NodeId> ins;
  for (int i = 0; i < k; ++i) {
    ins.push_back(b.live_in(kFloatReg, "v" + std::to_string(i)));
  }
  // One combiner reading everything keeps all k alive at its read cycle.
  ddg::NodeId acc = ins[0];
  for (int i = 1; i < k; ++i) {
    acc = b.fadd("acc" + std::to_string(i), acc, ins[i]);
  }
  return b.build();
}

TEST(Spill, SplitValueRewiresConsumers) {
  const ddg::Ddg d = ddg::lin_ddot(ddg::superscalar_model());
  const TypeContext ctx(d, kFloatReg);
  // Pick a value with at least one consumer; split at all consumers.
  int idx = -1;
  for (int i = 0; i < ctx.value_count(); ++i) {
    if (ctx.cons(i).size() >= 1 && ctx.cons(i)[0] != *d.bottom()) {
      idx = i;
      break;
    }
  }
  ASSERT_GE(idx, 0);
  const ddg::Ddg split = split_value(ctx, idx, ctx.cons(idx));
  EXPECT_EQ(split.op_count(), d.op_count() + 2);  // store + reload
  split.validate();
  // The original value now has exactly one float consumer: the store.
  const ddg::NodeId u = ctx.value_node(idx);
  const auto new_cons = split.consumers(u, kFloatReg);
  ASSERT_EQ(new_cons.size(), 1u);
  EXPECT_EQ(split.op(new_cons[0]).cls, ddg::OpClass::Store);
}

TEST(Spill, SplitLowersSaturationOnPressureDag) {
  const ddg::Ddg d = wide_livein_dag(6);
  const TypeContext ctx(d, kFloatReg);
  const auto before = rs_exact(ctx);
  ASSERT_TRUE(before.proven);
  ASSERT_GE(before.rs, 6);
  // Split the live-in with the latest consumer.
  const int idx = ctx.index_of(0);
  ASSERT_GE(idx, 0);
  const ddg::Ddg split = split_value(ctx, idx, ctx.cons(idx));
  const TypeContext sctx(split, kFloatReg);
  const auto after = rs_exact(sctx);
  ASSERT_TRUE(after.proven);
  // The reloaded fragment replaces the long original lifetime; saturation
  // cannot grow by more than the extra value and typically shrinks under
  // reduction (spill_and_reduce asserts the end-to-end effect below).
  EXPECT_LE(after.rs, before.rs + 1);
}

TEST(Spill, SpillAndReduceReachesInfeasibleBudget) {
  // Two operands of one op can never fit in 1 register without memory;
  // with a spill they can: store one operand, reload it later.
  ddg::KernelBuilder b(ddg::superscalar_model(), "two");
  const auto x = b.live_in(kFloatReg, "x");
  const auto y = b.live_in(kFloatReg, "y");
  b.fadd("s", x, y);
  const ddg::Ddg d = b.build();
  const TypeContext ctx(d, kFloatReg);

  SpillOptions opts;
  opts.reduce.src.slack_limit = 8;
  const SpillResult r = spill_and_reduce(ctx, 2, opts);
  // R=2 fits without spilling.
  EXPECT_EQ(r.status, ReduceStatus::AlreadyFits);
  EXPECT_EQ(r.spills_inserted, 0);
}

/// A DAG whose *minimum* register need is 3 under every schedule: value c
/// is forced to live across the binary op s1 = f(a, b) because c feeds a's
/// producer and is read only after s1. Serialization alone can never reach
/// R = 2; splitting c's lifetime through memory can.
ddg::Ddg live_across_dag() {
  ddg::KernelBuilder b(ddg::superscalar_model(), "live-across");
  const auto p = b.live_in(kIntReg, "p");
  const auto c = b.fload("c", p);
  const auto a = b.op(ddg::OpClass::FpAdd, kFloatReg, "a", {c});
  const auto bb = b.fload("b", p);
  const auto s1 = b.fmul("s1", a, bb);
  b.fadd("s2", c, s1);
  return b.build();
}

TEST(Spill, SerializationAloneCannotBreakLiveAcross) {
  const ddg::Ddg d = live_across_dag();
  const TypeContext ctx(d, kFloatReg);
  ReduceOptions opts;
  opts.src.slack_limit = 16;
  const ReduceResult r = reduce_greedy(ctx, 2, opts);
  EXPECT_EQ(r.status, ReduceStatus::SpillNeeded);
  const ReduceResult ro = reduce_optimal(ctx, 2, opts);
  EXPECT_EQ(ro.status, ReduceStatus::SpillNeeded);
}

TEST(Spill, SpillAndReduceInsertsWhenNeeded) {
  const ddg::Ddg d = live_across_dag();
  const TypeContext ctx(d, kFloatReg);
  const auto before = rs_exact(ctx);
  ASSERT_TRUE(before.proven);
  ASSERT_GT(before.rs, 2);

  SpillOptions opts;
  opts.reduce.src.slack_limit = 16;
  const SpillResult r = spill_and_reduce(ctx, 2, opts);
  ASSERT_TRUE(r.status == ReduceStatus::Reduced ||
              r.status == ReduceStatus::AlreadyFits)
      << "status " << static_cast<int>(r.status);
  EXPECT_GT(r.spills_inserted, 0);
  // Verified: the rewritten DAG's exact saturation fits the budget.
  const TypeContext rctx(r.out, kFloatReg);
  const auto after = rs_exact(rctx);
  ASSERT_TRUE(after.proven);
  EXPECT_LE(after.rs, 2);
}

TEST(Spill, FloatingLiveInsSerializeWithoutSpill) {
  // Live-in definitions are schedulable ops (not pinned at cycle 0), so a
  // wide live-in fan-in reduces by pure serialization — no memory traffic.
  const ddg::Ddg d = wide_livein_dag(6);
  const TypeContext ctx(d, kFloatReg);
  SpillOptions opts;
  const SpillResult r = spill_and_reduce(ctx, 4, opts);
  EXPECT_TRUE(r.status == ReduceStatus::Reduced ||
              r.status == ReduceStatus::AlreadyFits);
  EXPECT_EQ(r.spills_inserted, 0);
}

TEST(Spill, BudgetExhaustionReported) {
  const ddg::Ddg d = live_across_dag();
  const TypeContext ctx(d, kFloatReg);
  SpillOptions opts;
  opts.max_spills = 0;  // forbid spilling entirely
  opts.reduce.src.slack_limit = 16;
  const SpillResult r = spill_and_reduce(ctx, 2, opts);
  EXPECT_EQ(r.status, ReduceStatus::SpillNeeded);
  EXPECT_EQ(r.spills_inserted, 0);
}

TEST(Spill, VliwOffsetsHandled) {
  const ddg::Ddg d = ddg::liv_loop1(ddg::vliw_model());
  const TypeContext ctx(d, kFloatReg);
  int idx = -1;
  for (int i = 0; i < ctx.value_count(); ++i) {
    if (!ctx.cons(i).empty() && ctx.cons(i)[0] != *d.bottom()) {
      idx = i;
      break;
    }
  }
  ASSERT_GE(idx, 0);
  const ddg::Ddg split = split_value(ctx, idx, ctx.cons(idx));
  EXPECT_NO_THROW(split.validate());
  // Analyzable end to end.
  const TypeContext sctx(split, kFloatReg);
  const auto rs = rs_exact(sctx);
  EXPECT_GE(rs.rs, 1);
}

}  // namespace
}  // namespace rs::core
