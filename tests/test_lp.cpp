#include <gtest/gtest.h>

#include <cmath>

#include "lp/branch_bound.hpp"
#include "lp/linearize.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"

namespace rs::lp {
namespace {

TEST(Model, ExprNormalization) {
  Model m;
  const Var x = m.add_var(VarKind::Continuous, 0, 10, "x");
  LinExpr e;
  e.add(x, 2.0);
  e.add(x, 3.0);
  e.add_constant(1.0);
  const LinExpr n = e.normalized();
  ASSERT_EQ(n.vars().size(), 1u);
  EXPECT_DOUBLE_EQ(n.coefs()[0], 5.0);
  EXPECT_DOUBLE_EQ(n.constant(), 1.0);
}

TEST(Model, ConstantFoldsIntoRhs) {
  Model m;
  const Var x = m.add_var(VarKind::Continuous, 0, 10, "x");
  LinExpr e = LinExpr(x);
  e.add_constant(4.0);
  m.add_constraint(e, Sense::LE, 10.0);  // x + 4 <= 10  ->  x <= 6
  EXPECT_DOUBLE_EQ(m.constraints()[0].rhs, 6.0);
}

TEST(Model, ExprBounds) {
  Model m;
  const Var x = m.add_var(VarKind::Integer, 1, 4, "x");
  const Var y = m.add_var(VarKind::Integer, -2, 3, "y");
  LinExpr e = LinExpr(x);
  e.add(y, -2.0);
  e.add_constant(1.0);
  const auto [lo, hi] = m.expr_bounds(e);
  EXPECT_DOUBLE_EQ(lo, 1 + 1 - 2.0 * 3);  // x at lo, y at hi
  EXPECT_DOUBLE_EQ(hi, 4 + 1 - 2.0 * -2);
}

TEST(Model, FeasibilityCheck) {
  Model m;
  const Var x = m.add_binary("x");
  const Var y = m.add_binary("y");
  LinExpr sum = LinExpr(x) + LinExpr(y);
  m.add_constraint(sum, Sense::LE, 1.0);
  EXPECT_TRUE(m.is_feasible({1.0, 0.0}));
  EXPECT_FALSE(m.is_feasible({1.0, 1.0}));
  EXPECT_FALSE(m.is_feasible({0.5, 0.0}));  // fractional binary
}

TEST(Simplex, TextbookMax) {
  // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18: opt 36 at (2, 6).
  Model m;
  const Var x = m.add_var(VarKind::Continuous, 0, kInf, "x");
  const Var y = m.add_var(VarKind::Continuous, 0, kInf, "y");
  m.add_constraint(LinExpr(x), Sense::LE, 4);
  m.add_constraint(2.0 * LinExpr(y), Sense::LE, 12);
  LinExpr c = 3.0 * LinExpr(x) + 2.0 * LinExpr(y);
  m.add_constraint(c, Sense::LE, 18);
  m.set_objective(3.0 * LinExpr(x) + 5.0 * LinExpr(y), true);
  const LpResult r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 36.0, 1e-6);
  EXPECT_NEAR(r.x[x.id], 2.0, 1e-6);
  EXPECT_NEAR(r.x[y.id], 6.0, 1e-6);
}

TEST(Simplex, Phase1Infeasible) {
  Model m;
  const Var x = m.add_var(VarKind::Continuous, 0, 5, "x");
  m.add_constraint(LinExpr(x), Sense::GE, 10);  // x >= 10 vs x <= 5
  m.set_objective(LinExpr(x), false);
  EXPECT_EQ(SimplexSolver(m).solve().status, LpStatus::Infeasible);
}

TEST(Simplex, EqualityConstraints) {
  // min x + y st x + y = 5, x - y = 1 -> (3,2), obj 5.
  Model m;
  const Var x = m.add_var(VarKind::Continuous, 0, kInf, "x");
  const Var y = m.add_var(VarKind::Continuous, 0, kInf, "y");
  m.add_constraint(LinExpr(x) + LinExpr(y), Sense::EQ, 5);
  m.add_constraint(LinExpr(x) - LinExpr(y), Sense::EQ, 1);
  m.set_objective(LinExpr(x) + LinExpr(y), false);
  const LpResult r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.x[x.id], 3.0, 1e-6);
  EXPECT_NEAR(r.x[y.id], 2.0, 1e-6);
}

TEST(Simplex, Unbounded) {
  Model m;
  const Var x = m.add_var(VarKind::Continuous, 0, kInf, "x");
  m.set_objective(LinExpr(x), true);
  EXPECT_EQ(SimplexSolver(m).solve().status, LpStatus::Unbounded);
}

TEST(Simplex, BoundedVariablesOnly) {
  // No constraints: optimum at variable bounds.
  Model m;
  const Var x = m.add_var(VarKind::Continuous, -3, 7, "x");
  const Var y = m.add_var(VarKind::Continuous, 2, 9, "y");
  m.set_objective(LinExpr(x) - LinExpr(y), true);
  const LpResult r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 7.0 - 2.0, 1e-9);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x st x >= -5 with x in [-10, 10].
  Model m;
  const Var x = m.add_var(VarKind::Continuous, -10, 10, "x");
  m.add_constraint(LinExpr(x), Sense::GE, -5);
  m.set_objective(LinExpr(x), false);
  const LpResult r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, -5.0, 1e-6);
}

TEST(Simplex, BoundOverridesPerSolve) {
  Model m;
  const Var x = m.add_var(VarKind::Continuous, 0, 10, "x");
  m.set_objective(LinExpr(x), true);
  SimplexSolver s(m);
  EXPECT_NEAR(s.solve().objective, 10.0, 1e-9);
  EXPECT_NEAR(s.solve_with_bounds({0}, {4}).objective, 4.0, 1e-9);
  EXPECT_EQ(s.solve_with_bounds({5}, {4}).status, LpStatus::Infeasible);
}

TEST(Simplex, DegenerateLpTerminates) {
  // Classic degeneracy: multiple redundant constraints through the origin.
  Model m;
  const Var x = m.add_var(VarKind::Continuous, 0, kInf, "x");
  const Var y = m.add_var(VarKind::Continuous, 0, kInf, "y");
  m.add_constraint(LinExpr(x) + LinExpr(y), Sense::LE, 0);
  m.add_constraint(LinExpr(x) + 2.0 * LinExpr(y), Sense::LE, 0);
  m.add_constraint(2.0 * LinExpr(x) + LinExpr(y), Sense::LE, 0);
  m.set_objective(LinExpr(x) + LinExpr(y), true);
  const LpResult r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-9);
}

/// Exhaustive 0/1 enumeration for MIP cross-checks.
double brute_force_best(const Model& m, bool* feasible) {
  const int n = m.var_count();
  RS_REQUIRE(n <= 20, "too many vars for brute force");
  double best = m.maximize() ? -1e300 : 1e300;
  *feasible = false;
  std::vector<double> x(n);
  const std::function<void(int)> rec = [&](int i) {
    if (i == n) {
      if (!m.is_feasible(x)) return;
      const double obj = m.objective_value(x);
      *feasible = true;
      best = m.maximize() ? std::max(best, obj) : std::min(best, obj);
      return;
    }
    const VarInfo& v = m.var(i);
    for (double val = v.lo; val <= v.hi + 1e-9; val += 1.0) {
      x[i] = val;
      rec(i + 1);
    }
  };
  rec(0);
  return best;
}

TEST(BranchBound, KnapsackExact) {
  // max 10a + 13b + 7c st 3a + 4b + 2c <= 6: best a+c? 10+7=17; b+c=20.
  Model m;
  const Var a = m.add_binary("a");
  const Var b = m.add_binary("b");
  const Var c = m.add_binary("c");
  LinExpr w = 3.0 * LinExpr(a) + 4.0 * LinExpr(b) + 2.0 * LinExpr(c);
  m.add_constraint(w, Sense::LE, 6);
  LinExpr obj = 10.0 * LinExpr(a) + 13.0 * LinExpr(b) + 7.0 * LinExpr(c);
  m.set_objective(obj, true);
  const MipResult r = solve_mip(m);
  ASSERT_EQ(r.status, MipStatus::Optimal);
  EXPECT_NEAR(r.objective, 20.0, 1e-6);
}

TEST(BranchBound, InfeasibleInteger) {
  // 2x = 3 with x integer.
  Model m;
  const Var x = m.add_int(0, 10, "x");
  m.add_constraint(2.0 * LinExpr(x), Sense::EQ, 3);
  m.set_objective(LinExpr(x), false);
  EXPECT_EQ(solve_mip(m).status, MipStatus::Infeasible);
}

TEST(BranchBound, MatchesBruteForceOnRandomMips) {
  support::Rng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    Model m;
    const int n = rng.next_int(3, 7);
    std::vector<Var> xs;
    for (int i = 0; i < n; ++i) {
      xs.push_back(rng.next_bool(0.7)
                       ? m.add_binary("x" + std::to_string(i))
                       : m.add_int(0, 3, "x" + std::to_string(i)));
    }
    const int rows = rng.next_int(1, 4);
    for (int r = 0; r < rows; ++r) {
      LinExpr e;
      for (const Var& v : xs) e.add(v, rng.next_int(-3, 5));
      m.add_constraint(e, rng.next_bool(0.5) ? Sense::LE : Sense::GE,
                       rng.next_int(-2, 8));
    }
    LinExpr obj;
    for (const Var& v : xs) obj.add(v, rng.next_int(-4, 6));
    m.set_objective(obj, rng.next_bool(0.5));

    bool feasible = false;
    const double want = brute_force_best(m, &feasible);
    const MipResult got = solve_mip(m);
    if (!feasible) {
      EXPECT_EQ(got.status, MipStatus::Infeasible) << "trial " << trial;
    } else {
      ASSERT_EQ(got.status, MipStatus::Optimal) << "trial " << trial;
      EXPECT_NEAR(got.objective, want, 1e-6) << "trial " << trial;
      EXPECT_TRUE(m.is_feasible(got.x));
    }
  }
}

TEST(BranchBound, NodeLimitReportsTruncation) {
  Model m;
  std::vector<Var> xs;
  LinExpr obj;
  for (int i = 0; i < 14; ++i) {
    xs.push_back(m.add_binary("x" + std::to_string(i)));
    obj.add(xs.back(), 1.0 + 0.1 * i);
  }
  LinExpr sum;
  for (const Var& v : xs) sum.add(v, 2.0);
  m.add_constraint(sum, Sense::LE, 13);  // odd capacity: fractional root LP
  m.set_objective(obj, true);
  MipOptions opts;
  opts.node_limit = 2;
  const MipResult r = solve_mip(m, opts);
  EXPECT_NE(r.status, MipStatus::Optimal);
}

TEST(Linearize, IffGeBothDirections) {
  // z <=> (x >= 3), x integer in [0,5]: check every x with z forced.
  for (int xv = 0; xv <= 5; ++xv) {
    for (int zv = 0; zv <= 1; ++zv) {
      Model m;
      const Var x = m.add_int(0, 5, "x");
      const Var z = m.add_binary("z");
      add_iff_ge(m, z, LinExpr(x), 3.0, "t");
      m.add_constraint(LinExpr(x), Sense::EQ, xv);
      m.add_constraint(LinExpr(z), Sense::EQ, zv);
      m.set_objective(LinExpr(x), true);
      const bool want = (xv >= 3) == (zv == 1);
      const MipResult r = solve_mip(m);
      EXPECT_EQ(r.status == MipStatus::Optimal, want)
          << "x=" << xv << " z=" << zv;
    }
  }
}

TEST(Linearize, IffGeDegenerateCases) {
  {
    Model m;  // c below range: z pinned to 1
    const Var x = m.add_int(5, 9, "x");
    const Var z = m.add_binary("z");
    add_iff_ge(m, z, LinExpr(x), 2.0, "t");
    m.set_objective(LinExpr(z), false);
    const MipResult r = solve_mip(m);
    ASSERT_EQ(r.status, MipStatus::Optimal);
    EXPECT_NEAR(r.x[z.id], 1.0, 1e-6);
  }
  {
    Model m;  // c above range: z pinned to 0
    const Var x = m.add_int(0, 3, "x");
    const Var z = m.add_binary("z");
    add_iff_ge(m, z, LinExpr(x), 9.0, "t");
    m.set_objective(LinExpr(z), true);
    const MipResult r = solve_mip(m);
    ASSERT_EQ(r.status, MipStatus::Optimal);
    EXPECT_NEAR(r.x[z.id], 0.0, 1e-6);
  }
}

TEST(Linearize, AndOrTruthTables) {
  for (int av = 0; av <= 1; ++av) {
    for (int bv = 0; bv <= 1; ++bv) {
      Model m;
      const Var a = m.add_binary("a");
      const Var b = m.add_binary("b");
      const Var z_and = m.add_binary("z_and");
      const Var z_or = m.add_binary("z_or");
      add_and(m, z_and, a, b, "and");
      add_or(m, z_or, a, b, "or");
      m.add_constraint(LinExpr(a), Sense::EQ, av);
      m.add_constraint(LinExpr(b), Sense::EQ, bv);
      m.set_objective(LinExpr(z_and) + LinExpr(z_or), true);
      const MipResult r = solve_mip(m);
      ASSERT_EQ(r.status, MipStatus::Optimal);
      EXPECT_NEAR(r.x[z_and.id], av && bv ? 1 : 0, 1e-6);
      EXPECT_NEAR(r.x[z_or.id], av || bv ? 1 : 0, 1e-6);
    }
  }
}

TEST(Linearize, MaxOperator) {
  // k = max(x, y, 4) with x in [0,9], y in [0,9].
  for (int xv : {0, 3, 7}) {
    for (int yv : {1, 5, 9}) {
      Model m;
      const Var x = m.add_int(0, 9, "x");
      const Var y = m.add_int(0, 9, "y");
      const Var k = add_max(m, {LinExpr(x), LinExpr(y), LinExpr(4.0)}, "k");
      m.add_constraint(LinExpr(x), Sense::EQ, xv);
      m.add_constraint(LinExpr(y), Sense::EQ, yv);
      m.set_objective(LinExpr(k), false);  // push k down to the true max
      const MipResult r = solve_mip(m);
      ASSERT_EQ(r.status, MipStatus::Optimal);
      EXPECT_NEAR(r.x[k.id], std::max({xv, yv, 4}), 1e-6);
    }
  }
}

TEST(Model, LpFormatExport) {
  Model m;
  const Var x = m.add_int(0, 5, "sigma.a");
  const Var y = m.add_binary("s|weird name");
  LinExpr c = 2.0 * LinExpr(x) + LinExpr(y);
  m.add_constraint(c, Sense::LE, 7);
  m.set_objective(LinExpr(x) + 3.0 * LinExpr(y), true);
  const std::string lp = m.to_lp_format();
  EXPECT_NE(lp.find("Maximize"), std::string::npos);
  EXPECT_NE(lp.find("Subject To"), std::string::npos);
  EXPECT_NE(lp.find("sigma.a"), std::string::npos);
  EXPECT_NE(lp.find("s_weird_name"), std::string::npos);  // sanitized
  EXPECT_NE(lp.find("Generals"), std::string::npos);
  EXPECT_NE(lp.find("End"), std::string::npos);
  EXPECT_EQ(lp.find("|"), std::string::npos);
}

TEST(Linearize, Unless) {
  // guard = 0 ==> x <= 2.
  Model m;
  const Var g = m.add_binary("g");
  const Var x = m.add_int(0, 9, "x");
  add_unless(m, g, LinExpr(x), 2.0, "t");
  m.add_constraint(LinExpr(g), Sense::EQ, 0.0);
  m.set_objective(LinExpr(x), true);
  const MipResult r = solve_mip(m);
  ASSERT_EQ(r.status, MipStatus::Optimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
}

}  // namespace
}  // namespace rs::lp
