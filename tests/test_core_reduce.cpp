// RS reduction (section 4): Theorem 4.2 construction, exact and heuristic
// reduction, the section-4 intLP, the SRC solver, and the minimization
// baseline of the section-6 discussion.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/min_reg.hpp"
#include "core/reduce.hpp"
#include "core/reduce_ilp.hpp"
#include "core/rs_exact.hpp"
#include "core/src_solver.hpp"
#include "ddg/builder.hpp"
#include "ddg/generators.hpp"
#include "ddg/kernels.hpp"
#include "graph/paths.hpp"
#include "graph/topo.hpp"
#include "sched/lifetime.hpp"
#include "support/random.hpp"

namespace rs::core {
namespace {

using ddg::kFloatReg;
using ddg::kIntReg;

// --------------------------------------------------------------- SRC ----

TEST(SrcSolver, AsapFeasibleAtCriticalPath) {
  const ddg::Ddg d = ddg::lin_ddot(ddg::superscalar_model());
  const TypeContext ctx(d, kFloatReg);
  const int rs = rs_exact(ctx).rs;
  SrcSolver solver(ctx, rs);  // R = RS: ASAP itself must fit
  const SrcResult r =
      solver.feasible(graph::critical_path(d.graph()), 0, SrcOptions{});
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(sched::is_valid(d, r.sigma));
  EXPECT_LE(r.rn, rs);
}

TEST(SrcSolver, TightRegisterBoundForcesLongerMakespan) {
  const ddg::Ddg d = ddg::matmul_unroll4(ddg::superscalar_model());
  const TypeContext ctx(d, kFloatReg);
  const RsExactResult rs = rs_exact(ctx);
  ASSERT_TRUE(rs.proven);
  ASSERT_GE(rs.rs, 4);
  const sched::Time cp = graph::critical_path(d.graph());
  SrcOptions opts;
  SrcSolver tight(ctx, rs.rs - 2);
  const SrcResult r = tight.minimize_makespan(opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.makespan, cp);
  EXPECT_LE(r.rn, rs.rs - 2);
}

TEST(SrcSolver, BinaryOperandsNeedTwoRegisters) {
  // Any schedule keeps both operands of an FpAdd alive at its read cycle,
  // so R = 1 is infeasible whatever the makespan budget.
  ddg::KernelBuilder kb(ddg::superscalar_model(), "two");
  const auto a = kb.live_in(kFloatReg, "a");
  const auto b = kb.live_in(kFloatReg, "b");
  kb.fadd("s", a, b);
  const ddg::Ddg d = kb.build();
  const TypeContext ctx(d, kFloatReg);
  SrcSolver solver(ctx, 1);
  SrcOptions opts;
  opts.slack_limit = 8;
  const SrcResult r = solver.minimize_makespan(opts);
  EXPECT_FALSE(r.feasible);
}

TEST(SrcSolver, LexicographicMaximizesRegisterUse) {
  const ddg::Ddg d = ddg::fir8(ddg::superscalar_model());
  const TypeContext ctx(d, kFloatReg);
  const RsExactResult rs = rs_exact(ctx);
  ASSERT_TRUE(rs.proven);
  const int R = rs.rs - 1;
  SrcSolver solver(ctx, R);
  const SrcResult r = solver.reduce_lexicographic(rs.rs, SrcOptions{},
                                                  support::SolveContext(30));
  ASSERT_TRUE(r.feasible);
  // The decrement loop fills the register file: RN == R is achievable here
  // because RS > R and fir8's pressure is smoothly tunable.
  EXPECT_EQ(r.rn, R);
}

// ------------------------------------------------- Theorem 4.2 arcs ----

TEST(Extension, PreservesScheduleAndBoundsRs) {
  support::Rng rng(1234);
  const auto model = ddg::superscalar_model();
  for (int trial = 0; trial < 12; ++trial) {
    ddg::RandomDagParams p;
    p.n_ops = 10;
    const ddg::Ddg d = ddg::random_dag(rng, model, p);
    const TypeContext ctx(d, kFloatReg);
    // Random valid schedule.
    sched::Schedule s = sched::asap(d);
    for (auto& t : s.time) t += rng.next_int(0, 4);
    for (int round = 0; round < d.op_count(); ++round) {
      for (const graph::Edge& e : d.graph().edges()) {
        s.time[e.dst] = std::max(s.time[e.dst], s.time[e.src] + e.latency);
      }
    }
    const int rn = sched::register_need(d, kFloatReg, s);
    const ExtensionResult ext = extend_by_schedule(ctx, s);
    // Read/write tie circuits are possible for arbitrary schedules (the
    // reduction engines filter such witnesses); skip those trials here.
    if (!ext.is_dag) continue;
    // sigma remains valid on G-bar (General latency mode).
    EXPECT_TRUE(sched::is_valid(ext.extended, s));
    // Theorem 4.2: RS(G-bar) == RN_sigma(G).
    const TypeContext ectx(ext.extended, kFloatReg);
    const RsExactResult after = rs_exact(ectx);
    ASSERT_TRUE(after.proven);
    EXPECT_EQ(after.rs, rn) << "trial " << trial;
  }
}

/// A strictly ordered (sequential-semantics) valid schedule: scale ASAP by
/// n+1 and break ties by topological rank. No two ops share a cycle, so
/// Theorem-4.2 extensions cannot create tie circuits.
sched::Schedule sequentialized_asap(const ddg::Ddg& d) {
  const auto order = graph::topo_order(d.graph());
  std::vector<int> rank(d.op_count());
  for (int i = 0; i < d.op_count(); ++i) rank[(*order)[i]] = i;
  sched::Schedule s = sched::asap(d);
  const sched::Time k = d.op_count() + 1;
  for (ddg::NodeId v = 0; v < d.op_count(); ++v) {
    s.time[v] = s.time[v] * k + rank[v];
  }
  return s;
}

TEST(Extension, PaperStrictModeIsStricter) {
  const ddg::Ddg d = ddg::matmul_unroll4(ddg::superscalar_model());
  const TypeContext ctx(d, kFloatReg);
  const sched::Schedule s = sequentialized_asap(d);
  ASSERT_TRUE(sched::is_valid(d, s));
  const ExtensionResult loose = extend_by_schedule(ctx, s, ArcLatencyMode::General);
  const ExtensionResult strict =
      extend_by_schedule(ctx, s, ArcLatencyMode::PaperStrict);
  ASSERT_TRUE(loose.is_dag);
  ASSERT_TRUE(strict.is_dag);
  // Strict arcs carry latency 1 instead of 0: critical path can only grow.
  EXPECT_GE(graph::critical_path(strict.extended.graph()),
            graph::critical_path(loose.extended.graph()));
  // Both still bound RS by the witnessed register need.
  const int rn = sched::register_need(d, kFloatReg, s);
  for (const ExtensionResult* e : {&loose, &strict}) {
    const TypeContext ectx(e->extended, kFloatReg);
    const RsExactResult after = rs_exact(ectx);
    ASSERT_TRUE(after.proven);
    EXPECT_LE(after.rs, rn);
  }
}

TEST(Extension, OriginalArcsAllPreserved) {
  const ddg::Ddg d = ddg::liv_loop1(ddg::superscalar_model());
  const TypeContext ctx(d, kFloatReg);
  const ExtensionResult ext = extend_by_schedule(ctx, sched::asap(d));
  EXPECT_GE(ext.extended.graph().edge_count(), d.graph().edge_count());
  for (graph::EdgeId e = 0; e < d.graph().edge_count(); ++e) {
    const graph::Edge& orig = d.graph().edge(e);
    const graph::Edge& kept = ext.extended.graph().edge(e);
    EXPECT_EQ(orig.src, kept.src);
    EXPECT_EQ(orig.dst, kept.dst);
    EXPECT_EQ(orig.latency, kept.latency);
  }
}

// --------------------------------------------------------- reduction ----

struct ReduceCase {
  const char* kernel;
  int r_offset;
};

class ReduceBothEngines : public ::testing::TestWithParam<ReduceCase> {};

TEST_P(ReduceBothEngines, OutputsFitAndOptimalDominates) {
  const auto [kernel, r_offset] = GetParam();
  const ddg::Ddg d = ddg::build_kernel(kernel, ddg::superscalar_model());
  const TypeContext ctx(d, kFloatReg);
  const RsExactResult rs = rs_exact(ctx);
  ASSERT_TRUE(rs.proven);
  const int R = rs.rs - r_offset;
  if (R < 2) GTEST_SKIP() << "kernel too small for this offset";

  ReduceOptions opts;
  opts.rs_upper = rs.rs;

  const ReduceResult opt =
      reduce_optimal(ctx, R, opts, support::SolveContext(30));
  ASSERT_EQ(opt.status, ReduceStatus::Reduced) << kernel;
  const ReduceResult heur = reduce_greedy(ctx, R, opts);
  ASSERT_EQ(heur.status, ReduceStatus::Reduced) << kernel;

  for (const ReduceResult* r : {&opt, &heur}) {
    ASSERT_TRUE(r->extended.has_value());
    EXPECT_TRUE(graph::is_dag(r->extended->graph()));
    const TypeContext rctx(*r->extended, kFloatReg);
    const RsExactResult after = rs_exact(rctx);
    ASSERT_TRUE(after.proven);
    EXPECT_LE(after.rs, R) << kernel << " reduction left RS above the limit";
    EXPECT_GE(r->critical_path, r->original_cp);
  }
  // Optimality dominance: exact reduction keeps saturation at least as
  // high as any valid reduction, including the heuristic's.
  const TypeContext hctx(*heur.extended, kFloatReg);
  const int heur_rs = rs_exact(hctx).rs;
  EXPECT_GE(opt.achieved_rs, heur_rs);
}

// complex-mul2 (two fully independent complex products) is the known
// budget-buster — its symmetric search space is exactly the "many days"
// regime the paper reports for CPLEX; EXP-2 reports it as skipped.
INSTANTIATE_TEST_SUITE_P(
    Kernels, ReduceBothEngines,
    ::testing::Values(ReduceCase{"lin-ddot", 1}, ReduceCase{"lin-daxpy", 1},
                      ReduceCase{"liv-loop1", 1}, ReduceCase{"liv-loop1", 2},
                      ReduceCase{"liv-loop5", 1}, ReduceCase{"matmul-u4", 1},
                      ReduceCase{"matmul-u4", 2}, ReduceCase{"estrin8", 1},
                      ReduceCase{"spec-tomcatv", 1}));

TEST(Reduce, AlreadyFitsIsIdentity) {
  const ddg::Ddg d = ddg::lin_dscal(ddg::superscalar_model());
  const TypeContext ctx(d, kFloatReg);
  const int rs = rs_exact(ctx).rs;
  const ReduceResult r = reduce_optimal(ctx, rs + 3, ReduceOptions{});
  EXPECT_EQ(r.status, ReduceStatus::AlreadyFits);
  EXPECT_EQ(r.arcs_added, 0);
  EXPECT_EQ(r.critical_path, r.original_cp);
}

TEST(Reduce, SpillNeededWhenOneRegisterImpossible) {
  ddg::KernelBuilder kb(ddg::superscalar_model(), "two");
  const auto a = kb.live_in(kFloatReg, "a");
  const auto b = kb.live_in(kFloatReg, "b");
  kb.fadd("s", a, b);
  const ddg::Ddg d = kb.build();
  const TypeContext ctx(d, kFloatReg);
  ReduceOptions opts;
  opts.src.slack_limit = 8;
  const ReduceResult r = reduce_optimal(ctx, 1, opts);
  EXPECT_EQ(r.status, ReduceStatus::SpillNeeded);
  // The heuristic reaches the same verdict (no candidate serialization can
  // separate two operands of one instruction).
  const ReduceResult h = reduce_greedy(ctx, 1, opts);
  EXPECT_EQ(h.status, ReduceStatus::SpillNeeded);
}

TEST(Reduce, GreedyMatchesOptimalOnEasyCases) {
  // Independent loads: reduction is pure serialization, both engines land
  // on RS == R with zero ILP loss (long pole is the latency-17 divide).
  ddg::KernelBuilder kb(ddg::superscalar_model(), "indep");
  const auto p = kb.live_in(kIntReg, "p");
  const auto big = kb.fdiv("slow", kb.fload("x", p), kb.fload("y", p));
  (void)big;
  for (int i = 0; i < 4; ++i) kb.fload("v" + std::to_string(i), p);
  const ddg::Ddg d = kb.build();
  const TypeContext ctx(d, kFloatReg);
  const RsExactResult rs = rs_exact(ctx);
  ASSERT_TRUE(rs.proven);
  const int R = rs.rs - 1;
  ReduceOptions opts;
  opts.rs_upper = rs.rs;
  const ReduceResult opt = reduce_optimal(ctx, R, opts);
  const ReduceResult heur = reduce_greedy(ctx, R, opts);
  ASSERT_EQ(opt.status, ReduceStatus::Reduced);
  ASSERT_EQ(heur.status, ReduceStatus::Reduced);
  EXPECT_EQ(opt.ilp_loss(), 0);
  EXPECT_EQ(heur.ilp_loss(), 0);
}

// ----------------------------------------------------- section-4 intLP --

TEST(ReduceIlp, MatchesCombinatorialOptimalMakespan) {
  support::Rng rng(77);
  const auto model = ddg::superscalar_model();
  for (int trial = 0; trial < 6; ++trial) {
    ddg::RandomDagParams p;
    p.n_ops = 7;
    const ddg::Ddg d = ddg::random_dag(rng, model, p);
    const TypeContext ctx(d, kFloatReg);
    const RsExactResult rs = rs_exact(ctx);
    ASSERT_TRUE(rs.proven);
    if (rs.rs < 3) continue;
    const int R = rs.rs - 1;

    // Combinatorial minimum makespan subject to RN <= R.
    SrcOptions sopts;
    const SrcResult src = SrcSolver(ctx, R).minimize_makespan(sopts);
    if (src.status == SrcStatus::LimitHit) continue;

    ReduceIlpOptions iopts;
    iopts.require_all_colors_used = false;  // pure makespan objective
    const ReduceIlpResult ilp =
        reduce_ilp_fixed(ctx, R, iopts, support::SolveContext(120));
    if (!src.feasible) {
      // R below the minimal register need: both must agree on infeasibility
      // (the fixed-R intLP reports it as spill-at-this-R).
      EXPECT_EQ(ilp.status, ReduceStatus::SpillNeeded) << "trial " << trial;
      continue;
    }
    ASSERT_EQ(ilp.status, ReduceStatus::Reduced) << "trial " << trial;
    EXPECT_TRUE(sched::is_valid(d, ilp.sigma));
    EXPECT_LE(sched::register_need(d, kFloatReg, ilp.sigma), R);
    EXPECT_EQ(ilp.makespan, src.makespan)
        << "intLP and SRC search disagree on the optimal makespan";
  }
}

TEST(ReduceIlp, DecrementLoopFindsFeasibleColorCount) {
  const ddg::Ddg d = ddg::lin_ddot(ddg::superscalar_model());
  const TypeContext ctx(d, kFloatReg);
  // Ask for more colors than values: the all-colors-used constraint is
  // unsatisfiable at first, the decrement loop must recover.
  const int nv = ctx.value_count();
  const ReduceIlpResult r =
      reduce_ilp(ctx, nv + 2, ReduceIlpOptions{}, support::SolveContext(120));
  ASSERT_EQ(r.status, ReduceStatus::Reduced);
  EXPECT_LE(r.colors_used, nv);
  EXPECT_TRUE(sched::is_valid(d, r.sigma));
}

TEST(ReduceIlp, ExtensionInheritsTheoremGuarantee) {
  const ddg::Ddg d = ddg::lin_daxpy(ddg::superscalar_model());
  const TypeContext ctx(d, kFloatReg);
  const RsExactResult rs = rs_exact(ctx);
  ASSERT_TRUE(rs.proven);
  ASSERT_GE(rs.rs, 3);
  const ReduceIlpResult r = reduce_ilp_fixed(
      ctx, rs.rs - 1, ReduceIlpOptions{}, support::SolveContext(120));
  ASSERT_EQ(r.status, ReduceStatus::Reduced);
  ASSERT_TRUE(r.extended.has_value());
  const TypeContext ectx(*r.extended, kFloatReg);
  const RsExactResult after = rs_exact(ectx);
  ASSERT_TRUE(after.proven);
  EXPECT_EQ(after.rs, r.achieved_rn);
  EXPECT_LE(after.rs, rs.rs - 1);
}

// ------------------------------------------- VLIW non-positive circuits --

TEST(ReduceVliw, ExtensionsStaySchedulableAndAcyclic) {
  for (const char* kernel : {"lin-ddot", "liv-loop5", "lin-daxpy"}) {
    SCOPED_TRACE(kernel);
    const ddg::Ddg d = ddg::build_kernel(kernel, ddg::vliw_model());
    const TypeContext ctx(d, kFloatReg);
    const RsExactResult rs = rs_exact(ctx);
    ASSERT_TRUE(rs.proven);
    if (rs.rs < 3) continue;
    ReduceOptions opts;
    opts.rs_upper = rs.rs;
    const ReduceResult r = reduce_optimal(ctx, rs.rs - 1, opts);
    ASSERT_EQ(r.status, ReduceStatus::Reduced);
    ASSERT_TRUE(r.extended.has_value());
    // The paper's requirement: the extended DDG admits a topological sort
    // (leaf filter in the solver enforces it).
    EXPECT_TRUE(graph::is_dag(r.extended->graph()));
    EXPECT_FALSE(graph::has_positive_circuit(r.extended->graph()));
    const TypeContext ectx(*r.extended, kFloatReg);
    EXPECT_LE(rs_exact(ectx).rs, rs.rs - 1);
  }
}

// ------------------------------------------------- minimization (Fig 2) --

TEST(MinReg, FindsProvableMinimumUnderCpBudget) {
  const ddg::Ddg d = ddg::lin_ddot(ddg::superscalar_model());
  const TypeContext ctx(d, kFloatReg);
  SrcOptions opts;
  const MinRegResult r = minimize_register_need(ctx, 0, opts);
  ASSERT_TRUE(r.proven);
  EXPECT_GE(r.min_need, 2);  // a binary op exists: two operands co-alive
  EXPECT_EQ(sched::register_need(d, kFloatReg, r.sigma), r.min_need);
  // The minimal-need DAG freezes RS down to the minimum.
  ASSERT_TRUE(r.extended.has_value());
  const TypeContext ectx(*r.extended, kFloatReg);
  const RsExactResult after = rs_exact(ectx);
  ASSERT_TRUE(after.proven);
  EXPECT_EQ(after.rs, r.min_need);
}

TEST(MinReg, MinimizationIsMoreRestrictiveThanReduction) {
  // The section-6 argument: with R registers available, RS reduction keeps
  // RS(G-bar) near R while minimization pins it to the minimum need.
  const ddg::Ddg d = ddg::matmul_unroll4(ddg::superscalar_model());
  const TypeContext ctx(d, kFloatReg);
  const RsExactResult rs = rs_exact(ctx);
  ASSERT_TRUE(rs.proven);
  const int R = rs.rs - 1;
  ReduceOptions ropts;
  ropts.rs_upper = rs.rs;
  const ReduceResult red = reduce_optimal(ctx, R, ropts);
  ASSERT_EQ(red.status, ReduceStatus::Reduced);
  SrcOptions sopts;
  const MinRegResult min = minimize_register_need(ctx, red.critical_path, sopts);
  ASSERT_TRUE(min.proven);
  EXPECT_LT(min.min_need, red.achieved_rs)
      << "minimization should under-use the register file";
}

}  // namespace
}  // namespace rs::core
