// The SolveContext spine: deadline/cancel/stats semantics of the context
// itself, plus the library-wide budget-exhaustion contract — every exact
// solver handed an already-expired (~1e-9 s) or pre-cancelled context must
// return a *valid witnessed* bound with proven == false and the right stop
// cause, never crash, and never spin.
#include <gtest/gtest.h>

#include "core/reduce.hpp"
#include "core/reduce_ilp.hpp"
#include "core/rs_exact.hpp"
#include "core/rs_ilp.hpp"
#include "core/saturation.hpp"
#include "core/src_solver.hpp"
#include "ddg/kernels.hpp"
#include "graph/paths.hpp"
#include "sched/lifetime.hpp"
#include "support/solve_context.hpp"

namespace rs {
namespace {

using core::ReduceStatus;
using core::RsExactOptions;
using core::RsExactResult;
using core::SrcOptions;
using core::SrcSolver;
using core::SrcStatus;
using core::TypeContext;
using support::CancelToken;
using support::SolveContext;
using support::SolveStats;
using support::StopCause;

constexpr double kTinyBudget = 1e-9;

// ------------------------------------------------------ context semantics --

TEST(SolveContext, UnlimitedByDefault) {
  const SolveContext ctx;
  EXPECT_TRUE(ctx.unlimited());
  EXPECT_FALSE(ctx.expired());
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_FALSE(ctx.stop_requested());
  EXPECT_FALSE(ctx.should_stop(0));
  EXPECT_GT(ctx.remaining_seconds(), 1e100);
  EXPECT_EQ(ctx.cause_now(false), StopCause::Proven);
  EXPECT_EQ(ctx.cause_now(true), StopCause::LimitHit);
}

TEST(SolveContext, NonPositiveBudgetMeansUnlimited) {
  EXPECT_TRUE(SolveContext(0.0).unlimited());
  EXPECT_TRUE(SolveContext(-1.0).unlimited());
}

TEST(SolveContext, TinyBudgetExpiresImmediately) {
  const SolveContext ctx(kTinyBudget);
  EXPECT_FALSE(ctx.unlimited());
  EXPECT_TRUE(ctx.expired());
  EXPECT_TRUE(ctx.stop_requested());
  // Tick 0 is a clock-poll tick, so the hot-loop check fires too.
  EXPECT_TRUE(ctx.should_stop(0));
  EXPECT_EQ(ctx.cause_now(false), StopCause::TimedOut);
}

TEST(SolveContext, HotLoopPollsClockCoarsely) {
  const SolveContext ctx(kTinyBudget);
  // Off-interval ticks skip the clock: only the cancel flag is consulted.
  EXPECT_FALSE(ctx.should_stop(1));
  EXPECT_FALSE(ctx.should_stop(SolveContext::kPollInterval - 1));
  EXPECT_TRUE(ctx.should_stop(SolveContext::kPollInterval));
}

TEST(SolveContext, CancelTokenSharedAcrossCopiesAndChildren) {
  const SolveContext parent;
  const SolveContext child = parent.sub_budget(1000.0);
  const SolveContext copy = parent;  // NOLINT(performance-unnecessary-copy)
  EXPECT_FALSE(child.cancelled());
  parent.request_cancel();
  EXPECT_TRUE(parent.cancelled());
  EXPECT_TRUE(child.cancelled());
  EXPECT_TRUE(copy.cancelled());
  // Cancelled wins over everything in the cause taxonomy.
  EXPECT_EQ(child.cause_now(true), StopCause::Cancelled);
  // Off-interval ticks still observe the cancel flag.
  EXPECT_TRUE(child.should_stop(1));
}

TEST(SolveContext, SubBudgetOnlyTightens) {
  const SolveContext parent(kTinyBudget);
  // A child asking for a huge budget cannot outlive its expired parent.
  EXPECT_TRUE(parent.sub_budget(1e6).expired());
  EXPECT_TRUE(parent.split(1).expired());
  // An unlimited parent tightens to the child's own deadline.
  const SolveContext child = SolveContext().sub_budget(kTinyBudget);
  EXPECT_FALSE(child.unlimited());
  EXPECT_TRUE(child.expired());
  // Splitting an unlimited context stays unlimited.
  EXPECT_TRUE(SolveContext().split(4).unlimited());
}

TEST(SolveContext, StatsSinkSharedWithChildren) {
  const SolveContext parent;
  SolveStats leaf;
  leaf.nodes = 10;
  leaf.solves = 1;
  leaf.stop = StopCause::LimitHit;
  parent.sub_budget(5.0).record(leaf);
  parent.record(leaf);
  const SolveStats total = parent.stats();
  EXPECT_EQ(total.nodes, 20);
  EXPECT_EQ(total.solves, 2);
  EXPECT_EQ(total.stop, StopCause::LimitHit);
}

TEST(SolveStats, MergeKeepsWorstCause) {
  EXPECT_EQ(support::worse_cause(StopCause::Proven, StopCause::LimitHit),
            StopCause::LimitHit);
  EXPECT_EQ(support::worse_cause(StopCause::TimedOut, StopCause::LimitHit),
            StopCause::TimedOut);
  EXPECT_EQ(support::worse_cause(StopCause::TimedOut, StopCause::Cancelled),
            StopCause::Cancelled);
  SolveStats a;
  a.stop = StopCause::TimedOut;
  a.nodes = 5;
  SolveStats b;
  b.stop = StopCause::LimitHit;
  b.prunes = 3;
  a.merge(b);
  EXPECT_EQ(a.stop, StopCause::TimedOut);
  EXPECT_EQ(a.nodes, 5);
  EXPECT_EQ(a.prunes, 3);
}

TEST(SolveStats, TokensAreStable) {
  EXPECT_STREQ(support::stop_cause_token(StopCause::Proven), "proven");
  EXPECT_STREQ(support::stop_cause_token(StopCause::LimitHit), "limit");
  EXPECT_STREQ(support::stop_cause_token(StopCause::TimedOut), "timeout");
  EXPECT_STREQ(support::stop_cause_token(StopCause::Cancelled), "cancelled");
}

// ------------------------------------------------- budget exhaustion bar --

ddg::Ddg pressured_kernel() {
  return ddg::fir8(ddg::superscalar_model());
}

TEST(BudgetExhaustion, RsExactReturnsWitnessedBound) {
  const ddg::Ddg d = pressured_kernel();
  const TypeContext ctx(d, ddg::kFloatReg);
  const RsExactResult r =
      core::rs_exact(ctx, RsExactOptions{}, SolveContext(kTinyBudget));
  EXPECT_FALSE(r.proven);
  EXPECT_EQ(r.stats.stop, StopCause::TimedOut);
  // The warm start still yields a valid witnessed lower bound.
  ASSERT_GE(r.rs, 1);
  ASSERT_TRUE(r.killing.complete());
  ASSERT_TRUE(sched::is_valid(d, r.witness));
  EXPECT_EQ(sched::register_need(d, ddg::kFloatReg, r.witness), r.rs);
  // Cross-check against the unbudgeted exact answer: bound from below.
  const RsExactResult full = core::rs_exact(ctx);
  ASSERT_TRUE(full.proven);
  EXPECT_EQ(full.stats.stop, StopCause::Proven);
  EXPECT_LE(r.rs, full.rs);
}

TEST(BudgetExhaustion, RsExactPreCancelledReportsCancelled) {
  const ddg::Ddg d = pressured_kernel();
  const TypeContext ctx(d, ddg::kFloatReg);
  CancelToken token;
  token.request_cancel();
  const RsExactResult r =
      core::rs_exact(ctx, RsExactOptions{}, SolveContext(0.0, token));
  EXPECT_FALSE(r.proven);
  EXPECT_EQ(r.stats.stop, StopCause::Cancelled);
  ASSERT_TRUE(sched::is_valid(d, r.witness));
  EXPECT_EQ(sched::register_need(d, ddg::kFloatReg, r.witness), r.rs);
}

TEST(BudgetExhaustion, BranchBoundIlpStopsWithTimeoutAndStaysWitnessed) {
  const ddg::Ddg d = pressured_kernel();
  const TypeContext ctx(d, ddg::kFloatReg);
  const core::RsIlpResult r =
      core::rs_ilp(ctx, core::RsIlpOptions{}, SolveContext(kTinyBudget));
  EXPECT_FALSE(r.proven);
  EXPECT_NE(r.status, lp::MipStatus::Optimal);
  EXPECT_EQ(r.solve_stats.stop, StopCause::TimedOut);
  // Even with zero branch-and-bound incumbents, the ILP engine falls back
  // to the greedy certificate: a valid witnessed lower bound.
  ASSERT_GE(r.rs, 1);
  ASSERT_TRUE(sched::is_valid(d, r.witness));
  EXPECT_EQ(sched::register_need(d, ddg::kFloatReg, r.witness), r.rs);
  const RsExactResult full = core::rs_exact(ctx);
  ASSERT_TRUE(full.proven);
  EXPECT_LE(r.rs, full.rs);
}

TEST(BudgetExhaustion, SrcSolverStopsWithTimeout) {
  const ddg::Ddg d = pressured_kernel();
  const TypeContext ctx(d, ddg::kFloatReg);
  const core::RsExactResult rs = core::rs_exact(ctx);
  ASSERT_TRUE(rs.proven);
  ASSERT_GE(rs.rs, 2);
  SrcSolver solver(ctx, rs.rs - 1);
  const core::SrcResult r =
      solver.feasible(graph::critical_path(d.graph()) + 4, 0, SrcOptions{},
                      SolveContext(kTinyBudget));
  EXPECT_EQ(r.status, SrcStatus::LimitHit);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.stats.stop, StopCause::TimedOut);

  const core::SrcResult sweep = solver.minimize_makespan(
      SrcOptions{}, SolveContext(kTinyBudget));
  EXPECT_EQ(sweep.status, SrcStatus::LimitHit);
  EXPECT_EQ(sweep.stats.stop, StopCause::TimedOut);
}

TEST(BudgetExhaustion, ReduceOptimalStopsWithTimeout) {
  const ddg::Ddg d = pressured_kernel();
  const TypeContext ctx(d, ddg::kFloatReg);
  const core::RsExactResult rs = core::rs_exact(ctx);
  ASSERT_TRUE(rs.proven);
  ASSERT_GE(rs.rs, 3);
  core::ReduceOptions ropts;
  ropts.rs_upper = rs.rs;
  const core::ReduceResult r = core::reduce_optimal(
      ctx, rs.rs - 1, ropts, SolveContext(kTinyBudget));
  EXPECT_EQ(r.status, ReduceStatus::LimitHit);
  EXPECT_EQ(r.stats.stop, StopCause::TimedOut);
}

TEST(BudgetExhaustion, ReduceIlpStopsWithTimeout) {
  const ddg::Ddg d = pressured_kernel();
  const TypeContext ctx(d, ddg::kFloatReg);
  const core::ReduceIlpResult r = core::reduce_ilp_fixed(
      ctx, 2, core::ReduceIlpOptions{}, SolveContext(kTinyBudget));
  EXPECT_EQ(r.status, ReduceStatus::LimitHit);
  EXPECT_EQ(r.stats.stop, StopCause::TimedOut);
}

TEST(BudgetExhaustion, PipelineReportsTimeoutPerPressuredType) {
  const ddg::Ddg d = pressured_kernel();
  // Force real work for the float type; keep int trivially fitting so the
  // free fast path still reports AlreadyFits under the expired budget.
  const TypeContext fctx(d, ddg::kFloatReg);
  const core::RsExactResult rs = core::rs_exact(fctx);
  ASSERT_TRUE(rs.proven);
  ASSERT_GE(rs.rs, 2);
  std::vector<int> limits(d.type_count(), 1 << 20);
  limits[ddg::kFloatReg] = rs.rs - 1;
  const core::PipelineResult out = core::ensure_limits(
      d, limits, core::PipelineOptions{}, SolveContext(kTinyBudget));
  EXPECT_FALSE(out.success);
  EXPECT_EQ(out.stats.stop, StopCause::TimedOut);
  EXPECT_EQ(out.per_type[ddg::kFloatReg].status, ReduceStatus::LimitHit);
  for (ddg::RegType t = 0; t < d.type_count(); ++t) {
    if (t == ddg::kFloatReg) continue;
    EXPECT_EQ(out.per_type[t].status, ReduceStatus::AlreadyFits);
  }
}

TEST(BudgetExhaustion, AnalyzeSplitsBudgetAndStaysWitnessed) {
  const ddg::Ddg d = pressured_kernel();
  const core::SaturationReport report = core::analyze(
      d, core::AnalyzeOptions{}, SolveContext(kTinyBudget));
  EXPECT_EQ(report.stats.stop, StopCause::TimedOut);
  for (const core::TypeSaturation& t : report.per_type) {
    if (t.value_count == 0) continue;
    EXPECT_FALSE(t.proven);
    ASSERT_TRUE(sched::is_valid(d, t.witness));
    EXPECT_EQ(sched::register_need(d, t.type, t.witness), t.rs);
  }
}

TEST(BudgetExhaustion, GreedyRefinementInterruptedStaysValid) {
  const ddg::Ddg d = pressured_kernel();
  const TypeContext ctx(d, ddg::kFloatReg);
  core::GreedyOptions gopts;
  gopts.refine_passes = 50;
  const core::RsEstimate est =
      core::greedy_k(ctx, gopts, SolveContext(kTinyBudget));
  EXPECT_EQ(est.stats.stop, StopCause::TimedOut);
  ASSERT_TRUE(sched::is_valid(d, est.witness));
  EXPECT_EQ(sched::register_need(d, ddg::kFloatReg, est.witness), est.rs);
}

}  // namespace
}  // namespace rs
