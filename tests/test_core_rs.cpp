// Cross-validation of the three RS engines (greedy, combinatorial exact,
// section-3 intLP) plus the property sweeps backing the paper's claims.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/greedy_k.hpp"
#include "core/rs_exact.hpp"
#include "core/rs_ilp.hpp"
#include "ddg/builder.hpp"
#include "ddg/generators.hpp"
#include "ddg/kernels.hpp"
#include "sched/lifetime.hpp"
#include "support/random.hpp"

namespace rs::core {
namespace {

using ddg::kFloatReg;
using ddg::kIntReg;

TEST(RsExact, TrivialSingleValue) {
  ddg::KernelBuilder kb(ddg::superscalar_model(), "one");
  const auto p = kb.live_in(kIntReg, "p");
  kb.fload("v", p);
  const ddg::Ddg d = kb.build();
  const TypeContext ctx(d, kFloatReg);
  const RsExactResult r = rs_exact(ctx);
  ASSERT_TRUE(r.proven);
  EXPECT_EQ(r.rs, 1);
}

TEST(RsExact, IndependentValuesSaturateCompletely) {
  // k independent loads all live-out: RS = k.
  ddg::KernelBuilder kb(ddg::superscalar_model(), "indep");
  const auto p = kb.live_in(kIntReg, "p");
  for (int i = 0; i < 5; ++i) kb.fload("v" + std::to_string(i), p);
  const ddg::Ddg d = kb.build();
  const TypeContext ctx(d, kFloatReg);
  const RsExactResult r = rs_exact(ctx);
  ASSERT_TRUE(r.proven);
  EXPECT_EQ(r.rs, 5);
}

TEST(RsExact, SerialChainNeedsOne) {
  // v0 -> v1 -> v2 -> v3 chain of unary float ops. With the paper's
  // left-open lifetimes ]def, kill], the operand dies exactly at the cycle
  // its consumer issues while the consumer's value is born at the same
  // cycle — touching, not overlapping — so one register cycles through the
  // whole chain: RS = 1.
  ddg::KernelBuilder kb(ddg::superscalar_model(), "chain");
  const auto p = kb.live_in(kIntReg, "p");
  auto cur = kb.fload("v0", p);
  for (int i = 1; i < 4; ++i) {
    cur = kb.op(ddg::OpClass::FpAdd, kFloatReg, "v" + std::to_string(i), {cur});
  }
  const ddg::Ddg d = kb.build();
  const TypeContext ctx(d, kFloatReg);
  const RsExactResult r = rs_exact(ctx);
  ASSERT_TRUE(r.proven);
  EXPECT_EQ(r.rs, 1);
}

TEST(RsExact, HornerIsRegisterLean) {
  const ddg::Ddg d = ddg::horner8(ddg::superscalar_model());
  const TypeContext ctx(d, kFloatReg);
  const RsExactResult r = rs_exact(ctx);
  ASSERT_TRUE(r.proven);
  // All nine coefficients are live-in simultaneously (they are all alive at
  // time 0 until read), so RS is close to the value count but bounded.
  EXPECT_GE(r.rs, 9);
  EXPECT_LE(r.rs, ctx.value_count());
}

TEST(RsExact, FirSaturatesWide) {
  const ddg::Ddg d = ddg::fir8(ddg::superscalar_model());
  const TypeContext ctx(d, kFloatReg);
  const RsExactResult r = rs_exact(ctx);
  ASSERT_TRUE(r.proven);
  EXPECT_GE(r.rs, 16);  // 8 coefficients + 8 products co-alive
}

TEST(RsExact, WitnessAlwaysRealizesRs) {
  for (const auto& [name, dag] : ddg::kernel_corpus(ddg::superscalar_model())) {
    SCOPED_TRACE(name);
    const TypeContext ctx(dag, kFloatReg);
    const RsExactResult r = rs_exact(ctx);
    ASSERT_TRUE(r.proven);
    ASSERT_TRUE(sched::is_valid(dag, r.witness));
    EXPECT_EQ(sched::register_need(dag, kFloatReg, r.witness), r.rs);
  }
}

TEST(RsExact, IntTypeAnalyzedIndependently) {
  const ddg::Ddg d = ddg::liv_loop1(ddg::superscalar_model());
  const TypeContext fctx(d, kFloatReg);
  const TypeContext ictx(d, kIntReg);
  const RsExactResult fr = rs_exact(fctx);
  const RsExactResult ir = rs_exact(ictx);
  ASSERT_TRUE(fr.proven);
  ASSERT_TRUE(ir.proven);
  EXPECT_GE(fr.rs, 3);
  EXPECT_GE(ir.rs, 3);  // pointer values
}

TEST(RsExact, BudgetTruncationIsReported) {
  // whet-p3 has values with several incomparable consumers (t feeds four
  // independent multiplies), so the killing-function search really has to
  // branch — one node cannot finish it.
  const ddg::Ddg d = ddg::whet_p3(ddg::superscalar_model());
  const TypeContext ctx(d, kFloatReg);
  RsExactOptions opts;
  opts.node_limit = 1;
  opts.warm_start = true;
  const RsExactResult r = rs_exact(ctx, opts);
  EXPECT_FALSE(r.proven);
  EXPECT_GE(r.rs, 1);  // warm-start incumbent still witnessed
}

// ---- Greedy vs exact: the section-5 "nearly optimal" claim -------------

struct SweepParam {
  int n_ops;
  std::uint64_t seed;
};

class RsEngineAgreement : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RsEngineAgreement, GreedyNeverExceedsExactAndIsClose) {
  const auto [n_ops, seed] = GetParam();
  support::Rng rng(seed);
  const auto model = ddg::superscalar_model();
  ddg::RandomDagParams p;
  p.n_ops = n_ops;
  const ddg::Ddg d = ddg::random_dag(rng, model, p);
  const TypeContext ctx(d, kFloatReg);

  const RsEstimate heur = greedy_k(ctx);
  const RsExactResult exact = rs_exact(ctx);
  ASSERT_TRUE(exact.proven);
  EXPECT_LE(heur.rs, exact.rs);
  // Witness validity for both.
  EXPECT_EQ(sched::register_need(d, kFloatReg, heur.witness), heur.rs);
  EXPECT_EQ(sched::register_need(d, kFloatReg, exact.witness), exact.rs);
  // Near-optimality with slack: the paper reports max error 1; allow 2 in
  // the assertion so the suite stays robust across corpus perturbations
  // (EXP-1 reports the precise distribution).
  EXPECT_LE(exact.rs - heur.rs, 2) << "heuristic far from optimal";
}

INSTANTIATE_TEST_SUITE_P(
    RandomDags, RsEngineAgreement,
    ::testing::Values(SweepParam{6, 1}, SweepParam{6, 2}, SweepParam{8, 3},
                      SweepParam{8, 4}, SweepParam{9, 5}, SweepParam{10, 6},
                      SweepParam{10, 7}, SweepParam{11, 8}, SweepParam{12, 9},
                      SweepParam{12, 10}, SweepParam{13, 11},
                      SweepParam{14, 12}));

// RN of any schedule never exceeds RS (the definition of saturation).
class RnBelowRs : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RnBelowRs, RandomSchedulesStayBelowSaturation) {
  const auto [n_ops, seed] = GetParam();
  support::Rng rng(seed * 977);
  const auto model = ddg::superscalar_model();
  ddg::RandomDagParams p;
  p.n_ops = n_ops;
  const ddg::Ddg d = ddg::random_dag(rng, model, p);
  const TypeContext ctx(d, kFloatReg);
  const RsExactResult exact = rs_exact(ctx);
  ASSERT_TRUE(exact.proven);
  for (int trial = 0; trial < 40; ++trial) {
    sched::Schedule s = sched::asap(d);
    for (auto& t : s.time) t += rng.next_int(0, 8);
    for (int round = 0; round < d.op_count(); ++round) {
      for (const graph::Edge& e : d.graph().edges()) {
        s.time[e.dst] = std::max(s.time[e.dst], s.time[e.src] + e.latency);
      }
    }
    ASSERT_TRUE(sched::is_valid(d, s));
    EXPECT_LE(sched::register_need(d, kFloatReg, s), exact.rs)
        << "schedule exceeded the proven saturation";
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDags, RnBelowRs,
    ::testing::Values(SweepParam{7, 1}, SweepParam{8, 2}, SweepParam{9, 3},
                      SweepParam{10, 4}, SweepParam{11, 5}, SweepParam{12, 6}));

// ---- Section-3 intLP vs combinatorial exact -----------------------------

class IlpMatchesExact : public ::testing::TestWithParam<SweepParam> {};

TEST_P(IlpMatchesExact, SameOptimum) {
  const auto [n_ops, seed] = GetParam();
  support::Rng rng(seed * 31337);
  const auto model = ddg::superscalar_model();
  ddg::RandomDagParams p;
  p.n_ops = n_ops;
  const ddg::Ddg d = ddg::random_dag(rng, model, p);
  const TypeContext ctx(d, kFloatReg);
  const RsExactResult exact = rs_exact(ctx);
  ASSERT_TRUE(exact.proven);
  const RsIlpResult ilp =
      rs_ilp(ctx, RsIlpOptions{}, support::SolveContext(120));
  ASSERT_EQ(ilp.status, lp::MipStatus::Optimal);
  EXPECT_EQ(ilp.rs, exact.rs);
  // The intLP witness schedule is valid and achieves the optimum.
  ASSERT_TRUE(sched::is_valid(d, ilp.witness));
  EXPECT_EQ(sched::register_need(d, kFloatReg, ilp.witness), ilp.rs);
}

INSTANTIATE_TEST_SUITE_P(
    SmallRandomDags, IlpMatchesExact,
    ::testing::Values(SweepParam{5, 1}, SweepParam{5, 2}, SweepParam{6, 3},
                      SweepParam{6, 4}, SweepParam{7, 5}, SweepParam{7, 6},
                      SweepParam{8, 7}, SweepParam{8, 8}));

TEST(RsIlp, KernelCrossCheck) {
  for (const char* name : {"lin-ddot", "lin-dscal", "liv-loop5"}) {
    SCOPED_TRACE(name);
    const ddg::Ddg d = ddg::build_kernel(name, ddg::superscalar_model());
    const TypeContext ctx(d, kFloatReg);
    const RsExactResult exact = rs_exact(ctx);
    ASSERT_TRUE(exact.proven);
    const RsIlpResult ilp =
        rs_ilp(ctx, RsIlpOptions{}, support::SolveContext(120));
    ASSERT_EQ(ilp.status, lp::MipStatus::Optimal);
    EXPECT_EQ(ilp.rs, exact.rs);
  }
}

TEST(RsIlp, OptimizationsPreserveOptimum) {
  support::Rng rng(2718);
  const auto model = ddg::superscalar_model();
  ddg::RandomDagParams p;
  p.n_ops = 6;
  const ddg::Ddg d = ddg::random_dag(rng, model, p);
  const TypeContext ctx(d, kFloatReg);
  RsIlpOptions with;
  RsIlpOptions without = with;
  without.eliminate_redundant_arcs = false;
  without.eliminate_never_alive_pairs = false;
  const RsIlpResult a = rs_ilp(ctx, with, support::SolveContext(120));
  const RsIlpResult b = rs_ilp(ctx, without, support::SolveContext(120));
  ASSERT_EQ(a.status, lp::MipStatus::Optimal);
  ASSERT_EQ(b.status, lp::MipStatus::Optimal);
  EXPECT_EQ(a.rs, b.rs);
  // The optimizations only ever shrink the model.
  EXPECT_LE(a.stats.variables, b.stats.variables);
  EXPECT_LE(a.stats.constraints, b.stats.constraints);
}

TEST(RsIlp, ModelSizeMatchesPaperComplexity) {
  // O(n^2) integer variables and O(m + n^2) constraints: check the model
  // stays under explicit quadratic envelopes across growing sizes.
  support::Rng rng(5150);
  const auto model = ddg::superscalar_model();
  for (const int n : {8, 12, 16, 24, 32}) {
    ddg::RandomDagParams p;
    p.n_ops = n;
    const ddg::Ddg d = ddg::random_dag(rng, model, p);
    const TypeContext ctx(d, kFloatReg);
    RsIlpOptions opts;  // keep both optimizations on (paper defaults)
    const RsIlpStats s = rs_model_stats(ctx, opts);
    const double n2 = static_cast<double>(s.n_nodes) * s.n_nodes;
    EXPECT_LE(s.integer_variables, 4 * n2 + 2 * s.n_nodes + 8);
    EXPECT_LE(s.constraints, 8 * n2 + s.m_arcs + 16);
  }
}

TEST(RsIlp, VliwModelSolvable) {
  const ddg::Ddg d = ddg::lin_dscal(ddg::vliw_model());
  const TypeContext ctx(d, kFloatReg);
  const RsExactResult exact = rs_exact(ctx);
  ASSERT_TRUE(exact.proven);
  const RsIlpResult ilp =
      rs_ilp(ctx, RsIlpOptions{}, support::SolveContext(120));
  ASSERT_EQ(ilp.status, lp::MipStatus::Optimal);
  EXPECT_EQ(ilp.rs, exact.rs);
}

TEST(GreedyK, KernelSuiteWithinOneOfExact) {
  // The paper's empirical claim on its corpus: heuristic error <= 1.
  int max_err = 0;
  for (const auto& [name, dag] : ddg::kernel_corpus(ddg::superscalar_model())) {
    const TypeContext ctx(dag, kFloatReg);
    const RsEstimate heur = greedy_k(ctx);
    const RsExactResult exact = rs_exact(ctx);
    ASSERT_TRUE(exact.proven) << name;
    ASSERT_LE(heur.rs, exact.rs) << name;
    max_err = std::max(max_err, exact.rs - heur.rs);
  }
  EXPECT_LE(max_err, 1);
}

}  // namespace
}  // namespace rs::core
