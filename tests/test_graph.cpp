#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "graph/antichain.hpp"
#include "graph/digraph.hpp"
#include "graph/matching.hpp"
#include "graph/paths.hpp"
#include "graph/topo.hpp"
#include "graph/transitive.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"

namespace rs::graph {
namespace {

Digraph diamond() {
  Digraph g(4);
  g.add_edge(0, 1, 2);
  g.add_edge(0, 2, 3);
  g.add_edge(1, 3, 1);
  g.add_edge(2, 3, 1);
  return g;
}

TEST(Digraph, BasicAccessors) {
  Digraph g = diamond();
  EXPECT_EQ(g.node_count(), 4);
  EXPECT_EQ(g.edge_count(), 4);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.out_edges(0).size(), 2u);
  EXPECT_EQ(g.in_edges(3).size(), 2u);
}

TEST(Digraph, ParallelArcsMaxLatency) {
  Digraph g(2);
  g.add_edge(0, 1, 2);
  g.add_edge(0, 1, 5);
  g.add_edge(0, 1, 3);
  EXPECT_EQ(g.max_latency(0, 1), 5);
  EXPECT_THROW(g.max_latency(1, 0), support::PreconditionError);
}

TEST(Digraph, OutOfRangeEdgeThrows) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 5, 1), support::PreconditionError);
}

TEST(Topo, OrderRespectsArcs) {
  const Digraph g = diamond();
  const auto order = topo_order(g);
  ASSERT_TRUE(order.has_value());
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[(*order)[i]] = i;
  for (const Edge& e : g.edges()) EXPECT_LT(pos[e.src], pos[e.dst]);
}

TEST(Topo, DetectsCycle) {
  Digraph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 0, 1);
  EXPECT_FALSE(topo_order(g).has_value());
  EXPECT_FALSE(is_dag(g));
}

TEST(Topo, PositiveCircuitDetection) {
  Digraph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 0, -1);  // zero-weight circuit: schedulable
  EXPECT_FALSE(has_positive_circuit(g));
  g.add_edge(1, 2, 2);
  g.add_edge(2, 1, -1);  // +1 circuit: unschedulable
  EXPECT_TRUE(has_positive_circuit(g));
}

TEST(Topo, EmptyGraph) {
  Digraph g(0);
  EXPECT_TRUE(is_dag(g));
  EXPECT_FALSE(has_positive_circuit(g));
}

TEST(Paths, DiamondLongest) {
  const Digraph g = diamond();
  const LongestPaths lp(g);
  EXPECT_EQ(lp.lp(0, 3), 4);  // 0->2->3
  EXPECT_EQ(lp.lp(0, 1), 2);
  EXPECT_EQ(lp.lp(1, 2), kNoPath);
  EXPECT_FALSE(lp.reaches(3, 0));
  EXPECT_EQ(lp.lp(2, 2), 0);
  EXPECT_EQ(critical_path(g), 4);
}

TEST(Paths, AsapAlapConsistency) {
  const Digraph g = diamond();
  const auto to = longest_path_to(g);
  const auto from = longest_path_from(g);
  EXPECT_EQ(to[0], 0);
  EXPECT_EQ(to[3], 4);
  EXPECT_EQ(from[0], 4);
  EXPECT_EQ(from[3], 0);
  // For every node: to[u] + from[u] <= critical path.
  for (NodeId u = 0; u < 4; ++u) EXPECT_LE(to[u] + from[u], 4);
}

TEST(Paths, NonPositiveCircuitFallback) {
  Digraph g(3);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2, 0);
  g.add_edge(2, 1, 0);  // zero circuit
  const LongestPaths lp(g);
  EXPECT_EQ(lp.lp(0, 2), 5);
  EXPECT_EQ(lp.lp(0, 1), 5);
  const auto to = longest_path_to(g);
  EXPECT_EQ(to[2], 5);
}

TEST(Paths, PositiveCircuitRejected) {
  Digraph g(2);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 0, 1);
  EXPECT_THROW(LongestPaths{g}, support::PreconditionError);
}

TEST(Transitive, ClosureOfChain) {
  Digraph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 1);
  const TransitiveClosure tc(g);
  EXPECT_TRUE(tc.reaches(0, 3));
  EXPECT_TRUE(tc.reaches(1, 3));
  EXPECT_FALSE(tc.reaches(3, 0));
  EXPECT_FALSE(tc.reaches(0, 0));  // strict reachability
}

TEST(Transitive, RedundantEdges) {
  Digraph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  const EdgeId shortcut = g.add_edge(0, 2, 1);
  const auto redundant = transitively_redundant_edges(g);
  ASSERT_EQ(redundant.size(), 1u);
  EXPECT_EQ(redundant[0], shortcut);
}

TEST(Matching, PerfectMatchingSquare) {
  BipartiteMatching m(2, 2);
  m.add_edge(0, 0);
  m.add_edge(0, 1);
  m.add_edge(1, 0);
  EXPECT_EQ(m.solve(), 2);
  EXPECT_NE(m.match_of_left(0), m.match_of_left(1));
}

TEST(Matching, KonigCoverCoversEveryEdge) {
  support::Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    const int nl = rng.next_int(1, 8), nr = rng.next_int(1, 8);
    BipartiteMatching m(nl, nr);
    std::vector<std::pair<int, int>> edges;
    for (int l = 0; l < nl; ++l) {
      for (int r = 0; r < nr; ++r) {
        if (rng.next_bool(0.3)) {
          m.add_edge(l, r);
          edges.emplace_back(l, r);
        }
      }
    }
    const int matched = m.solve();
    const auto cover = m.min_vertex_cover();
    int cover_size = 0;
    for (const bool b : cover.left) cover_size += b;
    for (const bool b : cover.right) cover_size += b;
    EXPECT_EQ(cover_size, matched);  // König
    for (const auto& [l, r] : edges) {
      EXPECT_TRUE(cover.left[l] || cover.right[r]);
    }
  }
}

/// Brute-force maximum antichain for cross-checking (k <= ~16).
int brute_force_antichain(int k, const std::function<bool(int, int)>& before) {
  int best = 0;
  for (unsigned mask = 0; mask < (1u << k); ++mask) {
    bool ok = true;
    for (int i = 0; i < k && ok; ++i) {
      if (!(mask >> i & 1)) continue;
      for (int j = 0; j < k && ok; ++j) {
        if (i != j && (mask >> j & 1) && before(i, j)) ok = false;
      }
    }
    if (ok) best = std::max(best, __builtin_popcount(mask));
  }
  return best;
}

TEST(Antichain, ChainAndAntichainExtremes) {
  // Total order: antichain 1.
  auto total = [](int i, int j) { return i < j; };
  EXPECT_EQ(maximum_antichain(5, total).size, 1);
  // Empty order: everything.
  auto empty = [](int, int) { return false; };
  EXPECT_EQ(maximum_antichain(5, empty).size, 5);
}

TEST(Antichain, MatchesBruteForceOnRandomPosets) {
  support::Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    const int k = rng.next_int(2, 11);
    // Random DAG on 0..k-1 (i<j arcs), closed transitively.
    std::vector<std::vector<bool>> lt(k, std::vector<bool>(k, false));
    for (int i = 0; i < k; ++i) {
      for (int j = i + 1; j < k; ++j) lt[i][j] = rng.next_bool(0.3);
    }
    for (int a = 0; a < k; ++a) {
      for (int b = 0; b < k; ++b) {
        for (int c = 0; c < k; ++c) {
          if (lt[b][a] && lt[a][c]) lt[b][c] = true;
        }
      }
    }
    auto before = [&](int i, int j) { return lt[i][j]; };
    const AntichainResult got = maximum_antichain(k, before);
    EXPECT_EQ(got.size, brute_force_antichain(k, before));
    // Returned members are pairwise incomparable.
    for (const int i : got.members) {
      for (const int j : got.members) {
        if (i != j) EXPECT_FALSE(before(i, j));
      }
    }
  }
}

TEST(Antichain, DagWrapperWithElementSubset) {
  // 0 -> 1 -> 2, 3 isolated; elements {0, 2, 3}.
  Digraph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  const AntichainResult r = maximum_antichain_of_dag(g, {0, 2, 3});
  EXPECT_EQ(r.size, 2);  // {0,3} or {2,3}; 0 and 2 comparable through 1
  EXPECT_TRUE(std::find(r.members.begin(), r.members.end(), 3) !=
              r.members.end());
}

TEST(Antichain, FullDagWrapper) {
  const Digraph g = diamond();
  EXPECT_EQ(maximum_antichain_of_dag(g).size, 2);  // {1,2}
}

}  // namespace
}  // namespace rs::graph
