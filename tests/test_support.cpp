#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "support/assert.hpp"
#include "support/bitset.hpp"
#include "support/random.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace rs::support {
namespace {

TEST(Assert, RequireThrowsWithMessage) {
  try {
    RS_REQUIRE(1 == 2, "custom context");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("custom context"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Assert, CheckThrowsOnViolation) {
  EXPECT_THROW(RS_CHECK(false), PreconditionError);
  EXPECT_NO_THROW(RS_CHECK(true));
}

TEST(Bitset, SetTestReset) {
  DynamicBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_FALSE(b.test(0));
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(Bitset, UnionIntersection) {
  DynamicBitset a(100), b(100);
  a.set(3);
  a.set(70);
  b.set(70);
  b.set(99);
  DynamicBitset u = a;
  u |= b;
  EXPECT_EQ(u.count(), 3u);
  DynamicBitset i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(70));
  EXPECT_TRUE(a.intersects(b));
  DynamicBitset c(100);
  c.set(1);
  EXPECT_FALSE(a.intersects(c));
}

TEST(Bitset, ForEachVisitsAscending) {
  DynamicBitset b(200);
  const std::vector<std::size_t> want = {0, 63, 64, 65, 127, 128, 199};
  for (const auto i : want) b.set(i);
  std::vector<std::size_t> got;
  b.for_each([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(Bitset, SizeMismatchThrows) {
  DynamicBitset a(10), b(11);
  EXPECT_THROW(a |= b, PreconditionError);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRangeAndCoversAll) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(5);
    EXPECT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextIntBoundsInclusive) {
  Rng rng(9);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo |= v == -3;
    hi |= v == 3;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, RealInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliEdges) {
  Rng rng(13);
  EXPECT_FALSE(rng.next_bool(0.0));
  EXPECT_TRUE(rng.next_bool(1.0));
  int heads = 0;
  for (int i = 0; i < 4000; ++i) heads += rng.next_bool(0.25);
  EXPECT_NEAR(heads / 4000.0, 0.25, 0.05);
}

TEST(Table, AlignmentAndCsv) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("| name"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_NE(csv.find("a,1"), std::string::npos);
}

TEST(Table, CsvQuoting) {
  Table t({"x"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(Table, PercentFormatting) {
  EXPECT_EQ(fmt_percent(1, 4), "25.00%");
  EXPECT_EQ(fmt_percent(0, 0), "n/a");
  EXPECT_EQ(fmt_double(1.23456, 3), "1.235");
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.submit([&] { counter++; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ZeroTasksIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL(); });
}

TEST(ThreadPool, NestedSubmissionDoesNotDeadlock) {
  // Regression: a pool task that fans its own subtasks onto the same pool
  // and blocks on them would deadlock a single-worker pool (the only worker
  // is the one waiting). TaskGroup::wait runs queued nested tasks on the
  // waiting thread via try_run_one, so one worker suffices.
  ThreadPool pool(1);
  std::atomic<int> inner{0};
  std::atomic<bool> outer_done{false};
  pool.submit([&] {
    TaskGroup group(&pool);
    for (int i = 0; i < 8; ++i) group.run([&] { inner++; });
    group.wait();
    outer_done = true;
  });
  pool.wait_idle();
  EXPECT_TRUE(outer_done.load());
  EXPECT_EQ(inner.load(), 8);
}

TEST(ThreadPool, TaskGroupSerialFallback) {
  // A null pool degrades to inline execution — same code path callers use
  // when no executor is configured.
  TaskGroup group(nullptr);
  EXPECT_FALSE(group.parallel());
  int ran = 0;
  group.run([&] { ran++; });
  group.run([&] { ran++; });
  group.wait();
  EXPECT_EQ(ran, 2);
}

TEST(ThreadPool, TryRunOneOnlyTakesNestedTasks) {
  // try_run_one must never steal a top-level request: an external waiter
  // draining the queue would reorder request execution under the engine.
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  pool.submit([&] {
    while (!release.load()) std::this_thread::yield();
  });
  std::atomic<int> top{0};
  pool.submit([&] { top++; });  // queued behind the blocker
  EXPECT_FALSE(pool.try_run_one());
  EXPECT_EQ(top.load(), 0);
  pool.submit_nested([&] { top += 10; });
  EXPECT_TRUE(pool.try_run_one());
  EXPECT_EQ(top.load(), 10);
  release = true;
  pool.wait_idle();
  EXPECT_EQ(top.load(), 11);
}

}  // namespace
}  // namespace rs::support
