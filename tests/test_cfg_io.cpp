// The .prog text format (cfg/io.hpp), the program fingerprint (cfg/canon)
// and the CFG generators/kernels (cfg/generators): round trips, the
// line-numbered parse-error table, order/rename invariance, and generator
// determinism.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cfg/canon.hpp"
#include "cfg/cfg.hpp"
#include "cfg/generators.hpp"
#include "cfg/io.hpp"
#include "ddg/canon.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"

#include "test_util.hpp"

namespace rs::cfg {
namespace {

using ddg::kFloatReg;
using ddg::kIntReg;
using ddg::OpClass;

const ddg::MachineModel& model() {
  static const ddg::MachineModel m = ddg::superscalar_model();
  return m;
}

// ---------------------------------------------------------------------------
// .prog round trips

TEST(ProgIo, EveryProgramKernelRoundTrips) {
  for (const std::string& name : program_names()) {
    const Cfg original = build_program(name, model());
    const std::string text = to_text(original);
    const Cfg parsed = from_text(text, model());
    EXPECT_EQ(parsed.name(), original.name()) << name;
    ASSERT_EQ(parsed.block_count(), original.block_count()) << name;
    for (int b = 0; b < original.block_count(); ++b) {
      EXPECT_EQ(parsed.block(b).name, original.block(b).name) << name;
      EXPECT_EQ(parsed.block(b).live_in, original.block(b).live_in) << name;
      EXPECT_EQ(parsed.block(b).live_out, original.block(b).live_out) << name;
      EXPECT_EQ(parsed.block(b).successors, original.block(b).successors)
          << name;
    }
    EXPECT_EQ(fingerprint(parsed), fingerprint(original)) << name;
    // Serialization is a fixpoint: text -> Cfg -> text is identical.
    EXPECT_EQ(to_text(parsed), text) << name;
  }
}

TEST(ProgIo, CommentsAndBlankLinesAreIgnored) {
  const Cfg cfg = from_text(
      "# a comment\n"
      "prog demo\n"
      "\n"
      "block entry  # trailing comment\n"
      "def x class=load type=1 uses=p\n"
      "use class=store uses=x,p\n",
      model());
  ASSERT_EQ(cfg.block_count(), 1);
  EXPECT_EQ(cfg.name(), "demo");
  EXPECT_EQ(cfg.block(0).statements.size(), 2u);
}

TEST(ProgIo, EdgeMayReferenceABlockDeclaredLater) {
  const Cfg cfg = from_text(
      "prog fwd\n"
      "block a\n"
      "def x class=ialu type=0\n"
      "edge a b\n"  // b not declared yet
      "block b\n"
      "use class=store uses=x\n",
      model());
  ASSERT_EQ(cfg.block_count(), 2);
  EXPECT_EQ(cfg.block(0).successors, std::vector<int>{1});
}

// ---------------------------------------------------------------------------
// parse-error table (satellite: bad edge, duplicate block, cyclic CFG, ...)

TEST(ProgIo, ParseErrorTable) {
  const struct {
    const char* text;
    const char* expect;  // substring of the PreconditionError message
  } kCases[] = {
      {"", "empty program text"},
      {"block a\n", "'prog' header missing"},
      {"prog p\nprog q\n", "duplicate prog header"},
      {"prog\n", "expected 'prog <name>'"},
      {"prog p\ndef x class=ialu type=0\n", "def before any block"},
      {"prog p\nuse class=store uses=x\n", "use before any block"},
      {"prog p\nblock a\nblock a\n", "line 3: duplicate block a"},
      {"prog p\nblock a\ndef x class=wat type=0\n", "unknown op class wat"},
      {"prog p\nblock a\ndef x class=ialu type=7\n", "type= out of range"},
      {"prog p\nblock a\ndef x class=ialu\n", "missing type="},
      {"prog p\nblock a\ndef x type=0\n", "missing class="},
      {"prog p\nblock a\ndef x class=ialu type=0 uses=,\n",
       "empty name in uses="},
      {"prog p\nblock a\nedge a b\n", "line 3: edge references unknown block b"},
      {"prog p\nblock a\nedge a\n", "expected 'edge <from> <to>'"},
      {"prog p\nblock a\nfrobnicate\n", "unknown directive frobnicate"},
      // '=' in a name would be indistinguishable from an option token when
      // the program is serialized back (round-trip ambiguity).
      {"prog p\nblock a\ndef x=y class=ialu type=0\n",
       "name 'x=y' must not contain '='"},
      {"prog p\nblock a\ndef x class=ialu type=0 uses=a=b\n",
       "name 'a=b' must not contain '='"},
      {"prog p\nblock a\ndef x class=ialu type=0\n"
       "def x class=ialu type=0\n",
       "value defined twice in block a: x"},
      {"prog p\nblock a\ndef x class=ialu type=0\nblock b\n"
       "def x class=fadd type=1\n",
       "conflicting types: x"},
      {"prog p\nblock a\ndef x class=ialu type=0\nblock b\n"
       "use class=store uses=x\nedge a b\nedge b a\n",
       "must be acyclic"},
  };
  for (const auto& c : kCases) {
    try {
      from_text(c.text, model());
      FAIL() << "no error for:\n" << c.text;
    } catch (const support::PreconditionError& e) {
      EXPECT_NE(std::string(e.what()).find(c.expect), std::string::npos)
          << "got '" << e.what() << "', wanted substring '" << c.expect
          << "' for:\n"
          << c.text;
    }
  }
}

// ---------------------------------------------------------------------------
// program fingerprint (cfg/canon)

TEST(ProgCanon, InvariantUnderBlockReorderAndRenaming) {
  for (const std::string& name : program_names()) {
    const Cfg original = build_program(name, model());
    const Cfg permuted = test::permuted_program(original);
    EXPECT_EQ(fingerprint(permuted), fingerprint(original)) << name;
  }
}

TEST(ProgCanon, DistinguishesPrograms) {
  const Cfg diamond = build_program("diamond", model());
  const Cfg dotcond = build_program("dotcond", model());
  const Cfg chain = build_program("chain4", model());
  EXPECT_NE(fingerprint(diamond), fingerprint(dotcond));
  EXPECT_NE(fingerprint(diamond), fingerprint(chain));
  // Same blocks, different control flow: drop one diamond edge.
  Program p(model(), "diamond");
  const int entry = p.add_block("entry");
  const int left = p.add_block("left");
  const int right = p.add_block("right");
  const int join = p.add_block("join");
  p.add_edge(entry, left);
  p.add_edge(entry, right);
  p.add_edge(left, join);  // right -> join missing
  p.def(entry, "x", OpClass::Load, kFloatReg, {"p"});
  p.def(entry, "y", OpClass::FpMul, kFloatReg, {"x", "x"});
  p.def(left, "a", OpClass::FpAdd, kFloatReg, {"y", "x"});
  p.def(right, "b", OpClass::FpMul, kFloatReg, {"y", "y"});
  p.def(join, "r", OpClass::FpAdd, kFloatReg, {"a", "b"});
  p.use(join, OpClass::Store, {"r", "p"});
  EXPECT_NE(fingerprint(p.build()), fingerprint(diamond));
  // The machine model is part of the problem (latencies shape lifetimes).
  EXPECT_NE(fingerprint(build_program("diamond", ddg::vliw_model())),
            fingerprint(diamond));
}

// ---------------------------------------------------------------------------
// generators

TEST(ProgGenerators, DeterministicInTheSeed) {
  support::Rng a(42), b(42), c(43);
  const ddg::Fingerprint fa = fingerprint(random_chain(a, model(), 4));
  const ddg::Fingerprint fb = fingerprint(random_chain(b, model(), 4));
  const ddg::Fingerprint fc = fingerprint(random_chain(c, model(), 4));
  EXPECT_EQ(fa, fb);
  EXPECT_NE(fa, fc);
}

TEST(ProgGenerators, ShapesHaveTheAdvertisedStructure) {
  support::Rng rng(7);
  const Cfg chain = random_chain(rng, model(), 5);
  ASSERT_EQ(chain.block_count(), 5);
  for (int b = 0; b + 1 < 5; ++b) {
    EXPECT_EQ(chain.block(b).successors, std::vector<int>{b + 1});
  }
  const Cfg sw = random_switch(rng, model(), 3);
  EXPECT_EQ(sw.block_count(), 5);  // entry + 3 cases + join
  EXPECT_EQ(sw.block(0).successors.size(), 3u);
  const Cfg diamond = random_diamond(rng, model());
  EXPECT_EQ(diamond.block_count(), 4);
  // Cross-block pressure exists: some case block has a nonempty live-in.
  bool crossing = false;
  for (int b = 0; b < sw.block_count(); ++b) {
    crossing = crossing || !sw.block(b).live_in.empty();
  }
  EXPECT_TRUE(crossing);
}

TEST(ProgGenerators, UnknownProgramKernelThrows) {
  EXPECT_THROW(build_program("frobnicate", model()),
               support::PreconditionError);
  for (const std::string& name : program_names()) {
    EXPECT_NO_THROW(build_program(name, model())) << name;
  }
}

}  // namespace
}  // namespace rs::cfg
